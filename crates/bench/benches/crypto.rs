//! Wall-clock Criterion benchmark of the AES-GCM encryption engine (the dominant cost of
//! a Plinius mirror-out on real SGX hardware).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use plinius_crypto::{Key, SealedBuffer};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_seal(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let key = Key::generate_128(&mut rng);
    let mut group = c.benchmark_group("aes_gcm_seal");
    group.sample_size(10);
    for size in [4 * 1024usize, 64 * 1024] {
        let data = vec![7u8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_function(format!("{size}B"), |b| {
            b.iter(|| SealedBuffer::seal(&key, &data, &mut rng).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_seal);
criterion_main!(benches);
