//! Wall-clock Criterion benchmark of the AES-GCM engine (the dominant cost of a
//! Plinius mirror-out on real SGX hardware): the table-driven fast path (T-table AES,
//! Shoup GHASH, word-wise multi-block CTR) against the retained reference kernels,
//! plus the zero-copy seal path and its intra-buffer thread fan-out.
//!
//! Run with `cargo bench --bench crypto`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use plinius_crypto::{seal_into_with_threads, sealed_len, Key, SealedBuffer};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Fast engine vs reference kernels on mirror-sized buffers.
fn bench_engine_vs_reference(c: &mut Criterion) {
    let gcm = plinius_crypto::AesGcm::from_key(&[0x42u8; 16]);
    let iv = [9u8; 12];
    let mut group = c.benchmark_group("aes_gcm_engine");
    group.sample_size(10);
    for size in [64 * 1024usize, 1 << 20] {
        let data = vec![7u8; size];
        let mut out = vec![0u8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_function(format!("fast/{size}B"), |b| {
            b.iter(|| gcm.encrypt_into(&iv, b"bench", &data, &mut out).unwrap())
        });
        group.bench_function(format!("reference/{size}B"), |b| {
            b.iter(|| gcm.encrypt_reference(&iv, b"bench", &data).unwrap())
        });
    }
    group.finish();
}

/// Intra-buffer CTR thread fan-out on a 1 MiB seal (bit-identical output for every
/// thread count; wall-clock scaling shows on multi-core hosts only).
fn bench_seal_thread_sweep(c: &mut Criterion) {
    let key = Key::new(&[0x17u8; 16]).unwrap();
    let gcm = key.gcm();
    let size = 1 << 20;
    let data = vec![3u8; size];
    let mut arena = vec![0u8; sealed_len(size)];
    let iv = [5u8; 12];
    let mut group = c.benchmark_group("seal_into_1mib_threads");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(size as u64));
    for threads in [1usize, 2, 4] {
        group.bench_function(format!("{threads}t"), |b| {
            b.iter(|| {
                seal_into_with_threads(&gcm, &data, b"tensor", &iv, &mut arena, threads).unwrap()
            })
        });
    }
    group.finish();
}

/// The allocating convenience API (fresh IV + key-schedule per call), for comparison
/// with the zero-copy path above — this is what non-hot-path callers pay.
fn bench_sealed_buffer(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let key = Key::generate_128(&mut rng);
    let mut group = c.benchmark_group("aes_gcm_seal");
    group.sample_size(10);
    for size in [4 * 1024usize, 64 * 1024] {
        let data = vec![7u8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_function(format!("{size}B"), |b| {
            b.iter(|| SealedBuffer::seal(&key, &data, &mut rng).unwrap())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_engine_vs_reference,
    bench_seal_thread_sweep,
    bench_sealed_buffer
);
criterion_main!(benches);
