//! Wall-clock Criterion benchmark of the AES-GCM engine (the dominant cost of a
//! Plinius mirror-out on real SGX hardware): one lane per dispatchable engine —
//! the AES-NI + PCLMUL kernels (on capable hosts), the portable T-table/Shoup
//! scalar path and the retained reference kernels — plus the zero-copy seal path
//! and its intra-buffer thread fan-out.
//!
//! Run with `cargo bench --bench crypto`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use plinius_crypto::{
    hw_available, seal_into_with_threads, sealed_len, Aes, AesGcm, EnginePolicy, Key, SealedBuffer,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One lane per engine on mirror-sized buffers. The hardware lane only appears on
/// hosts whose CPU reports AES-NI + PCLMUL; lanes are labelled by the engine the
/// dispatcher actually selected, so reports stay unambiguous across hosts.
fn bench_engine_lanes(c: &mut Criterion) {
    let mut lanes = vec![AesGcm::with_policy(
        Aes::new(&[0x42u8; 16]),
        EnginePolicy::Scalar,
    )];
    if hw_available() {
        lanes.insert(
            0,
            AesGcm::with_policy(Aes::new(&[0x42u8; 16]), EnginePolicy::Auto),
        );
    }
    let iv = [9u8; 12];
    let mut group = c.benchmark_group("aes_gcm_engine");
    group.sample_size(10);
    for size in [64 * 1024usize, 1 << 20] {
        let data = vec![7u8; size];
        let mut out = vec![0u8; size];
        group.throughput(Throughput::Bytes(size as u64));
        for gcm in &lanes {
            group.bench_function(format!("{}/{size}B", gcm.engine_name()), |b| {
                b.iter(|| gcm.encrypt_into(&iv, b"bench", &data, &mut out).unwrap())
            });
        }
        let reference = &lanes[lanes.len() - 1];
        group.bench_function(format!("reference/{size}B"), |b| {
            b.iter(|| reference.encrypt_reference(&iv, b"bench", &data).unwrap())
        });
    }
    group.finish();
}

/// Intra-buffer CTR thread fan-out on a 1 MiB seal (bit-identical output for every
/// thread count; wall-clock scaling shows on multi-core hosts only).
fn bench_seal_thread_sweep(c: &mut Criterion) {
    let key = Key::new(&[0x17u8; 16]).unwrap();
    let gcm = key.gcm();
    let size = 1 << 20;
    let data = vec![3u8; size];
    let mut arena = vec![0u8; sealed_len(size)];
    let iv = [5u8; 12];
    let mut group = c.benchmark_group("seal_into_1mib_threads");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(size as u64));
    for threads in [1usize, 2, 4] {
        group.bench_function(format!("{threads}t"), |b| {
            b.iter(|| {
                seal_into_with_threads(&gcm, &data, b"tensor", &iv, &mut arena, threads).unwrap()
            })
        });
    }
    group.finish();
}

/// The allocating convenience API (fresh IV + key-schedule per call), for comparison
/// with the zero-copy path above — this is what non-hot-path callers pay.
fn bench_sealed_buffer(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let key = Key::generate_128(&mut rng);
    let mut group = c.benchmark_group("aes_gcm_seal");
    group.sample_size(10);
    for size in [4 * 1024usize, 64 * 1024] {
        let data = vec![7u8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_function(format!("{size}B"), |b| {
            b.iter(|| SealedBuffer::seal(&key, &data, &mut rng).unwrap())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_engine_lanes,
    bench_seal_thread_sweep,
    bench_sealed_buffer
);
criterion_main!(benches);
