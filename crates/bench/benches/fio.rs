//! Criterion benchmark of the FIO device-characterization sweep (Fig. 2).

use criterion::{criterion_group, criterion_main, Criterion};
use plinius_pmem::figure2_sweep;

fn bench_fio(c: &mut Criterion) {
    let mut group = c.benchmark_group("fio");
    group.sample_size(10);
    group.bench_function("figure2_sweep", |b| b.iter(figure2_sweep));
    group.finish();
}

criterion_group!(benches, bench_fio);
criterion_main!(benches);
