//! Criterion benchmark of the Fig. 8 data pipeline: decrypting a training batch from PM
//! versus staging it unencrypted.

use criterion::{criterion_group, criterion_main, Criterion};
use plinius_bench::iteration_sweep;
use sim_clock::CostModel;

fn bench_iteration(c: &mut Criterion) {
    let cost = CostModel::sgx_eml_pm();
    let mut group = c.benchmark_group("iteration_pipeline");
    group.sample_size(10);
    group.bench_function("batch128", |b| {
        b.iter(|| iteration_sweep(&cost, &[128], 256).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_iteration);
criterion_main!(benches);
