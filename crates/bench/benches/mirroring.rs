//! Criterion benchmark of one Fig. 7 measurement point (PM mirroring vs SSD
//! checkpointing for a small model), exercising the full save/restore paths.

use criterion::{criterion_group, criterion_main, Criterion};
use plinius_bench::mirror_point;
use sim_clock::CostModel;

fn bench_mirroring(c: &mut Criterion) {
    let mut group = c.benchmark_group("mirroring_4mb_model");
    group.sample_size(10);
    for cost in CostModel::both_servers() {
        group.bench_function(cost.profile.to_string(), |b| {
            b.iter(|| mirror_point(&cost, 4).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mirroring);
criterion_main!(benches);
