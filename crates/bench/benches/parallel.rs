//! Wall-clock Criterion benchmarks of the rebuilt compute hot path: the blocked /
//! multi-threaded GEMM (against the naive reference kernel) and the chunk-parallel
//! mirror-out sealing across thread counts.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use plinius::{MirrorModel, PliniusContext};
use plinius_crypto::Key;
use plinius_darknet::config::{build_network, mnist_cnn_config};
use plinius_darknet::matrix::{
    gemm_reference, gemm_with_engine, gemm_with_threads, GEMM_DEFAULT_KC,
};
use plinius_darknet::{avx2_available, avx512_available, fma_available, GemmKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const DIM: usize = 256;

fn bench_gemm(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(7);
    let a: Vec<f32> = (0..DIM * DIM).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let b: Vec<f32> = (0..DIM * DIM).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let mut out = vec![0.0f32; DIM * DIM];
    let mut group = c.benchmark_group(format!("gemm_{DIM}x{DIM}x{DIM}"));
    group.sample_size(10);
    // 2 flops (mul + add) per inner-product term.
    group.throughput(Throughput::Elements((2 * DIM * DIM * DIM) as u64));
    // `nn` is conv-forward layout; `nt` is the connected-layer / conv-weight-gradient
    // layout and `tn` the conv input-gradient layout, where the reference kernel's
    // `ldb`/`lda`-strided walks are worst.
    for (label, ta, tb) in [
        ("nn", false, false),
        ("nt", false, true),
        ("tn", true, false),
    ] {
        group.bench_function(format!("reference_{label}"), |bch| {
            bch.iter(|| {
                gemm_reference(
                    ta, tb, DIM, DIM, DIM, 1.0, &a, DIM, &b, DIM, 0.0, &mut out, DIM,
                );
                black_box(out[0])
            })
        });
        for threads in [1usize, 2, 4] {
            group.bench_function(format!("blocked_{label}_{threads}t"), |bch| {
                bch.iter(|| {
                    gemm_with_threads(
                        threads, ta, tb, DIM, DIM, DIM, 1.0, &a, DIM, &b, DIM, 0.0, &mut out, DIM,
                    );
                    black_box(out[0])
                })
            });
        }
        // One single-thread lane per *available* engine so `cargo bench` compares
        // the dispatcher's kernels side by side on the same shape; unavailable
        // engines are skipped rather than benchmarking a silent fallback.
        let mut engines = vec![GemmKind::Scalar];
        if avx2_available() {
            engines.push(GemmKind::Avx2);
        }
        if avx512_available() {
            engines.push(GemmKind::Avx512);
        }
        if fma_available() {
            engines.push(GemmKind::Avx2Fma);
        }
        if avx512_available() {
            engines.push(GemmKind::Avx512Fma);
        }
        for engine in engines {
            group.bench_function(format!("engine_{}_{label}_1t", engine.name()), |bch| {
                bch.iter(|| {
                    gemm_with_engine(
                        engine,
                        1,
                        GEMM_DEFAULT_KC,
                        ta,
                        tb,
                        DIM,
                        DIM,
                        DIM,
                        1.0,
                        &a,
                        DIM,
                        &b,
                        DIM,
                        0.0,
                        &mut out,
                        DIM,
                    );
                    black_box(out[0])
                })
            });
        }
    }
    group.finish();
}

fn bench_mirror_seal(c: &mut Criterion) {
    // A deep CNN with many similar-sized conv layers: per-tensor sealing parallelism
    // balances across threads (a single huge FC tensor would serialise the batch).
    let mut rng = StdRng::seed_from_u64(11);
    let network = build_network(&mnist_cnn_config(12, 64, 1), &mut rng).expect("bench model");
    let model_bytes = network.model_bytes();
    let ctx = PliniusContext::small_test(model_bytes * 3 + (4 << 20));
    ctx.provision_key_directly(Key::generate_128(&mut rng));
    let mirror = MirrorModel::allocate(&ctx, &network).expect("mirror");
    let mut group = c.benchmark_group("mirror_out_seal_deep_cnn");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(model_bytes as u64));
    for threads in [1usize, 2, 4] {
        group.bench_function(format!("{threads}t"), |bch| {
            bch.iter(|| {
                mirror
                    .mirror_out_with_threads(&ctx, &network, threads)
                    .expect("mirror-out")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gemm, bench_mirror_seal);
criterion_main!(benches);
