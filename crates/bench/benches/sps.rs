//! Criterion benchmark of the SPS workload (Fig. 6) for the three Romulus flavours.

use criterion::{criterion_group, criterion_main, Criterion};
use plinius_romulus::sps::{run_sps, SpsConfig};
use plinius_romulus::Flavor;
use plinius_sgx::Enclave;
use sim_clock::CostModel;

fn bench_sps(c: &mut Criterion) {
    let cost = CostModel::sgx_eml_pm();
    let mut group = c.benchmark_group("sps_64_swaps_per_tx");
    group.sample_size(10);
    group.bench_function("native", |b| {
        b.iter(|| run_sps(Flavor::Native, &cost, &SpsConfig::small(64)).unwrap())
    });
    group.bench_function("sgx_romulus", |b| {
        b.iter(|| {
            let enclave = Enclave::builder(b"sgx".to_vec())
                .cost_model(cost.clone())
                .build();
            run_sps(Flavor::Sgx(enclave), &cost, &SpsConfig::small(64)).unwrap()
        })
    });
    group.bench_function("scone_romulus", |b| {
        b.iter(|| {
            let enclave = Enclave::builder(b"scone".to_vec())
                .cost_model(cost.clone())
                .build();
            run_sps(Flavor::Scone(enclave), &cost, &SpsConfig::small(64)).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_sps);
criterion_main!(benches);
