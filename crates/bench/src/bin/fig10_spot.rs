//! Regenerates Fig. 10: model training driven by an AWS EC2 spot-instance price trace
//! (loss curve + instance state curve), with and without crash resilience.

use plinius::{
    spot_crash_schedule, train_with_crash_schedule, PersistenceBackend, PipelineMode,
    TrainerConfig, TrainingSetup,
};
use plinius_bench::{cli, RunMode};
use plinius_darknet::{mnist_cnn_config, synthetic_mnist};
use plinius_spot::{SpotSimulator, SpotTrace};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sim_clock::CostModel;

fn main() {
    let (mode, trace_path) = cli::parse_args_single_input();
    let (iters, conv_layers, batch, samples) = match mode {
        RunMode::Smoke => (12, 1, 8, 64),
        RunMode::Full => (500, 12, 128, 4096),
        _ => (100, 4, 16, 512),
    };
    let max_bid = 0.0955;
    let mut rng = StdRng::seed_from_u64(38);
    // Spot trace: use a real CSV passed as the argument, otherwise synthesize one.
    let trace = trace_path
        .and_then(|path| std::fs::read_to_string(path).ok())
        .and_then(|text| SpotTrace::parse_csv(&text).ok())
        .unwrap_or_else(|| SpotTrace::synthetic(160, 0.0912, &mut rng));
    let sim = SpotSimulator::new(trace, max_bid);
    println!("Figure 10 — spot-instance training (max bid {max_bid}, {} interruptions, availability {:.1}%)",
        sim.interruptions(), sim.availability() * 100.0);
    println!("\n  (b/d) instance state curve (minute, price, running):");
    for step in sim.state_curve().iter().step_by(8) {
        println!(
            "    t={:>5} min  price={:.4}  running={}",
            step.minute,
            step.price,
            u8::from(step.running)
        );
    }
    let iterations_per_step = 4;
    let schedule = spot_crash_schedule(&sim, iterations_per_step);
    let setup = TrainingSetup {
        cost: CostModel::eml_sgx_pm(),
        pm_bytes: 96 * 1024 * 1024,
        model_config: mnist_cnn_config(conv_layers, 8, batch),
        dataset: synthetic_mnist(samples, &mut rng),
        trainer: TrainerConfig {
            batch,
            max_iterations: iters,
            mirror_frequency: 1,
            encrypted_data: true,
            seed: 4,
            pipeline: PipelineMode::from_env(),
            ring_depth: plinius::ring_depth_from_env(),
            crypto: plinius::EnginePolicy::from_env(),
            gemm: plinius::GemmPolicy::from_env(),
        },
        backend: PersistenceBackend::PmMirror,
        model_seed: 6,
    };
    for (label, resilient) in [
        ("(a) crash-resilient spot training", true),
        ("(c) non-crash-resilient spot training", false),
    ] {
        match train_with_crash_schedule(&setup, &schedule, resilient) {
            Ok(report) => {
                println!("\n{label}: completed iteration {}, executed {} iterations, {} interruptions hit",
                    report.completed_iteration, report.total_iterations_executed, report.crashes);
                for (i, loss) in report.losses.iter().enumerate().step_by(10) {
                    println!("    iter {:>5}: {:.4}", i + 1, loss);
                }
            }
            Err(e) => eprintln!("{label} failed: {e}"),
        }
    }
}
