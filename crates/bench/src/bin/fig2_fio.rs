//! Regenerates Fig. 2: FIO read/write throughput on SSD (Ext4), PM (Ext4+DAX) and
//! Ramdisk (tmpfs) for sequential/random workloads with 1-8 threads.

use plinius_pmem::figure2_sweep;

fn main() {
    // The sweep is fixed-size; parsing still validates the command line (`--smoke` is
    // accepted for the smoke-test harness, unknown flags are an error).
    plinius_bench::cli::parse_args_mode_only();
    println!("Figure 2 — storage characterization (throughput in GB/s)");
    println!(
        "{:<10} {:<12} {:<7} {:>8} {:>12}",
        "device", "pattern", "op", "threads", "GB/s"
    );
    for r in figure2_sweep() {
        println!(
            "{:<10} {:<12} {:<7} {:>8} {:>12.3}",
            r.job.device.to_string(),
            r.job.pattern.to_string(),
            r.job.op.to_string(),
            r.job.threads,
            r.throughput_gbps()
        );
    }
}
