//! Regenerates Fig. 6: SPS benchmark (swaps/us vs transaction size) comparing native
//! Romulus, sgx-romulus and scone-romulus for two PWB+fence combinations.

use plinius_bench::{cli, RunMode};
use plinius_romulus::sps::figure6_sweep;
use sim_clock::CostModel;

fn main() {
    let transactions = match cli::parse_args_mode_only() {
        RunMode::Smoke => 2,
        RunMode::Quick => 8,
        _ => 24,
    };
    let cost = CostModel::sgx_eml_pm();
    println!(
        "Figure 6 — SPS on {} ({} transactions per point)",
        cost.profile, transactions
    );
    println!(
        "{:<20} {:<16} {:>10} {:>12}",
        "PWB+fence", "system", "swaps/tx", "swaps/us"
    );
    match figure6_sweep(&cost, transactions) {
        Ok(results) => {
            for r in results {
                println!(
                    "{:<20} {:<16} {:>10} {:>12.2}",
                    r.pwb.to_string(),
                    r.flavor,
                    r.swaps_per_tx,
                    r.swaps_per_us
                );
            }
        }
        Err(e) => eprintln!("sweep failed: {e}"),
    }
}
