//! Regenerates Fig. 6: SPS benchmark (swaps/us vs transaction size) comparing native
//! Romulus, sgx-romulus and scone-romulus for two PWB+fence combinations, followed by a
//! wall-clock thread-count sweep of the rebuilt compute hot path (blocked GEMM and
//! chunk-parallel mirror-out sealing).

use plinius::{MirrorModel, PliniusContext};
use plinius_bench::{cli, RunMode};
use plinius_crypto::Key;
use plinius_darknet::config::{build_network, mnist_cnn_config};
use plinius_darknet::matrix::gemm_with_threads;
use plinius_romulus::sps::figure6_sweep;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sim_clock::CostModel;
use std::time::Instant;

fn main() {
    let mode = cli::parse_args_mode_only();
    let transactions = match mode {
        RunMode::Smoke => 2,
        RunMode::Quick => 8,
        _ => 24,
    };
    let cost = CostModel::sgx_eml_pm();
    println!(
        "Figure 6 — SPS on {} ({} transactions per point)",
        cost.profile, transactions
    );
    println!(
        "{:<20} {:<16} {:>10} {:>12}",
        "PWB+fence", "system", "swaps/tx", "swaps/us"
    );
    match figure6_sweep(&cost, transactions) {
        Ok(results) => {
            for r in results {
                println!(
                    "{:<20} {:<16} {:>10} {:>12.2}",
                    r.pwb.to_string(),
                    r.flavor,
                    r.swaps_per_tx,
                    r.swaps_per_us
                );
            }
        }
        Err(e) => eprintln!("sweep failed: {e}"),
    }
    parallel_hot_path_sweep(mode);
}

/// Wall-clock throughput of the two parallelised hot paths at 1/2/4/auto threads.
/// On a multi-core host the GEMM and seal columns scale with the thread count; results
/// are bit-identical at every point (the determinism tests assert this), so the sweep
/// only reports speed.
fn parallel_hot_path_sweep(mode: RunMode) {
    let (dim, conv_layers, filters, reps) = match mode {
        RunMode::Smoke => (64usize, 2usize, 8usize, 1u32),
        RunMode::Quick => (192, 6, 32, 2),
        _ => (256, 12, 64, 3),
    };
    let auto = plinius_parallel::max_threads();
    let mut threads: Vec<usize> = vec![1, 2, 4, auto];
    threads.sort_unstable();
    threads.dedup();

    let mut rng = StdRng::seed_from_u64(6);
    let a: Vec<f32> = (0..dim * dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let b: Vec<f32> = (0..dim * dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let mut out = vec![0.0f32; dim * dim];

    let network =
        build_network(&mnist_cnn_config(conv_layers, filters, 1), &mut rng).expect("sweep model");
    let model_bytes = network.model_bytes();
    let ctx = PliniusContext::small_test(model_bytes * 3 + (8 << 20));
    ctx.provision_key_directly(Key::generate_128(&mut rng));
    let mirror = MirrorModel::allocate(&ctx, &network).expect("mirror allocation");

    println!();
    println!(
        "Parallel hot-path sweep (wall-clock; gemm {dim}x{dim}x{dim} on the {} engine, \
         model {:.1} MB, auto = {auto} threads)",
        plinius_darknet::selected_gemm().name(),
        model_bytes as f64 / (1024.0 * 1024.0)
    );
    println!(
        "{:<10} {:>14} {:>16}",
        "threads", "gemm GFLOP/s", "seal MiB/s"
    );
    for &t in &threads {
        let start = Instant::now();
        for _ in 0..reps {
            gemm_with_threads(
                t, false, false, dim, dim, dim, 1.0, &a, dim, &b, dim, 0.0, &mut out, dim,
            );
        }
        let gemm_s = start.elapsed().as_secs_f64() / reps as f64;
        let gflops = (2 * dim * dim * dim) as f64 / gemm_s / 1e9;

        let start = Instant::now();
        for _ in 0..reps {
            mirror
                .mirror_out_with_threads(&ctx, &network, t)
                .expect("mirror-out");
        }
        let seal_s = start.elapsed().as_secs_f64() / reps as f64;
        let seal_mibs = model_bytes as f64 / seal_s / (1024.0 * 1024.0);

        let label = if t == auto {
            format!("{t} (auto)")
        } else {
            t.to_string()
        };
        println!("{label:<10} {gflops:>14.2} {seal_mibs:>16.1}");
    }
}
