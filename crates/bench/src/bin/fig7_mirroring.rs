//! Regenerates Fig. 7: PM mirroring vs SSD checkpointing save/restore latency versus
//! model size, for both server profiles (sgx-emlPM and emlSGX-PM).

use plinius_bench::{
    aead_sweep, cli, mirroring_sweep, pipeline_point, print_aead_sweep, print_pipeline_point,
    RunMode, AEAD_SIZES, AEAD_SIZES_SMOKE, FIG7_SIZES_MB, FIG7_SIZES_QUICK_MB, FIG7_SIZES_SMOKE_MB,
};
use sim_clock::CostModel;

fn main() {
    let mode = cli::parse_args_mode_only();
    let sizes: &[usize] = match mode {
        RunMode::Smoke => &FIG7_SIZES_SMOKE_MB,
        RunMode::Quick => &FIG7_SIZES_QUICK_MB,
        _ => &FIG7_SIZES_MB,
    };
    let aead_sizes: &[usize] = match mode {
        RunMode::Full => &AEAD_SIZES,
        _ => &AEAD_SIZES_SMOKE,
    };
    let (pipeline_iters, pipeline_batch) = plinius_bench::pipeline_scale(mode);
    for cost in CostModel::both_servers() {
        println!("\nFigure 7 — {} (latencies in ms, simulated)", cost.profile);
        println!(
            "{:>7} {:>8} | {:>10} {:>10} {:>10} | {:>10} {:>10} {:>10} | {:>10} {:>10} | {:>10} {:>10}",
            "MB", "EPC", "enc(PM)", "write(PM)", "save(PM)", "enc(SSD)", "write(SSD)", "save(SSD)",
            "read(PM)", "dec(PM)", "read(SSD)", "dec(SSD)"
        );
        match mirroring_sweep(&cost, sizes) {
            Ok(points) => {
                for p in points {
                    println!(
                        "{:>7} {:>8} | {:>10.1} {:>10.1} {:>10.1} | {:>10.1} {:>10.1} {:>10.1} | {:>10.1} {:>10.1} | {:>10.1} {:>10.1}",
                        p.target_mb,
                        if p.beyond_epc { "beyond" } else { "below" },
                        p.pm_encrypt_ms, p.pm_write_ms, p.pm_save_ms(),
                        p.ssd_encrypt_ms, p.ssd_write_ms, p.ssd_save_ms(),
                        p.pm_read_ms, p.pm_decrypt_ms,
                        p.ssd_read_ms, p.ssd_decrypt_ms
                    );
                }
            }
            Err(e) => eprintln!("sweep failed: {e}"),
        }
        // The pipeline companion: what the overlapped persistence engine buys on the
        // same profile (simulated per-iteration overhead + wall-clock run time).
        match pipeline_point(&cost, pipeline_iters, pipeline_batch) {
            Ok(p) => print_pipeline_point(&cost.profile.to_string(), &p),
            Err(e) => eprintln!("pipeline sweep failed: {e}"),
        }
    }
    // The figure's latencies above are simulated (cost-model driven); this appendix
    // reports what the rebuilt software AEAD engine does on the *host* hardware —
    // the component that bounds a real mirror-out's encryption share.
    print_aead_sweep(&aead_sweep(aead_sizes));
}
