//! Regenerates Fig. 7: PM mirroring vs SSD checkpointing save/restore latency versus
//! model size, for both server profiles (sgx-emlPM and emlSGX-PM).

use plinius_bench::{
    cli, mirroring_sweep, RunMode, FIG7_SIZES_MB, FIG7_SIZES_QUICK_MB, FIG7_SIZES_SMOKE_MB,
};
use sim_clock::CostModel;

fn main() {
    let sizes: &[usize] = match cli::parse_args_mode_only() {
        RunMode::Smoke => &FIG7_SIZES_SMOKE_MB,
        RunMode::Quick => &FIG7_SIZES_QUICK_MB,
        _ => &FIG7_SIZES_MB,
    };
    for cost in CostModel::both_servers() {
        println!("\nFigure 7 — {} (latencies in ms, simulated)", cost.profile);
        println!(
            "{:>7} {:>8} | {:>10} {:>10} {:>10} | {:>10} {:>10} {:>10} | {:>10} {:>10} | {:>10} {:>10}",
            "MB", "EPC", "enc(PM)", "write(PM)", "save(PM)", "enc(SSD)", "write(SSD)", "save(SSD)",
            "read(PM)", "dec(PM)", "read(SSD)", "dec(SSD)"
        );
        match mirroring_sweep(&cost, sizes) {
            Ok(points) => {
                for p in points {
                    println!(
                        "{:>7} {:>8} | {:>10.1} {:>10.1} {:>10.1} | {:>10.1} {:>10.1} {:>10.1} | {:>10.1} {:>10.1} | {:>10.1} {:>10.1}",
                        p.target_mb,
                        if p.beyond_epc { "beyond" } else { "below" },
                        p.pm_encrypt_ms, p.pm_write_ms, p.pm_save_ms(),
                        p.ssd_encrypt_ms, p.ssd_write_ms, p.ssd_save_ms(),
                        p.pm_read_ms, p.pm_decrypt_ms,
                        p.ssd_read_ms, p.ssd_decrypt_ms
                    );
                }
            }
            Err(e) => eprintln!("sweep failed: {e}"),
        }
    }
}
