//! Regenerates Fig. 8: per-iteration training time versus batch size for encrypted and
//! unencrypted MNIST-like data on both server profiles.

use plinius_bench::{cli, iteration_sweep, RunMode};
use sim_clock::CostModel;

fn main() {
    let mode = cli::parse_args_mode_only();
    let batches: Vec<usize> = match mode {
        RunMode::Smoke => vec![8],
        RunMode::Quick => vec![16, 128, 512],
        _ => vec![16, 64, 128, 256, 512, 1024],
    };
    let samples = match mode {
        RunMode::Smoke => 64,
        RunMode::Quick => 256,
        _ => 1024,
    };
    for cost in CostModel::both_servers() {
        println!(
            "\nFigure 8 — {} (seconds per iteration, simulated)",
            cost.profile
        );
        println!(
            "{:>8} {:>16} {:>18} {:>10}",
            "batch", "encrypted (s)", "unencrypted (s)", "overhead"
        );
        match iteration_sweep(&cost, &batches, samples) {
            Ok(points) => {
                for p in points {
                    println!(
                        "{:>8} {:>16.4} {:>18.4} {:>9.2}x",
                        p.batch,
                        p.encrypted_s,
                        p.plaintext_s,
                        p.overhead()
                    );
                }
            }
            Err(e) => eprintln!("sweep failed: {e}"),
        }
    }
}
