//! Regenerates Fig. 9: training-loss curves with random crash/restarts, for the
//! crash-resilient (Plinius mirroring) and non-crash-resilient systems.
//!
//! The model and iteration counts are scaled down from the paper (5 LReLU conv layers,
//! 500 iterations) so the run completes quickly on a laptop; pass --full for the
//! paper-scale run.

use plinius::{
    train_with_crash_schedule, PersistenceBackend, PipelineMode, TrainerConfig, TrainingSetup,
};
use plinius_bench::{cli, RunMode};
use plinius_darknet::{mnist_cnn_config, synthetic_mnist};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sim_clock::CostModel;

fn main() {
    let (iters, conv_layers, batch, samples, crashes) = match cli::parse_args_mode_only() {
        RunMode::Smoke => (12, 1, 8, 64, 1),
        RunMode::Full => (500, 5, 128, 4096, 9),
        _ => (100, 3, 16, 512, 4),
    };
    let mut rng = StdRng::seed_from_u64(2021);
    let setup = TrainingSetup {
        cost: CostModel::eml_sgx_pm(),
        pm_bytes: 96 * 1024 * 1024,
        model_config: mnist_cnn_config(conv_layers, 8, batch),
        dataset: synthetic_mnist(samples, &mut rng),
        trainer: TrainerConfig {
            batch,
            max_iterations: iters,
            mirror_frequency: 1,
            encrypted_data: true,
            seed: 9,
            pipeline: PipelineMode::from_env(),
            ring_depth: plinius::ring_depth_from_env(),
            crypto: plinius::EnginePolicy::from_env(),
            gemm: plinius::GemmPolicy::from_env(),
        },
        backend: PersistenceBackend::PmMirror,
        model_seed: 5,
    };
    let crash_points: Vec<u64> = (0..crashes).map(|_| rng.gen_range(5..iters - 5)).collect();
    println!(
        "Figure 9 — crash resilience ({} iterations, crashes at {:?})",
        iters, crash_points
    );
    for (label, resilient) in [
        ("crash-resilient (Plinius)", true),
        ("non-crash-resilient", false),
    ] {
        match train_with_crash_schedule(&setup, &crash_points, resilient) {
            Ok(report) => {
                println!(
                    "\n{label}: completed iteration {}, executed {} iterations total, {} crashes",
                    report.completed_iteration, report.total_iterations_executed, report.crashes
                );
                println!("  loss curve (every 10th executed iteration):");
                for (i, loss) in report.losses.iter().enumerate().step_by(10) {
                    println!("    iter {:>5}: {:.4}", i + 1, loss);
                }
            }
            Err(e) => eprintln!("{label} failed: {e}"),
        }
    }
}
