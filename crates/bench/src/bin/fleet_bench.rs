//! Multi-tenant fleet benchmark: aggregate training throughput and job latency vs
//! tenant count on one shared PM module.
//!
//! For each tenant count `N` the sweep deploys a fresh fleet ([`plinius::Fleet`]):
//! `N` tenants, each with its own Romulus root pair, derived sealing key and PM
//! copy of the dataset, all sharing one simulated PM write lane. It reports
//!
//! * **jobs/hour** — completed training jobs per virtual hour of fleet makespan
//!   (compute overlaps across tenants; publishes serialize on the PM lane);
//! * **p50/p99 job latency** — admission-to-completion, on the virtual lanes;
//! * **makespan vs serial** — how much of the serial cost the overlap hides;
//! * **PM-lane utilisation** — the publish bottleneck as tenant count grows.
//!
//! All numbers come from the sim-clock cost model: deterministic, identical for
//! every `PLINIUS_THREADS` value. `--tenants N` (or `PLINIUS_TENANTS`) replaces
//! the sweep with the single given tenant count.

use plinius::{tenants_from_env, Fleet, FleetConfig, PliniusError, TrainingSetup};
use plinius_bench::{cli, RunMode};
use plinius_darknet::{mnist_cnn_config, synthetic_mnist};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sim_clock::CostModel;

struct Scale {
    iterations: u64,
    mirror_frequency: u64,
    samples: usize,
    batch: usize,
    /// PM pool bytes reserved per tenant (dataset + mirror ring + slack).
    pm_per_tenant: usize,
    tenant_counts: Vec<usize>,
}

fn scale(mode: RunMode) -> Scale {
    match mode {
        RunMode::Smoke => Scale {
            iterations: 4,
            mirror_frequency: 2,
            samples: 96,
            batch: 8,
            pm_per_tenant: 24 * 1024 * 1024,
            tenant_counts: vec![1, 2],
        },
        RunMode::Quick => Scale {
            iterations: 20,
            mirror_frequency: 4,
            samples: 240,
            batch: 8,
            pm_per_tenant: 24 * 1024 * 1024,
            tenant_counts: vec![1, 2, 4],
        },
        RunMode::Full => Scale {
            iterations: 100,
            mirror_frequency: 5,
            samples: 1000,
            batch: 16,
            pm_per_tenant: 48 * 1024 * 1024,
            tenant_counts: vec![1, 2, 4, 8, 16],
        },
        RunMode::Default => Scale {
            iterations: 40,
            mirror_frequency: 5,
            samples: 400,
            batch: 16,
            pm_per_tenant: 32 * 1024 * 1024,
            tenant_counts: vec![1, 2, 4, 8],
        },
    }
}

fn setup_for(scale: &Scale, cost: &CostModel, tenants: usize) -> TrainingSetup {
    let mut rng = StdRng::seed_from_u64(17);
    let mut setup = TrainingSetup::small_test();
    setup.cost = cost.clone();
    setup.pm_bytes = scale.pm_per_tenant * tenants + (8 << 20);
    setup.model_config = mnist_cnn_config(2, 4, scale.batch);
    setup.dataset = synthetic_mnist(scale.samples, &mut rng);
    setup.trainer.batch = scale.batch;
    setup.trainer.max_iterations = scale.iterations;
    setup.trainer.mirror_frequency = scale.mirror_frequency;
    setup.trainer.seed = 29;
    setup
}

fn sweep_point(scale: &Scale, cost: &CostModel, tenants: usize) -> Result<(), PliniusError> {
    let setup = setup_for(scale, cost, tenants);
    let mut fleet = Fleet::deploy(
        setup,
        FleetConfig {
            tenants,
            max_concurrent: 0,
        },
    )?;
    let report = fleet.run()?;
    let utilisation = if report.makespan_ns > 0 {
        100.0 * report.pm_lane_busy_ns as f64 / report.makespan_ns as f64
    } else {
        0.0
    };
    println!(
        "{:>8} {:>12.1} {:>12.3} {:>12.3} {:>13.3} {:>12.3} {:>10.1}",
        tenants,
        report.jobs_per_hour(),
        report.latency.p50_ns as f64 / 1e6,
        report.latency.p99_ns as f64 / 1e6,
        report.makespan_ns as f64 / 1e6,
        report.serial_ns as f64 / 1e6,
        utilisation,
    );
    Ok(())
}

fn main() {
    let mode = cli::parse_args_mode_only();
    let scale = scale(mode);
    // A --tenants/PLINIUS_TENANTS override pins the sweep to that single count.
    let tenant_counts = match std::env::var(plinius::TENANTS_ENV) {
        Ok(_) => vec![tenants_from_env(1)],
        Err(_) => scale.tenant_counts.clone(),
    };
    println!(
        "Fleet benchmark ({mode} scale): {} iterations/job, mirror every {}, batch {}",
        scale.iterations, scale.mirror_frequency, scale.batch
    );
    for cost in CostModel::both_servers() {
        println!("\nTenant sweep — {} (virtual-lane model)", cost.profile);
        println!(
            "{:>8} {:>12} {:>12} {:>12} {:>13} {:>12} {:>10}",
            "tenants",
            "jobs/hour",
            "p50 (ms)",
            "p99 (ms)",
            "makespan(ms)",
            "serial(ms)",
            "PM lane %"
        );
        for &tenants in &tenant_counts {
            if let Err(e) = sweep_point(&scale, &cost, tenants) {
                eprintln!("fleet sweep failed at {tenants} tenants: {e}");
                std::process::exit(1);
            }
        }
    }
}
