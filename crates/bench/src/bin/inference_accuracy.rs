//! Reproduces the secure-inference experiment of §VI: train a CNN on (synthetic) MNIST
//! inside the enclave, then classify the held-out test set and report accuracy.
//! The paper reports 98.52% on real MNIST with a 12-layer model; the synthetic dataset
//! and the scaled-down default model reach a comparable high accuracy.

use plinius::{run_full_workflow, PersistenceBackend, PipelineMode, TrainerConfig, TrainingSetup};
use plinius_bench::{cli, RunMode};
use plinius_darknet::{mnist_cnn_config, synthetic_mnist};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sim_clock::CostModel;

fn main() {
    let (iters, conv_layers, batch, samples) = match cli::parse_args_mode_only() {
        RunMode::Smoke => (10, 1, 8, 120),
        RunMode::Full => (500, 12, 128, 12_000),
        _ => (200, 2, 32, 2400),
    };
    let mut rng = StdRng::seed_from_u64(52);
    let setup = TrainingSetup {
        cost: CostModel::sgx_eml_pm(),
        pm_bytes: 256 * 1024 * 1024,
        model_config: mnist_cnn_config(conv_layers, 8, batch),
        dataset: synthetic_mnist(samples, &mut rng),
        trainer: TrainerConfig {
            batch,
            max_iterations: iters,
            mirror_frequency: 10,
            encrypted_data: true,
            seed: 77,
            pipeline: PipelineMode::from_env(),
            ring_depth: plinius::ring_depth_from_env(),
            crypto: plinius::EnginePolicy::from_env(),
            gemm: plinius::GemmPolicy::from_env(),
        },
        backend: PersistenceBackend::PmMirror,
        model_seed: 11,
    };
    match run_full_workflow(&setup) {
        Ok(report) => {
            println!(
                "Secure inference experiment ({} iterations, {} conv layers)",
                iters, conv_layers
            );
            println!("  attestation ok:     {}", report.attestation_ok);
            println!(
                "  persistence:        {} ({} persists)",
                report.backend, report.persist_stats.persists
            );
            println!("  final loss:         {:.4}", report.final_loss);
            println!("  test accuracy:      {:.2}%", report.test_accuracy * 100.0);
            println!("  PM dataset bytes:   {}", report.pm_dataset_bytes);
            println!(
                "  simulated time:     {:.2} s",
                report.simulated_ns as f64 / 1e9
            );
        }
        Err(e) => eprintln!("workflow failed: {e}"),
    }
}
