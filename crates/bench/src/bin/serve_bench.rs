//! Serving-tier benchmark: open-loop batched inference against the committed PM
//! mirror epoch, swept over offered arrival rates for both training pipelines.
//!
//! Two scenarios per pipeline mode:
//!
//! 1. **Post-training serving** — train to completion, then answer an open-loop
//!    request stream at several arrival rates, reporting throughput and p50/p99
//!    latency on the simulated clock.
//! 2. **Serve-while-training** — interleave training bursts with serving batches on
//!    the live mirror, reporting how many epoch hot-swaps the server performed
//!    mid-traffic.
//!
//! Run with: `cargo run --release --bin serve_bench [--smoke|--quick|--full]`

use plinius::{
    InferenceServer, PersistenceBackend, PipelineMode, PliniusBuilder, PliniusError,
    PliniusTrainer, ServeConfig, ServeSession, TrainerConfig, TrainingSetup,
};
use plinius_bench::{cli, RunMode};
use plinius_darknet::{mnist_cnn_config, synthetic_mnist, Network};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sim_clock::CostModel;

struct Scale {
    train_iterations: u64,
    samples: usize,
    batch: usize,
    requests: u64,
    /// Mean request inter-arrival gaps to sweep, in simulated nanoseconds.
    arrival_ns: Vec<u64>,
}

fn scale(mode: RunMode) -> Scale {
    match mode {
        RunMode::Smoke => Scale {
            train_iterations: 4,
            samples: 96,
            batch: 8,
            requests: 32,
            arrival_ns: vec![1_000_000, 250_000, 50_000],
        },
        RunMode::Quick => Scale {
            train_iterations: 40,
            samples: 400,
            batch: 16,
            requests: 400,
            arrival_ns: vec![1_000_000, 250_000, 50_000],
        },
        RunMode::Full => Scale {
            train_iterations: 300,
            samples: 2000,
            batch: 32,
            requests: 20_000,
            arrival_ns: vec![2_000_000, 500_000, 100_000, 20_000],
        },
        RunMode::Default => Scale {
            train_iterations: 100,
            samples: 1000,
            batch: 32,
            requests: 2_000,
            arrival_ns: vec![1_000_000, 250_000, 50_000],
        },
    }
}

fn setup_for(scale: &Scale, pipeline: PipelineMode) -> TrainingSetup {
    let mut rng = StdRng::seed_from_u64(21);
    TrainingSetup {
        cost: CostModel::sgx_eml_pm(),
        pm_bytes: 128 * 1024 * 1024,
        model_config: mnist_cnn_config(2, 8, scale.batch),
        dataset: synthetic_mnist(scale.samples, &mut rng),
        trainer: TrainerConfig {
            batch: scale.batch,
            max_iterations: scale.train_iterations,
            mirror_frequency: scale.train_iterations.min(5),
            encrypted_data: true,
            seed: 33,
            pipeline,
            ring_depth: plinius::ring_depth_from_env(),
            crypto: plinius::EnginePolicy::from_env(),
            gemm: plinius::GemmPolicy::from_env(),
        },
        backend: PersistenceBackend::PmMirror,
        model_seed: 8,
    }
}

fn attach_server(
    trainer: &PliniusTrainer,
    template: &Network,
) -> Result<InferenceServer, PliniusError> {
    InferenceServer::new(
        trainer.context(),
        trainer
            .mirror_handle()
            .expect("the PM-mirror backend always carries a mirror"),
        template,
    )
}

fn rate_sweep(scale: &Scale, pipeline: PipelineMode) -> Result<(), PliniusError> {
    let setup = setup_for(scale, pipeline);
    let template = setup.build_network()?;
    let mut trainer = PliniusBuilder::new(setup.clone()).build()?;
    trainer.run()?;
    let probe = attach_server(&trainer, &template)?;
    println!(
        "\n[{pipeline:?}] post-training serving — epoch {} from the PM mirror, \
         {} gemm engine",
        probe.epoch(),
        probe.gemm_engine().name()
    );
    println!(
        "{:>14} {:>12} {:>12} {:>12} {:>8}",
        "offered req/s", "served req/s", "p50 (ms)", "p99 (ms)", "batches"
    );
    for &arrival_ns in &scale.arrival_ns {
        let server = attach_server(&trainer, &template)?;
        let mut session = ServeSession::new(
            server,
            setup.dataset.clone(),
            ServeConfig {
                batch: scale.batch,
                arrival_ns,
                requests: scale.requests,
                seed: 99,
            },
        )?;
        let report = session.run()?;
        println!(
            "{:>14.0} {:>12.0} {:>12.3} {:>12.3} {:>8}",
            1e9 / arrival_ns as f64,
            report.throughput_rps(),
            report.latency.p50_ns as f64 / 1e6,
            report.latency.p99_ns as f64 / 1e6,
            report.batches
        );
    }
    Ok(())
}

fn serve_while_training(scale: &Scale, pipeline: PipelineMode) -> Result<(), PliniusError> {
    let setup = setup_for(scale, pipeline);
    let template = setup.build_network()?;
    let mut trainer = PliniusBuilder::new(setup.clone()).build()?;
    // Commit the first epoch, then serve against the live, still-training mirror.
    trainer.run_at_most(setup.trainer.mirror_frequency)?;
    let server = attach_server(&trainer, &template)?;
    let arrival_ns = *scale.arrival_ns.last().unwrap();
    let mut session = ServeSession::new(
        server,
        setup.dataset.clone(),
        ServeConfig {
            batch: scale.batch,
            arrival_ns,
            requests: scale.requests,
            seed: 7,
        },
    )?;
    while !session.is_done() {
        trainer.run_at_most(2)?;
        for _ in 0..2 {
            session.pump_one_batch()?;
        }
    }
    trainer.run()?;
    let report = session.report();
    println!(
        "[{pipeline:?}] serve-while-training — {} requests at {:.0} req/s offered: \
         {:.0} req/s served, {} hot swaps, final epoch {}, p99 {:.3} ms",
        report.served,
        1e9 / arrival_ns as f64,
        report.throughput_rps(),
        report.swaps,
        report.final_epoch,
        report.latency.p99_ns as f64 / 1e6
    );
    Ok(())
}

fn main() {
    let mode = cli::parse_args_mode_only();
    let scale = scale(mode);
    println!(
        "Serving benchmark ({mode} scale): {} requests per rate, batch {}, profile {}",
        scale.requests,
        scale.batch,
        CostModel::sgx_eml_pm().profile
    );
    for pipeline in [PipelineMode::Sync, PipelineMode::Overlapped] {
        if let Err(e) = rate_sweep(&scale, pipeline) {
            eprintln!("rate sweep failed: {e}");
            std::process::exit(1);
        }
        if let Err(e) = serve_while_training(&scale, pipeline) {
            eprintln!("serve-while-training failed: {e}");
            std::process::exit(1);
        }
    }
}
