//! Regenerates Table I: breakdown of mirroring steps (%) and Plinius speed-ups vs SSD
//! checkpointing, below and beyond the EPC limit, for both server profiles. Also prints
//! the PM encryption-metadata accounting of §VI (140 B per layer).

use plinius_bench::{
    aead_sweep, cli, mirroring_sweep, pipeline_point, print_aead_sweep, table1, RunMode,
    AEAD_SIZES, AEAD_SIZES_SMOKE, FIG7_SIZES_MB, FIG7_SIZES_QUICK_MB, FIG7_SIZES_SMOKE_MB,
};
use sim_clock::CostModel;

fn main() {
    let mode = cli::parse_args_mode_only();
    let sizes: &[usize] = match mode {
        RunMode::Smoke => &FIG7_SIZES_SMOKE_MB,
        RunMode::Quick => &FIG7_SIZES_QUICK_MB,
        _ => &FIG7_SIZES_MB,
    };
    let aead_sizes: &[usize] = match mode {
        RunMode::Full => &AEAD_SIZES,
        _ => &AEAD_SIZES_SMOKE,
    };
    for cost in CostModel::both_servers() {
        match mirroring_sweep(&cost, sizes) {
            Ok(points) => {
                let t = table1(&points);
                println!("\nTable I — {} ({mode} sweep)", cost.profile);
                println!("  (a) Breakdown of mirroring steps (%)        below EPC   beyond EPC");
                println!(
                    "      Save:    Encrypt                        {:>8.1}    {:>8.1}",
                    t.save_encrypt_pct_below, t.save_encrypt_pct_beyond
                );
                println!(
                    "               Write                          {:>8.1}    {:>8.1}",
                    100.0 - t.save_encrypt_pct_below,
                    100.0 - t.save_encrypt_pct_beyond
                );
                println!(
                    "      Restore: Read                           {:>8.1}    {:>8.1}",
                    t.restore_read_pct_below, t.restore_read_pct_beyond
                );
                println!(
                    "               Decrypt                        {:>8.1}    {:>8.1}",
                    100.0 - t.restore_read_pct_below,
                    100.0 - t.restore_read_pct_beyond
                );
                println!("  (b) Plinius speed-ups vs SSD                below EPC   beyond EPC");
                println!(
                    "      Save:    Write                          {:>7.1}x    {:>7.1}x",
                    t.write_speedup.0, t.write_speedup.1
                );
                println!(
                    "               Total                          {:>7.1}x    {:>7.1}x",
                    t.save_speedup.0, t.save_speedup.1
                );
                println!(
                    "      Restore: Read                           {:>7.1}x    {:>7.1}x",
                    t.read_speedup.0, t.read_speedup.1
                );
                println!(
                    "               Total                          {:>7.1}x    {:>7.1}x",
                    t.restore_speedup.0, t.restore_speedup.1
                );
            }
            Err(e) => eprintln!("sweep failed: {e}"),
        }
        // (c) What the overlapped persistence engine buys on this profile: the save
        // breakdown above is the Sync cost; pipelined, only the non-hidden share
        // stays on the training critical path.
        let (iters, batch) = plinius_bench::pipeline_scale(mode);
        match pipeline_point(&cost, iters, batch) {
            Ok(p) => {
                println!("  (c) Pipelined mirroring ({iters} iters, batch {batch})");
                println!(
                    "      Overhead/iter: sync {:.3} ms, overlapped {:.3} ms ({:.2}x), compute {:.3} ms",
                    p.sync_overhead_ms,
                    p.overlapped_overhead_ms,
                    p.overhead_ratio(),
                    p.base_ms_per_iter
                );
            }
            Err(e) => eprintln!("pipeline sweep failed: {e}"),
        }
    }
    println!("\nPM encryption metadata: 28 B per parameter buffer (12 B IV + 16 B MAC), 5 buffers per layer = 140 B per layer.");
    // Table Ia's encryption share is what the AEAD engine's real throughput buys
    // down on actual hardware; report the engine's wall-clock numbers alongside.
    print_aead_sweep(&aead_sweep(aead_sizes));
}
