//! Reproduces the §V trusted-computing-base accounting: lines of code inside vs outside
//! the enclave, and the reduction achieved by partitioning instead of a libOS approach.

use plinius_bench::tcb_report;
use std::path::PathBuf;

fn main() {
    // The accounting has no scale knob; parsing still validates the command line.
    plinius_bench::cli::parse_args_mode_only();
    let crates_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("..");
    let report = tcb_report(&crates_dir);
    println!("TCB accounting (non-empty lines of Rust)");
    println!("  Trusted (in-enclave) components:");
    for (name, loc) in &report.trusted {
        println!("    {:<12} {:>8}", name, loc);
    }
    println!("  Untrusted components:");
    for (name, loc) in &report.untrusted {
        println!("    {:<12} {:>8}", name, loc);
    }
    println!("  total trusted LoC:   {:>8}", report.trusted_loc());
    println!("  total untrusted LoC: {:>8}", report.untrusted_loc());
    println!(
        "  TCB reduction vs running everything inside the enclave: {:.1}%",
        report.tcb_reduction_pct()
    );
}
