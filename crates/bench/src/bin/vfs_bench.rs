//! Epoch-ring / VFS cost sweep: what a deeper epoch ring costs and retains.
//!
//! For each ring depth `R` the sweep allocates a fresh PM mirror, publishes enough
//! epochs to wrap the ring, and reports
//!
//! * the simulated per-publish cost (seal + PM write + the epoch-flip transaction),
//! * the recovery-scan cost (re-opening the mirror from its PM root and listing the
//!   retained epochs, as a restarted process would), and
//! * how many sealed bytes the ring pins in PM — the capacity price of time-travel —
//!   measured through the VFS the way an external inspector would see it.
//!
//! `--ring N` (or `PLINIUS_RING`) does not apply here: this binary sweeps ring depths
//! itself.

use plinius::{MirrorModel, MirrorVfs, PliniusContext, PliniusError, Vfs};
use plinius_bench::{cli, RunMode};
use plinius_crypto::Key;
use plinius_darknet::config::{build_network, mnist_cnn_config};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sim_clock::CostModel;

struct RingPoint {
    ring: usize,
    publishes: u64,
    publish_ms: f64,
    scan_ms: f64,
    scan_wall_us: f64,
    epochs_retained: usize,
    bytes_retained: usize,
}

fn ring_point(cost: &CostModel, ring: usize, publishes: u64) -> Result<RingPoint, PliniusError> {
    let mut rng = StdRng::seed_from_u64(ring as u64 ^ 0x5eed);
    let network = build_network(&mnist_cnn_config(2, 8, 4), &mut rng)?;
    let model_bytes = network.model_bytes();
    // Twin Romulus regions, each holding the R ring slots of the sealed model + slack.
    let pool_bytes = model_bytes * (2 * ring + 1) + (4 << 20);
    let ctx = PliniusContext::create(cost.clone(), pool_bytes)?;
    ctx.provision_key_directly(Key::generate_128(&mut rng));
    let mirror = MirrorModel::allocate_with_ring(&ctx, &network, ring)?;
    let mut network = network;
    let clock = ctx.clock();

    // Publish cost: enough epochs to wrap the ring at least once.
    let publish_start = clock.now_ns();
    for i in 1..=publishes {
        network.set_iteration(i);
        mirror.mirror_out(&ctx, &network)?;
    }
    let publish_ns = clock.now_ns() - publish_start;

    // Recovery scan: what a restarted process pays to find its epochs again —
    // re-open the mirror from the PM root and enumerate the ring.
    let wall_start = std::time::Instant::now();
    let scan_start = clock.now_ns();
    let reopened = MirrorModel::open(&ctx)?;
    let epochs = reopened.epochs(&ctx)?;
    let scan_ns = clock.now_ns() - scan_start;
    let scan_wall_us = wall_start.elapsed().as_secs_f64() * 1e6;

    // Bytes retained, measured through the VFS like an external inspector would:
    // every sealed file of every retained epoch directory.
    let vfs = MirrorVfs::new(&ctx, &reopened);
    let mut bytes_retained = 0usize;
    for dir in vfs.list("/epoch")? {
        for entry in vfs.list(&format!("/epoch/{}", dir.name))? {
            if entry.name.ends_with(".sealed") {
                bytes_retained += entry.len;
            }
        }
    }

    Ok(RingPoint {
        ring,
        publishes,
        publish_ms: publish_ns as f64 / publishes as f64 / 1e6,
        scan_ms: scan_ns as f64 / 1e6,
        scan_wall_us,
        epochs_retained: epochs.len(),
        bytes_retained,
    })
}

fn main() {
    let mode = cli::parse_args_mode_only();
    let rings: &[usize] = match mode {
        RunMode::Smoke => &[2, 4],
        RunMode::Quick => &[2, 4, 8],
        _ => &[2, 4, 8, 16, 32],
    };
    for cost in CostModel::both_servers() {
        println!(
            "\nEpoch-ring sweep — {} (simulated costs; scan wall-clock for reference)",
            cost.profile
        );
        println!(
            "{:>5} {:>10} {:>12} {:>10} {:>13} {:>9} {:>14}",
            "R",
            "publishes",
            "publish(ms)",
            "scan(ms)",
            "scan-wall(us)",
            "epochs",
            "bytes-retained"
        );
        for &ring in rings {
            // Wrap every ring at least once so eviction costs are in the numbers.
            let publishes = (2 * ring).max(4) as u64;
            match ring_point(&cost, ring, publishes) {
                Ok(p) => println!(
                    "{:>5} {:>10} {:>12.3} {:>10.3} {:>13.1} {:>9} {:>14}",
                    p.ring,
                    p.publishes,
                    p.publish_ms,
                    p.scan_ms,
                    p.scan_wall_us,
                    p.epochs_retained,
                    p.bytes_retained
                ),
                Err(e) => eprintln!("ring depth {ring} failed: {e}"),
            }
        }
    }
}
