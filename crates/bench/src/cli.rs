//! Shared command-line handling for the figure-reproduction binaries.
//!
//! Every `src/bin/*` binary accepts the same three scale flags (`--smoke`, `--quick`,
//! `--full`), a worker-thread override (`--threads N`, the CLI face of the
//! `PLINIUS_THREADS` environment variable), an epoch-ring-depth override (`--ring N`,
//! the CLI face of `PLINIUS_RING`), a tenant-count override (`--tenants N`, the CLI
//! face of `PLINIUS_TENANTS`), a crypto-engine override (`--crypto
//! {auto|scalar|reference}`, the CLI face of `PLINIUS_CRYPTO`), a GEMM-engine
//! override (`--gemm {auto|scalar|reference|fma}`, the CLI face of `PLINIUS_GEMM`)
//! plus optional positional inputs (e.g. a spot-price CSV for `fig10_spot`).
//! Unknown flags and malformed values are an error: a typo like `--smokee` aborts
//! the run instead of being silently ignored and launching a paper-scale sweep.

use plinius::{EnginePolicy, GemmPolicy};
use std::fmt;

/// Scale of a figure-reproduction run, shared by every `src/bin/*` binary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunMode {
    /// Tiny bitrot-guard configuration (`--smoke`, used by the smoke tests).
    Smoke,
    /// Reduced sweep for interactive runs (`--quick`).
    Quick,
    /// The binary's default scale.
    Default,
    /// Paper-scale run (`--full`).
    Full,
}

impl fmt::Display for RunMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RunMode::Smoke => "smoke",
            RunMode::Quick => "quick",
            RunMode::Default => "default",
            RunMode::Full => "full",
        };
        f.write_str(s)
    }
}

/// Parsed command line of a bench binary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchArgs {
    /// The selected run scale.
    pub mode: RunMode,
    /// Worker-thread override from `--threads N` (applied to the parallel kernels
    /// via the `PLINIUS_THREADS` mechanism), if given.
    pub threads: Option<usize>,
    /// Epoch-ring-depth override from `--ring N` (applied to freshly allocated PM
    /// mirrors via the `PLINIUS_RING` mechanism), if given.
    pub ring: Option<usize>,
    /// Tenant-count override from `--tenants N` (applied to fleet deployments via
    /// the `PLINIUS_TENANTS` mechanism), if given.
    pub tenants: Option<usize>,
    /// Crypto-engine override from `--crypto {auto|scalar|reference}` (applied to
    /// every AES-GCM context via the `PLINIUS_CRYPTO` mechanism), if given.
    pub crypto: Option<EnginePolicy>,
    /// GEMM-engine override from `--gemm {auto|scalar|reference|fma}` (applied to
    /// every network's training hot path via the `PLINIUS_GEMM` mechanism), if
    /// given.
    pub gemm: Option<GemmPolicy>,
    /// Positional (non-flag) arguments, in order.
    pub inputs: Vec<String>,
}

/// A rejected command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// An argument starting with `-` that is not one of the known flags.
    UnknownFlag(String),
    /// A positional argument given to a binary that does not take any.
    UnexpectedArgument(String),
    /// A flag that requires a value was given none (e.g. a bare `--threads`).
    MissingValue(String),
    /// A flag value that does not parse (e.g. `--threads zero` or `--threads 0`).
    InvalidValue {
        /// The flag the value belongs to.
        flag: String,
        /// The rejected value.
        value: String,
    },
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::UnknownFlag(flag) => write!(f, "unknown flag `{flag}`"),
            CliError::UnexpectedArgument(arg) => write!(f, "unexpected argument `{arg}`"),
            CliError::MissingValue(flag) => write!(f, "flag `{flag}` requires a value"),
            CliError::InvalidValue { flag, value } => {
                let expected = if flag == "--ring" {
                    "an integer >= 2"
                } else if flag == "--tenants" {
                    "an integer in 1..=MAX_TENANTS"
                } else if flag == "--crypto" {
                    "one of `auto`, `scalar`, `reference`"
                } else if flag == "--gemm" {
                    "one of `auto`, `scalar`, `reference`, `fma`"
                } else {
                    "a positive integer"
                };
                write!(
                    f,
                    "invalid value `{value}` for `{flag}` (expected {expected})"
                )
            }
        }
    }
}

impl std::error::Error for CliError {}

/// The usage string printed on `--help` and after a [`CliError`]; `[FILE...]` is shown
/// only for binaries that actually accept positional inputs.
fn usage(accepts_inputs: bool) -> String {
    let files = if accepts_inputs { " [FILE]" } else { "" };
    format!(
        "usage: <binary> [--smoke | --quick | --full] [--threads N] [--ring N] [--tenants N] \
         [--crypto E] [--gemm E]{files}\n\
        \n\
        --smoke      tiny bitrot-guard configuration (used by the smoke tests)\n\
        --quick      reduced sweep for interactive runs\n\
        --full       paper-scale run\n\
        --threads N  worker-thread count for the parallel kernels (N >= 1; the\n\
        \u{20}            same override as the PLINIUS_THREADS environment variable)\n\
        --ring N     epoch-ring depth of freshly allocated PM mirrors (N >= 2; the\n\
        \u{20}            same override as the PLINIUS_RING environment variable)\n\
        --tenants N  tenant count for fleet deployments (1 <= N <= {max_tenants}; the\n\
        \u{20}            same override as the PLINIUS_TENANTS environment variable)\n\
        --crypto E   AES-GCM engine: auto (hardware when detected), scalar, or\n\
        \u{20}            reference (the same override as the PLINIUS_CRYPTO variable)\n\
        --gemm E     GEMM engine: auto (widest vector kernel detected), scalar,\n\
        \u{20}            reference, or fma (the same override as the PLINIUS_GEMM\n\
        \u{20}            variable)\n\
        \n\
        With none of the flags the binary runs at its default scale. `--smoke` wins\n\
        over `--quick`, which wins over `--full`.",
        max_tenants = plinius::MAX_TENANTS
    )
}

/// Parses a `--threads` value: a positive integer.
fn parse_threads(flag: &str, value: Option<String>) -> Result<usize, CliError> {
    parse_at_least(flag, value, 1)
}

/// Parses a `--ring` value: an integer `>= 2` (a one-deep ring could not separate the
/// committing epoch from the last complete one).
fn parse_ring(flag: &str, value: Option<String>) -> Result<usize, CliError> {
    parse_at_least(flag, value, 2)
}

/// Parses a `--tenants` value: an integer in `1..=MAX_TENANTS` (each tenant consumes
/// one Romulus root pair, bounding the count per PM module).
fn parse_tenants(flag: &str, value: Option<String>) -> Result<usize, CliError> {
    let n = parse_at_least(flag, value.clone(), 1)?;
    if n > plinius::MAX_TENANTS {
        return Err(CliError::InvalidValue {
            flag: flag.to_owned(),
            value: value.unwrap_or_default(),
        });
    }
    Ok(n)
}

/// Parses a `--crypto` value strictly: exactly one of `auto`, `scalar`, `reference`.
/// (The `PLINIUS_CRYPTO` env knob itself is lenient; the CLI aborts on typos so a
/// mistyped engine never silently benchmarks the wrong kernels.)
fn parse_crypto(flag: &str, value: Option<String>) -> Result<EnginePolicy, CliError> {
    let value = value.ok_or_else(|| CliError::MissingValue(flag.to_owned()))?;
    EnginePolicy::parse(value.trim()).ok_or_else(|| CliError::InvalidValue {
        flag: flag.to_owned(),
        value,
    })
}

/// Parses a `--gemm` value strictly: exactly one of `auto`, `scalar`, `reference`,
/// `fma`. (The `PLINIUS_GEMM` env knob itself is lenient; the CLI aborts on typos so
/// a mistyped engine never silently benchmarks the wrong kernels.)
fn parse_gemm(flag: &str, value: Option<String>) -> Result<GemmPolicy, CliError> {
    let value = value.ok_or_else(|| CliError::MissingValue(flag.to_owned()))?;
    GemmPolicy::parse(value.trim()).ok_or_else(|| CliError::InvalidValue {
        flag: flag.to_owned(),
        value,
    })
}

fn parse_at_least(flag: &str, value: Option<String>, min: usize) -> Result<usize, CliError> {
    let value = value.ok_or_else(|| CliError::MissingValue(flag.to_owned()))?;
    match value.trim().parse::<usize>() {
        Ok(n) if n >= min => Ok(n),
        _ => Err(CliError::InvalidValue {
            flag: flag.to_owned(),
            value,
        }),
    }
}

/// Parses the arguments of a bench binary (without the program name).
///
/// `--smoke` wins over `--quick`, which wins over `--full`; with none of the flags
/// present the binary runs at its default scale. `--threads N` (or `--threads=N`)
/// takes a positive integer. Anything else starting with `-` is an error; remaining
/// arguments are collected as positional inputs.
///
/// # Errors
///
/// Returns [`CliError::UnknownFlag`] for any unrecognised flag,
/// [`CliError::MissingValue`]/[`CliError::InvalidValue`] for a malformed `--threads`.
pub fn parse<I>(args: I) -> Result<BenchArgs, CliError>
where
    I: IntoIterator,
    I::Item: Into<String>,
{
    let (mut smoke, mut quick, mut full) = (false, false, false);
    let mut threads = None;
    let mut ring = None;
    let mut tenants = None;
    let mut crypto = None;
    let mut gemm = None;
    let mut inputs = Vec::new();
    let mut iter = args.into_iter().map(Into::into);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--quick" => quick = true,
            "--full" => full = true,
            "--threads" => threads = Some(parse_threads("--threads", iter.next())?),
            s if s.starts_with("--threads=") => {
                let value = s["--threads=".len()..].to_owned();
                threads = Some(parse_threads("--threads", Some(value))?);
            }
            "--ring" => ring = Some(parse_ring("--ring", iter.next())?),
            s if s.starts_with("--ring=") => {
                let value = s["--ring=".len()..].to_owned();
                ring = Some(parse_ring("--ring", Some(value))?);
            }
            "--tenants" => tenants = Some(parse_tenants("--tenants", iter.next())?),
            s if s.starts_with("--tenants=") => {
                let value = s["--tenants=".len()..].to_owned();
                tenants = Some(parse_tenants("--tenants", Some(value))?);
            }
            "--crypto" => crypto = Some(parse_crypto("--crypto", iter.next())?),
            s if s.starts_with("--crypto=") => {
                let value = s["--crypto=".len()..].to_owned();
                crypto = Some(parse_crypto("--crypto", Some(value))?);
            }
            "--gemm" => gemm = Some(parse_gemm("--gemm", iter.next())?),
            s if s.starts_with("--gemm=") => {
                let value = s["--gemm=".len()..].to_owned();
                gemm = Some(parse_gemm("--gemm", Some(value))?);
            }
            s if s.starts_with('-') => return Err(CliError::UnknownFlag(arg)),
            _ => inputs.push(arg),
        }
    }
    let mode = if smoke {
        RunMode::Smoke
    } else if quick {
        RunMode::Quick
    } else if full {
        RunMode::Full
    } else {
        RunMode::Default
    };
    Ok(BenchArgs {
        mode,
        threads,
        ring,
        tenants,
        crypto,
        gemm,
        inputs,
    })
}

/// Like [`parse`], for binaries that take no positional inputs: a stray argument (e.g.
/// `smoke` with its dashes forgotten) is an error instead of being silently dropped.
/// Returns the run scale and the `--threads` override, if any.
///
/// # Errors
///
/// Returns [`CliError::UnknownFlag`], [`CliError::UnexpectedArgument`], or a
/// `--threads` value error.
pub fn parse_mode<I>(args: I) -> Result<(RunMode, Option<usize>), CliError>
where
    I: IntoIterator,
    I::Item: Into<String>,
{
    let parsed = reject_stray(parse(args)?, 0)?;
    Ok((parsed.mode, parsed.threads))
}

/// Like [`parse`], for binaries with at most one positional input (`fig10_spot`'s CSV
/// path): a second positional is an error instead of being silently dropped.
///
/// # Errors
///
/// Returns [`CliError::UnknownFlag`], [`CliError::UnexpectedArgument`], or a
/// `--threads` value error.
pub fn parse_single_input<I>(args: I) -> Result<(RunMode, Option<usize>, Option<String>), CliError>
where
    I: IntoIterator,
    I::Item: Into<String>,
{
    let mut parsed = reject_stray(parse(args)?, 1)?;
    let first = parsed.inputs.pop();
    Ok((parsed.mode, parsed.threads, first))
}

/// Errors on the first positional argument beyond `max_inputs`.
fn reject_stray(parsed: BenchArgs, max_inputs: usize) -> Result<BenchArgs, CliError> {
    match parsed.inputs.get(max_inputs) {
        Some(stray) => Err(CliError::UnexpectedArgument(stray.clone())),
        None => Ok(parsed),
    }
}

/// Applies a `--threads` override to this process: the parallel kernels read their
/// worker budget from the `PLINIUS_THREADS` environment variable, so the flag simply
/// sets it before any kernel runs (the binaries are single-threaded at startup).
fn apply_thread_override(threads: Option<usize>) {
    if let Some(n) = threads {
        std::env::set_var(plinius_parallel::THREADS_ENV, n.to_string());
    }
}

/// Applies a `--ring` override to this process: freshly allocated PM mirrors read
/// their epoch-ring depth from the `PLINIUS_RING` environment variable, so the flag
/// simply sets it before any mirror is constructed.
fn apply_ring_override(ring: Option<usize>) {
    if let Some(n) = ring {
        std::env::set_var(plinius::RING_ENV, n.to_string());
    }
}

/// Applies a `--tenants` override to this process: fleet deployments read their
/// tenant count from the `PLINIUS_TENANTS` environment variable, so the flag simply
/// sets it before any fleet is deployed.
fn apply_tenants_override(tenants: Option<usize>) {
    if let Some(n) = tenants {
        std::env::set_var(plinius::TENANTS_ENV, n.to_string());
    }
}

/// Applies a `--crypto` override to this process: every AES-GCM context reads its
/// engine policy from the `PLINIUS_CRYPTO` environment variable at construction, so
/// the flag simply sets it before any cipher context is built.
fn apply_crypto_override(crypto: Option<EnginePolicy>) {
    if let Some(policy) = crypto {
        std::env::set_var(plinius::CRYPTO_ENV, policy.as_str());
    }
}

/// Applies a `--gemm` override to this process: every network resolves its GEMM
/// policy from the `PLINIUS_GEMM` environment variable at construction, so the flag
/// simply sets it before any network is built.
fn apply_gemm_override(gemm: Option<GemmPolicy>) {
    if let Some(policy) = gemm {
        std::env::set_var(plinius::GEMM_ENV, policy.as_str());
    }
}

/// Parses `std::env::args()` for a binary taking one optional positional input,
/// printing usage and exiting on `--help`/`-h` (status 0), an unknown flag, a bad
/// `--threads`/`--ring` value or a second positional (status 2). The `--threads` and
/// `--ring` overrides are applied to the process before returning.
pub fn parse_args_single_input() -> (RunMode, Option<String>) {
    let mut parsed = exit_on_error(
        parse(help_checked_args(true)).and_then(|p| reject_stray(p, 1)),
        true,
    );
    apply_thread_override(parsed.threads);
    apply_ring_override(parsed.ring);
    apply_tenants_override(parsed.tenants);
    apply_crypto_override(parsed.crypto);
    apply_gemm_override(parsed.gemm);
    (parsed.mode, parsed.inputs.pop())
}

/// Parses `std::env::args()` for a binary that takes no positional inputs, rejecting
/// stray arguments as well as unknown flags (status 2). The `--threads` and `--ring`
/// overrides are applied to the process before returning.
pub fn parse_args_mode_only() -> RunMode {
    let parsed = exit_on_error(
        parse(help_checked_args(false)).and_then(|p| reject_stray(p, 0)),
        false,
    );
    apply_thread_override(parsed.threads);
    apply_ring_override(parsed.ring);
    apply_tenants_override(parsed.tenants);
    apply_crypto_override(parsed.crypto);
    apply_gemm_override(parsed.gemm);
    parsed.mode
}

/// `std::env::args()` minus the program name, after handling `--help`/`-h`.
fn help_checked_args(accepts_inputs: bool) -> Vec<String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{}", usage(accepts_inputs));
        std::process::exit(0);
    }
    args
}

fn exit_on_error<T>(result: Result<T, CliError>, accepts_inputs: bool) -> T {
    result.unwrap_or_else(|e| {
        eprintln!("error: {e}\n{}", usage(accepts_inputs));
        std::process::exit(2);
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_strs(args: &[&str]) -> Result<BenchArgs, CliError> {
        parse(args.iter().copied())
    }

    #[test]
    fn defaults_to_default_mode_with_no_args() {
        let parsed = parse_strs(&[]).unwrap();
        assert_eq!(parsed.mode, RunMode::Default);
        assert!(parsed.inputs.is_empty());
    }

    #[test]
    fn parses_each_scale_flag() {
        assert_eq!(parse_strs(&["--smoke"]).unwrap().mode, RunMode::Smoke);
        assert_eq!(parse_strs(&["--quick"]).unwrap().mode, RunMode::Quick);
        assert_eq!(parse_strs(&["--full"]).unwrap().mode, RunMode::Full);
    }

    #[test]
    fn smoke_wins_over_quick_wins_over_full() {
        assert_eq!(
            parse_strs(&["--full", "--quick", "--smoke"]).unwrap().mode,
            RunMode::Smoke
        );
        assert_eq!(
            parse_strs(&["--full", "--quick"]).unwrap().mode,
            RunMode::Quick
        );
    }

    #[test]
    fn positional_inputs_are_collected_in_order() {
        let parsed = parse_strs(&["trace.csv", "--smoke", "more.csv"]).unwrap();
        assert_eq!(parsed.mode, RunMode::Smoke);
        assert_eq!(parsed.inputs, vec!["trace.csv", "more.csv"]);
    }

    #[test]
    fn unknown_flags_are_rejected() {
        assert_eq!(
            parse_strs(&["--smokee"]),
            Err(CliError::UnknownFlag("--smokee".to_owned()))
        );
        assert_eq!(
            parse_strs(&["-x"]),
            Err(CliError::UnknownFlag("-x".to_owned()))
        );
        // The error names the offending flag.
        let msg = parse_strs(&["--bogus"]).unwrap_err().to_string();
        assert!(msg.contains("--bogus"));
    }

    #[test]
    fn mode_only_parsing_rejects_stray_positionals() {
        assert_eq!(parse_mode(["--smoke"]).unwrap(), (RunMode::Smoke, None));
        assert_eq!(
            parse_mode(["smoke"]),
            Err(CliError::UnexpectedArgument("smoke".to_owned()))
        );
        assert_eq!(
            parse_mode(["--quick", "trace.csv"]),
            Err(CliError::UnexpectedArgument("trace.csv".to_owned()))
        );
    }

    #[test]
    fn single_input_parsing_allows_one_positional_at_most() {
        assert_eq!(
            parse_single_input(["--smoke"]).unwrap(),
            (RunMode::Smoke, None, None)
        );
        assert_eq!(
            parse_single_input(["trace.csv", "--full"]).unwrap(),
            (RunMode::Full, None, Some("trace.csv".to_owned()))
        );
        assert_eq!(
            parse_single_input(["trace.csv", "smoke"]),
            Err(CliError::UnexpectedArgument("smoke".to_owned()))
        );
    }

    #[test]
    fn threads_flag_parses_space_and_equals_forms() {
        assert_eq!(parse_strs(&["--threads", "4"]).unwrap().threads, Some(4));
        assert_eq!(parse_strs(&["--threads=2"]).unwrap().threads, Some(2));
        assert_eq!(parse_strs(&["--smoke"]).unwrap().threads, None);
        assert_eq!(
            parse_mode(["--smoke", "--threads", "8"]).unwrap(),
            (RunMode::Smoke, Some(8))
        );
        assert_eq!(
            parse_single_input(["--threads", "3", "trace.csv"]).unwrap(),
            (RunMode::Default, Some(3), Some("trace.csv".to_owned()))
        );
    }

    #[test]
    fn threads_flag_rejects_missing_and_invalid_values() {
        assert_eq!(
            parse_strs(&["--threads"]),
            Err(CliError::MissingValue("--threads".to_owned()))
        );
        assert_eq!(
            parse_strs(&["--threads", "0"]),
            Err(CliError::InvalidValue {
                flag: "--threads".to_owned(),
                value: "0".to_owned()
            })
        );
        assert_eq!(
            parse_strs(&["--threads", "many"]),
            Err(CliError::InvalidValue {
                flag: "--threads".to_owned(),
                value: "many".to_owned()
            })
        );
        assert_eq!(
            parse_strs(&["--threads="]),
            Err(CliError::InvalidValue {
                flag: "--threads".to_owned(),
                value: String::new()
            })
        );
        // The error messages name the flag.
        let msg = parse_strs(&["--threads"]).unwrap_err().to_string();
        assert!(msg.contains("--threads"));
        let msg = parse_strs(&["--threads", "-1"]).unwrap_err().to_string();
        assert!(msg.contains("--threads"), "{msg}");
    }

    #[test]
    fn ring_flag_parses_space_and_equals_forms() {
        assert_eq!(parse_strs(&["--ring", "4"]).unwrap().ring, Some(4));
        assert_eq!(parse_strs(&["--ring=2"]).unwrap().ring, Some(2));
        assert_eq!(parse_strs(&["--smoke"]).unwrap().ring, None);
        let parsed = parse_strs(&["--smoke", "--ring", "8", "--threads", "2"]).unwrap();
        assert_eq!(parsed.mode, RunMode::Smoke);
        assert_eq!(parsed.ring, Some(8));
        assert_eq!(parsed.threads, Some(2));
    }

    #[test]
    fn ring_flag_rejects_missing_and_invalid_values() {
        assert_eq!(
            parse_strs(&["--ring"]),
            Err(CliError::MissingValue("--ring".to_owned()))
        );
        // A one-deep ring is rejected, not just zero and garbage.
        for bad in ["0", "1", "two", "-3", ""] {
            assert_eq!(
                parse_strs(&["--ring", bad]),
                Err(CliError::InvalidValue {
                    flag: "--ring".to_owned(),
                    value: bad.to_owned()
                }),
                "--ring {bad:?} should be rejected"
            );
        }
        assert_eq!(
            parse_strs(&["--ring="]),
            Err(CliError::InvalidValue {
                flag: "--ring".to_owned(),
                value: String::new()
            })
        );
        let msg = parse_strs(&["--ring", "1"]).unwrap_err().to_string();
        assert!(msg.contains("--ring") && msg.contains(">= 2"), "{msg}");
    }

    #[test]
    fn tenants_flag_parses_space_and_equals_forms() {
        assert_eq!(parse_strs(&["--tenants", "4"]).unwrap().tenants, Some(4));
        assert_eq!(parse_strs(&["--tenants=1"]).unwrap().tenants, Some(1));
        assert_eq!(parse_strs(&["--smoke"]).unwrap().tenants, None);
        let parsed = parse_strs(&["--smoke", "--tenants", "8", "--ring", "4"]).unwrap();
        assert_eq!(parsed.mode, RunMode::Smoke);
        assert_eq!(parsed.tenants, Some(8));
        assert_eq!(parsed.ring, Some(4));
    }

    #[test]
    fn tenants_flag_rejects_missing_invalid_and_oversized_values() {
        assert_eq!(
            parse_strs(&["--tenants"]),
            Err(CliError::MissingValue("--tenants".to_owned()))
        );
        let too_many = (plinius::MAX_TENANTS + 1).to_string();
        for bad in ["0", "many", "-2", "", too_many.as_str()] {
            assert_eq!(
                parse_strs(&["--tenants", bad]),
                Err(CliError::InvalidValue {
                    flag: "--tenants".to_owned(),
                    value: bad.to_owned()
                }),
                "--tenants {bad:?} should be rejected"
            );
        }
        assert_eq!(
            parse_strs(&["--tenants="]),
            Err(CliError::InvalidValue {
                flag: "--tenants".to_owned(),
                value: String::new()
            })
        );
        let msg = parse_strs(&["--tenants", "0"]).unwrap_err().to_string();
        assert!(msg.contains("--tenants"), "{msg}");
    }

    #[test]
    fn crypto_flag_parses_space_and_equals_forms() {
        assert_eq!(
            parse_strs(&["--crypto", "scalar"]).unwrap().crypto,
            Some(EnginePolicy::Scalar)
        );
        assert_eq!(
            parse_strs(&["--crypto=reference"]).unwrap().crypto,
            Some(EnginePolicy::Reference)
        );
        assert_eq!(
            parse_strs(&["--crypto", "auto"]).unwrap().crypto,
            Some(EnginePolicy::Auto)
        );
        assert_eq!(parse_strs(&["--smoke"]).unwrap().crypto, None);
        let parsed = parse_strs(&["--smoke", "--crypto", "scalar", "--ring", "4"]).unwrap();
        assert_eq!(parsed.mode, RunMode::Smoke);
        assert_eq!(parsed.crypto, Some(EnginePolicy::Scalar));
        assert_eq!(parsed.ring, Some(4));
    }

    #[test]
    fn crypto_flag_rejects_missing_and_invalid_values() {
        assert_eq!(
            parse_strs(&["--crypto"]),
            Err(CliError::MissingValue("--crypto".to_owned()))
        );
        for bad in ["", "hw", "SCALAR", "aesni"] {
            assert_eq!(
                parse_strs(&["--crypto", bad]),
                Err(CliError::InvalidValue {
                    flag: "--crypto".to_owned(),
                    value: bad.to_owned()
                }),
                "--crypto {bad:?} should be rejected"
            );
        }
        let msg = parse_strs(&["--crypto", "hw"]).unwrap_err().to_string();
        assert!(
            msg.contains("--crypto") && msg.contains("scalar") && msg.contains("reference"),
            "{msg}"
        );
    }

    #[test]
    fn gemm_flag_parses_space_and_equals_forms() {
        assert_eq!(
            parse_strs(&["--gemm", "scalar"]).unwrap().gemm,
            Some(GemmPolicy::Scalar)
        );
        assert_eq!(
            parse_strs(&["--gemm=reference"]).unwrap().gemm,
            Some(GemmPolicy::Reference)
        );
        assert_eq!(
            parse_strs(&["--gemm", "auto"]).unwrap().gemm,
            Some(GemmPolicy::Auto)
        );
        assert_eq!(
            parse_strs(&["--gemm=fma"]).unwrap().gemm,
            Some(GemmPolicy::Fma)
        );
        assert_eq!(parse_strs(&["--smoke"]).unwrap().gemm, None);
        let parsed = parse_strs(&["--smoke", "--gemm", "scalar", "--crypto", "scalar"]).unwrap();
        assert_eq!(parsed.mode, RunMode::Smoke);
        assert_eq!(parsed.gemm, Some(GemmPolicy::Scalar));
        assert_eq!(parsed.crypto, Some(EnginePolicy::Scalar));
    }

    #[test]
    fn gemm_flag_rejects_missing_and_invalid_values() {
        assert_eq!(
            parse_strs(&["--gemm"]),
            Err(CliError::MissingValue("--gemm".to_owned()))
        );
        // Engine *names* (avx2, avx512) are not policies: the policy vocabulary is
        // the four documented words, so a pasted engine label fails loudly.
        for bad in ["", "FMA", "avx2", "avx512", "vector", "simd"] {
            assert_eq!(
                parse_strs(&["--gemm", bad]),
                Err(CliError::InvalidValue {
                    flag: "--gemm".to_owned(),
                    value: bad.to_owned()
                }),
                "--gemm {bad:?} should be rejected"
            );
        }
        let msg = parse_strs(&["--gemm", "avx2"]).unwrap_err().to_string();
        assert!(
            msg.contains("--gemm")
                && msg.contains("scalar")
                && msg.contains("reference")
                && msg.contains("fma"),
            "{msg}"
        );
    }

    #[test]
    fn usage_advertises_inputs_only_where_accepted() {
        assert!(usage(true).contains("[FILE]"));
        assert!(!usage(false).contains("FILE"));
        assert!(usage(false).starts_with("usage:"));
        assert!(usage(false).contains("--threads"));
        assert!(usage(false).contains("--ring"));
        assert!(usage(false).contains("--tenants"));
        assert!(usage(false).contains("--crypto"));
        assert!(usage(false).contains("--gemm"));
    }

    #[test]
    fn run_mode_displays_lowercase_names() {
        assert_eq!(RunMode::Smoke.to_string(), "smoke");
        assert_eq!(RunMode::Default.to_string(), "default");
    }
}
