//! Shared harness code for regenerating the tables and figures of the Plinius paper.
//! Each `src/bin/*` binary prints one figure/table; the Criterion benches under
//! `benches/` exercise the same code paths with wall-clock measurement.

pub mod cli;

pub use cli::{BenchArgs, RunMode};

use plinius::{
    MirrorModel, PersistStats, PersistenceBackend, PipelineMode, PliniusBuilder, PliniusContext,
    PliniusError, PmDataset, SsdCheckpointer, TrainerConfig, TrainingSetup,
};
use plinius_crypto::Key;
use plinius_darknet::config::{build_network, mnist_cnn_config, sized_model_config};
use plinius_darknet::synthetic_mnist;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sim_clock::CostModel;

/// One measurement point of the Fig. 7 / Table I model-size sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MirrorPoint {
    /// Requested model size in MB.
    pub target_mb: usize,
    /// Actual model size in MB.
    pub actual_mb: f64,
    /// Whether the enclave working set exceeded the usable EPC.
    pub beyond_epc: bool,
    /// Mirror-out encryption latency (ms, simulated).
    pub pm_encrypt_ms: f64,
    /// Mirror-out PM-write latency (ms, simulated).
    pub pm_write_ms: f64,
    /// Mirror-in PM-read latency (ms, simulated).
    pub pm_read_ms: f64,
    /// Mirror-in decryption latency (ms, simulated).
    pub pm_decrypt_ms: f64,
    /// SSD checkpoint encryption latency (ms, simulated).
    pub ssd_encrypt_ms: f64,
    /// SSD checkpoint write latency (ms, simulated).
    pub ssd_write_ms: f64,
    /// SSD restore read latency (ms, simulated).
    pub ssd_read_ms: f64,
    /// SSD restore decryption latency (ms, simulated).
    pub ssd_decrypt_ms: f64,
}

impl MirrorPoint {
    /// Total PM save latency.
    pub fn pm_save_ms(&self) -> f64 {
        self.pm_encrypt_ms + self.pm_write_ms
    }
    /// Total PM restore latency.
    pub fn pm_restore_ms(&self) -> f64 {
        self.pm_read_ms + self.pm_decrypt_ms
    }
    /// Total SSD save latency.
    pub fn ssd_save_ms(&self) -> f64 {
        self.ssd_encrypt_ms + self.ssd_write_ms
    }
    /// Total SSD restore latency.
    pub fn ssd_restore_ms(&self) -> f64 {
        self.ssd_read_ms + self.ssd_decrypt_ms
    }
}

/// Runs one save/restore measurement for a model of roughly `target_mb` MB on the given
/// server profile (one point of Fig. 7).
pub fn mirror_point(cost: &CostModel, target_mb: usize) -> Result<MirrorPoint, PliniusError> {
    let mut rng = StdRng::seed_from_u64(target_mb as u64);
    let network = build_network(&sized_model_config(target_mb, 2), &mut rng)?;
    let model_bytes = network.model_bytes();
    // PM pool: twin Romulus regions, each holding the mirror's R epoch-ring slots of
    // the sealed model plus slack (R = 2 unless overridden via --ring/PLINIUS_RING).
    let ring = plinius::ring_depth_from_env();
    let pool_bytes = model_bytes * (2 * ring + 1) + (4 << 20);
    let ctx = PliniusContext::create(cost.clone(), pool_bytes)?;
    ctx.provision_key_directly(Key::generate_128(&mut rng));
    // The enclave model + training buffers occupy trusted memory (drives the EPC knee).
    ctx.enclave()
        .alloc_trusted((model_bytes * 2) as u64)
        .map_err(PliniusError::from)?;
    let mirror = MirrorModel::allocate(&ctx, &network)?;
    let out = mirror.mirror_out(&ctx, &network)?;
    let mut restored = build_network(&sized_model_config(target_mb, 2), &mut rng)?;
    let inr = mirror.mirror_in(&ctx, &mut restored)?;
    let ssd = SsdCheckpointer::on_shared_clock(&ctx, "checkpoint.bin");
    let save = ssd.save(&ctx, &network)?;
    let restore = ssd.restore(&ctx, &mut restored)?;
    Ok(MirrorPoint {
        target_mb,
        actual_mb: model_bytes as f64 / (1024.0 * 1024.0),
        beyond_epc: ctx.enclave().beyond_epc(),
        pm_encrypt_ms: out.encrypt.millis(),
        pm_write_ms: out.write.millis(),
        pm_read_ms: inr.read.millis(),
        pm_decrypt_ms: inr.decrypt.millis(),
        ssd_encrypt_ms: save.encrypt.millis(),
        ssd_write_ms: save.write.millis(),
        ssd_read_ms: restore.read.millis(),
        ssd_decrypt_ms: restore.decrypt.millis(),
    })
}

/// The model sizes (MB) swept by Fig. 7 of the paper.
pub const FIG7_SIZES_MB: [usize; 9] = [10, 22, 33, 44, 56, 67, 78, 89, 100];

/// A reduced sweep used by `--quick` runs and the test suite.
pub const FIG7_SIZES_QUICK_MB: [usize; 4] = [10, 44, 78, 100];

/// A minimal sweep used by `--smoke` runs (bitrot guard for the bin harnesses).
pub const FIG7_SIZES_SMOKE_MB: [usize; 2] = [1, 2];

/// Runs the Fig. 7 sweep for one server profile.
///
/// # Errors
///
/// Propagates the first failing point.
pub fn mirroring_sweep(
    cost: &CostModel,
    sizes_mb: &[usize],
) -> Result<Vec<MirrorPoint>, PliniusError> {
    sizes_mb.iter().map(|mb| mirror_point(cost, *mb)).collect()
}

/// Table I aggregates computed from a Fig. 7 sweep: per-phase percentages and PM-vs-SSD
/// speed-ups, split below/beyond the EPC limit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table1 {
    /// Encryption share of a PM save (%), below the EPC limit.
    pub save_encrypt_pct_below: f64,
    /// Encryption share of a PM save (%), beyond the EPC limit.
    pub save_encrypt_pct_beyond: f64,
    /// Read share of a PM restore (%), below the EPC limit.
    pub restore_read_pct_below: f64,
    /// Read share of a PM restore (%), beyond the EPC limit.
    pub restore_read_pct_beyond: f64,
    /// PM-write vs SSD-write speed-up, below / beyond the EPC limit.
    pub write_speedup: (f64, f64),
    /// Total save speed-up, below / beyond the EPC limit.
    pub save_speedup: (f64, f64),
    /// PM-read vs SSD-read speed-up, below / beyond the EPC limit.
    pub read_speedup: (f64, f64),
    /// Total restore speed-up, below / beyond the EPC limit.
    pub restore_speedup: (f64, f64),
}

/// Computes the Table I aggregates from a sweep.
///
/// # Panics
///
/// Panics if the sweep is empty.
pub fn table1(points: &[MirrorPoint]) -> Table1 {
    assert!(!points.is_empty(), "table 1 needs at least one sweep point");
    let (below, beyond): (Vec<MirrorPoint>, Vec<MirrorPoint>) =
        points.iter().copied().partition(|p| !p.beyond_epc);
    // If one side is empty (e.g. a quick sweep below the EPC only), fall back to the
    // other so the ratios remain defined.
    let below = if below.is_empty() {
        points.to_vec()
    } else {
        below
    };
    let beyond = if beyond.is_empty() {
        below.clone()
    } else {
        beyond
    };
    let mean = |xs: &[MirrorPoint], f: &dyn Fn(&MirrorPoint) -> f64| -> f64 {
        xs.iter().map(f).sum::<f64>() / xs.len() as f64
    };
    let pct = |num: f64, den: f64| 100.0 * num / den;
    Table1 {
        save_encrypt_pct_below: pct(
            mean(&below, &|p| p.pm_encrypt_ms),
            mean(&below, &|p| p.pm_save_ms()),
        ),
        save_encrypt_pct_beyond: pct(
            mean(&beyond, &|p| p.pm_encrypt_ms),
            mean(&beyond, &|p| p.pm_save_ms()),
        ),
        restore_read_pct_below: pct(
            mean(&below, &|p| p.pm_read_ms),
            mean(&below, &|p| p.pm_restore_ms()),
        ),
        restore_read_pct_beyond: pct(
            mean(&beyond, &|p| p.pm_read_ms),
            mean(&beyond, &|p| p.pm_restore_ms()),
        ),
        write_speedup: (
            mean(&below, &|p| p.ssd_write_ms) / mean(&below, &|p| p.pm_write_ms),
            mean(&beyond, &|p| p.ssd_write_ms) / mean(&beyond, &|p| p.pm_write_ms),
        ),
        save_speedup: (
            mean(&below, &|p| p.ssd_save_ms()) / mean(&below, &|p| p.pm_save_ms()),
            mean(&beyond, &|p| p.ssd_save_ms()) / mean(&beyond, &|p| p.pm_save_ms()),
        ),
        read_speedup: (
            mean(&below, &|p| p.ssd_read_ms) / mean(&below, &|p| p.pm_read_ms),
            mean(&beyond, &|p| p.ssd_read_ms) / mean(&beyond, &|p| p.pm_read_ms),
        ),
        restore_speedup: (
            mean(&below, &|p| p.ssd_restore_ms()) / mean(&below, &|p| p.pm_restore_ms()),
            mean(&beyond, &|p| p.ssd_restore_ms()) / mean(&beyond, &|p| p.pm_restore_ms()),
        ),
    }
}

/// One point of the Fig. 8 batch-size sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationPoint {
    /// Batch size.
    pub batch: usize,
    /// Simulated seconds per iteration with encrypted PM data (the Plinius path).
    pub encrypted_s: f64,
    /// Simulated seconds per iteration with unencrypted data.
    pub plaintext_s: f64,
}

impl IterationPoint {
    /// Overhead factor of the encrypted path (the paper reports ~1.2x).
    pub fn overhead(&self) -> f64 {
        self.encrypted_s / self.plaintext_s
    }
}

/// Runs the Fig. 8 sweep: per-iteration time (data pipeline + modeled training compute)
/// for encrypted vs unencrypted training data, over the given batch sizes.
///
/// The paper's models for this experiment have 5 LReLU-convolutional layers.
///
/// # Errors
///
/// Propagates context-creation and data-loading errors.
pub fn iteration_sweep(
    cost: &CostModel,
    batches: &[usize],
    pm_samples: usize,
) -> Result<Vec<IterationPoint>, PliniusError> {
    let mut rng = StdRng::seed_from_u64(88);
    let network = build_network(&mnist_cnn_config(5, 16, 1), &mut rng)?;
    let flops_per_sample = network.flops_per_sample();
    let dataset = synthetic_mnist(pm_samples, &mut rng);
    let pool_bytes =
        dataset.len() * (dataset.inputs() + dataset.classes() + 16) * 4 * 3 + (8 << 20);
    let ctx = PliniusContext::create(cost.clone(), pool_bytes)?;
    ctx.provision_key_directly(Key::generate_128(&mut rng));
    let pm = PmDataset::load(&ctx, &dataset)?;
    let clock = ctx.clock();
    let mut out = Vec::new();
    for &batch in batches {
        // Encrypted path: decrypt the batch from PM, then the training compute.
        clock.reset();
        pm.decrypt_batch(&ctx, batch, &mut rng)?;
        ctx.enclave()
            .charge_compute(flops_per_sample * batch as u64);
        let encrypted_s = clock.now_ns() as f64 / 1e9;
        // Plaintext path: stage the batch without decryption, then the same compute.
        clock.reset();
        pm.staging_cost_only(&ctx, batch);
        ctx.enclave()
            .charge_compute(flops_per_sample * batch as u64);
        let plaintext_s = clock.now_ns() as f64 / 1e9;
        out.push(IterationPoint {
            batch,
            encrypted_s,
            plaintext_s,
        });
    }
    Ok(out)
}

/// Sync-vs-Overlapped comparison of the same training job: the Fig. 7 companion
/// showing what the pipelined persistence engine buys per iteration.
///
/// Three local deployments run the identical job (same model, data, seeds — so the
/// loss curves and final weights are bit-identical): one without persistence (the
/// pure compute + data-pipeline baseline), one mirroring synchronously every
/// iteration, one mirroring through the overlapped snapshot/publish pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelinePoint {
    /// Iterations each run executed.
    pub iterations: u64,
    /// Batch size per iteration.
    pub batch: usize,
    /// Per-iteration simulated cost without any persistence (ms).
    pub base_ms_per_iter: f64,
    /// Per-iteration mirroring overhead of the Sync engine (ms, simulated).
    pub sync_overhead_ms: f64,
    /// Per-iteration mirroring overhead of the Overlapped engine (ms, simulated).
    pub overlapped_overhead_ms: f64,
    /// Total simulated time the training lane waited for background publishes (ms) —
    /// the part of the sealing the compute could not hide.
    pub overlap_wait_ms: f64,
    /// Wall-clock seconds of the Sync training run (this host).
    pub sync_wall_s: f64,
    /// Wall-clock seconds of the Overlapped training run (this host).
    pub overlapped_wall_s: f64,
}

impl PipelinePoint {
    /// Overlapped overhead as a fraction of the Sync overhead (the pipeline win:
    /// ≤ 0.5 once compute covers the sealing, since only the PM write remains).
    pub fn overhead_ratio(&self) -> f64 {
        self.overlapped_overhead_ms / self.sync_overhead_ms
    }
}

/// Runs one training job of the pipeline comparison and reports `(simulated ns of
/// the run, wall-clock seconds of the run, persistence counters)`.
fn pipeline_run(
    setup: &TrainingSetup,
    backend: PersistenceBackend,
    mode: PipelineMode,
) -> Result<(u64, f64, PersistStats), PliniusError> {
    let mut setup = setup.clone();
    setup.backend = backend;
    setup.trainer.pipeline = mode;
    let mut trainer = PliniusBuilder::new(setup).build()?;
    let start = std::time::Instant::now();
    let report = trainer.run()?;
    Ok((
        report.simulated_ns,
        start.elapsed().as_secs_f64(),
        trainer.persist_stats(),
    ))
}

/// The `(iterations, batch)` scale of the Sync-vs-Overlapped comparison for one run
/// mode — shared by `fig7_mirroring` and `table1_breakdown` so both report the
/// pipeline numbers from the same configuration.
pub fn pipeline_scale(mode: RunMode) -> (u64, usize) {
    match mode {
        RunMode::Smoke => (4, 32),
        RunMode::Quick => (10, 64),
        _ => (25, 96),
    }
}

/// Runs the Sync-vs-Overlapped comparison for one server profile on the standard
/// MNIST network of the Fig. 8 experiment (5 LReLU-convolutional layers), mirroring
/// every iteration.
///
/// # Errors
///
/// Propagates deployment and training errors.
pub fn pipeline_point(
    cost: &CostModel,
    iterations: u64,
    batch: usize,
) -> Result<PipelinePoint, PliniusError> {
    let mut rng = StdRng::seed_from_u64(55);
    let model_config = mnist_cnn_config(5, 16, 1);
    let model_bytes = build_network(&model_config, &mut rng)?.model_bytes();
    let dataset = synthetic_mnist(192, &mut rng);
    let dataset_bytes = dataset.len() * (dataset.inputs() + dataset.classes() + 16) * 4;
    let setup = TrainingSetup {
        cost: cost.clone(),
        // Twin Romulus regions, each holding the PM dataset, the R epoch-ring slots
        // of the sealed model, and slack.
        pm_bytes: dataset_bytes * 3
            + model_bytes * (2 * plinius::ring_depth_from_env() + 1)
            + (8 << 20),
        model_config,
        dataset,
        trainer: TrainerConfig {
            batch,
            max_iterations: iterations,
            mirror_frequency: 1,
            encrypted_data: true,
            seed: 5,
            pipeline: PipelineMode::Sync,
            ring_depth: plinius::ring_depth_from_env(),
            crypto: plinius::EnginePolicy::from_env(),
            gemm: plinius::GemmPolicy::from_env(),
        },
        backend: PersistenceBackend::PmMirror,
        model_seed: 12,
    };
    let (base_ns, _, _) = pipeline_run(&setup, PersistenceBackend::None, PipelineMode::Sync)?;
    let (sync_ns, sync_wall_s, _) =
        pipeline_run(&setup, PersistenceBackend::PmMirror, PipelineMode::Sync)?;
    let (over_ns, overlapped_wall_s, stats) = pipeline_run(
        &setup,
        PersistenceBackend::PmMirror,
        PipelineMode::Overlapped,
    )?;
    let per_iter_ms = |ns: u64| ns as f64 / iterations as f64 / 1e6;
    Ok(PipelinePoint {
        iterations,
        batch,
        base_ms_per_iter: per_iter_ms(base_ns),
        sync_overhead_ms: per_iter_ms(sync_ns.saturating_sub(base_ns)),
        overlapped_overhead_ms: per_iter_ms(over_ns.saturating_sub(base_ns)),
        overlap_wait_ms: stats.overlap_wait_ns as f64 / 1e6,
        sync_wall_s,
        overlapped_wall_s,
    })
}

/// Prints one profile's Sync-vs-Overlapped comparison in the shared fig7/table1
/// format.
pub fn print_pipeline_point(profile: &str, p: &PipelinePoint) {
    println!(
        "\nPipelined mirroring — {} ({} iters, batch {}): per-iteration overhead vs no persistence",
        profile, p.iterations, p.batch
    );
    println!(
        "{:>12} | {:>12} {:>14} {:>8} | {:>14} | {:>12} {:>14}",
        "compute ms",
        "sync ms",
        "overlapped ms",
        "ratio",
        "wait total ms",
        "sync wall s",
        "overlap wall s"
    );
    println!(
        "{:>12.3} | {:>12.3} {:>14.3} {:>7.2}x | {:>14.3} | {:>12.2} {:>14.2}",
        p.base_ms_per_iter,
        p.sync_overhead_ms,
        p.overlapped_overhead_ms,
        p.overhead_ratio(),
        p.overlap_wait_ms,
        p.sync_wall_s,
        p.overlapped_wall_s
    );
}

/// One point of the wall-clock AEAD-engine sweep: the dispatcher-selected engine
/// (AES-NI + PCLMUL on capable hosts, T-table AES + Shoup GHASH otherwise, per
/// `PLINIUS_CRYPTO`/`--crypto`) versus the retained reference kernels, on one buffer
/// size. Appended to the fig7/table1 reports so the crypto speedup that drives the
/// real-hardware encryption share is visible next to the simulated numbers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AeadPoint {
    /// Buffer size in bytes.
    pub size: usize,
    /// Name of the engine the fast lanes ran on (`"aesni+pclmul"`, `"scalar"`, …).
    pub engine: &'static str,
    /// Reference kernels (byte-wise AES, bit-serial GHASH), MiB/s.
    pub reference_mib_s: f64,
    /// Selected engine, single thread, MiB/s.
    pub fast_mib_s: f64,
    /// Selected engine with chunk-parallel CTR on [`plinius_parallel::max_threads`]
    /// workers, MiB/s (equals the single-thread number on a 1-core host).
    pub threaded_mib_s: f64,
    /// Worker count used for the threaded measurement.
    pub threads: usize,
}

impl AeadPoint {
    /// Single-thread speedup of the fast engine over the reference kernels.
    pub fn speedup(&self) -> f64 {
        self.fast_mib_s / self.reference_mib_s
    }

    /// Speedup with chunk-parallel CTR enabled.
    pub fn threaded_speedup(&self) -> f64 {
        self.threaded_mib_s / self.reference_mib_s
    }
}

/// Buffer sizes of the full AEAD sweep.
pub const AEAD_SIZES: [usize; 3] = [64 * 1024, 1 << 20, 4 << 20];

/// Reduced sweep for `--smoke`/`--quick` runs and the test suite.
pub const AEAD_SIZES_SMOKE: [usize; 1] = [32 * 1024];

/// Best-of-N wall-clock seconds for one run of `f`.
fn best_of<F: FnMut()>(rounds: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..rounds {
        let start = std::time::Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// Measures fast-vs-reference AES-GCM sealing throughput (wall clock, best of three)
/// for each buffer size.
pub fn aead_sweep(sizes: &[usize]) -> Vec<AeadPoint> {
    let gcm = plinius_crypto::AesGcm::from_key(&[0x42u8; 16]);
    let iv = [9u8; 12];
    let threads = plinius_parallel::max_threads();
    sizes
        .iter()
        .map(|&size| {
            let data = vec![7u8; size];
            let mut out = vec![0u8; size];
            let mib = size as f64 / (1024.0 * 1024.0);
            let reference_s = best_of(3, || {
                let _ = gcm.encrypt_reference(&iv, b"aead-sweep", &data).unwrap();
            });
            let fast_s = best_of(3, || {
                let _ = gcm
                    .encrypt_into(&iv, b"aead-sweep", &data, &mut out)
                    .unwrap();
            });
            let threaded_s = best_of(3, || {
                let _ = gcm
                    .encrypt_into_with_threads(&iv, b"aead-sweep", &data, &mut out, threads)
                    .unwrap();
            });
            AeadPoint {
                size,
                engine: gcm.engine_name(),
                reference_mib_s: mib / reference_s,
                fast_mib_s: mib / fast_s,
                threaded_mib_s: mib / threaded_s,
                threads,
            }
        })
        .collect()
}

/// Prints the AEAD-engine sweep in the shared format used by the fig7/table1 bins,
/// naming the engine the dispatcher selected (`PLINIUS_CRYPTO`/`--crypto` aware).
pub fn print_aead_sweep(points: &[AeadPoint]) {
    let engine = points.first().map_or("scalar", |p| p.engine);
    println!("\nAEAD engine (wall-clock, this host): {engine} vs reference kernels");
    println!(
        "{:>10} | {:>12} {:>12} {:>8} | {:>14} {:>8}",
        "bytes", "ref MiB/s", "fast MiB/s", "speedup", "threaded MiB/s", "speedup"
    );
    for p in points {
        println!(
            "{:>10} | {:>12.1} {:>12.1} {:>7.1}x | {:>14.1} {:>7.1}x",
            p.size,
            p.reference_mib_s,
            p.fast_mib_s,
            p.speedup(),
            p.threaded_mib_s,
            p.threaded_speedup()
        );
    }
}

/// Counts the lines of Rust code of the repository, split into trusted (in-enclave) and
/// untrusted components, reproducing the §V TCB accounting.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TcbReport {
    /// `(crate name, lines)` for components that run inside the enclave.
    pub trusted: Vec<(String, usize)>,
    /// `(crate name, lines)` for components that stay outside the enclave.
    pub untrusted: Vec<(String, usize)>,
}

impl TcbReport {
    /// Total trusted LoC.
    pub fn trusted_loc(&self) -> usize {
        self.trusted.iter().map(|(_, n)| n).sum()
    }
    /// Total untrusted LoC.
    pub fn untrusted_loc(&self) -> usize {
        self.untrusted.iter().map(|(_, n)| n).sum()
    }
    /// TCB reduction relative to putting everything in the enclave (the libOS approach).
    pub fn tcb_reduction_pct(&self) -> f64 {
        let total = (self.trusted_loc() + self.untrusted_loc()) as f64;
        100.0 * self.untrusted_loc() as f64 / total
    }
}

/// Non-empty Rust lines under a crate's `src/` directory.
fn crate_loc(crate_dir: &std::path::Path) -> usize {
    let mut loc = 0usize;
    let mut stack = vec![crate_dir.join("src")];
    while let Some(dir) = stack.pop() {
        let Ok(files) = std::fs::read_dir(&dir) else {
            continue;
        };
        for f in files.flatten() {
            let p = f.path();
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().is_some_and(|e| e == "rs") {
                if let Ok(text) = std::fs::read_to_string(&p) {
                    loc += text.lines().filter(|l| !l.trim().is_empty()).count();
                }
            }
        }
    }
    loc
}

/// Builds the TCB report by counting non-empty lines of every crate under `crates_dir`.
pub fn tcb_report(crates_dir: &std::path::Path) -> TcbReport {
    // Classification mirrors Fig. 4: the crypto engine, the ML framework, Romulus and the
    // Plinius core run inside the enclave; PM mapping helpers, secondary storage, the
    // spot simulator and the harnesses are untrusted-runtime components. Of the offline
    // dependency shims, `rand` and `parking_lot` are linked into the enclave-side crates
    // and therefore count toward the TCB; `bytes` serves the untrusted SSD baseline and
    // `proptest`/`criterion` are test/bench-only.
    let trusted_crates = [
        "crypto",
        "darknet",
        "parallel",
        "plinius",
        "romulus",
        "sgx",
        "shims/rand",
        "shims/parking_lot",
    ];
    let mut report = TcbReport::default();
    let Ok(entries) = std::fs::read_dir(crates_dir) else {
        return report;
    };
    let mut components: Vec<(String, std::path::PathBuf)> = Vec::new();
    for entry in entries.flatten() {
        let name = entry.file_name().to_string_lossy().to_string();
        if name == "shims" {
            // The shim crates live one level deeper; report each individually.
            let Ok(shims) = std::fs::read_dir(entry.path()) else {
                continue;
            };
            for shim in shims.flatten() {
                let shim_name = shim.file_name().to_string_lossy().to_string();
                // proptest/criterion are dev-dependencies only — never linked
                // into the deployed system, so they belong in neither column.
                if shim_name == "proptest" || shim_name == "criterion" {
                    continue;
                }
                components.push((format!("shims/{shim_name}"), shim.path()));
            }
        } else if entry.path().join("src").is_dir() {
            components.push((name, entry.path()));
        }
    }
    for (name, path) in components {
        let loc = crate_loc(&path);
        if trusted_crates.contains(&name.as_str()) {
            report.trusted.push((name, loc));
        } else {
            report.untrusted.push((name, loc));
        }
    }
    report.trusted.sort();
    report.untrusted.sort();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mirror_point_small_model_shape() {
        let p = mirror_point(&CostModel::sgx_eml_pm(), 3).unwrap();
        assert!(!p.beyond_epc);
        assert!(p.actual_mb > 1.5 && p.actual_mb < 5.0);
        // PM beats SSD on both save and restore for small models.
        assert!(p.ssd_save_ms() > p.pm_save_ms());
        assert!(p.ssd_restore_ms() > p.pm_restore_ms());
        // On real SGX, encryption dominates the save.
        assert!(p.pm_encrypt_ms > p.pm_write_ms);
    }

    #[test]
    fn table1_from_two_points() {
        let pts = vec![
            mirror_point(&CostModel::sgx_eml_pm(), 2).unwrap(),
            mirror_point(&CostModel::sgx_eml_pm(), 4).unwrap(),
        ];
        let t = table1(&pts);
        assert!(t.save_encrypt_pct_below > 50.0);
        assert!(t.save_speedup.0 > 1.5);
        assert!(t.restore_speedup.0 > 1.5);
    }

    #[test]
    fn iteration_sweep_shows_modest_encryption_overhead() {
        let pts = iteration_sweep(&CostModel::sgx_eml_pm(), &[16, 64], 128).unwrap();
        for p in &pts {
            let overhead = p.overhead();
            assert!(overhead > 1.0 && overhead < 1.6, "overhead {overhead}");
        }
        // Iteration time grows with batch size.
        assert!(pts[1].encrypted_s > pts[0].encrypted_s);
    }

    #[test]
    fn overlapped_pipeline_halves_the_mirroring_overhead_when_compute_covers_it() {
        // The Fig. 7 acceptance bar: on the standard MNIST network, with compute ≥
        // mirror cost, the overlapped engine's per-iteration mirroring overhead must
        // be at most half the synchronous one (the sealing hides behind compute and
        // only the PM write remains on the critical path).
        let p = pipeline_point(&CostModel::sgx_eml_pm(), 6, 96).unwrap();
        assert!(
            p.base_ms_per_iter >= p.sync_overhead_ms,
            "configuration must keep compute ({:.3} ms) >= mirror cost ({:.3} ms)",
            p.base_ms_per_iter,
            p.sync_overhead_ms
        );
        assert!(
            p.overlapped_overhead_ms < p.sync_overhead_ms,
            "overlapped overhead {:.3} ms must be strictly below sync {:.3} ms",
            p.overlapped_overhead_ms,
            p.sync_overhead_ms
        );
        assert!(
            p.overhead_ratio() <= 0.5,
            "overlapped overhead must be <= 0.5x sync, got {:.2}x",
            p.overhead_ratio()
        );
    }

    #[test]
    fn aead_sweep_shows_the_fast_engine_ahead() {
        let points = aead_sweep(&[256 * 1024]);
        assert_eq!(points.len(), 1);
        let p = &points[0];
        assert!(p.reference_mib_s > 0.0 && p.fast_mib_s > 0.0 && p.threaded_mib_s > 0.0);
        // The crypto crate is built with opt-level 3 even under the dev profile, so
        // the table-driven engine must clearly beat the reference here too. The exact
        // ratio is asserted by the release-mode throughput gate in plinius-crypto.
        assert!(
            p.speedup() > 1.5,
            "fast engine should beat the reference (got {:.2}x)",
            p.speedup()
        );
    }

    #[test]
    fn tcb_report_counts_something() {
        let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../");
        let report = tcb_report(&dir);
        assert!(report.trusted_loc() > 1000);
        assert!(report.untrusted_loc() > 500);
        assert!(report.tcb_reduction_pct() > 10.0);
    }
}
