//! Bitrot guard for the figure-reproduction harness: every `src/bin/*` binary must run
//! end-to-end on a tiny (`--smoke`) configuration without panicking and with output on
//! stdout. Cargo builds the binaries alongside this test and exposes their paths via the
//! `CARGO_BIN_EXE_<name>` environment variables.

use std::process::Command;

fn run_smoke(exe: &str, args: &[&str]) {
    let output = Command::new(exe)
        .args(args)
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn {exe}: {e}"));
    assert!(
        output.status.success(),
        "{exe} {args:?} exited with {:?}\n--- stdout ---\n{}\n--- stderr ---\n{}",
        output.status,
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr),
    );
    assert!(
        !output.stdout.is_empty(),
        "{exe} {args:?} produced no output"
    );
}

macro_rules! smoke_test {
    ($($name:ident => $exe:literal),+ $(,)?) => {$(
        #[test]
        fn $name() {
            run_smoke(env!(concat!("CARGO_BIN_EXE_", $exe)), &["--smoke"]);
        }
    )+};
}

smoke_test! {
    fig2_fio_runs => "fig2_fio",
    fig6_sps_runs => "fig6_sps",
    fig7_mirroring_runs => "fig7_mirroring",
    fig8_batch_runs => "fig8_batch",
    fig9_crash_runs => "fig9_crash",
    fig10_spot_runs => "fig10_spot",
    inference_accuracy_runs => "inference_accuracy",
    table1_breakdown_runs => "table1_breakdown",
    tcb_report_runs => "tcb_report",
}
