//! Bitrot guard for the figure-reproduction harness: every `src/bin/*` binary must run
//! end-to-end on a tiny (`--smoke`) configuration without panicking and with output on
//! stdout. Cargo builds the binaries alongside this test and exposes their paths via the
//! `CARGO_BIN_EXE_<name>` environment variables.

use std::process::Command;

fn run_smoke(exe: &str, args: &[&str]) {
    let output = Command::new(exe)
        .args(args)
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn {exe}: {e}"));
    assert!(
        output.status.success(),
        "{exe} {args:?} exited with {:?}\n--- stdout ---\n{}\n--- stderr ---\n{}",
        output.status,
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr),
    );
    assert!(
        !output.stdout.is_empty(),
        "{exe} {args:?} produced no output"
    );
}

macro_rules! smoke_test {
    ($($name:ident => $exe:literal),+ $(,)?) => {$(
        #[test]
        fn $name() {
            run_smoke(env!(concat!("CARGO_BIN_EXE_", $exe)), &["--smoke"]);
        }
    )+};
}

smoke_test! {
    fig2_fio_runs => "fig2_fio",
    fig6_sps_runs => "fig6_sps",
    fleet_bench_runs => "fleet_bench",
    fig7_mirroring_runs => "fig7_mirroring",
    fig8_batch_runs => "fig8_batch",
    fig9_crash_runs => "fig9_crash",
    fig10_spot_runs => "fig10_spot",
    inference_accuracy_runs => "inference_accuracy",
    serve_bench_runs => "serve_bench",
    table1_breakdown_runs => "table1_breakdown",
    tcb_report_runs => "tcb_report",
    vfs_bench_runs => "vfs_bench",
}

#[test]
fn unknown_flags_abort_instead_of_launching_a_default_scale_run() {
    // A typo like `--smokee` used to be silently ignored, turning an intended
    // seconds-long smoke run into the binary's default-scale sweep.
    let output = Command::new(env!("CARGO_BIN_EXE_fig7_mirroring"))
        .arg("--smokee")
        .output()
        .expect("failed to spawn fig7_mirroring");
    assert_eq!(output.status.code(), Some(2), "{:?}", output.status);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("--smokee") && stderr.contains("usage:"),
        "stderr did not explain the rejected flag:\n{stderr}"
    );
    assert!(output.stdout.is_empty(), "a rejected run must not start");
}

#[test]
fn stray_positionals_abort_binaries_that_take_no_inputs() {
    // `fig7_mirroring smoke` (dashes forgotten) must not silently run the
    // default-scale sweep.
    let output = Command::new(env!("CARGO_BIN_EXE_fig7_mirroring"))
        .arg("smoke")
        .output()
        .expect("failed to spawn fig7_mirroring");
    assert_eq!(output.status.code(), Some(2), "{:?}", output.status);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("smoke") && stderr.contains("usage:"),
        "stderr did not explain the stray argument:\n{stderr}"
    );
    assert!(output.stdout.is_empty(), "a rejected run must not start");
}

#[test]
fn threads_flag_is_accepted_by_the_smoke_run() {
    // `--threads N` replaces the PLINIUS_THREADS env-var dance for the bench bins:
    // the binary must run normally with an explicit worker count.
    run_smoke(
        env!("CARGO_BIN_EXE_fig7_mirroring"),
        &["--smoke", "--threads", "2"],
    );
    run_smoke(env!("CARGO_BIN_EXE_fig6_sps"), &["--smoke", "--threads=1"]);
}

#[test]
fn threads_flag_without_a_value_aborts() {
    let output = Command::new(env!("CARGO_BIN_EXE_fig7_mirroring"))
        .args(["--smoke", "--threads"])
        .output()
        .expect("failed to spawn fig7_mirroring");
    assert_eq!(output.status.code(), Some(2), "{:?}", output.status);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("--threads") && stderr.contains("usage:"),
        "stderr did not explain the missing value:\n{stderr}"
    );
    assert!(output.stdout.is_empty(), "a rejected run must not start");
}

#[test]
fn threads_flag_with_an_invalid_value_aborts() {
    let output = Command::new(env!("CARGO_BIN_EXE_fig7_mirroring"))
        .args(["--smoke", "--threads", "0"])
        .output()
        .expect("failed to spawn fig7_mirroring");
    assert_eq!(output.status.code(), Some(2), "{:?}", output.status);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("invalid value") && stderr.contains("--threads"),
        "stderr did not explain the invalid value:\n{stderr}"
    );
}

#[test]
fn ring_flag_is_accepted_by_the_smoke_run() {
    // `--ring N` is the CLI face of PLINIUS_RING: the mirror-constructing bins must
    // run normally with an explicit epoch-ring depth, in both flag forms.
    run_smoke(
        env!("CARGO_BIN_EXE_fig7_mirroring"),
        &["--smoke", "--ring", "4"],
    );
    run_smoke(env!("CARGO_BIN_EXE_fig9_crash"), &["--smoke", "--ring=3"]);
}

#[test]
fn ring_flag_without_a_value_aborts() {
    let output = Command::new(env!("CARGO_BIN_EXE_fig7_mirroring"))
        .args(["--smoke", "--ring"])
        .output()
        .expect("failed to spawn fig7_mirroring");
    assert_eq!(output.status.code(), Some(2), "{:?}", output.status);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("--ring") && stderr.contains("usage:"),
        "stderr did not explain the missing value:\n{stderr}"
    );
    assert!(output.stdout.is_empty(), "a rejected run must not start");
}

#[test]
fn ring_flag_with_an_invalid_value_aborts() {
    // Depth 1 is as invalid as garbage: a one-deep ring cannot separate the
    // committing epoch from the last complete one.
    for bad in ["1", "none"] {
        let output = Command::new(env!("CARGO_BIN_EXE_fig7_mirroring"))
            .args(["--smoke", "--ring", bad])
            .output()
            .expect("failed to spawn fig7_mirroring");
        assert_eq!(output.status.code(), Some(2), "{:?}", output.status);
        let stderr = String::from_utf8_lossy(&output.stderr);
        assert!(
            stderr.contains("invalid value") && stderr.contains("--ring"),
            "stderr did not explain the invalid value:\n{stderr}"
        );
    }
}

#[test]
fn tenants_flag_is_accepted_by_the_smoke_run() {
    // `--tenants N` is the CLI face of PLINIUS_TENANTS: the fleet bench pins its
    // sweep to the given tenant count, in both flag forms.
    run_smoke(
        env!("CARGO_BIN_EXE_fleet_bench"),
        &["--smoke", "--tenants", "2"],
    );
    run_smoke(
        env!("CARGO_BIN_EXE_fleet_bench"),
        &["--smoke", "--tenants=1"],
    );
}

#[test]
fn tenants_flag_without_a_value_aborts() {
    let output = Command::new(env!("CARGO_BIN_EXE_fleet_bench"))
        .args(["--smoke", "--tenants"])
        .output()
        .expect("failed to spawn fleet_bench");
    assert_eq!(output.status.code(), Some(2), "{:?}", output.status);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("--tenants") && stderr.contains("usage:"),
        "stderr did not explain the missing value:\n{stderr}"
    );
    assert!(output.stdout.is_empty(), "a rejected run must not start");
}

#[test]
fn tenants_flag_with_an_invalid_value_aborts() {
    // Zero tenants is as invalid as garbage: a fleet needs at least one job.
    for bad in ["0", "lots"] {
        let output = Command::new(env!("CARGO_BIN_EXE_fleet_bench"))
            .args(["--smoke", "--tenants", bad])
            .output()
            .expect("failed to spawn fleet_bench");
        assert_eq!(output.status.code(), Some(2), "{:?}", output.status);
        let stderr = String::from_utf8_lossy(&output.stderr);
        assert!(
            stderr.contains("invalid value") && stderr.contains("--tenants"),
            "stderr did not explain the invalid value:\n{stderr}"
        );
    }
}

#[test]
fn crypto_flag_is_accepted_by_the_smoke_run() {
    // `--crypto E` is the CLI face of PLINIUS_CRYPTO: the bins must run normally
    // with an explicitly pinned AES-GCM engine, in both flag forms.
    run_smoke(
        env!("CARGO_BIN_EXE_fig7_mirroring"),
        &["--smoke", "--crypto", "scalar"],
    );
    run_smoke(
        env!("CARGO_BIN_EXE_fig6_sps"),
        &["--smoke", "--crypto=reference"],
    );
}

#[test]
fn crypto_flag_without_a_value_aborts() {
    let output = Command::new(env!("CARGO_BIN_EXE_fig7_mirroring"))
        .args(["--smoke", "--crypto"])
        .output()
        .expect("failed to spawn fig7_mirroring");
    assert_eq!(output.status.code(), Some(2), "{:?}", output.status);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("--crypto") && stderr.contains("usage:"),
        "stderr did not explain the missing value:\n{stderr}"
    );
    assert!(output.stdout.is_empty(), "a rejected run must not start");
}

#[test]
fn crypto_flag_with_an_invalid_value_aborts() {
    // Unlike the lenient env var (unknown values fall back to auto-detection),
    // an explicit CLI engine must be exact: no aliases, no case folding.
    for bad in ["hw", "SCALAR", "aesni"] {
        let output = Command::new(env!("CARGO_BIN_EXE_fig7_mirroring"))
            .args(["--smoke", "--crypto", bad])
            .output()
            .expect("failed to spawn fig7_mirroring");
        assert_eq!(output.status.code(), Some(2), "{:?}", output.status);
        let stderr = String::from_utf8_lossy(&output.stderr);
        assert!(
            stderr.contains("invalid value") && stderr.contains("--crypto"),
            "stderr did not explain the invalid value:\n{stderr}"
        );
    }
}

#[test]
fn gemm_flag_is_accepted_by_the_smoke_run() {
    // `--gemm E` is the CLI face of PLINIUS_GEMM: the bins must run normally
    // with an explicitly pinned GEMM engine, in both flag forms.
    run_smoke(
        env!("CARGO_BIN_EXE_fig6_sps"),
        &["--smoke", "--gemm", "scalar"],
    );
    run_smoke(
        env!("CARGO_BIN_EXE_fig7_mirroring"),
        &["--smoke", "--gemm=reference"],
    );
}

#[test]
fn gemm_flag_without_a_value_aborts() {
    let output = Command::new(env!("CARGO_BIN_EXE_fig6_sps"))
        .args(["--smoke", "--gemm"])
        .output()
        .expect("failed to spawn fig6_sps");
    assert_eq!(output.status.code(), Some(2), "{:?}", output.status);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("--gemm") && stderr.contains("usage:"),
        "stderr did not explain the missing value:\n{stderr}"
    );
    assert!(output.stdout.is_empty(), "a rejected run must not start");
}

#[test]
fn gemm_flag_with_an_invalid_value_aborts() {
    // Unlike the lenient env var (unknown values fall back to auto-detection),
    // an explicit CLI engine must be exact: no engine labels, no case folding.
    for bad in ["avx2", "FMA", "vector"] {
        let output = Command::new(env!("CARGO_BIN_EXE_fig6_sps"))
            .args(["--smoke", "--gemm", bad])
            .output()
            .expect("failed to spawn fig6_sps");
        assert_eq!(output.status.code(), Some(2), "{:?}", output.status);
        let stderr = String::from_utf8_lossy(&output.stderr);
        assert!(
            stderr.contains("invalid value") && stderr.contains("--gemm"),
            "stderr did not explain the invalid value:\n{stderr}"
        );
    }
}

#[test]
fn help_flag_prints_usage_and_exits_cleanly() {
    let output = Command::new(env!("CARGO_BIN_EXE_fig9_crash"))
        .arg("--help")
        .output()
        .expect("failed to spawn fig9_crash");
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("--smoke") && stdout.contains("--full"));
}
