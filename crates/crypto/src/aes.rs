//! AES block cipher (FIPS-197) supporting 128-, 192- and 256-bit keys.
//!
//! Only the forward cipher is implemented because every mode used by Plinius
//! (GCM, i.e. CTR + GHASH) needs just the encryption direction.
//!
//! Two kernels are provided:
//!
//! * [`Aes::encrypt_block`] — the production path: a classic **T-table** implementation.
//!   The four 256-entry `u32` tables fuse SubBytes, ShiftRows and MixColumns into four
//!   lookups + XORs per column per round, roughly an order of magnitude faster than the
//!   byte-wise reference. The tables are compile-time constants; the key schedule is
//!   additionally expanded to `u32` round-key words when the key is set.
//! * [`Aes::encrypt_block_reference`] — the original table-free byte-wise version,
//!   retained as the easy-to-audit reference kernel. The property tests pin the fast
//!   path to it bit-for-bit, and the throughput sanity test measures the speedup
//!   against it.
//!
//! Both are bit-exact software AES, mirroring the role of the Intel SGX SDK crypto
//! library inside the enclave.

/// AES block size in bytes.
pub const BLOCK_SIZE: usize = 16;

/// The AES S-box.
#[rustfmt::skip]
const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

/// Round constants for the key schedule.
const RCON: [u8; 11] = [
    0x00, 0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36,
];

/// Multiplication by `x` (i.e. 2) in GF(2^8) with the AES polynomial.
#[inline]
fn xtime(b: u8) -> u8 {
    let hi = b & 0x80;
    let mut r = b << 1;
    if hi != 0 {
        r ^= 0x1b;
    }
    r
}

/// `const` variant of [`xtime`] for compile-time table generation.
const fn xtime_const(b: u8) -> u8 {
    let r = (b as u16) << 1;
    ((r ^ if b & 0x80 != 0 { 0x1b } else { 0 }) & 0xff) as u8
}

/// Builds the round-0 T-table: `TE0[x] = [2·S(x), S(x), S(x), 3·S(x)]` as a big-endian
/// word (row 0 in the top byte). The column of MixColumns coefficients `(2, 1, 1, 3)` is
/// the contribution of an input row-0 byte to each output row; the tables for rows 1-3
/// are byte rotations of this one.
const fn build_te0() -> [u32; 256] {
    let mut t = [0u32; 256];
    let mut x = 0usize;
    while x < 256 {
        let s = SBOX[x];
        let s2 = xtime_const(s);
        let s3 = s2 ^ s;
        t[x] = ((s2 as u32) << 24) | ((s as u32) << 16) | ((s as u32) << 8) | (s3 as u32);
        x += 1;
    }
    t
}

const fn rotate_table(src: &[u32; 256], bits: u32) -> [u32; 256] {
    let mut t = [0u32; 256];
    let mut x = 0usize;
    while x < 256 {
        t[x] = src[x].rotate_right(bits);
        x += 1;
    }
    t
}

/// The four AES encryption T-tables (4 KiB total), derived at compile time.
const TE0: [u32; 256] = build_te0();
const TE1: [u32; 256] = rotate_table(&TE0, 8);
const TE2: [u32; 256] = rotate_table(&TE0, 16);
const TE3: [u32; 256] = rotate_table(&TE0, 24);

/// An expanded AES key schedule, usable for any supported key length.
///
/// Holds both the byte-oriented round keys (used by the reference kernel) and the
/// word-oriented expansion consumed by the T-table fast path.
#[derive(Clone)]
pub struct Aes {
    round_keys: Vec<[u8; 16]>,
    /// The same schedule as big-endian `u32` words, one `[u32; 4]` per round (column
    /// `c` of round `r` is `rk_words[r][c]`); the fixed-size rows let the fast path
    /// index columns without bounds checks.
    rk_words: Vec<[u32; 4]>,
    rounds: usize,
}

impl std::fmt::Debug for Aes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        f.debug_struct("Aes").field("rounds", &self.rounds).finish()
    }
}

impl Aes {
    /// Expands an AES key. The key must be 16, 24 or 32 bytes long.
    ///
    /// # Panics
    ///
    /// Panics if the key length is not one of 16, 24 or 32 bytes; key-length
    /// validation with a recoverable error happens one level up in
    /// [`crate::Key::new`].
    pub fn new(key: &[u8]) -> Self {
        let (nk, rounds) = match key.len() {
            16 => (4usize, 10usize),
            24 => (6, 12),
            32 => (8, 14),
            n => panic!("unsupported AES key length: {n} bytes"),
        };
        let nb = 4usize;
        let total_words = nb * (rounds + 1);
        let mut w = vec![[0u8; 4]; total_words];
        for (i, word) in w.iter_mut().take(nk).enumerate() {
            word.copy_from_slice(&key[4 * i..4 * i + 4]);
        }
        for i in nk..total_words {
            let mut temp = w[i - 1];
            if i % nk == 0 {
                temp.rotate_left(1);
                for t in temp.iter_mut() {
                    *t = SBOX[*t as usize];
                }
                temp[0] ^= RCON[i / nk];
            } else if nk > 6 && i % nk == 4 {
                for t in temp.iter_mut() {
                    *t = SBOX[*t as usize];
                }
            }
            for j in 0..4 {
                w[i][j] = w[i - nk][j] ^ temp[j];
            }
        }
        let mut round_keys = Vec::with_capacity(rounds + 1);
        let mut rk_words = Vec::with_capacity(rounds + 1);
        for r in 0..=rounds {
            let mut rk = [0u8; 16];
            let mut words = [0u32; 4];
            for c in 0..4 {
                rk[4 * c..4 * c + 4].copy_from_slice(&w[4 * r + c]);
                words[c] = u32::from_be_bytes(w[4 * r + c]);
            }
            round_keys.push(rk);
            rk_words.push(words);
        }
        Aes {
            round_keys,
            rk_words,
            rounds,
        }
    }

    /// Number of rounds for this key size (10, 12 or 14).
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// The expanded byte-oriented round keys (`rounds + 1` entries of 16 bytes).
    ///
    /// Crate-internal: the AES-NI engine loads its schedule from here (and, for
    /// 128-bit keys, validates its native `AESKEYGENASSIST` expansion against it).
    pub(crate) fn round_keys(&self) -> &[[u8; BLOCK_SIZE]] {
        &self.round_keys
    }

    /// Encrypts a single 16-byte block in place (T-table fast path).
    pub fn encrypt_block(&self, block: &mut [u8; BLOCK_SIZE]) {
        *block = self.encrypt_block_copy(block);
    }

    /// Encrypts a block, returning the ciphertext instead of mutating in place
    /// (T-table fast path).
    ///
    /// The four state columns live in scalar registers and every round is unrolled
    /// over them; table indices are derived from single bytes, so all lookups are
    /// provably in bounds.
    #[inline]
    pub fn encrypt_block_copy(&self, block: &[u8; BLOCK_SIZE]) -> [u8; BLOCK_SIZE] {
        let rk = self.rk_words.as_slice();
        // State as four big-endian column words; `wc` holds rows 0..3 of column `c`
        // with row 0 in the top byte.
        let mut w0 = u32::from_be_bytes([block[0], block[1], block[2], block[3]]) ^ rk[0][0];
        let mut w1 = u32::from_be_bytes([block[4], block[5], block[6], block[7]]) ^ rk[0][1];
        let mut w2 = u32::from_be_bytes([block[8], block[9], block[10], block[11]]) ^ rk[0][2];
        let mut w3 = u32::from_be_bytes([block[12], block[13], block[14], block[15]]) ^ rk[0][3];
        // ShiftRows moves row r of column (c + r) into column c, so column c of the next
        // state reads row 0 from column c, row 1 from c+1, row 2 from c+2, row 3 from
        // c+3; each table fuses SubBytes with that row's MixColumns coefficients.
        for key in &rk[1..self.rounds] {
            let t0 = TE0[(w0 >> 24) as usize]
                ^ TE1[(w1 >> 16) as u8 as usize]
                ^ TE2[(w2 >> 8) as u8 as usize]
                ^ TE3[w3 as u8 as usize]
                ^ key[0];
            let t1 = TE0[(w1 >> 24) as usize]
                ^ TE1[(w2 >> 16) as u8 as usize]
                ^ TE2[(w3 >> 8) as u8 as usize]
                ^ TE3[w0 as u8 as usize]
                ^ key[1];
            let t2 = TE0[(w2 >> 24) as usize]
                ^ TE1[(w3 >> 16) as u8 as usize]
                ^ TE2[(w0 >> 8) as u8 as usize]
                ^ TE3[w1 as u8 as usize]
                ^ key[2];
            let t3 = TE0[(w3 >> 24) as usize]
                ^ TE1[(w0 >> 16) as u8 as usize]
                ^ TE2[(w1 >> 8) as u8 as usize]
                ^ TE3[w2 as u8 as usize]
                ^ key[3];
            w0 = t0;
            w1 = t1;
            w2 = t2;
            w3 = t3;
        }
        // Final round: SubBytes + ShiftRows only (no MixColumns).
        let key = &rk[self.rounds];
        let o0 = sub_word(w0, w1, w2, w3) ^ key[0];
        let o1 = sub_word(w1, w2, w3, w0) ^ key[1];
        let o2 = sub_word(w2, w3, w0, w1) ^ key[2];
        let o3 = sub_word(w3, w0, w1, w2) ^ key[3];
        let mut out = [0u8; BLOCK_SIZE];
        out[0..4].copy_from_slice(&o0.to_be_bytes());
        out[4..8].copy_from_slice(&o1.to_be_bytes());
        out[8..12].copy_from_slice(&o2.to_be_bytes());
        out[12..16].copy_from_slice(&o3.to_be_bytes());
        out
    }

    /// Encrypts four independent 16-byte blocks at once (T-table fast path).
    ///
    /// The four blocks form four independent dependency chains, so the table-lookup
    /// latency of one lane overlaps the others — this is what makes multi-block CTR
    /// keystream generation markedly faster than calling
    /// [`Aes::encrypt_block_copy`] four times in sequence.
    #[inline]
    pub fn encrypt_blocks<const LANES: usize>(
        &self,
        blocks: &[[u8; BLOCK_SIZE]; LANES],
    ) -> [[u8; BLOCK_SIZE]; LANES] {
        // Monomorphise on the round count so the round loop fully unrolls for the
        // common AES-128 case (and the others).
        match self.rounds {
            10 => self.encrypt_blocks_unrolled::<10, LANES>(blocks),
            12 => self.encrypt_blocks_unrolled::<12, LANES>(blocks),
            _ => self.encrypt_blocks_unrolled::<14, LANES>(blocks),
        }
    }

    #[inline]
    fn encrypt_blocks_unrolled<const ROUNDS: usize, const LANES: usize>(
        &self,
        blocks: &[[u8; BLOCK_SIZE]; LANES],
    ) -> [[u8; BLOCK_SIZE]; LANES] {
        debug_assert_eq!(self.rounds, ROUNDS);
        let rk = self.rk_words.as_slice();
        let mut w = [[0u32; 4]; LANES]; // w[lane][column]
        for (lane, block) in blocks.iter().enumerate() {
            for c in 0..4 {
                w[lane][c] =
                    u32::from_be_bytes(block[4 * c..4 * c + 4].try_into().expect("4 bytes"))
                        ^ rk[0][c];
            }
        }
        for key in &rk[1..ROUNDS] {
            for lane in w.iter_mut() {
                let [w0, w1, w2, w3] = *lane;
                *lane = [
                    TE0[(w0 >> 24) as usize]
                        ^ TE1[(w1 >> 16) as u8 as usize]
                        ^ TE2[(w2 >> 8) as u8 as usize]
                        ^ TE3[w3 as u8 as usize]
                        ^ key[0],
                    TE0[(w1 >> 24) as usize]
                        ^ TE1[(w2 >> 16) as u8 as usize]
                        ^ TE2[(w3 >> 8) as u8 as usize]
                        ^ TE3[w0 as u8 as usize]
                        ^ key[1],
                    TE0[(w2 >> 24) as usize]
                        ^ TE1[(w3 >> 16) as u8 as usize]
                        ^ TE2[(w0 >> 8) as u8 as usize]
                        ^ TE3[w1 as u8 as usize]
                        ^ key[2],
                    TE0[(w3 >> 24) as usize]
                        ^ TE1[(w0 >> 16) as u8 as usize]
                        ^ TE2[(w1 >> 8) as u8 as usize]
                        ^ TE3[w2 as u8 as usize]
                        ^ key[3],
                ];
            }
        }
        let key = &rk[ROUNDS];
        let mut out = [[0u8; BLOCK_SIZE]; LANES];
        for (lane, block) in out.iter_mut().enumerate() {
            let [w0, w1, w2, w3] = w[lane];
            block[0..4].copy_from_slice(&(sub_word(w0, w1, w2, w3) ^ key[0]).to_be_bytes());
            block[4..8].copy_from_slice(&(sub_word(w1, w2, w3, w0) ^ key[1]).to_be_bytes());
            block[8..12].copy_from_slice(&(sub_word(w2, w3, w0, w1) ^ key[2]).to_be_bytes());
            block[12..16].copy_from_slice(&(sub_word(w3, w0, w1, w2) ^ key[3]).to_be_bytes());
        }
        out
    }

    /// Encrypts a single 16-byte block with the retained byte-wise reference kernel
    /// (SubBytes / ShiftRows / MixColumns / AddRoundKey spelled out).
    ///
    /// Kept for differential testing and throughput baselines; production code uses
    /// [`Aes::encrypt_block`].
    pub fn encrypt_block_reference(&self, block: &mut [u8; BLOCK_SIZE]) {
        let mut state = *block;
        add_round_key(&mut state, &self.round_keys[0]);
        for round in 1..self.rounds {
            sub_bytes(&mut state);
            shift_rows(&mut state);
            mix_columns(&mut state);
            add_round_key(&mut state, &self.round_keys[round]);
        }
        sub_bytes(&mut state);
        shift_rows(&mut state);
        add_round_key(&mut state, &self.round_keys[self.rounds]);
        *block = state;
    }
}

/// Applies the final-round SubBytes + ShiftRows to one output column: row 0 from `a`,
/// row 1 from `b`, row 2 from `c`, row 3 from `d`.
#[inline]
fn sub_word(a: u32, b: u32, c: u32, d: u32) -> u32 {
    ((SBOX[(a >> 24) as usize] as u32) << 24)
        | ((SBOX[(b >> 16) as u8 as usize] as u32) << 16)
        | ((SBOX[(c >> 8) as u8 as usize] as u32) << 8)
        | (SBOX[d as u8 as usize] as u32)
}

#[inline]
fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
    for (s, k) in state.iter_mut().zip(rk.iter()) {
        *s ^= *k;
    }
}

#[inline]
fn sub_bytes(state: &mut [u8; 16]) {
    for s in state.iter_mut() {
        *s = SBOX[*s as usize];
    }
}

/// The state is stored column-major: byte `state[4*c + r]` is row `r`, column `c`.
#[inline]
fn shift_rows(state: &mut [u8; 16]) {
    let s = *state;
    // Row 1: shift left by 1.
    state[1] = s[5];
    state[5] = s[9];
    state[9] = s[13];
    state[13] = s[1];
    // Row 2: shift left by 2.
    state[2] = s[10];
    state[6] = s[14];
    state[10] = s[2];
    state[14] = s[6];
    // Row 3: shift left by 3.
    state[3] = s[15];
    state[7] = s[3];
    state[11] = s[7];
    state[15] = s[11];
}

#[inline]
fn mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = &mut state[4 * c..4 * c + 4];
        let a0 = col[0];
        let a1 = col[1];
        let a2 = col[2];
        let a3 = col[3];
        let all = a0 ^ a1 ^ a2 ^ a3;
        col[0] = a0 ^ all ^ xtime(a0 ^ a1);
        col[1] = a1 ^ all ^ xtime(a1 ^ a2);
        col[2] = a2 ^ all ^ xtime(a2 ^ a3);
        col[3] = a3 ^ all ^ xtime(a3 ^ a0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    /// FIPS-197 Appendix C.1 example vector for AES-128.
    #[test]
    fn fips197_aes128_vector() {
        let key = hex("000102030405060708090a0b0c0d0e0f");
        let pt = hex("00112233445566778899aabbccddeeff");
        let aes = Aes::new(&key);
        let mut block = [0u8; 16];
        block.copy_from_slice(&pt);
        aes.encrypt_block(&mut block);
        assert_eq!(block.to_vec(), hex("69c4e0d86a7b0430d8cdb78070b4c55a"));
    }

    /// FIPS-197 Appendix C.2 example vector for AES-192.
    #[test]
    fn fips197_aes192_vector() {
        let key = hex("000102030405060708090a0b0c0d0e0f1011121314151617");
        let pt = hex("00112233445566778899aabbccddeeff");
        let aes = Aes::new(&key);
        assert_eq!(aes.rounds(), 12);
        let mut block = [0u8; 16];
        block.copy_from_slice(&pt);
        aes.encrypt_block(&mut block);
        assert_eq!(block.to_vec(), hex("dda97ca4864cdfe06eaf70a0ec0d7191"));
    }

    /// FIPS-197 Appendix C.3 example vector for AES-256.
    #[test]
    fn fips197_aes256_vector() {
        let key = hex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
        let pt = hex("00112233445566778899aabbccddeeff");
        let aes = Aes::new(&key);
        assert_eq!(aes.rounds(), 14);
        let mut block = [0u8; 16];
        block.copy_from_slice(&pt);
        aes.encrypt_block(&mut block);
        assert_eq!(block.to_vec(), hex("8ea2b7ca516745bfeafc49904b496089"));
    }

    #[test]
    fn encrypt_block_copy_matches_in_place() {
        let key = [7u8; 16];
        let aes = Aes::new(&key);
        let block = [42u8; 16];
        let copy = aes.encrypt_block_copy(&block);
        let mut in_place = block;
        aes.encrypt_block(&mut in_place);
        assert_eq!(copy, in_place);
        assert_ne!(copy, block, "cipher must change the block");
    }

    #[test]
    #[should_panic(expected = "unsupported AES key length")]
    fn rejects_bad_key_length() {
        let _ = Aes::new(&[0u8; 10]);
    }

    /// The T-table fast path must agree with the byte-wise reference kernel for every
    /// key size, on a spread of deterministic pseudo-random blocks.
    #[test]
    fn t_table_matches_reference_kernel() {
        for key_len in [16usize, 24, 32] {
            let key: Vec<u8> = (0..key_len as u8)
                .map(|i| i.wrapping_mul(37) ^ 0x5a)
                .collect();
            let aes = Aes::new(&key);
            let mut block = [0u8; 16];
            for round in 0u32..64 {
                for (i, b) in block.iter_mut().enumerate() {
                    *b = (round as u8)
                        .wrapping_mul(97)
                        .wrapping_add(i as u8)
                        .wrapping_mul(13);
                }
                let fast = aes.encrypt_block_copy(&block);
                let mut reference = block;
                aes.encrypt_block_reference(&mut reference);
                assert_eq!(fast, reference, "key_len={key_len} round={round}");
                block = fast; // chain: feed ciphertext back in
            }
        }
    }

    /// The reference kernel also reproduces the FIPS-197 C.1 vector (it is the retained
    /// ground truth the fast path is pinned to).
    #[test]
    fn reference_kernel_fips197_vector() {
        let aes = Aes::new(&hex("000102030405060708090a0b0c0d0e0f"));
        let mut block = [0u8; 16];
        block.copy_from_slice(&hex("00112233445566778899aabbccddeeff"));
        aes.encrypt_block_reference(&mut block);
        assert_eq!(block.to_vec(), hex("69c4e0d86a7b0430d8cdb78070b4c55a"));
    }

    #[test]
    fn debug_does_not_leak_key_material() {
        let aes = Aes::new(&[0xAB; 16]);
        let dbg = format!("{aes:?}");
        assert!(!dbg.contains("171"), "debug output: {dbg}");
        assert!(dbg.contains("rounds"));
    }
}
