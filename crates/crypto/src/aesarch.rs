//! AES-NI block engine: hardware AES rounds (`AESENC`/`AESENCLAST`) driving an
//! interleaved multi-block CTR keystream.
//!
//! This is one of the two modules in the crate allowed to contain `unsafe` code
//! (the other is [`crate::clmul`]); everything else stays `#![deny(unsafe_code)]`.
//!
//! # Safety contract
//!
//! * [`AesNi::try_new`] returns `Some` only after
//!   [`crate::dispatch::hw_available`] has *runtime-verified* that the CPU
//!   reports the `aes` feature (SSE2 is part of the `x86_64` baseline). Every
//!   `unsafe` block in this module calls a `#[target_feature(enable = "aes")]`
//!   function through a safe wrapper on `self`, so the instructions are provably
//!   supported whenever they execute.
//! * All loads and stores go through unaligned intrinsics
//!   (`_mm_loadu_si128`/`_mm_storeu_si128`) against bounds-checked slice ranges;
//!   no pointer ever escapes the length of its source slice.
//!
//! # Kernel shape
//!
//! The CTR keystream is generated eight blocks at a time: eight counter blocks
//! are derived from the base counter (`inc32` semantics, matching the scalar
//! engine bit-for-bit), the AES rounds run interleaved across the eight lanes so
//! the ~4-cycle `AESENC` latency of one lane hides behind the others, and the
//! keystream is XORed straight into the caller's output buffer. The tail runs
//! block-by-block, then byte-by-byte for a final partial block — the same
//! decomposition as the scalar `ctr_xor_into`, so chunk-parallel callers split at
//! identical counter boundaries on every engine.
//!
//! The key schedule for 128-bit keys (the size Plinius uses) is expanded natively
//! with `AESKEYGENASSIST` and pinned against the FIPS-197 scalar expansion by a
//! unit test (and a debug assertion); 192/256-bit keys load the already-validated
//! scalar schedule directly.
#![allow(unsafe_code)]

use core::arch::x86_64::{
    __m128i, _mm_aesenc_si128, _mm_aesenclast_si128, _mm_aeskeygenassist_si128, _mm_loadu_si128,
    _mm_setzero_si128, _mm_shuffle_epi32, _mm_slli_si128, _mm_storeu_si128, _mm_xor_si128,
};

use crate::aes::{Aes, BLOCK_SIZE};
use crate::dispatch::hw_available;
use crate::gcm::counter_add;

/// Maximum number of round keys (AES-256: 14 rounds + the initial whitening key).
const MAX_ROUND_KEYS: usize = 15;

/// How many keystream blocks the wide CTR kernel produces per iteration.
const WIDE_LANES: usize = 8;

/// An AES-NI key schedule plus the hardware CTR kernel.
///
/// Round keys are stored as plain bytes (not `__m128i`) so the struct is ordinary
/// `Copy` data on every platform; the kernels load them with unaligned moves, and
/// the compiler hoists the loads out of the block loop inside the
/// `#[target_feature]` functions.
#[derive(Clone, Copy)]
pub(crate) struct AesNi {
    rk: [[u8; BLOCK_SIZE]; MAX_ROUND_KEYS],
    rounds: usize,
}

impl AesNi {
    /// Builds the hardware engine for an expanded key, or `None` when the CPU
    /// does not support it. This is the *only* constructor, which is what makes
    /// the safe wrappers below sound.
    pub(crate) fn try_new(cipher: &Aes) -> Option<Self> {
        if !hw_available() {
            return None;
        }
        let rounds = cipher.rounds();
        let mut rk = [[0u8; BLOCK_SIZE]; MAX_ROUND_KEYS];
        if rounds == 10 {
            // SAFETY: `hw_available()` verified the `aes` feature above.
            unsafe { expand_key_128(&cipher.round_keys()[0], &mut rk) };
            debug_assert_eq!(
                &rk[..=rounds],
                cipher.round_keys(),
                "AESKEYGENASSIST schedule must match the FIPS-197 expansion"
            );
        } else {
            rk[..=rounds].copy_from_slice(cipher.round_keys());
        }
        Some(AesNi { rk, rounds })
    }

    /// Applies the CTR keystream starting at `counter` to `src`, writing into
    /// `dst`. Bit-identical to the scalar `ctr_xor_into` for every input.
    ///
    /// # Panics
    ///
    /// Debug-asserts `src.len() == dst.len()` (callers guarantee it).
    pub(crate) fn ctr_xor(&self, counter: [u8; BLOCK_SIZE], src: &[u8], dst: &mut [u8]) {
        // SAFETY: `try_new` only constructs `AesNi` after runtime detection of
        // the `aes` feature, so the target-feature function below is supported.
        unsafe { self.ctr_xor_impl(counter, src, dst) }
    }

    /// Encrypts one block (used by tests to pin the hardware rounds against the
    /// scalar core; the production single-block path stays on the T-tables).
    #[cfg(test)]
    pub(crate) fn encrypt_block(&self, block: &[u8; BLOCK_SIZE]) -> [u8; BLOCK_SIZE] {
        // SAFETY: as in `ctr_xor`, construction proved feature support.
        unsafe { self.encrypt_block_impl(block) }
    }

    /// # Safety
    ///
    /// The CPU must support the `aes` feature ([`AesNi::try_new`] proves it).
    #[target_feature(enable = "aes")]
    unsafe fn ctr_xor_impl(&self, counter: [u8; BLOCK_SIZE], src: &[u8], dst: &mut [u8]) {
        debug_assert_eq!(src.len(), dst.len());
        let total = src.len();
        let mut off = 0usize;
        let mut block_idx = 0u32;
        // Wide path: 8 interleaved lanes per iteration.
        while total - off >= WIDE_LANES * BLOCK_SIZE {
            let mut lanes = [_mm_setzero_si128(); WIDE_LANES];
            for (lane, slot) in lanes.iter_mut().enumerate() {
                let c = counter_add(counter, block_idx.wrapping_add(lane as u32));
                *slot = _mm_loadu_si128(c.as_ptr().cast());
            }
            self.encrypt_lanes(&mut lanes);
            for (lane, ks) in lanes.iter().enumerate() {
                let p = off + lane * BLOCK_SIZE;
                let data = _mm_loadu_si128(src[p..p + BLOCK_SIZE].as_ptr().cast());
                _mm_storeu_si128(
                    dst[p..p + BLOCK_SIZE].as_mut_ptr().cast(),
                    _mm_xor_si128(data, *ks),
                );
            }
            off += WIDE_LANES * BLOCK_SIZE;
            block_idx = block_idx.wrapping_add(WIDE_LANES as u32);
        }
        // Whole-block tail.
        while total - off >= BLOCK_SIZE {
            let c = counter_add(counter, block_idx);
            let mut lanes = [_mm_loadu_si128(c.as_ptr().cast())];
            self.encrypt_lanes(&mut lanes);
            let data = _mm_loadu_si128(src[off..off + BLOCK_SIZE].as_ptr().cast());
            _mm_storeu_si128(
                dst[off..off + BLOCK_SIZE].as_mut_ptr().cast(),
                _mm_xor_si128(data, lanes[0]),
            );
            off += BLOCK_SIZE;
            block_idx = block_idx.wrapping_add(1);
        }
        // Partial final block.
        if off < total {
            let c = counter_add(counter, block_idx);
            let mut lanes = [_mm_loadu_si128(c.as_ptr().cast())];
            self.encrypt_lanes(&mut lanes);
            let mut ks = [0u8; BLOCK_SIZE];
            _mm_storeu_si128(ks.as_mut_ptr().cast(), lanes[0]);
            for (i, (s, d)) in src[off..].iter().zip(dst[off..].iter_mut()).enumerate() {
                *d = s ^ ks[i];
            }
        }
    }

    /// Runs the AES rounds interleaved over `LANES` independent blocks.
    ///
    /// # Safety
    ///
    /// The CPU must support the `aes` feature ([`AesNi::try_new`] proves it).
    #[inline]
    #[target_feature(enable = "aes")]
    unsafe fn encrypt_lanes<const LANES: usize>(&self, lanes: &mut [__m128i; LANES]) {
        let k0 = _mm_loadu_si128(self.rk[0].as_ptr().cast());
        for lane in lanes.iter_mut() {
            *lane = _mm_xor_si128(*lane, k0);
        }
        for rk in &self.rk[1..self.rounds] {
            let k = _mm_loadu_si128(rk.as_ptr().cast());
            for lane in lanes.iter_mut() {
                *lane = _mm_aesenc_si128(*lane, k);
            }
        }
        let klast = _mm_loadu_si128(self.rk[self.rounds].as_ptr().cast());
        for lane in lanes.iter_mut() {
            *lane = _mm_aesenclast_si128(*lane, klast);
        }
    }

    /// # Safety
    ///
    /// The CPU must support the `aes` feature ([`AesNi::try_new`] proves it).
    #[cfg(test)]
    #[target_feature(enable = "aes")]
    unsafe fn encrypt_block_impl(&self, block: &[u8; BLOCK_SIZE]) -> [u8; BLOCK_SIZE] {
        let mut lanes = [_mm_loadu_si128(block.as_ptr().cast())];
        self.encrypt_lanes(&mut lanes);
        let mut out = [0u8; BLOCK_SIZE];
        _mm_storeu_si128(out.as_mut_ptr().cast(), lanes[0]);
        out
    }
}

impl std::fmt::Debug for AesNi {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print the round keys.
        f.debug_struct("AesNi")
            .field("rounds", &self.rounds)
            .finish_non_exhaustive()
    }
}

/// One AES-128 key-schedule round: `AESKEYGENASSIST` produces
/// `SubWord(RotWord(w3))` (with the round constant folded in) in every dword;
/// broadcasting dword 3 and XOR-folding the previous key's prefix sums yields the
/// next round key.
///
/// # Safety
///
/// The CPU must support the `aes` feature.
#[inline]
#[target_feature(enable = "aes")]
unsafe fn ks_round_128<const RCON: i32>(prev: __m128i) -> __m128i {
    let assist = _mm_shuffle_epi32(_mm_aeskeygenassist_si128(prev, RCON), 0xff);
    let mut key = prev;
    key = _mm_xor_si128(key, _mm_slli_si128(key, 4));
    key = _mm_xor_si128(key, _mm_slli_si128(key, 4));
    key = _mm_xor_si128(key, _mm_slli_si128(key, 4));
    _mm_xor_si128(key, assist)
}

/// Expands a 128-bit key natively with `AESKEYGENASSIST`.
///
/// # Safety
///
/// The CPU must support the `aes` feature ([`AesNi::try_new`] proves it).
#[target_feature(enable = "aes")]
unsafe fn expand_key_128(key: &[u8; BLOCK_SIZE], rk: &mut [[u8; BLOCK_SIZE]; MAX_ROUND_KEYS]) {
    let mut k = _mm_loadu_si128(key.as_ptr().cast());
    _mm_storeu_si128(rk[0].as_mut_ptr().cast(), k);
    // The FIPS-197 round constants 0x01..0x36 as immediates (required by the
    // intrinsic), one `AESKEYGENASSIST` per round.
    macro_rules! rounds {
        ($($i:literal => $rcon:literal),+ $(,)?) => {
            $(
                k = ks_round_128::<$rcon>(k);
                _mm_storeu_si128(rk[$i].as_mut_ptr().cast(), k);
            )+
        };
    }
    rounds!(
        1 => 0x01, 2 => 0x02, 3 => 0x04, 4 => 0x08, 5 => 0x10,
        6 => 0x20, 7 => 0x40, 8 => 0x80, 9 => 0x1b, 10 => 0x36,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine(key: &[u8]) -> Option<(Aes, AesNi)> {
        let aes = Aes::new(key);
        let ni = AesNi::try_new(&aes)?;
        Some((aes, ni))
    }

    /// The native `AESKEYGENASSIST` schedule for 128-bit keys matches the scalar
    /// FIPS-197 expansion exactly (192/256-bit schedules are copied from it, so
    /// they agree by construction).
    #[test]
    fn aeskeygenassist_schedule_matches_fips197_expansion() {
        for key in [[0u8; 16], [0xFFu8; 16], {
            let mut k = [0u8; 16];
            for (i, b) in k.iter_mut().enumerate() {
                *b = (i as u8).wrapping_mul(0x1f).wrapping_add(3);
            }
            k
        }] {
            let Some((aes, ni)) = engine(&key) else {
                eprintln!("skipping: no AES-NI on this host");
                return;
            };
            assert_eq!(&ni.rk[..=10], aes.round_keys(), "key={key:02x?}");
        }
    }

    /// The hardware rounds agree with the T-table core on single blocks for all
    /// three key sizes (the FIPS-197 vectors are pinned on the scalar core's own
    /// tests; equality here transfers them to the hardware path).
    #[test]
    fn hardware_rounds_match_the_scalar_core() {
        for key_len in [16usize, 24, 32] {
            let key: Vec<u8> = (0..key_len as u8)
                .map(|i| i.wrapping_mul(7) ^ 0x5a)
                .collect();
            let Some((aes, ni)) = engine(&key) else {
                eprintln!("skipping: no AES-NI on this host");
                return;
            };
            let mut block = [0u8; BLOCK_SIZE];
            for round in 0..64u8 {
                block[0] = round;
                block[7] = round.wrapping_mul(13);
                assert_eq!(
                    ni.encrypt_block(&block),
                    aes.encrypt_block_copy(&block),
                    "key_len={key_len} round={round}"
                );
                block = ni.encrypt_block(&block);
            }
        }
    }

    /// The wide/tail/partial CTR decomposition is byte-identical to a
    /// block-at-a-time walk for every length around the 8-block group boundary.
    #[test]
    fn ctr_xor_handles_every_tail_shape() {
        let Some((aes, ni)) = engine(&[0x42u8; 16]) else {
            eprintln!("skipping: no AES-NI on this host");
            return;
        };
        let counter = {
            let mut c = [9u8; BLOCK_SIZE];
            c[15] = 0xfe; // exercises inc32 carries mid-buffer
            c
        };
        let src: Vec<u8> = (0..4096u32)
            .map(|i| (i.wrapping_mul(31) >> 3) as u8)
            .collect();
        for len in (0..=300).chain([1024 - 1, 1024, 1024 + 17]) {
            let mut out = vec![0u8; len];
            ni.ctr_xor(counter, &src[..len], &mut out);
            // Oracle: scalar single-block CTR.
            let mut expected = vec![0u8; len];
            let mut c = counter;
            for (s, d) in src[..len]
                .chunks(BLOCK_SIZE)
                .zip(expected.chunks_mut(BLOCK_SIZE))
            {
                let ks = aes.encrypt_block_copy(&c);
                for (i, (sb, db)) in s.iter().zip(d.iter_mut()).enumerate() {
                    *db = sb ^ ks[i];
                }
                c = counter_add(c, 1);
            }
            assert_eq!(out, expected, "len={len}");
        }
    }

    #[test]
    fn debug_does_not_leak_round_keys() {
        let Some((_, ni)) = engine(&[0xABu8; 16]) else {
            return;
        };
        let dbg = format!("{ni:?}");
        assert!(dbg.contains("rounds") && dbg.len() < 60, "{dbg}");
    }
}
