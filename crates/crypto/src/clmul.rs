//! Carry-less-multiply GHASH: GF(2^128) multiplication on `PCLMULQDQ` with
//! Karatsuba products and a two-phase polynomial reduction, aggregated four
//! blocks at a time exactly like the scalar Shoup engine.
//!
//! This is one of the two modules in the crate allowed to contain `unsafe` code
//! (the other is [`crate::aesarch`]); everything else stays `#![deny(unsafe_code)]`.
//!
//! # Safety contract
//!
//! * [`ClmulGhash::try_new`] returns `Some` only after
//!   [`crate::dispatch::hw_available`] has *runtime-verified* that the CPU
//!   reports the `pclmulqdq` feature. Every `unsafe` block calls a
//!   `#[target_feature(enable = "pclmulqdq")]` function through a safe wrapper
//!   on `self`, so the instructions are provably supported whenever they run.
//! * The kernels only read from slices through bounds-checked subslices and
//!   write nothing but the caller's `u128` accumulator.
//!
//! # Representation and algorithm
//!
//! Field elements use the same *reflected* convention as the scalar engine: a
//! block's big-endian `u128` value holds the coefficient of `x^i` at bit
//! `127 - i`. For two such values, the raw 255-bit carry-less product (four
//! `PCLMULQDQ` halves, computed here as a 3-multiply Karatsuba) is the
//! *bit-reversed* polynomial product, so shifting the 256-bit result left by one
//! recovers the product in the reflected convention: the high 128 bits are the
//! low-degree half `c_0..c_127` and the low 128 bits the high-degree half
//! `c_128..c_254`. The high half is folded back with `x^128 ≡ x^7+x^2+x+1
//! (mod p)` — two more carry-less multiplies by the reflected reduction
//! polynomial `R = 0xe1 << 120` (degree ≤ 133 after the first fold, < 128 after
//! the second), mirroring the classic two-phase PCLMUL reduction.
//!
//! Four-block aggregation uses the same identity as the Shoup tables
//! (`(Y⊕C0)·H⁴ ⊕ C1·H³ ⊕ C2·H² ⊕ C3·H`): the four raw 256-bit products are
//! XOR-accumulated and reduced **once**, so a 64-byte group costs 12 Karatsuba
//! multiplies plus a single 4-multiply reduction.
#![allow(unsafe_code)]

use core::arch::x86_64::{
    __m128i, _mm_clmulepi64_si128, _mm_or_si128, _mm_set_epi64x, _mm_setzero_si128, _mm_slli_epi64,
    _mm_slli_si128, _mm_srli_epi64, _mm_srli_si128, _mm_storeu_si128, _mm_xor_si128,
};

use crate::aes::BLOCK_SIZE;
use crate::dispatch::hw_available;

/// The PCLMUL GHASH engine: the hash subkey powers `H^1..H^4` in the reflected
/// representation, precomputed at key-schedule time (same aggregation depth as
/// the scalar engine's four Shoup tables, 64 bytes instead of 16 KiB).
#[derive(Clone, Copy)]
pub(crate) struct ClmulGhash {
    /// `h_powers[i]` holds `H^(i+1)`.
    h_powers: [u128; 4],
}

impl ClmulGhash {
    /// Builds the hardware GHASH for the given subkey powers, or `None` when the
    /// CPU does not support it. This is the *only* constructor, which is what
    /// makes the safe wrappers below sound.
    pub(crate) fn try_new(h_powers: [u128; 4]) -> Option<Self> {
        if !hw_available() {
            return None;
        }
        Some(ClmulGhash { h_powers })
    }

    /// One GHASH block step: `y = (y ^ block) · H`. Bit-identical to the scalar
    /// and bit-serial kernels.
    pub(crate) fn ghash_block(&self, y: &mut u128, block: &[u8; BLOCK_SIZE]) {
        // SAFETY: `try_new` only constructs `ClmulGhash` after runtime detection
        // of the `pclmulqdq` feature.
        unsafe { self.ghash_block_impl(y, block) }
    }

    /// Absorbs arbitrary-length data with zero-padding of the final partial
    /// block, 4-block aggregated. Bit-identical to the scalar `ghash_padded`.
    pub(crate) fn ghash_padded(&self, y: &mut u128, data: &[u8]) {
        // SAFETY: as in `ghash_block`, construction proved feature support.
        unsafe { self.ghash_padded_impl(y, data) }
    }

    /// # Safety
    ///
    /// The CPU must support `pclmulqdq` ([`ClmulGhash::try_new`] proves it).
    #[target_feature(enable = "pclmulqdq")]
    unsafe fn ghash_block_impl(&self, y: &mut u128, block: &[u8; BLOCK_SIZE]) {
        let x = load(*y ^ u128::from_be_bytes(*block));
        let h = load(self.h_powers[0]);
        let mut lo = _mm_setzero_si128();
        let mut hi = _mm_setzero_si128();
        karatsuba_acc(x, h, &mut lo, &mut hi);
        *y = store(reduce(lo, hi));
    }

    /// # Safety
    ///
    /// The CPU must support `pclmulqdq` ([`ClmulGhash::try_new`] proves it).
    #[target_feature(enable = "pclmulqdq")]
    unsafe fn ghash_padded_impl(&self, y: &mut u128, data: &[u8]) {
        let h1 = load(self.h_powers[0]);
        let h2 = load(self.h_powers[1]);
        let h3 = load(self.h_powers[2]);
        let h4 = load(self.h_powers[3]);
        let mut quads = data.chunks_exact(4 * BLOCK_SIZE);
        for quad in &mut quads {
            let b0 = load(u128::from_be_bytes(quad[0..16].try_into().expect("16 bytes")) ^ *y);
            let b1 = load(u128::from_be_bytes(
                quad[16..32].try_into().expect("16 bytes"),
            ));
            let b2 = load(u128::from_be_bytes(
                quad[32..48].try_into().expect("16 bytes"),
            ));
            let b3 = load(u128::from_be_bytes(
                quad[48..64].try_into().expect("16 bytes"),
            ));
            let mut lo = _mm_setzero_si128();
            let mut hi = _mm_setzero_si128();
            karatsuba_acc(b0, h4, &mut lo, &mut hi);
            karatsuba_acc(b1, h3, &mut lo, &mut hi);
            karatsuba_acc(b2, h2, &mut lo, &mut hi);
            karatsuba_acc(b3, h1, &mut lo, &mut hi);
            *y = store(reduce(lo, hi));
        }
        let mut blocks = quads.remainder().chunks_exact(BLOCK_SIZE);
        for chunk in &mut blocks {
            self.ghash_block_impl(y, &chunk.try_into().expect("16 bytes"));
        }
        let rem = blocks.remainder();
        if !rem.is_empty() {
            let mut block = [0u8; BLOCK_SIZE];
            block[..rem.len()].copy_from_slice(rem);
            self.ghash_block_impl(y, &block);
        }
    }
}

impl std::fmt::Debug for ClmulGhash {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print the subkey powers (H is sufficient for tag forgery).
        f.debug_struct("ClmulGhash").finish_non_exhaustive()
    }
}

/// Loads a `u128` into a register (low 64 bits in the low lane, i.e. the
/// register *is* the integer).
#[inline]
#[target_feature(enable = "pclmulqdq")]
unsafe fn load(x: u128) -> __m128i {
    _mm_set_epi64x((x >> 64) as i64, x as i64)
}

/// Inverse of [`load`].
#[inline]
#[target_feature(enable = "pclmulqdq")]
unsafe fn store(v: __m128i) -> u128 {
    let mut bytes = [0u8; BLOCK_SIZE];
    _mm_storeu_si128(bytes.as_mut_ptr().cast(), v);
    u128::from_le_bytes(bytes)
}

/// 128-bit logical shift left by one across the lane boundary.
#[inline]
#[target_feature(enable = "pclmulqdq")]
unsafe fn shl1(v: __m128i) -> __m128i {
    _mm_or_si128(
        _mm_slli_epi64(v, 1),
        _mm_slli_si128(_mm_srli_epi64(v, 63), 8),
    )
}

/// The most significant bit of `v` moved to bit 0 (`v >> 127`).
#[inline]
#[target_feature(enable = "pclmulqdq")]
unsafe fn msb(v: __m128i) -> __m128i {
    _mm_srli_si128(_mm_srli_epi64(v, 63), 8)
}

/// XOR-accumulates the raw 255-bit carry-less product `a ⊗ b` into the 256-bit
/// accumulator `(acc_hi, acc_lo)`, using the 3-multiply Karatsuba decomposition
/// `(a_hi·b_hi)·2^128 ⊕ ((a_hi⊕a_lo)·(b_hi⊕b_lo) ⊕ a_hi·b_hi ⊕ a_lo·b_lo)·2^64
/// ⊕ a_lo·b_lo`.
#[inline]
#[target_feature(enable = "pclmulqdq")]
unsafe fn karatsuba_acc(a: __m128i, b: __m128i, acc_lo: &mut __m128i, acc_hi: &mut __m128i) {
    let lo = _mm_clmulepi64_si128(a, b, 0x00);
    let hi = _mm_clmulepi64_si128(a, b, 0x11);
    let a_fold = _mm_xor_si128(a, _mm_srli_si128(a, 8));
    let b_fold = _mm_xor_si128(b, _mm_srli_si128(b, 8));
    let mid = _mm_xor_si128(
        _mm_xor_si128(_mm_clmulepi64_si128(a_fold, b_fold, 0x00), lo),
        hi,
    );
    *acc_lo = _mm_xor_si128(*acc_lo, _mm_xor_si128(lo, _mm_slli_si128(mid, 8)));
    *acc_hi = _mm_xor_si128(*acc_hi, _mm_xor_si128(hi, _mm_srli_si128(mid, 8)));
}

/// The reflected reduction polynomial `x^7 + x^2 + x + 1` (the fold image of
/// `x^128`), i.e. the scalar engine's `R = 0xe1 << 120`: only the high qword is
/// nonzero, so each fold costs two `PCLMULQDQ`s against it.
#[inline]
#[target_feature(enable = "pclmulqdq")]
unsafe fn poly_r() -> __m128i {
    _mm_set_epi64x(0xe100_0000_0000_0000u64 as i64, 0)
}

/// Reduces the accumulated raw 256-bit product to a 128-bit field element.
///
/// Shifting `(hi:lo)` left by one turns the raw product into the reflected
/// representation: `L` (the new high half) holds degrees 0..127 and `Hg` (the
/// new low half) degrees 128..254 as an element. `Hg` is folded back twice via
/// `x^128 ≡ x^7+x^2+x+1`, each fold a raw carry-less multiply by [`poly_r`]
/// followed by the same shift-and-split.
#[inline]
#[target_feature(enable = "pclmulqdq")]
unsafe fn reduce(lo: __m128i, hi: __m128i) -> __m128i {
    let r = poly_r();
    let l = _mm_or_si128(shl1(hi), msb(lo));
    let mut hg = shl1(lo);
    let mut acc = l;
    // Two fold phases: degree ≤ 126 → ≤ 133-128 = 5 → ≤ 12-128 < 0 (done).
    for _ in 0..2 {
        let t_mid = _mm_clmulepi64_si128(hg, r, 0x10);
        let t_hi = _mm_clmulepi64_si128(hg, r, 0x11);
        let p_lo = _mm_slli_si128(t_mid, 8);
        let p_hi = _mm_xor_si128(t_hi, _mm_srli_si128(t_mid, 8));
        acc = _mm_xor_si128(acc, _mm_or_si128(shl1(p_hi), msb(p_lo)));
        hg = shl1(p_lo);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gcm::gf_mult;

    /// Multiplies two elements through the full Karatsuba + reduction pipeline.
    fn hw_mul(g: &ClmulGhash, x: u128) -> u128 {
        let mut y = 0u128;
        g.ghash_block(&mut y, &x.to_be_bytes());
        y
    }

    /// The PCLMUL multiply agrees with the bit-serial reference on structured and
    /// pseudo-random operand pairs, including the boundary elements.
    #[test]
    fn clmul_matches_bit_serial_reference() {
        let mut x: u128 = 0x0123_4567_89ab_cdef_0011_2233_4455_6677;
        let mut h: u128 = 0xdead_beef_cafe_f00d_1234_5678_9abc_def0;
        for round in 0..128 {
            let Some(g) = ClmulGhash::try_new([h, 0, 0, 0]) else {
                eprintln!("skipping: no PCLMULQDQ on this host");
                return;
            };
            assert_eq!(
                hw_mul(&g, x),
                gf_mult(x, h),
                "round={round} x={x:x} h={h:x}"
            );
            assert_eq!(hw_mul(&g, 0), 0, "round={round}");
            assert_eq!(hw_mul(&g, 1), gf_mult(1, h), "round={round}");
            assert_eq!(hw_mul(&g, 1 << 127), gf_mult(1 << 127, h), "round={round}");
            assert_eq!(
                hw_mul(&g, u128::MAX),
                gf_mult(u128::MAX, h),
                "round={round}"
            );
            x = x.rotate_left(13) ^ h;
            h = h.rotate_right(5).wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        }
    }

    /// 4-block aggregated absorption is bit-identical to the serial chain for
    /// every length around the 64-byte group boundary.
    #[test]
    fn aggregated_ghash_matches_the_serial_chain() {
        let h: u128 = 0x66e9_4bd4_ef8a_2c3b_884c_fa59_ca34_2b2e;
        let mut powers = [h; 4];
        for i in 1..4 {
            powers[i] = gf_mult(powers[i - 1], h);
        }
        let Some(g) = ClmulGhash::try_new(powers) else {
            eprintln!("skipping: no PCLMULQDQ on this host");
            return;
        };
        let data: Vec<u8> = (0..400u32)
            .map(|i| (i.wrapping_mul(97) >> 2) as u8)
            .collect();
        for len in (0..=160).chain([255, 256, 257, 319, 320, 321, 400]) {
            let mut fast = 0x1111_2222_3333_4444_5555_6666_7777_8888u128;
            let mut slow = fast;
            g.ghash_padded(&mut fast, &data[..len]);
            // Oracle: bit-serial block-by-block absorption with zero padding.
            for chunk in data[..len].chunks(BLOCK_SIZE) {
                let mut block = [0u8; BLOCK_SIZE];
                block[..chunk.len()].copy_from_slice(chunk);
                slow = gf_mult(slow ^ u128::from_be_bytes(block), h);
            }
            assert_eq!(fast, slow, "len={len}");
        }
    }

    #[test]
    fn debug_does_not_leak_subkey_powers() {
        let Some(g) = ClmulGhash::try_new([0xdead_beef, 1, 2, 3]) else {
            return;
        };
        let dbg = format!("{g:?}");
        assert!(dbg.contains("ClmulGhash") && dbg.len() < 40, "{dbg}");
    }
}
