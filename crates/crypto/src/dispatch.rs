//! Runtime selection of the AES-GCM engine.
//!
//! Three byte-for-byte identical implementations back [`crate::AesGcm`]:
//!
//! * **hardware** ([`EngineKind::Hw`]) — AES-NI CTR + PCLMUL GHASH, available on
//!   `x86_64` hosts whose CPU reports the `aes` and `pclmulqdq` features at runtime;
//! * **scalar** ([`EngineKind::Scalar`]) — the T-table AES + byte-indexed Shoup GHASH
//!   engine, compiled and tested everywhere;
//! * **reference** ([`EngineKind::Reference`]) — the byte-wise AES + bit-serial GHASH
//!   kernels, the easy-to-audit ground truth for differential testing.
//!
//! The policy defaults to [`EnginePolicy::Auto`] (hardware when detected, scalar
//! otherwise) and can be overridden with the `PLINIUS_CRYPTO` environment variable —
//! the same knob shape as `PLINIUS_RING`/`PLINIUS_THREADS`. An unset or unparsable
//! value falls back to `auto`; strict validation (exit 2) lives in the bench CLI,
//! which writes this variable from its `--crypto` flag.

use std::fmt;

/// Environment variable overriding the crypto-engine policy
/// (`auto` | `scalar` | `reference`).
pub const CRYPTO_ENV: &str = "PLINIUS_CRYPTO";

/// Which engine the caller *requests*. Resolved to an [`EngineKind`] at
/// [`crate::AesGcm`] construction via [`EnginePolicy::select`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EnginePolicy {
    /// Hardware kernels when the CPU supports them, scalar otherwise (the default).
    #[default]
    Auto,
    /// Force the scalar T-table/Shoup engine even on AES-NI-capable hosts.
    Scalar,
    /// Force the bit-serial reference kernels (orders of magnitude slower; for
    /// differential testing and auditing only).
    Reference,
}

impl EnginePolicy {
    /// The accepted spellings, in the order shown by help text.
    pub const NAMES: [&'static str; 3] = ["auto", "scalar", "reference"];

    /// Parses a policy name as used by `PLINIUS_CRYPTO` and `--crypto`.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "auto" => Some(EnginePolicy::Auto),
            "scalar" => Some(EnginePolicy::Scalar),
            "reference" => Some(EnginePolicy::Reference),
            _ => None,
        }
    }

    /// The canonical name of this policy.
    pub fn as_str(self) -> &'static str {
        match self {
            EnginePolicy::Auto => "auto",
            EnginePolicy::Scalar => "scalar",
            EnginePolicy::Reference => "reference",
        }
    }

    /// Reads the policy from `PLINIUS_CRYPTO`. Unset, empty or unparsable values
    /// fall back to [`EnginePolicy::Auto`] (the lenient env-knob contract shared
    /// with `PLINIUS_RING`; the bench CLI validates strictly before setting it).
    pub fn from_env() -> Self {
        std::env::var(CRYPTO_ENV)
            .ok()
            .and_then(|v| Self::parse(&v))
            .unwrap_or_default()
    }

    /// Resolves the policy against the running CPU.
    pub fn select(self) -> EngineKind {
        match self {
            EnginePolicy::Auto => {
                if hw_available() {
                    EngineKind::Hw
                } else {
                    EngineKind::Scalar
                }
            }
            EnginePolicy::Scalar => EngineKind::Scalar,
            EnginePolicy::Reference => EngineKind::Reference,
        }
    }
}

impl fmt::Display for EnginePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Which concrete engine an [`crate::AesGcm`] ended up with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// AES-NI block engine + carry-less-multiply GHASH.
    Hw,
    /// T-table AES + byte-indexed Shoup GHASH.
    Scalar,
    /// Byte-wise AES + bit-serial GHASH.
    Reference,
}

impl EngineKind {
    /// Short label used in stats, bench output and reports.
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Hw => "aesni+pclmul",
            EngineKind::Scalar => "scalar",
            EngineKind::Reference => "reference",
        }
    }
}

impl fmt::Display for EngineKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Whether the hardware kernels can run on this host: an `x86_64` CPU reporting
/// the `aes` and `pclmulqdq` features (SSE2 is implied by `x86_64`).
pub fn hw_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("aes")
            && std::arch::is_x86_feature_detected!("pclmulqdq")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// The engine a default-constructed [`crate::AesGcm`] would select right now
/// (environment policy resolved against the running CPU).
pub fn selected_engine() -> EngineKind {
    EnginePolicy::from_env().select()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Serializes the tests that mutate `PLINIUS_CRYPTO` (the variable is
    /// process-global; every other test in this crate pins engines explicitly
    /// through `with_policy`, so only these tests race on it).
    static ENV_LOCK: Mutex<()> = Mutex::new(());

    struct EnvGuard(Option<String>);

    impl EnvGuard {
        fn set(value: &str) -> Self {
            let prev = std::env::var(CRYPTO_ENV).ok();
            std::env::set_var(CRYPTO_ENV, value);
            EnvGuard(prev)
        }
    }

    impl Drop for EnvGuard {
        fn drop(&mut self) {
            match &self.0 {
                Some(v) => std::env::set_var(CRYPTO_ENV, v),
                None => std::env::remove_var(CRYPTO_ENV),
            }
        }
    }

    #[test]
    fn parse_accepts_exactly_the_three_policies() {
        assert_eq!(EnginePolicy::parse("auto"), Some(EnginePolicy::Auto));
        assert_eq!(EnginePolicy::parse("scalar"), Some(EnginePolicy::Scalar));
        assert_eq!(
            EnginePolicy::parse("reference"),
            Some(EnginePolicy::Reference)
        );
        for bad in ["", "AUTO", "hw", "aesni", "fast", " scalar"] {
            assert_eq!(EnginePolicy::parse(bad), None, "{bad:?} must not parse");
        }
        for name in EnginePolicy::NAMES {
            assert_eq!(EnginePolicy::parse(name).unwrap().as_str(), name);
        }
    }

    #[test]
    fn explicit_policies_ignore_hardware_detection() {
        assert_eq!(EnginePolicy::Scalar.select(), EngineKind::Scalar);
        assert_eq!(EnginePolicy::Reference.select(), EngineKind::Reference);
        let auto = EnginePolicy::Auto.select();
        if hw_available() {
            assert_eq!(auto, EngineKind::Hw);
        } else {
            assert_eq!(auto, EngineKind::Scalar);
        }
    }

    /// The satellite contract: `PLINIUS_CRYPTO=scalar` forces the scalar engine on a
    /// context built through the default constructor, even when the CPU reports
    /// hardware support.
    #[test]
    fn env_scalar_forces_the_scalar_engine_even_when_hw_is_detected() {
        let _lock = ENV_LOCK.lock().unwrap();
        let _guard = EnvGuard::set("scalar");
        assert_eq!(EnginePolicy::from_env(), EnginePolicy::Scalar);
        assert_eq!(selected_engine(), EngineKind::Scalar);
        let gcm = crate::AesGcm::from_key(&[0x42u8; 16]);
        assert_eq!(gcm.engine_kind(), EngineKind::Scalar);
        // The override is about *selection*, not behavior: output is unchanged.
        let hw_or_auto =
            crate::AesGcm::with_policy(crate::Aes::new(&[0x42u8; 16]), EnginePolicy::Auto);
        assert_eq!(
            gcm.encrypt(&[1u8; 12], b"aad", b"payload").unwrap(),
            hw_or_auto.encrypt(&[1u8; 12], b"aad", b"payload").unwrap()
        );
    }

    #[test]
    fn env_reference_and_garbage_behave_as_documented() {
        let _lock = ENV_LOCK.lock().unwrap();
        {
            let _guard = EnvGuard::set("reference");
            assert_eq!(EnginePolicy::from_env(), EnginePolicy::Reference);
            let gcm = crate::AesGcm::from_key(&[7u8; 16]);
            assert_eq!(gcm.engine_kind(), EngineKind::Reference);
        }
        {
            // Lenient env contract: garbage falls back to auto instead of erroring
            // (strict validation happens in the bench CLI before the env is set).
            let _guard = EnvGuard::set("not-an-engine");
            assert_eq!(EnginePolicy::from_env(), EnginePolicy::Auto);
        }
    }
}
