//! Galois/Counter Mode (GCM) on top of the AES block cipher, following
//! NIST SP 800-38D — the same AEAD used by the Intel SGX SDK routines that
//! Plinius' encryption engine relies on.

use crate::aes::{Aes, BLOCK_SIZE};
use crate::CryptoError;

/// Length of the GCM initialization vector used by Plinius (96 bits).
pub const IV_LEN: usize = 12;
/// Length of the authentication tag (128 bits).
pub const TAG_LEN: usize = 16;

/// AES-GCM authenticated encryption context.
#[derive(Debug, Clone)]
pub struct AesGcm {
    cipher: Aes,
    /// The hash subkey H = AES_K(0^128), interpreted as a big-endian integer.
    h: u128,
}

impl AesGcm {
    /// Creates a GCM context from an already-expanded AES cipher.
    pub fn new(cipher: Aes) -> Self {
        let h_block = cipher.encrypt_block_copy(&[0u8; BLOCK_SIZE]);
        let h = u128::from_be_bytes(h_block);
        AesGcm { cipher, h }
    }

    /// Creates a GCM context directly from key bytes (16, 24 or 32 bytes).
    pub fn from_key(key: &[u8]) -> Self {
        Self::new(Aes::new(key))
    }

    /// Encrypts `plaintext` with the given 12-byte IV and additional authenticated
    /// data, returning `(ciphertext, tag)`.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidIvLength`] if the IV is not 12 bytes.
    pub fn encrypt(
        &self,
        iv: &[u8],
        aad: &[u8],
        plaintext: &[u8],
    ) -> Result<(Vec<u8>, [u8; TAG_LEN]), CryptoError> {
        let j0 = self.j0(iv)?;
        let ciphertext = self.ctr(inc32(j0), plaintext);
        let tag = self.compute_tag(j0, aad, &ciphertext);
        Ok((ciphertext, tag))
    }

    /// Decrypts `ciphertext` and verifies its tag.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidIvLength`] for a malformed IV and
    /// [`CryptoError::AuthenticationFailed`] if the tag does not verify (in which
    /// case no plaintext is released).
    pub fn decrypt(
        &self,
        iv: &[u8],
        aad: &[u8],
        ciphertext: &[u8],
        tag: &[u8],
    ) -> Result<Vec<u8>, CryptoError> {
        let j0 = self.j0(iv)?;
        let expected = self.compute_tag(j0, aad, ciphertext);
        if tag.len() != TAG_LEN || !constant_time_eq(&expected, tag) {
            return Err(CryptoError::AuthenticationFailed);
        }
        Ok(self.ctr(inc32(j0), ciphertext))
    }

    /// Derives the pre-counter block J0 from the IV.
    fn j0(&self, iv: &[u8]) -> Result<[u8; BLOCK_SIZE], CryptoError> {
        if iv.len() == IV_LEN {
            let mut j0 = [0u8; BLOCK_SIZE];
            j0[..IV_LEN].copy_from_slice(iv);
            j0[15] = 1;
            Ok(j0)
        } else if iv.is_empty() {
            Err(CryptoError::InvalidIvLength(0))
        } else {
            // GHASH-based derivation for non-96-bit IVs (rarely used by Plinius but
            // included for SP 800-38D completeness).
            let mut ghash = Ghash::new(self.h);
            ghash.update_padded(iv);
            let mut len_block = [0u8; BLOCK_SIZE];
            len_block[8..].copy_from_slice(&((iv.len() as u64) * 8).to_be_bytes());
            ghash.update_block(&len_block);
            Ok(ghash.finalize().to_be_bytes())
        }
    }

    /// CTR keystream application starting from the given counter block.
    fn ctr(&self, mut counter: [u8; BLOCK_SIZE], data: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(data.len());
        for chunk in data.chunks(BLOCK_SIZE) {
            let keystream = self.cipher.encrypt_block_copy(&counter);
            for (d, k) in chunk.iter().zip(keystream.iter()) {
                out.push(d ^ k);
            }
            counter = inc32(counter);
        }
        out
    }

    /// GHASH over AAD and ciphertext, encrypted with J0 to form the tag.
    fn compute_tag(&self, j0: [u8; BLOCK_SIZE], aad: &[u8], ciphertext: &[u8]) -> [u8; TAG_LEN] {
        let mut ghash = Ghash::new(self.h);
        ghash.update_padded(aad);
        ghash.update_padded(ciphertext);
        let mut len_block = [0u8; BLOCK_SIZE];
        len_block[..8].copy_from_slice(&((aad.len() as u64) * 8).to_be_bytes());
        len_block[8..].copy_from_slice(&((ciphertext.len() as u64) * 8).to_be_bytes());
        ghash.update_block(&len_block);
        let s = ghash.finalize().to_be_bytes();
        let e_j0 = self.cipher.encrypt_block_copy(&j0);
        let mut tag = [0u8; TAG_LEN];
        for i in 0..TAG_LEN {
            tag[i] = s[i] ^ e_j0[i];
        }
        tag
    }
}

/// Increments the last 32 bits of a counter block (the `inc32` function of SP 800-38D).
fn inc32(mut block: [u8; BLOCK_SIZE]) -> [u8; BLOCK_SIZE] {
    let mut ctr = u32::from_be_bytes([block[12], block[13], block[14], block[15]]);
    ctr = ctr.wrapping_add(1);
    block[12..].copy_from_slice(&ctr.to_be_bytes());
    block
}

/// Constant-time comparison of two equally sized byte strings.
fn constant_time_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}

/// Incremental GHASH state.
struct Ghash {
    h: u128,
    y: u128,
}

impl Ghash {
    fn new(h: u128) -> Self {
        Ghash { h, y: 0 }
    }

    /// Absorbs one full 16-byte block.
    fn update_block(&mut self, block: &[u8; BLOCK_SIZE]) {
        self.y = gf_mult(self.y ^ u128::from_be_bytes(*block), self.h);
    }

    /// Absorbs arbitrary-length data, zero-padding the final partial block.
    fn update_padded(&mut self, data: &[u8]) {
        for chunk in data.chunks(BLOCK_SIZE) {
            let mut block = [0u8; BLOCK_SIZE];
            block[..chunk.len()].copy_from_slice(chunk);
            self.update_block(&block);
        }
    }

    fn finalize(self) -> u128 {
        self.y
    }
}

/// Multiplication in GF(2^128) with the GCM polynomial, operating on the
/// big-endian "reflected" representation used by SP 800-38D.
fn gf_mult(x: u128, y: u128) -> u128 {
    const R: u128 = 0xe1 << 120;
    let mut z = 0u128;
    let mut v = x;
    for i in 0..128 {
        if (y >> (127 - i)) & 1 == 1 {
            z ^= v;
        }
        if v & 1 == 0 {
            v >>= 1;
        } else {
            v = (v >> 1) ^ R;
        }
    }
    z
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    /// NIST GCM test case 1: empty plaintext, all-zero key and IV.
    #[test]
    fn nist_test_case_1() {
        let gcm = AesGcm::from_key(&[0u8; 16]);
        let (ct, tag) = gcm.encrypt(&[0u8; 12], &[], &[]).unwrap();
        assert!(ct.is_empty());
        assert_eq!(tag.to_vec(), hex("58e2fccefa7e3061367f1d57a4e7455a"));
    }

    /// NIST GCM test case 2: one zero block of plaintext.
    #[test]
    fn nist_test_case_2() {
        let gcm = AesGcm::from_key(&[0u8; 16]);
        let (ct, tag) = gcm.encrypt(&[0u8; 12], &[], &[0u8; 16]).unwrap();
        assert_eq!(ct, hex("0388dace60b6a392f328c2b971b2fe78"));
        assert_eq!(tag.to_vec(), hex("ab6e47d42cec13bdf53a67b21257bddf"));
    }

    /// NIST GCM test case 3: four blocks of plaintext, no AAD.
    #[test]
    fn nist_test_case_3() {
        let key = hex("feffe9928665731c6d6a8f9467308308");
        let iv = hex("cafebabefacedbaddecaf888");
        let pt = hex(
            "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72\
             1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b391aafd255",
        );
        let gcm = AesGcm::from_key(&key);
        let (ct, tag) = gcm.encrypt(&iv, &[], &pt).unwrap();
        assert_eq!(
            ct,
            hex(
                "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e\
                 21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091473f5985"
            )
        );
        assert_eq!(tag.to_vec(), hex("4d5c2af327cd64a62cf35abd2ba6fab4"));
    }

    /// NIST GCM test case 4: same as case 3 but with truncated plaintext and AAD.
    #[test]
    fn nist_test_case_4_with_aad() {
        let key = hex("feffe9928665731c6d6a8f9467308308");
        let iv = hex("cafebabefacedbaddecaf888");
        let pt = hex(
            "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72\
             1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39",
        );
        let aad = hex("feedfacedeadbeeffeedfacedeadbeefabaddad2");
        let gcm = AesGcm::from_key(&key);
        let (ct, tag) = gcm.encrypt(&iv, &aad, &pt).unwrap();
        assert_eq!(
            ct,
            hex(
                "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e\
                 21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091"
            )
        );
        assert_eq!(tag.to_vec(), hex("5bc94fbc3221a5db94fae95ae7121a47"));
    }

    #[test]
    fn round_trip_and_tamper_detection() {
        let gcm = AesGcm::from_key(&[9u8; 16]);
        let iv = [3u8; 12];
        let aad = b"layer-0-weights";
        let pt = b"confidential model parameters".to_vec();
        let (mut ct, tag) = gcm.encrypt(&iv, aad, &pt).unwrap();
        assert_eq!(gcm.decrypt(&iv, aad, &ct, &tag).unwrap(), pt);
        // Flip one ciphertext bit: decryption must fail and release nothing.
        ct[0] ^= 1;
        assert_eq!(
            gcm.decrypt(&iv, aad, &ct, &tag).unwrap_err(),
            CryptoError::AuthenticationFailed
        );
        ct[0] ^= 1;
        // Wrong AAD also fails.
        assert!(gcm.decrypt(&iv, b"other", &ct, &tag).is_err());
    }

    #[test]
    fn non_96_bit_iv_uses_ghash_derivation() {
        let gcm = AesGcm::from_key(&[1u8; 16]);
        let iv = [7u8; 16]; // 128-bit IV takes the GHASH path.
        let (ct, tag) = gcm.encrypt(&iv, &[], b"hello").unwrap();
        assert_eq!(gcm.decrypt(&iv, &[], &ct, &tag).unwrap(), b"hello");
    }

    #[test]
    fn empty_iv_is_rejected() {
        let gcm = AesGcm::from_key(&[1u8; 16]);
        assert_eq!(
            gcm.encrypt(&[], &[], b"x").unwrap_err(),
            CryptoError::InvalidIvLength(0)
        );
    }

    #[test]
    fn inc32_wraps_only_low_word() {
        let mut block = [0xFFu8; 16];
        block = inc32(block);
        assert_eq!(&block[..12], &[0xFF; 12]);
        assert_eq!(&block[12..], &[0, 0, 0, 0]);
    }

    #[test]
    fn constant_time_eq_basic() {
        assert!(constant_time_eq(b"abc", b"abc"));
        assert!(!constant_time_eq(b"abc", b"abd"));
        assert!(!constant_time_eq(b"abc", b"ab"));
    }
}
