//! Galois/Counter Mode (GCM) on top of the AES block cipher, following
//! NIST SP 800-38D — the same AEAD used by the Intel SGX SDK routines that
//! Plinius' encryption engine relies on.
//!
//! # Fast and reference kernels
//!
//! The production path is a high-throughput software implementation:
//!
//! * **CTR** — multi-block keystream generation through the T-table AES core, XORed
//!   word-wise (`u128` loads/stores) into a caller-provided output buffer; no per-byte
//!   `Vec::push`. For large buffers the keystream can additionally be computed across
//!   threads, chunked at 16-byte counter boundaries ([`AesGcm::encrypt_into_with_threads`]).
//!   Because every chunk derives its counter from its block offset, the ciphertext is
//!   **bit-identical for every thread count** by construction.
//! * **GHASH** — Shoup's 4-bit-table method: a 16-entry per-key table of `H` multiples
//!   turns the 128 bit-steps of the schoolbook multiply into 32 shift+lookup steps.
//!
//! The original kernels (byte-at-a-time CTR, bit-serial `gf_mult`) are retained behind
//! [`AesGcm::encrypt_reference`]; property tests pin the fast path to them byte-for-byte
//! and the release-mode sanity test asserts the speedup.

#[cfg(target_arch = "x86_64")]
use crate::aesarch::AesNi;
#[cfg(target_arch = "x86_64")]
use crate::clmul::ClmulGhash;

use crate::aes::{Aes, BLOCK_SIZE};
use crate::dispatch::{EngineKind, EnginePolicy};
use crate::CryptoError;

/// Length of the GCM initialization vector used by Plinius (96 bits).
pub const IV_LEN: usize = 12;
/// Length of the authentication tag (128 bits).
pub const TAG_LEN: usize = 16;

/// Chunk size in bytes for intra-buffer CTR parallelism. A multiple of the AES block
/// size, so every chunk starts on a counter boundary.
const CTR_PAR_CHUNK: usize = 64 * 1024;

/// Buffers smaller than this stay on the serial CTR path even when threads are offered
/// (fork/join overhead would dominate).
const CTR_PAR_MIN: usize = 2 * CTR_PAR_CHUNK;

/// The concrete kernel set a context dispatches to, fixed at construction.
///
/// The hardware variant carries the AES-NI schedule and the PCLMUL subkey powers;
/// it only exists on `x86_64` and is only ever constructed after runtime feature
/// detection (see [`crate::aesarch`]/[`crate::clmul`] for the safety contract).
// The size gap between `Hw` (expanded key schedule + GHASH subkey powers, ~320 B)
// and the table-less variants is intentional: one `Engine` lives inline in each
// long-lived `AesGcm` (itself dominated by the scalar Shoup table), so boxing the
// hardware state would buy nothing but a pointer chase on every sealed block.
#[allow(clippy::large_enum_variant)]
#[derive(Clone)]
enum Engine {
    #[cfg(target_arch = "x86_64")]
    Hw {
        aes: AesNi,
        ghash: ClmulGhash,
    },
    Scalar,
    Reference,
}

impl Engine {
    fn kind(&self) -> EngineKind {
        match self {
            #[cfg(target_arch = "x86_64")]
            Engine::Hw { .. } => EngineKind::Hw,
            Engine::Scalar => EngineKind::Scalar,
            Engine::Reference => EngineKind::Reference,
        }
    }
}

/// AES-GCM authenticated encryption context.
#[derive(Clone)]
pub struct AesGcm {
    cipher: Aes,
    /// The hash subkey H = AES_K(0^128), interpreted as a big-endian integer.
    h: u128,
    /// Byte-indexed GHASH tables for H^1..H^4, each expanded from a 16-entry Shoup
    /// table at key-schedule time: `h_tables[p][b]` is `H^(p+1)` multiplied by the
    /// 8-bit polynomial `b` at the x^0..x^7 coefficient positions, so one block costs
    /// 16 shift+lookup steps. The higher powers drive 4-block *aggregated* GHASH
    /// (`Y·H^4 ^ C1·H^3 ^ C2·H^2 ^ C3·H`), which replaces one long serial chain with
    /// four independent ones.
    h_tables: Box<[[u128; 256]; 4]>,
    /// Selected kernel set; all variants are byte-for-byte identical.
    engine: Engine,
}

impl std::fmt::Debug for AesGcm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print the hash subkey H (sufficient for tag forgery) or the key-derived
        // GHASH tables; the inner `Aes` already redacts its schedule.
        f.debug_struct("AesGcm")
            .field("cipher", &self.cipher)
            .field("engine", &self.engine_name())
            .finish_non_exhaustive()
    }
}

impl AesGcm {
    /// Creates a GCM context from an already-expanded AES cipher, selecting the
    /// engine from the `PLINIUS_CRYPTO` environment policy (default: hardware
    /// kernels when the CPU supports them, scalar otherwise).
    pub fn new(cipher: Aes) -> Self {
        Self::with_policy(cipher, EnginePolicy::from_env())
    }

    /// Creates a GCM context with an explicit engine policy, bypassing the
    /// environment knob. All policies produce byte-identical ciphertexts and tags.
    pub fn with_policy(cipher: Aes, policy: EnginePolicy) -> Self {
        let h_block = cipher.encrypt_block_copy(&[0u8; BLOCK_SIZE]);
        let h = u128::from_be_bytes(h_block);
        let mut h_tables = Box::new([[0u128; 256]; 4]);
        let mut h_powers = [0u128; 4];
        let mut power = h;
        for (table, slot) in h_tables.iter_mut().zip(h_powers.iter_mut()) {
            *slot = power;
            *table = *build_h_table8(&build_h_table(power));
            power = gf_mult(power, h);
        }
        let engine = Self::build_engine(policy, &cipher, h_powers);
        AesGcm {
            cipher,
            h,
            h_tables,
            engine,
        }
    }

    /// Resolves the policy into kernels, falling back to scalar if hardware
    /// construction fails despite a `Hw` selection (belt and braces: selection
    /// and construction both re-check the CPUID features).
    fn build_engine(policy: EnginePolicy, cipher: &Aes, h_powers: [u128; 4]) -> Engine {
        match policy.select() {
            EngineKind::Reference => Engine::Reference,
            EngineKind::Scalar => Engine::Scalar,
            #[cfg(target_arch = "x86_64")]
            EngineKind::Hw => match (AesNi::try_new(cipher), ClmulGhash::try_new(h_powers)) {
                (Some(aes), Some(ghash)) => Engine::Hw { aes, ghash },
                _ => Engine::Scalar,
            },
            #[cfg(not(target_arch = "x86_64"))]
            EngineKind::Hw => {
                let _ = (cipher, h_powers);
                Engine::Scalar
            }
        }
    }

    /// Creates a GCM context directly from key bytes (16, 24 or 32 bytes),
    /// selecting the engine from the `PLINIUS_CRYPTO` environment policy.
    pub fn from_key(key: &[u8]) -> Self {
        Self::new(Aes::new(key))
    }

    /// The concrete engine this context dispatches to.
    pub fn engine_kind(&self) -> EngineKind {
        self.engine.kind()
    }

    /// Short label of the selected engine (`"aesni+pclmul"`, `"scalar"` or
    /// `"reference"`), for stats and bench reports.
    pub fn engine_name(&self) -> &'static str {
        self.engine.kind().name()
    }

    /// Encrypts `plaintext` with the given 12-byte IV and additional authenticated
    /// data, returning `(ciphertext, tag)`.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidIvLength`] if the IV is empty.
    pub fn encrypt(
        &self,
        iv: &[u8],
        aad: &[u8],
        plaintext: &[u8],
    ) -> Result<(Vec<u8>, [u8; TAG_LEN]), CryptoError> {
        let mut ciphertext = vec![0u8; plaintext.len()];
        let tag = self.encrypt_into(iv, aad, plaintext, &mut ciphertext)?;
        Ok((ciphertext, tag))
    }

    /// Zero-copy encryption: writes the ciphertext into `ciphertext` (which must be
    /// exactly `plaintext.len()` bytes) and returns the tag. Performs no heap
    /// allocation.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidIvLength`] for a malformed IV and
    /// [`CryptoError::BufferLengthMismatch`] if the output buffer has the wrong size.
    pub fn encrypt_into(
        &self,
        iv: &[u8],
        aad: &[u8],
        plaintext: &[u8],
        ciphertext: &mut [u8],
    ) -> Result<[u8; TAG_LEN], CryptoError> {
        self.encrypt_into_with_threads(iv, aad, plaintext, ciphertext, 1)
    }

    /// [`AesGcm::encrypt_into`] with the CTR keystream fanned out over up to `threads`
    /// scoped threads for large buffers. Chunks are split at 16-byte counter
    /// boundaries, so the ciphertext is bit-identical for every `threads` value
    /// (GHASH, which is a serial chain, always runs on the calling thread).
    ///
    /// # Errors
    ///
    /// Same as [`AesGcm::encrypt_into`].
    pub fn encrypt_into_with_threads(
        &self,
        iv: &[u8],
        aad: &[u8],
        plaintext: &[u8],
        ciphertext: &mut [u8],
        threads: usize,
    ) -> Result<[u8; TAG_LEN], CryptoError> {
        if ciphertext.len() != plaintext.len() {
            return Err(CryptoError::BufferLengthMismatch {
                expected: plaintext.len(),
                got: ciphertext.len(),
            });
        }
        let j0 = self.j0(iv)?;
        self.ctr_xor_into_threads(inc32(j0), plaintext, ciphertext, threads);
        Ok(self.compute_tag(j0, aad, ciphertext))
    }

    /// Decrypts `ciphertext` and verifies its tag.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidIvLength`] for a malformed IV and
    /// [`CryptoError::AuthenticationFailed`] if the tag does not verify (in which
    /// case no plaintext is released).
    pub fn decrypt(
        &self,
        iv: &[u8],
        aad: &[u8],
        ciphertext: &[u8],
        tag: &[u8],
    ) -> Result<Vec<u8>, CryptoError> {
        let mut plaintext = vec![0u8; ciphertext.len()];
        self.decrypt_into(iv, aad, ciphertext, tag, &mut plaintext)?;
        Ok(plaintext)
    }

    /// Zero-copy decryption: verifies the tag first and only then decrypts into
    /// `plaintext` (which must be exactly `ciphertext.len()` bytes). Performs no heap
    /// allocation. On authentication failure the output buffer is left untouched.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidIvLength`], [`CryptoError::BufferLengthMismatch`]
    /// for a wrongly sized output buffer, or [`CryptoError::AuthenticationFailed`].
    pub fn decrypt_into(
        &self,
        iv: &[u8],
        aad: &[u8],
        ciphertext: &[u8],
        tag: &[u8],
        plaintext: &mut [u8],
    ) -> Result<(), CryptoError> {
        self.decrypt_into_with_threads(iv, aad, ciphertext, tag, plaintext, 1)
    }

    /// [`AesGcm::decrypt_into`] with chunk-parallel CTR for large buffers; the
    /// plaintext is bit-identical for every `threads` value.
    ///
    /// # Errors
    ///
    /// Same as [`AesGcm::decrypt_into`].
    pub fn decrypt_into_with_threads(
        &self,
        iv: &[u8],
        aad: &[u8],
        ciphertext: &[u8],
        tag: &[u8],
        plaintext: &mut [u8],
        threads: usize,
    ) -> Result<(), CryptoError> {
        if plaintext.len() != ciphertext.len() {
            return Err(CryptoError::BufferLengthMismatch {
                expected: ciphertext.len(),
                got: plaintext.len(),
            });
        }
        let j0 = self.j0(iv)?;
        let expected = self.compute_tag(j0, aad, ciphertext);
        if tag.len() != TAG_LEN || !constant_time_eq(&expected, tag) {
            return Err(CryptoError::AuthenticationFailed);
        }
        self.ctr_xor_into_threads(inc32(j0), ciphertext, plaintext, threads);
        Ok(())
    }

    /// Encrypts with the retained reference kernels: byte-at-a-time CTR over the
    /// byte-wise AES core and bit-serial GHASH. Used for differential testing and as
    /// the throughput baseline; production code uses [`AesGcm::encrypt`] /
    /// [`AesGcm::encrypt_into`].
    ///
    /// # Errors
    ///
    /// Same as [`AesGcm::encrypt`].
    pub fn encrypt_reference(
        &self,
        iv: &[u8],
        aad: &[u8],
        plaintext: &[u8],
    ) -> Result<(Vec<u8>, [u8; TAG_LEN]), CryptoError> {
        let j0 = self.j0_reference(iv)?;
        let ciphertext = self.ctr_reference(inc32(j0), plaintext);
        let tag = self.compute_tag_reference(j0, aad, &ciphertext);
        Ok((ciphertext, tag))
    }

    /// Derives the pre-counter block J0 from the IV (fast GHASH for non-96-bit IVs).
    fn j0(&self, iv: &[u8]) -> Result<[u8; BLOCK_SIZE], CryptoError> {
        if iv.len() == IV_LEN {
            let mut j0 = [0u8; BLOCK_SIZE];
            j0[..IV_LEN].copy_from_slice(iv);
            j0[15] = 1;
            Ok(j0)
        } else if iv.is_empty() {
            Err(CryptoError::InvalidIvLength(0))
        } else {
            // GHASH-based derivation for non-96-bit IVs (rarely used by Plinius but
            // included for SP 800-38D completeness).
            let mut y = 0u128;
            self.ghash_padded(&mut y, iv);
            let mut len_block = [0u8; BLOCK_SIZE];
            len_block[8..].copy_from_slice(&((iv.len() as u64) * 8).to_be_bytes());
            self.ghash_block(&mut y, &len_block);
            Ok(y.to_be_bytes())
        }
    }

    /// Reference J0 derivation (bit-serial GHASH for non-96-bit IVs).
    fn j0_reference(&self, iv: &[u8]) -> Result<[u8; BLOCK_SIZE], CryptoError> {
        if iv.len() == IV_LEN || iv.is_empty() {
            return self.j0(iv);
        }
        let mut y = 0u128;
        ghash_padded_reference(self.h, &mut y, iv);
        let mut len_block = [0u8; BLOCK_SIZE];
        len_block[8..].copy_from_slice(&((iv.len() as u64) * 8).to_be_bytes());
        y = gf_mult(y ^ u128::from_be_bytes(len_block), self.h);
        Ok(y.to_be_bytes())
    }

    /// CTR keystream application from `counter` into `dst`, engine-dispatched; no
    /// allocation on any engine. The three kernels produce identical bytes; only
    /// the block-group width differs (8 for AES-NI, 4 for the T-tables, 1 for the
    /// reference core), which is invisible because CTR blocks are independent.
    fn ctr_xor_into(&self, counter: [u8; BLOCK_SIZE], src: &[u8], dst: &mut [u8]) {
        match &self.engine {
            #[cfg(target_arch = "x86_64")]
            Engine::Hw { aes, .. } => aes.ctr_xor(counter, src, dst),
            Engine::Scalar => self.ctr_xor_into_scalar(counter, src, dst),
            Engine::Reference => self.ctr_xor_into_reference(counter, src, dst),
        }
    }

    /// Scalar CTR kernel: keystream blocks are generated in groups of four
    /// ([`Aes::encrypt_blocks`]) so the independent AES dependency chains overlap;
    /// the tail runs block-by-block.
    fn ctr_xor_into_scalar(&self, mut counter: [u8; BLOCK_SIZE], src: &[u8], dst: &mut [u8]) {
        debug_assert_eq!(src.len(), dst.len());
        const LANES: usize = 4;
        const GROUP: usize = LANES * BLOCK_SIZE;
        let mut src_groups = src.chunks_exact(GROUP);
        let mut dst_groups = dst.chunks_exact_mut(GROUP);
        for (s, d) in (&mut src_groups).zip(&mut dst_groups) {
            let mut counters = [[0u8; BLOCK_SIZE]; LANES];
            for (i, c) in counters.iter_mut().enumerate() {
                *c = counter_add(counter, i as u32);
            }
            let keystream = self.cipher.encrypt_blocks(&counters);
            for (lane, ks) in keystream.iter().enumerate() {
                let off = lane * BLOCK_SIZE;
                let x = u128::from_ne_bytes(s[off..off + BLOCK_SIZE].try_into().expect("16 bytes"))
                    ^ u128::from_ne_bytes(*ks);
                d[off..off + BLOCK_SIZE].copy_from_slice(&x.to_ne_bytes());
            }
            counter = counter_add(counter, LANES as u32);
        }
        let s_tail = src_groups.remainder();
        let d_tail = dst_groups.into_remainder();
        let mut src_blocks = s_tail.chunks_exact(BLOCK_SIZE);
        let mut dst_blocks = d_tail.chunks_exact_mut(BLOCK_SIZE);
        for (s, d) in (&mut src_blocks).zip(&mut dst_blocks) {
            let keystream = self.cipher.encrypt_block_copy(&counter);
            let x = u128::from_ne_bytes(s.try_into().expect("16 bytes"))
                ^ u128::from_ne_bytes(keystream);
            d.copy_from_slice(&x.to_ne_bytes());
            counter = inc32(counter);
        }
        let s_rem = src_blocks.remainder();
        let d_rem = dst_blocks.into_remainder();
        if !s_rem.is_empty() {
            let keystream = self.cipher.encrypt_block_copy(&counter);
            for (i, (s, d)) in s_rem.iter().zip(d_rem.iter_mut()).enumerate() {
                *d = s ^ keystream[i];
            }
        }
    }

    /// Chunk-parallel [`AesGcm::ctr_xor_into`]: `dst` is split at multiples of
    /// [`CTR_PAR_CHUNK`] (a counter boundary), each chunk's counter derived from its
    /// block offset — deterministic for every thread count and schedule.
    fn ctr_xor_into_threads(
        &self,
        counter: [u8; BLOCK_SIZE],
        src: &[u8],
        dst: &mut [u8],
        threads: usize,
    ) {
        if threads <= 1 || dst.len() < CTR_PAR_MIN {
            return self.ctr_xor_into(counter, src, dst);
        }
        plinius_parallel::par_chunks_mut(dst, CTR_PAR_CHUNK, threads, |idx, chunk| {
            let off = idx * CTR_PAR_CHUNK;
            let chunk_counter = counter_add(counter, (off / BLOCK_SIZE) as u32);
            self.ctr_xor_into(chunk_counter, &src[off..off + chunk.len()], chunk);
        });
    }

    /// Block-at-a-time reference CTR over the byte-wise AES core, writing into a
    /// caller buffer — allocation-free, so even `PLINIUS_CRYPTO=reference` keeps
    /// the zero-alloc `seal_into`/`open_into` contract.
    fn ctr_xor_into_reference(&self, mut counter: [u8; BLOCK_SIZE], src: &[u8], dst: &mut [u8]) {
        debug_assert_eq!(src.len(), dst.len());
        for (s, d) in src.chunks(BLOCK_SIZE).zip(dst.chunks_mut(BLOCK_SIZE)) {
            let mut keystream = counter;
            self.cipher.encrypt_block_reference(&mut keystream);
            for (i, (sb, db)) in s.iter().zip(d.iter_mut()).enumerate() {
                *db = sb ^ keystream[i];
            }
            counter = inc32(counter);
        }
    }

    /// Byte-at-a-time reference CTR over the byte-wise AES core.
    fn ctr_reference(&self, counter: [u8; BLOCK_SIZE], data: &[u8]) -> Vec<u8> {
        let mut out = vec![0u8; data.len()];
        self.ctr_xor_into_reference(counter, data, &mut out);
        out
    }

    /// One GHASH block step, engine-dispatched.
    #[inline]
    fn ghash_block(&self, y: &mut u128, block: &[u8; BLOCK_SIZE]) {
        match &self.engine {
            #[cfg(target_arch = "x86_64")]
            Engine::Hw { ghash, .. } => ghash.ghash_block(y, block),
            Engine::Scalar => self.ghash_block_scalar(y, block),
            Engine::Reference => *y = gf_mult(*y ^ u128::from_be_bytes(*block), self.h),
        }
    }

    /// One GHASH block step with the byte-indexed Shoup table.
    #[inline]
    fn ghash_block_scalar(&self, y: &mut u128, block: &[u8; BLOCK_SIZE]) {
        *y = gf_mult_shoup8(&self.h_tables[0], *y ^ u128::from_be_bytes(*block));
    }

    /// Absorbs arbitrary-length data, zero-padding the final partial block;
    /// engine-dispatched. Every engine is bit-identical to the block-by-block
    /// serial chain.
    fn ghash_padded(&self, y: &mut u128, data: &[u8]) {
        match &self.engine {
            #[cfg(target_arch = "x86_64")]
            Engine::Hw { ghash, .. } => ghash.ghash_padded(y, data),
            Engine::Scalar => self.ghash_padded_scalar(y, data),
            Engine::Reference => ghash_padded_reference(self.h, y, data),
        }
    }

    /// Scalar GHASH absorption.
    ///
    /// Full 64-byte groups use 4-block aggregation: the identity
    /// `(((Y⊕C0)·H ⊕ C1)·H ⊕ C2)·H ⊕ C3)·H = (Y⊕C0)·H⁴ ⊕ C1·H³ ⊕ C2·H² ⊕ C3·H`
    /// turns the serial multiply chain into four independent multiplies whose table
    /// loads overlap. The result is bit-identical to the block-by-block chain.
    fn ghash_padded_scalar(&self, y: &mut u128, data: &[u8]) {
        let t = &self.h_tables;
        let mut quads = data.chunks_exact(4 * BLOCK_SIZE);
        for quad in &mut quads {
            let b0 = u128::from_be_bytes(quad[0..16].try_into().expect("16 bytes"));
            let b1 = u128::from_be_bytes(quad[16..32].try_into().expect("16 bytes"));
            let b2 = u128::from_be_bytes(quad[32..48].try_into().expect("16 bytes"));
            let b3 = u128::from_be_bytes(quad[48..64].try_into().expect("16 bytes"));
            *y = gf_mult_shoup8(&t[3], *y ^ b0)
                ^ gf_mult_shoup8(&t[2], b1)
                ^ gf_mult_shoup8(&t[1], b2)
                ^ gf_mult_shoup8(&t[0], b3);
        }
        let mut blocks = quads.remainder().chunks_exact(BLOCK_SIZE);
        for chunk in &mut blocks {
            self.ghash_block_scalar(y, &chunk.try_into().expect("16 bytes"));
        }
        let rem = blocks.remainder();
        if !rem.is_empty() {
            let mut block = [0u8; BLOCK_SIZE];
            block[..rem.len()].copy_from_slice(rem);
            self.ghash_block_scalar(y, &block);
        }
    }

    /// GHASH over AAD and ciphertext, encrypted with J0 to form the tag.
    fn compute_tag(&self, j0: [u8; BLOCK_SIZE], aad: &[u8], ciphertext: &[u8]) -> [u8; TAG_LEN] {
        let mut y = 0u128;
        self.ghash_padded(&mut y, aad);
        self.ghash_padded(&mut y, ciphertext);
        let mut len_block = [0u8; BLOCK_SIZE];
        len_block[..8].copy_from_slice(&((aad.len() as u64) * 8).to_be_bytes());
        len_block[8..].copy_from_slice(&((ciphertext.len() as u64) * 8).to_be_bytes());
        self.ghash_block(&mut y, &len_block);
        self.finish_tag(j0, y)
    }

    /// Reference tag computation with the bit-serial multiplier.
    fn compute_tag_reference(
        &self,
        j0: [u8; BLOCK_SIZE],
        aad: &[u8],
        ciphertext: &[u8],
    ) -> [u8; TAG_LEN] {
        let mut y = 0u128;
        ghash_padded_reference(self.h, &mut y, aad);
        ghash_padded_reference(self.h, &mut y, ciphertext);
        let mut len_block = [0u8; BLOCK_SIZE];
        len_block[..8].copy_from_slice(&((aad.len() as u64) * 8).to_be_bytes());
        len_block[8..].copy_from_slice(&((ciphertext.len() as u64) * 8).to_be_bytes());
        y = gf_mult(y ^ u128::from_be_bytes(len_block), self.h);
        self.finish_tag(j0, y)
    }

    fn finish_tag(&self, j0: [u8; BLOCK_SIZE], y: u128) -> [u8; TAG_LEN] {
        let s = y.to_be_bytes();
        let e_j0 = self.cipher.encrypt_block_copy(&j0);
        let mut tag = [0u8; TAG_LEN];
        for i in 0..TAG_LEN {
            tag[i] = s[i] ^ e_j0[i];
        }
        tag
    }
}

/// Increments the last 32 bits of a counter block (the `inc32` function of SP 800-38D).
fn inc32(block: [u8; BLOCK_SIZE]) -> [u8; BLOCK_SIZE] {
    counter_add(block, 1)
}

/// Adds `n` to the last 32 bits of a counter block (wrapping), i.e. `inc32` applied `n`
/// times — the building block of chunk-parallel CTR (shared with the AES-NI kernel so
/// both engines derive per-block counters identically).
pub(crate) fn counter_add(mut block: [u8; BLOCK_SIZE], n: u32) -> [u8; BLOCK_SIZE] {
    let ctr = u32::from_be_bytes([block[12], block[13], block[14], block[15]]).wrapping_add(n);
    block[12..].copy_from_slice(&ctr.to_be_bytes());
    block
}

/// Constant-time comparison of two equally sized byte strings.
fn constant_time_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}

/// The reduction constant of the GCM polynomial in the reflected representation.
const R: u128 = 0xe1 << 120;

/// Multiplies by `x` in GF(2^128): one right shift with conditional reduction.
#[inline]
const fn mul_x(v: u128) -> u128 {
    (v >> 1) ^ if v & 1 == 1 { R } else { 0 }
}

/// Multiplies by `x^4`: four applications of [`mul_x`].
const fn mul_x4(v: u128) -> u128 {
    mul_x(mul_x(mul_x(mul_x(v))))
}

/// Reduction table for shifting the GHASH accumulator by one nibble:
/// `R4[n] = n · x^4` for the nibble `n` in the low four bit positions.
const R4: [u128; 16] = build_r4();

const fn build_r4() -> [u128; 16] {
    let mut t = [0u128; 16];
    let mut n = 0usize;
    while n < 16 {
        t[n] = mul_x4(n as u128);
        n += 1;
    }
    t
}

/// Reduction table for shifting the GHASH accumulator by one byte:
/// `R8[n] = n · x^8` for the byte `n` in the low eight bit positions.
const R8: [u128; 256] = build_r8();

const fn build_r8() -> [u128; 256] {
    let mut t = [0u128; 256];
    let mut n = 0usize;
    while n < 256 {
        t[n] = mul_x4(mul_x4(n as u128));
        n += 1;
    }
    t
}

/// Builds the per-key Shoup table: `t[n]` is `H` multiplied by the 4-bit polynomial
/// whose bits sit at the x^0..x^3 coefficient positions (bits 124..127 of the word).
fn build_h_table(h: u128) -> [u128; 16] {
    let mut t = [0u128; 16];
    t[8] = h; // 0b1000 at bits 124..127 sets bit 127 = x^0, so t[8] = H · 1.
    t[4] = mul_x(t[8]);
    t[2] = mul_x(t[4]);
    t[1] = mul_x(t[2]);
    let mut i = 2;
    while i < 16 {
        for j in 1..i {
            t[i + j] = t[i] ^ t[j];
        }
        i *= 2;
    }
    t
}

/// Expands the 16-entry Shoup table into a byte-indexed table: `t8[b]` is `H`
/// multiplied by byte `b` at the x^0..x^7 positions, i.e. the low-nibble entry
/// combined with the high-nibble entry shifted four degrees up. Halves the per-block
/// step count of [`gf_mult_shoup`] at the cost of 4 KiB per key.
fn build_h_table8(t4: &[u128; 16]) -> Box<[u128; 256]> {
    let mut t = Box::new([0u128; 256]);
    for (b, entry) in t.iter_mut().enumerate() {
        // In the reflected representation the high nibble of a byte holds the
        // low-degree coefficients: x^0..x^3 come from `b >> 4`, x^4..x^7 from `b & 0xf`.
        *entry = t4[b >> 4] ^ mul_x4(t4[b & 0xf]);
    }
    t
}

/// Byte-indexed Shoup multiplication: 16 shift+lookup steps per block, processing
/// bytes from the least significant (highest-degree) end with a Horner-style `· x^8`
/// between steps.
#[inline]
fn gf_mult_shoup8(table: &[u128; 256], w: u128) -> u128 {
    let bytes = w.to_le_bytes(); // bytes[0] holds the highest-degree coefficients
    let mut z = table[bytes[0] as usize];
    for &byte in &bytes[1..] {
        z = (z >> 8) ^ R8[(z & 0xff) as usize];
        z ^= table[byte as usize];
    }
    z
}

/// Shoup 4-bit-table multiplication of `w` by the `H` encoded in `table`: 32
/// shift+lookup steps instead of 128 bit-steps, processing nibbles from the least
/// significant (highest-degree) end with a Horner-style `· x^4` between steps.
///
/// The 16-entry table is the per-key seed from which the byte-indexed production
/// table is expanded; this mid-level kernel is retained so the tests can pin
/// bit-serial → 4-bit → 8-bit against each other.
///
/// The operand is decomposed into bytes once so every step indexes with a nibble of a
/// `u8` (no variable-distance `u128` shifts in the loop).
#[cfg_attr(not(test), allow(dead_code))]
#[inline]
fn gf_mult_shoup(table: &[u128; 16], w: u128) -> u128 {
    let bytes = w.to_le_bytes(); // bytes[0] holds nibbles 0 (low) and 1 (high)
    let mut z = table[(bytes[0] & 0xf) as usize];
    z = (z >> 4) ^ R4[(z & 0xf) as usize];
    z ^= table[(bytes[0] >> 4) as usize];
    for &byte in &bytes[1..] {
        z = (z >> 4) ^ R4[(z & 0xf) as usize];
        z ^= table[(byte & 0xf) as usize];
        z = (z >> 4) ^ R4[(z & 0xf) as usize];
        z ^= table[(byte >> 4) as usize];
    }
    z
}

/// Multiplication in GF(2^128) with the GCM polynomial, operating on the
/// big-endian "reflected" representation used by SP 800-38D.
///
/// The retained bit-serial reference kernel (128 iterations); production code uses
/// [`gf_mult_shoup`]. Crate-visible so the PCLMUL kernel's unit tests can pin the
/// hardware multiply against it, and reachable through
/// [`AesGcm::encrypt_reference`] for differential testing.
pub(crate) fn gf_mult(x: u128, y: u128) -> u128 {
    let mut z = 0u128;
    let mut v = x;
    for i in 0..128 {
        if (y >> (127 - i)) & 1 == 1 {
            z ^= v;
        }
        if v & 1 == 0 {
            v >>= 1;
        } else {
            v = (v >> 1) ^ R;
        }
    }
    z
}

/// Reference GHASH absorption with zero-padding, on the bit-serial multiplier.
fn ghash_padded_reference(h: u128, y: &mut u128, data: &[u8]) {
    for chunk in data.chunks(BLOCK_SIZE) {
        let mut block = [0u8; BLOCK_SIZE];
        block[..chunk.len()].copy_from_slice(chunk);
        *y = gf_mult(*y ^ u128::from_be_bytes(block), h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    /// NIST GCM test case 1: empty plaintext, all-zero key and IV.
    #[test]
    fn nist_test_case_1() {
        let gcm = AesGcm::from_key(&[0u8; 16]);
        let (ct, tag) = gcm.encrypt(&[0u8; 12], &[], &[]).unwrap();
        assert!(ct.is_empty());
        assert_eq!(tag.to_vec(), hex("58e2fccefa7e3061367f1d57a4e7455a"));
    }

    /// NIST GCM test case 2: one zero block of plaintext.
    #[test]
    fn nist_test_case_2() {
        let gcm = AesGcm::from_key(&[0u8; 16]);
        let (ct, tag) = gcm.encrypt(&[0u8; 12], &[], &[0u8; 16]).unwrap();
        assert_eq!(ct, hex("0388dace60b6a392f328c2b971b2fe78"));
        assert_eq!(tag.to_vec(), hex("ab6e47d42cec13bdf53a67b21257bddf"));
    }

    /// NIST GCM test case 3: four blocks of plaintext, no AAD.
    #[test]
    fn nist_test_case_3() {
        let key = hex("feffe9928665731c6d6a8f9467308308");
        let iv = hex("cafebabefacedbaddecaf888");
        let pt = hex(
            "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72\
             1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b391aafd255",
        );
        let gcm = AesGcm::from_key(&key);
        let (ct, tag) = gcm.encrypt(&iv, &[], &pt).unwrap();
        assert_eq!(
            ct,
            hex(
                "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e\
                 21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091473f5985"
            )
        );
        assert_eq!(tag.to_vec(), hex("4d5c2af327cd64a62cf35abd2ba6fab4"));
    }

    /// NIST GCM test case 4: same as case 3 but with truncated plaintext and AAD.
    #[test]
    fn nist_test_case_4_with_aad() {
        let key = hex("feffe9928665731c6d6a8f9467308308");
        let iv = hex("cafebabefacedbaddecaf888");
        let pt = hex(
            "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72\
             1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39",
        );
        let aad = hex("feedfacedeadbeeffeedfacedeadbeefabaddad2");
        let gcm = AesGcm::from_key(&key);
        let (ct, tag) = gcm.encrypt(&iv, &aad, &pt).unwrap();
        assert_eq!(
            ct,
            hex(
                "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e\
                 21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091"
            )
        );
        assert_eq!(tag.to_vec(), hex("5bc94fbc3221a5db94fae95ae7121a47"));
    }

    #[test]
    fn round_trip_and_tamper_detection() {
        let gcm = AesGcm::from_key(&[9u8; 16]);
        let iv = [3u8; 12];
        let aad = b"layer-0-weights";
        let pt = b"confidential model parameters".to_vec();
        let (mut ct, tag) = gcm.encrypt(&iv, aad, &pt).unwrap();
        assert_eq!(gcm.decrypt(&iv, aad, &ct, &tag).unwrap(), pt);
        // Flip one ciphertext bit: decryption must fail and release nothing.
        ct[0] ^= 1;
        assert_eq!(
            gcm.decrypt(&iv, aad, &ct, &tag).unwrap_err(),
            CryptoError::AuthenticationFailed
        );
        ct[0] ^= 1;
        // Wrong AAD also fails.
        assert!(gcm.decrypt(&iv, b"other", &ct, &tag).is_err());
    }

    #[test]
    fn non_96_bit_iv_uses_ghash_derivation() {
        let gcm = AesGcm::from_key(&[1u8; 16]);
        let iv = [7u8; 16]; // 128-bit IV takes the GHASH path.
        let (ct, tag) = gcm.encrypt(&iv, &[], b"hello").unwrap();
        assert_eq!(gcm.decrypt(&iv, &[], &ct, &tag).unwrap(), b"hello");
    }

    #[test]
    fn empty_iv_is_rejected() {
        let gcm = AesGcm::from_key(&[1u8; 16]);
        assert_eq!(
            gcm.encrypt(&[], &[], b"x").unwrap_err(),
            CryptoError::InvalidIvLength(0)
        );
    }

    #[test]
    fn inc32_wraps_only_low_word() {
        let mut block = [0xFFu8; 16];
        block = inc32(block);
        assert_eq!(&block[..12], &[0xFF; 12]);
        assert_eq!(&block[12..], &[0, 0, 0, 0]);
    }

    #[test]
    fn counter_add_matches_repeated_inc32() {
        let mut block = [0u8; 16];
        block[12..].copy_from_slice(&0xffff_fff0u32.to_be_bytes());
        let mut stepped = block;
        for _ in 0..100 {
            stepped = inc32(stepped);
        }
        assert_eq!(counter_add(block, 100), stepped);
        // Wraps exactly like inc32 does.
        assert_eq!(counter_add(block, 16)[12..], [0, 0, 0, 0]);
    }

    #[test]
    fn constant_time_eq_basic() {
        assert!(constant_time_eq(b"abc", b"abc"));
        assert!(!constant_time_eq(b"abc", b"abd"));
        assert!(!constant_time_eq(b"abc", b"ab"));
    }

    /// The Shoup table multipliers (4-bit and byte-indexed) agree with the bit-serial
    /// reference on a spread of deterministic operand pairs.
    #[test]
    fn shoup_ghash_matches_bit_serial_reference() {
        let mut x: u128 = 0x0123_4567_89ab_cdef_0011_2233_4455_6677;
        let mut h: u128 = 0xdead_beef_cafe_f00d_1234_5678_9abc_def0;
        for _ in 0..64 {
            let table = build_h_table(h);
            let table8 = build_h_table8(&table);
            let expected = gf_mult(x, h);
            assert_eq!(gf_mult_shoup(&table, x), expected, "x={x:x} h={h:x}");
            assert_eq!(gf_mult_shoup8(&table8, x), expected, "x={x:x} h={h:x}");
            // Also the edge operands.
            assert_eq!(gf_mult_shoup(&table, 0), 0);
            assert_eq!(gf_mult_shoup8(&table8, 0), 0);
            assert_eq!(gf_mult_shoup(&table, u128::MAX), gf_mult(u128::MAX, h));
            assert_eq!(gf_mult_shoup8(&table8, u128::MAX), gf_mult(u128::MAX, h));
            x = x.rotate_left(11) ^ h;
            h = h.rotate_right(7).wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        }
    }

    /// Fast encrypt agrees with the retained reference kernels byte-for-byte,
    /// including tag, across block-boundary sizes and IV shapes.
    #[test]
    fn fast_path_matches_reference_kernels() {
        let gcm = AesGcm::from_key(&hex("feffe9928665731c6d6a8f9467308308"));
        let data: Vec<u8> = (0..200u8).collect();
        let aad = b"reference-pinning";
        for len in [0usize, 1, 15, 16, 17, 64, 100, 200] {
            for iv in [vec![0x42u8; 12], vec![0x42u8; 8], vec![0x42u8; 60]] {
                let fast = gcm.encrypt(&iv, aad, &data[..len]).unwrap();
                let reference = gcm.encrypt_reference(&iv, aad, &data[..len]).unwrap();
                assert_eq!(fast, reference, "len={len} iv_len={}", iv.len());
            }
        }
    }

    /// Thread-parallel CTR produces bit-identical output for every thread count.
    #[test]
    fn threaded_ctr_is_bit_identical() {
        let gcm = AesGcm::from_key(&[5u8; 16]);
        let iv = [9u8; 12];
        // Large enough to cross several parallel chunks, plus a partial final block.
        let pt: Vec<u8> = (0..3 * CTR_PAR_CHUNK + 7)
            .map(|i| (i * 31 % 251) as u8)
            .collect();
        let mut serial = vec![0u8; pt.len()];
        let tag_serial = gcm
            .encrypt_into_with_threads(&iv, b"aad", &pt, &mut serial, 1)
            .unwrap();
        for threads in [2usize, 3, 8] {
            let mut parallel = vec![0u8; pt.len()];
            let tag = gcm
                .encrypt_into_with_threads(&iv, b"aad", &pt, &mut parallel, threads)
                .unwrap();
            assert_eq!(parallel, serial, "threads={threads}");
            assert_eq!(tag, tag_serial, "threads={threads}");
            // And the threaded decrypt round-trips.
            let mut opened = vec![0u8; pt.len()];
            gcm.decrypt_into_with_threads(&iv, b"aad", &parallel, &tag, &mut opened, threads)
                .unwrap();
            assert_eq!(opened, pt, "threads={threads}");
        }
    }

    #[test]
    fn debug_does_not_leak_the_hash_subkey_or_tables() {
        let gcm = AesGcm::from_key(&[0xABu8; 16]);
        let dbg = format!("{gcm:?}");
        assert!(dbg.contains("AesGcm") && dbg.contains("rounds"), "{dbg}");
        assert!(
            dbg.len() < 120,
            "debug output must not dump H or the GHASH tables: {dbg}"
        );
    }

    #[test]
    fn into_apis_reject_wrong_buffer_sizes() {
        let gcm = AesGcm::from_key(&[1u8; 16]);
        let mut short = [0u8; 3];
        assert!(matches!(
            gcm.encrypt_into(&[2u8; 12], &[], b"four", &mut short),
            Err(CryptoError::BufferLengthMismatch {
                expected: 4,
                got: 3
            })
        ));
        let (ct, tag) = gcm.encrypt(&[2u8; 12], &[], b"four").unwrap();
        let mut long = [0u8; 5];
        assert!(matches!(
            gcm.decrypt_into(&[2u8; 12], &[], &ct, &tag, &mut long),
            Err(CryptoError::BufferLengthMismatch {
                expected: 4,
                got: 5
            })
        ));
    }

    #[test]
    fn failed_auth_leaves_output_buffer_untouched() {
        let gcm = AesGcm::from_key(&[8u8; 16]);
        let (ct, mut tag) = gcm.encrypt(&[1u8; 12], &[], b"secret!").unwrap();
        tag[0] ^= 1;
        let mut out = [0xAAu8; 7];
        assert_eq!(
            gcm.decrypt_into(&[1u8; 12], &[], &ct, &tag, &mut out)
                .unwrap_err(),
            CryptoError::AuthenticationFailed
        );
        assert_eq!(out, [0xAAu8; 7], "no plaintext may be released");
    }
}
