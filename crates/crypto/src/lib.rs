//! # plinius-crypto
//!
//! Authenticated encryption primitives for the Plinius reproduction, implemented from
//! scratch (no third-party crypto crates): the AES block cipher, AES-GCM (the AEAD used
//! by the Intel SGX SDK routines that Plinius' encryption engine calls), SHA-256 and
//! HMAC-SHA256 for enclave measurements and sealing-key derivation.
//!
//! The AEAD engine is built for throughput — Plinius mirrors the whole encrypted model
//! to PM every iteration, so AES-GCM speed bounds the fault-tolerance overhead:
//!
//! * **hardware kernels** ([`dispatch`]): AES-NI CTR and carry-less-multiply GHASH,
//!   selected at [`AesGcm`] construction when the `x86_64` CPU reports the `aes` and
//!   `pclmulqdq` features (override with `PLINIUS_CRYPTO={auto,scalar,reference}`);
//! * **T-table AES** ([`aes`]): four 256-entry fused SubBytes/ShiftRows/MixColumns
//!   tables, an order of magnitude faster than the byte-wise reference kernel (which is
//!   retained for differential testing) — the always-compiled scalar fallback;
//! * **Shoup 4-bit GHASH** ([`gcm`]): a 16-entry per-key table turns the 128 bit-steps
//!   of the schoolbook GF(2^128) multiply into 32 shift+lookup steps;
//! * **zero-copy sealing** ([`seal_into`], [`SealedView::open_into`]): encrypt/decrypt
//!   straight into caller-provided buffers with no heap allocation on any engine, plus
//!   optional chunk-parallel CTR for large buffers (bit-identical for every thread
//!   count and engine).
//!
//! The crate also provides the exact *sealed-buffer layout* Plinius stores on persistent
//! memory (§IV of the paper): for every encrypted parameter buffer a fresh random 12-byte
//! IV is generated, the plaintext is encrypted with AES-GCM, and the IV plus the 16-byte
//! MAC are appended to the ciphertext — 28 bytes of metadata per buffer, i.e. 140 bytes
//! per mirrored layer (5 parameter matrices per layer).
//!
//! # Example
//!
//! ```
//! use plinius_crypto::{Key, SealedBuffer};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let key = Key::generate_128(&mut rng);
//! let sealed = SealedBuffer::seal(&key, b"layer weights", &mut rng)?;
//! assert_eq!(sealed.open(&key)?, b"layer weights");
//! # Ok::<(), plinius_crypto::CryptoError>(())
//! ```

// `deny` rather than `forbid`: the two hardware kernel modules (`aesarch`,
// `clmul`) opt back in with module-level `allow(unsafe_code)` — they are the
// only places in the workspace's production crates where `unsafe` is permitted,
// and both confine it to `#[target_feature]` intrinsics that are constructed
// only after runtime CPU-feature detection (see their module docs for the
// safety contract). Everything else in the crate still refuses `unsafe`.
#![deny(unsafe_code)]
#![warn(missing_docs)]

use rand::RngCore;
use std::error::Error;
use std::fmt;

pub mod aes;
#[cfg(target_arch = "x86_64")]
mod aesarch;
#[cfg(target_arch = "x86_64")]
mod clmul;
pub mod dispatch;
pub mod gcm;
pub mod sha256;

pub use aes::Aes;
pub use dispatch::{hw_available, selected_engine, EngineKind, EnginePolicy, CRYPTO_ENV};
pub use gcm::{AesGcm, IV_LEN, TAG_LEN};
pub use sha256::{hmac_sha256, Sha256};

/// Metadata overhead (IV + MAC) appended to every sealed buffer, in bytes.
///
/// Matches the paper's accounting of 28 B per encrypted parameter buffer and
/// 140 B of PM metadata per mirrored layer (5 buffers per layer).
pub const SEAL_OVERHEAD: usize = IV_LEN + TAG_LEN;

/// Errors produced by the cryptographic primitives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CryptoError {
    /// The supplied key had an unsupported length (must be 16, 24 or 32 bytes).
    InvalidKeyLength(usize),
    /// The supplied IV had an unsupported length.
    InvalidIvLength(usize),
    /// GCM tag verification failed: the data was tampered with or the key is wrong.
    AuthenticationFailed,
    /// A sealed buffer was too short to contain the IV and MAC trailer.
    TruncatedSealedBuffer(usize),
    /// A caller-provided output buffer had the wrong size for a zero-copy operation.
    BufferLengthMismatch {
        /// The size the buffer must have.
        expected: usize,
        /// The size the caller supplied.
        got: usize,
    },
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::InvalidKeyLength(n) => {
                write!(
                    f,
                    "invalid AES key length: {n} bytes (expected 16, 24 or 32)"
                )
            }
            CryptoError::InvalidIvLength(n) => write!(f, "invalid GCM IV length: {n} bytes"),
            CryptoError::AuthenticationFailed => {
                write!(f, "authentication tag verification failed")
            }
            CryptoError::TruncatedSealedBuffer(n) => {
                write!(
                    f,
                    "sealed buffer of {n} bytes is shorter than the 28-byte trailer"
                )
            }
            CryptoError::BufferLengthMismatch { expected, got } => {
                write!(
                    f,
                    "output buffer has {got} bytes but the operation needs exactly {expected}"
                )
            }
        }
    }
}

impl Error for CryptoError {}

/// A symmetric AES key (128, 192 or 256 bits). Plinius uses 128-bit keys.
#[derive(Clone, PartialEq, Eq)]
pub struct Key {
    bytes: Vec<u8>,
}

impl fmt::Debug for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never print key bytes.
        f.debug_struct("Key")
            .field("bits", &(self.bytes.len() * 8))
            .finish()
    }
}

impl Key {
    /// Wraps raw key bytes.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidKeyLength`] unless the key is 16, 24 or 32 bytes.
    pub fn new(bytes: &[u8]) -> Result<Self, CryptoError> {
        match bytes.len() {
            16 | 24 | 32 => Ok(Key {
                bytes: bytes.to_vec(),
            }),
            n => Err(CryptoError::InvalidKeyLength(n)),
        }
    }

    /// Generates a random 128-bit key (the key size Plinius uses).
    pub fn generate_128<R: RngCore>(rng: &mut R) -> Self {
        let mut bytes = vec![0u8; 16];
        rng.fill_bytes(&mut bytes);
        Key { bytes }
    }

    /// Generates a random 256-bit key.
    pub fn generate_256<R: RngCore>(rng: &mut R) -> Self {
        let mut bytes = vec![0u8; 32];
        rng.fill_bytes(&mut bytes);
        Key { bytes }
    }

    /// Key length in bits.
    pub fn bits(&self) -> usize {
        self.bytes.len() * 8
    }

    /// Raw key bytes (needed to provision the key over the attested channel).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Builds the AES-GCM context for this key.
    ///
    /// This expands the AES key schedule and derives the per-key GHASH table, which is
    /// not free: hot paths that seal or open many buffers under one key should build
    /// the context once and reuse it (see [`seal_into`] / [`SealedView::open_into`]).
    pub fn gcm(&self) -> AesGcm {
        AesGcm::from_key(&self.bytes)
    }

    /// Builds the AES-GCM context for this key with an explicit engine policy
    /// instead of the `PLINIUS_CRYPTO` environment default — the hook through
    /// which `Enclave`/`PliniusBuilder` pin an engine. Same cost caveats as
    /// [`Key::gcm`].
    pub fn gcm_with_policy(&self, policy: EnginePolicy) -> AesGcm {
        AesGcm::with_policy(Aes::new(&self.bytes), policy)
    }
}

/// Total on-PM size of a sealed buffer holding `plaintext_len` plaintext bytes.
pub const fn sealed_len(plaintext_len: usize) -> usize {
    plaintext_len + SEAL_OVERHEAD
}

/// Zero-copy sealing: encrypts `plaintext` under `gcm` with the caller-supplied IV and
/// AAD, writing the full sealed layout `ciphertext || IV || MAC` into `out`. Performs
/// **no heap allocation**, which makes it the building block of the allocation-free
/// mirror-out path — pair it with a reusable output arena and an [`IvSequence`].
///
/// The sealed bytes are identical to [`SealedBuffer::seal_with_aad_and_iv`] for the
/// same `(key, plaintext, aad, iv)`.
///
/// # Errors
///
/// Returns [`CryptoError::BufferLengthMismatch`] unless `out.len()` is exactly
/// [`sealed_len`]`(plaintext.len())`, and propagates GCM errors.
pub fn seal_into(
    gcm: &AesGcm,
    plaintext: &[u8],
    aad: &[u8],
    iv: &[u8; IV_LEN],
    out: &mut [u8],
) -> Result<(), CryptoError> {
    seal_into_with_threads(gcm, plaintext, aad, iv, out, 1)
}

/// [`seal_into`] with the CTR keystream of large buffers fanned out over up to
/// `threads` scoped threads (chunked at 16-byte counter boundaries — the sealed bytes
/// are bit-identical for every `threads` value).
///
/// # Errors
///
/// Same as [`seal_into`].
pub fn seal_into_with_threads(
    gcm: &AesGcm,
    plaintext: &[u8],
    aad: &[u8],
    iv: &[u8; IV_LEN],
    out: &mut [u8],
    threads: usize,
) -> Result<(), CryptoError> {
    let expected = sealed_len(plaintext.len());
    if out.len() != expected {
        return Err(CryptoError::BufferLengthMismatch {
            expected,
            got: out.len(),
        });
    }
    let (ct, trailer) = out.split_at_mut(plaintext.len());
    let tag = gcm.encrypt_into_with_threads(iv, aad, plaintext, ct, threads)?;
    trailer[..IV_LEN].copy_from_slice(iv);
    trailer[IV_LEN..].copy_from_slice(&tag);
    Ok(())
}

/// A borrowed view over sealed bytes in the on-PM layout `ciphertext || IV || MAC`.
///
/// Unlike [`SealedBuffer::from_bytes`], parsing a view copies nothing: the mirror-in
/// path reads encrypted tensors from PM into one arena and decrypts each straight out
/// of it ([`SealedView::open_into`]) without cloning the blob first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SealedView<'a> {
    bytes: &'a [u8],
}

impl<'a> SealedView<'a> {
    /// Interprets `bytes` as a sealed buffer without copying.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::TruncatedSealedBuffer`] if the data cannot even hold the
    /// 28-byte IV+MAC trailer.
    pub fn parse(bytes: &'a [u8]) -> Result<Self, CryptoError> {
        if bytes.len() < SEAL_OVERHEAD {
            return Err(CryptoError::TruncatedSealedBuffer(bytes.len()));
        }
        Ok(SealedView { bytes })
    }

    /// The ciphertext portion.
    pub fn ciphertext(&self) -> &'a [u8] {
        &self.bytes[..self.plaintext_len()]
    }

    /// The 12-byte IV.
    pub fn iv(&self) -> &'a [u8] {
        &self.bytes[self.plaintext_len()..self.plaintext_len() + IV_LEN]
    }

    /// The 16-byte authentication tag.
    pub fn tag(&self) -> &'a [u8] {
        &self.bytes[self.plaintext_len() + IV_LEN..]
    }

    /// Length of the plaintext this view decrypts to.
    pub fn plaintext_len(&self) -> usize {
        self.bytes.len() - SEAL_OVERHEAD
    }

    /// Decrypts and authenticates into a fresh vector.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::AuthenticationFailed`] if the data was tampered with or
    /// the wrong key/AAD is supplied.
    pub fn open_with_aad(&self, key: &Key, aad: &[u8]) -> Result<Vec<u8>, CryptoError> {
        let mut out = vec![0u8; self.plaintext_len()];
        self.open_into(&key.gcm(), aad, &mut out)?;
        Ok(out)
    }

    /// Zero-copy decryption: verifies the tag and decrypts into `out` (which must be
    /// exactly [`SealedView::plaintext_len`] bytes) without any heap allocation. On
    /// authentication failure `out` is left untouched.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::BufferLengthMismatch`] for a wrongly sized buffer or
    /// [`CryptoError::AuthenticationFailed`].
    pub fn open_into(&self, gcm: &AesGcm, aad: &[u8], out: &mut [u8]) -> Result<(), CryptoError> {
        self.open_into_with_threads(gcm, aad, out, 1)
    }

    /// [`SealedView::open_into`] with chunk-parallel CTR for large buffers; the
    /// plaintext is bit-identical for every `threads` value.
    ///
    /// # Errors
    ///
    /// Same as [`SealedView::open_into`].
    pub fn open_into_with_threads(
        &self,
        gcm: &AesGcm,
        aad: &[u8],
        out: &mut [u8],
        threads: usize,
    ) -> Result<(), CryptoError> {
        gcm.decrypt_into_with_threads(self.iv(), aad, self.ciphertext(), self.tag(), out, threads)
    }
}

/// A thread-safe source of per-index IVs for *chunk-parallel sealing*: sealing many
/// independent buffers (e.g. the parameter tensors of a mirrored model) across threads.
///
/// A mutable RNG cannot be shared across sealing threads, and handing each thread its
/// own RNG would make the sealed bytes depend on the thread schedule. An `IvSequence`
/// solves both: it is seeded once from fresh randomness, and `iv(index)` is a pure
/// function (`SHA-256(seed || index)` truncated to 12 bytes), so any number of threads
/// can derive IVs without coordination and the sealed output is **independent of the
/// thread count and schedule**.
///
/// # IV uniqueness
///
/// Distinct indices yield distinct IVs under the same seed. The caller must use a
/// *fresh* sequence (fresh random seed) for every sealing batch, exactly as it would
/// draw a fresh random IV per [`SealedBuffer::seal`].
#[derive(Clone)]
pub struct IvSequence {
    seed: [u8; 32],
}

impl fmt::Debug for IvSequence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never print the seed: it determines every IV of the batch.
        f.debug_struct("IvSequence").finish_non_exhaustive()
    }
}

impl IvSequence {
    /// Creates a sequence from an explicit 32-byte seed.
    pub fn from_seed(seed: [u8; 32]) -> Self {
        IvSequence { seed }
    }

    /// Creates a sequence with a fresh random seed drawn from `rng`.
    pub fn from_rng<R: RngCore>(rng: &mut R) -> Self {
        let mut seed = [0u8; 32];
        rng.fill_bytes(&mut seed);
        IvSequence { seed }
    }

    /// The IV for the `index`-th buffer of the batch.
    pub fn iv(&self, index: u64) -> [u8; IV_LEN] {
        let mut hasher = Sha256::new();
        hasher.update(&self.seed);
        hasher.update(&index.to_le_bytes());
        let digest = hasher.finalize();
        let mut iv = [0u8; IV_LEN];
        iv.copy_from_slice(&digest[..IV_LEN]);
        iv
    }
}

/// An encrypted buffer in the on-PM layout used by Plinius:
/// `ciphertext || IV (12 B) || MAC (16 B)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SealedBuffer {
    bytes: Vec<u8>,
}

impl SealedBuffer {
    /// Encrypts `plaintext` under `key` with a freshly generated random IV and returns
    /// the sealed representation.
    ///
    /// # Errors
    ///
    /// Propagates [`CryptoError`] from the underlying GCM operation.
    pub fn seal<R: RngCore>(key: &Key, plaintext: &[u8], rng: &mut R) -> Result<Self, CryptoError> {
        Self::seal_with_aad(key, plaintext, &[], rng)
    }

    /// Like [`SealedBuffer::seal`] but binds additional authenticated data (e.g. a layer
    /// index) into the MAC.
    ///
    /// # Errors
    ///
    /// Propagates [`CryptoError`] from the underlying GCM operation.
    pub fn seal_with_aad<R: RngCore>(
        key: &Key,
        plaintext: &[u8],
        aad: &[u8],
        rng: &mut R,
    ) -> Result<Self, CryptoError> {
        let mut iv = [0u8; IV_LEN];
        rng.fill_bytes(&mut iv);
        Self::seal_with_aad_and_iv(key, plaintext, aad, &iv)
    }

    /// Like [`SealedBuffer::seal_with_aad`] but with a caller-supplied IV, the building
    /// block of chunk-parallel sealing: pair it with an [`IvSequence`] so concurrent
    /// sealing threads derive disjoint IVs without sharing an RNG.
    ///
    /// The caller is responsible for never reusing an `(key, iv)` pair —
    /// [`IvSequence`] guarantees this across one batch when seeded freshly.
    ///
    /// # Errors
    ///
    /// Propagates [`CryptoError`] from the underlying GCM operation.
    pub fn seal_with_aad_and_iv(
        key: &Key,
        plaintext: &[u8],
        aad: &[u8],
        iv: &[u8; IV_LEN],
    ) -> Result<Self, CryptoError> {
        let mut bytes = vec![0u8; sealed_len(plaintext.len())];
        seal_into(&key.gcm(), plaintext, aad, iv, &mut bytes)?;
        Ok(SealedBuffer { bytes })
    }

    /// Re-interprets raw bytes (e.g. read back from PM) as a sealed buffer.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::TruncatedSealedBuffer`] if the data cannot even hold the
    /// 28-byte IV+MAC trailer.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Self, CryptoError> {
        if bytes.len() < SEAL_OVERHEAD {
            return Err(CryptoError::TruncatedSealedBuffer(bytes.len()));
        }
        Ok(SealedBuffer { bytes })
    }

    /// Decrypts and authenticates the buffer, returning the plaintext.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::AuthenticationFailed`] if the buffer was tampered with or
    /// the wrong key/AAD is supplied.
    pub fn open(&self, key: &Key) -> Result<Vec<u8>, CryptoError> {
        self.open_with_aad(key, &[])
    }

    /// Decrypts with additional authenticated data.
    ///
    /// # Errors
    ///
    /// Same as [`SealedBuffer::open`].
    pub fn open_with_aad(&self, key: &Key, aad: &[u8]) -> Result<Vec<u8>, CryptoError> {
        self.as_view().open_with_aad(key, aad)
    }

    /// A borrowed [`SealedView`] over this buffer's bytes (never fails: the trailer
    /// invariant is checked at construction).
    pub fn as_view(&self) -> SealedView<'_> {
        SealedView { bytes: &self.bytes }
    }

    /// The full on-PM byte representation (ciphertext + IV + MAC).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Consumes the buffer and returns the raw bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Total size in bytes, including the 28-byte trailer.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the buffer is empty (it never is: the trailer is always present).
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Length of the plaintext this buffer decrypts to.
    pub fn plaintext_len(&self) -> usize {
        self.bytes.len() - SEAL_OVERHEAD
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn key_length_validation() {
        assert!(Key::new(&[0u8; 16]).is_ok());
        assert!(Key::new(&[0u8; 24]).is_ok());
        assert!(Key::new(&[0u8; 32]).is_ok());
        assert_eq!(
            Key::new(&[0u8; 20]).unwrap_err(),
            CryptoError::InvalidKeyLength(20)
        );
    }

    #[test]
    fn generated_keys_have_expected_sizes_and_differ() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Key::generate_128(&mut rng);
        let b = Key::generate_128(&mut rng);
        assert_eq!(a.bits(), 128);
        assert_ne!(a.as_bytes(), b.as_bytes());
        assert_eq!(Key::generate_256(&mut rng).bits(), 256);
    }

    #[test]
    fn key_debug_hides_bytes() {
        let key = Key::new(&[0xCD; 16]).unwrap();
        let dbg = format!("{key:?}");
        assert!(!dbg.contains("205"));
        assert!(dbg.contains("128"));
    }

    #[test]
    fn sealed_buffer_layout_matches_paper_overhead() {
        let mut rng = StdRng::seed_from_u64(2);
        let key = Key::generate_128(&mut rng);
        let sealed = SealedBuffer::seal(&key, &[0u8; 100], &mut rng).unwrap();
        assert_eq!(sealed.len(), 100 + SEAL_OVERHEAD);
        assert_eq!(sealed.plaintext_len(), 100);
        assert_eq!(SEAL_OVERHEAD, 28);
    }

    #[test]
    fn seal_open_round_trip() {
        let mut rng = StdRng::seed_from_u64(3);
        let key = Key::generate_128(&mut rng);
        let data = b"weights and biases".to_vec();
        let sealed = SealedBuffer::seal(&key, &data, &mut rng).unwrap();
        assert_eq!(sealed.open(&key).unwrap(), data);
    }

    #[test]
    fn open_with_wrong_key_fails() {
        let mut rng = StdRng::seed_from_u64(4);
        let key = Key::generate_128(&mut rng);
        let other = Key::generate_128(&mut rng);
        let sealed = SealedBuffer::seal(&key, b"secret", &mut rng).unwrap();
        assert_eq!(
            sealed.open(&other).unwrap_err(),
            CryptoError::AuthenticationFailed
        );
    }

    #[test]
    fn aad_binds_context() {
        let mut rng = StdRng::seed_from_u64(5);
        let key = Key::generate_128(&mut rng);
        let sealed = SealedBuffer::seal_with_aad(&key, b"w", b"layer-3", &mut rng).unwrap();
        assert_eq!(sealed.open_with_aad(&key, b"layer-3").unwrap(), b"w");
        assert!(sealed.open_with_aad(&key, b"layer-4").is_err());
        assert!(sealed.open(&key).is_err());
    }

    #[test]
    fn tampering_with_stored_bytes_is_detected() {
        let mut rng = StdRng::seed_from_u64(6);
        let key = Key::generate_128(&mut rng);
        let sealed = SealedBuffer::seal(&key, b"model parameters", &mut rng).unwrap();
        let mut raw = sealed.into_bytes();
        raw[3] ^= 0x40;
        let tampered = SealedBuffer::from_bytes(raw).unwrap();
        assert!(tampered.open(&key).is_err());
    }

    #[test]
    fn from_bytes_rejects_truncated_data() {
        assert_eq!(
            SealedBuffer::from_bytes(vec![0u8; 10]).unwrap_err(),
            CryptoError::TruncatedSealedBuffer(10)
        );
    }

    #[test]
    fn empty_plaintext_round_trips() {
        let mut rng = StdRng::seed_from_u64(7);
        let key = Key::generate_128(&mut rng);
        let sealed = SealedBuffer::seal(&key, &[], &mut rng).unwrap();
        assert_eq!(sealed.plaintext_len(), 0);
        assert_eq!(sealed.open(&key).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn fresh_iv_per_seal_gives_distinct_ciphertexts() {
        let mut rng = StdRng::seed_from_u64(8);
        let key = Key::generate_128(&mut rng);
        let a = SealedBuffer::seal(&key, b"same plaintext", &mut rng).unwrap();
        let b = SealedBuffer::seal(&key, b"same plaintext", &mut rng).unwrap();
        assert_ne!(a.as_bytes(), b.as_bytes());
    }

    #[test]
    fn iv_sequence_is_deterministic_distinct_and_sync() {
        // The sequence is shareable across sealing threads without coordination.
        fn assert_sync<T: Sync + Send>() {}
        assert_sync::<IvSequence>();
        let seq = IvSequence::from_seed([7u8; 32]);
        assert_eq!(seq.iv(3), seq.iv(3));
        let mut seen = std::collections::HashSet::new();
        for i in 0..1000u64 {
            assert!(seen.insert(seq.iv(i)), "IV collision at index {i}");
        }
        // A different seed yields a different stream.
        let other = IvSequence::from_seed([8u8; 32]);
        assert_ne!(seq.iv(0), other.iv(0));
        // Debug must not leak the seed.
        assert!(!format!("{seq:?}").contains('7'));
    }

    #[test]
    fn seal_with_explicit_iv_is_deterministic_and_round_trips() {
        let mut rng = StdRng::seed_from_u64(9);
        let key = Key::generate_128(&mut rng);
        let seq = IvSequence::from_rng(&mut rng);
        let a = SealedBuffer::seal_with_aad_and_iv(&key, b"tensor", b"layer0", &seq.iv(0)).unwrap();
        let b = SealedBuffer::seal_with_aad_and_iv(&key, b"tensor", b"layer0", &seq.iv(0)).unwrap();
        // Same (key, iv, aad, plaintext) -> bit-identical sealed bytes: this is what
        // makes parallel sealing independent of the thread schedule.
        assert_eq!(a.as_bytes(), b.as_bytes());
        assert_eq!(a.open_with_aad(&key, b"layer0").unwrap(), b"tensor");
        // A different index gives a different IV, hence different bytes.
        let c = SealedBuffer::seal_with_aad_and_iv(&key, b"tensor", b"layer0", &seq.iv(1)).unwrap();
        assert_ne!(a.as_bytes(), c.as_bytes());
    }

    #[test]
    fn seal_into_matches_sealed_buffer_bytes() {
        let mut rng = StdRng::seed_from_u64(10);
        let key = Key::generate_128(&mut rng);
        let seq = IvSequence::from_rng(&mut rng);
        let plaintext = b"tensor bytes for the arena";
        let boxed =
            SealedBuffer::seal_with_aad_and_iv(&key, plaintext, b"aad", &seq.iv(0)).unwrap();
        let gcm = key.gcm();
        let mut arena = vec![0u8; sealed_len(plaintext.len())];
        seal_into(&gcm, plaintext, b"aad", &seq.iv(0), &mut arena).unwrap();
        assert_eq!(arena, boxed.as_bytes());
        // Wrong-size output buffers are rejected.
        let mut short = vec![0u8; sealed_len(plaintext.len()) - 1];
        assert!(matches!(
            seal_into(&gcm, plaintext, b"aad", &seq.iv(0), &mut short),
            Err(CryptoError::BufferLengthMismatch { .. })
        ));
    }

    #[test]
    fn sealed_view_parses_and_opens_without_copying() {
        let mut rng = StdRng::seed_from_u64(11);
        let key = Key::generate_128(&mut rng);
        let sealed =
            SealedBuffer::seal_with_aad(&key, b"mirrored weights", b"layer0", &mut rng).unwrap();
        let raw = sealed.as_bytes();
        let view = SealedView::parse(raw).unwrap();
        assert_eq!(view.plaintext_len(), 16);
        assert_eq!(view.ciphertext().len(), 16);
        assert_eq!(view.iv().len(), IV_LEN);
        assert_eq!(view.tag().len(), TAG_LEN);
        assert_eq!(
            view.open_with_aad(&key, b"layer0").unwrap(),
            b"mirrored weights"
        );
        // Zero-copy open into a caller buffer.
        let gcm = key.gcm();
        let mut out = [0u8; 16];
        view.open_into(&gcm, b"layer0", &mut out).unwrap();
        assert_eq!(&out, b"mirrored weights");
        // Wrong AAD is rejected before any plaintext is written.
        let mut untouched = [0xEEu8; 16];
        assert!(view.open_into(&gcm, b"layer1", &mut untouched).is_err());
        assert_eq!(untouched, [0xEEu8; 16]);
        // Truncated data cannot be parsed.
        assert!(matches!(
            SealedView::parse(&raw[..SEAL_OVERHEAD - 1]),
            Err(CryptoError::TruncatedSealedBuffer(_))
        ));
        // The view borrowed from a SealedBuffer matches parsing its bytes.
        assert_eq!(sealed.as_view(), view);
    }

    #[test]
    fn error_display_is_lowercase_and_informative() {
        assert_eq!(
            CryptoError::AuthenticationFailed.to_string(),
            "authentication tag verification failed"
        );
        assert!(CryptoError::InvalidKeyLength(7)
            .to_string()
            .contains("7 bytes"));
    }
}
