//! SHA-256 (FIPS 180-4), used for enclave measurements, report MACs and key
//! derivation in the SGX simulator.

/// Size of a SHA-256 digest in bytes.
pub const DIGEST_LEN: usize = 32;

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Incremental SHA-256 hasher.
///
/// The hasher buffers at most one 64-byte block on the stack and performs **no heap
/// allocation**, so it can run on the allocation-free sealing path (per-tensor IV
/// derivation via [`crate::IvSequence`]).
#[derive(Debug, Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buffer: [u8; 64],
    buffered: usize,
    length_bits: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha256 {
            state: [
                0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
                0x5be0cd19,
            ],
            buffer: [0u8; 64],
            buffered: 0,
            length_bits: 0,
        }
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, mut data: &[u8]) {
        self.length_bits = self.length_bits.wrapping_add((data.len() as u64) * 8);
        // Top up a partially filled block first.
        if self.buffered > 0 {
            let take = (64 - self.buffered).min(data.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&data[..take]);
            self.buffered += take;
            if self.buffered < 64 {
                return; // input exhausted without completing the block
            }
            let block = self.buffer;
            self.compress(&block);
            self.buffered = 0;
            data = &data[take..];
        }
        // Full blocks straight from the input, no copy through the buffer.
        let mut chunks = data.chunks_exact(64);
        for chunk in &mut chunks {
            let block: [u8; 64] = chunk.try_into().expect("64-byte block");
            self.compress(&block);
        }
        let rem = chunks.remainder();
        self.buffer[..rem.len()].copy_from_slice(rem);
        self.buffered = rem.len();
    }

    /// Finishes the hash and returns the 32-byte digest.
    pub fn finalize(mut self) -> [u8; DIGEST_LEN] {
        let len_bits = self.length_bits;
        let mut block = [0u8; 64];
        block[..self.buffered].copy_from_slice(&self.buffer[..self.buffered]);
        block[self.buffered] = 0x80;
        if self.buffered < 56 {
            block[56..].copy_from_slice(&len_bits.to_be_bytes());
            self.compress(&block);
        } else {
            // The length does not fit after the 0x80 marker: one extra block.
            self.compress(&block);
            let mut last = [0u8; 64];
            last[56..].copy_from_slice(&len_bits.to_be_bytes());
            self.compress(&last);
        }
        let mut out = [0u8; DIGEST_LEN];
        for (i, word) in self.state.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    /// One-shot digest of `data`.
    pub fn digest(data: &[u8]) -> [u8; DIGEST_LEN] {
        let mut h = Sha256::new();
        h.update(data);
        h.finalize()
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks(4).enumerate() {
            w[i] = u32::from_be_bytes(chunk.try_into().expect("4-byte word"));
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ ((!e) & g);
            let temp1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let temp2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(temp1);
            d = c;
            c = b;
            b = a;
            a = temp1.wrapping_add(temp2);
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// HMAC-SHA256 (RFC 2104), used to key-derive sealing keys and MAC attestation reports.
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; DIGEST_LEN] {
    const BLOCK: usize = 64;
    let mut key_block = [0u8; BLOCK];
    if key.len() > BLOCK {
        key_block[..DIGEST_LEN].copy_from_slice(&Sha256::digest(key));
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }
    let mut ipad = [0u8; BLOCK];
    let mut opad = [0u8; BLOCK];
    for i in 0..BLOCK {
        ipad[i] = key_block[i] ^ 0x36;
        opad[i] = key_block[i] ^ 0x5c;
    }
    let mut inner = Sha256::new();
    inner.update(&ipad);
    inner.update(message);
    let inner_digest = inner.finalize();
    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn empty_string_vector() {
        assert_eq!(
            Sha256::digest(b"").to_vec(),
            hex("e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855")
        );
    }

    #[test]
    fn abc_vector() {
        assert_eq!(
            Sha256::digest(b"abc").to_vec(),
            hex("ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad")
        );
    }

    #[test]
    fn two_block_vector() {
        assert_eq!(
            Sha256::digest(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").to_vec(),
            hex("248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1")
        );
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data: Vec<u8> = (0..1000u32).flat_map(|i| i.to_le_bytes()).collect();
        let mut h = Sha256::new();
        for chunk in data.chunks(17) {
            h.update(chunk);
        }
        assert_eq!(h.finalize(), Sha256::digest(&data));
    }

    #[test]
    fn hmac_rfc4231_case_2() {
        // RFC 4231 test case 2: key "Jefe", message "what do ya want for nothing?".
        let mac = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            mac.to_vec(),
            hex("5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843")
        );
    }

    #[test]
    fn hmac_long_key_is_hashed_first() {
        let key = vec![0xaa; 131];
        let mac = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            mac.to_vec(),
            hex("60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54")
        );
    }

    #[test]
    fn different_inputs_give_different_digests() {
        assert_ne!(Sha256::digest(b"model-a"), Sha256::digest(b"model-b"));
    }
}
