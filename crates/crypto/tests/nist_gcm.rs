//! NIST SP 800-38D (GCM spec, Appendix B) multi-block test vectors.
//!
//! The unit tests inside `gcm.rs` cover cases 1-4 (AES-128, 96-bit IV); this suite
//! adds the harder shapes the engines must get right: multi-block messages with
//! AAD and a partial final block, **non-96-bit IVs** (8-byte and 60-byte, which take
//! the GHASH-based J0 derivation), and the AES-192/AES-256 key sizes. Every vector is
//! checked on **every engine** (hardware when the host supports it, scalar, and the
//! retained reference kernels), on the explicit `encrypt_reference` entry point, and
//! through cross-engine decrypt round-trips (sealed on one engine, opened on another).

use plinius_crypto::{Aes, AesGcm, EnginePolicy};

fn hex(s: &str) -> Vec<u8> {
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
        .collect()
}

/// Every engine constructible on this host: auto (= hardware on AES-NI machines),
/// scalar, and reference. On a non-x86_64 host auto degrades to scalar, so the
/// suite still pins scalar-vs-reference there.
fn engines(key: &[u8]) -> Vec<AesGcm> {
    [
        EnginePolicy::Auto,
        EnginePolicy::Scalar,
        EnginePolicy::Reference,
    ]
    .into_iter()
    .map(|p| AesGcm::with_policy(Aes::new(key), p))
    .collect()
}

/// The 60-byte plaintext shared by cases 4-6, 10 and 16 (3 full blocks + 12 bytes).
const PT_60: &str = "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72\
                     1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39";

/// The 20-byte AAD shared by the AAD-bearing cases.
const AAD_20: &str = "feedfacedeadbeeffeedfacedeadbeefabaddad2";

/// Runs one vector on every engine, the explicit reference entry point, and
/// cross-engine decrypt round-trips.
fn check(key: &str, iv: &str, aad: &str, pt: &str, expect_ct: &str, expect_tag: &str) {
    let (key, iv, aad, pt) = (hex(key), hex(iv), hex(aad), hex(pt));
    let all = engines(&key);
    for gcm in &all {
        let (ct, tag) = gcm.encrypt(&iv, &aad, &pt).unwrap();
        let engine = gcm.engine_name();
        assert_eq!(ct, hex(expect_ct), "ciphertext ({engine})");
        assert_eq!(tag.to_vec(), hex(expect_tag), "tag ({engine})");
        let (ct_ref, tag_ref) = gcm.encrypt_reference(&iv, &aad, &pt).unwrap();
        assert_eq!(ct_ref, ct, "reference kernels must agree ({engine})");
        assert_eq!(tag_ref, tag, "reference tag must agree ({engine})");
        // Sealed-bytes portability across engines: what any engine produced, every
        // engine (including itself) must open.
        for opener in &all {
            assert_eq!(
                opener.decrypt(&iv, &aad, &ct, &tag).unwrap(),
                pt,
                "round trip {} -> {}",
                engine,
                opener.engine_name()
            );
        }
    }
}

/// Case 5: AES-128, 8-byte IV (GHASH-derived J0), AAD, partial final block.
#[test]
fn case_5_aes128_64bit_iv() {
    check(
        "feffe9928665731c6d6a8f9467308308",
        "cafebabefacedbad",
        AAD_20,
        PT_60,
        "61353b4c2806934a777ff51fa22a4755699b2a714fcdc6f83766e5f97b6c7423\
         73806900e49f24b22b097544d4896b424989b5e1ebac0f07c23f4598",
        "3612d2e79e3b0785561be14aaca2fccb",
    );
}

/// Case 6: AES-128, 60-byte IV (GHASH-derived J0 over several blocks), AAD.
#[test]
fn case_6_aes128_480bit_iv() {
    check(
        "feffe9928665731c6d6a8f9467308308",
        "9313225df88406e555909c5aff5269aa6a7a9538534f7da1e4c303d2a318a728\
         c3c0c95156809539fcf0e2429a6b525416aedbf5a0de6a57a637b39b",
        AAD_20,
        PT_60,
        "8ce24998625615b603a033aca13fb894be9112a5c3a211a8ba262a3cca7e2ca7\
         01e4a9a4fba43c90ccdcb281d48c7c6fd62875d2aca417034c34aee5",
        "619cc5aefffe0bfa462af43c1699d050",
    );
}

/// Case 10: AES-192, 96-bit IV, AAD, partial final block.
#[test]
fn case_10_aes192_with_aad() {
    check(
        "feffe9928665731c6d6a8f9467308308feffe9928665731c",
        "cafebabefacedbaddecaf888",
        AAD_20,
        PT_60,
        "3980ca0b3c00e841eb06fac4872a2757859e1ceaa6efd984628593b40ca1e19c\
         7d773d00c144c525ac619d18c84a3f4718e2448b2fe324d9ccda2710",
        "2519498e80f1478f37ba55bd6d27618c",
    );
}

/// Case 15: AES-256, four full blocks of plaintext, no AAD.
#[test]
fn case_15_aes256_four_blocks() {
    check(
        "feffe9928665731c6d6a8f9467308308feffe9928665731c6d6a8f9467308308",
        "cafebabefacedbaddecaf888",
        "",
        "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72\
         1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b391aafd255",
        "522dc1f099567d07f47f37a32a84427d643a8cdcbfe5c0c97598a2bd2555d1aa\
         8cb08e48590dbb3da7b08b1056828838c5f61e6393ba7a0abcc9f662898015ad",
        "b094dac5d93471bdec1a502270e3cc6c",
    );
}

/// Case 16: AES-256 with AAD and a partial final block.
#[test]
fn case_16_aes256_with_aad() {
    check(
        "feffe9928665731c6d6a8f9467308308feffe9928665731c6d6a8f9467308308",
        "cafebabefacedbaddecaf888",
        AAD_20,
        PT_60,
        "522dc1f099567d07f47f37a32a84427d643a8cdcbfe5c0c97598a2bd2555d1aa\
         8cb08e48590dbb3da7b08b1056828838c5f61e6393ba7a0abcc9f662",
        "76fc6ece0f4e1768cddf8853bb2d551b",
    );
}

/// Tampering with any of the non-96-bit-IV vectors is still caught.
#[test]
fn non_96_bit_iv_tamper_detection() {
    let gcm = AesGcm::from_key(&hex("feffe9928665731c6d6a8f9467308308"));
    let iv = hex("cafebabefacedbad");
    let (ct, mut tag) = gcm.encrypt(&iv, &hex(AAD_20), &hex(PT_60)).unwrap();
    tag[15] ^= 0x80;
    assert!(gcm.decrypt(&iv, &hex(AAD_20), &ct, &tag).is_err());
}
