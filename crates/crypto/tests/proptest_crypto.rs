//! Property-based tests for the crypto substrate: AES-GCM round-trips, tamper
//! detection, and hash/HMAC determinism over arbitrary inputs.

use plinius_crypto::{CryptoError, Key, SealedBuffer, Sha256, SEAL_OVERHEAD};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any plaintext sealed under any 128-bit key opens back to the same bytes.
    #[test]
    fn seal_open_round_trip(seed in any::<u64>(), data in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let mut rng = StdRng::seed_from_u64(seed);
        let key = Key::generate_128(&mut rng);
        let sealed = SealedBuffer::seal(&key, &data, &mut rng).unwrap();
        prop_assert_eq!(sealed.len(), data.len() + SEAL_OVERHEAD);
        prop_assert_eq!(sealed.open(&key).unwrap(), data);
    }

    /// Flipping any single bit of the sealed representation breaks authentication.
    #[test]
    fn any_single_bitflip_is_detected(
        seed in any::<u64>(),
        data in proptest::collection::vec(any::<u8>(), 1..512),
        byte_choice in any::<u16>(),
        bit in 0u8..8,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let key = Key::generate_128(&mut rng);
        let sealed = SealedBuffer::seal(&key, &data, &mut rng).unwrap();
        let mut raw = sealed.into_bytes();
        let idx = byte_choice as usize % raw.len();
        raw[idx] ^= 1 << bit;
        let tampered = SealedBuffer::from_bytes(raw).unwrap();
        prop_assert_eq!(tampered.open(&key).unwrap_err(), CryptoError::AuthenticationFailed);
    }

    /// Decrypting with a different key never succeeds.
    #[test]
    fn wrong_key_never_opens(seed in any::<u64>(), data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let mut rng = StdRng::seed_from_u64(seed);
        let key = Key::generate_128(&mut rng);
        let wrong = Key::generate_128(&mut rng);
        prop_assume!(key.as_bytes() != wrong.as_bytes());
        let sealed = SealedBuffer::seal(&key, &data, &mut rng).unwrap();
        prop_assert!(sealed.open(&wrong).is_err());
    }

    /// AAD participates in authentication: a mismatched AAD never opens.
    #[test]
    fn aad_mismatch_never_opens(
        seed in any::<u64>(),
        data in proptest::collection::vec(any::<u8>(), 0..256),
        aad_a in proptest::collection::vec(any::<u8>(), 0..32),
        aad_b in proptest::collection::vec(any::<u8>(), 0..32),
    ) {
        prop_assume!(aad_a != aad_b);
        let mut rng = StdRng::seed_from_u64(seed);
        let key = Key::generate_128(&mut rng);
        let sealed = SealedBuffer::seal_with_aad(&key, &data, &aad_a, &mut rng).unwrap();
        prop_assert_eq!(sealed.open_with_aad(&key, &aad_a).unwrap(), data);
        prop_assert!(sealed.open_with_aad(&key, &aad_b).is_err());
    }

    /// SHA-256 is deterministic and the incremental API agrees with the one-shot API
    /// regardless of how the input is chunked.
    #[test]
    fn sha256_chunking_invariance(data in proptest::collection::vec(any::<u8>(), 0..4096), chunk in 1usize..97) {
        let one_shot = Sha256::digest(&data);
        let mut h = Sha256::new();
        for c in data.chunks(chunk) {
            h.update(c);
        }
        prop_assert_eq!(h.finalize(), one_shot);
    }

    /// 256-bit keys round-trip just like 128-bit keys.
    #[test]
    fn aes256_round_trip(seed in any::<u64>(), data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut rng = StdRng::seed_from_u64(seed);
        let key = Key::generate_256(&mut rng);
        let sealed = SealedBuffer::seal(&key, &data, &mut rng).unwrap();
        prop_assert_eq!(sealed.open(&key).unwrap(), data);
    }
}
