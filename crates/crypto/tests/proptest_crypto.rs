//! Property-based tests for the crypto substrate: AES-GCM round-trips, tamper
//! detection, hash/HMAC determinism, and the byte-for-byte pin of **all three
//! engines** — hardware (AES-NI + PCLMUL, when the host supports it), scalar
//! (T-table AES + Shoup GHASH) and the retained reference kernels — against each
//! other on ciphertext *and* tag.

use plinius_crypto::{
    seal_into, seal_into_with_threads, sealed_len, Aes, AesGcm, CryptoError, EnginePolicy, Key,
    SealedBuffer, SealedView, Sha256, SEAL_OVERHEAD,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// One context per constructible engine: auto (= hardware on AES-NI hosts, scalar
/// elsewhere), forced scalar, and forced reference.
fn engines(key: &[u8]) -> Vec<AesGcm> {
    [
        EnginePolicy::Auto,
        EnginePolicy::Scalar,
        EnginePolicy::Reference,
    ]
    .into_iter()
    .map(|p| AesGcm::with_policy(Aes::new(key), p))
    .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any plaintext sealed under any 128-bit key opens back to the same bytes.
    #[test]
    fn seal_open_round_trip(seed in any::<u64>(), data in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let mut rng = StdRng::seed_from_u64(seed);
        let key = Key::generate_128(&mut rng);
        let sealed = SealedBuffer::seal(&key, &data, &mut rng).unwrap();
        prop_assert_eq!(sealed.len(), data.len() + SEAL_OVERHEAD);
        prop_assert_eq!(sealed.open(&key).unwrap(), data);
    }

    /// Flipping any single bit of the sealed representation breaks authentication.
    #[test]
    fn any_single_bitflip_is_detected(
        seed in any::<u64>(),
        data in proptest::collection::vec(any::<u8>(), 1..512),
        byte_choice in any::<u16>(),
        bit in 0u8..8,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let key = Key::generate_128(&mut rng);
        let sealed = SealedBuffer::seal(&key, &data, &mut rng).unwrap();
        let mut raw = sealed.into_bytes();
        let idx = byte_choice as usize % raw.len();
        raw[idx] ^= 1 << bit;
        let tampered = SealedBuffer::from_bytes(raw).unwrap();
        prop_assert_eq!(tampered.open(&key).unwrap_err(), CryptoError::AuthenticationFailed);
    }

    /// Decrypting with a different key never succeeds.
    #[test]
    fn wrong_key_never_opens(seed in any::<u64>(), data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let mut rng = StdRng::seed_from_u64(seed);
        let key = Key::generate_128(&mut rng);
        let wrong = Key::generate_128(&mut rng);
        prop_assume!(key.as_bytes() != wrong.as_bytes());
        let sealed = SealedBuffer::seal(&key, &data, &mut rng).unwrap();
        prop_assert!(sealed.open(&wrong).is_err());
    }

    /// AAD participates in authentication: a mismatched AAD never opens.
    #[test]
    fn aad_mismatch_never_opens(
        seed in any::<u64>(),
        data in proptest::collection::vec(any::<u8>(), 0..256),
        aad_a in proptest::collection::vec(any::<u8>(), 0..32),
        aad_b in proptest::collection::vec(any::<u8>(), 0..32),
    ) {
        prop_assume!(aad_a != aad_b);
        let mut rng = StdRng::seed_from_u64(seed);
        let key = Key::generate_128(&mut rng);
        let sealed = SealedBuffer::seal_with_aad(&key, &data, &aad_a, &mut rng).unwrap();
        prop_assert_eq!(sealed.open_with_aad(&key, &aad_a).unwrap(), data);
        prop_assert!(sealed.open_with_aad(&key, &aad_b).is_err());
    }

    /// SHA-256 is deterministic and the incremental API agrees with the one-shot API
    /// regardless of how the input is chunked.
    #[test]
    fn sha256_chunking_invariance(data in proptest::collection::vec(any::<u8>(), 0..4096), chunk in 1usize..97) {
        let one_shot = Sha256::digest(&data);
        let mut h = Sha256::new();
        for c in data.chunks(chunk) {
            h.update(c);
        }
        prop_assert_eq!(h.finalize(), one_shot);
    }

    /// 256-bit keys round-trip just like 128-bit keys.
    #[test]
    fn aes256_round_trip(seed in any::<u64>(), data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut rng = StdRng::seed_from_u64(seed);
        let key = Key::generate_256(&mut rng);
        let sealed = SealedBuffer::seal(&key, &data, &mut rng).unwrap();
        prop_assert_eq!(sealed.open(&key).unwrap(), data);
    }

    /// All constructible engines — hardware (AES-NI + PCLMUL, on hosts that have it),
    /// the table-driven scalar engine, and the retained reference kernels — are pinned
    /// byte-for-byte to each other on ciphertext *and* tag, for every key size,
    /// arbitrary AAD, and both 96-bit and GHASH-derived IV shapes.
    #[test]
    fn engines_are_byte_identical(
        seed in any::<u64>(),
        key_choice in 0u8..3,
        iv_len in prop_oneof![Just(12usize), 1usize..64],
        aad in proptest::collection::vec(any::<u8>(), 0..48),
        data in proptest::collection::vec(any::<u8>(), 0..2048),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut key = vec![0u8; [16, 24, 32][key_choice as usize]];
        rng.fill_bytes(&mut key);
        let mut iv = vec![0u8; iv_len];
        rng.fill_bytes(&mut iv);
        let all = engines(&key);
        let baseline = all[0].encrypt_reference(&iv, &aad, &data).unwrap();
        for gcm in &all {
            let out = gcm.encrypt(&iv, &aad, &data).unwrap();
            prop_assert_eq!(&out, &baseline, "engine {} diverges from reference", gcm.engine_name());
            let (ct, tag) = out;
            prop_assert_eq!(gcm.decrypt(&iv, &aad, &ct, &tag).unwrap(), data.clone());
        }
    }

    /// Chunked/threaded `seal_into` on the auto-selected engine (hardware on AES-NI
    /// hosts) is bit-identical to the serial scalar seal at counter-boundary splits:
    /// sizes straddling the 64 KiB parallel chunk boundary, for every thread count
    /// and a handful of offsets around the exact boundary.
    #[test]
    fn threaded_hw_seal_matches_scalar_at_chunk_boundaries(
        boundary_mult in 1usize..4,
        offset in prop_oneof![Just(-17i64), Just(-1), Just(0), Just(1), Just(15), Just(4096)],
        threads in 1usize..6,
        seed in any::<u64>(),
    ) {
        let size = ((boundary_mult * 64 * 1024) as i64 + offset) as usize;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut key = [0u8; 16];
        rng.fill_bytes(&mut key);
        let mut data = vec![0u8; size];
        rng.fill_bytes(&mut data);
        let iv = [0x5au8; 12];
        let scalar = AesGcm::with_policy(Aes::new(&key), EnginePolicy::Scalar);
        let mut want = vec![0u8; sealed_len(size)];
        seal_into(&scalar, &data, b"hw", &iv, &mut want).unwrap();
        let auto = AesGcm::with_policy(Aes::new(&key), EnginePolicy::Auto);
        let mut got = vec![0u8; sealed_len(size)];
        seal_into_with_threads(&auto, &data, b"hw", &iv, &mut got, threads).unwrap();
        prop_assert_eq!(got, want, "engine {} with {} threads diverges", auto.engine_name(), threads);
    }

    /// Zero-copy sealing into an arena slice produces exactly the bytes of the
    /// allocating API, for every thread count, and opens back through a borrowed view.
    #[test]
    fn seal_into_and_view_match_sealed_buffer(
        seed in any::<u64>(),
        aad in proptest::collection::vec(any::<u8>(), 0..32),
        data in proptest::collection::vec(any::<u8>(), 0..1024),
        threads in 1usize..5,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let key = Key::generate_128(&mut rng);
        let mut iv = [0u8; 12];
        rng.fill_bytes(&mut iv);
        let boxed = SealedBuffer::seal_with_aad_and_iv(&key, &data, &aad, &iv).unwrap();
        let gcm = key.gcm();
        let mut arena = vec![0u8; sealed_len(data.len())];
        seal_into_with_threads(&gcm, &data, &aad, &iv, &mut arena, threads).unwrap();
        prop_assert_eq!(&arena, boxed.as_bytes());
        let view = SealedView::parse(&arena).unwrap();
        let mut opened = vec![0u8; view.plaintext_len()];
        view.open_into(&gcm, &aad, &mut opened).unwrap();
        prop_assert_eq!(opened, data);
    }

    /// `seal_into` (serial) and the threaded variant agree for chunk-crossing sizes.
    #[test]
    fn threaded_seal_is_thread_count_invariant(
        size in prop_oneof![Just(0usize), 1usize..2048, (128usize * 1024)..(192 * 1024)],
        threads in 2usize..5,
    ) {
        let mut rng = StdRng::seed_from_u64(size as u64);
        let key = Key::generate_128(&mut rng);
        let gcm = key.gcm();
        let mut data = vec![0u8; size];
        rng.fill_bytes(&mut data);
        let iv = [7u8; 12];
        let mut serial = vec![0u8; sealed_len(size)];
        seal_into(&gcm, &data, b"t", &iv, &mut serial).unwrap();
        let mut parallel = vec![0u8; sealed_len(size)];
        seal_into_with_threads(&gcm, &data, b"t", &iv, &mut parallel, threads).unwrap();
        prop_assert_eq!(serial, parallel);
    }
}
