//! Release-mode throughput sanity for the AEAD engines, engine-aware:
//!
//! * the **scalar** (T-table/Shoup) engine must beat the retained byte-wise /
//!   bit-serial reference kernels by a wide margin on a mirror-sized buffer, and
//! * on hosts with AES-NI + PCLMUL, the **hardware** engine must beat the
//!   reference by a much wider margin and the scalar engine by a real one.
//!
//! The tests are `#[ignore]`d: wall-clock ratios are only meaningful in release
//! builds, so the CI release job runs them explicitly with
//! `cargo test --release -p plinius-crypto -- --ignored`.

use plinius_crypto::{hw_available, Aes, AesGcm, EnginePolicy};
use std::time::Instant;

/// Best-of-N wall-clock seconds for one run of `f`.
fn best_of<F: FnMut()>(n: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..n {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// Warm up one engine on the shared buffer, check bit-agreement with the
/// reference kernels, and return best-of-N seconds per 1 MiB encrypt.
fn measure(gcm: &AesGcm, data: &[u8], threads: usize, rounds: usize) -> f64 {
    let iv = [9u8; 12];
    let aad = b"throughput-gate";
    let baseline = gcm.encrypt_reference(&iv, aad, data).unwrap();
    let mut out = vec![0u8; data.len()];
    let tag = gcm
        .encrypt_into_with_threads(&iv, aad, data, &mut out, threads)
        .unwrap();
    assert_eq!(
        (out.clone(), tag),
        baseline,
        "engine {} must agree bit-for-bit with the reference kernels",
        gcm.engine_name()
    );
    best_of(rounds, || {
        let _ = gcm
            .encrypt_into_with_threads(&iv, aad, data, &mut out, threads)
            .unwrap();
    })
}

/// The scalar engine keeps its historical floor over the reference kernels,
/// independent of what hardware the host has.
#[test]
#[ignore = "wall-clock throughput gate; run with --release (see CI release job)"]
fn scalar_gcm_beats_reference_on_1mib() {
    let gcm = AesGcm::with_policy(Aes::new(&[0x42u8; 16]), EnginePolicy::Scalar);
    let data = vec![7u8; 1 << 20];
    let threads = plinius_parallel::max_threads();
    let iv = [9u8; 12];
    let aad = b"throughput-gate";

    let reference_s = best_of(3, || {
        let _ = gcm.encrypt_reference(&iv, aad, &data).unwrap();
    });
    let single_s = measure(&gcm, &data, 1, 5);
    let threaded_s = measure(&gcm, &data, threads, 5);
    let single_x = reference_s / single_s;
    let threaded_x = reference_s / threaded_s;
    println!(
        "AES-GCM 1 MiB: reference {:.1} MiB/s | scalar 1-thread {:.1} MiB/s ({single_x:.1}x) | \
         scalar {threads}-thread {:.1} MiB/s ({threaded_x:.1}x)",
        1.0 / reference_s,
        1.0 / single_s,
        1.0 / threaded_s,
    );
    assert!(
        single_x >= 3.0,
        "single-thread scalar GCM must be at least 3x the reference (got {single_x:.2}x)"
    );
    // On a single-core host the threaded path degenerates to the single-thread one,
    // which measures ~5x here — too thin a margin for a wall-clock gate. Require the
    // full 5x only where the chunk-parallel CTR actually has cores to use.
    let threaded_floor = if threads > 1 { 5.0 } else { 4.0 };
    assert!(
        threaded_x >= threaded_floor,
        "scalar GCM (engine threads available: {threads}) must be at least \
         {threaded_floor}x the reference on 1 MiB (got {threaded_x:.2}x)"
    );
}

/// On AES-NI + PCLMUL hosts the hardware engine must be at least 15x the
/// reference kernels and at least 3x the scalar engine. Elsewhere the test
/// reports a skip and passes.
#[test]
#[ignore = "wall-clock throughput gate; run with --release (see CI release job)"]
fn hw_gcm_beats_scalar_on_1mib() {
    if !hw_available() {
        eprintln!("skipping: host lacks AES-NI/PCLMUL, no hardware engine to gate");
        return;
    }
    let key = [0x42u8; 16];
    let data = vec![7u8; 1 << 20];
    let iv = [9u8; 12];
    let aad = b"throughput-gate";

    let hw = AesGcm::with_policy(Aes::new(&key), EnginePolicy::Auto);
    assert_eq!(
        hw.engine_name(),
        "aesni+pclmul",
        "auto policy must pick the hardware engine when the host supports it"
    );
    let scalar = AesGcm::with_policy(Aes::new(&key), EnginePolicy::Scalar);

    let reference_s = best_of(3, || {
        let _ = hw.encrypt_reference(&iv, aad, &data).unwrap();
    });
    let scalar_s = measure(&scalar, &data, 1, 5);
    let hw_s = measure(&hw, &data, 1, 7);
    let vs_reference = reference_s / hw_s;
    let vs_scalar = scalar_s / hw_s;
    println!(
        "AES-GCM 1 MiB: reference {:.1} MiB/s | scalar {:.1} MiB/s | \
         aesni+pclmul {:.1} MiB/s ({vs_reference:.1}x reference, {vs_scalar:.1}x scalar)",
        1.0 / reference_s,
        1.0 / scalar_s,
        1.0 / hw_s,
    );
    assert!(
        vs_reference >= 15.0,
        "hardware GCM must be at least 15x the reference kernels (got {vs_reference:.2}x)"
    );
    assert!(
        vs_scalar >= 3.0,
        "hardware GCM must be at least 3x the scalar engine (got {vs_scalar:.2}x)"
    );
}
