//! Release-mode throughput sanity for the AEAD engine: the T-table/Shoup fast path
//! must beat the retained byte-wise/bit-serial reference kernels by a wide margin on a
//! mirror-sized buffer.
//!
//! The test is `#[ignore]`d: wall-clock ratios are only meaningful in release builds,
//! so the CI release job runs it explicitly with
//! `cargo test --release -p plinius-crypto -- --ignored`.

use plinius_crypto::AesGcm;
use std::time::Instant;

/// Best-of-N wall-clock seconds for one run of `f`.
fn best_of<F: FnMut()>(n: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..n {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

#[test]
#[ignore = "wall-clock throughput gate; run with --release (see CI release job)"]
fn fast_gcm_beats_reference_on_1mib() {
    let gcm = AesGcm::from_key(&[0x42u8; 16]);
    let data = vec![7u8; 1 << 20];
    let iv = [9u8; 12];
    let aad = b"throughput-gate";
    let threads = plinius_parallel::max_threads();
    // Warm-up both paths (page in tables, stabilise frequency) and check agreement.
    let baseline = gcm.encrypt_reference(&iv, aad, &data).unwrap();
    let mut out = vec![0u8; data.len()];
    let tag = gcm
        .encrypt_into_with_threads(&iv, aad, &data, &mut out, threads)
        .unwrap();
    assert_eq!(
        (out.clone(), tag),
        baseline,
        "kernels must agree bit-for-bit"
    );

    let reference_s = best_of(3, || {
        let _ = gcm.encrypt_reference(&iv, aad, &data).unwrap();
    });
    let single_s = best_of(5, || {
        let _ = gcm.encrypt_into(&iv, aad, &data, &mut out).unwrap();
    });
    let threaded_s = best_of(5, || {
        let _ = gcm
            .encrypt_into_with_threads(&iv, aad, &data, &mut out, threads)
            .unwrap();
    });
    let single_x = reference_s / single_s;
    let threaded_x = reference_s / threaded_s;
    println!(
        "AES-GCM 1 MiB: reference {:.1} MiB/s | fast 1-thread {:.1} MiB/s ({single_x:.1}x) | \
         fast {threads}-thread {:.1} MiB/s ({threaded_x:.1}x)",
        1.0 / reference_s,
        1.0 / single_s,
        1.0 / threaded_s,
    );
    assert!(
        single_x >= 3.0,
        "single-thread fast GCM must be at least 3x the reference (got {single_x:.2}x)"
    );
    // On a single-core host the threaded path degenerates to the single-thread one,
    // which measures ~5x here — too thin a margin for a wall-clock gate. Require the
    // full 5x only where the chunk-parallel CTR actually has cores to use.
    let threaded_floor = if threads > 1 { 5.0 } else { 4.0 };
    assert!(
        threaded_x >= threaded_floor,
        "fast GCM (engine threads available: {threads}) must be at least \
         {threaded_floor}x the reference on 1 MiB (got {threaded_x:.2}x)"
    );
}
