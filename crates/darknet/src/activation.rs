//! Activation functions supported by the layer implementations. The paper's models use
//! leaky rectified linear units (LReLU) in every convolutional layer and softmax outputs;
//! the remaining variants exist because Darknet configuration files may request them.

use std::fmt;
use std::str::FromStr;

/// An element-wise activation function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Activation {
    /// Identity.
    Linear,
    /// Rectified linear unit: `max(0, x)`.
    Relu,
    /// Leaky ReLU with slope 0.1 for negative inputs (Darknet's `leaky`).
    #[default]
    Leaky,
    /// Logistic sigmoid.
    Logistic,
    /// Hyperbolic tangent.
    Tanh,
}

impl Activation {
    /// Applies the activation to a single value.
    pub fn apply(&self, x: f32) -> f32 {
        match self {
            Activation::Linear => x,
            Activation::Relu => {
                if x > 0.0 {
                    x
                } else {
                    0.0
                }
            }
            Activation::Leaky => {
                if x > 0.0 {
                    x
                } else {
                    0.1 * x
                }
            }
            Activation::Logistic => 1.0 / (1.0 + (-x).exp()),
            Activation::Tanh => x.tanh(),
        }
    }

    /// Derivative of the activation expressed in terms of the *activated* output `y`
    /// (the convention Darknet uses, which avoids storing pre-activation values).
    pub fn gradient(&self, y: f32) -> f32 {
        match self {
            Activation::Linear => 1.0,
            Activation::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Leaky => {
                if y > 0.0 {
                    1.0
                } else {
                    0.1
                }
            }
            Activation::Logistic => y * (1.0 - y),
            Activation::Tanh => 1.0 - y * y,
        }
    }

    /// Applies the activation to a whole buffer in place.
    pub fn apply_slice(&self, xs: &mut [f32]) {
        for x in xs.iter_mut() {
            *x = self.apply(*x);
        }
    }

    /// Multiplies `delta` by the activation gradient evaluated at the activated
    /// outputs `ys`.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn gradient_slice(&self, ys: &[f32], delta: &mut [f32]) {
        assert_eq!(ys.len(), delta.len(), "gradient length mismatch");
        for (d, y) in delta.iter_mut().zip(ys.iter()) {
            *d *= self.gradient(*y);
        }
    }
}

impl fmt::Display for Activation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Activation::Linear => "linear",
            Activation::Relu => "relu",
            Activation::Leaky => "leaky",
            Activation::Logistic => "logistic",
            Activation::Tanh => "tanh",
        };
        write!(f, "{name}")
    }
}

/// Error returned when parsing an unknown activation name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseActivationError(pub String);

impl fmt::Display for ParseActivationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown activation '{}'", self.0)
    }
}

impl std::error::Error for ParseActivationError {}

impl FromStr for Activation {
    type Err = ParseActivationError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "linear" => Ok(Activation::Linear),
            "relu" => Ok(Activation::Relu),
            "leaky" | "lrelu" => Ok(Activation::Leaky),
            "logistic" | "sigmoid" => Ok(Activation::Logistic),
            "tanh" => Ok(Activation::Tanh),
            other => Err(ParseActivationError(other.to_owned())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaky_matches_darknet_definition() {
        let a = Activation::Leaky;
        assert_eq!(a.apply(2.0), 2.0);
        assert!((a.apply(-2.0) + 0.2).abs() < 1e-6);
        assert_eq!(a.gradient(1.0), 1.0);
        assert_eq!(a.gradient(-0.5), 0.1);
    }

    #[test]
    fn relu_and_linear() {
        assert_eq!(Activation::Relu.apply(-3.0), 0.0);
        assert_eq!(Activation::Relu.apply(3.0), 3.0);
        assert_eq!(Activation::Relu.gradient(0.0), 0.0);
        assert_eq!(Activation::Linear.apply(-3.0), -3.0);
        assert_eq!(Activation::Linear.gradient(123.0), 1.0);
    }

    #[test]
    fn logistic_and_tanh_ranges() {
        let s = Activation::Logistic.apply(0.0);
        assert!((s - 0.5).abs() < 1e-6);
        assert!((Activation::Logistic.gradient(0.5) - 0.25).abs() < 1e-6);
        assert!((Activation::Tanh.apply(0.0)).abs() < 1e-6);
        assert!((Activation::Tanh.gradient(0.0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn numerical_gradient_check() {
        // d/dx f(x) evaluated via finite differences must match gradient(f(x)).
        let eps = 1e-3f32;
        for act in [
            Activation::Linear,
            Activation::Leaky,
            Activation::Logistic,
            Activation::Tanh,
        ] {
            for &x in &[-1.7f32, -0.3, 0.4, 2.1] {
                let numeric = (act.apply(x + eps) - act.apply(x - eps)) / (2.0 * eps);
                let analytic = act.gradient(act.apply(x));
                assert!(
                    (numeric - analytic).abs() < 1e-2,
                    "{act} at {x}: numeric {numeric} vs analytic {analytic}"
                );
            }
        }
    }

    #[test]
    fn slice_helpers() {
        let mut xs = vec![-1.0, 2.0];
        Activation::Leaky.apply_slice(&mut xs);
        assert!((xs[0] + 0.1).abs() < 1e-6);
        assert_eq!(xs[1], 2.0);
        let mut delta = vec![1.0, 1.0];
        Activation::Leaky.gradient_slice(&xs, &mut delta);
        assert_eq!(delta, vec![0.1, 1.0]);
    }

    #[test]
    fn parsing_round_trips_and_rejects_unknown() {
        for a in [
            Activation::Linear,
            Activation::Relu,
            Activation::Leaky,
            Activation::Logistic,
            Activation::Tanh,
        ] {
            assert_eq!(a.to_string().parse::<Activation>().unwrap(), a);
        }
        assert_eq!("lrelu".parse::<Activation>().unwrap(), Activation::Leaky);
        assert!("swish".parse::<Activation>().is_err());
        assert_eq!(Activation::default(), Activation::Leaky);
    }
}
