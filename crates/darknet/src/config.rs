//! Darknet `.cfg` configuration parsing and network construction.
//!
//! In Plinius the model architecture and hyper-parameters are defined in a configuration
//! file which is *parsed in the untrusted runtime* (it is public information under the
//! threat model) and then sent to the enclave to build the enclave model. This module
//! provides that parser plus programmatic generators for the model families used in the
//! evaluation (N LReLU-convolutional layers, or a target model size in MB for Fig. 7).

use crate::activation::Activation;
use crate::layers::{ConnectedLayer, ConvLayer, Layer, MaxPoolLayer, SoftmaxLayer};
use crate::network::{Network, NetworkConfig};
use crate::DarknetError;
use rand::Rng;
use std::collections::BTreeMap;

/// One `[section]` of a configuration file with its `key=value` options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Section {
    /// Section name without brackets (e.g. `net`, `convolutional`).
    pub name: String,
    /// Options in declaration order (later duplicates overwrite earlier ones).
    pub options: BTreeMap<String, String>,
}

impl Section {
    fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(|s| s.as_str())
    }

    fn parse<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, DarknetError> {
        match self.get(key) {
            None => Ok(default),
            Some(raw) => raw.trim().parse::<T>().map_err(|_| {
                DarknetError::Config(format!(
                    "invalid value '{raw}' for '{key}' in section [{}]",
                    self.name
                ))
            }),
        }
    }
}

/// Parses the text of a `.cfg` file into sections.
///
/// # Errors
///
/// Returns [`DarknetError::Config`] if an option appears before any section or a line is
/// not of the form `key=value`.
pub fn parse_config(text: &str) -> Result<Vec<Section>, DarknetError> {
    let mut sections: Vec<Section> = Vec::new();
    for (lineno, raw_line) in text.lines().enumerate() {
        let line = raw_line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with(';') {
            continue;
        }
        if line.starts_with('[') && line.ends_with(']') {
            sections.push(Section {
                name: line[1..line.len() - 1].trim().to_ascii_lowercase(),
                options: BTreeMap::new(),
            });
        } else if let Some((key, value)) = line.split_once('=') {
            let section = sections.last_mut().ok_or_else(|| {
                DarknetError::Config(format!(
                    "option on line {} appears before any section",
                    lineno + 1
                ))
            })?;
            section
                .options
                .insert(key.trim().to_ascii_lowercase(), value.trim().to_owned());
        } else {
            return Err(DarknetError::Config(format!(
                "cannot parse line {}: '{line}'",
                lineno + 1
            )));
        }
    }
    Ok(sections)
}

/// Parses a configuration file and builds the corresponding [`Network`], initialising
/// weights from `rng`.
///
/// # Errors
///
/// Returns [`DarknetError::Config`] for malformed or unsupported configurations and the
/// usual network-construction errors for inconsistent shapes.
pub fn build_network<R: Rng>(text: &str, rng: &mut R) -> Result<Network, DarknetError> {
    let sections = parse_config(text)?;
    let Some((net_section, layer_sections)) = sections.split_first() else {
        return Err(DarknetError::Config("configuration file is empty".into()));
    };
    if net_section.name != "net" && net_section.name != "network" {
        return Err(DarknetError::Config(format!(
            "first section must be [net], found [{}]",
            net_section.name
        )));
    }
    let config = NetworkConfig {
        height: net_section.parse("height", 28usize)?,
        width: net_section.parse("width", 28usize)?,
        channels: net_section.parse("channels", 1usize)?,
        batch: net_section.parse("batch", 128usize)?,
        learning_rate: net_section.parse("learning_rate", 0.1f32)?,
        momentum: net_section.parse("momentum", 0.9f32)?,
        decay: net_section.parse("decay", 0.0001f32)?,
        max_iterations: net_section.parse("max_iterations", 500u64)?,
    };
    let mut layers: Vec<Layer> = Vec::new();
    let mut c = config.channels;
    let mut h = config.height;
    let mut w = config.width;
    let batch = config.batch;
    for section in layer_sections {
        match section.name.as_str() {
            "convolutional" | "conv" => {
                let filters = section.parse("filters", 16usize)?;
                let size = section.parse("size", 3usize)?;
                let stride = section.parse("stride", 1usize)?;
                let pad = section.parse("pad", 1usize)?;
                let activation: Activation = section
                    .get("activation")
                    .unwrap_or("leaky")
                    .parse()
                    .map_err(|e| DarknetError::Config(format!("{e}")))?;
                // Reject degenerate geometry here with a proper error instead of
                // letting `conv_out_dim` panic (the old formula underflowed `usize`
                // when the kernel exceeded the padded input).
                if crate::matrix::try_conv_out_dim(h, size, stride, pad).is_none()
                    || crate::matrix::try_conv_out_dim(w, size, stride, pad).is_none()
                {
                    return Err(DarknetError::Config(format!(
                        "convolutional kernel {size} (stride {stride}, pad {pad}) does not \
                         fit the {h}x{w} input"
                    )));
                }
                let layer =
                    ConvLayer::new(h, w, c, filters, size, stride, pad, activation, batch, rng);
                let (oc, oh, ow) = layer.out_shape();
                layers.push(Layer::Convolutional(layer));
                c = oc;
                h = oh;
                w = ow;
            }
            "maxpool" => {
                let size = section.parse("size", 2usize)?;
                let stride = section.parse("stride", 2usize)?;
                if size == 0 || stride == 0 || size > h || size > w {
                    return Err(DarknetError::Config(format!(
                        "maxpool window {size} (stride {stride}) does not fit the {h}x{w} input"
                    )));
                }
                let layer = MaxPoolLayer::new(h, w, c, size, stride, batch);
                let (oc, oh, ow) = layer.out_shape();
                layers.push(Layer::MaxPool(layer));
                c = oc;
                h = oh;
                w = ow;
            }
            "connected" | "fc" => {
                let outputs = section.parse("output", 10usize)?;
                let activation: Activation = section
                    .get("activation")
                    .unwrap_or("linear")
                    .parse()
                    .map_err(|e| DarknetError::Config(format!("{e}")))?;
                layers.push(Layer::Connected(ConnectedLayer::new(
                    c * h * w,
                    outputs,
                    activation,
                    batch,
                    rng,
                )));
                c = outputs;
                h = 1;
                w = 1;
            }
            "softmax" => {
                layers.push(Layer::Softmax(SoftmaxLayer::new(c * h * w, batch)));
            }
            other => {
                return Err(DarknetError::Config(format!(
                    "unsupported layer type [{other}]"
                )));
            }
        }
    }
    Network::new(config, layers)
}

/// Generates the configuration text of an MNIST-scale CNN with `conv_layers`
/// LReLU-convolutional layers (the model family used in Figs. 8–10 and the inference
/// experiment of the paper).
pub fn mnist_cnn_config(conv_layers: usize, filters: usize, batch: usize) -> String {
    mnist_cnn_config_with_momentum(conv_layers, filters, batch, 0.9)
}

/// Like [`mnist_cnn_config`] but with an explicit SGD momentum.
///
/// Momentum 0 trades convergence speed for stability: the tiny demo models can
/// overshoot after converging under the default `momentum=0.9`, and with zero
/// momentum the whole training state lives in the persisted weight tensors,
/// which makes mirror-based crash/resume bit-for-bit deterministic.
pub fn mnist_cnn_config_with_momentum(
    conv_layers: usize,
    filters: usize,
    batch: usize,
    momentum: f32,
) -> String {
    let mut cfg = format!(
        "[net]\nheight=28\nwidth=28\nchannels=1\nlearning_rate=0.1\nmomentum={momentum}\ndecay=0.0001\n",
    );
    cfg.push_str(&format!("batch={batch}\nmax_iterations=500\n\n"));
    for i in 0..conv_layers {
        cfg.push_str(&format!(
            "[convolutional]\nfilters={filters}\nsize=3\nstride=1\npad=1\nactivation=leaky\n\n"
        ));
        // Down-sample twice early on to keep the fully connected layer reasonable.
        if i == 0 || i == 1 {
            cfg.push_str("[maxpool]\nsize=2\nstride=2\n\n");
        }
    }
    cfg.push_str("[connected]\noutput=10\nactivation=linear\n\n[softmax]\n");
    cfg
}

/// Generates a CNN configuration whose learnable parameters occupy approximately
/// `target_mb` megabytes — used by the Fig. 7 / Table I model-size sweep.
///
/// The size is reached with a wide fully connected layer (the same technique the paper
/// uses of growing the model by adding parameter-heavy layers).
pub fn sized_model_config(target_mb: usize, batch: usize) -> String {
    // Geometry after one conv(8 filters) + two maxpools on 28x28: 8 x 7 x 7 = 392 inputs.
    let fc_inputs = 8 * 7 * 7;
    let bytes_per_unit = fc_inputs * 4;
    let target_bytes = target_mb * 1024 * 1024;
    let hidden = (target_bytes / bytes_per_unit).max(16);
    format!(
        "[net]\nheight=28\nwidth=28\nchannels=1\nbatch={batch}\nlearning_rate=0.1\nmomentum=0.9\ndecay=0.0001\n\n\
         [convolutional]\nfilters=8\nsize=3\nstride=1\npad=1\nactivation=leaky\n\n\
         [maxpool]\nsize=2\nstride=2\n\n\
         [maxpool]\nsize=2\nstride=2\n\n\
         [connected]\noutput={hidden}\nactivation=leaky\n\n\
         [connected]\noutput=10\nactivation=linear\n\n\
         [softmax]\n"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const SAMPLE: &str = "
# a comment
[net]
height=8
width=8
channels=1
batch=4
learning_rate=0.05

[convolutional]
filters=4
size=3
stride=1
pad=1
activation=leaky

[maxpool]
size=2
stride=2

[connected]
output=10
activation=linear

[softmax]
";

    #[test]
    fn parse_config_extracts_sections_and_options() {
        let sections = parse_config(SAMPLE).unwrap();
        assert_eq!(sections.len(), 5);
        assert_eq!(sections[0].name, "net");
        assert_eq!(sections[1].options.get("filters").unwrap(), "4");
        assert_eq!(sections[3].options.get("activation").unwrap(), "linear");
    }

    #[test]
    fn parse_config_rejects_malformed_input() {
        assert!(parse_config("key=value").is_err());
        assert!(parse_config("[net]\nnot a key value").is_err());
    }

    #[test]
    fn build_network_from_config() {
        let mut rng = StdRng::seed_from_u64(1);
        let net = build_network(SAMPLE, &mut rng).unwrap();
        assert_eq!(net.num_layers(), 4);
        assert_eq!(net.config().batch, 4);
        assert!((net.config().learning_rate - 0.05).abs() < 1e-6);
        assert_eq!(net.outputs(), 10);
        assert_eq!(net.config().momentum, 0.9, "default applies when missing");
    }

    #[test]
    fn build_network_rejects_bad_values_and_unknown_layers() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(build_network("[net]\nbatch=abc\n", &mut rng).is_err());
        assert!(build_network("[net]\n\n[rnn]\n", &mut rng).is_err());
        assert!(build_network("", &mut rng).is_err());
        assert!(build_network("[convolutional]\nfilters=2\n", &mut rng).is_err());
        assert!(build_network("[net]\n\n[convolutional]\nactivation=swish\n", &mut rng).is_err());
    }

    #[test]
    fn oversized_kernels_are_rejected_at_construction_not_by_panic() {
        // Regression: a 7x7 kernel on a 4x4 input used to underflow `usize` inside
        // `conv_out_dim` (panic in debug, absurd dimension in release). Construction
        // must reject the config with a proper error.
        let mut rng = StdRng::seed_from_u64(5);
        let conv = "[net]\nheight=4\nwidth=4\n\n[convolutional]\nsize=7\npad=1\n";
        match build_network(conv, &mut rng) {
            Err(DarknetError::Config(msg)) => assert!(msg.contains("does not fit"), "{msg}"),
            other => panic!("expected a config error, got {other:?}"),
        }
        let pool = "[net]\nheight=4\nwidth=4\n\n[maxpool]\nsize=9\nstride=2\n";
        match build_network(pool, &mut rng) {
            Err(DarknetError::Config(msg)) => assert!(msg.contains("does not fit"), "{msg}"),
            other => panic!("expected a config error, got {other:?}"),
        }
        // Zero stride is equally rejected.
        let zero = "[net]\nheight=4\nwidth=4\n\n[convolutional]\nsize=3\nstride=0\n";
        assert!(matches!(
            build_network(zero, &mut rng),
            Err(DarknetError::Config(_))
        ));
    }

    #[test]
    fn mnist_cnn_config_builds_and_has_requested_depth() {
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = mnist_cnn_config(5, 8, 16);
        let net = build_network(&cfg, &mut rng).unwrap();
        let conv_count = net
            .layers()
            .iter()
            .filter(|l| matches!(l.kind(), crate::layers::LayerKind::Convolutional))
            .count();
        assert_eq!(conv_count, 5);
        assert_eq!(net.config().batch, 16);
        assert_eq!(net.outputs(), 10);
    }

    #[test]
    fn sized_model_config_hits_target_size() {
        let mut rng = StdRng::seed_from_u64(3);
        for target_mb in [10usize, 44, 100] {
            let cfg = sized_model_config(target_mb, 2);
            let net = build_network(&cfg, &mut rng).unwrap();
            let mb = net.model_bytes() as f64 / (1024.0 * 1024.0);
            assert!(
                (mb - target_mb as f64).abs() / (target_mb as f64) < 0.15,
                "target {target_mb} MB, got {mb:.1} MB"
            );
        }
    }
}
