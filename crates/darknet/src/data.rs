//! Training/test datasets: the in-memory data matrix Darknet trains from, an IDX parser
//! for the real MNIST files, and a synthetic MNIST-like generator used when the real
//! dataset is not available (the substitution documented in DESIGN.md).

use crate::DarknetError;
use rand::Rng;
use std::path::Path;

/// A labelled dataset held as two row-major matrices: one image per row and one one-hot
/// label row per image (Darknet's `data` type).
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    samples: usize,
    inputs: usize,
    classes: usize,
    images: Vec<f32>,
    labels: Vec<f32>,
}

impl Dataset {
    /// Builds a dataset from raw buffers.
    ///
    /// # Errors
    ///
    /// Returns [`DarknetError::DataShape`] if the buffer lengths do not match
    /// `samples * inputs` / `samples * classes`.
    pub fn from_raw(
        samples: usize,
        inputs: usize,
        classes: usize,
        images: Vec<f32>,
        labels: Vec<f32>,
    ) -> Result<Self, DarknetError> {
        if images.len() != samples * inputs || labels.len() != samples * classes {
            return Err(DarknetError::DataShape {
                samples,
                inputs,
                classes,
                images: images.len(),
                labels: labels.len(),
            });
        }
        Ok(Dataset {
            samples,
            inputs,
            classes,
            images,
            labels,
        })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.samples == 0
    }

    /// Number of input values per sample.
    pub fn inputs(&self) -> usize {
        self.inputs
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// The whole image matrix (row-major, one sample per row).
    pub fn images(&self) -> &[f32] {
        &self.images
    }

    /// The whole one-hot label matrix (row-major).
    pub fn labels(&self) -> &[f32] {
        &self.labels
    }

    /// Image `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn image(&self, i: usize) -> &[f32] {
        assert!(i < self.samples, "sample {i} out of range");
        &self.images[i * self.inputs..(i + 1) * self.inputs]
    }

    /// One-hot label row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn label(&self, i: usize) -> &[f32] {
        assert!(i < self.samples, "sample {i} out of range");
        &self.labels[i * self.classes..(i + 1) * self.classes]
    }

    /// Class index of sample `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn label_index(&self, i: usize) -> usize {
        let row = self.label(i);
        let mut best = 0;
        for (j, v) in row.iter().enumerate() {
            if *v > row[best] {
                best = j;
            }
        }
        best
    }

    /// Copies the samples at `indices` into contiguous `(images, labels)` batch buffers.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn gather(&self, indices: &[usize]) -> (Vec<f32>, Vec<f32>) {
        let mut images = Vec::with_capacity(indices.len() * self.inputs);
        let mut labels = Vec::with_capacity(indices.len() * self.classes);
        for &i in indices {
            images.extend_from_slice(self.image(i));
            labels.extend_from_slice(self.label(i));
        }
        (images, labels)
    }

    /// Samples a random batch of `batch` samples (with replacement, like Darknet's
    /// `get_random_batch`).
    pub fn random_batch<R: Rng>(&self, batch: usize, rng: &mut R) -> (Vec<f32>, Vec<f32>) {
        let indices: Vec<usize> = (0..batch).map(|_| rng.gen_range(0..self.samples)).collect();
        self.gather(&indices)
    }

    /// Deterministic batch `k` (wrapping around the dataset), used when a reproducible
    /// iteration order is needed.
    pub fn sequential_batch(&self, k: usize, batch: usize) -> (Vec<f32>, Vec<f32>) {
        let indices: Vec<usize> = (0..batch).map(|j| (k * batch + j) % self.samples).collect();
        self.gather(&indices)
    }

    /// Splits the dataset into a training part with `train` samples and a test part with
    /// the remainder.
    ///
    /// # Panics
    ///
    /// Panics if `train > len()`.
    pub fn split(&self, train: usize) -> (Dataset, Dataset) {
        assert!(
            train <= self.samples,
            "cannot take {train} of {} samples",
            self.samples
        );
        let train_ds = Dataset {
            samples: train,
            inputs: self.inputs,
            classes: self.classes,
            images: self.images[..train * self.inputs].to_vec(),
            labels: self.labels[..train * self.classes].to_vec(),
        };
        let test_ds = Dataset {
            samples: self.samples - train,
            inputs: self.inputs,
            classes: self.classes,
            images: self.images[train * self.inputs..].to_vec(),
            labels: self.labels[train * self.classes..].to_vec(),
        };
        (train_ds, test_ds)
    }

    /// Serialises sample `i` (image values then one-hot label) as little-endian `f32`
    /// bytes; the layout the Plinius PM-data module stores (encrypted) in PM.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn sample_bytes(&self, i: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity((self.inputs + self.classes) * 4);
        for v in self.image(i).iter().chain(self.label(i).iter()) {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    /// Rebuilds a sample previously produced by [`Dataset::sample_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`DarknetError::DataShape`] if the byte length does not match.
    pub fn sample_from_bytes(
        inputs: usize,
        classes: usize,
        bytes: &[u8],
    ) -> Result<(Vec<f32>, Vec<f32>), DarknetError> {
        if bytes.len() != (inputs + classes) * 4 {
            return Err(DarknetError::DataShape {
                samples: 1,
                inputs,
                classes,
                images: bytes.len(),
                labels: 0,
            });
        }
        let values: Vec<f32> = bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect();
        Ok((values[..inputs].to_vec(), values[inputs..].to_vec()))
    }
}

/// Generates a synthetic MNIST-like dataset: `samples` grayscale 28x28 images in 10
/// classes. Each class has a distinct structured template (class-dependent stripes plus a
/// class-positioned bright square) with additive noise, so the same CNNs the paper trains
/// on MNIST can learn it to high accuracy.
pub fn synthetic_mnist<R: Rng>(samples: usize, rng: &mut R) -> Dataset {
    synthetic_images(samples, 28, 28, 10, 0.15, rng)
}

/// General synthetic image-classification dataset generator (see [`synthetic_mnist`]).
pub fn synthetic_images<R: Rng>(
    samples: usize,
    height: usize,
    width: usize,
    classes: usize,
    noise: f32,
    rng: &mut R,
) -> Dataset {
    let inputs = height * width;
    let mut images = Vec::with_capacity(samples * inputs);
    let mut labels = vec![0.0f32; samples * classes];
    for s in 0..samples {
        let class = rng.gen_range(0..classes);
        labels[s * classes + class] = 1.0;
        let fx = (class % 4 + 1) as f32;
        let fy = (class / 4 + 1) as f32;
        // Class-dependent bright square position.
        let sq_row = (class * height / classes).min(height.saturating_sub(6));
        let sq_col = ((class * 7) % width.saturating_sub(6).max(1)).min(width.saturating_sub(6));
        for y in 0..height {
            for x in 0..width {
                let stripes =
                    0.35 + 0.25 * ((x as f32) * fx * 0.45).sin() * ((y as f32) * fy * 0.45).cos();
                let square = if y >= sq_row && y < sq_row + 6 && x >= sq_col && x < sq_col + 6 {
                    0.45
                } else {
                    0.0
                };
                let n = rng.gen_range(-noise..noise);
                images.push((stripes + square + n).clamp(0.0, 1.0));
            }
        }
    }
    Dataset {
        samples,
        inputs,
        classes,
        images,
        labels,
    }
}

/// Parses an IDX3 image file (the format MNIST is distributed in) into normalised `f32`
/// pixels.
///
/// # Errors
///
/// Returns [`DarknetError::IdxFormat`] if the magic number or lengths are wrong.
pub fn parse_idx_images(bytes: &[u8]) -> Result<(usize, usize, usize, Vec<f32>), DarknetError> {
    if bytes.len() < 16 {
        return Err(DarknetError::IdxFormat(
            "image file shorter than header".into(),
        ));
    }
    let magic = u32::from_be_bytes(bytes[0..4].try_into().expect("4 bytes"));
    if magic != 0x0000_0803 {
        return Err(DarknetError::IdxFormat(format!(
            "bad image magic 0x{magic:08x}"
        )));
    }
    let n = u32::from_be_bytes(bytes[4..8].try_into().expect("4 bytes")) as usize;
    let rows = u32::from_be_bytes(bytes[8..12].try_into().expect("4 bytes")) as usize;
    let cols = u32::from_be_bytes(bytes[12..16].try_into().expect("4 bytes")) as usize;
    let expected = 16 + n * rows * cols;
    if bytes.len() < expected {
        return Err(DarknetError::IdxFormat(format!(
            "image file truncated: {} < {expected}",
            bytes.len()
        )));
    }
    let pixels = bytes[16..expected]
        .iter()
        .map(|b| *b as f32 / 255.0)
        .collect();
    Ok((n, rows, cols, pixels))
}

/// Parses an IDX1 label file into class indices.
///
/// # Errors
///
/// Returns [`DarknetError::IdxFormat`] if the magic number or lengths are wrong.
pub fn parse_idx_labels(bytes: &[u8]) -> Result<Vec<u8>, DarknetError> {
    if bytes.len() < 8 {
        return Err(DarknetError::IdxFormat(
            "label file shorter than header".into(),
        ));
    }
    let magic = u32::from_be_bytes(bytes[0..4].try_into().expect("4 bytes"));
    if magic != 0x0000_0801 {
        return Err(DarknetError::IdxFormat(format!(
            "bad label magic 0x{magic:08x}"
        )));
    }
    let n = u32::from_be_bytes(bytes[4..8].try_into().expect("4 bytes")) as usize;
    if bytes.len() < 8 + n {
        return Err(DarknetError::IdxFormat("label file truncated".into()));
    }
    Ok(bytes[8..8 + n].to_vec())
}

/// Loads an MNIST-format dataset from IDX files on disk, if present; falls back to the
/// synthetic generator otherwise. The paper uses MNIST (60'000 training + 10'000 test
/// samples); the synthetic fallback keeps the same geometry.
pub fn load_mnist_or_synthetic<R: Rng>(
    dir: Option<&Path>,
    samples_if_synthetic: usize,
    rng: &mut R,
) -> Dataset {
    if let Some(dir) = dir {
        let images = std::fs::read(dir.join("train-images-idx3-ubyte"));
        let labels = std::fs::read(dir.join("train-labels-idx1-ubyte"));
        if let (Ok(images), Ok(labels)) = (images, labels) {
            if let (Ok((n, rows, cols, pixels)), Ok(label_idx)) =
                (parse_idx_images(&images), parse_idx_labels(&labels))
            {
                let classes = 10;
                let mut one_hot = vec![0.0f32; n * classes];
                for (i, l) in label_idx.iter().enumerate().take(n) {
                    one_hot[i * classes + (*l as usize).min(classes - 1)] = 1.0;
                }
                if let Ok(ds) = Dataset::from_raw(n, rows * cols, classes, pixels, one_hot) {
                    return ds;
                }
            }
        }
    }
    synthetic_mnist(samples_if_synthetic, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn from_raw_validates_shapes() {
        assert!(Dataset::from_raw(2, 3, 2, vec![0.0; 6], vec![0.0; 4]).is_ok());
        assert!(matches!(
            Dataset::from_raw(2, 3, 2, vec![0.0; 5], vec![0.0; 4]).unwrap_err(),
            DarknetError::DataShape { .. }
        ));
    }

    #[test]
    fn accessors_and_batches() {
        let images = vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0];
        let labels = vec![1.0, 0.0, 0.0, 1.0];
        let ds = Dataset::from_raw(2, 3, 2, images, labels).unwrap();
        assert_eq!(ds.len(), 2);
        assert!(!ds.is_empty());
        assert_eq!(ds.image(1), &[3.0, 4.0, 5.0]);
        assert_eq!(ds.label_index(0), 0);
        assert_eq!(ds.label_index(1), 1);
        let (bi, bl) = ds.gather(&[1, 0]);
        assert_eq!(bi, vec![3.0, 4.0, 5.0, 0.0, 1.0, 2.0]);
        assert_eq!(bl, vec![0.0, 1.0, 1.0, 0.0]);
        let (si, _) = ds.sequential_batch(1, 3);
        assert_eq!(si.len(), 9);
        let mut rng = StdRng::seed_from_u64(1);
        let (ri, rl) = ds.random_batch(5, &mut rng);
        assert_eq!(ri.len(), 15);
        assert_eq!(rl.len(), 10);
    }

    #[test]
    fn split_partitions_samples() {
        let mut rng = StdRng::seed_from_u64(2);
        let ds = synthetic_images(20, 6, 6, 3, 0.1, &mut rng);
        let (train, test) = ds.split(15);
        assert_eq!(train.len(), 15);
        assert_eq!(test.len(), 5);
        assert_eq!(train.image(0), ds.image(0));
        assert_eq!(test.image(0), ds.image(15));
    }

    #[test]
    fn sample_bytes_round_trip() {
        let mut rng = StdRng::seed_from_u64(3);
        let ds = synthetic_images(4, 5, 5, 3, 0.1, &mut rng);
        let bytes = ds.sample_bytes(2);
        assert_eq!(bytes.len(), (25 + 3) * 4);
        let (img, lbl) = Dataset::sample_from_bytes(25, 3, &bytes).unwrap();
        assert_eq!(img, ds.image(2));
        assert_eq!(lbl, ds.label(2));
        assert!(Dataset::sample_from_bytes(25, 3, &bytes[..10]).is_err());
    }

    #[test]
    fn synthetic_mnist_has_mnist_geometry() {
        let mut rng = StdRng::seed_from_u64(4);
        let ds = synthetic_mnist(50, &mut rng);
        assert_eq!(ds.inputs(), 784);
        assert_eq!(ds.classes(), 10);
        assert_eq!(ds.len(), 50);
        assert!(ds.images().iter().all(|v| (0.0..=1.0).contains(v)));
        // All ten classes should appear in a reasonably sized sample.
        let mut seen = [false; 10];
        let mut rng = StdRng::seed_from_u64(5);
        let big = synthetic_mnist(400, &mut rng);
        for i in 0..big.len() {
            seen[big.label_index(i)] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn synthetic_classes_are_distinguishable() {
        // The mean image of two different classes should differ substantially more than
        // the noise level, otherwise no model could learn the task.
        let mut rng = StdRng::seed_from_u64(6);
        let ds = synthetic_mnist(600, &mut rng);
        let mean_of = |class: usize| -> Vec<f32> {
            let mut acc = vec![0.0f32; ds.inputs()];
            let mut count = 0;
            for i in 0..ds.len() {
                if ds.label_index(i) == class {
                    for (a, v) in acc.iter_mut().zip(ds.image(i)) {
                        *a += v;
                    }
                    count += 1;
                }
            }
            acc.iter().map(|a| a / count.max(1) as f32).collect()
        };
        let m0 = mean_of(0);
        let m7 = mean_of(7);
        let dist: f32 = m0
            .iter()
            .zip(m7.iter())
            .map(|(a, b)| (a - b).abs())
            .sum::<f32>()
            / m0.len() as f32;
        assert!(dist > 0.05, "class templates too similar: {dist}");
    }

    #[test]
    fn idx_parsers_accept_valid_and_reject_invalid() {
        // Build a tiny valid IDX pair: 2 images of 2x2, labels [3, 1].
        let mut img = Vec::new();
        img.extend_from_slice(&0x0000_0803u32.to_be_bytes());
        img.extend_from_slice(&2u32.to_be_bytes());
        img.extend_from_slice(&2u32.to_be_bytes());
        img.extend_from_slice(&2u32.to_be_bytes());
        img.extend_from_slice(&[0, 128, 255, 64, 1, 2, 3, 4]);
        let (n, r, c, pixels) = parse_idx_images(&img).unwrap();
        assert_eq!((n, r, c), (2, 2, 2));
        assert!((pixels[2] - 1.0).abs() < 1e-6);
        let mut lbl = Vec::new();
        lbl.extend_from_slice(&0x0000_0801u32.to_be_bytes());
        lbl.extend_from_slice(&2u32.to_be_bytes());
        lbl.extend_from_slice(&[3, 1]);
        assert_eq!(parse_idx_labels(&lbl).unwrap(), vec![3, 1]);
        // Corrupt magic numbers are rejected.
        assert!(parse_idx_images(&lbl).is_err());
        assert!(parse_idx_labels(&img[..8]).is_err());
        assert!(parse_idx_images(&img[..10]).is_err());
    }

    #[test]
    fn load_falls_back_to_synthetic() {
        let mut rng = StdRng::seed_from_u64(7);
        let ds = load_mnist_or_synthetic(Some(Path::new("/nonexistent/mnist")), 30, &mut rng);
        assert_eq!(ds.len(), 30);
        let ds2 = load_mnist_or_synthetic(None, 10, &mut rng);
        assert_eq!(ds2.len(), 10);
    }
}
