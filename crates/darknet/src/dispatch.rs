//! Runtime selection of the GEMM / vector-kernel engine.
//!
//! A family of register-tiled vector kernels backs [`crate::matrix::gemm`] and the
//! AXPY/SCAL/DOT helpers, all consuming the same packed op(A)/op(B) panels:
//!
//! * **avx512** ([`GemmKind::Avx512`]) — a 6×32 C tile held in ZMM accumulators,
//!   on `x86_64` hosts whose CPU reports `avx512f` at runtime. The lanes run
//!   `mul` + `add` separately — the same IEEE rounding per element as the scalar
//!   kernel — so its output is **bit-identical** to `scalar` by construction;
//! * **avx2** ([`GemmKind::Avx2`]) — the same microkernel shape at YMM width
//!   (6×16 C tile), for CPUs with `avx2` but not AVX-512; also `mul`+`add`
//!   lanes, also bit-identical;
//! * **avx512+fma** / **avx2+fma** ([`GemmKind::Avx512Fma`] / [`GemmKind::Avx2Fma`])
//!   — the same tiles with fused multiply-adds (`vfmadd`), opt-in because the
//!   fused rounding changes last-bit results (differential tests bound the
//!   drift, see `tests/proptest_gemm.rs`);
//! * **scalar** ([`GemmKind::Scalar`]) — the blocked, cache-aware portable kernel,
//!   compiled and tested everywhere;
//! * **reference** ([`GemmKind::Reference`]) — the naive triple-loop kernel, the
//!   easy-to-audit ground truth for differential testing.
//!
//! The policy defaults to [`GemmPolicy::Auto`] (AVX2 when detected, scalar
//! otherwise) and can be overridden with the `PLINIUS_GEMM` environment variable —
//! the same knob shape as `PLINIUS_CRYPTO`/`PLINIUS_THREADS`. An unset or
//! unparsable value falls back to `auto`; strict validation (exit 2) lives in the
//! bench CLI, which writes this variable from its `--gemm` flag.
//!
//! The engine-specific tuning constants live here too: the register-tile width and
//! the minimum work product before [`crate::matrix::gemm`] fans out across threads
//! are properties of the *kernel*, not of the call site (the vector kernels chew
//! through small products so fast that forking threads pays off later).

use std::fmt;

/// Environment variable overriding the GEMM-engine policy
/// (`auto` | `scalar` | `reference` | `fma`).
pub const GEMM_ENV: &str = "PLINIUS_GEMM";

/// Which engine the caller *requests*. Resolved to a [`GemmKind`] against the
/// running CPU via [`GemmPolicy::select`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GemmPolicy {
    /// The widest bit-identical vector kernel the CPU supports (AVX-512, then
    /// AVX2), scalar otherwise (the default). Bit-identical to `scalar` either way.
    #[default]
    Auto,
    /// Force the blocked portable kernel even on AVX2-capable hosts.
    Scalar,
    /// Force the naive triple-loop kernel (much slower; for differential testing
    /// and auditing only).
    Reference,
    /// Opt into fused multiply-adds at the widest width the CPU has (falling back
    /// through the bit-identical vector kernels to scalar). Fastest, but trades
    /// the last-bit identity contract for ULP-bounded agreement.
    Fma,
}

impl GemmPolicy {
    /// The accepted spellings, in the order shown by help text.
    pub const NAMES: [&'static str; 4] = ["auto", "scalar", "reference", "fma"];

    /// Parses a policy name as used by `PLINIUS_GEMM` and `--gemm`.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "auto" => Some(GemmPolicy::Auto),
            "scalar" => Some(GemmPolicy::Scalar),
            "reference" => Some(GemmPolicy::Reference),
            "fma" => Some(GemmPolicy::Fma),
            _ => None,
        }
    }

    /// The canonical name of this policy.
    pub fn as_str(self) -> &'static str {
        match self {
            GemmPolicy::Auto => "auto",
            GemmPolicy::Scalar => "scalar",
            GemmPolicy::Reference => "reference",
            GemmPolicy::Fma => "fma",
        }
    }

    /// Reads the policy from `PLINIUS_GEMM`. Unset, empty or unparsable values fall
    /// back to [`GemmPolicy::Auto`] (the lenient env-knob contract shared with
    /// `PLINIUS_CRYPTO`/`PLINIUS_RING`; the bench CLI validates strictly before
    /// setting it).
    pub fn from_env() -> Self {
        std::env::var(GEMM_ENV)
            .ok()
            .and_then(|v| Self::parse(&v))
            .unwrap_or_default()
    }

    /// Resolves the policy against the running CPU. `Auto` picks the widest
    /// bit-identical kernel; `Fma` picks the widest fused kernel and degrades
    /// gracefully on hosts without fused units — through the bit-identical vector
    /// kernels down to scalar — so an opted-in binary still runs everywhere.
    pub fn select(self) -> GemmKind {
        match self {
            GemmPolicy::Auto => {
                if avx512_available() {
                    GemmKind::Avx512
                } else if avx2_available() {
                    GemmKind::Avx2
                } else {
                    GemmKind::Scalar
                }
            }
            GemmPolicy::Scalar => GemmKind::Scalar,
            GemmPolicy::Reference => GemmKind::Reference,
            GemmPolicy::Fma => {
                if avx512_available() {
                    GemmKind::Avx512Fma
                } else if fma_available() {
                    GemmKind::Avx2Fma
                } else if avx2_available() {
                    GemmKind::Avx2
                } else {
                    GemmKind::Scalar
                }
            }
        }
    }
}

impl fmt::Display for GemmPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Which concrete kernel family a GEMM call (or a [`crate::Network`]) ended up with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GemmKind {
    /// Register-tiled AVX-512 microkernel, `mul`+`add` lanes (bit-identical to scalar).
    Avx512,
    /// Register-tiled AVX-512 microkernel with fused multiply-adds (ULP-bounded).
    Avx512Fma,
    /// Register-tiled AVX2 microkernel, `mul`+`add` lanes (bit-identical to scalar).
    Avx2,
    /// Register-tiled AVX2 microkernel with fused multiply-adds (ULP-bounded).
    Avx2Fma,
    /// Blocked, cache-aware portable kernel.
    Scalar,
    /// Naive triple-loop reference kernel.
    Reference,
}

impl GemmKind {
    /// Short label used in stats, bench output and reports.
    pub fn name(self) -> &'static str {
        match self {
            GemmKind::Avx512 => "avx512",
            GemmKind::Avx512Fma => "avx512+fma",
            GemmKind::Avx2 => "avx2",
            GemmKind::Avx2Fma => "avx2+fma",
            GemmKind::Scalar => "scalar",
            GemmKind::Reference => "reference",
        }
    }

    /// Width (in `f32` lanes) of the register-resident C tile of this engine's
    /// inner kernel. The scalar kernel streams 32-wide accumulator strips (eight
    /// SSE-width chains, enough to hide FP-add latency without spilling); the AVX2
    /// microkernels hold a 6×16 tile in twelve YMM accumulators, the AVX-512 ones
    /// a 6×32 tile in twelve ZMM accumulators.
    pub const fn tile_width(self) -> usize {
        match self {
            GemmKind::Avx2 | GemmKind::Avx2Fma => 16,
            GemmKind::Avx512 | GemmKind::Avx512Fma => 32,
            GemmKind::Scalar | GemmKind::Reference => 32,
        }
    }

    /// Minimum `m * n * k` product before [`crate::matrix::gemm`] dispatches across
    /// threads with this engine; below it the scoped-thread fork/join overhead
    /// outweighs the kernel work. The vector kernels finish small products so much
    /// faster that their threshold sits one doubling higher.
    pub const fn par_min_work(self) -> usize {
        match self {
            GemmKind::Avx512 | GemmKind::Avx512Fma | GemmKind::Avx2 | GemmKind::Avx2Fma => 1 << 21,
            GemmKind::Scalar | GemmKind::Reference => 1 << 20,
        }
    }
}

impl fmt::Display for GemmKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Whether the AVX2 kernels can run on this host: an `x86_64` CPU reporting the
/// `avx2` feature at runtime.
pub fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Whether the AVX-512 kernels can run on this host: an `x86_64` CPU reporting the
/// `avx512f` feature at runtime (which covers both the `mul`+`add` and the fused
/// 512-bit kernels).
pub fn avx512_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx512f")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Whether the 256-bit fused-multiply-add kernels can run on this host: an `x86_64`
/// CPU reporting both the `avx2` and `fma` features at runtime.
pub fn fma_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// The engine an env-dispatching GEMM call would select right now (environment
/// policy resolved against the running CPU).
pub fn selected_gemm() -> GemmKind {
    GemmPolicy::from_env().select()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Serializes the tests that mutate `PLINIUS_GEMM` (the variable is
    /// process-global; every other test in this crate pins engines explicitly
    /// through the `*_with_engine` entry points, so only these tests race on it).
    static ENV_LOCK: Mutex<()> = Mutex::new(());

    struct EnvGuard(Option<String>);

    impl EnvGuard {
        fn set(value: &str) -> Self {
            let prev = std::env::var(GEMM_ENV).ok();
            std::env::set_var(GEMM_ENV, value);
            EnvGuard(prev)
        }
    }

    impl Drop for EnvGuard {
        fn drop(&mut self) {
            match &self.0 {
                Some(v) => std::env::set_var(GEMM_ENV, v),
                None => std::env::remove_var(GEMM_ENV),
            }
        }
    }

    #[test]
    fn parse_accepts_exactly_the_four_policies() {
        assert_eq!(GemmPolicy::parse("auto"), Some(GemmPolicy::Auto));
        assert_eq!(GemmPolicy::parse("scalar"), Some(GemmPolicy::Scalar));
        assert_eq!(GemmPolicy::parse("reference"), Some(GemmPolicy::Reference));
        assert_eq!(GemmPolicy::parse("fma"), Some(GemmPolicy::Fma));
        for bad in ["", "AUTO", "avx2", "simd", "fast", " scalar", "FMA"] {
            assert_eq!(GemmPolicy::parse(bad), None, "{bad:?} must not parse");
        }
        for name in GemmPolicy::NAMES {
            assert_eq!(GemmPolicy::parse(name).unwrap().as_str(), name);
        }
    }

    #[test]
    fn explicit_policies_ignore_hardware_detection() {
        assert_eq!(GemmPolicy::Scalar.select(), GemmKind::Scalar);
        assert_eq!(GemmPolicy::Reference.select(), GemmKind::Reference);
        let auto = GemmPolicy::Auto.select();
        if avx512_available() {
            assert_eq!(auto, GemmKind::Avx512);
        } else if avx2_available() {
            assert_eq!(auto, GemmKind::Avx2);
        } else {
            assert_eq!(auto, GemmKind::Scalar);
        }
        let fma = GemmPolicy::Fma.select();
        if avx512_available() {
            assert_eq!(fma, GemmKind::Avx512Fma);
        } else if fma_available() {
            assert_eq!(fma, GemmKind::Avx2Fma);
        } else if avx2_available() {
            assert_eq!(fma, GemmKind::Avx2);
        } else {
            assert_eq!(fma, GemmKind::Scalar);
        }
    }

    #[test]
    fn engine_tuning_constants_are_engine_specific() {
        // The hoisted constants keep the scalar kernel's historical values and give
        // the register-tiled kernels their own (see the satellite contract: tile
        // shape is a property of the kernel, not the call site).
        assert_eq!(GemmKind::Scalar.tile_width(), 32);
        assert_eq!(GemmKind::Reference.tile_width(), 32);
        assert_eq!(GemmKind::Scalar.par_min_work(), 1 << 20);
        assert_eq!(GemmKind::Avx2.tile_width(), 16);
        assert_eq!(GemmKind::Avx2Fma.tile_width(), 16);
        assert_eq!(GemmKind::Avx512.tile_width(), 32);
        assert_eq!(GemmKind::Avx512Fma.tile_width(), 32);
        assert!(GemmKind::Avx2.par_min_work() > GemmKind::Scalar.par_min_work());
        assert!(GemmKind::Avx512.par_min_work() > GemmKind::Scalar.par_min_work());
    }

    #[test]
    fn env_scalar_forces_the_scalar_engine_even_when_avx2_is_detected() {
        let _lock = ENV_LOCK.lock().unwrap();
        let _guard = EnvGuard::set("scalar");
        assert_eq!(GemmPolicy::from_env(), GemmPolicy::Scalar);
        assert_eq!(selected_gemm(), GemmKind::Scalar);
    }

    #[test]
    fn env_fma_reference_and_garbage_behave_as_documented() {
        let _lock = ENV_LOCK.lock().unwrap();
        {
            let _guard = EnvGuard::set("reference");
            assert_eq!(selected_gemm(), GemmKind::Reference);
        }
        {
            let _guard = EnvGuard::set("fma");
            assert_eq!(selected_gemm(), GemmPolicy::Fma.select());
        }
        {
            // Lenient env contract: garbage falls back to auto instead of erroring
            // (strict validation happens in the bench CLI before the env is set).
            let _guard = EnvGuard::set("not-an-engine");
            assert_eq!(GemmPolicy::from_env(), GemmPolicy::Auto);
        }
    }

    #[test]
    fn names_display_and_hash_are_stable() {
        assert_eq!(GemmKind::Avx512.name(), "avx512");
        assert_eq!(GemmKind::Avx512Fma.name(), "avx512+fma");
        assert_eq!(GemmKind::Avx2.name(), "avx2");
        assert_eq!(GemmKind::Avx2Fma.name(), "avx2+fma");
        assert_eq!(GemmKind::Scalar.to_string(), "scalar");
        assert_eq!(GemmPolicy::Fma.to_string(), "fma");
    }
}
