//! Fully connected (dense) layer.

use crate::activation::Activation;
use crate::dispatch::{selected_gemm, GemmKind};
use crate::layers::{layer_gemm, ParamView, UpdateArgs, PARAM_TENSOR_NAMES};
use crate::matrix::{axpy_with_engine, scal_with_engine};
use rand::Rng;

/// A fully connected layer: `y = act(W x + b)` with `W` of shape `outputs x inputs`.
#[derive(Debug, Clone)]
pub struct ConnectedLayer {
    inputs: usize,
    outputs: usize,
    activation: Activation,
    weights: Vec<f32>,
    weight_updates: Vec<f32>,
    biases: Vec<f32>,
    bias_updates: Vec<f32>,
    scales: Vec<f32>,
    rolling_mean: Vec<f32>,
    rolling_variance: Vec<f32>,
    output: Vec<f32>,
    delta: Vec<f32>,
    /// Resolved GEMM engine for every kernel this layer runs. Set from the
    /// environment policy at construction; re-settable through
    /// [`crate::Network::set_gemm_policy`].
    engine: GemmKind,
}

impl ConnectedLayer {
    /// Creates a fully connected layer.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` or `outputs` is zero.
    pub fn new<R: Rng>(
        inputs: usize,
        outputs: usize,
        activation: Activation,
        batch: usize,
        rng: &mut R,
    ) -> Self {
        assert!(
            inputs > 0 && outputs > 0,
            "connected layer needs non-zero dimensions"
        );
        let scale = (2.0 / inputs as f32).sqrt();
        let weights = (0..inputs * outputs)
            .map(|_| rng.gen_range(-1.0f32..1.0) * scale)
            .collect();
        ConnectedLayer {
            inputs,
            outputs,
            activation,
            weights,
            weight_updates: vec![0.0; inputs * outputs],
            biases: vec![0.0; outputs],
            bias_updates: vec![0.0; outputs],
            scales: vec![1.0; outputs],
            rolling_mean: vec![0.0; outputs],
            rolling_variance: vec![1.0; outputs],
            output: vec![0.0; outputs * batch],
            delta: vec![0.0; outputs * batch],
            engine: selected_gemm(),
        }
    }

    /// The GEMM engine this layer's kernels run on.
    pub fn gemm_engine(&self) -> GemmKind {
        self.engine
    }

    /// Pins the GEMM engine for every kernel this layer runs.
    pub fn set_gemm_engine(&mut self, engine: GemmKind) {
        self.engine = engine;
    }

    /// Number of inputs per sample.
    pub fn inputs(&self) -> usize {
        self.inputs
    }

    /// Number of outputs per sample.
    pub fn outputs(&self) -> usize {
        self.outputs
    }

    /// The activation function applied to the outputs.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    fn ensure_batch(&mut self, batch: usize) {
        let needed = self.outputs * batch;
        if self.output.len() < needed {
            self.output.resize(needed, 0.0);
            self.delta.resize(needed, 0.0);
        }
    }

    /// Forward pass over a batch.
    ///
    /// # Panics
    ///
    /// Panics if `input` is shorter than `batch * inputs()`.
    pub fn forward(&mut self, input: &[f32], batch: usize) {
        assert!(
            input.len() >= batch * self.inputs,
            "connected input too small"
        );
        self.ensure_batch(batch);
        let out = &mut self.output[..batch * self.outputs];
        out.iter_mut().for_each(|o| *o = 0.0);
        // output (batch x outputs) = input (batch x inputs) * W^T (inputs x outputs)
        layer_gemm(
            self.engine,
            false,
            true,
            batch,
            self.outputs,
            self.inputs,
            1.0,
            input,
            self.inputs,
            &self.weights,
            self.inputs,
            0.0,
            out,
            self.outputs,
        );
        for b in 0..batch {
            let row = &mut out[b * self.outputs..(b + 1) * self.outputs];
            for (o, bias) in row.iter_mut().zip(self.biases.iter()) {
                *o += bias;
            }
            self.activation.apply_slice(row);
        }
    }

    /// Backward pass: accumulates gradients and optionally propagates to the input.
    ///
    /// # Panics
    ///
    /// Panics if the buffers are inconsistent with `batch`.
    pub fn backward(&mut self, input: &[f32], prev_delta: Option<&mut [f32]>, batch: usize) {
        assert!(
            input.len() >= batch * self.inputs,
            "connected input too small"
        );
        let out = &self.output[..batch * self.outputs];
        let delta = &mut self.delta[..batch * self.outputs];
        self.activation.gradient_slice(out, delta);
        for b in 0..batch {
            let row = &delta[b * self.outputs..(b + 1) * self.outputs];
            for (bu, d) in self.bias_updates.iter_mut().zip(row.iter()) {
                *bu += d;
            }
        }
        // weight_updates (outputs x inputs) += delta^T (outputs x batch) * input (batch x inputs)
        layer_gemm(
            self.engine,
            true,
            false,
            self.outputs,
            self.inputs,
            batch,
            1.0,
            delta,
            self.outputs,
            input,
            self.inputs,
            1.0,
            &mut self.weight_updates,
            self.inputs,
        );
        if let Some(prev) = prev_delta {
            // prev_delta (batch x inputs) += delta (batch x outputs) * W (outputs x inputs)
            layer_gemm(
                self.engine,
                false,
                false,
                batch,
                self.inputs,
                self.outputs,
                1.0,
                delta,
                self.outputs,
                &self.weights,
                self.inputs,
                1.0,
                prev,
                self.inputs,
            );
        }
    }

    /// Applies accumulated gradients (SGD + momentum + decay, Darknet convention).
    pub fn update(&mut self, args: &UpdateArgs) {
        let batch = args.batch.max(1) as f32;
        axpy_with_engine(
            self.engine,
            args.learning_rate / batch,
            &self.bias_updates,
            &mut self.biases,
        );
        scal_with_engine(self.engine, args.momentum, &mut self.bias_updates);
        axpy_with_engine(
            self.engine,
            -args.decay * batch,
            &self.weights,
            &mut self.weight_updates,
        );
        axpy_with_engine(
            self.engine,
            args.learning_rate / batch,
            &self.weight_updates,
            &mut self.weights,
        );
        scal_with_engine(self.engine, args.momentum, &mut self.weight_updates);
    }

    /// Output buffer of the latest forward pass.
    pub fn output(&self) -> &[f32] {
        &self.output
    }

    /// Mutable delta buffer.
    pub fn delta_mut(&mut self) -> &mut [f32] {
        &mut self.delta
    }

    /// Simultaneous shared-output / mutable-delta borrow.
    pub fn output_and_delta_mut(&mut self) -> (&[f32], &mut [f32]) {
        (&self.output, &mut self.delta)
    }

    /// The five named parameter tensors of this layer.
    pub fn params(&self) -> Vec<ParamView<'_>> {
        self.param_views().to_vec()
    }

    /// The same five tensors as [`Self::params`] in a fixed array — no allocation,
    /// for the mirror's allocation-free staging loop.
    pub fn param_views(&self) -> [ParamView<'_>; crate::PARAM_TENSORS_PER_LAYER] {
        [
            ParamView {
                name: PARAM_TENSOR_NAMES[0],
                data: &self.weights,
            },
            ParamView {
                name: PARAM_TENSOR_NAMES[1],
                data: &self.biases,
            },
            ParamView {
                name: PARAM_TENSOR_NAMES[2],
                data: &self.scales,
            },
            ParamView {
                name: PARAM_TENSOR_NAMES[3],
                data: &self.rolling_mean,
            },
            ParamView {
                name: PARAM_TENSOR_NAMES[4],
                data: &self.rolling_variance,
            },
        ]
    }

    /// Overwrites the parameter tensors (mirror-in path).
    ///
    /// # Panics
    ///
    /// Panics if the tensor count or any length differs from this layer's.
    pub fn set_params(&mut self, tensors: &[Vec<f32>]) {
        assert_eq!(tensors.len(), 5, "connected layer expects 5 tensors");
        let targets: [&mut Vec<f32>; 5] = [
            &mut self.weights,
            &mut self.biases,
            &mut self.scales,
            &mut self.rolling_mean,
            &mut self.rolling_variance,
        ];
        for (target, source) in targets.into_iter().zip(tensors.iter()) {
            assert_eq!(
                target.len(),
                source.len(),
                "parameter tensor length mismatch"
            );
            target.copy_from_slice(source);
        }
    }

    /// Approximate FLOPs per sample (forward + backward).
    pub fn flops_per_sample(&self) -> u64 {
        (6 * self.inputs * self.outputs) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_matches_hand_computation() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut l = ConnectedLayer::new(2, 2, Activation::Linear, 1, &mut rng);
        // W = [[1,2],[3,4]], b = [0.5, -0.5]
        l.set_params(&[
            vec![1.0, 2.0, 3.0, 4.0],
            vec![0.5, -0.5],
            vec![1.0, 1.0],
            vec![0.0, 0.0],
            vec![1.0, 1.0],
        ]);
        l.forward(&[1.0, 1.0], 1);
        assert_eq!(l.output(), &[3.5, 6.5]);
    }

    #[test]
    fn gradient_check_weights_and_input() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut layer = ConnectedLayer::new(5, 3, Activation::Logistic, 1, &mut rng);
        let input: Vec<f32> = (0..5).map(|i| i as f32 * 0.2 - 0.5).collect();
        layer.forward(&input, 1);
        layer.delta_mut().iter_mut().for_each(|d| *d = 1.0);
        let mut prev_delta = vec![0.0f32; 5];
        layer.backward(&input, Some(&mut prev_delta), 1);
        let analytic_w = layer.weight_updates.clone();
        let eps = 1e-3f32;
        for wi in [0usize, 4, 9, 14] {
            let mut plus = layer.clone();
            plus.weights[wi] += eps;
            plus.forward(&input, 1);
            let lp: f32 = plus.output().iter().sum();
            let mut minus = layer.clone();
            minus.weights[wi] -= eps;
            minus.forward(&input, 1);
            let lm: f32 = minus.output().iter().sum();
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - analytic_w[wi]).abs() < 1e-2,
                "w{wi}: {numeric} vs {}",
                analytic_w[wi]
            );
        }
        for xi in 0..5 {
            let mut plus = input.clone();
            plus[xi] += eps;
            layer.forward(&plus, 1);
            let lp: f32 = layer.output().iter().sum();
            let mut minus = input.clone();
            minus[xi] -= eps;
            layer.forward(&minus, 1);
            let lm: f32 = layer.output().iter().sum();
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - prev_delta[xi]).abs() < 1e-2,
                "x{xi}: {numeric} vs {}",
                prev_delta[xi]
            );
        }
    }

    #[test]
    fn params_and_flops() {
        let mut rng = StdRng::seed_from_u64(3);
        let l = ConnectedLayer::new(10, 4, Activation::Leaky, 1, &mut rng);
        assert_eq!(l.inputs(), 10);
        assert_eq!(l.outputs(), 4);
        assert_eq!(l.activation(), Activation::Leaky);
        assert_eq!(l.params().len(), 5);
        assert_eq!(l.params()[0].data.len(), 40);
        assert_eq!(l.flops_per_sample(), 240);
    }

    #[test]
    fn update_changes_weights_in_delta_direction() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut l = ConnectedLayer::new(2, 1, Activation::Linear, 1, &mut rng);
        l.set_params(&[vec![0.0, 0.0], vec![0.0], vec![1.0], vec![0.0], vec![1.0]]);
        l.forward(&[1.0, -1.0], 1);
        l.delta_mut()[0] = 1.0; // "increase the output"
        l.backward(&[1.0, -1.0], None, 1);
        l.update(&UpdateArgs {
            learning_rate: 1.0,
            momentum: 0.0,
            decay: 0.0,
            batch: 1,
        });
        // Gradient ascent along delta: weight for +1 input grows, for -1 input shrinks.
        assert!(l.weights[0] > 0.0);
        assert!(l.weights[1] < 0.0);
    }

    #[test]
    #[should_panic(expected = "non-zero dimensions")]
    fn zero_dimension_rejected() {
        let mut rng = StdRng::seed_from_u64(5);
        let _ = ConnectedLayer::new(0, 3, Activation::Linear, 1, &mut rng);
    }
}
