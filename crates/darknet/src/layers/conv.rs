//! 2-D convolutional layer (convolution as GEMM over an im2col buffer), the workhorse of
//! the paper's CNN models. Every convolutional layer uses a leaky-ReLU activation in the
//! paper's experiments.
//!
//! The forward pass over a batch runs sample-parallel across scoped threads (each
//! sample's im2col + GEMM + bias + activation writes a disjoint output band), and the
//! backward pass parallelises inside its GEMM calls; both produce bit-identical results
//! for every thread count.

use crate::activation::Activation;
use crate::dispatch::{selected_gemm, GemmKind};
use crate::layers::{layer_gemm, ParamView, UpdateArgs, PARAM_TENSOR_NAMES};
use crate::matrix::{
    axpy_with_engine, col2im, conv_out_dim, gemm_with_engine, im2col, scal_with_engine,
    GEMM_DEFAULT_KC,
};
use rand::Rng;
use std::cell::RefCell;

thread_local! {
    /// Per-thread im2col scratch for the sample-parallel forward path.
    static COL_BUFFER: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

/// Minimum per-sample GEMM work (`filters * k * out_pixels`) before the forward pass
/// fans a batch out across threads; tiny layers stay serial.
const FORWARD_PAR_MIN_WORK: usize = 1 << 14;

/// Bias-add + activation over one sample's output band, shared by the serial and
/// sample-parallel forward paths so both compute byte-identical results.
fn forward_epilogue(out: &mut [f32], biases: &[f32], n: usize, activation: Activation) {
    for (f, bias) in biases.iter().enumerate() {
        for o in out[f * n..(f + 1) * n].iter_mut() {
            *o += bias;
        }
    }
    activation.apply_slice(out);
}

/// A 2-D convolutional layer.
#[derive(Debug, Clone)]
pub struct ConvLayer {
    // Geometry.
    in_h: usize,
    in_w: usize,
    in_c: usize,
    filters: usize,
    ksize: usize,
    stride: usize,
    pad: usize,
    out_h: usize,
    out_w: usize,
    activation: Activation,
    // Learnable parameters and their gradient accumulators.
    weights: Vec<f32>,
    weight_updates: Vec<f32>,
    biases: Vec<f32>,
    bias_updates: Vec<f32>,
    // Batch-normalisation style statistics. The paper's small CNNs do not enable batch
    // norm, but the tensors are part of every Darknet layer and are mirrored to PM, so
    // they are carried (at their neutral values) to keep the 5-tensors-per-layer layout.
    scales: Vec<f32>,
    rolling_mean: Vec<f32>,
    rolling_variance: Vec<f32>,
    // Work buffers.
    output: Vec<f32>,
    delta: Vec<f32>,
    col_buffer: Vec<f32>,
    /// Resolved GEMM engine for every kernel this layer runs. Set from the
    /// `PLINIUS_GEMM` policy at construction, re-settable through
    /// [`crate::Network::set_gemm_policy`].
    engine: GemmKind,
}

impl ConvLayer {
    /// Creates a convolutional layer for inputs of shape `(in_c, in_h, in_w)`.
    ///
    /// # Panics
    ///
    /// Panics if the geometry produces an empty output.
    #[allow(clippy::too_many_arguments)]
    pub fn new<R: Rng>(
        in_h: usize,
        in_w: usize,
        in_c: usize,
        filters: usize,
        ksize: usize,
        stride: usize,
        pad: usize,
        activation: Activation,
        batch: usize,
        rng: &mut R,
    ) -> Self {
        assert!(
            filters > 0 && ksize > 0 && stride > 0,
            "bad convolution geometry"
        );
        let out_h = conv_out_dim(in_h, ksize, stride, pad);
        let out_w = conv_out_dim(in_w, ksize, stride, pad);
        assert!(out_h > 0 && out_w > 0, "convolution output is empty");
        let weight_count = filters * in_c * ksize * ksize;
        // Kaiming-style initialisation, matching Darknet's scale choice.
        let scale = (2.0 / (in_c * ksize * ksize) as f32).sqrt();
        let weights = (0..weight_count)
            .map(|_| rng.gen_range(-1.0f32..1.0) * scale)
            .collect();
        let outputs = filters * out_h * out_w;
        ConvLayer {
            in_h,
            in_w,
            in_c,
            filters,
            ksize,
            stride,
            pad,
            out_h,
            out_w,
            activation,
            weights,
            weight_updates: vec![0.0; weight_count],
            biases: vec![0.0; filters],
            bias_updates: vec![0.0; filters],
            scales: vec![1.0; filters],
            rolling_mean: vec![0.0; filters],
            rolling_variance: vec![1.0; filters],
            output: vec![0.0; outputs * batch],
            delta: vec![0.0; outputs * batch],
            col_buffer: vec![0.0; in_c * ksize * ksize * out_h * out_w],
            engine: selected_gemm(),
        }
    }

    /// The GEMM engine this layer's kernels run on.
    pub fn gemm_engine(&self) -> GemmKind {
        self.engine
    }

    /// Pins the GEMM engine for every kernel this layer runs.
    pub fn set_gemm_engine(&mut self, engine: GemmKind) {
        self.engine = engine;
    }

    /// Number of inputs per sample.
    pub fn inputs(&self) -> usize {
        self.in_c * self.in_h * self.in_w
    }

    /// Number of outputs per sample.
    pub fn outputs(&self) -> usize {
        self.filters * self.out_h * self.out_w
    }

    /// Output shape `(channels, height, width)`.
    pub fn out_shape(&self) -> (usize, usize, usize) {
        (self.filters, self.out_h, self.out_w)
    }

    /// Number of filters.
    pub fn filters(&self) -> usize {
        self.filters
    }

    /// Kernel size.
    pub fn ksize(&self) -> usize {
        self.ksize
    }

    /// The activation function applied to the outputs.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    fn ensure_batch(&mut self, batch: usize) {
        let needed = self.outputs() * batch;
        if self.output.len() < needed {
            self.output.resize(needed, 0.0);
            self.delta.resize(needed, 0.0);
        }
    }

    /// Forward pass. Batches fan out sample-parallel across scoped threads (disjoint
    /// output bands, per-thread im2col scratch); the output is bit-identical for every
    /// thread count.
    ///
    /// # Panics
    ///
    /// Panics if `input` is shorter than `batch * inputs()`.
    pub fn forward(&mut self, input: &[f32], batch: usize) {
        assert!(
            input.len() >= batch * self.inputs(),
            "convolution input too small"
        );
        self.ensure_batch(batch);
        let m = self.filters;
        let k = self.in_c * self.ksize * self.ksize;
        let n = self.out_h * self.out_w;
        let threads = if batch > 1 && m * k * n >= FORWARD_PAR_MIN_WORK {
            plinius_parallel::max_threads().min(batch)
        } else {
            1
        };
        let in_size = self.inputs();
        if threads > 1 {
            // Each sample writes its own m*n output band; the inner GEMM stays
            // single-threaded (the batch is the parallel axis).
            let weights = &self.weights;
            let biases = &self.biases;
            let activation = self.activation;
            let engine = self.engine;
            let (in_c, in_h, in_w) = (self.in_c, self.in_h, self.in_w);
            let (ksize, stride, pad) = (self.ksize, self.stride, self.pad);
            plinius_parallel::par_chunks_mut(
                &mut self.output[..batch * m * n],
                m * n,
                threads,
                |b, out| {
                    let sample = &input[b * in_size..(b + 1) * in_size];
                    COL_BUFFER.with(|buf| {
                        let mut col = buf.borrow_mut();
                        col.resize(k * n, 0.0);
                        im2col(sample, in_c, in_h, in_w, ksize, stride, pad, &mut col);
                        out.iter_mut().for_each(|o| *o = 0.0);
                        gemm_with_engine(
                            engine,
                            1,
                            GEMM_DEFAULT_KC,
                            false,
                            false,
                            m,
                            n,
                            k,
                            1.0,
                            weights,
                            k,
                            &col,
                            n,
                            0.0,
                            out,
                            n,
                        );
                    });
                    forward_epilogue(out, biases, n, activation);
                },
            );
        } else {
            for b in 0..batch {
                let sample = &input[b * in_size..(b + 1) * in_size];
                im2col(
                    sample,
                    self.in_c,
                    self.in_h,
                    self.in_w,
                    self.ksize,
                    self.stride,
                    self.pad,
                    &mut self.col_buffer,
                );
                let out = &mut self.output[b * m * n..(b + 1) * m * n];
                out.iter_mut().for_each(|o| *o = 0.0);
                // Row-band parallelism inside the GEMM still applies (e.g. single-
                // sample inference on a large layer); results are thread-invariant.
                layer_gemm(
                    self.engine,
                    false,
                    false,
                    m,
                    n,
                    k,
                    1.0,
                    &self.weights,
                    k,
                    &self.col_buffer,
                    n,
                    0.0,
                    out,
                    n,
                );
                forward_epilogue(out, &self.biases, n, self.activation);
            }
        }
    }

    /// Backward pass: accumulates weight/bias gradients and optionally propagates the
    /// gradient to the layer input.
    ///
    /// # Panics
    ///
    /// Panics if the buffers are inconsistent with `batch`.
    pub fn backward(&mut self, input: &[f32], mut prev_delta: Option<&mut [f32]>, batch: usize) {
        assert!(
            input.len() >= batch * self.inputs(),
            "convolution input too small"
        );
        let m = self.filters;
        let k = self.in_c * self.ksize * self.ksize;
        let n = self.out_h * self.out_w;
        let in_size = self.inputs();
        let mut col_delta = vec![0.0f32; k * n];
        for b in 0..batch {
            let out = &self.output[b * m * n..(b + 1) * m * n];
            let delta = &mut self.delta[b * m * n..(b + 1) * m * n];
            self.activation.gradient_slice(out, delta);
            for f in 0..m {
                self.bias_updates[f] += delta[f * n..(f + 1) * n].iter().sum::<f32>();
            }
            let sample = &input[b * in_size..(b + 1) * in_size];
            im2col(
                sample,
                self.in_c,
                self.in_h,
                self.in_w,
                self.ksize,
                self.stride,
                self.pad,
                &mut self.col_buffer,
            );
            // weight_updates += delta * col^T
            layer_gemm(
                self.engine,
                false,
                true,
                m,
                k,
                n,
                1.0,
                delta,
                n,
                &self.col_buffer,
                n,
                1.0,
                &mut self.weight_updates,
                k,
            );
            if let Some(prev) = prev_delta.as_deref_mut() {
                // col_delta = W^T * delta, then scatter back to image space.
                col_delta.iter_mut().for_each(|v| *v = 0.0);
                layer_gemm(
                    self.engine,
                    true,
                    false,
                    k,
                    n,
                    m,
                    1.0,
                    &self.weights,
                    k,
                    delta,
                    n,
                    0.0,
                    &mut col_delta,
                    n,
                );
                let prev_sample = &mut prev[b * in_size..(b + 1) * in_size];
                col2im(
                    &col_delta,
                    self.in_c,
                    self.in_h,
                    self.in_w,
                    self.ksize,
                    self.stride,
                    self.pad,
                    prev_sample,
                );
            }
        }
    }

    /// Applies accumulated gradients with SGD + momentum + weight decay (Darknet's
    /// update rule; `delta` holds the negative gradient so updates are additive).
    pub fn update(&mut self, args: &UpdateArgs) {
        let batch = args.batch.max(1) as f32;
        axpy_with_engine(
            self.engine,
            args.learning_rate / batch,
            &self.bias_updates,
            &mut self.biases,
        );
        scal_with_engine(self.engine, args.momentum, &mut self.bias_updates);
        axpy_with_engine(
            self.engine,
            -args.decay * batch,
            &self.weights,
            &mut self.weight_updates,
        );
        axpy_with_engine(
            self.engine,
            args.learning_rate / batch,
            &self.weight_updates,
            &mut self.weights,
        );
        scal_with_engine(self.engine, args.momentum, &mut self.weight_updates);
    }

    /// Output buffer of the latest forward pass.
    pub fn output(&self) -> &[f32] {
        &self.output
    }

    /// Mutable delta buffer.
    pub fn delta_mut(&mut self) -> &mut [f32] {
        &mut self.delta
    }

    /// Simultaneous shared-output / mutable-delta borrow.
    pub fn output_and_delta_mut(&mut self) -> (&[f32], &mut [f32]) {
        (&self.output, &mut self.delta)
    }

    /// The five named parameter tensors of this layer.
    pub fn params(&self) -> Vec<ParamView<'_>> {
        self.param_views().to_vec()
    }

    /// The same five tensors as [`Self::params`] in a fixed array — no allocation,
    /// for the mirror's allocation-free staging loop.
    pub fn param_views(&self) -> [ParamView<'_>; crate::PARAM_TENSORS_PER_LAYER] {
        [
            ParamView {
                name: PARAM_TENSOR_NAMES[0],
                data: &self.weights,
            },
            ParamView {
                name: PARAM_TENSOR_NAMES[1],
                data: &self.biases,
            },
            ParamView {
                name: PARAM_TENSOR_NAMES[2],
                data: &self.scales,
            },
            ParamView {
                name: PARAM_TENSOR_NAMES[3],
                data: &self.rolling_mean,
            },
            ParamView {
                name: PARAM_TENSOR_NAMES[4],
                data: &self.rolling_variance,
            },
        ]
    }

    /// Overwrites the parameter tensors (mirror-in path).
    ///
    /// # Panics
    ///
    /// Panics if the tensor count or any length differs from this layer's.
    pub fn set_params(&mut self, tensors: &[Vec<f32>]) {
        assert_eq!(tensors.len(), 5, "convolutional layer expects 5 tensors");
        let targets: [&mut Vec<f32>; 5] = [
            &mut self.weights,
            &mut self.biases,
            &mut self.scales,
            &mut self.rolling_mean,
            &mut self.rolling_variance,
        ];
        for (target, source) in targets.into_iter().zip(tensors.iter()) {
            assert_eq!(
                target.len(),
                source.len(),
                "parameter tensor length mismatch"
            );
            target.copy_from_slice(source);
        }
    }

    /// Approximate FLOPs per sample (forward + backward ≈ 3x the forward GEMM).
    pub fn flops_per_sample(&self) -> u64 {
        let fwd = 2 * self.filters * self.in_c * self.ksize * self.ksize * self.out_h * self.out_w;
        (3 * fwd) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_layer(batch: usize) -> ConvLayer {
        let mut rng = StdRng::seed_from_u64(7);
        ConvLayer::new(5, 5, 1, 2, 3, 1, 1, Activation::Leaky, batch, &mut rng)
    }

    #[test]
    fn geometry_is_computed_correctly() {
        let l = small_layer(1);
        assert_eq!(l.out_shape(), (2, 5, 5));
        assert_eq!(l.outputs(), 50);
        assert_eq!(l.inputs(), 25);
        assert_eq!(l.filters(), 2);
        assert_eq!(l.ksize(), 3);
        assert_eq!(l.activation(), Activation::Leaky);
        assert_eq!(
            l.params().iter().map(|p| p.data.len()).sum::<usize>(),
            2 * 9 + 2 + 2 + 2 + 2
        );
    }

    #[test]
    fn identity_kernel_reproduces_input() {
        // A single 1x1 filter with weight 1 and linear activation copies the input.
        let mut rng = StdRng::seed_from_u64(1);
        let mut l = ConvLayer::new(4, 4, 1, 1, 1, 1, 0, Activation::Linear, 1, &mut rng);
        l.set_params(&[vec![1.0], vec![0.0], vec![1.0], vec![0.0], vec![1.0]]);
        let input: Vec<f32> = (0..16).map(|v| v as f32).collect();
        l.forward(&input, 1);
        assert_eq!(l.output(), &input[..]);
    }

    #[test]
    fn known_convolution_value() {
        // One 2x2 filter of all ones over a 2x2 image equals the sum of the image.
        let mut rng = StdRng::seed_from_u64(1);
        let mut l = ConvLayer::new(2, 2, 1, 1, 2, 1, 0, Activation::Linear, 1, &mut rng);
        l.set_params(&[vec![1.0; 4], vec![0.5], vec![1.0], vec![0.0], vec![1.0]]);
        l.forward(&[1.0, 2.0, 3.0, 4.0], 1);
        assert_eq!(l.output(), &[10.5]);
    }

    #[test]
    fn gradient_check_weights() {
        // Finite-difference check of dL/dw where L = sum(output) on a tiny layer.
        let mut rng = StdRng::seed_from_u64(3);
        let mut layer = ConvLayer::new(4, 4, 1, 2, 3, 1, 0, Activation::Leaky, 1, &mut rng);
        let input: Vec<f32> = (0..16).map(|i| (i as f32) / 7.5 - 1.0).collect();

        // Analytic gradient: delta = dL/dy = 1 everywhere (L = sum of outputs), so the
        // accumulated weight_updates equal the gradient (note: Darknet stores the
        // *negative* gradient in delta, so pass +1 and compare signs accordingly).
        layer.forward(&input, 1);
        layer.delta_mut().iter_mut().for_each(|d| *d = 1.0);
        layer.backward(&input, None, 1);
        let analytic = layer.weight_updates.clone();

        let eps = 1e-3f32;
        for wi in [0usize, 3, 7, 11, 17] {
            let mut plus = layer.clone();
            plus.weights[wi] += eps;
            plus.forward(&input, 1);
            let lp: f32 = plus.output().iter().sum();
            let mut minus = layer.clone();
            minus.weights[wi] -= eps;
            minus.forward(&input, 1);
            let lm: f32 = minus.output().iter().sum();
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - analytic[wi]).abs() < 2e-2,
                "weight {wi}: numeric {numeric} vs analytic {}",
                analytic[wi]
            );
        }
    }

    #[test]
    fn gradient_check_input() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut layer = ConvLayer::new(4, 4, 1, 2, 3, 1, 1, Activation::Linear, 1, &mut rng);
        let input: Vec<f32> = (0..16).map(|i| (i as f32) * 0.1 - 0.8).collect();
        layer.forward(&input, 1);
        layer.delta_mut().iter_mut().for_each(|d| *d = 1.0);
        let mut prev_delta = vec![0.0f32; 16];
        layer.backward(&input, Some(&mut prev_delta), 1);
        let eps = 1e-3f32;
        for xi in [0usize, 5, 10, 15] {
            let mut plus = input.clone();
            plus[xi] += eps;
            layer.forward(&plus, 1);
            let lp: f32 = layer.output().iter().sum();
            let mut minus = input.clone();
            minus[xi] -= eps;
            layer.forward(&minus, 1);
            let lm: f32 = layer.output().iter().sum();
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - prev_delta[xi]).abs() < 2e-2,
                "input {xi}: numeric {numeric} vs analytic {}",
                prev_delta[xi]
            );
        }
    }

    #[test]
    fn update_moves_weights_toward_positive_delta() {
        let mut layer = small_layer(1);
        let before = layer.weights.clone();
        let input = vec![1.0f32; 25];
        layer.forward(&input, 1);
        layer.delta_mut().iter_mut().for_each(|d| *d = 1.0);
        layer.backward(&input, None, 1);
        layer.update(&UpdateArgs {
            learning_rate: 0.1,
            momentum: 0.0,
            decay: 0.0,
            batch: 1,
        });
        assert_ne!(layer.weights, before);
    }

    #[test]
    fn batch_dimension_is_independent() {
        // Feeding the same sample twice in a batch gives identical per-sample outputs.
        let mut layer = small_layer(2);
        let sample: Vec<f32> = (0..25).map(|v| v as f32 * 0.05).collect();
        let mut batch_input = sample.clone();
        batch_input.extend_from_slice(&sample);
        layer.forward(&batch_input, 2);
        let outs = layer.output();
        assert_eq!(&outs[..50], &outs[50..100]);
    }

    #[test]
    fn flops_are_positive_and_scale_with_filters() {
        let small = small_layer(1).flops_per_sample();
        let mut rng = StdRng::seed_from_u64(7);
        let big =
            ConvLayer::new(5, 5, 1, 8, 3, 1, 1, Activation::Leaky, 1, &mut rng).flops_per_sample();
        assert!(small > 0);
        assert_eq!(big, small * 4);
    }

    #[test]
    #[should_panic(expected = "expects 5 tensors")]
    fn set_params_validates_count() {
        let mut layer = small_layer(1);
        layer.set_params(&[vec![0.0]]);
    }
}
