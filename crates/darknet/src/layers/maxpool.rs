//! Max-pooling layer: spatial down-sampling with winner-take-all gradient routing.

use crate::matrix::conv_out_dim;

/// A 2-D max-pooling layer.
#[derive(Debug, Clone)]
pub struct MaxPoolLayer {
    in_h: usize,
    in_w: usize,
    in_c: usize,
    size: usize,
    stride: usize,
    out_h: usize,
    out_w: usize,
    output: Vec<f32>,
    delta: Vec<f32>,
    /// Index (into the per-sample input) of the winning element for every output, used to
    /// route the gradient during the backward pass.
    indexes: Vec<usize>,
}

impl MaxPoolLayer {
    /// Creates a max-pooling layer over inputs of shape `(in_c, in_h, in_w)`.
    ///
    /// # Panics
    ///
    /// Panics if the pooling window is larger than the input.
    pub fn new(
        in_h: usize,
        in_w: usize,
        in_c: usize,
        size: usize,
        stride: usize,
        batch: usize,
    ) -> Self {
        assert!(size > 0 && stride > 0, "bad pooling geometry");
        assert!(
            size <= in_h && size <= in_w,
            "pooling window larger than input"
        );
        let out_h = conv_out_dim(in_h, size, stride, 0);
        let out_w = conv_out_dim(in_w, size, stride, 0);
        let outputs = in_c * out_h * out_w;
        MaxPoolLayer {
            in_h,
            in_w,
            in_c,
            size,
            stride,
            out_h,
            out_w,
            output: vec![0.0; outputs * batch],
            delta: vec![0.0; outputs * batch],
            indexes: vec![0; outputs * batch],
        }
    }

    /// Number of inputs per sample.
    pub fn inputs(&self) -> usize {
        self.in_c * self.in_h * self.in_w
    }

    /// Number of outputs per sample.
    pub fn outputs(&self) -> usize {
        self.in_c * self.out_h * self.out_w
    }

    /// Output shape `(channels, height, width)`.
    pub fn out_shape(&self) -> (usize, usize, usize) {
        (self.in_c, self.out_h, self.out_w)
    }

    fn ensure_batch(&mut self, batch: usize) {
        let needed = self.outputs() * batch;
        if self.output.len() < needed {
            self.output.resize(needed, 0.0);
            self.delta.resize(needed, 0.0);
            self.indexes.resize(needed, 0);
        }
    }

    /// Forward pass.
    ///
    /// # Panics
    ///
    /// Panics if `input` is shorter than `batch * inputs()`.
    pub fn forward(&mut self, input: &[f32], batch: usize) {
        assert!(
            input.len() >= batch * self.inputs(),
            "maxpool input too small"
        );
        self.ensure_batch(batch);
        for b in 0..batch {
            let sample = &input[b * self.inputs()..(b + 1) * self.inputs()];
            for c in 0..self.in_c {
                for oh in 0..self.out_h {
                    for ow in 0..self.out_w {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = 0usize;
                        for kh in 0..self.size {
                            for kw in 0..self.size {
                                let ih = oh * self.stride + kh;
                                let iw = ow * self.stride + kw;
                                if ih < self.in_h && iw < self.in_w {
                                    let idx = (c * self.in_h + ih) * self.in_w + iw;
                                    if sample[idx] > best {
                                        best = sample[idx];
                                        best_idx = idx;
                                    }
                                }
                            }
                        }
                        let out_idx = b * self.outputs() + (c * self.out_h + oh) * self.out_w + ow;
                        self.output[out_idx] = best;
                        self.indexes[out_idx] = best_idx;
                    }
                }
            }
        }
    }

    /// Backward pass: routes each output delta to the winning input position.
    pub fn backward(&mut self, _input: &[f32], prev_delta: Option<&mut [f32]>, batch: usize) {
        let Some(prev) = prev_delta else { return };
        for b in 0..batch {
            for o in 0..self.outputs() {
                let out_idx = b * self.outputs() + o;
                let in_idx = b * self.inputs() + self.indexes[out_idx];
                prev[in_idx] += self.delta[out_idx];
            }
        }
    }

    /// Output buffer of the latest forward pass.
    pub fn output(&self) -> &[f32] {
        &self.output
    }

    /// Mutable delta buffer.
    pub fn delta_mut(&mut self) -> &mut [f32] {
        &mut self.delta
    }

    /// Simultaneous shared-output / mutable-delta borrow.
    pub fn output_and_delta_mut(&mut self) -> (&[f32], &mut [f32]) {
        (&self.output, &mut self.delta)
    }

    /// Approximate FLOPs per sample (comparisons counted as one op each).
    pub fn flops_per_sample(&self) -> u64 {
        (self.outputs() * self.size * self.size) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pools_maxima_of_each_window() {
        let mut l = MaxPoolLayer::new(4, 4, 1, 2, 2, 1);
        assert_eq!(l.out_shape(), (1, 2, 2));
        #[rustfmt::skip]
        let input = vec![
            1.0, 2.0, 5.0, 6.0,
            3.0, 4.0, 7.0, 8.0,
            9.0, 10.0, 13.0, 14.0,
            11.0, 12.0, 15.0, 16.0,
        ];
        l.forward(&input, 1);
        assert_eq!(l.output(), &[4.0, 8.0, 12.0, 16.0]);
    }

    #[test]
    fn backward_routes_delta_to_argmax() {
        let mut l = MaxPoolLayer::new(2, 2, 1, 2, 2, 1);
        let input = vec![1.0, 9.0, 3.0, 4.0];
        l.forward(&input, 1);
        l.delta_mut()[0] = 2.5;
        let mut prev = vec![0.0; 4];
        l.backward(&input, Some(&mut prev), 1);
        assert_eq!(prev, vec![0.0, 2.5, 0.0, 0.0]);
    }

    #[test]
    fn multi_channel_and_batch() {
        let mut l = MaxPoolLayer::new(2, 2, 2, 2, 2, 2);
        assert_eq!(l.outputs(), 2);
        // Two samples, two channels of 2x2 each.
        let sample: Vec<f32> = vec![1.0, 2.0, 3.0, 4.0, 8.0, 7.0, 6.0, 5.0];
        let mut input = sample.clone();
        input.extend(sample.iter().map(|v| v * 10.0));
        l.forward(&input, 2);
        assert_eq!(l.output()[..2], [4.0, 8.0]);
        assert_eq!(l.output()[2..4], [40.0, 80.0]);
        assert!(l.flops_per_sample() > 0);
    }

    #[test]
    #[should_panic(expected = "larger than input")]
    fn window_larger_than_input_is_rejected() {
        let _ = MaxPoolLayer::new(2, 2, 1, 3, 1, 1);
    }
}
