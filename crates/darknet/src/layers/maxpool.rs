//! Max-pooling layer: spatial down-sampling with winner-take-all gradient routing.
//!
//! Output dimensions use the cover-the-input convention ([`pool_out_dim`]): the final
//! window of a non-stride-divisible input hangs over the edge and pools only its valid
//! cells. A window with *no* valid cell (possible when `stride > size`) outputs `0.0`
//! and records the `NO_WINNER` sentinel so the backward pass routes no gradient —
//! previously such windows kept index 0 and leaked a spurious delta into input cell 0.

use crate::matrix::pool_out_dim;

/// Sentinel stored in `indexes` for pool windows that contain no valid input cell; the
/// backward pass skips gradient routing for them.
const NO_WINNER: usize = usize::MAX;

/// A 2-D max-pooling layer.
#[derive(Debug, Clone)]
pub struct MaxPoolLayer {
    in_h: usize,
    in_w: usize,
    in_c: usize,
    size: usize,
    stride: usize,
    out_h: usize,
    out_w: usize,
    output: Vec<f32>,
    delta: Vec<f32>,
    /// Index (into the per-sample input) of the winning element for every output, used
    /// to route the gradient during the backward pass; `NO_WINNER` marks windows with
    /// no valid input cell.
    indexes: Vec<usize>,
}

impl MaxPoolLayer {
    /// Creates a max-pooling layer over inputs of shape `(in_c, in_h, in_w)`.
    ///
    /// # Panics
    ///
    /// Panics if the pooling window is larger than the input.
    pub fn new(
        in_h: usize,
        in_w: usize,
        in_c: usize,
        size: usize,
        stride: usize,
        batch: usize,
    ) -> Self {
        assert!(size > 0 && stride > 0, "bad pooling geometry");
        assert!(
            size <= in_h && size <= in_w,
            "pooling window larger than input"
        );
        let out_h = pool_out_dim(in_h, size, stride);
        let out_w = pool_out_dim(in_w, size, stride);
        let outputs = in_c * out_h * out_w;
        MaxPoolLayer {
            in_h,
            in_w,
            in_c,
            size,
            stride,
            out_h,
            out_w,
            output: vec![0.0; outputs * batch],
            delta: vec![0.0; outputs * batch],
            indexes: vec![0; outputs * batch],
        }
    }

    /// Number of inputs per sample.
    pub fn inputs(&self) -> usize {
        self.in_c * self.in_h * self.in_w
    }

    /// Number of outputs per sample.
    pub fn outputs(&self) -> usize {
        self.in_c * self.out_h * self.out_w
    }

    /// Output shape `(channels, height, width)`.
    pub fn out_shape(&self) -> (usize, usize, usize) {
        (self.in_c, self.out_h, self.out_w)
    }

    fn ensure_batch(&mut self, batch: usize) {
        let needed = self.outputs() * batch;
        if self.output.len() < needed {
            self.output.resize(needed, 0.0);
            self.delta.resize(needed, 0.0);
            self.indexes.resize(needed, 0);
        }
    }

    /// Forward pass.
    ///
    /// # Panics
    ///
    /// Panics if `input` is shorter than `batch * inputs()`.
    pub fn forward(&mut self, input: &[f32], batch: usize) {
        assert!(
            input.len() >= batch * self.inputs(),
            "maxpool input too small"
        );
        self.ensure_batch(batch);
        for b in 0..batch {
            let sample = &input[b * self.inputs()..(b + 1) * self.inputs()];
            for c in 0..self.in_c {
                for oh in 0..self.out_h {
                    for ow in 0..self.out_w {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = NO_WINNER;
                        for kh in 0..self.size {
                            for kw in 0..self.size {
                                let ih = oh * self.stride + kh;
                                let iw = ow * self.stride + kw;
                                if ih < self.in_h && iw < self.in_w {
                                    let idx = (c * self.in_h + ih) * self.in_w + iw;
                                    if best_idx == NO_WINNER || sample[idx] > best {
                                        best = sample[idx];
                                        best_idx = idx;
                                    }
                                }
                            }
                        }
                        let out_idx = b * self.outputs() + (c * self.out_h + oh) * self.out_w + ow;
                        // An empty window (no valid cell) outputs 0.0, not -inf, and
                        // keeps the sentinel so backward routes nothing.
                        self.output[out_idx] = if best_idx == NO_WINNER { 0.0 } else { best };
                        self.indexes[out_idx] = best_idx;
                    }
                }
            }
        }
    }

    /// Backward pass: routes each output delta to the winning input position. Windows
    /// without a winner (the `NO_WINNER` sentinel) route nothing.
    pub fn backward(&mut self, _input: &[f32], prev_delta: Option<&mut [f32]>, batch: usize) {
        let Some(prev) = prev_delta else { return };
        for b in 0..batch {
            for o in 0..self.outputs() {
                let out_idx = b * self.outputs() + o;
                if self.indexes[out_idx] == NO_WINNER {
                    continue;
                }
                let in_idx = b * self.inputs() + self.indexes[out_idx];
                prev[in_idx] += self.delta[out_idx];
            }
        }
    }

    /// Output buffer of the latest forward pass.
    pub fn output(&self) -> &[f32] {
        &self.output
    }

    /// Mutable delta buffer.
    pub fn delta_mut(&mut self) -> &mut [f32] {
        &mut self.delta
    }

    /// Simultaneous shared-output / mutable-delta borrow.
    pub fn output_and_delta_mut(&mut self) -> (&[f32], &mut [f32]) {
        (&self.output, &mut self.delta)
    }

    /// Approximate FLOPs per sample (comparisons counted as one op each).
    pub fn flops_per_sample(&self) -> u64 {
        (self.outputs() * self.size * self.size) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pools_maxima_of_each_window() {
        let mut l = MaxPoolLayer::new(4, 4, 1, 2, 2, 1);
        assert_eq!(l.out_shape(), (1, 2, 2));
        #[rustfmt::skip]
        let input = vec![
            1.0, 2.0, 5.0, 6.0,
            3.0, 4.0, 7.0, 8.0,
            9.0, 10.0, 13.0, 14.0,
            11.0, 12.0, 15.0, 16.0,
        ];
        l.forward(&input, 1);
        assert_eq!(l.output(), &[4.0, 8.0, 12.0, 16.0]);
    }

    #[test]
    fn backward_routes_delta_to_argmax() {
        let mut l = MaxPoolLayer::new(2, 2, 1, 2, 2, 1);
        let input = vec![1.0, 9.0, 3.0, 4.0];
        l.forward(&input, 1);
        l.delta_mut()[0] = 2.5;
        let mut prev = vec![0.0; 4];
        l.backward(&input, Some(&mut prev), 1);
        assert_eq!(prev, vec![0.0, 2.5, 0.0, 0.0]);
    }

    #[test]
    fn multi_channel_and_batch() {
        let mut l = MaxPoolLayer::new(2, 2, 2, 2, 2, 2);
        assert_eq!(l.outputs(), 2);
        // Two samples, two channels of 2x2 each.
        let sample: Vec<f32> = vec![1.0, 2.0, 3.0, 4.0, 8.0, 7.0, 6.0, 5.0];
        let mut input = sample.clone();
        input.extend(sample.iter().map(|v| v * 10.0));
        l.forward(&input, 2);
        assert_eq!(l.output()[..2], [4.0, 8.0]);
        assert_eq!(l.output()[2..4], [40.0, 80.0]);
        assert!(l.flops_per_sample() > 0);
    }

    #[test]
    #[should_panic(expected = "larger than input")]
    fn window_larger_than_input_is_rejected() {
        let _ = MaxPoolLayer::new(2, 2, 1, 3, 1, 1);
    }

    #[test]
    fn partial_edge_windows_pool_their_valid_cells() {
        // 5x5 input, 2x2 window, stride 2: out is 3x3 and the last row/column of
        // windows hangs over the edge, pooling only the valid cells.
        let mut l = MaxPoolLayer::new(5, 5, 1, 2, 2, 1);
        assert_eq!(l.out_shape(), (1, 3, 3));
        let input: Vec<f32> = (0..25).map(|v| v as f32).collect();
        l.forward(&input, 1);
        #[rustfmt::skip]
        let expected = vec![
            6.0, 8.0, 9.0,     // row windows over input rows 0-1 (col 4 partial)
            16.0, 18.0, 19.0,  // rows 2-3
            21.0, 23.0, 24.0,  // row 4 only (partial in both axes)
        ];
        assert_eq!(l.output(), &expected[..]);
        // The corner window contains exactly input[24]; its delta routes there — and
        // nowhere spuriously (in particular not into input index 0).
        l.delta_mut().iter_mut().for_each(|d| *d = 0.0);
        l.delta_mut()[8] = 1.5;
        let mut prev = vec![0.0f32; 25];
        l.backward(&input, Some(&mut prev), 1);
        let mut expected_prev = vec![0.0f32; 25];
        expected_prev[24] = 1.5;
        assert_eq!(prev, expected_prev);
    }

    #[test]
    fn empty_windows_output_zero_and_route_no_gradient() {
        // Regression: with stride > size some windows start beyond the input
        // (6 wide, 1x1 window, stride 4 -> starts at 0, 4 and 8; 8 is out of range).
        // The old code left the output at -inf and `indexes` at 0, so backward leaked
        // a spurious delta into input cell 0.
        let mut l = MaxPoolLayer::new(6, 6, 1, 1, 4, 1);
        assert_eq!(l.out_shape(), (1, 3, 3));
        let input: Vec<f32> = (0..36).map(|v| v as f32 + 1.0).collect();
        l.forward(&input, 1);
        // Window (2,2) starts at input (8,8): empty.
        assert_eq!(l.output()[8], 0.0);
        assert!(l.output().iter().all(|v| v.is_finite()));
        // Route a delta out of every output, including the empty ones.
        l.delta_mut().iter_mut().for_each(|d| *d = 1.0);
        let mut prev = vec![0.0f32; 36];
        l.backward(&input, Some(&mut prev), 1);
        // The four valid windows route 1.0 each to their (single-cell) winners...
        assert_eq!(prev[0], 1.0);
        assert_eq!(prev[4], 1.0);
        assert_eq!(prev[4 * 6], 1.0);
        assert_eq!(prev[4 * 6 + 4], 1.0);
        // ...and nothing else receives anything: no spurious delta into cell 0 beyond
        // its own window's contribution.
        assert_eq!(prev.iter().sum::<f32>(), 4.0);
    }
}
