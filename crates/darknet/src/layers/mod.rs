//! Neural-network layers in the style of Darknet: convolutional (with LReLU), max
//! pooling, fully connected and softmax. Every layer owns its output and delta buffers
//! and exposes its learnable parameters as named tensors so that the Plinius mirroring
//! module can encrypt and persist them buffer by buffer.

pub mod connected;
pub mod conv;
pub mod maxpool;
pub mod softmax;

pub use connected::ConnectedLayer;
pub use conv::ConvLayer;
pub use maxpool::MaxPoolLayer;
pub use softmax::SoftmaxLayer;

use crate::dispatch::GemmKind;
use crate::matrix::{gemm_with_engine, GEMM_DEFAULT_KC};
use std::fmt;

/// [`crate::matrix::gemm`] with the engine pinned instead of re-resolved from the
/// environment: the layer hot paths capture the engine once at construction (or via
/// [`Layer::set_gemm_engine`]) so a mid-training env change cannot mix kernels within
/// one iteration. Threading mirrors `gemm`: fan out only past the engine's
/// [`GemmKind::par_min_work`] product.
#[allow(clippy::too_many_arguments)]
pub(crate) fn layer_gemm(
    engine: GemmKind,
    ta: bool,
    tb: bool,
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    lda: usize,
    b: &[f32],
    ldb: usize,
    beta: f32,
    c: &mut [f32],
    ldc: usize,
) {
    let work = m.saturating_mul(n).saturating_mul(k);
    let threads = if work < engine.par_min_work() {
        1
    } else {
        plinius_parallel::max_threads()
    };
    gemm_with_engine(
        engine,
        threads,
        GEMM_DEFAULT_KC,
        ta,
        tb,
        m,
        n,
        k,
        alpha,
        a,
        lda,
        b,
        ldb,
        beta,
        c,
        ldc,
    );
}

/// Hyper-parameters used when applying accumulated gradients.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UpdateArgs {
    /// Learning rate (0.1 in the paper's experiments).
    pub learning_rate: f32,
    /// Momentum coefficient.
    pub momentum: f32,
    /// Weight decay coefficient.
    pub decay: f32,
    /// Batch size the gradients were accumulated over.
    pub batch: usize,
}

impl Default for UpdateArgs {
    fn default() -> Self {
        UpdateArgs {
            learning_rate: 0.1,
            momentum: 0.9,
            decay: 0.0001,
            batch: 128,
        }
    }
}

/// The kind of a layer, mirroring Darknet's `LAYER_TYPE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerKind {
    /// 2-D convolution + activation.
    Convolutional,
    /// Max pooling.
    MaxPool,
    /// Fully connected + activation.
    Connected,
    /// Softmax output.
    Softmax,
}

impl fmt::Display for LayerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayerKind::Convolutional => write!(f, "convolutional"),
            LayerKind::MaxPool => write!(f, "maxpool"),
            LayerKind::Connected => write!(f, "connected"),
            LayerKind::Softmax => write!(f, "softmax"),
        }
    }
}

/// Number of named parameter tensors every trainable layer exposes (weights, biases,
/// scales, rolling mean, rolling variance) — the "5 parameter matrices per layer" of the
/// paper's PM-metadata accounting (§VI, 140 B per layer).
pub const PARAM_TENSORS_PER_LAYER: usize = 5;

/// The canonical names of the per-layer parameter tensors.
pub const PARAM_TENSOR_NAMES: [&str; PARAM_TENSORS_PER_LAYER] = [
    "weights",
    "biases",
    "scales",
    "rolling_mean",
    "rolling_variance",
];

/// A read-only view of one named parameter tensor of a layer.
#[derive(Debug, Clone, Copy)]
pub struct ParamView<'a> {
    /// Tensor name (one of [`PARAM_TENSOR_NAMES`]).
    pub name: &'static str,
    /// The tensor values.
    pub data: &'a [f32],
}

/// One layer of a [`crate::Network`].
#[derive(Debug, Clone)]
pub enum Layer {
    /// Convolution + activation.
    Convolutional(ConvLayer),
    /// Max pooling.
    MaxPool(MaxPoolLayer),
    /// Fully connected + activation.
    Connected(ConnectedLayer),
    /// Softmax output.
    Softmax(SoftmaxLayer),
}

impl Layer {
    /// The layer's kind.
    pub fn kind(&self) -> LayerKind {
        match self {
            Layer::Convolutional(_) => LayerKind::Convolutional,
            Layer::MaxPool(_) => LayerKind::MaxPool,
            Layer::Connected(_) => LayerKind::Connected,
            Layer::Softmax(_) => LayerKind::Softmax,
        }
    }

    /// Number of output values per sample.
    pub fn outputs(&self) -> usize {
        match self {
            Layer::Convolutional(l) => l.outputs(),
            Layer::MaxPool(l) => l.outputs(),
            Layer::Connected(l) => l.outputs(),
            Layer::Softmax(l) => l.outputs(),
        }
    }

    /// Output spatial shape `(channels, height, width)` per sample.
    pub fn out_shape(&self) -> (usize, usize, usize) {
        match self {
            Layer::Convolutional(l) => l.out_shape(),
            Layer::MaxPool(l) => l.out_shape(),
            Layer::Connected(l) => (l.outputs(), 1, 1),
            Layer::Softmax(l) => (l.outputs(), 1, 1),
        }
    }

    /// Forward pass over a batch (`input` holds `batch * in_size` values).
    pub fn forward(&mut self, input: &[f32], batch: usize) {
        match self {
            Layer::Convolutional(l) => l.forward(input, batch),
            Layer::MaxPool(l) => l.forward(input, batch),
            Layer::Connected(l) => l.forward(input, batch),
            Layer::Softmax(l) => l.forward(input, batch),
        }
    }

    /// Backward pass: consumes this layer's `delta`, accumulates parameter gradients and
    /// (if `prev_delta` is given) adds the gradient with respect to the layer input.
    pub fn backward(&mut self, input: &[f32], prev_delta: Option<&mut [f32]>, batch: usize) {
        match self {
            Layer::Convolutional(l) => l.backward(input, prev_delta, batch),
            Layer::MaxPool(l) => l.backward(input, prev_delta, batch),
            Layer::Connected(l) => l.backward(input, prev_delta, batch),
            Layer::Softmax(l) => l.backward(input, prev_delta, batch),
        }
    }

    /// Applies (and then decays) the accumulated gradients.
    pub fn update(&mut self, args: &UpdateArgs) {
        match self {
            Layer::Convolutional(l) => l.update(args),
            Layer::Connected(l) => l.update(args),
            Layer::MaxPool(_) | Layer::Softmax(_) => {}
        }
    }

    /// The batch-sized output buffer of the most recent forward pass.
    pub fn output(&self) -> &[f32] {
        match self {
            Layer::Convolutional(l) => l.output(),
            Layer::MaxPool(l) => l.output(),
            Layer::Connected(l) => l.output(),
            Layer::Softmax(l) => l.output(),
        }
    }

    /// Mutable access to the layer's delta buffer (gradient w.r.t. its output).
    pub fn delta_mut(&mut self) -> &mut [f32] {
        match self {
            Layer::Convolutional(l) => l.delta_mut(),
            Layer::MaxPool(l) => l.delta_mut(),
            Layer::Connected(l) => l.delta_mut(),
            Layer::Softmax(l) => l.delta_mut(),
        }
    }

    /// Simultaneous borrow of the output (shared) and delta (mutable) buffers, used when
    /// back-propagating into the previous layer.
    pub fn output_and_delta_mut(&mut self) -> (&[f32], &mut [f32]) {
        match self {
            Layer::Convolutional(l) => l.output_and_delta_mut(),
            Layer::MaxPool(l) => l.output_and_delta_mut(),
            Layer::Connected(l) => l.output_and_delta_mut(),
            Layer::Softmax(l) => l.output_and_delta_mut(),
        }
    }

    /// Zeroes the delta buffer (done before each training iteration).
    pub fn zero_delta(&mut self) {
        self.delta_mut().iter_mut().for_each(|d| *d = 0.0);
    }

    /// The layer's learnable parameter tensors (empty for pooling / softmax layers).
    pub fn params(&self) -> Vec<ParamView<'_>> {
        match self {
            Layer::Convolutional(l) => l.params(),
            Layer::Connected(l) => l.params(),
            Layer::MaxPool(_) | Layer::Softmax(_) => Vec::new(),
        }
    }

    /// The parameter tensors as a fixed array, `None` for non-trainable layers — the
    /// allocation-free sibling of [`Layer::params`] used by the mirror's staging loop.
    pub fn param_views(&self) -> Option<[ParamView<'_>; PARAM_TENSORS_PER_LAYER]> {
        match self {
            Layer::Convolutional(l) => Some(l.param_views()),
            Layer::Connected(l) => Some(l.param_views()),
            Layer::MaxPool(_) | Layer::Softmax(_) => None,
        }
    }

    /// Overwrites the layer's parameter tensors with the provided values (used by the
    /// Plinius mirror-in path).
    ///
    /// # Panics
    ///
    /// Panics if the number of tensors or any tensor length does not match the layer.
    pub fn set_params(&mut self, tensors: &[Vec<f32>]) {
        match self {
            Layer::Convolutional(l) => l.set_params(tensors),
            Layer::Connected(l) => l.set_params(tensors),
            Layer::MaxPool(_) | Layer::Softmax(_) => {
                assert!(
                    tensors.is_empty(),
                    "non-trainable layer received parameters"
                );
            }
        }
    }

    /// Pins the GEMM engine for the layer's kernels (no-op for layers without GEMM,
    /// i.e. pooling and softmax).
    pub fn set_gemm_engine(&mut self, engine: GemmKind) {
        match self {
            Layer::Convolutional(l) => l.set_gemm_engine(engine),
            Layer::Connected(l) => l.set_gemm_engine(engine),
            Layer::MaxPool(_) | Layer::Softmax(_) => {}
        }
    }

    /// The GEMM engine the layer's kernels run on, `None` for layers without GEMM.
    pub fn gemm_engine(&self) -> Option<GemmKind> {
        match self {
            Layer::Convolutional(l) => Some(l.gemm_engine()),
            Layer::Connected(l) => Some(l.gemm_engine()),
            Layer::MaxPool(_) | Layer::Softmax(_) => None,
        }
    }

    /// Whether the layer has learnable parameters.
    pub fn is_trainable(&self) -> bool {
        matches!(self, Layer::Convolutional(_) | Layer::Connected(_))
    }

    /// Total number of learnable parameters.
    pub fn param_count(&self) -> usize {
        self.params().iter().map(|p| p.data.len()).sum()
    }

    /// Size of the learnable parameters in bytes (`f32` elements).
    pub fn param_bytes(&self) -> usize {
        self.param_count() * std::mem::size_of::<f32>()
    }

    /// Approximate floating-point operations per sample for one forward+backward pass.
    pub fn flops_per_sample(&self) -> u64 {
        match self {
            Layer::Convolutional(l) => l.flops_per_sample(),
            Layer::MaxPool(l) => l.flops_per_sample(),
            Layer::Connected(l) => l.flops_per_sample(),
            Layer::Softmax(l) => l.flops_per_sample(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn layer_kind_display() {
        assert_eq!(LayerKind::Convolutional.to_string(), "convolutional");
        assert_eq!(LayerKind::Softmax.to_string(), "softmax");
    }

    #[test]
    fn trainable_layers_expose_five_param_tensors() {
        let mut rng = StdRng::seed_from_u64(1);
        let conv = Layer::Convolutional(ConvLayer::new(
            8,
            8,
            1,
            4,
            3,
            1,
            1,
            Activation::Leaky,
            2,
            &mut rng,
        ));
        let fc = Layer::Connected(ConnectedLayer::new(16, 10, Activation::Linear, 2, &mut rng));
        for layer in [&conv, &fc] {
            let params = layer.params();
            assert_eq!(params.len(), PARAM_TENSORS_PER_LAYER);
            for (p, name) in params.iter().zip(PARAM_TENSOR_NAMES.iter()) {
                assert_eq!(p.name, *name);
            }
            assert!(layer.is_trainable());
            assert!(layer.param_bytes() > 0);
        }
        let pool = Layer::MaxPool(MaxPoolLayer::new(8, 8, 4, 2, 2, 2));
        assert!(pool.params().is_empty());
        assert!(!pool.is_trainable());
    }

    #[test]
    fn set_params_round_trips() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut layer =
            Layer::Connected(ConnectedLayer::new(4, 3, Activation::Linear, 1, &mut rng));
        let snapshot: Vec<Vec<f32>> = layer.params().iter().map(|p| p.data.to_vec()).collect();
        let modified: Vec<Vec<f32>> = snapshot
            .iter()
            .map(|t| t.iter().map(|v| v + 1.0).collect())
            .collect();
        layer.set_params(&modified);
        let now: Vec<Vec<f32>> = layer.params().iter().map(|p| p.data.to_vec()).collect();
        assert_eq!(now, modified);
        assert_ne!(now, snapshot);
    }

    #[test]
    #[should_panic(expected = "non-trainable layer")]
    fn set_params_on_pool_panics_when_given_tensors() {
        let mut pool = Layer::MaxPool(MaxPoolLayer::new(8, 8, 4, 2, 2, 2));
        pool.set_params(&[vec![1.0]]);
    }
}
