//! Softmax output layer. The paper's models all terminate in a softmax layer trained with
//! cross-entropy loss; the loss/delta computation itself lives in
//! [`crate::network::Network::train_batch`], which sets this layer's delta to
//! `truth - prediction` (the negative gradient convention Darknet uses).

/// A softmax layer normalising each sample's activations into a probability distribution.
#[derive(Debug, Clone)]
pub struct SoftmaxLayer {
    inputs: usize,
    output: Vec<f32>,
    delta: Vec<f32>,
}

impl SoftmaxLayer {
    /// Creates a softmax layer over `inputs` classes.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is zero.
    pub fn new(inputs: usize, batch: usize) -> Self {
        assert!(inputs > 0, "softmax layer needs at least one class");
        SoftmaxLayer {
            inputs,
            output: vec![0.0; inputs * batch],
            delta: vec![0.0; inputs * batch],
        }
    }

    /// Number of inputs (= outputs = classes) per sample.
    pub fn outputs(&self) -> usize {
        self.inputs
    }

    fn ensure_batch(&mut self, batch: usize) {
        let needed = self.inputs * batch;
        if self.output.len() < needed {
            self.output.resize(needed, 0.0);
            self.delta.resize(needed, 0.0);
        }
    }

    /// Forward pass: a numerically stable softmax per sample.
    ///
    /// # Panics
    ///
    /// Panics if `input` is shorter than `batch * outputs()`.
    pub fn forward(&mut self, input: &[f32], batch: usize) {
        assert!(
            input.len() >= batch * self.inputs,
            "softmax input too small"
        );
        self.ensure_batch(batch);
        for b in 0..batch {
            let row = &input[b * self.inputs..(b + 1) * self.inputs];
            let out = &mut self.output[b * self.inputs..(b + 1) * self.inputs];
            let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for (o, x) in out.iter_mut().zip(row.iter()) {
                *o = (x - max).exp();
                sum += *o;
            }
            for o in out.iter_mut() {
                *o /= sum;
            }
        }
    }

    /// Backward pass: with the delta already holding `truth - prediction` (set by the
    /// network), the gradient w.r.t. the pre-softmax logits is simply passed through.
    pub fn backward(&mut self, _input: &[f32], prev_delta: Option<&mut [f32]>, batch: usize) {
        let Some(prev) = prev_delta else { return };
        let n = batch * self.inputs;
        for (p, d) in prev[..n].iter_mut().zip(self.delta[..n].iter()) {
            *p += d;
        }
    }

    /// Output buffer of the latest forward pass.
    pub fn output(&self) -> &[f32] {
        &self.output
    }

    /// Mutable delta buffer.
    pub fn delta_mut(&mut self) -> &mut [f32] {
        &mut self.delta
    }

    /// Simultaneous shared-output / mutable-delta borrow.
    pub fn output_and_delta_mut(&mut self) -> (&[f32], &mut [f32]) {
        (&self.output, &mut self.delta)
    }

    /// Approximate FLOPs per sample.
    pub fn flops_per_sample(&self) -> u64 {
        (4 * self.inputs) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outputs_form_probability_distribution() {
        let mut l = SoftmaxLayer::new(4, 2);
        let input = vec![1.0, 2.0, 3.0, 4.0, -1.0, 0.0, 1.0, 100.0];
        l.forward(&input, 2);
        for b in 0..2 {
            let row = &l.output()[b * 4..(b + 1) * 4];
            let sum: f32 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
            assert!(row.iter().all(|p| (0.0..=1.0).contains(p)));
        }
        // Larger logits get larger probabilities.
        assert!(l.output()[3] > l.output()[2]);
        // The huge logit dominates without overflowing.
        assert!(l.output()[7] > 0.99);
    }

    #[test]
    fn uniform_logits_give_uniform_distribution() {
        let mut l = SoftmaxLayer::new(5, 1);
        l.forward(&[3.0; 5], 1);
        for p in l.output() {
            assert!((p - 0.2).abs() < 1e-6);
        }
    }

    #[test]
    fn backward_passes_delta_through() {
        let mut l = SoftmaxLayer::new(3, 1);
        l.forward(&[0.0, 0.0, 0.0], 1);
        l.delta_mut().copy_from_slice(&[0.1, -0.2, 0.3]);
        let mut prev = vec![1.0f32; 3];
        l.backward(&[0.0; 3], Some(&mut prev), 1);
        assert_eq!(prev, vec![1.1, 0.8, 1.3]);
        assert_eq!(l.outputs(), 3);
        assert!(l.flops_per_sample() > 0);
    }

    #[test]
    #[should_panic(expected = "at least one class")]
    fn zero_classes_rejected() {
        let _ = SoftmaxLayer::new(0, 1);
    }
}
