//! # plinius-darknet
//!
//! A Darknet-style convolutional neural-network framework written from scratch in Rust:
//! the substrate the paper calls **sgx-darknet**. It provides the pieces Plinius needs to
//! train and evaluate CNNs end to end:
//!
//! * dense matrix kernels (GEMM, im2col/col2im) and activations ([`matrix`],
//!   [`activation`]);
//! * convolutional, max-pooling, fully connected and softmax layers, each exposing its
//!   five named parameter tensors for mirroring ([`layers`]);
//! * the network container with SGD training, prediction and accuracy evaluation
//!   ([`network`]);
//! * the Darknet `.cfg` parser plus programmatic model generators for the paper's model
//!   families ([`config`]);
//! * dataset handling: IDX (MNIST) parsing and a synthetic MNIST-like generator
//!   ([`data`]).
//!
//! # Example
//!
//! ```
//! use plinius_darknet::config::{build_network, mnist_cnn_config};
//! use plinius_darknet::data::synthetic_mnist;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let mut net = build_network(&mnist_cnn_config(2, 4, 8), &mut rng)?;
//! let data = synthetic_mnist(64, &mut rng);
//! let (images, labels) = data.random_batch(8, &mut rng);
//! let loss = net.train_batch(&images, &labels, 8)?;
//! assert!(loss.is_finite());
//! # Ok::<(), plinius_darknet::DarknetError>(())
//! ```

// `deny` rather than `forbid`: the `simd` kernel module is the one place allowed
// to opt back in (module-scoped `allow`, see its safety contract); everything
// else in the crate still refuses `unsafe`.
#![deny(unsafe_code)]
#![warn(missing_docs)]

use std::error::Error;
use std::fmt;

pub mod activation;
pub mod config;
pub mod data;
pub mod dispatch;
pub mod layers;
pub mod matrix;
pub mod network;
#[cfg(target_arch = "x86_64")]
mod simd;

pub use activation::Activation;
pub use config::{
    build_network, mnist_cnn_config, mnist_cnn_config_with_momentum, parse_config,
    sized_model_config,
};
pub use data::{synthetic_images, synthetic_mnist, Dataset};
pub use dispatch::{
    avx2_available, avx512_available, fma_available, selected_gemm, GemmKind, GemmPolicy, GEMM_ENV,
};
pub use layers::{Layer, LayerKind, ParamView, UpdateArgs, PARAM_TENSORS_PER_LAYER};
pub use matrix::Matrix;
pub use network::{Network, NetworkConfig};

/// Errors produced by the neural-network framework.
#[derive(Debug, Clone, PartialEq)]
pub enum DarknetError {
    /// A network must have at least one layer.
    EmptyNetwork,
    /// Two consecutive layers disagree about the per-sample tensor size.
    ShapeMismatch {
        /// Index of the offending layer.
        layer: usize,
        /// Inputs the layer expects.
        expected: usize,
        /// Outputs the previous stage produces.
        actual: usize,
    },
    /// Training buffers do not match the declared batch size.
    BatchMismatch {
        /// Declared batch size.
        batch: usize,
        /// Length of the image buffer supplied.
        images: usize,
        /// Length of the label buffer supplied.
        labels: usize,
    },
    /// Dataset construction buffers do not match the declared shape.
    DataShape {
        /// Declared number of samples.
        samples: usize,
        /// Declared inputs per sample.
        inputs: usize,
        /// Declared classes.
        classes: usize,
        /// Length of the image buffer supplied.
        images: usize,
        /// Length of the label buffer supplied.
        labels: usize,
    },
    /// A malformed or unsupported configuration file.
    Config(String),
    /// A malformed IDX (MNIST) file.
    IdxFormat(String),
}

impl fmt::Display for DarknetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DarknetError::EmptyNetwork => write!(f, "network has no layers"),
            DarknetError::ShapeMismatch {
                layer,
                expected,
                actual,
            } => write!(
                f,
                "layer {layer} expects {expected} inputs but receives {actual}"
            ),
            DarknetError::BatchMismatch {
                batch,
                images,
                labels,
            } => write!(
                f,
                "batch of {batch} samples does not match buffers of {images} image and {labels} label values"
            ),
            DarknetError::DataShape {
                samples,
                inputs,
                classes,
                images,
                labels,
            } => write!(
                f,
                "dataset of {samples} samples x {inputs} inputs x {classes} classes does not match buffers of {images}/{labels} values"
            ),
            DarknetError::Config(msg) => write!(f, "configuration error: {msg}"),
            DarknetError::IdxFormat(msg) => write!(f, "idx file error: {msg}"),
        }
    }
}

impl Error for DarknetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_messages_are_informative() {
        assert_eq!(
            DarknetError::EmptyNetwork.to_string(),
            "network has no layers"
        );
        let shape = DarknetError::ShapeMismatch {
            layer: 2,
            expected: 100,
            actual: 50,
        };
        assert!(shape.to_string().contains("layer 2"));
        assert!(DarknetError::Config("x".into())
            .to_string()
            .contains("configuration"));
        assert!(DarknetError::IdxFormat("bad magic".into())
            .to_string()
            .contains("bad magic"));
    }
}
