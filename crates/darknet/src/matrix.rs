//! Dense matrix container and the BLAS-like kernels (GEMM, AXPY, im2col/col2im) that the
//! Darknet-style layers are built on. Everything is plain `f32` on the heap — the same
//! representation the original C framework uses, which keeps the port to the (simulated)
//! enclave straightforward.

use rand::Rng;
use std::fmt;

/// A row-major dense matrix of `f32` values.
///
/// Training data is handled as one sample per row (the `matrix` type of Darknet), and the
/// same container doubles as a general 2-D buffer for tests.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a zero-filled matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "matrix data length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Matrix { rows, cols, data }
    }

    /// Creates a matrix with entries drawn uniformly from `[-scale, scale]`.
    pub fn random<R: Rng>(rows: usize, cols: usize, scale: f32, rng: &mut R) -> Self {
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(-scale..=scale))
            .collect();
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow of the row-major backing storage.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable borrow of the row-major backing storage.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix and returns its backing storage.
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Borrow of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row {r} out of range ({} rows)", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row {r} out of range ({} rows)", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Element accessor.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn set(&mut self, r: usize, c: usize, value: f32) {
        assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = value;
    }

    /// Index of the maximum element of row `r` (arg-max, used for classification).
    ///
    /// # Panics
    ///
    /// Panics if the matrix has zero columns or `r` is out of range.
    pub fn argmax_row(&self, r: usize) -> usize {
        let row = self.row(r);
        assert!(!row.is_empty(), "argmax of an empty row");
        let mut best = 0;
        for (i, v) in row.iter().enumerate() {
            if *v > row[best] {
                best = i;
            }
        }
        best
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix[{}x{}]", self.rows, self.cols)
    }
}

/// `y += alpha * x` (the BLAS AXPY kernel).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * xi;
    }
}

/// `x *= alpha` (the BLAS SCAL kernel).
pub fn scal(alpha: f32, x: &mut [f32]) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// Dot product of two equally long slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dot(x: &[f32], y: &[f32]) -> f32 {
    assert_eq!(x.len(), y.len(), "dot length mismatch");
    x.iter().zip(y.iter()).map(|(a, b)| a * b).sum()
}

/// General matrix multiply: `C = alpha * op(A) * op(B) + beta * C`, where `op` optionally
/// transposes its argument. `A` is `m x k` (after `op`), `B` is `k x n`, `C` is `m x n`,
/// all row-major with the given leading dimensions.
///
/// # Panics
///
/// Panics if any buffer is too small for the requested shape.
#[allow(clippy::too_many_arguments)]
pub fn gemm(
    ta: bool,
    tb: bool,
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    lda: usize,
    b: &[f32],
    ldb: usize,
    beta: f32,
    c: &mut [f32],
    ldc: usize,
) {
    assert!(
        c.len() >= (m.saturating_sub(1)) * ldc + n,
        "C buffer too small"
    );
    if beta != 1.0 {
        for i in 0..m {
            for j in 0..n {
                c[i * ldc + j] *= beta;
            }
        }
    }
    let a_at = |i: usize, p: usize| -> f32 {
        if ta {
            a[p * lda + i]
        } else {
            a[i * lda + p]
        }
    };
    let b_at = |p: usize, j: usize| -> f32 {
        if tb {
            b[j * ldb + p]
        } else {
            b[p * ldb + j]
        }
    };
    // Bounds are checked implicitly through slice indexing.
    for i in 0..m {
        for p in 0..k {
            let a_ip = alpha * a_at(i, p);
            if a_ip == 0.0 {
                continue;
            }
            for j in 0..n {
                c[i * ldc + j] += a_ip * b_at(p, j);
            }
        }
    }
}

/// Rearranges an image (channels x height x width, channel-major as in Darknet) into a
/// column matrix for convolution-as-GEMM. The output has `channels*ksize*ksize` rows and
/// `out_h*out_w` columns.
#[allow(clippy::too_many_arguments)]
pub fn im2col(
    input: &[f32],
    channels: usize,
    height: usize,
    width: usize,
    ksize: usize,
    stride: usize,
    pad: usize,
    output: &mut [f32],
) {
    let out_h = conv_out_dim(height, ksize, stride, pad);
    let out_w = conv_out_dim(width, ksize, stride, pad);
    let channels_col = channels * ksize * ksize;
    assert!(
        output.len() >= channels_col * out_h * out_w,
        "im2col output too small"
    );
    for c in 0..channels_col {
        let w_offset = c % ksize;
        let h_offset = (c / ksize) % ksize;
        let c_im = c / ksize / ksize;
        for h in 0..out_h {
            for w in 0..out_w {
                let im_row = h_offset as isize + (h * stride) as isize - pad as isize;
                let im_col = w_offset as isize + (w * stride) as isize - pad as isize;
                let col_index = (c * out_h + h) * out_w + w;
                output[col_index] = if im_row < 0
                    || im_col < 0
                    || im_row >= height as isize
                    || im_col >= width as isize
                {
                    0.0
                } else {
                    input[(c_im * height + im_row as usize) * width + im_col as usize]
                };
            }
        }
    }
}

/// The inverse of [`im2col`]: scatters (accumulates) a column matrix back into an image,
/// used to propagate gradients to the convolution input.
#[allow(clippy::too_many_arguments)]
pub fn col2im(
    column: &[f32],
    channels: usize,
    height: usize,
    width: usize,
    ksize: usize,
    stride: usize,
    pad: usize,
    output: &mut [f32],
) {
    let out_h = conv_out_dim(height, ksize, stride, pad);
    let out_w = conv_out_dim(width, ksize, stride, pad);
    let channels_col = channels * ksize * ksize;
    assert!(
        output.len() >= channels * height * width,
        "col2im output too small"
    );
    for c in 0..channels_col {
        let w_offset = c % ksize;
        let h_offset = (c / ksize) % ksize;
        let c_im = c / ksize / ksize;
        for h in 0..out_h {
            for w in 0..out_w {
                let im_row = h_offset as isize + (h * stride) as isize - pad as isize;
                let im_col = w_offset as isize + (w * stride) as isize - pad as isize;
                if im_row < 0 || im_col < 0 || im_row >= height as isize || im_col >= width as isize
                {
                    continue;
                }
                let col_index = (c * out_h + h) * out_w + w;
                output[(c_im * height + im_row as usize) * width + im_col as usize] +=
                    column[col_index];
            }
        }
    }
}

/// Output spatial dimension of a convolution/pooling with the given geometry.
pub fn conv_out_dim(dim: usize, ksize: usize, stride: usize, pad: usize) -> usize {
    (dim + 2 * pad - ksize) / stride + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matrix_construction_and_access() {
        let mut m = Matrix::zeros(2, 3);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        m.set(1, 2, 5.0);
        assert_eq!(m.get(1, 2), 5.0);
        assert_eq!(m.row(1), &[0.0, 0.0, 5.0]);
        m.row_mut(0)[0] = 9.0;
        assert_eq!(m.get(0, 0), 9.0);
        assert_eq!(m.to_string(), "Matrix[2x3]");
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_vec_validates_length() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn argmax_row_finds_largest() {
        let m = Matrix::from_vec(2, 3, vec![0.1, 0.7, 0.2, 0.9, 0.05, 0.05]);
        assert_eq!(m.argmax_row(0), 1);
        assert_eq!(m.argmax_row(1), 0);
    }

    #[test]
    fn random_matrix_within_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = Matrix::random(10, 10, 0.5, &mut rng);
        assert!(m.data().iter().all(|v| v.abs() <= 0.5));
        assert!(m.data().iter().any(|v| *v != 0.0));
    }

    #[test]
    fn axpy_scal_dot() {
        let x = vec![1.0, 2.0, 3.0];
        let mut y = vec![10.0, 20.0, 30.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, vec![12.0, 24.0, 36.0]);
        scal(0.5, &mut y);
        assert_eq!(y, vec![6.0, 12.0, 18.0]);
        assert_eq!(dot(&x, &x), 14.0);
    }

    #[test]
    fn gemm_nn_matches_hand_computation() {
        // A = [[1,2],[3,4]], B = [[5,6],[7,8]] -> AB = [[19,22],[43,50]]
        let a = vec![1.0, 2.0, 3.0, 4.0];
        let b = vec![5.0, 6.0, 7.0, 8.0];
        let mut c = vec![0.0; 4];
        gemm(false, false, 2, 2, 2, 1.0, &a, 2, &b, 2, 0.0, &mut c, 2);
        assert_eq!(c, vec![19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn gemm_transpose_variants_agree() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = 3;
        let n = 4;
        let k = 5;
        let a = Matrix::random(m, k, 1.0, &mut rng);
        let b = Matrix::random(k, n, 1.0, &mut rng);
        // Reference: C = A * B.
        let mut c_ref = vec![0.0; m * n];
        gemm(
            false,
            false,
            m,
            n,
            k,
            1.0,
            a.data(),
            k,
            b.data(),
            n,
            0.0,
            &mut c_ref,
            n,
        );
        // A^T stored transposed (k x m) then used with ta=true.
        let mut a_t = vec![0.0; k * m];
        for i in 0..m {
            for p in 0..k {
                a_t[p * m + i] = a.get(i, p);
            }
        }
        let mut c_ta = vec![0.0; m * n];
        gemm(
            true,
            false,
            m,
            n,
            k,
            1.0,
            &a_t,
            m,
            b.data(),
            n,
            0.0,
            &mut c_ta,
            n,
        );
        for (x, y) in c_ref.iter().zip(c_ta.iter()) {
            assert!((x - y).abs() < 1e-5);
        }
        // B^T stored transposed (n x k) then used with tb=true.
        let mut b_t = vec![0.0; n * k];
        for p in 0..k {
            for j in 0..n {
                b_t[j * k + p] = b.get(p, j);
            }
        }
        let mut c_tb = vec![0.0; m * n];
        gemm(
            false,
            true,
            m,
            n,
            k,
            1.0,
            a.data(),
            k,
            &b_t,
            k,
            0.0,
            &mut c_tb,
            n,
        );
        for (x, y) in c_ref.iter().zip(c_tb.iter()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn gemm_beta_accumulates() {
        let a = vec![1.0];
        let b = vec![1.0];
        let mut c = vec![10.0];
        gemm(false, false, 1, 1, 1, 2.0, &a, 1, &b, 1, 1.0, &mut c, 1);
        assert_eq!(c[0], 12.0);
        gemm(false, false, 1, 1, 1, 2.0, &a, 1, &b, 1, 0.0, &mut c, 1);
        assert_eq!(c[0], 2.0);
    }

    #[test]
    fn conv_out_dim_formula() {
        assert_eq!(conv_out_dim(28, 3, 1, 1), 28);
        assert_eq!(conv_out_dim(28, 2, 2, 0), 14);
        assert_eq!(conv_out_dim(5, 3, 1, 0), 3);
    }

    #[test]
    fn im2col_identity_kernel() {
        // 1x1 kernel, stride 1, no padding: im2col is the identity reshape.
        let input: Vec<f32> = (0..2 * 3 * 3).map(|v| v as f32).collect();
        let mut out = vec![0.0; 2 * 3 * 3];
        im2col(&input, 2, 3, 3, 1, 1, 0, &mut out);
        assert_eq!(out, input);
    }

    #[test]
    fn im2col_known_small_case() {
        // Single channel 3x3 image, 2x2 kernel, stride 1, no pad: 4 output positions.
        let input = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0];
        let mut out = vec![0.0; 4 * 4];
        im2col(&input, 1, 3, 3, 2, 1, 0, &mut out);
        // Row 0 of the column matrix holds the top-left element of each patch.
        assert_eq!(&out[0..4], &[1.0, 2.0, 4.0, 5.0]);
        // Row 3 holds the bottom-right element of each patch.
        assert_eq!(&out[12..16], &[5.0, 6.0, 8.0, 9.0]);
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random x, y — the standard adjoint check.
        let mut rng = StdRng::seed_from_u64(9);
        let (c, h, w, k, s, p) = (2usize, 5usize, 5usize, 3usize, 1usize, 1usize);
        let out_h = conv_out_dim(h, k, s, p);
        let out_w = conv_out_dim(w, k, s, p);
        let x: Vec<f32> = (0..c * h * w).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let y: Vec<f32> = (0..c * k * k * out_h * out_w)
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect();
        let mut x_col = vec![0.0; y.len()];
        im2col(&x, c, h, w, k, s, p, &mut x_col);
        let mut y_im = vec![0.0; x.len()];
        col2im(&y, c, h, w, k, s, p, &mut y_im);
        let lhs = dot(&x_col, &y);
        let rhs = dot(&x, &y_im);
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }
}
