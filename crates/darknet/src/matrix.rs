//! Dense matrix container and the BLAS-like kernels (GEMM, AXPY, im2col/col2im) that the
//! Darknet-style layers are built on. Everything is plain `f32` on the heap — the same
//! representation the original C framework uses, which keeps the port to the (simulated)
//! enclave straightforward.

use crate::dispatch::{selected_gemm, GemmKind};
use rand::Rng;
use std::fmt;

/// A row-major dense matrix of `f32` values.
///
/// Training data is handled as one sample per row (the `matrix` type of Darknet), and the
/// same container doubles as a general 2-D buffer for tests.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a zero-filled matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "matrix data length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Matrix { rows, cols, data }
    }

    /// Creates a matrix with entries drawn uniformly from `[-scale, scale]`.
    pub fn random<R: Rng>(rows: usize, cols: usize, scale: f32, rng: &mut R) -> Self {
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(-scale..=scale))
            .collect();
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow of the row-major backing storage.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable borrow of the row-major backing storage.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix and returns its backing storage.
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Borrow of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row {r} out of range ({} rows)", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row {r} out of range ({} rows)", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Element accessor.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn set(&mut self, r: usize, c: usize, value: f32) {
        assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = value;
    }

    /// Index of the maximum element of row `r` (arg-max, used for classification).
    ///
    /// # Panics
    ///
    /// Panics if the matrix has zero columns or `r` is out of range.
    pub fn argmax_row(&self, r: usize) -> usize {
        let row = self.row(r);
        assert!(!row.is_empty(), "argmax of an empty row");
        let mut best = 0;
        for (i, v) in row.iter().enumerate() {
            if *v > row[best] {
                best = i;
            }
        }
        best
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix[{}x{}]", self.rows, self.cols)
    }
}

/// `y += alpha * x` (the BLAS AXPY kernel), engine from the `PLINIUS_GEMM` policy.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    axpy_with_engine(selected_gemm(), alpha, x, y);
}

/// [`axpy`] with an explicit engine. AXPY is elementwise (one `mul`, one `add` per
/// element), so the `avx2` lanes are bit-identical to the scalar loop; only the
/// opt-in `fma` engine fuses the rounding.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn axpy_with_engine(engine: GemmKind, alpha: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    #[cfg(target_arch = "x86_64")]
    match engine {
        GemmKind::Avx512 => return crate::simd::axpy_avx512(alpha, x, y),
        GemmKind::Avx512Fma => return crate::simd::axpy_avx512_fma(alpha, x, y),
        GemmKind::Avx2 => return crate::simd::axpy_avx2(alpha, x, y),
        GemmKind::Avx2Fma => return crate::simd::axpy_avx2_fma(alpha, x, y),
        GemmKind::Scalar | GemmKind::Reference => {}
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = engine;
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * xi;
    }
}

/// `x *= alpha` (the BLAS SCAL kernel), engine from the `PLINIUS_GEMM` policy.
pub fn scal(alpha: f32, x: &mut [f32]) {
    scal_with_engine(selected_gemm(), alpha, x);
}

/// [`scal`] with an explicit engine. A single multiply per element, so every engine
/// (the vector ones included) produces bit-identical output.
pub fn scal_with_engine(engine: GemmKind, alpha: f32, x: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    match engine {
        GemmKind::Avx512 | GemmKind::Avx512Fma => return crate::simd::scal_avx512(alpha, x),
        GemmKind::Avx2 | GemmKind::Avx2Fma => return crate::simd::scal_avx2(alpha, x),
        GemmKind::Scalar | GemmKind::Reference => {}
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = engine;
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// Dot product of two equally long slices, engine from the `PLINIUS_GEMM` policy.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dot(x: &[f32], y: &[f32]) -> f32 {
    dot_with_engine(selected_gemm(), x, y)
}

/// [`dot`] with an explicit engine. DOT is a *reduction*: vector lanes would
/// reassociate the sum and break the bit-identity contract, so the `avx2` engine
/// keeps the scalar left-to-right accumulation and only the opt-in `fma` engine
/// uses the fused eight-partial-sum kernel (deterministic, ULP-bounded).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dot_with_engine(engine: GemmKind, x: &[f32], y: &[f32]) -> f32 {
    assert_eq!(x.len(), y.len(), "dot length mismatch");
    #[cfg(target_arch = "x86_64")]
    match engine {
        GemmKind::Avx512Fma => return crate::simd::dot_avx512_fma(x, y),
        GemmKind::Avx2Fma => return crate::simd::dot_avx2_fma(x, y),
        GemmKind::Avx512 | GemmKind::Avx2 | GemmKind::Scalar | GemmKind::Reference => {}
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = engine;
    x.iter().zip(y.iter()).map(|(a, b)| a * b).sum()
}

/// Default k-block size of the blocked GEMM kernel: one `KC x n` panel of `op(B)` stays
/// hot in cache while every row of the band streams over it. Tunable through
/// [`gemm_tuned`]; the block size never changes the result (the per-element accumulation
/// order over `p` is preserved across block boundaries).
pub const GEMM_DEFAULT_KC: usize = 128;

/// General matrix multiply: `C = alpha * op(A) * op(B) + beta * C`, where `op` optionally
/// transposes its argument. `A` is `m x k` (after `op`), `B` is `k x n`, `C` is `m x n`,
/// all row-major with the given leading dimensions.
///
/// This is the blocked, cache-aware kernel: the `op(A)`/`op(B)` panels are packed into
/// contiguous buffers once (with `alpha` folded into the `A` panel), then an `ikj`-order
/// loop runs over `KC`-sized k-blocks with the engine's inner kernel — the register-tiled
/// AVX2 microkernel when the `PLINIUS_GEMM` policy resolves to it (see
/// [`crate::dispatch`]), the portable 32-wide-strip kernel otherwise. Large products are
/// dispatched across row bands on scoped threads (worker count from
/// [`plinius_parallel::max_threads`], override with `PLINIUS_THREADS`; the minimum work
/// product before fanning out is engine-specific, [`GemmKind::par_min_work`]). The
/// result is **bit-identical for every thread count, block size, and every engine except
/// the opt-in `fma` one** — the `avx2` lanes run the same `mul`-then-`add` roundings in
/// the same ascending-`p` order as the scalar kernel — and matches [`gemm_reference`]
/// exactly for all finite results: every `C[i][j]` accumulates the same terms in the
/// same order with no reassociation (and no FMA contraction outside `fma`). The one
/// reference-comparison caveat: when inputs contain NaN/Inf, which values are NaN is
/// identical but their *payload/sign bits* may differ from the reference, because the
/// two kernels compile to different instruction schedules and the hardware propagates
/// whichever operand's NaN lands first.
///
/// # Panics
///
/// Panics if any buffer is too small for the requested shape.
#[allow(clippy::too_many_arguments)]
pub fn gemm(
    ta: bool,
    tb: bool,
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    lda: usize,
    b: &[f32],
    ldb: usize,
    beta: f32,
    c: &mut [f32],
    ldc: usize,
) {
    let engine = selected_gemm();
    let work = m.saturating_mul(n).saturating_mul(k);
    let threads = if work < engine.par_min_work() {
        1
    } else {
        plinius_parallel::max_threads()
    };
    gemm_with_engine(
        engine,
        threads,
        GEMM_DEFAULT_KC,
        ta,
        tb,
        m,
        n,
        k,
        alpha,
        a,
        lda,
        b,
        ldb,
        beta,
        c,
        ldc,
    );
}

/// [`gemm`] with an explicit worker-thread count (1 forces the single-threaded blocked
/// kernel). Output is bit-identical for every `threads` value.
///
/// # Panics
///
/// Panics if any buffer is too small for the requested shape.
#[allow(clippy::too_many_arguments)]
pub fn gemm_with_threads(
    threads: usize,
    ta: bool,
    tb: bool,
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    lda: usize,
    b: &[f32],
    ldb: usize,
    beta: f32,
    c: &mut [f32],
    ldc: usize,
) {
    gemm_with_engine(
        selected_gemm(),
        threads,
        GEMM_DEFAULT_KC,
        ta,
        tb,
        m,
        n,
        k,
        alpha,
        a,
        lda,
        b,
        ldb,
        beta,
        c,
        ldc,
    );
}

/// [`gemm`] with explicit worker-thread count *and* k-block size, for benchmarks and
/// block-size tuning. Neither knob changes the result.
///
/// # Panics
///
/// Panics if any buffer is too small for the requested shape or `kc` is zero (with
/// `k > 0`).
#[allow(clippy::too_many_arguments)]
pub fn gemm_tuned(
    threads: usize,
    kc: usize,
    ta: bool,
    tb: bool,
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    lda: usize,
    b: &[f32],
    ldb: usize,
    beta: f32,
    c: &mut [f32],
    ldc: usize,
) {
    gemm_with_engine(
        selected_gemm(),
        threads,
        kc,
        ta,
        tb,
        m,
        n,
        k,
        alpha,
        a,
        lda,
        b,
        ldb,
        beta,
        c,
        ldc,
    );
}

/// The fully explicit GEMM entry: engine, worker-thread count and k-block size all
/// pinned by the caller. This is what the env-dispatching wrappers above resolve to,
/// and what the differential tests drive directly.
///
/// [`GemmKind::Reference`] routes to [`gemm_reference`] (single-threaded, unblocked:
/// `threads` and `kc` are ignored — the naive kernel is the ground truth, not a tuning
/// target). All other engines share the pack + row-band path; only the inner band
/// kernel differs. On non-`x86_64` targets the vector engines fall back to the scalar
/// band kernel (the dispatcher never selects them there — this arm is belt and braces
/// for callers pinning an engine explicitly).
///
/// # Panics
///
/// Panics if any buffer is too small for the requested shape, or `kc` is zero (with
/// `k > 0` and a non-reference engine), or a vector engine is pinned on an `x86_64`
/// CPU that does not report the matching feature.
#[allow(clippy::too_many_arguments)]
pub fn gemm_with_engine(
    engine: GemmKind,
    threads: usize,
    kc: usize,
    ta: bool,
    tb: bool,
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    lda: usize,
    b: &[f32],
    ldb: usize,
    beta: f32,
    c: &mut [f32],
    ldc: usize,
) {
    if engine == GemmKind::Reference {
        gemm_reference(ta, tb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
        return;
    }
    // Inner band kernel: (ap, bp, k, n, kc, c_band, ldc) over packed panels.
    type BandKernel = fn(&[f32], &[f32], usize, usize, usize, &mut [f32], usize);
    let band: BandKernel = match engine {
        GemmKind::Scalar | GemmKind::Reference => gemm_packed_band,
        #[cfg(target_arch = "x86_64")]
        GemmKind::Avx512 => crate::simd::gemm_packed_band_avx512,
        #[cfg(target_arch = "x86_64")]
        GemmKind::Avx512Fma => crate::simd::gemm_packed_band_avx512_fma,
        #[cfg(target_arch = "x86_64")]
        GemmKind::Avx2 => crate::simd::gemm_packed_band_avx2,
        #[cfg(target_arch = "x86_64")]
        GemmKind::Avx2Fma => crate::simd::gemm_packed_band_avx2_fma,
        #[cfg(not(target_arch = "x86_64"))]
        GemmKind::Avx512 | GemmKind::Avx512Fma | GemmKind::Avx2 | GemmKind::Avx2Fma => {
            gemm_packed_band
        }
    };
    assert!(
        c.len() >= (m.saturating_sub(1)) * ldc + n,
        "C buffer too small"
    );
    if m == 0 || n == 0 {
        return;
    }
    // The beta pre-pass mirrors the reference kernel exactly (including `0 * NaN = NaN`
    // semantics of `*=`), and runs before the early return so `k == 0` still scales C.
    if beta != 1.0 {
        for row in c.chunks_mut(ldc).take(m) {
            for v in row[..n].iter_mut() {
                *v *= beta;
            }
        }
    }
    if k == 0 {
        return;
    }
    assert!(kc > 0, "k-block size must be non-zero");
    // Pack the operand panels once: `ap` is op(A) row-major (m x k) with alpha folded
    // in — the same `alpha * a[i][p]` product the reference kernel forms — and `bp` is
    // op(B) row-major (k x n). Packing removes the per-element transpose branch and the
    // `ldb`-strided walk of a transposed B from the inner loop.
    let ap = pack_op_a(ta, m, k, alpha, a, lda);
    let packed_b;
    let bp: &[f32] = if !tb && ldb == n {
        // op(B) is already contiguous row-major: borrow it directly.
        &b[..k * n]
    } else {
        packed_b = pack_op_b(tb, k, n, b, ldb);
        &packed_b
    };
    let c_rows = &mut c[..(m - 1) * ldc + n];
    let threads = threads.clamp(1, m);
    if threads == 1 {
        band(&ap, bp, k, n, kc, c_rows, ldc);
        return;
    }
    let rows_per_band = m.div_ceil(threads);
    let ap = &ap;
    plinius_parallel::par_chunks_mut(c_rows, rows_per_band * ldc, threads, |band_idx, c_band| {
        let first_row = band_idx * rows_per_band;
        let rows = c_band.len().div_ceil(ldc);
        let ap_band = &ap[first_row * k..(first_row + rows) * k];
        band(ap_band, bp, k, n, kc, c_band, ldc);
    });
}

/// Packs `alpha * op(A)` into a contiguous row-major `m x k` panel. Out-of-range reads
/// panic exactly as they would in the reference kernel.
fn pack_op_a(ta: bool, m: usize, k: usize, alpha: f32, a: &[f32], lda: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; m * k];
    if ta {
        // A is stored k x m; gather column i of the storage as row i of the panel.
        for p in 0..k {
            let a_row = &a[p * lda..][..m];
            for (i, &v) in a_row.iter().enumerate() {
                out[i * k + p] = alpha * v;
            }
        }
    } else {
        for (i, out_row) in out.chunks_mut(k).enumerate() {
            let a_row = &a[i * lda..][..k];
            for (o, &v) in out_row.iter_mut().zip(a_row.iter()) {
                *o = alpha * v;
            }
        }
    }
    out
}

/// Packs `op(B)` into a contiguous row-major `k x n` panel. Out-of-range reads panic
/// exactly as they would in the reference kernel.
fn pack_op_b(tb: bool, k: usize, n: usize, b: &[f32], ldb: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; k * n];
    if tb {
        // B is stored n x k; gather column p of the storage as row p of the panel.
        for j in 0..n {
            let b_row = &b[j * ldb..][..k];
            for (p, &v) in b_row.iter().enumerate() {
                out[p * n + j] = v;
            }
        }
    } else {
        for (p, out_row) in out.chunks_mut(n).enumerate() {
            out_row.copy_from_slice(&b[p * ldb..][..n]);
        }
    }
    out
}

/// Width of the register-resident C tile of the scalar inner kernel (in `f32` lanes):
/// enough independent accumulator vectors to hide FP-add latency without spilling.
/// Hoisted into the dispatch layer so each engine declares its own tile shape (the
/// AVX2 microkernels use [`GemmKind::tile_width`] = 16).
const GEMM_TILE_W: usize = GemmKind::Scalar.tile_width();

/// The blocked inner kernel over one band of C rows: `kb`-blocked `i / j-tile / p`
/// order with a register-resident accumulator tile. Each `GEMM_TILE_W`-wide strip of a
/// C row is loaded once per k-block, accumulates every `p` of the block in registers,
/// and is stored once — instead of a C-row load/store per rank-1 update.
///
/// For every `C[i][j]` the terms still accumulate in ascending-`p` order with one `+=`
/// per term — exactly the reference kernel's association, hence bit-identical results
/// (no FMA contraction, no reassociation).
fn gemm_packed_band(
    ap: &[f32],
    bp: &[f32],
    k: usize,
    n: usize,
    kc: usize,
    c: &mut [f32],
    ldc: usize,
) {
    let rows = c.len().div_ceil(ldc);
    let mut kb = 0;
    while kb < k {
        let kend = (kb + kc).min(k);
        for r in 0..rows {
            let a_row = &ap[r * k + kb..r * k + kend];
            let c_row = &mut c[r * ldc..r * ldc + n];
            let mut jt = 0;
            // Full-width tiles: fixed-size accumulator array the compiler keeps in
            // vector registers.
            while jt + GEMM_TILE_W <= n {
                let tile = &mut c_row[jt..jt + GEMM_TILE_W];
                let mut acc: [f32; GEMM_TILE_W] = tile.try_into().expect("full tile");
                for (p, &a_ip) in a_row.iter().enumerate() {
                    let b_strip = &bp[(kb + p) * n + jt..(kb + p) * n + jt + GEMM_TILE_W];
                    for (x, &b_v) in b_strip.iter().enumerate() {
                        acc[x] += a_ip * b_v;
                    }
                }
                tile.copy_from_slice(&acc);
                jt += GEMM_TILE_W;
            }
            // Remainder strip narrower than a tile.
            if jt < n {
                let tile = &mut c_row[jt..];
                for (p, &a_ip) in a_row.iter().enumerate() {
                    let b_strip = &bp[(kb + p) * n + jt..(kb + p + 1) * n];
                    for (cv, &b_v) in tile.iter_mut().zip(b_strip.iter()) {
                        *cv += a_ip * b_v;
                    }
                }
            }
        }
        kb = kend;
    }
}

/// The naive triple-loop GEMM, kept as the semantic reference for the blocked/parallel
/// kernel (property tests assert bit-for-bit agreement).
///
/// Note: the kernel deliberately has **no zero-skip** on `alpha * a[i][p]` — skipping
/// zero terms would silently drop NaN/Inf propagation from `B` (IEEE `0 * NaN = NaN`,
/// `0 * Inf = NaN`), masking diverged training runs.
///
/// # Panics
///
/// Panics if any buffer is too small for the requested shape.
#[allow(clippy::too_many_arguments)]
pub fn gemm_reference(
    ta: bool,
    tb: bool,
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    lda: usize,
    b: &[f32],
    ldb: usize,
    beta: f32,
    c: &mut [f32],
    ldc: usize,
) {
    assert!(
        c.len() >= (m.saturating_sub(1)) * ldc + n,
        "C buffer too small"
    );
    if beta != 1.0 {
        for i in 0..m {
            for j in 0..n {
                c[i * ldc + j] *= beta;
            }
        }
    }
    let a_at = |i: usize, p: usize| -> f32 {
        if ta {
            a[p * lda + i]
        } else {
            a[i * lda + p]
        }
    };
    let b_at = |p: usize, j: usize| -> f32 {
        if tb {
            b[j * ldb + p]
        } else {
            b[p * ldb + j]
        }
    };
    // Bounds are checked implicitly through slice indexing.
    for i in 0..m {
        for p in 0..k {
            let a_ip = alpha * a_at(i, p);
            for j in 0..n {
                c[i * ldc + j] += a_ip * b_at(p, j);
            }
        }
    }
}

/// Rearranges an image (channels x height x width, channel-major as in Darknet) into a
/// column matrix for convolution-as-GEMM. The output has `channels*ksize*ksize` rows and
/// `out_h*out_w` columns.
#[allow(clippy::too_many_arguments)]
pub fn im2col(
    input: &[f32],
    channels: usize,
    height: usize,
    width: usize,
    ksize: usize,
    stride: usize,
    pad: usize,
    output: &mut [f32],
) {
    let out_h = conv_out_dim(height, ksize, stride, pad);
    let out_w = conv_out_dim(width, ksize, stride, pad);
    let channels_col = channels * ksize * ksize;
    assert!(
        output.len() >= channels_col * out_h * out_w,
        "im2col output too small"
    );
    for c in 0..channels_col {
        let w_offset = c % ksize;
        let h_offset = (c / ksize) % ksize;
        let c_im = c / ksize / ksize;
        for h in 0..out_h {
            for w in 0..out_w {
                let im_row = h_offset as isize + (h * stride) as isize - pad as isize;
                let im_col = w_offset as isize + (w * stride) as isize - pad as isize;
                let col_index = (c * out_h + h) * out_w + w;
                output[col_index] = if im_row < 0
                    || im_col < 0
                    || im_row >= height as isize
                    || im_col >= width as isize
                {
                    0.0
                } else {
                    input[(c_im * height + im_row as usize) * width + im_col as usize]
                };
            }
        }
    }
}

/// The inverse of [`im2col`]: scatters (accumulates) a column matrix back into an image,
/// used to propagate gradients to the convolution input.
#[allow(clippy::too_many_arguments)]
pub fn col2im(
    column: &[f32],
    channels: usize,
    height: usize,
    width: usize,
    ksize: usize,
    stride: usize,
    pad: usize,
    output: &mut [f32],
) {
    let out_h = conv_out_dim(height, ksize, stride, pad);
    let out_w = conv_out_dim(width, ksize, stride, pad);
    let channels_col = channels * ksize * ksize;
    assert!(
        output.len() >= channels * height * width,
        "col2im output too small"
    );
    for c in 0..channels_col {
        let w_offset = c % ksize;
        let h_offset = (c / ksize) % ksize;
        let c_im = c / ksize / ksize;
        for h in 0..out_h {
            for w in 0..out_w {
                let im_row = h_offset as isize + (h * stride) as isize - pad as isize;
                let im_col = w_offset as isize + (w * stride) as isize - pad as isize;
                if im_row < 0 || im_col < 0 || im_row >= height as isize || im_col >= width as isize
                {
                    continue;
                }
                let col_index = (c * out_h + h) * out_w + w;
                output[(c_im * height + im_row as usize) * width + im_col as usize] +=
                    column[col_index];
            }
        }
    }
}

/// Output spatial dimension of a convolution with the given geometry, or `None` for
/// degenerate geometries: zero kernel/stride, or a kernel larger than the padded input
/// (`ksize > dim + 2 * pad`, which would underflow the Darknet formula — panicking in
/// debug builds and wrapping to an absurd dimension in release).
pub fn try_conv_out_dim(dim: usize, ksize: usize, stride: usize, pad: usize) -> Option<usize> {
    if ksize == 0 || stride == 0 {
        return None;
    }
    let padded = dim.checked_add(2 * pad)?;
    if ksize > padded {
        return None;
    }
    Some((padded - ksize) / stride + 1)
}

/// Output spatial dimension of a convolution with the given geometry.
///
/// # Panics
///
/// Panics with a descriptive message if the kernel does not fit the padded input or the
/// geometry is degenerate (see [`try_conv_out_dim`]). [`crate::config::build_network`]
/// rejects such layer configurations with a proper error before any layer is built.
pub fn conv_out_dim(dim: usize, ksize: usize, stride: usize, pad: usize) -> usize {
    try_conv_out_dim(dim, ksize, stride, pad).unwrap_or_else(|| {
        panic!(
            "invalid convolution geometry: kernel {ksize} (stride {stride}) does not fit \
             the padded input {dim}+2*{pad}"
        )
    })
}

/// Output spatial dimension of a pooling sweep that covers the whole input: windows
/// start at every `stride` offset and the final window may hang over the input edge
/// (a *partial* window), as in Darknet's maxpool. For stride-divisible inputs this
/// matches the floor formula of [`conv_out_dim`] with zero padding.
///
/// # Panics
///
/// Panics if `size` or `stride` is zero.
pub fn pool_out_dim(dim: usize, size: usize, stride: usize) -> usize {
    assert!(size > 0 && stride > 0, "invalid pooling geometry");
    if size >= dim {
        1
    } else {
        (dim - size).div_ceil(stride) + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matrix_construction_and_access() {
        let mut m = Matrix::zeros(2, 3);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        m.set(1, 2, 5.0);
        assert_eq!(m.get(1, 2), 5.0);
        assert_eq!(m.row(1), &[0.0, 0.0, 5.0]);
        m.row_mut(0)[0] = 9.0;
        assert_eq!(m.get(0, 0), 9.0);
        assert_eq!(m.to_string(), "Matrix[2x3]");
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_vec_validates_length() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn argmax_row_finds_largest() {
        let m = Matrix::from_vec(2, 3, vec![0.1, 0.7, 0.2, 0.9, 0.05, 0.05]);
        assert_eq!(m.argmax_row(0), 1);
        assert_eq!(m.argmax_row(1), 0);
    }

    #[test]
    fn random_matrix_within_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = Matrix::random(10, 10, 0.5, &mut rng);
        assert!(m.data().iter().all(|v| v.abs() <= 0.5));
        assert!(m.data().iter().any(|v| *v != 0.0));
    }

    #[test]
    fn axpy_scal_dot() {
        let x = vec![1.0, 2.0, 3.0];
        let mut y = vec![10.0, 20.0, 30.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, vec![12.0, 24.0, 36.0]);
        scal(0.5, &mut y);
        assert_eq!(y, vec![6.0, 12.0, 18.0]);
        assert_eq!(dot(&x, &x), 14.0);
    }

    #[test]
    fn gemm_nn_matches_hand_computation() {
        // A = [[1,2],[3,4]], B = [[5,6],[7,8]] -> AB = [[19,22],[43,50]]
        let a = vec![1.0, 2.0, 3.0, 4.0];
        let b = vec![5.0, 6.0, 7.0, 8.0];
        let mut c = vec![0.0; 4];
        gemm(false, false, 2, 2, 2, 1.0, &a, 2, &b, 2, 0.0, &mut c, 2);
        assert_eq!(c, vec![19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn gemm_transpose_variants_agree() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = 3;
        let n = 4;
        let k = 5;
        let a = Matrix::random(m, k, 1.0, &mut rng);
        let b = Matrix::random(k, n, 1.0, &mut rng);
        // Reference: C = A * B.
        let mut c_ref = vec![0.0; m * n];
        gemm(
            false,
            false,
            m,
            n,
            k,
            1.0,
            a.data(),
            k,
            b.data(),
            n,
            0.0,
            &mut c_ref,
            n,
        );
        // A^T stored transposed (k x m) then used with ta=true.
        let mut a_t = vec![0.0; k * m];
        for i in 0..m {
            for p in 0..k {
                a_t[p * m + i] = a.get(i, p);
            }
        }
        let mut c_ta = vec![0.0; m * n];
        gemm(
            true,
            false,
            m,
            n,
            k,
            1.0,
            &a_t,
            m,
            b.data(),
            n,
            0.0,
            &mut c_ta,
            n,
        );
        for (x, y) in c_ref.iter().zip(c_ta.iter()) {
            assert!((x - y).abs() < 1e-5);
        }
        // B^T stored transposed (n x k) then used with tb=true.
        let mut b_t = vec![0.0; n * k];
        for p in 0..k {
            for j in 0..n {
                b_t[j * k + p] = b.get(p, j);
            }
        }
        let mut c_tb = vec![0.0; m * n];
        gemm(
            false,
            true,
            m,
            n,
            k,
            1.0,
            a.data(),
            k,
            &b_t,
            k,
            0.0,
            &mut c_tb,
            n,
        );
        for (x, y) in c_ref.iter().zip(c_tb.iter()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn gemm_beta_accumulates() {
        let a = vec![1.0];
        let b = vec![1.0];
        let mut c = vec![10.0];
        gemm(false, false, 1, 1, 1, 2.0, &a, 1, &b, 1, 1.0, &mut c, 1);
        assert_eq!(c[0], 12.0);
        gemm(false, false, 1, 1, 1, 2.0, &a, 1, &b, 1, 0.0, &mut c, 1);
        assert_eq!(c[0], 2.0);
    }

    #[test]
    fn gemm_propagates_nan_and_inf_from_b() {
        // Regression: the old kernel skipped `alpha * a[i][p] == 0.0` terms, silently
        // dropping NaN/Inf propagation from B (IEEE: 0 * NaN = NaN, 0 * Inf = NaN).
        let a = vec![0.0f32, 0.0];
        // Column 0 of B carries a NaN, column 1 an Inf.
        let b = vec![f32::NAN, f32::INFINITY, 1.0, 2.0];
        let mut c_ref = vec![0.5f32, 0.5];
        gemm_reference(false, false, 1, 2, 2, 1.0, &a, 2, &b, 2, 0.0, &mut c_ref, 2);
        let mut c_blk = vec![0.5f32, 0.5];
        gemm(false, false, 1, 2, 2, 1.0, &a, 2, &b, 2, 0.0, &mut c_blk, 2);
        for c in [&c_ref, &c_blk] {
            assert!(c[0].is_nan(), "0 * NaN must poison C, got {}", c[0]);
            assert!(c[1].is_nan(), "0 * Inf must poison C, got {}", c[1]);
        }
        // A zero *alpha* must poison C the same way.
        let mut c = vec![0.0f32, 0.0];
        gemm(
            false,
            false,
            1,
            2,
            2,
            0.0,
            &[1.0, 1.0],
            2,
            &b,
            2,
            0.0,
            &mut c,
            2,
        );
        assert!(c[0].is_nan());
    }

    fn bits(values: &[f32]) -> Vec<u32> {
        values.iter().map(|v| v.to_bits()).collect()
    }

    #[test]
    fn blocked_and_parallel_gemm_are_bit_identical_to_reference() {
        // One fixed ragged shape per transpose variant as a fast `--lib` smoke guard;
        // the exhaustive sweep over shapes/alpha/beta/kc/threads/specials lives in
        // `tests/proptest_gemm.rs`.
        let mut rng = StdRng::seed_from_u64(42);
        let (m, n, k) = (5, 33, 129);
        for (ta, tb) in [(false, false), (true, false), (false, true), (true, true)] {
            let lda = if ta { m + 2 } else { k + 1 };
            let ldb = if tb { k + 3 } else { n };
            let ldc = n + 2;
            let a: Vec<f32> = (0..(if ta { k } else { m }) * lda)
                .map(|_| rng.gen_range(-1.0..1.0))
                .collect();
            let b: Vec<f32> = (0..(if tb { n } else { k }) * ldb)
                .map(|_| rng.gen_range(-1.0..1.0))
                .collect();
            let c0: Vec<f32> = (0..m * ldc).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let mut c_ref = c0.clone();
            gemm_reference(
                ta, tb, m, n, k, 0.75, &a, lda, &b, ldb, 0.5, &mut c_ref, ldc,
            );
            let mut c = c0.clone();
            gemm_tuned(
                3, 2, ta, tb, m, n, k, 0.75, &a, lda, &b, ldb, 0.5, &mut c, ldc,
            );
            assert_eq!(bits(&c_ref), bits(&c), "ta={ta} tb={tb}");
        }
    }

    #[test]
    fn gemm_handles_degenerate_shapes() {
        // k = 0: only the beta pass runs.
        let mut c = vec![2.0f32, 4.0];
        gemm(false, false, 1, 2, 0, 1.0, &[], 1, &[], 1, 0.5, &mut c, 2);
        assert_eq!(c, vec![1.0, 2.0]);
        // m = 0 / n = 0: no-ops.
        gemm(
            false,
            false,
            0,
            2,
            3,
            1.0,
            &[],
            1,
            &[0.0; 6],
            2,
            0.0,
            &mut c,
            2,
        );
        let mut empty: Vec<f32> = vec![];
        gemm(
            false, false, 1, 0, 3, 1.0, &[0.0; 3], 3, &[0.0; 3], 1, 0.0, &mut empty, 0,
        );
    }

    #[test]
    fn conv_out_dim_formula() {
        assert_eq!(conv_out_dim(28, 3, 1, 1), 28);
        assert_eq!(conv_out_dim(28, 2, 2, 0), 14);
        assert_eq!(conv_out_dim(5, 3, 1, 0), 3);
    }

    #[test]
    fn try_conv_out_dim_rejects_degenerate_geometry() {
        // Kernel larger than the padded input: the old formula underflowed `usize`.
        assert_eq!(try_conv_out_dim(4, 7, 1, 1), None);
        assert_eq!(try_conv_out_dim(2, 3, 1, 0), None);
        assert_eq!(try_conv_out_dim(4, 0, 1, 0), None);
        assert_eq!(try_conv_out_dim(4, 3, 0, 0), None);
        assert_eq!(try_conv_out_dim(2, 3, 1, 1), Some(2));
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn conv_out_dim_panics_clearly_on_underflow() {
        let _ = conv_out_dim(4, 7, 1, 1);
    }

    #[test]
    fn pool_out_dim_covers_the_whole_input() {
        // Stride-divisible inputs match the conv formula.
        assert_eq!(pool_out_dim(28, 2, 2), 14);
        assert_eq!(pool_out_dim(8, 2, 2), 4);
        // Non-divisible input: a partial window covers the trailing edge.
        assert_eq!(pool_out_dim(5, 2, 2), 3);
        assert_eq!(pool_out_dim(7, 2, 2), 4);
        // Window as large as the input: one window.
        assert_eq!(pool_out_dim(3, 3, 1), 1);
        assert_eq!(pool_out_dim(2, 3, 1), 1);
    }

    #[test]
    fn im2col_identity_kernel() {
        // 1x1 kernel, stride 1, no padding: im2col is the identity reshape.
        let input: Vec<f32> = (0..2 * 3 * 3).map(|v| v as f32).collect();
        let mut out = vec![0.0; 2 * 3 * 3];
        im2col(&input, 2, 3, 3, 1, 1, 0, &mut out);
        assert_eq!(out, input);
    }

    #[test]
    fn im2col_known_small_case() {
        // Single channel 3x3 image, 2x2 kernel, stride 1, no pad: 4 output positions.
        let input = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0];
        let mut out = vec![0.0; 4 * 4];
        im2col(&input, 1, 3, 3, 2, 1, 0, &mut out);
        // Row 0 of the column matrix holds the top-left element of each patch.
        assert_eq!(&out[0..4], &[1.0, 2.0, 4.0, 5.0]);
        // Row 3 holds the bottom-right element of each patch.
        assert_eq!(&out[12..16], &[5.0, 6.0, 8.0, 9.0]);
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random x, y — the standard adjoint check.
        let mut rng = StdRng::seed_from_u64(9);
        let (c, h, w, k, s, p) = (2usize, 5usize, 5usize, 3usize, 1usize, 1usize);
        let out_h = conv_out_dim(h, k, s, p);
        let out_w = conv_out_dim(w, k, s, p);
        let x: Vec<f32> = (0..c * h * w).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let y: Vec<f32> = (0..c * k * k * out_h * out_w)
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect();
        let mut x_col = vec![0.0; y.len()];
        im2col(&x, c, h, w, k, s, p, &mut x_col);
        let mut y_im = vec![0.0; x.len()];
        col2im(&y, c, h, w, k, s, p, &mut y_im);
        let lhs = dot(&x_col, &y);
        let rhs = dot(&x, &y_im);
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }
}
