//! The network container: an ordered stack of layers plus the training loop state
//! (iteration counter, SGD hyper-parameters), mirroring Darknet's `network` struct.

use crate::data::Dataset;
use crate::dispatch::{GemmKind, GemmPolicy};
use crate::layers::{Layer, UpdateArgs};
use crate::DarknetError;
use std::fmt;

/// Training hyper-parameters and the input geometry, i.e. the `[net]` section of a
/// Darknet configuration file.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkConfig {
    /// Input image height.
    pub height: usize,
    /// Input image width.
    pub width: usize,
    /// Input channels.
    pub channels: usize,
    /// Batch size used for training (128 in the paper unless stated otherwise).
    pub batch: usize,
    /// SGD learning rate (0.1 in the paper).
    pub learning_rate: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// Weight decay.
    pub decay: f32,
    /// Maximum number of training iterations (`MAX_ITER` of Algorithm 2).
    pub max_iterations: u64,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            height: 28,
            width: 28,
            channels: 1,
            batch: 128,
            learning_rate: 0.1,
            momentum: 0.9,
            decay: 0.0001,
            max_iterations: 500,
        }
    }
}

impl NetworkConfig {
    /// Number of input values per sample.
    pub fn inputs(&self) -> usize {
        self.height * self.width * self.channels
    }
}

/// A feed-forward neural network (the enclave model of Algorithm 2).
#[derive(Debug, Clone)]
pub struct Network {
    config: NetworkConfig,
    layers: Vec<Layer>,
    /// Number of training iterations (batches) seen so far. This is the value Plinius
    /// persists alongside the mirrored parameters so training can resume where it
    /// stopped.
    iteration: u64,
    /// Loss of the most recent training batch.
    last_loss: f32,
    /// Resolved GEMM engine every layer's kernels run on. Layers capture the engine at
    /// construction from the `PLINIUS_GEMM` policy; [`Network::set_gemm_policy`]
    /// re-resolves and re-pins it across the whole stack.
    gemm: GemmKind,
}

impl Network {
    /// Creates a network from a configuration and an already-built layer stack.
    ///
    /// # Errors
    ///
    /// Returns [`DarknetError::EmptyNetwork`] if `layers` is empty or
    /// [`DarknetError::ShapeMismatch`] if consecutive layer shapes do not line up.
    pub fn new(config: NetworkConfig, layers: Vec<Layer>) -> Result<Self, DarknetError> {
        if layers.is_empty() {
            return Err(DarknetError::EmptyNetwork);
        }
        // Validate the chain of per-sample sizes.
        let mut current = config.inputs();
        for (i, layer) in layers.iter().enumerate() {
            let expected = match layer {
                Layer::Convolutional(l) => l.inputs(),
                Layer::MaxPool(l) => l.inputs(),
                Layer::Connected(l) => l.inputs(),
                Layer::Softmax(l) => l.outputs(),
            };
            if expected != current {
                return Err(DarknetError::ShapeMismatch {
                    layer: i,
                    expected,
                    actual: current,
                });
            }
            current = layer.outputs();
        }
        Ok(Network {
            config,
            layers,
            iteration: 0,
            last_loss: f32::NAN,
            gemm: crate::dispatch::selected_gemm(),
        })
    }

    /// The GEMM engine the network's layer kernels run on.
    pub fn gemm_engine(&self) -> GemmKind {
        self.gemm
    }

    /// Resolves `policy` against the host CPU and pins the resulting engine on every
    /// layer, overriding whatever the layers captured from `PLINIUS_GEMM` at
    /// construction. Used by the Plinius trainer so a [`GemmPolicy`] chosen through
    /// configuration (rather than the environment) reaches the hot path.
    pub fn set_gemm_policy(&mut self, policy: GemmPolicy) {
        let engine = policy.select();
        self.gemm = engine;
        for layer in &mut self.layers {
            layer.set_gemm_engine(engine);
        }
    }

    /// The network configuration.
    pub fn config(&self) -> &NetworkConfig {
        &self.config
    }

    /// The layers of the network.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Mutable access to the layers (used by the mirroring module to restore parameters).
    pub fn layers_mut(&mut self) -> &mut [Layer] {
        &mut self.layers
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Number of output values (classes) per sample.
    pub fn outputs(&self) -> usize {
        self.layers.last().expect("validated non-empty").outputs()
    }

    /// Training iterations (batches) completed so far.
    pub fn iteration(&self) -> u64 {
        self.iteration
    }

    /// Sets the iteration counter (used when resuming from a mirrored model).
    pub fn set_iteration(&mut self, iteration: u64) {
        self.iteration = iteration;
    }

    /// Loss of the most recent training batch (`NaN` before the first batch).
    pub fn last_loss(&self) -> f32 {
        self.last_loss
    }

    /// Total number of learnable parameters.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }

    /// Size of the learnable parameters in bytes — the "model size" axis of Fig. 7.
    pub fn model_bytes(&self) -> usize {
        self.layers.iter().map(|l| l.param_bytes()).sum()
    }

    /// Approximate FLOPs per sample for one forward+backward pass.
    pub fn flops_per_sample(&self) -> u64 {
        self.layers.iter().map(|l| l.flops_per_sample()).sum()
    }

    /// Runs a forward pass over `input` (length `batch * inputs`) and returns the final
    /// layer's output.
    ///
    /// # Panics
    ///
    /// Panics if `input` is shorter than `batch * inputs()`.
    pub fn forward(&mut self, input: &[f32], batch: usize) -> &[f32] {
        assert!(
            input.len() >= batch * self.config.inputs(),
            "network input too small"
        );
        for i in 0..self.layers.len() {
            let (before, rest) = self.layers.split_at_mut(i);
            let layer = &mut rest[0];
            if i == 0 {
                layer.forward(input, batch);
            } else {
                let prev_output = before[i - 1].output();
                layer.forward(prev_output, batch);
            }
        }
        self.layers.last().expect("non-empty").output()
    }

    /// Runs one training iteration (forward, loss, backward, update) over a batch and
    /// returns the cross-entropy loss.
    ///
    /// `images` holds `batch * inputs()` values and `labels` holds `batch * outputs()`
    /// one-hot values.
    ///
    /// # Errors
    ///
    /// Returns [`DarknetError::BatchMismatch`] if the buffers do not match the batch.
    pub fn train_batch(
        &mut self,
        images: &[f32],
        labels: &[f32],
        batch: usize,
    ) -> Result<f32, DarknetError> {
        let inputs = self.config.inputs();
        let outputs = self.outputs();
        if images.len() < batch * inputs || labels.len() < batch * outputs {
            return Err(DarknetError::BatchMismatch {
                batch,
                images: images.len(),
                labels: labels.len(),
            });
        }
        for layer in &mut self.layers {
            layer.zero_delta();
        }
        self.forward(images, batch);
        // Cross-entropy loss and its (negative) gradient on the softmax output.
        let predictions = self.layers.last().expect("non-empty").output().to_vec();
        let mut loss = 0.0f32;
        {
            let last = self.layers.last_mut().expect("non-empty");
            let delta = last.delta_mut();
            for i in 0..batch * outputs {
                let t = labels[i];
                let p = predictions[i];
                delta[i] = t - p;
                if t > 0.0 {
                    loss += -t * (p.max(1e-9)).ln();
                }
            }
        }
        loss /= batch as f32;
        // Backward pass.
        for i in (0..self.layers.len()).rev() {
            let (before, rest) = self.layers.split_at_mut(i);
            let layer = &mut rest[0];
            if i == 0 {
                layer.backward(images, None, batch);
            } else {
                let (prev_output, prev_delta) = before[i - 1].output_and_delta_mut();
                layer.backward(prev_output, Some(prev_delta), batch);
            }
        }
        // Parameter update.
        let args = UpdateArgs {
            learning_rate: self.config.learning_rate,
            momentum: self.config.momentum,
            decay: self.config.decay,
            batch,
        };
        for layer in &mut self.layers {
            layer.update(&args);
        }
        self.iteration += 1;
        self.last_loss = loss;
        Ok(loss)
    }

    /// Classifies a single sample, returning the predicted class index.
    ///
    /// # Panics
    ///
    /// Panics if `input` is shorter than `inputs()`.
    pub fn predict(&mut self, input: &[f32]) -> usize {
        let outputs = self.outputs();
        let out = self.forward(input, 1);
        let mut best = 0;
        for (i, v) in out.iter().enumerate().take(outputs) {
            if *v > out[best] {
                best = i;
            }
        }
        best
    }

    /// Classification accuracy over a dataset (fraction in `[0, 1]`).
    ///
    /// # Panics
    ///
    /// Panics if the dataset shapes do not match the network.
    pub fn accuracy(&mut self, dataset: &Dataset) -> f32 {
        assert_eq!(
            dataset.inputs(),
            self.config.inputs(),
            "dataset input size mismatch"
        );
        let n = dataset.len();
        if n == 0 {
            return 0.0;
        }
        let mut correct = 0usize;
        for i in 0..n {
            let predicted = self.predict(dataset.image(i));
            if predicted == dataset.label_index(i) {
                correct += 1;
            }
        }
        correct as f32 / n as f32
    }
}

impl fmt::Display for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Network: {} layers, {} parameters ({} bytes), iteration {}",
            self.num_layers(),
            self.param_count(),
            self.model_bytes(),
            self.iteration
        )?;
        for (i, layer) in self.layers.iter().enumerate() {
            let (c, h, w) = layer.out_shape();
            writeln!(
                f,
                "  {:>2}: {:<14} -> {}x{}x{}",
                i,
                layer.kind().to_string(),
                c,
                h,
                w
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use crate::data::Dataset;
    use crate::layers::{ConnectedLayer, ConvLayer, MaxPoolLayer, SoftmaxLayer};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn tiny_mlp(inputs: usize, classes: usize, batch: usize, seed: u64) -> Network {
        let mut rng = StdRng::seed_from_u64(seed);
        let config = NetworkConfig {
            height: inputs,
            width: 1,
            channels: 1,
            batch,
            learning_rate: 0.5,
            momentum: 0.0,
            decay: 0.0,
            max_iterations: 100,
        };
        let layers = vec![
            Layer::Connected(ConnectedLayer::new(
                inputs,
                16,
                Activation::Leaky,
                batch,
                &mut rng,
            )),
            Layer::Connected(ConnectedLayer::new(
                16,
                classes,
                Activation::Linear,
                batch,
                &mut rng,
            )),
            Layer::Softmax(SoftmaxLayer::new(classes, batch)),
        ];
        Network::new(config, layers).unwrap()
    }

    fn tiny_cnn(batch: usize, seed: u64) -> Network {
        let mut rng = StdRng::seed_from_u64(seed);
        let config = NetworkConfig {
            height: 8,
            width: 8,
            channels: 1,
            batch,
            learning_rate: 0.2,
            momentum: 0.9,
            decay: 0.0,
            max_iterations: 100,
        };
        let conv = ConvLayer::new(8, 8, 1, 4, 3, 1, 1, Activation::Leaky, batch, &mut rng);
        let pool = MaxPoolLayer::new(8, 8, 4, 2, 2, batch);
        let fc = ConnectedLayer::new(4 * 4 * 4, 3, Activation::Linear, batch, &mut rng);
        let sm = SoftmaxLayer::new(3, batch);
        let layers = vec![
            Layer::Convolutional(conv),
            Layer::MaxPool(pool),
            Layer::Connected(fc),
            Layer::Softmax(sm),
        ];
        Network::new(config, layers).unwrap()
    }

    #[test]
    fn empty_network_is_rejected() {
        assert_eq!(
            Network::new(NetworkConfig::default(), vec![]).unwrap_err(),
            DarknetError::EmptyNetwork
        );
    }

    #[test]
    fn shape_mismatch_is_detected() {
        let mut rng = StdRng::seed_from_u64(1);
        let config = NetworkConfig {
            height: 10,
            width: 1,
            channels: 1,
            ..NetworkConfig::default()
        };
        let layers = vec![Layer::Connected(ConnectedLayer::new(
            7, // does not match the 10 network inputs
            3,
            Activation::Linear,
            1,
            &mut rng,
        ))];
        assert!(matches!(
            Network::new(config, layers).unwrap_err(),
            DarknetError::ShapeMismatch {
                layer: 0,
                expected: 7,
                actual: 10
            }
        ));
    }

    #[test]
    fn forward_produces_probabilities() {
        let mut net = tiny_mlp(6, 3, 2, 1);
        let input = vec![0.5f32; 12];
        let out = net.forward(&input, 2).to_vec();
        for b in 0..2 {
            let sum: f32 = out[b * 3..(b + 1) * 3].iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn training_reduces_loss_on_separable_data() {
        let mut net = tiny_mlp(4, 2, 8, 42);
        // Class 0: first two features high; class 1: last two features high.
        let mut images = Vec::new();
        let mut labels = Vec::new();
        for i in 0..8 {
            if i % 2 == 0 {
                images.extend_from_slice(&[1.0, 1.0, 0.0, 0.0]);
                labels.extend_from_slice(&[1.0, 0.0]);
            } else {
                images.extend_from_slice(&[0.0, 0.0, 1.0, 1.0]);
                labels.extend_from_slice(&[0.0, 1.0]);
            }
        }
        let first = net.train_batch(&images, &labels, 8).unwrap();
        let mut last = first;
        for _ in 0..60 {
            last = net.train_batch(&images, &labels, 8).unwrap();
        }
        assert!(
            last < first * 0.5,
            "loss did not decrease: {first} -> {last}"
        );
        assert_eq!(net.iteration(), 61);
        assert!(net.last_loss().is_finite());
    }

    #[test]
    fn cnn_learns_a_simple_pattern() {
        let mut net = tiny_cnn(6, 7);
        // Three classes: bright top rows, bright bottom rows, uniform.
        let make_sample = |class: usize| -> Vec<f32> {
            let mut img = vec![0.1f32; 64];
            match class {
                0 => img[..16].iter_mut().for_each(|v| *v = 1.0),
                1 => img[48..].iter_mut().for_each(|v| *v = 1.0),
                _ => img.iter_mut().for_each(|v| *v = 0.5),
            }
            img
        };
        let mut images = Vec::new();
        let mut labels = Vec::new();
        for i in 0..6 {
            let class = i % 3;
            images.extend(make_sample(class));
            let mut one_hot = vec![0.0f32; 3];
            one_hot[class] = 1.0;
            labels.extend(one_hot);
        }
        let first = net.train_batch(&images, &labels, 6).unwrap();
        let mut last = first;
        for _ in 0..80 {
            last = net.train_batch(&images, &labels, 6).unwrap();
        }
        assert!(last < first, "CNN loss did not decrease: {first} -> {last}");
        // After training, the network should classify its own training samples.
        let correct = (0..3)
            .filter(|&c| {
                let img = make_sample(c);
                net.predict(&img) == c
            })
            .count();
        assert!(correct >= 2, "only {correct}/3 training samples classified");
    }

    #[test]
    fn batch_mismatch_is_an_error() {
        let mut net = tiny_mlp(4, 2, 4, 3);
        let err = net.train_batch(&[0.0; 4], &[0.0; 2], 4).unwrap_err();
        assert!(matches!(err, DarknetError::BatchMismatch { .. }));
    }

    #[test]
    fn accuracy_on_trivial_dataset() {
        let mut net = tiny_mlp(4, 2, 4, 9);
        let images = vec![1.0, 1.0, 0.0, 0.0, 0.0, 0.0, 1.0, 1.0];
        let labels = vec![1.0, 0.0, 0.0, 1.0];
        for _ in 0..80 {
            net.train_batch(&images, &labels, 2).unwrap();
        }
        let ds = Dataset::from_raw(2, 4, 2, images.clone(), labels.clone()).unwrap();
        let acc = net.accuracy(&ds);
        assert!(acc >= 0.5, "accuracy {acc}");
    }

    #[test]
    fn model_size_and_display() {
        let net = tiny_cnn(1, 5);
        assert!(net.model_bytes() > 0);
        assert!(net.param_count() > 0);
        assert!(net.flops_per_sample() > 0);
        let text = net.to_string();
        assert!(text.contains("convolutional"));
        assert!(text.contains("softmax"));
    }

    #[test]
    fn training_is_bit_identical_across_thread_counts() {
        // A network large enough that conv forward fans out across the batch and the
        // conv GEMMs cross the parallel-dispatch threshold; losses and weights must be
        // bit-identical under PLINIUS_THREADS=1 and a multi-threaded run.
        let run = |threads: &str| -> (Vec<u32>, Vec<u32>) {
            std::env::set_var("PLINIUS_THREADS", threads);
            let mut rng = StdRng::seed_from_u64(77);
            let config = NetworkConfig {
                height: 28,
                width: 28,
                channels: 1,
                batch: 2,
                learning_rate: 0.05,
                momentum: 0.9,
                decay: 0.0001,
                max_iterations: 10,
            };
            let layers = vec![
                Layer::Convolutional(ConvLayer::new(
                    28,
                    28,
                    1,
                    16,
                    3,
                    1,
                    1,
                    Activation::Leaky,
                    2,
                    &mut rng,
                )),
                Layer::Convolutional(ConvLayer::new(
                    28,
                    28,
                    16,
                    32,
                    3,
                    1,
                    1,
                    Activation::Leaky,
                    2,
                    &mut rng,
                )),
                Layer::MaxPool(MaxPoolLayer::new(28, 28, 32, 2, 2, 2)),
                Layer::Connected(ConnectedLayer::new(
                    32 * 14 * 14,
                    3,
                    Activation::Linear,
                    2,
                    &mut rng,
                )),
                Layer::Softmax(SoftmaxLayer::new(3, 2)),
            ];
            let mut net = Network::new(config, layers).unwrap();
            let mut rng = StdRng::seed_from_u64(5);
            let images: Vec<f32> = (0..2 * 28 * 28).map(|_| rng.gen_range(0.0..1.0)).collect();
            let labels = vec![1.0, 0.0, 0.0, 0.0, 0.0, 1.0];
            let mut losses = Vec::new();
            for _ in 0..2 {
                losses.push(net.train_batch(&images, &labels, 2).unwrap().to_bits());
            }
            let weights: Vec<u32> = net
                .layers()
                .iter()
                .flat_map(|l| l.params())
                .flat_map(|p| p.data.iter().map(|v| v.to_bits()).collect::<Vec<_>>())
                .collect();
            (losses, weights)
        };
        let serial = run("1");
        let parallel = run("4");
        std::env::remove_var("PLINIUS_THREADS");
        assert_eq!(serial.0, parallel.0, "losses diverged across thread counts");
        assert_eq!(
            serial.1, parallel.1,
            "weights diverged across thread counts"
        );
    }

    #[test]
    fn set_gemm_policy_pins_every_layer() {
        let mut net = tiny_cnn(1, 5);
        net.set_gemm_policy(GemmPolicy::Scalar);
        assert_eq!(net.gemm_engine(), GemmKind::Scalar);
        for layer in net.layers() {
            match layer.gemm_engine() {
                Some(engine) => assert_eq!(engine, GemmKind::Scalar),
                None => assert!(!layer.is_trainable()),
            }
        }
        // Reference is always selectable too — it never falls back.
        net.set_gemm_policy(GemmPolicy::Reference);
        assert_eq!(net.gemm_engine(), GemmKind::Reference);
        // Training still works on the pinned engine.
        let mut images = vec![0.3f32; 64];
        images[..16].iter_mut().for_each(|v| *v = 1.0);
        let labels = vec![1.0, 0.0, 0.0];
        let loss = net.train_batch(&images, &labels, 1).unwrap();
        assert!(loss.is_finite());
    }

    #[test]
    fn iteration_counter_can_be_restored() {
        let mut net = tiny_mlp(4, 2, 1, 11);
        assert_eq!(net.iteration(), 0);
        net.set_iteration(250);
        assert_eq!(net.iteration(), 250);
    }
}
