//! AVX2 / AVX-512 vector kernels for the GEMM hot path and the AXPY/SCAL/DOT
//! helpers.
//!
//! This is the one module in the crate allowed to contain `unsafe` code (the
//! `std::arch` SIMD intrinsics and the bounds-check-free inner loops they feed);
//! everything else stays `#![deny(unsafe_code)]`. The module is only compiled on
//! `x86_64` and is only reachable through the safe wrappers at the bottom, which
//! verify the CPU actually reports the required features before entering a
//! `#[target_feature]` function.
//!
//! # Safety contract
//!
//! * Every `#[target_feature]` kernel is private and reachable only through a safe
//!   wrapper that (a) asserts the matching `is_x86_feature_detected!` result and
//!   (b) asserts the slice-length preconditions that make every index the kernel
//!   computes in-bounds. The kernels themselves never grow an index past what the
//!   wrapper checked.
//! * All vector loads and stores go through the unaligned intrinsics
//!   (`loadu`/`storeu`); no alignment is assumed anywhere.
//! * No raw pointer escapes the slice it was derived from, and no pointer is held
//!   across a reallocation (the kernels allocate nothing).
//!
//! # Bit-identity contract
//!
//! The `avx2` and `avx512` kernels are lane-parallel transcriptions of their
//! scalar counterparts: each output element sees the exact same sequence of
//! `mul`-then-`add` roundings, in the same ascending-`p` order — lane width only
//! changes how many *elements* are in flight, never the per-element arithmetic —
//! so their results are bit-identical to the scalar kernels by construction
//! (proptests pin this). The `*+fma` kernels fuse the multiply-add with a single
//! rounding, which changes last-bit results; they are opt-in via
//! `PLINIUS_GEMM=fma` and covered by ULP-bounded differential tests instead.
#![allow(unsafe_code)]

use core::arch::x86_64::{
    _mm256_add_ps, _mm256_fmadd_ps, _mm256_loadu_ps, _mm256_mul_ps, _mm256_set1_ps,
    _mm256_setzero_ps, _mm256_storeu_ps, _mm512_add_ps, _mm512_fmadd_ps, _mm512_loadu_ps,
    _mm512_mul_ps, _mm512_set1_ps, _mm512_setzero_ps, _mm512_storeu_ps,
};

/// Rows of the register-resident C microtile. Six rows of two accumulator vectors
/// leave headroom for the B strips and the broadcast A element in both the
/// 16-register YMM file and the 32-register ZMM file.
const MR: usize = 6;

// Width-tagged wrappers over the per-ISA intrinsics, so one `band_kernel!` body
// expands to both the 8-lane (YMM) and 16-lane (ZMM) kernels.
macro_rules! vzero {
    (w8) => {
        _mm256_setzero_ps()
    };
    (w16) => {
        _mm512_setzero_ps()
    };
}
macro_rules! vload {
    (w8, $p:expr) => {
        _mm256_loadu_ps($p)
    };
    (w16, $p:expr) => {
        _mm512_loadu_ps($p)
    };
}
macro_rules! vstore {
    (w8, $p:expr, $v:expr) => {
        _mm256_storeu_ps($p, $v)
    };
    (w16, $p:expr, $v:expr) => {
        _mm512_storeu_ps($p, $v)
    };
}
macro_rules! vset1 {
    (w8, $x:expr) => {
        _mm256_set1_ps($x)
    };
    (w16, $x:expr) => {
        _mm512_set1_ps($x)
    };
}

macro_rules! vmul {
    (w8, $a:expr, $b:expr) => {
        _mm256_mul_ps($a, $b)
    };
    (w16, $a:expr, $b:expr) => {
        _mm512_mul_ps($a, $b)
    };
}

/// One multiply-accumulate step, expanded per engine: `mul_add` issues separate
/// `vmulps` + `vaddps` (two roundings — bit-identical to the scalar kernel),
/// `fused` issues `vfmadd` (one rounding — faster, ULP-bounded).
macro_rules! vmadd {
    (w8, mul_add, $a:expr, $b:expr, $acc:expr) => {
        _mm256_add_ps($acc, _mm256_mul_ps($a, $b))
    };
    (w8, fused, $a:expr, $b:expr, $acc:expr) => {
        _mm256_fmadd_ps($a, $b, $acc)
    };
    (w16, mul_add, $a:expr, $b:expr, $acc:expr) => {
        _mm512_add_ps($acc, _mm512_mul_ps($a, $b))
    };
    (w16, fused, $a:expr, $b:expr, $acc:expr) => {
        _mm512_fmadd_ps($a, $b, $acc)
    };
}

/// Generates one packed-panel band kernel. The signature and accumulation order
/// mirror `matrix::gemm_packed_band` exactly: `ap` is the band's packed
/// row-major `rows x k` op(A) panel (alpha already folded in), `bp` the packed
/// `k x n` op(B) panel, and `c` the band's rows of C (`ldc` apart, last row `n`
/// wide). Each C element accumulates its `k` products in ascending-`p` order —
/// blocking and tiling only reorder *which element* is worked on, never the
/// per-element order — which is what makes the `mul_add` expansion bit-identical
/// to the scalar kernel.
macro_rules! band_kernel {
    ($name:ident, $feat:literal, $w:tt, $mode:tt, $lanes:expr) => {
        #[target_feature(enable = $feat)]
        unsafe fn $name(
            ap: &[f32],
            bp: &[f32],
            k: usize,
            n: usize,
            kc: usize,
            c: &mut [f32],
            ldc: usize,
        ) {
            const L: usize = $lanes;
            const NR: usize = 2 * $lanes;
            let rows = c.len().div_ceil(ldc);
            let mut kb = 0usize;
            while kb < k {
                let kend = (kb + kc).min(k);
                // Full MR-row blocks: constant-bound inner loops so the tile
                // stays in registers.
                let mut r0 = 0usize;
                while r0 + MR <= rows {
                    let mut jt = 0usize;
                    while jt + NR <= n {
                        let mut acc = [[vzero!($w); 2]; MR];
                        for i in 0..MR {
                            let base = (r0 + i) * ldc + jt;
                            acc[i][0] = vload!($w, c.as_ptr().add(base));
                            acc[i][1] = vload!($w, c.as_ptr().add(base + L));
                        }
                        for p in kb..kend {
                            let bptr = bp.as_ptr().add(p * n + jt);
                            let b0 = vload!($w, bptr);
                            let b1 = vload!($w, bptr.add(L));
                            for i in 0..MR {
                                let a = vset1!($w, *ap.get_unchecked((r0 + i) * k + p));
                                acc[i][0] = vmadd!($w, $mode, a, b0, acc[i][0]);
                                acc[i][1] = vmadd!($w, $mode, a, b1, acc[i][1]);
                            }
                        }
                        for i in 0..MR {
                            let base = (r0 + i) * ldc + jt;
                            vstore!($w, c.as_mut_ptr().add(base), acc[i][0]);
                            vstore!($w, c.as_mut_ptr().add(base + L), acc[i][1]);
                        }
                        jt += NR;
                    }
                    if jt + L <= n {
                        for i in 0..MR {
                            let base = (r0 + i) * ldc + jt;
                            let mut acc = vload!($w, c.as_ptr().add(base));
                            for p in kb..kend {
                                let b0 = vload!($w, bp.as_ptr().add(p * n + jt));
                                let a = vset1!($w, *ap.get_unchecked((r0 + i) * k + p));
                                acc = vmadd!($w, $mode, a, b0, acc);
                            }
                            vstore!($w, c.as_mut_ptr().add(base), acc);
                        }
                        jt += L;
                    }
                    if jt < n {
                        // Scalar column tail: plain mul+add in *both* expansions,
                        // keeping the tail columns exactly scalar-identical (and
                        // comfortably inside the fma engines' ULP contract).
                        for i in 0..MR {
                            let row = r0 + i;
                            for p in kb..kend {
                                let a_ip = *ap.get_unchecked(row * k + p);
                                for j in jt..n {
                                    let cj = c.get_unchecked_mut(row * ldc + j);
                                    *cj += a_ip * *bp.get_unchecked(p * n + j);
                                }
                            }
                        }
                    }
                    r0 += MR;
                }
                // Remainder rows: one-row microkernel.
                for row in r0..rows {
                    let mut jt = 0usize;
                    while jt + NR <= n {
                        let base = row * ldc + jt;
                        let mut acc0 = vload!($w, c.as_ptr().add(base));
                        let mut acc1 = vload!($w, c.as_ptr().add(base + L));
                        for p in kb..kend {
                            let bptr = bp.as_ptr().add(p * n + jt);
                            let a = vset1!($w, *ap.get_unchecked(row * k + p));
                            acc0 = vmadd!($w, $mode, a, vload!($w, bptr), acc0);
                            acc1 = vmadd!($w, $mode, a, vload!($w, bptr.add(L)), acc1);
                        }
                        vstore!($w, c.as_mut_ptr().add(base), acc0);
                        vstore!($w, c.as_mut_ptr().add(base + L), acc1);
                        jt += NR;
                    }
                    if jt + L <= n {
                        let base = row * ldc + jt;
                        let mut acc = vload!($w, c.as_ptr().add(base));
                        for p in kb..kend {
                            let a = vset1!($w, *ap.get_unchecked(row * k + p));
                            acc =
                                vmadd!($w, $mode, a, vload!($w, bp.as_ptr().add(p * n + jt)), acc);
                        }
                        vstore!($w, c.as_mut_ptr().add(base), acc);
                        jt += L;
                    }
                    if jt < n {
                        for p in kb..kend {
                            let a_ip = *ap.get_unchecked(row * k + p);
                            for j in jt..n {
                                let cj = c.get_unchecked_mut(row * ldc + j);
                                *cj += a_ip * *bp.get_unchecked(p * n + j);
                            }
                        }
                    }
                }
                kb = kend;
            }
        }
    };
}

band_kernel!(band_avx2, "avx2", w8, mul_add, 8);
band_kernel!(band_avx2_fma, "avx2,fma", w8, fused, 8);
band_kernel!(band_avx512, "avx512f", w16, mul_add, 16);
band_kernel!(band_avx512_fma, "avx512f", w16, fused, 16);

/// Generates an AXPY kernel (`y[i] += alpha * x[i]`): elementwise, so the
/// `mul_add` expansions are exactly the scalar loop per lane.
macro_rules! axpy_kernel {
    ($name:ident, $feat:literal, $w:tt, $mode:tt, $lanes:expr) => {
        #[target_feature(enable = $feat)]
        unsafe fn $name(alpha: f32, x: &[f32], y: &mut [f32]) {
            const L: usize = $lanes;
            let n = x.len();
            let av = vset1!($w, alpha);
            let mut i = 0usize;
            while i + L <= n {
                let xv = vload!($w, x.as_ptr().add(i));
                let yv = vload!($w, y.as_ptr().add(i));
                vstore!($w, y.as_mut_ptr().add(i), vmadd!($w, $mode, av, xv, yv));
                i += L;
            }
            while i < n {
                *y.get_unchecked_mut(i) += alpha * *x.get_unchecked(i);
                i += 1;
            }
        }
    };
}

axpy_kernel!(axpy_kernel_avx2, "avx2", w8, mul_add, 8);
axpy_kernel!(axpy_kernel_avx2_fma, "avx2,fma", w8, fused, 8);
axpy_kernel!(axpy_kernel_avx512, "avx512f", w16, mul_add, 16);
axpy_kernel!(axpy_kernel_avx512_fma, "avx512f", w16, fused, 16);

/// Generates a SCAL kernel (`x[i] *= alpha`): a single rounding per element, so
/// it is exact on every engine — the fused engines share their width's kernel.
macro_rules! scal_kernel {
    ($name:ident, $feat:literal, $w:tt, $lanes:expr) => {
        #[target_feature(enable = $feat)]
        unsafe fn $name(alpha: f32, x: &mut [f32]) {
            const L: usize = $lanes;
            let n = x.len();
            let av = vset1!($w, alpha);
            let mut i = 0usize;
            while i + L <= n {
                let xv = vload!($w, x.as_ptr().add(i));
                vstore!($w, x.as_mut_ptr().add(i), vmul!($w, av, xv));
                i += L;
            }
            while i < n {
                *x.get_unchecked_mut(i) *= alpha;
                i += 1;
            }
        }
    };
}

scal_kernel!(scal_kernel_avx2, "avx2", w8, 8);
scal_kernel!(scal_kernel_avx512, "avx512f", w16, 16);

/// Generates a DOT kernel for the fused engines: `L` fused partial sums, folded
/// in a fixed pairwise lane order, scalar tail. Deterministic, but the
/// reassociated reduction is not bit-identical to the scalar left-to-right sum —
/// which is why the bit-identical vector engines keep the scalar DOT (see
/// `matrix::dot_with_engine`).
macro_rules! dot_kernel {
    ($name:ident, $feat:literal, $w:tt, $lanes:expr) => {
        #[target_feature(enable = $feat)]
        unsafe fn $name(x: &[f32], y: &[f32]) -> f32 {
            const L: usize = $lanes;
            let n = x.len();
            let mut acc = vzero!($w);
            let mut i = 0usize;
            while i + L <= n {
                acc = vmadd!(
                    $w,
                    fused,
                    vload!($w, x.as_ptr().add(i)),
                    vload!($w, y.as_ptr().add(i)),
                    acc
                );
                i += L;
            }
            let mut lanes = [0f32; L];
            vstore!($w, lanes.as_mut_ptr(), acc);
            let mut width = L;
            while width > 1 {
                width /= 2;
                for j in 0..width {
                    lanes[j] += lanes[j + width];
                }
            }
            let mut sum = lanes[0];
            while i < n {
                sum += *x.get_unchecked(i) * *y.get_unchecked(i);
                i += 1;
            }
            sum
        }
    };
}

dot_kernel!(dot_kernel_avx2_fma, "avx2,fma", w8, 8);
dot_kernel!(dot_kernel_avx512_fma, "avx512f", w16, 16);

/// Asserts the slice-length preconditions shared by all band kernels: every
/// index they compute stays inside its source slice.
fn check_band(ap: &[f32], bp: &[f32], k: usize, n: usize, kc: usize, c: &[f32], ldc: usize) {
    assert!(kc > 0, "kc must be positive");
    assert!(ldc >= n, "ldc must cover a full row of C");
    let rows = c.len().div_ceil(ldc);
    if rows > 0 {
        assert!(
            (rows - 1) * ldc + n <= c.len(),
            "C band too short for its last row"
        );
    }
    assert!(ap.len() >= rows * k, "packed A band too short");
    assert!(bp.len() >= k * n, "packed B panel too short");
}

/// Generates the safe band-kernel entry: availability assert + bounds asserts,
/// then the `#[target_feature]` call.
macro_rules! band_wrapper {
    ($name:ident, $kernel:ident, $avail:ident, $label:literal) => {
        #[doc = concat!("Safe entry to the ", $label, " band kernel; panics if")]
        #[doc = "dispatched on a CPU without the feature."]
        pub(crate) fn $name(
            ap: &[f32],
            bp: &[f32],
            k: usize,
            n: usize,
            kc: usize,
            c: &mut [f32],
            ldc: usize,
        ) {
            assert!(
                crate::dispatch::$avail(),
                concat!($label, " GEMM kernel dispatched on a CPU without it")
            );
            if c.is_empty() || n == 0 {
                return;
            }
            check_band(ap, bp, k, n, kc, c, ldc);
            // SAFETY: the assert above proves the CPU supports the kernel's target
            // features; `check_band` proves every index it computes is in bounds.
            unsafe { $kernel(ap, bp, k, n, kc, c, ldc) }
        }
    };
}

band_wrapper!(gemm_packed_band_avx2, band_avx2, avx2_available, "avx2");
band_wrapper!(
    gemm_packed_band_avx2_fma,
    band_avx2_fma,
    fma_available,
    "avx2+fma"
);
band_wrapper!(
    gemm_packed_band_avx512,
    band_avx512,
    avx512_available,
    "avx512"
);
band_wrapper!(
    gemm_packed_band_avx512_fma,
    band_avx512_fma,
    avx512_available,
    "avx512+fma"
);

/// Generates the safe AXPY entry: availability + length asserts.
macro_rules! axpy_wrapper {
    ($name:ident, $kernel:ident, $avail:ident, $label:literal) => {
        #[doc = concat!("Safe ", $label, " AXPY; panics without the CPU feature.")]
        pub(crate) fn $name(alpha: f32, x: &[f32], y: &mut [f32]) {
            assert!(
                crate::dispatch::$avail(),
                concat!($label, " axpy dispatched on a CPU without it")
            );
            assert_eq!(x.len(), y.len(), "axpy length mismatch");
            // SAFETY: feature asserted; the kernel never indexes past
            // x.len() == y.len().
            unsafe { $kernel(alpha, x, y) }
        }
    };
}

axpy_wrapper!(axpy_avx2, axpy_kernel_avx2, avx2_available, "avx2");
axpy_wrapper!(
    axpy_avx2_fma,
    axpy_kernel_avx2_fma,
    fma_available,
    "avx2+fma"
);
axpy_wrapper!(axpy_avx512, axpy_kernel_avx512, avx512_available, "avx512");
axpy_wrapper!(
    axpy_avx512_fma,
    axpy_kernel_avx512_fma,
    avx512_available,
    "avx512+fma"
);

/// Safe lane-parallel AVX2 SCAL (exact on every engine).
pub(crate) fn scal_avx2(alpha: f32, x: &mut [f32]) {
    assert!(
        crate::dispatch::avx2_available(),
        "avx2 scal dispatched on a CPU without it"
    );
    // SAFETY: feature asserted; the kernel never indexes past x.len().
    unsafe { scal_kernel_avx2(alpha, x) }
}

/// Safe lane-parallel AVX-512 SCAL (exact on every engine).
pub(crate) fn scal_avx512(alpha: f32, x: &mut [f32]) {
    assert!(
        crate::dispatch::avx512_available(),
        "avx512 scal dispatched on a CPU without it"
    );
    // SAFETY: feature asserted; the kernel never indexes past x.len().
    unsafe { scal_kernel_avx512(alpha, x) }
}

/// Safe fused AVX2 DOT (deterministic eight-partial reduction; fma engine only).
pub(crate) fn dot_avx2_fma(x: &[f32], y: &[f32]) -> f32 {
    assert!(
        crate::dispatch::fma_available(),
        "avx2+fma dot dispatched on a CPU without it"
    );
    assert_eq!(x.len(), y.len(), "dot length mismatch");
    // SAFETY: feature asserted; the kernel never indexes past x.len() == y.len().
    unsafe { dot_kernel_avx2_fma(x, y) }
}

/// Safe fused AVX-512 DOT (deterministic sixteen-partial reduction; fma engine only).
pub(crate) fn dot_avx512_fma(x: &[f32], y: &[f32]) -> f32 {
    assert!(
        crate::dispatch::avx512_available(),
        "avx512+fma dot dispatched on a CPU without it"
    );
    assert_eq!(x.len(), y.len(), "dot length mismatch");
    // SAFETY: feature asserted; the kernel never indexes past x.len() == y.len().
    unsafe { dot_kernel_avx512_fma(x, y) }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Packed band kernel: `(ap, bp, k, n, kc, c_band, ldc)`.
    type BandFn = fn(&[f32], &[f32], usize, usize, usize, &mut [f32], usize);
    type AxpyFn = fn(f32, &[f32], &mut [f32]);
    type ScalFn = fn(f32, &mut [f32]);
    type DotFn = fn(&[f32], &[f32]) -> f32;

    fn scalar_band(ap: &[f32], bp: &[f32], k: usize, n: usize, c: &mut [f32], ldc: usize) {
        let rows = c.len().div_ceil(ldc);
        for r in 0..rows {
            for p in 0..k {
                let a = ap[r * k + p];
                for j in 0..n {
                    c[r * ldc + j] += a * bp[p * n + j];
                }
            }
        }
    }

    fn fill(len: usize, seed: u32) -> Vec<f32> {
        (0..len)
            .map(|i| {
                let v = (i as u32).wrapping_mul(2654435761).wrapping_add(seed);
                (v % 97) as f32 / 17.0 - 2.5
            })
            .collect()
    }

    // Ragged shapes exercise the wide/narrow/scalar column tails and the row
    // remainder path of every kernel; kc=5 exercises the k-blocking.
    const SHAPES: [(usize, usize, usize, usize); 5] = [
        (1, 1, 3, 2),
        (6, 16, 8, 16),
        (7, 19, 11, 23),
        (13, 40, 5, 41),
        (12, 71, 9, 73),
    ];

    fn assert_band_bit_identical(vec_band: BandFn, label: &str) {
        for (rows, n, k, ldc) in SHAPES {
            let ap = fill(rows * k, 1);
            let bp = fill(k * n, 2);
            let mut c_ref = fill((rows - 1) * ldc + n, 3);
            let mut c_vec = c_ref.clone();
            scalar_band(&ap, &bp, k, n, &mut c_ref, ldc);
            vec_band(&ap, &bp, k, n, 5, &mut c_vec, ldc);
            let same = c_ref
                .iter()
                .zip(&c_vec)
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "{label}: rows={rows} n={n} k={k} ldc={ldc}");
        }
    }

    #[test]
    fn mul_add_bands_are_bit_identical_to_the_scalar_accumulation_order() {
        if crate::dispatch::avx2_available() {
            assert_band_bit_identical(gemm_packed_band_avx2, "avx2");
        } else {
            eprintln!("skipping avx2: CPU does not report it");
        }
        if crate::dispatch::avx512_available() {
            assert_band_bit_identical(gemm_packed_band_avx512, "avx512");
        } else {
            eprintln!("skipping avx512: CPU does not report it");
        }
    }

    #[test]
    fn fused_bands_stay_close_to_scalar() {
        let mut kernels: Vec<(BandFn, &str)> = Vec::new();
        if crate::dispatch::fma_available() {
            kernels.push((gemm_packed_band_avx2_fma, "avx2+fma"));
        }
        if crate::dispatch::avx512_available() {
            kernels.push((gemm_packed_band_avx512_fma, "avx512+fma"));
        }
        if kernels.is_empty() {
            eprintln!("skipping: CPU reports neither fma nor avx512f");
            return;
        }
        for (band, label) in kernels {
            let (rows, n, k, ldc) = (9, 37, 13, 40);
            let ap = fill(rows * k, 7);
            let bp = fill(k * n, 8);
            let mut c_ref = fill((rows - 1) * ldc + n, 9);
            let mut c_vec = c_ref.clone();
            scalar_band(&ap, &bp, k, n, &mut c_ref, ldc);
            band(&ap, &bp, k, n, 4, &mut c_vec, ldc);
            for (a, b) in c_ref.iter().zip(&c_vec) {
                assert!(
                    (a - b).abs() <= 1e-4 * (1.0 + a.abs()),
                    "{label}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn axpy_and_scal_match_the_scalar_loops_bit_for_bit() {
        let mut axpys: Vec<(AxpyFn, ScalFn, &str)> = Vec::new();
        if crate::dispatch::avx2_available() {
            axpys.push((axpy_avx2, scal_avx2, "avx2"));
        }
        if crate::dispatch::avx512_available() {
            axpys.push((axpy_avx512, scal_avx512, "avx512"));
        }
        if axpys.is_empty() {
            eprintln!("skipping: CPU reports neither avx2 nor avx512f");
            return;
        }
        for (axpy_fn, scal_fn, label) in axpys {
            for len in [0, 1, 7, 8, 9, 15, 16, 17, 31, 64, 100] {
                let x = fill(len, 11);
                let mut y_ref = fill(len, 12);
                let mut y_vec = y_ref.clone();
                for (yi, xi) in y_ref.iter_mut().zip(&x) {
                    *yi += 1.25 * xi;
                }
                axpy_fn(1.25, &x, &mut y_vec);
                assert!(
                    y_ref
                        .iter()
                        .zip(&y_vec)
                        .all(|(a, b)| a.to_bits() == b.to_bits()),
                    "{label} axpy len={len}"
                );

                let mut s_ref = fill(len, 13);
                let mut s_vec = s_ref.clone();
                for v in s_ref.iter_mut() {
                    *v *= 0.75;
                }
                scal_fn(0.75, &mut s_vec);
                assert!(
                    s_ref
                        .iter()
                        .zip(&s_vec)
                        .all(|(a, b)| a.to_bits() == b.to_bits()),
                    "{label} scal len={len}"
                );
            }
        }
    }

    #[test]
    fn fused_dots_are_deterministic_and_close_to_scalar() {
        let mut dots: Vec<(DotFn, &str)> = Vec::new();
        if crate::dispatch::fma_available() {
            dots.push((dot_avx2_fma, "avx2+fma"));
        }
        if crate::dispatch::avx512_available() {
            dots.push((dot_avx512_fma, "avx512+fma"));
        }
        if dots.is_empty() {
            eprintln!("skipping: CPU reports neither fma nor avx512f");
            return;
        }
        for (dot_fn, label) in dots {
            let x = fill(1000, 21);
            let y = fill(1000, 22);
            let scalar: f32 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
            let fused = dot_fn(&x, &y);
            assert_eq!(fused.to_bits(), dot_fn(&x, &y).to_bits(), "{label}");
            assert!(
                (scalar - fused).abs() <= 1e-3 * (1.0 + scalar.abs()),
                "{label}: {scalar} vs {fused}"
            );
        }
    }
}
