//! Property tests pinning the blocked / multi-threaded GEMM to the naive reference
//! kernel **bit-for-bit**, across transpose variants, alpha/beta values, ragged shapes,
//! strided leading dimensions, k-block sizes and thread counts.

use plinius_darknet::matrix::{
    gemm, gemm_reference, gemm_tuned, gemm_with_engine, GEMM_DEFAULT_KC,
};
use plinius_darknet::{avx2_available, avx512_available, fma_available, GemmKind};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The `mul`+`add` engines the host can run: these are required to be **strictly
/// bit-identical** to the scalar kernel — the vector lanes run the same
/// multiply-then-add roundings in the same ascending-`p` order, lane width only
/// changes how many output columns are in flight.
fn mul_add_engines() -> Vec<GemmKind> {
    let mut engines = vec![GemmKind::Scalar];
    if avx2_available() {
        engines.push(GemmKind::Avx2);
    }
    if avx512_available() {
        engines.push(GemmKind::Avx512);
    }
    engines
}

/// The opt-in fused engines the host can run: FMA contracts each
/// multiply-then-add into one rounding, so results are only *close* to scalar.
fn fused_engines() -> Vec<GemmKind> {
    let mut engines = Vec::new();
    if fma_available() {
        engines.push(GemmKind::Avx2Fma);
    }
    if avx512_available() {
        engines.push(GemmKind::Avx512Fma);
    }
    engines
}

fn bits(values: &[f32]) -> Vec<u32> {
    values.iter().map(|v| v.to_bits()).collect()
}

/// Bit pattern with NaNs canonicalised. Used only for the *reference vs blocked*
/// comparison: the two kernels compile to different instruction schedules, and LLVM is
/// free to commute `fadd`/`fmul` operands, which changes which operand's NaN
/// *payload/sign bits* propagate — the numeric IEEE semantics (which values are NaN,
/// Inf, or finite, and every finite bit pattern) are still identical. Comparisons
/// *between* blocked-kernel configurations (thread counts, block sizes) stay strictly
/// bit-for-bit, because the same machine code runs in every configuration.
fn canon_bits(values: &[f32]) -> Vec<u32> {
    values
        .iter()
        .map(|v| if v.is_nan() { 0x7FC0_0000 } else { v.to_bits() })
        .collect()
}

/// Fills a buffer with a mix of ordinary values, exact zeros and (optionally) NaN/Inf
/// specials, so the properties also pin IEEE propagation semantics.
fn fill(rng: &mut StdRng, len: usize, specials: bool) -> Vec<f32> {
    (0..len)
        .map(|i| {
            if i % 5 == 3 {
                0.0
            } else if specials && i % 17 == 8 {
                f32::NAN
            } else if specials && i % 23 == 11 {
                f32::INFINITY
            } else {
                rng.gen_range(-2.0..2.0)
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn blocked_and_parallel_gemm_match_reference_bit_for_bit(
        m in 1usize..12,
        n in 1usize..14,
        k in 0usize..20,
        ta in any::<bool>(),
        tb in any::<bool>(),
        lda_pad in 0usize..3,
        ldb_pad in 0usize..3,
        ldc_pad in 0usize..3,
        specials in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let alpha = *[0.0f32, 1.0, -1.0, rng.gen_range(-2.0..2.0)]
            .get((seed % 4) as usize)
            .unwrap();
        let beta = *[0.0f32, 1.0, rng.gen_range(-1.5..1.5)]
            .get((seed % 3) as usize)
            .unwrap();
        let lda = if ta { m + lda_pad } else { k + lda_pad };
        let ldb = if tb { k + ldb_pad } else { n + ldb_pad };
        let ldc = n + ldc_pad;
        let a = fill(&mut rng, (if ta { k } else { m }) * lda.max(1), specials);
        let b = fill(&mut rng, (if tb { n } else { k }) * ldb.max(1), specials);
        let c0 = fill(&mut rng, m * ldc, false);

        let mut c_ref = c0.clone();
        gemm_reference(ta, tb, m, n, k, alpha, &a, lda, &b, ldb, beta, &mut c_ref, ldc);

        // The public dispatching entry point matches the reference bit-for-bit (modulo
        // NaN payload canonicalisation, see `canon_bits`).
        let mut c_auto = c0.clone();
        gemm(ta, tb, m, n, k, alpha, &a, lda, &b, ldb, beta, &mut c_auto, ldc);
        prop_assert_eq!(canon_bits(&c_ref), canon_bits(&c_auto));

        // Every explicit thread count and block size — including degenerate kc=1 and a
        // block larger than k — matches the reference numerically and the dispatcher's
        // output *strictly* bit-for-bit (same kernel code for every configuration).
        for threads in [1usize, 2, 5] {
            for kc in [1usize, 3, GEMM_DEFAULT_KC] {
                let mut c = c0.clone();
                gemm_tuned(threads, kc, ta, tb, m, n, k, alpha, &a, lda, &b, ldb, beta, &mut c, ldc);
                prop_assert_eq!(
                    canon_bits(&c_ref),
                    canon_bits(&c),
                    "vs reference: threads={} kc={} m={} n={} k={} ta={} tb={}",
                    threads, kc, m, n, k, ta, tb
                );
                prop_assert_eq!(
                    bits(&c_auto),
                    bits(&c),
                    "vs dispatcher: threads={} kc={} m={} n={} k={} ta={} tb={}",
                    threads, kc, m, n, k, ta, tb
                );
            }
        }
    }

    #[test]
    fn every_mul_add_engine_is_bit_identical_to_scalar(
        m in 1usize..12,
        n in 1usize..24,
        k in 0usize..20,
        ta in any::<bool>(),
        tb in any::<bool>(),
        ldc_pad in 0usize..3,
        specials in any::<bool>(),
        seed in any::<u64>(),
    ) {
        // `n` reaches past both vector widths (8 and 16) so full-width bands,
        // partial strips and scalar column tails are all exercised.
        let mut rng = StdRng::seed_from_u64(seed);
        let alpha = rng.gen_range(-2.0..2.0f32);
        let beta = *[0.0f32, 1.0, rng.gen_range(-1.5..1.5)]
            .get((seed % 3) as usize)
            .unwrap();
        let lda = if ta { m } else { k };
        let ldb = if tb { k } else { n };
        let ldc = n + ldc_pad;
        let a = fill(&mut rng, (if ta { k } else { m }) * lda.max(1), specials);
        let b = fill(&mut rng, (if tb { n } else { k }) * ldb.max(1), specials);
        let c0 = fill(&mut rng, m * ldc, false);

        let mut c_scalar = c0.clone();
        gemm_with_engine(
            GemmKind::Scalar, 1, GEMM_DEFAULT_KC,
            ta, tb, m, n, k, alpha, &a, lda, &b, ldb, beta, &mut c_scalar, ldc,
        );

        // Every mul+add engine, thread count and k-block size — the engine-specific
        // tile shapes hoisted into the dispatch layer must never change results,
        // only speed. Finite inputs compare strictly; with NaN/Inf specials the
        // engines' different instruction schedules may propagate different NaN
        // payload bits, so those compare canonicalised.
        for engine in mul_add_engines() {
            for threads in [1usize, 2, 5] {
                for kc in [1usize, 3, GEMM_DEFAULT_KC] {
                    let mut c = c0.clone();
                    gemm_with_engine(
                        engine, threads, kc,
                        ta, tb, m, n, k, alpha, &a, lda, &b, ldb, beta, &mut c, ldc,
                    );
                    if specials {
                        prop_assert_eq!(
                            canon_bits(&c_scalar),
                            canon_bits(&c),
                            "engine={} threads={} kc={} m={} n={} k={} ta={} tb={}",
                            engine, threads, kc, m, n, k, ta, tb
                        );
                    } else {
                        prop_assert_eq!(
                            bits(&c_scalar),
                            bits(&c),
                            "engine={} threads={} kc={} m={} n={} k={} ta={} tb={}",
                            engine, threads, kc, m, n, k, ta, tb
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn fused_engines_stay_within_the_documented_error_bound(
        m in 1usize..10,
        n in 1usize..24,
        k in 0usize..20,
        ta in any::<bool>(),
        tb in any::<bool>(),
        seed in any::<u64>(),
    ) {
        // FMA contracts each mul+add into a single rounding, so each of the `k`
        // accumulation steps (plus the alpha/beta applications) can differ from the
        // scalar result by at most one half-ulp of the running magnitude. The
        // documented bound: |fused - scalar| <= (k + 4) * eps * M, where M is the
        // magnitude bound of the element (the same accumulation run on absolute
        // values). Cancellation makes a relative (ulp-of-result) bound meaningless,
        // which is why the bound scales with M, not with the result.
        let mut rng = StdRng::seed_from_u64(seed);
        let alpha = rng.gen_range(-2.0..2.0f32);
        let beta = rng.gen_range(-1.5..1.5f32);
        let lda = if ta { m } else { k };
        let ldb = if tb { k } else { n };
        let a = fill(&mut rng, (if ta { k } else { m }) * lda.max(1), false);
        let b = fill(&mut rng, (if tb { n } else { k }) * ldb.max(1), false);
        let c0 = fill(&mut rng, m * n, false);

        let mut c_scalar = c0.clone();
        gemm_with_engine(
            GemmKind::Scalar, 1, GEMM_DEFAULT_KC,
            ta, tb, m, n, k, alpha, &a, lda, &b, ldb, beta, &mut c_scalar, n,
        );
        // Magnitude bound: the same computation over absolute values.
        let abs = |v: &[f32]| v.iter().map(|x| x.abs()).collect::<Vec<f32>>();
        let mut magnitude = abs(&c0);
        gemm_reference(
            ta, tb, m, n, k, alpha.abs(), &abs(&a), lda, &abs(&b), ldb, beta.abs(),
            &mut magnitude, n,
        );
        let tolerance = (k as f32 + 4.0) * f32::EPSILON;

        for engine in fused_engines() {
            let mut c = c0.clone();
            gemm_with_engine(
                engine, 1, GEMM_DEFAULT_KC,
                ta, tb, m, n, k, alpha, &a, lda, &b, ldb, beta, &mut c, n,
            );
            for (i, (&fused, &scalar)) in c.iter().zip(&c_scalar).enumerate() {
                prop_assert!(
                    (fused - scalar).abs() <= tolerance * magnitude[i],
                    "engine={} element {}: fused {} vs scalar {} (bound {})",
                    engine, i, fused, scalar, tolerance * magnitude[i]
                );
            }
            // Fused engines are still deterministic: a second run is bit-identical.
            let mut c2 = c0.clone();
            gemm_with_engine(
                engine, 1, GEMM_DEFAULT_KC,
                ta, tb, m, n, k, alpha, &a, lda, &b, ldb, beta, &mut c2, n,
            );
            prop_assert_eq!(bits(&c), bits(&c2));
        }
    }

    #[test]
    fn gemm_leaves_the_ldc_gutter_untouched(
        m in 1usize..6,
        n in 1usize..8,
        k in 1usize..8,
        seed in any::<u64>(),
    ) {
        // Row padding beyond `n` must never be written, whichever kernel runs.
        let mut rng = StdRng::seed_from_u64(seed);
        let ldc = n + 2;
        let a = fill(&mut rng, m * k, false);
        let b = fill(&mut rng, k * n, false);
        let c0 = fill(&mut rng, m * ldc, false);
        let mut c = c0.clone();
        gemm_tuned(3, 2, false, false, m, n, k, 1.0, &a, k, &b, n, 0.0, &mut c, ldc);
        for row in 0..m {
            prop_assert_eq!(
                bits(&c0[row * ldc + n..(row + 1) * ldc]),
                bits(&c[row * ldc + n..(row + 1) * ldc])
            );
        }
    }
}
