//! Wall-clock throughput gates for the GEMM engines. `#[ignore]`d because debug
//! builds and loaded CI workers make wall-clock numbers meaningless — CI runs them
//! in the release job (`cargo test --release -p plinius-darknet -- --ignored`).

use plinius_darknet::dispatch::{avx2_available, avx512_available, fma_available, GemmKind};
use plinius_darknet::matrix::{gemm_with_engine, GEMM_DEFAULT_KC};
use std::time::Instant;

/// The fig6-scale hot-path shape: single-thread 256x256x256 `nn` GEMM.
const DIM: usize = 256;

fn fill(len: usize, seed: u32) -> Vec<f32> {
    (0..len)
        .map(|i| {
            let v = (i as u32).wrapping_mul(2654435761).wrapping_add(seed);
            (v % 1009) as f32 / 251.0 - 2.0
        })
        .collect()
}

/// Best-of-N wall-clock GFLOP/s per engine on the gate shape. The engines are
/// measured interleaved (round-robin across repetitions) so turbo/clock drift on
/// a shared host hits every engine alike and the *ratios* stay stable even when
/// the absolute numbers wander.
fn gflops(engines: &[GemmKind], reps: usize) -> Vec<f64> {
    let a = fill(DIM * DIM, 1);
    let b = fill(DIM * DIM, 2);
    let mut c = vec![0.0f32; DIM * DIM];
    let flops = 2.0 * (DIM as f64).powi(3);
    let mut best = vec![f64::INFINITY; engines.len()];
    for _ in 0..reps {
        for (engine, best) in engines.iter().zip(best.iter_mut()) {
            let start = Instant::now();
            gemm_with_engine(
                *engine,
                1,
                GEMM_DEFAULT_KC,
                false,
                false,
                DIM,
                DIM,
                DIM,
                1.0,
                &a,
                DIM,
                &b,
                DIM,
                0.0,
                &mut c,
                DIM,
            );
            *best = best.min(start.elapsed().as_secs_f64());
        }
    }
    best.into_iter().map(|t| flops / t / 1e9).collect()
}

/// The PR's headline acceptance gate, with the floors the ALU budget actually
/// allows. The scalar kernel auto-vectorizes to the SSE baseline at ~8
/// FLOP/cycle, and a bit-identical `mul`+`add` vector kernel spends two ALU ops
/// per element — so it peaks at `lane-width` FLOP-pairs/cycle: 8-lane AVX2 is
/// architecturally capped at 2x scalar (floor 1.5x), and 16-lane AVX-512 at 4x
/// before the 512-bit frequency license shaves it (measured ~2.7x, floor 2x).
/// The >= 3x gate is therefore carried by the widest *vector* engine of the
/// host, fused included (avx512+fma measures ~3.3x here); the bit-identity of
/// the `mul`+`add` engines is pinned separately by the proptests, which is the
/// part wall-clock cannot prove.
#[test]
#[ignore = "wall-clock throughput gate; run with --release (see CI release job)"]
fn vector_gemm_beats_scalar_on_the_gate_shape() {
    if !avx2_available() && !avx512_available() {
        eprintln!("skipping: CPU reports neither avx2 nor avx512f");
        return;
    }
    let mut engines = vec![GemmKind::Scalar];
    if avx2_available() {
        engines.push(GemmKind::Avx2);
    }
    if avx512_available() {
        engines.push(GemmKind::Avx512);
    }
    if fma_available() {
        engines.push(GemmKind::Avx2Fma);
    }
    if avx512_available() {
        engines.push(GemmKind::Avx512Fma);
    }
    let rates = gflops(&engines, 8);
    let scalar = rates[0];
    let mut fastest_vector = 0.0f64;
    for (engine, rate) in engines.iter().zip(&rates) {
        eprintln!(
            "gemm {DIM}^3 nn 1t: {} {rate:.2} GFLOP/s ({:.2}x scalar)",
            engine.name(),
            rate / scalar
        );
    }
    for (engine, rate) in engines.iter().zip(&rates).skip(1) {
        let floor = match engine {
            GemmKind::Avx2 => 1.5,
            GemmKind::Avx512 => 2.0,
            _ => 1.5,
        };
        assert!(
            rate >= &(floor * scalar),
            "{} engine only {:.2}x scalar ({rate:.2} vs {scalar:.2} GFLOP/s, floor {floor}x)",
            engine.name(),
            rate / scalar
        );
        fastest_vector = fastest_vector.max(*rate);
    }
    // The 3x gate proper: only enforceable where 16-lane kernels exist; AVX2-only
    // hosts are held to the per-engine floors above (8 lanes cannot reach 3x
    // against a peak-SSE scalar kernel, fused or not — that is an ALU budget, not
    // a tuning gap).
    if avx512_available() {
        let ratio = fastest_vector / scalar;
        assert!(
            ratio >= 3.0,
            "fastest vector engine only {ratio:.2}x scalar \
             ({fastest_vector:.2} vs {scalar:.2} GFLOP/s)"
        );
    }
}
