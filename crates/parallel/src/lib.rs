//! # plinius-parallel
//!
//! Minimal fork/join helpers for the compute hot path, built on
//! [`std::thread::scope`]. The build environment has no crates.io access, so this crate
//! stands in for the small slice of `rayon` the workspace needs: splitting a mutable
//! buffer into disjoint chunks processed across threads (`par_chunks_mut`) and mapping a
//! slice of independent items to a result vector in item order (`par_map`).
//!
//! # Determinism contract
//!
//! Every helper partitions work by *item/chunk index*, never by thread id, and callers
//! receive each chunk or item exactly as the serial loop would. As long as the
//! per-item closure is itself deterministic, the overall result is **bit-identical for
//! every thread count** — the property the training loop's crash/resume tests rely on.
//! Threads may interleave side effects (e.g. charges to the shared simulation clock),
//! but commutative accounting (atomic additions) reaches the same totals regardless.
//!
//! The default worker count comes from [`max_threads`]: the `PLINIUS_THREADS`
//! environment variable when set, otherwise [`std::thread::available_parallelism`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::num::NonZeroUsize;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Environment variable overriding the worker-thread count (`1` forces serial
/// execution; useful to verify the bit-identical-across-thread-counts invariant).
pub const THREADS_ENV: &str = "PLINIUS_THREADS";

/// Upper bound on the worker count, to keep a misconfigured environment from spawning
/// an absurd number of scoped threads per kernel call.
const MAX_THREAD_CAP: usize = 64;

/// The worker-thread budget for parallel kernels: `PLINIUS_THREADS` when set to a
/// positive integer, otherwise the machine's available parallelism (both capped at 64).
pub fn max_threads() -> usize {
    if let Ok(raw) = std::env::var(THREADS_ENV) {
        if let Ok(n) = raw.trim().parse::<usize>() {
            if n >= 1 {
                return n.min(MAX_THREAD_CAP);
            }
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
        .min(MAX_THREAD_CAP)
}

/// Processes `data` in disjoint chunks of `chunk_len` elements across up to `threads`
/// scoped threads, calling `f(chunk_index, chunk)` for every chunk.
///
/// Chunk boundaries depend only on `chunk_len` (the last chunk may be shorter), and
/// chunks are distributed round-robin over the workers, so the set of `(index, chunk)`
/// invocations is independent of the thread count. With `threads <= 1` (or a single
/// chunk) everything runs on the calling thread.
///
/// # Panics
///
/// Panics if `chunk_len` is zero, and propagates panics from `f`.
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk_len: usize, threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(
        chunk_len > 0,
        "par_chunks_mut needs a non-zero chunk length"
    );
    if data.is_empty() {
        return;
    }
    let num_chunks = data.len().div_ceil(chunk_len);
    let threads = threads.clamp(1, num_chunks);
    if threads == 1 {
        for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(i, chunk);
        }
        return;
    }
    let mut assignments: Vec<Vec<(usize, &mut [T])>> = (0..threads).map(|_| Vec::new()).collect();
    for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
        assignments[i % threads].push((i, chunk));
    }
    let f = &f;
    std::thread::scope(|s| {
        let mut workers = assignments.into_iter();
        let local = workers.next().expect("at least one worker");
        for work in workers {
            s.spawn(move || {
                for (i, chunk) in work {
                    f(i, chunk);
                }
            });
        }
        // The calling thread takes the first share instead of idling at the join.
        for (i, chunk) in local {
            f(i, chunk);
        }
    });
}

/// Maps every item of `items` through `f(index, item)` across up to `threads` scoped
/// threads, returning the results **in item order**.
///
/// Items are distributed round-robin over the workers (so a few large items interleave
/// with small ones instead of all landing on one band); the output vector is identical
/// for every thread count.
///
/// # Panics
///
/// Propagates panics from `f`.
pub fn par_map<I, R, F>(items: &[I], threads: usize, f: F) -> Vec<R>
where
    I: Sync,
    R: Send,
    F: Fn(usize, &I) -> R + Sync,
{
    let n = items.len();
    let threads = threads.clamp(1, n.max(1));
    if threads == 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }
    let mut out: Vec<Option<R>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    let mut assignments: Vec<Vec<(usize, &mut Option<R>)>> =
        (0..threads).map(|_| Vec::new()).collect();
    for (i, slot) in out.iter_mut().enumerate() {
        assignments[i % threads].push((i, slot));
    }
    let f = &f;
    std::thread::scope(|s| {
        let mut workers = assignments.into_iter();
        let local = workers.next().expect("at least one worker");
        for work in workers {
            s.spawn(move || {
                for (i, slot) in work {
                    *slot = Some(f(i, &items[i]));
                }
            });
        }
        for (i, slot) in local {
            *slot = Some(f(i, &items[i]));
        }
    });
    out.into_iter()
        .map(|slot| slot.expect("every slot is filled by exactly one worker"))
        .collect()
}

/// Runs `f(index, item)` for every item of `items` across up to `threads` scoped
/// threads, mutating the items in place.
///
/// This is the in-place sibling of [`par_map`]: instead of collecting results it hands
/// each worker exclusive `&mut` access to its items (distributed round-robin by item
/// index, like every helper in this crate), so callers can pre-stage per-item output
/// buffers and avoid any allocation in the dispatch path when `threads <= 1`.
/// The set of `(index, &mut item)` invocations is independent of the thread count.
///
/// # Panics
///
/// Propagates panics from `f`.
pub fn par_for_each_mut<T, F>(items: &mut [T], threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    par_chunks_mut(items, 1, threads, |i, chunk| f(i, &mut chunk[0]));
}

// --------------------------------------------------------------------- pipeline

/// Why a [`Pipeline`] operation could not proceed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipelineError {
    /// `send` was called while a job is already in flight (the pipeline is depth-1:
    /// `recv`/`drain` the previous result first).
    Busy,
    /// `recv` was called with no job in flight.
    Idle,
    /// The worker thread is gone (its closure panicked, or the pipeline was closed).
    WorkerGone,
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Busy => write!(f, "pipeline already has a job in flight"),
            PipelineError::Idle => write!(f, "pipeline has no job in flight"),
            PipelineError::WorkerGone => write!(f, "pipeline worker thread is gone"),
        }
    }
}

impl std::error::Error for PipelineError {}

/// The single exchange slot shared between the caller and the worker.
enum Slot<J, R> {
    /// No job pending, no result ready.
    Empty,
    /// A job waiting for the worker to pick it up.
    Job(J),
    /// The worker is running the job.
    Running,
    /// A finished result waiting for `recv`.
    Done(R),
    /// The pipeline is shutting down (or the worker's closure panicked).
    Closed,
}

struct PipelineShared<J, R> {
    slot: Mutex<Slot<J, R>>,
    cv: Condvar,
}

/// Marks the slot `Closed` even if the worker's closure panics, so a blocked `recv`
/// wakes up with [`PipelineError::WorkerGone`] instead of deadlocking.
struct CloseOnExit<J, R>(Arc<PipelineShared<J, R>>);

impl<J, R> Drop for CloseOnExit<J, R> {
    fn drop(&mut self) {
        *self.0.slot.lock().expect("pipeline slot poisoned") = Slot::Closed;
        self.0.cv.notify_all();
    }
}

/// A depth-1 background pipeline: one dedicated worker thread, one job in flight.
///
/// This is the executor primitive behind the trainer's *overlapped* persistence mode:
/// the caller stages a cheap snapshot, `send`s it, keeps computing, and `recv`s (or
/// `drain`s) the expensive result at the next join point — classic double buffering.
/// The worker lives exactly as long as the `Pipeline` value (it is joined on drop), so
/// jobs never outlive the state their closure captured.
///
/// The exchange goes through a single pre-allocated slot guarded by a mutex/condvar
/// pair: a `send`/`recv` cycle *moves* the job and result values and performs **no
/// heap allocation**, which the allocation-free steady-state mirror path relies on.
///
/// # Example
///
/// ```
/// use plinius_parallel::Pipeline;
///
/// let mut pipe: Pipeline<u64, u64> = Pipeline::spawn("squarer", |x| x * x);
/// pipe.send(12)?;
/// // ... overlap other work here ...
/// assert_eq!(pipe.recv()?, 144);
/// assert_eq!(pipe.drain()?, None); // nothing in flight any more
/// # Ok::<(), plinius_parallel::PipelineError>(())
/// ```
pub struct Pipeline<J, R> {
    shared: Arc<PipelineShared<J, R>>,
    worker: Option<JoinHandle<()>>,
    in_flight: bool,
}

impl<J, R> fmt::Debug for Pipeline<J, R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Pipeline")
            .field("in_flight", &self.in_flight)
            .finish()
    }
}

impl<J: Send + 'static, R: Send + 'static> Pipeline<J, R> {
    /// Spawns the worker thread; every job sent to the pipeline runs through `f`, in
    /// submission order, on that one thread.
    pub fn spawn<F>(name: &str, mut f: F) -> Self
    where
        F: FnMut(J) -> R + Send + 'static,
    {
        let shared = Arc::new(PipelineShared {
            slot: Mutex::new(Slot::Empty),
            cv: Condvar::new(),
        });
        let worker_shared = Arc::clone(&shared);
        let worker = std::thread::Builder::new()
            .name(name.to_owned())
            .spawn(move || {
                let guard = CloseOnExit(worker_shared);
                loop {
                    let job = {
                        let mut slot = guard.0.slot.lock().expect("pipeline slot poisoned");
                        loop {
                            match std::mem::replace(&mut *slot, Slot::Empty) {
                                Slot::Job(job) => {
                                    *slot = Slot::Running;
                                    break job;
                                }
                                Slot::Closed => {
                                    *slot = Slot::Closed;
                                    return;
                                }
                                other => {
                                    // Empty, or a Done the caller has not collected
                                    // yet: park until the state changes.
                                    *slot = other;
                                    slot = guard.0.cv.wait(slot).expect("pipeline slot poisoned");
                                }
                            }
                        }
                    };
                    let result = f(job);
                    let mut slot = guard.0.slot.lock().expect("pipeline slot poisoned");
                    if matches!(*slot, Slot::Closed) {
                        return;
                    }
                    *slot = Slot::Done(result);
                    guard.0.cv.notify_all();
                }
            })
            .expect("failed to spawn pipeline worker");
        Pipeline {
            shared,
            worker: Some(worker),
            in_flight: false,
        }
    }

    /// Hands `job` to the worker. Returns immediately; collect the result with
    /// [`Pipeline::recv`] or [`Pipeline::drain`].
    ///
    /// # Errors
    ///
    /// [`PipelineError::Busy`] if a job is already in flight (the pipeline is
    /// depth-1), [`PipelineError::WorkerGone`] if the worker died.
    pub fn send(&mut self, job: J) -> Result<(), PipelineError> {
        if self.in_flight {
            return Err(PipelineError::Busy);
        }
        let mut slot = self.shared.slot.lock().expect("pipeline slot poisoned");
        match *slot {
            Slot::Closed => Err(PipelineError::WorkerGone),
            Slot::Empty => {
                *slot = Slot::Job(job);
                self.shared.cv.notify_all();
                self.in_flight = true;
                Ok(())
            }
            // With `in_flight == false` the slot can only be Empty or Closed.
            _ => unreachable!("pipeline slot out of sync with in_flight flag"),
        }
    }

    /// Blocks until the in-flight job completes and returns its result.
    ///
    /// # Errors
    ///
    /// [`PipelineError::Idle`] if nothing is in flight, [`PipelineError::WorkerGone`]
    /// if the worker died before delivering the result.
    pub fn recv(&mut self) -> Result<R, PipelineError> {
        if !self.in_flight {
            return Err(PipelineError::Idle);
        }
        let mut slot = self.shared.slot.lock().expect("pipeline slot poisoned");
        loop {
            match std::mem::replace(&mut *slot, Slot::Empty) {
                Slot::Done(result) => {
                    self.in_flight = false;
                    self.shared.cv.notify_all();
                    return Ok(result);
                }
                Slot::Closed => {
                    *slot = Slot::Closed;
                    self.in_flight = false;
                    return Err(PipelineError::WorkerGone);
                }
                other => {
                    *slot = other;
                    slot = self.shared.cv.wait(slot).expect("pipeline slot poisoned");
                }
            }
        }
    }

    /// Collects the in-flight result if there is one: `Ok(Some(result))` after a
    /// completed job, `Ok(None)` when idle.
    ///
    /// # Errors
    ///
    /// [`PipelineError::WorkerGone`] if the worker died with a job in flight.
    pub fn drain(&mut self) -> Result<Option<R>, PipelineError> {
        if self.in_flight {
            self.recv().map(Some)
        } else {
            Ok(None)
        }
    }

    /// Whether a job is currently in flight.
    pub fn in_flight(&self) -> bool {
        self.in_flight
    }
}

impl<J, R> Drop for Pipeline<J, R> {
    fn drop(&mut self) {
        // Close the slot (discarding any pending job or uncollected result) and join
        // the worker so nothing outlives the pipeline.
        if let Ok(mut slot) = self.shared.slot.lock() {
            *slot = Slot::Closed;
        }
        self.shared.cv.notify_all();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn par_chunks_mut_visits_every_chunk_once_with_correct_indices() {
        for threads in [1usize, 2, 3, 8] {
            let mut data: Vec<usize> = vec![0; 23];
            par_chunks_mut(&mut data, 5, threads, |idx, chunk| {
                for v in chunk.iter_mut() {
                    *v += idx + 1;
                }
            });
            let expected: Vec<usize> = (0..23).map(|i| i / 5 + 1).collect();
            assert_eq!(data, expected, "threads={threads}");
        }
    }

    #[test]
    fn par_chunks_mut_handles_empty_and_short_inputs() {
        let mut empty: Vec<u8> = Vec::new();
        par_chunks_mut(&mut empty, 4, 8, |_, _| panic!("no chunks expected"));
        let mut one = vec![7u8];
        let calls = AtomicUsize::new(0);
        par_chunks_mut(&mut one, 4, 8, |idx, chunk| {
            assert_eq!((idx, chunk.len()), (0, 1));
            calls.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(calls.load(Ordering::Relaxed), 1);
    }

    #[test]
    #[should_panic(expected = "non-zero chunk length")]
    fn par_chunks_mut_rejects_zero_chunk_len() {
        par_chunks_mut(&mut [0u8; 4], 0, 2, |_, _| {});
    }

    #[test]
    fn par_map_preserves_item_order_for_every_thread_count() {
        let items: Vec<u64> = (0..37).collect();
        let serial: Vec<u64> = items.iter().map(|v| v * v + 1).collect();
        for threads in [1usize, 2, 5, 16, 64] {
            let mapped = par_map(&items, threads, |i, v| {
                assert_eq!(items[i], *v);
                v * v + 1
            });
            assert_eq!(mapped, serial, "threads={threads}");
        }
    }

    #[test]
    fn par_for_each_mut_visits_every_item_in_place() {
        for threads in [1usize, 2, 3, 8] {
            let mut items: Vec<(usize, u64)> = (0..17).map(|i| (i, 0u64)).collect();
            par_for_each_mut(&mut items, threads, |idx, item| {
                assert_eq!(item.0, idx, "index must match item position");
                item.1 = (idx as u64) * 3 + 1;
            });
            let expected: Vec<(usize, u64)> = (0..17).map(|i| (i, (i as u64) * 3 + 1)).collect();
            assert_eq!(items, expected, "threads={threads}");
        }
        // Empty input is a no-op.
        let mut empty: Vec<u8> = Vec::new();
        par_for_each_mut(&mut empty, 4, |_, _| panic!("no items expected"));
    }

    #[test]
    fn par_map_on_empty_slice_returns_empty() {
        let out: Vec<u8> = par_map(&[] as &[u8], 4, |_, v| *v);
        assert!(out.is_empty());
    }

    #[test]
    fn pipeline_runs_jobs_in_order_on_one_worker() {
        let mut pipe: Pipeline<u64, (u64, String)> = Pipeline::spawn("test-worker", |x| {
            let name = std::thread::current().name().unwrap_or("").to_owned();
            (x * 2, name)
        });
        assert!(!pipe.in_flight());
        for i in 0..10u64 {
            pipe.send(i).unwrap();
            assert!(pipe.in_flight());
            let (doubled, name) = pipe.recv().unwrap();
            assert_eq!(doubled, i * 2);
            assert_eq!(name, "test-worker");
        }
        assert!(!pipe.in_flight());
    }

    #[test]
    fn pipeline_is_depth_one() {
        let mut pipe: Pipeline<u8, u8> = Pipeline::spawn("depth", |x| x);
        pipe.send(1).unwrap();
        assert_eq!(pipe.send(2), Err(PipelineError::Busy));
        assert_eq!(pipe.recv().unwrap(), 1);
        assert_eq!(pipe.recv(), Err(PipelineError::Idle));
        assert_eq!(pipe.drain().unwrap(), None);
        pipe.send(3).unwrap();
        assert_eq!(pipe.drain().unwrap(), Some(3));
    }

    #[test]
    fn pipeline_worker_keeps_mutable_state_across_jobs() {
        let mut total = 0u64;
        let mut pipe: Pipeline<u64, u64> = Pipeline::spawn("acc", move |x| {
            total += x;
            total
        });
        pipe.send(5).unwrap();
        assert_eq!(pipe.recv().unwrap(), 5);
        pipe.send(7).unwrap();
        assert_eq!(pipe.recv().unwrap(), 12);
    }

    #[test]
    fn pipeline_moves_buffers_without_copying() {
        // The job and result move through the slot: a Vec survives the round trip
        // with its contents (and the worker can reuse/return it).
        let mut pipe: Pipeline<Vec<u8>, Vec<u8>> = Pipeline::spawn("bufs", |mut v: Vec<u8>| {
            for b in v.iter_mut() {
                *b ^= 0xFF;
            }
            v
        });
        pipe.send(vec![0x00, 0x0F, 0xF0]).unwrap();
        assert_eq!(pipe.recv().unwrap(), vec![0xFF, 0xF0, 0x0F]);
    }

    #[test]
    fn pipeline_surfaces_a_panicked_worker_instead_of_deadlocking() {
        let mut pipe: Pipeline<u8, u8> = Pipeline::spawn("panicky", |x| {
            if x == 13 {
                panic!("unlucky");
            }
            x
        });
        pipe.send(1).unwrap();
        assert_eq!(pipe.recv().unwrap(), 1);
        pipe.send(13).unwrap();
        assert_eq!(pipe.recv(), Err(PipelineError::WorkerGone));
        // Dead worker: further sends fail cleanly too.
        assert_eq!(pipe.send(2), Err(PipelineError::WorkerGone));
    }

    #[test]
    fn dropping_a_pipeline_with_an_inflight_job_joins_cleanly() {
        let pipe: Pipeline<(), ()> = Pipeline::spawn("sleepy", |()| {
            std::thread::sleep(std::time::Duration::from_millis(10));
        });
        let mut pipe = pipe;
        pipe.send(()).unwrap();
        drop(pipe); // must not hang or leak the worker
    }

    #[test]
    fn pipeline_error_display_names_the_condition() {
        assert!(PipelineError::Busy.to_string().contains("in flight"));
        assert!(PipelineError::Idle.to_string().contains("no job"));
        assert!(PipelineError::WorkerGone.to_string().contains("worker"));
    }

    #[test]
    fn max_threads_honours_the_env_override() {
        // `PLINIUS_THREADS` is process-global; this is the only test that mutates it.
        std::env::set_var(THREADS_ENV, "3");
        assert_eq!(max_threads(), 3);
        std::env::set_var(THREADS_ENV, "0"); // invalid: falls back to auto-detect
        assert!(max_threads() >= 1);
        std::env::set_var(THREADS_ENV, "not-a-number");
        assert!(max_threads() >= 1);
        std::env::set_var(THREADS_ENV, "4096"); // capped
        assert_eq!(max_threads(), 64);
        std::env::remove_var(THREADS_ENV);
        assert!(max_threads() >= 1);
    }
}
