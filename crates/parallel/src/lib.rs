//! # plinius-parallel
//!
//! Minimal fork/join helpers for the compute hot path, built on
//! [`std::thread::scope`]. The build environment has no crates.io access, so this crate
//! stands in for the small slice of `rayon` the workspace needs: splitting a mutable
//! buffer into disjoint chunks processed across threads (`par_chunks_mut`) and mapping a
//! slice of independent items to a result vector in item order (`par_map`).
//!
//! # Determinism contract
//!
//! Every helper partitions work by *item/chunk index*, never by thread id, and callers
//! receive each chunk or item exactly as the serial loop would. As long as the
//! per-item closure is itself deterministic, the overall result is **bit-identical for
//! every thread count** — the property the training loop's crash/resume tests rely on.
//! Threads may interleave side effects (e.g. charges to the shared simulation clock),
//! but commutative accounting (atomic additions) reaches the same totals regardless.
//!
//! The default worker count comes from [`max_threads`]: the `PLINIUS_THREADS`
//! environment variable when set, otherwise [`std::thread::available_parallelism`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::num::NonZeroUsize;

/// Environment variable overriding the worker-thread count (`1` forces serial
/// execution; useful to verify the bit-identical-across-thread-counts invariant).
pub const THREADS_ENV: &str = "PLINIUS_THREADS";

/// Upper bound on the worker count, to keep a misconfigured environment from spawning
/// an absurd number of scoped threads per kernel call.
const MAX_THREAD_CAP: usize = 64;

/// The worker-thread budget for parallel kernels: `PLINIUS_THREADS` when set to a
/// positive integer, otherwise the machine's available parallelism (both capped at 64).
pub fn max_threads() -> usize {
    if let Ok(raw) = std::env::var(THREADS_ENV) {
        if let Ok(n) = raw.trim().parse::<usize>() {
            if n >= 1 {
                return n.min(MAX_THREAD_CAP);
            }
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
        .min(MAX_THREAD_CAP)
}

/// Processes `data` in disjoint chunks of `chunk_len` elements across up to `threads`
/// scoped threads, calling `f(chunk_index, chunk)` for every chunk.
///
/// Chunk boundaries depend only on `chunk_len` (the last chunk may be shorter), and
/// chunks are distributed round-robin over the workers, so the set of `(index, chunk)`
/// invocations is independent of the thread count. With `threads <= 1` (or a single
/// chunk) everything runs on the calling thread.
///
/// # Panics
///
/// Panics if `chunk_len` is zero, and propagates panics from `f`.
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk_len: usize, threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(
        chunk_len > 0,
        "par_chunks_mut needs a non-zero chunk length"
    );
    if data.is_empty() {
        return;
    }
    let num_chunks = data.len().div_ceil(chunk_len);
    let threads = threads.clamp(1, num_chunks);
    if threads == 1 {
        for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(i, chunk);
        }
        return;
    }
    let mut assignments: Vec<Vec<(usize, &mut [T])>> = (0..threads).map(|_| Vec::new()).collect();
    for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
        assignments[i % threads].push((i, chunk));
    }
    let f = &f;
    std::thread::scope(|s| {
        let mut workers = assignments.into_iter();
        let local = workers.next().expect("at least one worker");
        for work in workers {
            s.spawn(move || {
                for (i, chunk) in work {
                    f(i, chunk);
                }
            });
        }
        // The calling thread takes the first share instead of idling at the join.
        for (i, chunk) in local {
            f(i, chunk);
        }
    });
}

/// Maps every item of `items` through `f(index, item)` across up to `threads` scoped
/// threads, returning the results **in item order**.
///
/// Items are distributed round-robin over the workers (so a few large items interleave
/// with small ones instead of all landing on one band); the output vector is identical
/// for every thread count.
///
/// # Panics
///
/// Propagates panics from `f`.
pub fn par_map<I, R, F>(items: &[I], threads: usize, f: F) -> Vec<R>
where
    I: Sync,
    R: Send,
    F: Fn(usize, &I) -> R + Sync,
{
    let n = items.len();
    let threads = threads.clamp(1, n.max(1));
    if threads == 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }
    let mut out: Vec<Option<R>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    let mut assignments: Vec<Vec<(usize, &mut Option<R>)>> =
        (0..threads).map(|_| Vec::new()).collect();
    for (i, slot) in out.iter_mut().enumerate() {
        assignments[i % threads].push((i, slot));
    }
    let f = &f;
    std::thread::scope(|s| {
        let mut workers = assignments.into_iter();
        let local = workers.next().expect("at least one worker");
        for work in workers {
            s.spawn(move || {
                for (i, slot) in work {
                    *slot = Some(f(i, &items[i]));
                }
            });
        }
        for (i, slot) in local {
            *slot = Some(f(i, &items[i]));
        }
    });
    out.into_iter()
        .map(|slot| slot.expect("every slot is filled by exactly one worker"))
        .collect()
}

/// Runs `f(index, item)` for every item of `items` across up to `threads` scoped
/// threads, mutating the items in place.
///
/// This is the in-place sibling of [`par_map`]: instead of collecting results it hands
/// each worker exclusive `&mut` access to its items (distributed round-robin by item
/// index, like every helper in this crate), so callers can pre-stage per-item output
/// buffers and avoid any allocation in the dispatch path when `threads <= 1`.
/// The set of `(index, &mut item)` invocations is independent of the thread count.
///
/// # Panics
///
/// Propagates panics from `f`.
pub fn par_for_each_mut<T, F>(items: &mut [T], threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    par_chunks_mut(items, 1, threads, |i, chunk| f(i, &mut chunk[0]));
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn par_chunks_mut_visits_every_chunk_once_with_correct_indices() {
        for threads in [1usize, 2, 3, 8] {
            let mut data: Vec<usize> = vec![0; 23];
            par_chunks_mut(&mut data, 5, threads, |idx, chunk| {
                for v in chunk.iter_mut() {
                    *v += idx + 1;
                }
            });
            let expected: Vec<usize> = (0..23).map(|i| i / 5 + 1).collect();
            assert_eq!(data, expected, "threads={threads}");
        }
    }

    #[test]
    fn par_chunks_mut_handles_empty_and_short_inputs() {
        let mut empty: Vec<u8> = Vec::new();
        par_chunks_mut(&mut empty, 4, 8, |_, _| panic!("no chunks expected"));
        let mut one = vec![7u8];
        let calls = AtomicUsize::new(0);
        par_chunks_mut(&mut one, 4, 8, |idx, chunk| {
            assert_eq!((idx, chunk.len()), (0, 1));
            calls.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(calls.load(Ordering::Relaxed), 1);
    }

    #[test]
    #[should_panic(expected = "non-zero chunk length")]
    fn par_chunks_mut_rejects_zero_chunk_len() {
        par_chunks_mut(&mut [0u8; 4], 0, 2, |_, _| {});
    }

    #[test]
    fn par_map_preserves_item_order_for_every_thread_count() {
        let items: Vec<u64> = (0..37).collect();
        let serial: Vec<u64> = items.iter().map(|v| v * v + 1).collect();
        for threads in [1usize, 2, 5, 16, 64] {
            let mapped = par_map(&items, threads, |i, v| {
                assert_eq!(items[i], *v);
                v * v + 1
            });
            assert_eq!(mapped, serial, "threads={threads}");
        }
    }

    #[test]
    fn par_for_each_mut_visits_every_item_in_place() {
        for threads in [1usize, 2, 3, 8] {
            let mut items: Vec<(usize, u64)> = (0..17).map(|i| (i, 0u64)).collect();
            par_for_each_mut(&mut items, threads, |idx, item| {
                assert_eq!(item.0, idx, "index must match item position");
                item.1 = (idx as u64) * 3 + 1;
            });
            let expected: Vec<(usize, u64)> = (0..17).map(|i| (i, (i as u64) * 3 + 1)).collect();
            assert_eq!(items, expected, "threads={threads}");
        }
        // Empty input is a no-op.
        let mut empty: Vec<u8> = Vec::new();
        par_for_each_mut(&mut empty, 4, |_, _| panic!("no items expected"));
    }

    #[test]
    fn par_map_on_empty_slice_returns_empty() {
        let out: Vec<u8> = par_map(&[] as &[u8], 4, |_, v| *v);
        assert!(out.is_empty());
    }

    #[test]
    fn max_threads_honours_the_env_override() {
        // `PLINIUS_THREADS` is process-global; this is the only test that mutates it.
        std::env::set_var(THREADS_ENV, "3");
        assert_eq!(max_threads(), 3);
        std::env::set_var(THREADS_ENV, "0"); // invalid: falls back to auto-detect
        assert!(max_threads() >= 1);
        std::env::set_var(THREADS_ENV, "not-a-number");
        assert!(max_threads() >= 1);
        std::env::set_var(THREADS_ENV, "4096"); // capped
        assert_eq!(max_threads(), 64);
        std::env::remove_var(THREADS_ENV);
        assert!(max_threads() >= 1);
    }
}
