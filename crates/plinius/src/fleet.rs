//! The multi-tenant fleet layer: N concurrent training jobs on one PM module.
//!
//! The paper assumes one training job owns the PM module end-to-end. This module
//! removes that assumption:
//!
//! * **Region sharding** — the Romulus root directory is carved into per-tenant
//!   root pairs ([`TenantId::model_root`] / [`TenantId::dataset_root`]), so every
//!   tenant's mirror ring and PM dataset hang off its own roots. Publishes write
//!   only the publishing tenant's allocations (both twin copies receive identical
//!   bytes), so a mid-publish crash of tenant A is recovered without ever touching
//!   the bytes reachable from tenant B's roots — crash isolation is structural,
//!   not cooperative.
//! * **Key sharding** — each tenant's model key is derived in the enclave layer
//!   ([`Enclave::tenant_sealing_key`](plinius_sgx::Enclave::tenant_sealing_key)):
//!   HMAC of the platform sealing secret over `measurement ‖ tenant`. Sealed
//!   epochs exported by one tenant fail AES-GCM authentication wholesale under any
//!   other tenant's key.
//! * **Admission + fair scheduling** — [`Fleet::run`] drives all admitted tenants
//!   with a least-virtual-time round-robin over the shared sim clock. Compute runs
//!   on per-tenant lanes (tenants overlap each other's compute), while persists
//!   serialize on the single modeled PM write lane, exactly like PR 5's overlap
//!   model generalised across tenants. Accounting is deterministic and
//!   thread-count invariant: every cost is taken from the sim-clock cost model,
//!   never from wall-clock time.
//! * **Tenant-aware VFS** — [`FleetVfs`] lifts the per-deployment [`MirrorVfs`]
//!   tree to `/tenant/{id}/epoch/{n}/...`, preserving the zero-copy sealed-read
//!   lane of the underlying VFS.

use crate::persist::PersistStats;
use crate::pmdata::PmDataset;
use crate::trainer::{PliniusBuilder, PliniusTrainer, TrainingSetup};
use crate::vfs::{MirrorVfs, Vfs, VfsEntry, VfsKind};
use crate::{PliniusContext, PliniusError, TenantId, MAX_TENANTS};
use sim_clock::latency::{LatencyHistogram, LatencySummary};

/// Environment variable selecting the default tenant count; unset, unparsable or
/// out-of-range values mean [`DEFAULT_TENANTS`].
pub const TENANTS_ENV: &str = "PLINIUS_TENANTS";

/// Default number of tenants admitted when [`TENANTS_ENV`] is unset.
pub const DEFAULT_TENANTS: usize = 1;

/// The tenant count selected by the `PLINIUS_TENANTS` environment variable, or
/// `default` when unset or out of range (`1..=MAX_TENANTS`).
pub fn tenants_from_env(default: usize) -> usize {
    std::env::var(TENANTS_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| (1..=MAX_TENANTS).contains(&n))
        .unwrap_or(default)
}

/// Fleet deployment parameters.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of tenants to admit (`1..=MAX_TENANTS`). Each runs the template
    /// setup's full training job on its own region of the shared PM module.
    pub tenants: usize,
    /// Admission-queue width: how many tenants train concurrently. Queued tenants
    /// are admitted (in tenant order) as running jobs complete. `0` means no cap —
    /// every tenant is admitted immediately.
    pub max_concurrent: usize,
}

impl Default for FleetConfig {
    /// The deployment-default fleet: `PLINIUS_TENANTS` tenants (falling back to
    /// [`DEFAULT_TENANTS`]), no admission cap — mirroring how `PLINIUS_RING`
    /// feeds the mirror's default ring depth.
    fn default() -> Self {
        FleetConfig {
            tenants: tenants_from_env(DEFAULT_TENANTS),
            max_concurrent: 0,
        }
    }
}

/// Outcome of one tenant's training job within a fleet run.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantReport {
    /// The tenant the job belonged to.
    pub tenant: TenantId,
    /// Loss of the job's last iteration.
    pub final_loss: f32,
    /// The model's iteration counter at job completion.
    pub final_iteration: u64,
    /// Virtual nanoseconds from admission to completion on the fleet's lanes
    /// (compute overlapped across tenants, persists serialized on the PM lane).
    pub latency_ns: u64,
    /// The tenant's persistence activity (snapshots, publishes, overlap waits...).
    pub persist_stats: PersistStats,
    /// Torn snapshot-read retries charged to the deployment while this tenant's
    /// job ran (deployment-wide counter sampled at completion).
    pub torn_read_retries: u64,
}

/// Aggregate outcome of a [`Fleet::run`].
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Per-tenant job reports, in tenant order.
    pub tenants: Vec<TenantReport>,
    /// Virtual nanoseconds from fleet start to the last job's completion under
    /// the overlap model (*not* the serial sum of the per-tenant costs).
    pub makespan_ns: u64,
    /// Serial simulated nanoseconds actually charged to the shared clock — the
    /// sum every job would cost back-to-back; `makespan_ns <= serial_ns`.
    pub serial_ns: u64,
    /// Virtual nanoseconds the PM write lane was busy with publishes.
    pub pm_lane_busy_ns: u64,
    /// Job-latency distribution across tenants.
    pub latency: LatencySummary,
}

impl FleetReport {
    /// Aggregate fleet-level persistence counters: every tenant's
    /// [`TenantReport::persist_stats`] merged.
    pub fn persist_stats(&self) -> PersistStats {
        self.tenants.iter().fold(PersistStats::default(), |acc, t| {
            acc.merged(t.persist_stats)
        })
    }

    /// Completed jobs per virtual hour of makespan.
    pub fn jobs_per_hour(&self) -> f64 {
        if self.makespan_ns == 0 {
            return 0.0;
        }
        self.tenants.len() as f64 * 3.6e12 / self.makespan_ns as f64
    }
}

/// One tenant's slot in the fleet: its scoped context, its trainer, and its
/// virtual-lane bookkeeping.
#[derive(Debug)]
struct TenantSlot {
    tenant: TenantId,
    trainer: PliniusTrainer,
    /// The tenant's virtual lane time (admission-relative bookkeeping uses
    /// `admitted_at`).
    lane_ns: u64,
    admitted_at: u64,
    admitted: bool,
    done: bool,
}

/// A fleet of N tenants sharing one PM module, one enclave and one sim clock.
///
/// [`Fleet::deploy`] carves the module: every tenant gets a scoped context
/// ([`PliniusContext::for_tenant`]), a derived sealing key provisioned under its
/// own key-store slot, its own PM copy of the training data, and its own trainer.
/// [`Fleet::run`] then schedules them to completion.
#[derive(Debug)]
pub struct Fleet {
    ctx: PliniusContext,
    slots: Vec<TenantSlot>,
    max_concurrent: usize,
}

impl Fleet {
    /// Deploys `config.tenants` training jobs from the `setup` template onto one
    /// fresh PM module. `setup.pm_bytes` is the *total* pool: size it for N
    /// datasets plus N mirror rings. Per-tenant batch seeds are decorrelated by
    /// mixing in the tenant id; everything else is shared verbatim.
    ///
    /// # Errors
    ///
    /// Returns [`PliniusError::InvalidConfig`] for a tenant count outside
    /// `1..=MAX_TENANTS`, or any context/dataset/trainer construction error.
    pub fn deploy(setup: TrainingSetup, config: FleetConfig) -> Result<Fleet, PliniusError> {
        if config.tenants == 0 || config.tenants > MAX_TENANTS {
            return Err(PliniusError::InvalidConfig(format!(
                "fleet tenant count {} out of range 1..={MAX_TENANTS}",
                config.tenants
            )));
        }
        let ctx = PliniusContext::create(setup.cost.clone(), setup.pm_bytes)?;
        let mut slots = Vec::with_capacity(config.tenants);
        for raw in 0..config.tenants as u64 {
            let tenant = TenantId::new(raw)?;
            let tctx = ctx.for_tenant(tenant);
            // The tenant's model key is its derived sealing key: bound to the
            // enclave measurement AND the tenant id, so sealed epochs are
            // cryptographically isolated between tenants.
            tctx.provision_key_directly(tctx.enclave().tenant_sealing_key(raw));
            PmDataset::load(&tctx, &setup.dataset)?;
            let mut tenant_setup = setup.clone();
            tenant_setup.trainer.seed = setup.trainer.seed.wrapping_add(raw.wrapping_mul(0x9e37));
            let trainer = PliniusBuilder::new(tenant_setup)
                .context(tctx)
                .tenant(tenant)
                .build()?;
            slots.push(TenantSlot {
                tenant,
                trainer,
                lane_ns: 0,
                admitted_at: 0,
                admitted: false,
                done: false,
            });
        }
        Ok(Fleet {
            ctx,
            slots,
            max_concurrent: config.max_concurrent,
        })
    }

    /// The shared deployment context (tenant 0 scope).
    pub fn context(&self) -> &PliniusContext {
        &self.ctx
    }

    /// The number of tenants deployed.
    pub fn tenants(&self) -> usize {
        self.slots.len()
    }

    /// A context scoped to tenant `raw` of this fleet.
    ///
    /// # Errors
    ///
    /// Returns [`PliniusError::InvalidConfig`] for an undeployed tenant.
    pub fn tenant_context(&self, raw: u64) -> Result<PliniusContext, PliniusError> {
        if raw >= self.slots.len() as u64 {
            return Err(PliniusError::InvalidConfig(format!(
                "tenant {raw} is not deployed in this fleet"
            )));
        }
        Ok(self.ctx.for_tenant(TenantId::new(raw)?))
    }

    /// The tenant-aware VFS over every deployed tenant's mirror:
    /// `/tenant/{id}/epoch/{n}/...`.
    pub fn vfs(&self) -> FleetVfs {
        let mut vfs = FleetVfs::new();
        for slot in &self.slots {
            if let Some(mirror) = slot.trainer.mirror_handle() {
                vfs.mount(MirrorVfs::new(slot.trainer.context(), &mirror));
            }
        }
        vfs
    }

    /// Runs every tenant's job to completion under the admission queue and the
    /// fair-sharing lane model, returning the aggregate report.
    ///
    /// Scheduling is a deterministic least-virtual-time round-robin: among
    /// admitted, unfinished tenants, the one with the smallest lane time steps
    /// next (ties break on tenant id). Each step's simulated cost is measured on
    /// the shared clock and split into compute (runs on the tenant's own lane —
    /// tenants overlap each other's compute) and persist (serializes on the
    /// single modeled PM write lane). The resulting makespan, per-job latencies
    /// and totals are pure functions of the cost model — identical for every
    /// `PLINIUS_THREADS` value and across repeated runs.
    ///
    /// # Errors
    ///
    /// Propagates the first training or persistence error.
    pub fn run(&mut self) -> Result<FleetReport, PliniusError> {
        let clock = self.ctx.clock();
        let serial_start = clock.now_ns();
        let cap = if self.max_concurrent == 0 {
            self.slots.len()
        } else {
            self.max_concurrent
        };
        // Admit the first `cap` tenants at virtual time zero.
        let mut admitted = 0usize;
        for slot in self.slots.iter_mut().take(cap) {
            slot.admitted = true;
            slot.admitted_at = 0;
            admitted += 1;
        }
        let mut pm_lane_free = 0u64;
        let mut pm_lane_busy = 0u64;
        let mut reports: Vec<Option<TenantReport>> = vec![None; self.slots.len()];
        let mut losses: Vec<f32> = vec![0.0; self.slots.len()];
        let mut remaining = self.slots.len();
        while remaining > 0 {
            // Least-virtual-time first; ties break on tenant id (stable order).
            let next = self
                .slots
                .iter()
                .enumerate()
                .filter(|(_, s)| s.admitted && !s.done)
                .min_by_key(|(i, s)| (s.lane_ns, *i))
                .map(|(i, _)| i)
                .expect("remaining > 0 implies an admitted unfinished tenant");
            let slot = &mut self.slots[next];
            let before = clock.now_ns();
            let loss = slot.trainer.step()?;
            let step_ns = clock.now_ns() - before;
            losses[next] = loss;
            let persist_ns = slot.trainer.last_persist_ns().min(step_ns);
            // Compute overlaps across tenants: it advances only this tenant's lane.
            slot.lane_ns += step_ns - persist_ns;
            if persist_ns > 0 {
                // Publishes serialize on the one modeled PM write lane.
                let start = slot.lane_ns.max(pm_lane_free);
                slot.lane_ns = start + persist_ns;
                pm_lane_free = slot.lane_ns;
                pm_lane_busy += persist_ns;
            }
            let mut finished_at = None;
            if slot.trainer.is_done() {
                let before = clock.now_ns();
                slot.trainer.drain()?;
                let drain_ns = clock.now_ns() - before;
                if drain_ns > 0 {
                    let start = slot.lane_ns.max(pm_lane_free);
                    slot.lane_ns = start + drain_ns;
                    pm_lane_free = slot.lane_ns;
                    pm_lane_busy += drain_ns;
                }
                slot.done = true;
                remaining -= 1;
                let completion = slot.lane_ns;
                reports[next] = Some(TenantReport {
                    tenant: slot.tenant,
                    final_loss: losses[next],
                    final_iteration: slot.trainer.iteration(),
                    latency_ns: completion - slot.admitted_at,
                    persist_stats: slot.trainer.persist_stats(),
                    torn_read_retries: slot.trainer.torn_read_retries(),
                });
                finished_at = Some(completion);
            }
            // Admit the next queued tenant; its lane starts where the freed
            // slot's job finished (the admission queue is work-conserving).
            if let Some(completion) = finished_at {
                if admitted < self.slots.len() {
                    let queued = &mut self.slots[admitted];
                    queued.admitted = true;
                    queued.admitted_at = completion;
                    queued.lane_ns = completion;
                    admitted += 1;
                }
            }
        }
        let mut latency = LatencyHistogram::new();
        let tenants: Vec<TenantReport> = reports
            .into_iter()
            .map(|r| r.expect("every tenant completed"))
            .collect();
        for t in &tenants {
            latency.record(t.latency_ns);
        }
        Ok(FleetReport {
            makespan_ns: self.slots.iter().map(|s| s.lane_ns).max().unwrap_or(0),
            serial_ns: clock.now_ns() - serial_start,
            pm_lane_busy_ns: pm_lane_busy,
            latency: latency.summary(),
            tenants,
        })
    }
}

/// The tenant-aware VFS: mounts each tenant's [`MirrorVfs`] under
/// `/tenant/{id}/` and delegates everything below that prefix, so the zero-copy
/// sealed-read lane of the per-tenant VFS is preserved (prefix stripping is
/// borrow-only).
#[derive(Debug, Clone, Default)]
pub struct FleetVfs {
    mounts: Vec<(TenantId, MirrorVfs)>,
}

fn no_such_path(path: &str) -> PliniusError {
    PliniusError::VfsPath(path.to_string())
}

impl FleetVfs {
    /// An empty fleet tree (just `/tenant/` with no mounts).
    pub fn new() -> Self {
        FleetVfs { mounts: Vec::new() }
    }

    /// Mounts a tenant's VFS at `/tenant/{id}/`; the id is taken from the VFS's
    /// context. Remounting a tenant replaces its previous mount.
    pub fn mount(&mut self, vfs: MirrorVfs) {
        let tenant = vfs.context().tenant();
        if let Some(entry) = self.mounts.iter_mut().find(|(t, _)| *t == tenant) {
            entry.1 = vfs;
        } else {
            self.mounts.push((tenant, vfs));
            self.mounts.sort_by_key(|(t, _)| *t);
        }
    }

    /// The mounted tenants, in ascending id order.
    pub fn mounted(&self) -> Vec<TenantId> {
        self.mounts.iter().map(|(t, _)| *t).collect()
    }

    /// Splits `/tenant/{id}/rest` into the tenant's mount and the delegated
    /// remainder (`""` addresses the mount root). Borrow-only: no allocation.
    fn delegate<'a>(&self, path: &'a str) -> Result<(&MirrorVfs, &'a str), PliniusError> {
        let p = path.strip_prefix('/').unwrap_or(path);
        let rest = p
            .strip_prefix("tenant/")
            .ok_or_else(|| no_such_path(path))?;
        let (id, tail) = match rest.split_once('/') {
            Some((id, tail)) => (id, tail),
            None => (rest.strip_suffix('/').unwrap_or(rest), ""),
        };
        let raw: u64 = id.parse().map_err(|_| no_such_path(path))?;
        let vfs = self
            .mounts
            .iter()
            .find(|(t, _)| t.raw() == raw)
            .map(|(_, v)| v)
            .ok_or_else(|| no_such_path(path))?;
        Ok((vfs, tail))
    }

    /// Whether `path` names the fleet root (`/`) or the `/tenant` directory.
    fn classify(path: &str) -> Option<FleetNode> {
        let p = path.strip_prefix('/').unwrap_or(path);
        let p = p.strip_suffix('/').unwrap_or(p);
        match p {
            "" => Some(FleetNode::Root),
            "tenant" => Some(FleetNode::TenantDir),
            _ => None,
        }
    }
}

enum FleetNode {
    Root,
    TenantDir,
}

impl Vfs for FleetVfs {
    fn list(&self, path: &str) -> Result<Vec<VfsEntry>, PliniusError> {
        match FleetVfs::classify(path) {
            Some(FleetNode::Root) => Ok(vec![VfsEntry {
                name: "tenant".into(),
                kind: VfsKind::Directory,
                len: 0,
            }]),
            Some(FleetNode::TenantDir) => Ok(self
                .mounts
                .iter()
                .map(|(t, _)| VfsEntry {
                    name: t.to_string(),
                    kind: VfsKind::Directory,
                    len: 0,
                })
                .collect()),
            None => {
                let (vfs, rest) = self.delegate(path)?;
                vfs.list(rest)
            }
        }
    }

    fn stat(&self, path: &str) -> Result<VfsEntry, PliniusError> {
        match FleetVfs::classify(path) {
            Some(FleetNode::Root) => Ok(VfsEntry {
                name: "/".into(),
                kind: VfsKind::Directory,
                len: 0,
            }),
            Some(FleetNode::TenantDir) => Ok(VfsEntry {
                name: "tenant".into(),
                kind: VfsKind::Directory,
                len: 0,
            }),
            None => {
                let (vfs, rest) = self.delegate(path)?;
                if rest.is_empty() {
                    let tenant = vfs.context().tenant();
                    return Ok(VfsEntry {
                        name: tenant.to_string(),
                        kind: VfsKind::Directory,
                        len: 0,
                    });
                }
                vfs.stat(rest)
            }
        }
    }

    fn read_into(&self, path: &str, out: &mut [u8]) -> Result<usize, PliniusError> {
        if FleetVfs::classify(path).is_some() {
            return Err(no_such_path(path));
        }
        let (vfs, rest) = self.delegate(path)?;
        vfs.read_into(rest, out)
    }

    fn read_link(&self, path: &str) -> Result<String, PliniusError> {
        if FleetVfs::classify(path).is_some() {
            return Err(no_such_path(path));
        }
        let (vfs, rest) = self.delegate(path)?;
        vfs.read_link(rest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::TrainingSetup;

    fn fleet_setup() -> TrainingSetup {
        let mut setup = TrainingSetup::small_test();
        setup.trainer.max_iterations = 6;
        setup.trainer.mirror_frequency = 2;
        setup.pm_bytes = 96 * 1024 * 1024;
        setup
    }

    #[test]
    fn tenants_from_env_parses_and_bounds() {
        // This test must not race others over the process env: use the raw parse
        // path via explicit values only when the variable is unset.
        if std::env::var(TENANTS_ENV).is_err() {
            assert_eq!(tenants_from_env(3), 3);
        } else {
            let n = tenants_from_env(3);
            assert!((1..=MAX_TENANTS).contains(&n));
        }
    }

    #[test]
    fn fleet_rejects_out_of_range_tenant_counts() {
        let err = Fleet::deploy(
            fleet_setup(),
            FleetConfig {
                tenants: 0,
                max_concurrent: 0,
            },
        )
        .unwrap_err();
        assert!(matches!(err, PliniusError::InvalidConfig(_)));
        let err = Fleet::deploy(
            fleet_setup(),
            FleetConfig {
                tenants: MAX_TENANTS + 1,
                max_concurrent: 0,
            },
        )
        .unwrap_err();
        assert!(matches!(err, PliniusError::InvalidConfig(_)));
    }

    #[test]
    fn fleet_runs_every_tenant_to_completion_with_overlap() {
        let mut fleet = Fleet::deploy(
            fleet_setup(),
            FleetConfig {
                tenants: 3,
                max_concurrent: 0,
            },
        )
        .unwrap();
        let report = fleet.run().unwrap();
        assert_eq!(report.tenants.len(), 3);
        for (i, t) in report.tenants.iter().enumerate() {
            assert_eq!(t.tenant.raw(), i as u64);
            assert_eq!(t.final_iteration, 6);
            assert!(t.final_loss.is_finite());
            assert_eq!(t.persist_stats.persists, 3);
            assert!(t.latency_ns > 0);
        }
        // Compute overlaps across tenants, so the fleet makespan is strictly
        // below the serial sum of the three jobs; the PM lane is the shared
        // bottleneck and its busy time is bounded by the makespan.
        assert!(report.makespan_ns < report.serial_ns);
        assert!(report.pm_lane_busy_ns <= report.makespan_ns);
        assert_eq!(report.latency.count, 3);
        assert!(report.jobs_per_hour() > 0.0);
        // Fleet-level aggregate merges every tenant's counters.
        assert_eq!(report.persist_stats().persists, 9);
    }

    #[test]
    fn fleet_accounting_is_deterministic() {
        let run = |tenants: usize| {
            let mut fleet = Fleet::deploy(
                fleet_setup(),
                FleetConfig {
                    tenants,
                    max_concurrent: 0,
                },
            )
            .unwrap();
            fleet.run().unwrap()
        };
        let a = run(2);
        let b = run(2);
        assert_eq!(a.makespan_ns, b.makespan_ns);
        assert_eq!(a.serial_ns, b.serial_ns);
        assert_eq!(a.latency, b.latency);
        for (ta, tb) in a.tenants.iter().zip(b.tenants.iter()) {
            assert_eq!(ta.latency_ns, tb.latency_ns);
            assert_eq!(ta.final_loss.to_bits(), tb.final_loss.to_bits());
        }
    }

    #[test]
    fn admission_queue_caps_concurrency_and_stays_work_conserving() {
        let mut capped = Fleet::deploy(
            fleet_setup(),
            FleetConfig {
                tenants: 3,
                max_concurrent: 1,
            },
        )
        .unwrap();
        let report = capped.run().unwrap();
        // With one admission slot the jobs run back-to-back on the virtual
        // lanes: each completion admits the next tenant at that instant.
        for pair in report.tenants.windows(2) {
            assert!(pair[1].latency_ns > 0);
        }
        let sum: u64 = report.tenants.iter().map(|t| t.latency_ns).sum();
        assert!(report.makespan_ns >= report.tenants.last().unwrap().latency_ns);
        assert!(sum >= report.makespan_ns);
    }

    #[test]
    fn fleet_vfs_lifts_the_tree_to_tenant_prefixes() {
        let mut fleet = Fleet::deploy(
            fleet_setup(),
            FleetConfig {
                tenants: 2,
                max_concurrent: 0,
            },
        )
        .unwrap();
        fleet.run().unwrap();
        let vfs = fleet.vfs();
        assert_eq!(vfs.mounted().len(), 2);
        let root = vfs.list("/").unwrap();
        assert_eq!(root.len(), 1);
        assert_eq!(root[0].name, "tenant");
        let tenants: Vec<String> = vfs
            .list("/tenant")
            .unwrap()
            .into_iter()
            .map(|e| e.name)
            .collect();
        assert_eq!(tenants, ["0", "1"]);
        // Delegation: the per-tenant tree appears under the prefix.
        assert_eq!(vfs.stat("/tenant/1").unwrap().kind, VfsKind::Directory);
        let head = vfs.read_link("/tenant/0/HEAD").unwrap();
        assert!(head.starts_with("epoch/"), "{head}");
        let epochs = vfs.list("/tenant/1/epoch").unwrap();
        assert!(!epochs.is_empty());
        let sealed = format!("/tenant/0/epoch/{}/layer0-tensor0.sealed", {
            let h = vfs.read_link("/tenant/0/HEAD").unwrap();
            h.strip_prefix("epoch/").unwrap().to_string()
        });
        let len = vfs.stat(&sealed).unwrap().len;
        let mut buf = vec![0u8; len];
        assert_eq!(vfs.read_into(&sealed, &mut buf).unwrap(), len);
        // Unknown tenants and the fleet root as a file are path errors.
        assert!(matches!(
            vfs.list("/tenant/9").unwrap_err(),
            PliniusError::VfsPath(_)
        ));
        assert!(vfs.read_into("/tenant", &mut buf).is_err());
        assert!(vfs.read_link("/").is_err());
    }
}
