//! # plinius
//!
//! The core contribution of the paper: a secure and persistent machine-learning training
//! framework that combines **Intel SGX enclaves** (for confidentiality and integrity of
//! models and training data) with **persistent memory** (for near-instantaneous failure
//! recovery). The key mechanism is *mirroring*: after every training iteration the
//! enclave model's parameters are encrypted inside the enclave and synchronised with an
//! encrypted mirror copy that lives in PM, managed through Romulus durable transactions;
//! after a crash the mirror (and the encrypted training data, also resident in PM) is
//! decrypted back into the enclave and training resumes where it left off.
//!
//! Module map (matching Fig. 4 of the paper):
//!
//! * [`mirror`] — the mirroring module: `alloc_mirror_model`, `mirror_out`, `mirror_in`
//!   (Algorithm 3), built on `sgx-romulus`;
//! * [`pmdata`] — the PM-data module: encrypted byte-addressable training data in PM;
//! * [`ssd`] — the baseline: encrypted checkpoints on secondary storage through ocalls;
//! * [`persist`] — the open persistence API: the object-safe [`ModelPersistence`] trait
//!   and its built-in backends (PM mirror, SSD checkpoint, hybrid tiered, no-op, plus a
//!   fault-injecting test wrapper);
//! * [`trainer`] — Algorithm 2 (train + persist loop), the fluent [`PliniusBuilder`],
//!   crash/resume orchestration, and the spot-instance training driver;
//! * [`workflow`] — the full Fig. 5 workflow: remote attestation, key provisioning,
//!   data import, training, inference.
//!
//! # Example
//!
//! ```
//! use plinius::{PliniusBuilder, PliniusContext, TrainingSetup};
//! use sim_clock::CostModel;
//!
//! // A tiny end-to-end run: 2-layer CNN, synthetic MNIST, mirroring every iteration.
//! let setup = TrainingSetup::small_test();
//! let report = plinius::workflow::run_full_workflow(&setup)?;
//! assert!(report.final_loss.is_finite());
//!
//! // Or drive training directly through the builder (local deployment).
//! let mut trainer = PliniusBuilder::new(TrainingSetup::small_test())
//!     .max_iterations(2)
//!     .build()?;
//! trainer.run()?;
//! # let _ = CostModel::default();
//! # let _ = PliniusContext::small_test(64 * 1024);
//! # Ok::<(), plinius::PliniusError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use plinius_crypto::{AesGcm, CryptoError, Key};
use plinius_darknet::DarknetError;
use plinius_pmem::{PmemError, PmemPool};
use plinius_romulus::{Flavor, Romulus, RomulusError};
use plinius_sgx::{AttestationService, DataOwner, Enclave, SgxError};
use plinius_storage::StorageError;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sim_clock::{ClockHandle, CostModel, SimClock, StatsHandle, StatsRegistry};
use std::error::Error;
use std::fmt;
use std::sync::Arc;

pub mod fleet;
pub mod mirror;
pub mod persist;
pub mod pmdata;
pub mod serve;
pub mod ssd;
pub mod trainer;
pub mod vfs;
pub mod workflow;

pub use fleet::{
    tenants_from_env, Fleet, FleetConfig, FleetReport, FleetVfs, TenantReport, DEFAULT_TENANTS,
    TENANTS_ENV,
};

pub use mirror::{
    ring_depth_from_env, MirrorInReport, MirrorModel, MirrorOutReport, PublishReport,
    SnapshotReport, DEFAULT_RING_DEPTH, RING_ENV,
};
pub use persist::{
    shared_ssd, FaultInjectingBackend, HybridTieredBackend, ModelPersistence, NoOpBackend,
    PersistStats, PersistenceBackend, PmMirrorBackend, SsdCheckpointBackend,
};
pub use pmdata::PmDataset;
pub use serve::{InferenceServer, ServeConfig, ServeReport, ServeSession};
pub use ssd::SsdCheckpointer;
pub use trainer::{
    spot_crash_schedule, train_with_crash_schedule, CrashRunReport, PipelineMode, PliniusBuilder,
    PliniusTrainer, TrainerConfig, TrainingReport, TrainingSetup,
};
pub use vfs::{EpochDiff, MirrorVfs, SealedEpoch, TensorDiff, Vfs, VfsEntry, VfsKind};
pub use workflow::{run_full_workflow, WorkflowReport};

// Crypto engine selection (`PLINIUS_CRYPTO={auto,scalar,reference}`), re-exported so
// deployments can pin the sealing engine without depending on `plinius-crypto`.
pub use plinius_crypto::{hw_available, selected_engine, EngineKind, EnginePolicy, CRYPTO_ENV};
pub use plinius_darknet::{
    avx2_available, avx512_available, fma_available, selected_gemm, GemmKind, GemmPolicy, GEMM_ENV,
};

/// Name under which the model encryption key is stored in the enclave's key store
/// (tenant 0; other tenants use [`tenant_key_name`]).
pub const MODEL_KEY_NAME: &str = "plinius-model-key";

/// The enclave key-store name for a tenant's model key. Tenant 0 keeps the historic
/// [`MODEL_KEY_NAME`] so single-tenant deployments are unchanged.
pub fn tenant_key_name(tenant: TenantId) -> String {
    if tenant.raw() == 0 {
        MODEL_KEY_NAME.to_string()
    } else {
        format!("{}-tenant{}", MODEL_KEY_NAME, tenant.raw())
    }
}

/// Identifies one tenant of a deployment. Each tenant owns a disjoint pair of
/// Romulus roots (its mirror model and its PM dataset), a tenant-scoped enclave
/// key-store slot, and — under the fleet layer — an independently derived sealing
/// key, so tenants are isolated both structurally (crash recovery) and
/// cryptographically (sealed epochs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct TenantId(u64);

/// The maximum number of tenants one PM module admits: each tenant consumes two of
/// the [`plinius_romulus::NUM_ROOTS`] Romulus root slots.
pub const MAX_TENANTS: usize = plinius_romulus::NUM_ROOTS / 2;

impl TenantId {
    /// The default single-tenant owner (tenant 0), used by every legacy entry point.
    pub const DEFAULT: TenantId = TenantId(0);

    /// Creates a tenant id.
    ///
    /// # Errors
    ///
    /// Returns [`PliniusError::InvalidConfig`] if `raw >= MAX_TENANTS` (the Romulus
    /// root directory has room for two roots per tenant).
    pub fn new(raw: u64) -> Result<Self, PliniusError> {
        if raw >= MAX_TENANTS as u64 {
            return Err(PliniusError::InvalidConfig(format!(
                "tenant id {raw} out of range (this PM module admits {MAX_TENANTS} tenants)"
            )));
        }
        Ok(TenantId(raw))
    }

    /// The raw tenant number.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// The Romulus root slot holding this tenant's mirror model list head.
    pub fn model_root(self) -> usize {
        self.0 as usize * 2
    }

    /// The Romulus root slot holding this tenant's PM dataset.
    pub fn dataset_root(self) -> usize {
        self.0 as usize * 2 + 1
    }
}

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Errors produced by the Plinius framework.
#[derive(Debug, Clone, PartialEq)]
pub enum PliniusError {
    /// An error from the cryptographic engine.
    Crypto(CryptoError),
    /// An error from the SGX enclave simulator.
    Sgx(SgxError),
    /// An error from the Romulus persistent transactional memory.
    Romulus(RomulusError),
    /// An error from the persistent-memory simulator.
    Pmem(PmemError),
    /// An error from the neural-network framework.
    Darknet(DarknetError),
    /// An error from the secondary-storage substrate.
    Storage(StorageError),
    /// The enclave does not hold the model encryption key (provision it first).
    KeyNotProvisioned,
    /// No mirror model exists in PM (nothing to restore).
    NoMirrorModel,
    /// The mirror exists but no epoch has been committed yet (the active slot holds
    /// uninitialised bytes until the first mirror-out flips to it), so there is
    /// nothing consistent to serve.
    NoCommittedEpoch,
    /// No training dataset has been loaded into PM.
    NoPmDataset,
    /// The persisted mirror is structurally incompatible with the enclave model.
    MirrorMismatch(String),
    /// The requested epoch is not (or no longer) held in the mirror's bounded ring:
    /// only the `ring_depth` newest committed epochs are retained.
    EpochNotRetained(u64),
    /// The path does not name an entry of the mirror's virtual filesystem.
    VfsPath(String),
    /// A trainer/workflow configuration value is out of its valid range.
    InvalidConfig(String),
    /// A deliberately injected persistence fault (testing only, see
    /// [`persist::FaultInjectingBackend`]).
    InjectedFault(String),
    /// The background publish pipeline failed (worker died or was misused).
    Pipeline(String),
}

impl fmt::Display for PliniusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PliniusError::Crypto(e) => write!(f, "crypto error: {e}"),
            PliniusError::Sgx(e) => write!(f, "sgx error: {e}"),
            PliniusError::Romulus(e) => write!(f, "romulus error: {e}"),
            PliniusError::Pmem(e) => write!(f, "persistent memory error: {e}"),
            PliniusError::Darknet(e) => write!(f, "model error: {e}"),
            PliniusError::Storage(e) => write!(f, "storage error: {e}"),
            PliniusError::KeyNotProvisioned => {
                write!(f, "model key has not been provisioned to the enclave")
            }
            PliniusError::NoMirrorModel => {
                write!(f, "no mirror model present in persistent memory")
            }
            PliniusError::NoCommittedEpoch => {
                write!(
                    f,
                    "the mirror has not committed any epoch yet (train first)"
                )
            }
            PliniusError::NoPmDataset => {
                write!(f, "no training dataset present in persistent memory")
            }
            PliniusError::MirrorMismatch(msg) => write!(f, "mirror model mismatch: {msg}"),
            PliniusError::EpochNotRetained(epoch) => {
                write!(
                    f,
                    "epoch {epoch} is not retained in the mirror's epoch ring"
                )
            }
            PliniusError::VfsPath(path) => {
                write!(f, "no such entry in the mirror VFS: {path}")
            }
            PliniusError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            PliniusError::InjectedFault(msg) => write!(f, "injected fault: {msg}"),
            PliniusError::Pipeline(msg) => write!(f, "publish pipeline error: {msg}"),
        }
    }
}

impl Error for PliniusError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PliniusError::Crypto(e) => Some(e),
            PliniusError::Sgx(e) => Some(e),
            PliniusError::Romulus(e) => Some(e),
            PliniusError::Pmem(e) => Some(e),
            PliniusError::Darknet(e) => Some(e),
            PliniusError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CryptoError> for PliniusError {
    fn from(e: CryptoError) -> Self {
        PliniusError::Crypto(e)
    }
}
impl From<SgxError> for PliniusError {
    fn from(e: SgxError) -> Self {
        PliniusError::Sgx(e)
    }
}
impl From<RomulusError> for PliniusError {
    fn from(e: RomulusError) -> Self {
        PliniusError::Romulus(e)
    }
}
impl From<PmemError> for PliniusError {
    fn from(e: PmemError) -> Self {
        PliniusError::Pmem(e)
    }
}
impl From<DarknetError> for PliniusError {
    fn from(e: DarknetError) -> Self {
        PliniusError::Darknet(e)
    }
}
impl From<StorageError> for PliniusError {
    fn from(e: StorageError) -> Self {
        PliniusError::Storage(e)
    }
}

/// Everything one Plinius deployment needs: the enclave, the Romulus engine over the PM
/// pool (running in the `sgx-romulus` flavour), and the shared clock/statistics.
///
/// Creating a context corresponds to Algorithm 1: the untrusted helper maps the PM file
/// into the address space and the enclave validates and initialises the persistent
/// regions. Re-opening a context over an existing pool runs Romulus recovery, which is
/// how Plinius resumes after a crash.
#[derive(Debug, Clone)]
pub struct PliniusContext {
    enclave: Enclave,
    romulus: Romulus,
    pool: PmemPool,
    cost: CostModel,
    tenant: TenantId,
    /// The tenant-scoped enclave key-store name, precomputed once so steady-state
    /// key lookups on the publish path never allocate.
    key_name: Arc<str>,
}

impl PliniusContext {
    /// Creates a fresh context: a new PM pool of `pm_bytes`, a new enclave, and a
    /// formatted Romulus instance, all wired to one simulation clock.
    ///
    /// # Errors
    ///
    /// Propagates pool-creation and Romulus-formatting errors.
    pub fn create(cost: CostModel, pm_bytes: usize) -> Result<Self, PliniusError> {
        Self::create_with_crypto(cost, pm_bytes, EnginePolicy::from_env())
    }

    /// [`PliniusContext::create`] with the AES-GCM engine policy pinned explicitly
    /// instead of read from `PLINIUS_CRYPTO` (see [`EnginePolicy`]).
    ///
    /// # Errors
    ///
    /// Propagates pool-creation and Romulus-formatting errors.
    pub fn create_with_crypto(
        cost: CostModel,
        pm_bytes: usize,
        crypto: EnginePolicy,
    ) -> Result<Self, PliniusError> {
        let clock = SimClock::new();
        let stats = StatsRegistry::new();
        let pool = PmemPool::builder(pm_bytes)
            .cost_model(cost.clone())
            .clock(Arc::clone(&clock))
            .stats(Arc::clone(&stats))
            .build()?;
        Self::open_with_crypto(pool, cost, crypto)
    }

    /// Opens a context over an existing PM pool (Algorithm 1 after a restart): a *new*
    /// enclave instance is created and Romulus recovery runs over the pool contents.
    ///
    /// # Errors
    ///
    /// Propagates Romulus recovery errors.
    pub fn open(pool: PmemPool, cost: CostModel) -> Result<Self, PliniusError> {
        Self::open_with_crypto(pool, cost, EnginePolicy::from_env())
    }

    /// [`PliniusContext::open`] with the AES-GCM engine policy pinned explicitly
    /// instead of read from `PLINIUS_CRYPTO`.
    ///
    /// # Errors
    ///
    /// Propagates Romulus recovery errors.
    pub fn open_with_crypto(
        pool: PmemPool,
        cost: CostModel,
        crypto: EnginePolicy,
    ) -> Result<Self, PliniusError> {
        let clock = pool.clock();
        let stats = pool.stats_registry();
        let enclave = Enclave::builder(b"plinius-enclave-v1".to_vec())
            .cost_model(cost.clone())
            .clock(clock)
            .stats(stats)
            .crypto_policy(crypto)
            .build();
        // The PM regions take up the pool minus the Romulus header; split evenly.
        let region = (pool.len() - 256) / 2;
        let romulus = Romulus::create(pool.clone(), region, Flavor::Sgx(enclave.clone()))?;
        Ok(PliniusContext {
            enclave,
            romulus,
            pool,
            cost,
            tenant: TenantId::DEFAULT,
            key_name: Arc::from(MODEL_KEY_NAME),
        })
    }

    /// A view of the same deployment scoped to `tenant`: shares the enclave, the
    /// Romulus engine, the PM pool, the clock and the statistics, but reads and
    /// writes only the tenant's own root pair and key-store slot.
    pub fn for_tenant(&self, tenant: TenantId) -> PliniusContext {
        let mut ctx = self.clone();
        ctx.tenant = tenant;
        ctx.key_name = Arc::from(tenant_key_name(tenant).as_str());
        ctx
    }

    /// The tenant this context is scoped to (tenant 0 unless derived with
    /// [`PliniusContext::for_tenant`]).
    pub fn tenant(&self) -> TenantId {
        self.tenant
    }

    /// The enclave key-store name of this context's model key.
    pub fn key_name(&self) -> &str {
        &self.key_name
    }

    /// The Romulus root slot of this tenant's mirror model.
    pub fn model_root(&self) -> usize {
        self.tenant.model_root()
    }

    /// The Romulus root slot of this tenant's PM dataset.
    pub fn dataset_root(&self) -> usize {
        self.tenant.dataset_root()
    }

    /// A small context suitable for unit tests and doc examples.
    pub fn small_test(pm_bytes: usize) -> Self {
        Self::create(CostModel::sgx_eml_pm(), pm_bytes).expect("test context")
    }

    /// The simulated enclave.
    pub fn enclave(&self) -> &Enclave {
        &self.enclave
    }

    /// The Romulus engine (sgx-romulus flavour).
    pub fn romulus(&self) -> &Romulus {
        &self.romulus
    }

    /// The underlying persistent-memory pool (kept to reopen the context after a crash).
    pub fn pool(&self) -> &PmemPool {
        &self.pool
    }

    /// The hardware cost model in effect.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// The shared simulation clock.
    pub fn clock(&self) -> ClockHandle {
        self.pool.clock()
    }

    /// The shared statistics registry.
    pub fn stats(&self) -> StatsHandle {
        self.pool.stats_registry()
    }

    /// Provisions the model key directly into the enclave key store. Tests and local
    /// runs use this; production deployments use
    /// [`PliniusContext::provision_key_via_attestation`].
    pub fn provision_key_directly(&self, key: Key) {
        self.enclave.store_key(&self.key_name, key);
    }

    /// Runs the Fig. 5 attestation workflow: the data owner verifies the enclave quote
    /// and, on success, sends the model key over the secure channel.
    ///
    /// # Errors
    ///
    /// Propagates attestation failures from the SGX layer.
    pub fn provision_key_via_attestation(
        &self,
        owner: &DataOwner,
        service: &AttestationService,
    ) -> Result<(), PliniusError> {
        owner
            .provision_key(service, &self.enclave, &self.key_name)
            .map_err(PliniusError::from)
    }

    /// The model encryption key held by the enclave.
    ///
    /// # Errors
    ///
    /// Returns [`PliniusError::KeyNotProvisioned`] if no key has been provisioned.
    pub fn key(&self) -> Result<Key, PliniusError> {
        self.enclave
            .key(&self.key_name)
            .ok_or(PliniusError::KeyNotProvisioned)
    }

    /// A warm AES-GCM context for this tenant's model key, served from the enclave's
    /// per-key cache ([`plinius_sgx::Enclave::gcm_for_key`]): the key schedule, GHASH
    /// tables and engine selection happen once per provisioned key, not per call.
    ///
    /// # Errors
    ///
    /// Returns [`PliniusError::KeyNotProvisioned`] if no key has been provisioned.
    pub fn gcm(&self) -> Result<Arc<AesGcm>, PliniusError> {
        self.enclave
            .gcm_for_key(&self.key_name)
            .ok_or(PliniusError::KeyNotProvisioned)
    }

    /// The name of the AES-GCM engine sealing runs on for this context (e.g.
    /// `"aesni+pclmul"`, `"scalar"`, `"reference"`), resolved from the enclave's
    /// crypto policy without requiring a provisioned key.
    pub fn engine_name(&self) -> &'static str {
        self.enclave.crypto_policy().select().name()
    }

    /// An RNG seeded from the enclave's `sgx_read_rand`, used to draw AES-GCM IVs.
    pub fn enclave_rng(&self) -> StdRng {
        let mut seed = [0u8; 8];
        self.enclave.read_rand(&mut seed);
        StdRng::seed_from_u64(u64::from_le_bytes(seed))
    }
}

/// Converts an `f32` slice to its little-endian byte representation (the form in which
/// parameters are encrypted and placed on PM).
pub fn f32s_to_bytes(values: &[f32]) -> Vec<u8> {
    let mut out = vec![0u8; values.len() * 4];
    f32s_to_bytes_into(values, &mut out);
    out
}

/// Writes the little-endian byte representation of `values` into `out` — the
/// allocation-free sibling of [`f32s_to_bytes`] used by the mirror's reusable
/// plaintext staging buffer.
///
/// # Panics
///
/// Panics unless `out.len() == values.len() * 4`.
pub fn f32s_to_bytes_into(values: &[f32], out: &mut [u8]) {
    assert_eq!(out.len(), values.len() * 4, "staging slice size mismatch");
    for (v, chunk) in values.iter().zip(out.chunks_exact_mut(4)) {
        chunk.copy_from_slice(&v.to_le_bytes());
    }
}

/// Inverse of [`f32s_to_bytes`].
///
/// # Errors
///
/// Returns [`PliniusError::MirrorMismatch`] if the byte length is not a multiple of 4.
pub fn bytes_to_f32s(bytes: &[u8]) -> Result<Vec<f32>, PliniusError> {
    if !bytes.len().is_multiple_of(4) {
        return Err(PliniusError::MirrorMismatch(format!(
            "tensor byte length {} is not a multiple of 4",
            bytes.len()
        )));
    }
    Ok(bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_creation_and_key_provisioning() {
        let ctx = PliniusContext::small_test(256 * 1024);
        assert!(matches!(
            ctx.key().unwrap_err(),
            PliniusError::KeyNotProvisioned
        ));
        let mut rng = StdRng::seed_from_u64(1);
        let key = Key::generate_128(&mut rng);
        ctx.provision_key_directly(key.clone());
        assert_eq!(ctx.key().unwrap().as_bytes(), key.as_bytes());
        assert_eq!(ctx.cost_model().profile, sim_clock::ServerProfile::SgxEmlPm);
    }

    #[test]
    fn attestation_based_provisioning_checks_measurement() {
        let ctx = PliniusContext::small_test(256 * 1024);
        let service = AttestationService::new(b"platform".to_vec());
        let mut rng = StdRng::seed_from_u64(2);
        let good_owner = DataOwner::new(Key::generate_128(&mut rng), ctx.enclave().measurement());
        ctx.provision_key_via_attestation(&good_owner, &service)
            .unwrap();
        assert!(ctx.key().is_ok());
        let bad_owner = DataOwner::new(Key::generate_128(&mut rng), [0u8; 32]);
        assert!(ctx
            .provision_key_via_attestation(&bad_owner, &service)
            .is_err());
    }

    #[test]
    fn reopening_a_pool_preserves_persistent_state() {
        let ctx = PliniusContext::small_test(256 * 1024);
        ctx.romulus()
            .transaction(|tx| {
                let p = tx.alloc(8)?;
                tx.write_u64(p, 77)?;
                tx.set_root(5, p)?;
                Ok(())
            })
            .unwrap();
        let pool = ctx.pool().clone();
        drop(ctx);
        let reopened = PliniusContext::open(pool, CostModel::sgx_eml_pm()).unwrap();
        let p = reopened.romulus().root(5).unwrap();
        assert_eq!(reopened.romulus().read_u64(p).unwrap(), 77);
    }

    #[test]
    fn f32_byte_round_trip() {
        let values = vec![0.0f32, -1.5, 3.25, f32::MAX];
        let bytes = f32s_to_bytes(&values);
        assert_eq!(bytes.len(), 16);
        assert_eq!(bytes_to_f32s(&bytes).unwrap(), values);
        assert!(bytes_to_f32s(&bytes[..7]).is_err());
    }

    #[test]
    fn error_conversions_and_display() {
        let err: PliniusError = CryptoError::AuthenticationFailed.into();
        assert!(err.to_string().contains("crypto"));
        let err: PliniusError = RomulusError::InjectedCrash.into();
        assert!(err.to_string().contains("romulus"));
        assert!(PliniusError::NoMirrorModel.to_string().contains("mirror"));
        assert!(PliniusError::KeyNotProvisioned.to_string().contains("key"));
    }
}
