//! The mirroring module (Fig. 4, Algorithm 3): encrypted mirror copies of the enclave
//! model in persistent memory.
//!
//! The mirror model is represented on PM as a linked list of persistent layer nodes (so
//! that layers can later be added or removed without relocating the whole model, as the
//! paper notes). Every trainable layer node carries pointers to the five encrypted
//! parameter buffers of that layer; every buffer is an AES-GCM sealed blob whose 12-byte
//! IV and 16-byte MAC account for the paper's 140 bytes of PM metadata per layer.
//!
//! A *mirror-out* (model save) encrypts the parameters inside the enclave and writes them
//! to the mirror within a single Romulus durable transaction, together with the iteration
//! counter; a crash therefore always leaves either the previous or the new model version.
//! A *mirror-in* (model restore) reads the encrypted buffers from PM into the enclave and
//! decrypts them into the enclave model.

use crate::{bytes_to_f32s, f32s_to_bytes_into, PliniusContext, PliniusError, MODEL_KEY_NAME};
use parking_lot::Mutex;
use plinius_crypto::{
    seal_into_with_threads, AesGcm, CryptoError, IvSequence, SealedView, IV_LEN, SEAL_OVERHEAD,
};
use plinius_darknet::Network;
use plinius_romulus::PmPtr;
use sim_clock::SimSpan;

/// Root-directory slot holding the mirror-model header.
pub const ROOT_MODEL: usize = 0;

/// Number of encrypted parameter buffers per mirrored layer.
const TENSORS_PER_LAYER: usize = plinius_darknet::PARAM_TENSORS_PER_LAYER;

/// Byte size of the persistent model header: `[iteration][num_layers][first_layer_ptr]`.
const HEADER_BYTES: usize = 24;

/// Byte size of one persistent layer node:
/// `[next_ptr][num_tensors]` + `TENSORS_PER_LAYER x [tensor_ptr][sealed_len]`.
const NODE_BYTES: usize = 16 + TENSORS_PER_LAYER * 16;

/// Report of one mirror-out (model save): the Fig. 7 "Save" breakdown.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MirrorOutReport {
    /// Simulated time spent encrypting parameters inside the enclave.
    pub encrypt: SimSpan,
    /// Simulated time spent writing the encrypted buffers to PM (durable transaction).
    pub write: SimSpan,
    /// Plaintext model bytes mirrored.
    pub model_bytes: usize,
    /// Bytes of encryption metadata (IV + MAC trailers) added on PM.
    pub metadata_bytes: usize,
}

impl MirrorOutReport {
    /// Total simulated save latency in milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.encrypt.millis() + self.write.millis()
    }
}

/// Report of one mirror-in (model restore): the Fig. 7 "Restore" breakdown.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MirrorInReport {
    /// Simulated time spent reading encrypted buffers from PM into the enclave.
    pub read: SimSpan,
    /// Simulated time spent decrypting inside the enclave.
    pub decrypt: SimSpan,
    /// Training iteration recovered from the mirror.
    pub iteration: u64,
    /// Plaintext model bytes restored.
    pub model_bytes: usize,
}

impl MirrorInReport {
    /// Total simulated restore latency in milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.read.millis() + self.decrypt.millis()
    }
}

/// Position of one parameter tensor inside the mirror's reusable staging buffers, plus
/// everything that is constant per tensor across iterations (the AAD in particular,
/// which the seed code re-`format!`ted for every tensor of every iteration).
#[derive(Debug, Clone)]
struct TensorSlot {
    /// Trainable-layer index this tensor belongs to.
    layer: usize,
    /// Byte offset of the plaintext in the staging buffer.
    plain_off: usize,
    /// Plaintext length in bytes.
    plain_len: usize,
    /// Byte offset of the sealed blob (ciphertext ‖ IV ‖ MAC) in the arena.
    sealed_off: usize,
    /// Sealed length in bytes (`plain_len + SEAL_OVERHEAD`).
    sealed_len: usize,
    /// Precomputed additional authenticated data (`layer{i}-tensor{j}`).
    aad: Vec<u8>,
}

/// Reusable cryptographic scratch of one mirror: everything the steady-state
/// mirror-out/mirror-in loop needs so that the encryption phase performs **no heap
/// allocation after warm-up** (with serial sealing; thread fan-out adds only the
/// O(#tensors) dispatch buffers).
struct MirrorScratch {
    /// Raw bytes of the key the cached GCM context was built for, to detect
    /// re-provisioning.
    key_bytes: Vec<u8>,
    /// Cached AES key schedule + GHASH tables (expensive to rebuild per tensor).
    gcm: AesGcm,
    /// Plaintext staging buffer: all tensors contiguous in slot order.
    plain: Vec<u8>,
    /// Sealed-blob arena: all sealed tensors contiguous in slot order.
    arena: Vec<u8>,
    /// Per-tensor IVs of the current sealing batch.
    ivs: Vec<[u8; IV_LEN]>,
}

/// Handle to the persistent mirror of one enclave model.
pub struct MirrorModel {
    header: PmPtr,
    layer_nodes: Vec<PmPtr>,
    /// Sealed length of every tensor of every layer, in layer order.
    sealed_lens: Vec<Vec<usize>>,
    /// Flat per-tensor layout (layer-major), fixed at allocate/open time.
    slots: Vec<TensorSlot>,
    /// Lazily built reusable scratch; `Mutex` keeps `mirror_out(&self)` callable from
    /// the existing persistence backends while the buffers are reused in place.
    scratch: Mutex<Option<MirrorScratch>>,
}

impl std::fmt::Debug for MirrorModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MirrorModel")
            .field("header", &self.header)
            .field("layers", &self.layer_nodes.len())
            .field("tensors", &self.slots.len())
            .finish()
    }
}

impl Clone for MirrorModel {
    fn clone(&self) -> Self {
        // The scratch is per-handle working memory, not state: a clone starts cold.
        MirrorModel {
            header: self.header,
            layer_nodes: self.layer_nodes.clone(),
            sealed_lens: self.sealed_lens.clone(),
            slots: self.slots.clone(),
            scratch: Mutex::new(None),
        }
    }
}

/// Fans a fallible per-slot operation out across threads: `buf` is carved into one
/// disjoint `&mut` slice per slot (sequential, sized by `len_of`) and `f(slot_index,
/// slice)` runs on up to `threads` workers. The first error surfaces in slot order.
/// Shared scaffolding of the seal (arena) and open (staging) phases.
fn par_slot_slices(
    slots: &[TensorSlot],
    buf: &mut [u8],
    len_of: impl Fn(&TensorSlot) -> usize,
    threads: usize,
    f: impl Fn(usize, &mut [u8]) -> Result<(), CryptoError> + Sync,
) -> Result<(), PliniusError> {
    struct SlotTask<'a> {
        idx: usize,
        out: &'a mut [u8],
        result: Result<(), CryptoError>,
    }
    let mut tasks: Vec<SlotTask<'_>> = Vec::with_capacity(slots.len());
    let mut rest: &mut [u8] = buf;
    for (idx, slot) in slots.iter().enumerate() {
        let (head, tail) = rest.split_at_mut(len_of(slot));
        tasks.push(SlotTask {
            idx,
            out: head,
            result: Ok(()),
        });
        rest = tail;
    }
    plinius_parallel::par_for_each_mut(&mut tasks, threads, |_, task| {
        task.result = f(task.idx, task.out);
    });
    for task in tasks {
        task.result?;
    }
    Ok(())
}

/// Builds the flat tensor layout (and precomputes every AAD) from the per-layer sealed
/// lengths.
fn build_slots(sealed_lens: &[Vec<usize>]) -> Result<Vec<TensorSlot>, PliniusError> {
    let mut slots = Vec::new();
    let (mut plain_off, mut sealed_off) = (0usize, 0usize);
    for (i, layer) in sealed_lens.iter().enumerate() {
        for (j, &sealed_len) in layer.iter().enumerate() {
            let plain_len = sealed_len.checked_sub(SEAL_OVERHEAD).ok_or_else(|| {
                PliniusError::MirrorMismatch(format!(
                    "sealed tensor length {sealed_len} is shorter than the {SEAL_OVERHEAD}-byte trailer"
                ))
            })?;
            slots.push(TensorSlot {
                layer: i,
                plain_off,
                plain_len,
                sealed_off,
                sealed_len,
                aad: format!("layer{i}-tensor{j}").into_bytes(),
            });
            plain_off += plain_len;
            sealed_off += sealed_len;
        }
    }
    Ok(slots)
}

impl MirrorModel {
    /// Whether a mirror model already exists in the context's PM pool.
    pub fn exists(ctx: &PliniusContext) -> bool {
        matches!(ctx.romulus().root(ROOT_MODEL), Ok(p) if !p.is_null())
    }

    /// Allocates the persistent mirror for `network` (Algorithm 3, `alloc_mirror_model`):
    /// one header, one node per trainable layer, and space for every encrypted tensor.
    /// All allocations happen in a single durable transaction.
    ///
    /// # Errors
    ///
    /// Propagates Romulus errors (e.g. out of persistent memory).
    pub fn allocate(ctx: &PliniusContext, network: &Network) -> Result<Self, PliniusError> {
        let layer_tensor_lens: Vec<Vec<usize>> = network
            .layers()
            .iter()
            .filter(|l| l.is_trainable())
            .map(|l| {
                l.params()
                    .iter()
                    .map(|p| p.data.len() * 4 + SEAL_OVERHEAD)
                    .collect()
            })
            .collect();
        let num_layers = layer_tensor_lens.len() as u64;
        let mut header = PmPtr::NULL;
        let mut layer_nodes = Vec::new();
        ctx.romulus().transaction(|tx| {
            header = tx.alloc(HEADER_BYTES)?;
            tx.write_u64(header, 0)?; // iteration
            tx.write_u64(header.add(8), num_layers)?;
            // Allocate nodes front to back, linking as we go.
            let mut nodes: Vec<PmPtr> = Vec::with_capacity(layer_tensor_lens.len());
            for tensor_lens in &layer_tensor_lens {
                let node = tx.alloc(NODE_BYTES)?;
                tx.write_u64(node, 0)?; // next (patched below)
                tx.write_u64(node.add(8), tensor_lens.len() as u64)?;
                for (j, sealed_len) in tensor_lens.iter().enumerate() {
                    let tensor = tx.alloc(*sealed_len)?;
                    tx.write_u64(node.add(16 + (j as u64) * 16), tensor.offset())?;
                    tx.write_u64(node.add(16 + (j as u64) * 16 + 8), *sealed_len as u64)?;
                }
                if let Some(prev) = nodes.last() {
                    tx.write_u64(*prev, node.offset())?;
                }
                nodes.push(node);
            }
            let first = nodes.first().map(|p| p.offset()).unwrap_or(0);
            tx.write_u64(header.add(16), first)?;
            tx.set_root(ROOT_MODEL, header)?;
            layer_nodes = nodes;
            Ok(())
        })?;
        let slots = build_slots(&layer_tensor_lens)?;
        Ok(MirrorModel {
            header,
            layer_nodes,
            sealed_lens: layer_tensor_lens,
            slots,
            scratch: Mutex::new(None),
        })
    }

    /// Opens an existing mirror (after a restart), walking the persistent linked list.
    ///
    /// # Errors
    ///
    /// Returns [`PliniusError::NoMirrorModel`] if no mirror exists.
    pub fn open(ctx: &PliniusContext) -> Result<Self, PliniusError> {
        let header = ctx.romulus().root(ROOT_MODEL)?;
        if header.is_null() {
            return Err(PliniusError::NoMirrorModel);
        }
        let rom = ctx.romulus();
        let num_layers = rom.read_u64(header.add(8))? as usize;
        let mut layer_nodes = Vec::with_capacity(num_layers);
        let mut sealed_lens = Vec::with_capacity(num_layers);
        let mut cursor = PmPtr::from_offset(rom.read_u64(header.add(16))?);
        while !cursor.is_null() {
            let num_tensors = rom.read_u64(cursor.add(8))? as usize;
            let mut lens = Vec::with_capacity(num_tensors);
            for j in 0..num_tensors {
                lens.push(rom.read_u64(cursor.add(16 + (j as u64) * 16 + 8))? as usize);
            }
            layer_nodes.push(cursor);
            sealed_lens.push(lens);
            cursor = PmPtr::from_offset(rom.read_u64(cursor)?);
        }
        if layer_nodes.len() != num_layers {
            return Err(PliniusError::MirrorMismatch(format!(
                "header declares {num_layers} layers but the list holds {}",
                layer_nodes.len()
            )));
        }
        let slots = build_slots(&sealed_lens)?;
        Ok(MirrorModel {
            header,
            layer_nodes,
            sealed_lens,
            slots,
            scratch: Mutex::new(None),
        })
    }

    /// Returns the warm scratch, (re)building it if absent or if the enclave's model
    /// key changed since the cached GCM context was derived. The key comparison
    /// borrows the stored key ([`plinius_sgx::Enclave::with_key`]) so the steady-state
    /// path clones nothing.
    fn ensure_scratch<'a>(
        &self,
        ctx: &PliniusContext,
        guard: &'a mut Option<MirrorScratch>,
    ) -> Result<&'a mut MirrorScratch, PliniusError> {
        let stale = match guard.as_ref() {
            Some(s) => !ctx
                .enclave()
                .with_key(MODEL_KEY_NAME, |k| k.as_bytes() == s.key_bytes.as_slice())
                .ok_or(PliniusError::KeyNotProvisioned)?,
            None => true,
        };
        if stale {
            let key = ctx.key()?;
            match guard.as_mut() {
                Some(s) => {
                    s.gcm = key.gcm();
                    s.key_bytes.clear();
                    s.key_bytes.extend_from_slice(key.as_bytes());
                }
                None => {
                    let plain_total = self.slots.iter().map(|s| s.plain_len).sum();
                    let sealed_total = self.slots.iter().map(|s| s.sealed_len).sum();
                    *guard = Some(MirrorScratch {
                        key_bytes: key.as_bytes().to_vec(),
                        gcm: key.gcm(),
                        plain: vec![0u8; plain_total],
                        arena: vec![0u8; sealed_total],
                        ivs: vec![[0u8; IV_LEN]; self.slots.len()],
                    });
                }
            }
        }
        Ok(guard.as_mut().expect("scratch built above"))
    }

    /// Number of mirrored (trainable) layers.
    pub fn num_layers(&self) -> usize {
        self.layer_nodes.len()
    }

    /// Bytes of per-layer encryption metadata stored on PM (28 B per tensor, 140 B per
    /// layer with five tensors), as accounted in §VI of the paper.
    pub fn metadata_bytes(&self) -> usize {
        self.sealed_lens
            .iter()
            .map(|l| l.len() * SEAL_OVERHEAD)
            .sum()
    }

    /// The iteration counter currently stored in the mirror header.
    ///
    /// # Errors
    ///
    /// Propagates Romulus read errors.
    pub fn iteration(&self, ctx: &PliniusContext) -> Result<u64, PliniusError> {
        Ok(ctx.romulus().read_u64(self.header)?)
    }

    /// Mirror-out (Algorithm 3, `mirror_out`): encrypts the enclave model's parameters
    /// and synchronises the PM mirror within one durable transaction, recording the
    /// iteration counter.
    ///
    /// The per-tensor AES-GCM sealing of independent tensors runs across scoped threads
    /// (worker count from [`plinius_parallel::max_threads`], override with
    /// `PLINIUS_THREADS`); the sealed bytes and the [`MirrorOutReport`] — including its
    /// simulated-time spans — are identical for every thread count.
    ///
    /// # Errors
    ///
    /// Returns [`PliniusError::KeyNotProvisioned`] without a model key,
    /// [`PliniusError::MirrorMismatch`] if the model shape changed, or Romulus errors.
    pub fn mirror_out(
        &self,
        ctx: &PliniusContext,
        network: &Network,
    ) -> Result<MirrorOutReport, PliniusError> {
        self.mirror_out_with_threads(ctx, network, plinius_parallel::max_threads())
    }

    /// [`MirrorModel::mirror_out`] with an explicit sealing-thread count (1 forces the
    /// serial path). Exposed for benchmarks and the determinism tests; the result is
    /// bit-identical for every `threads` value.
    ///
    /// # Errors
    ///
    /// Same as [`MirrorModel::mirror_out`].
    pub fn mirror_out_with_threads(
        &self,
        ctx: &PliniusContext,
        network: &Network,
        threads: usize,
    ) -> Result<MirrorOutReport, PliniusError> {
        let clock = ctx.clock();
        self.check_model_shape(network)?;
        let mut guard = self.scratch.lock();
        let scratch = self.ensure_scratch(ctx, &mut guard)?;
        // The IV sequence is seeded from one `sgx_read_rand` draw (exactly as many as
        // the serial path used) and hands every tensor its IV by *slot index*, so the
        // sealed bytes do not depend on the thread schedule.
        let ivs = IvSequence::from_rng(&mut ctx.enclave_rng());
        for (idx, iv) in scratch.ivs.iter_mut().enumerate() {
            *iv = ivs.iv(idx as u64);
        }
        let mut model_bytes = 0usize;
        // Phase 1: in-enclave encryption of every parameter tensor, staged through and
        // sealed into the reusable scratch — no heap allocation in the steady state.
        let (seal_result, encrypt) = SimSpan::record(&clock, || {
            // SimSpan accounting stays deterministic: each tensor's modeled crypto cost
            // is charged serially in slot order (same per-tensor charges, hence the
            // same simulated-time total as the serial path), then the real sealing work
            // fans out across threads.
            for slot in &self.slots {
                model_bytes += slot.plain_len;
                ctx.enclave().charge_crypto(slot.plain_len as u64);
            }
            Self::stage_and_seal(&self.slots, scratch, network, threads)
        });
        seal_result?;
        // Phase 2: durable write of the encrypted buffers + iteration counter to PM,
        // straight from the arena.
        let arena = &scratch.arena;
        let mut slots = self.slots.iter();
        let (write_result, write) = SimSpan::record(&clock, || {
            ctx.romulus().transaction(|tx| {
                tx.write_u64(self.header, network.iteration())?;
                for (node_idx, node) in self.layer_nodes.iter().enumerate() {
                    for j in 0..self.sealed_lens[node_idx].len() {
                        let slot = slots.next().expect("one slot per tensor");
                        let tensor_ptr =
                            PmPtr::from_offset(tx.read_u64(node.add(16 + (j as u64) * 16))?);
                        tx.write_bytes(
                            tensor_ptr,
                            &arena[slot.sealed_off..slot.sealed_off + slot.sealed_len],
                        )?;
                    }
                }
                Ok(())
            })
        });
        write_result?;
        Ok(MirrorOutReport {
            encrypt,
            write,
            model_bytes,
            metadata_bytes: self.metadata_bytes(),
        })
    }

    /// Verifies that `network`'s trainable layers and tensor sizes match this mirror's
    /// fixed layout (the staging buffers are sized at allocate/open time).
    fn check_model_shape(&self, network: &Network) -> Result<(), PliniusError> {
        let mut trainable = 0usize;
        let mut slot_iter = self.slots.iter();
        for layer in network.layers().iter() {
            let Some(views) = layer.param_views() else {
                continue;
            };
            trainable += 1;
            for view in views {
                match slot_iter.next() {
                    Some(slot) if slot.plain_len == view.data.len() * 4 => {}
                    Some(slot) => {
                        return Err(PliniusError::MirrorMismatch(format!(
                            "layer {}: tensor of {} bytes does not fit mirror slot of {} bytes",
                            slot.layer,
                            view.data.len() * 4,
                            slot.plain_len
                        )))
                    }
                    None => {
                        return Err(PliniusError::MirrorMismatch(format!(
                            "enclave model has {trainable} or more trainable layers, mirror has {}",
                            self.layer_nodes.len()
                        )))
                    }
                }
            }
        }
        if trainable != self.layer_nodes.len() {
            return Err(PliniusError::MirrorMismatch(format!(
                "enclave model has {trainable} trainable layers, mirror has {}",
                self.layer_nodes.len()
            )));
        }
        Ok(())
    }

    /// Phase-1 worker: stages every tensor's plaintext into the scratch and seals it
    /// into the arena.
    ///
    /// * `threads <= 1`: fully serial, zero heap allocations after warm-up.
    /// * many tensors: fan out across tensors (each tensor sealed serially on one
    ///   worker) — the layout mirrors the seed's per-tensor parallelism.
    /// * few large tensors: seal serially in slot order but fan the CTR keystream of
    ///   each tensor out across threads (chunked at counter boundaries).
    ///
    /// All three produce bit-identical sealed bytes: the ciphertext of a tensor is a
    /// pure function of `(key, IV, AAD, plaintext)` regardless of chunking.
    fn stage_and_seal(
        slots: &[TensorSlot],
        scratch: &mut MirrorScratch,
        network: &Network,
        threads: usize,
    ) -> Result<(), PliniusError> {
        let MirrorScratch {
            gcm,
            plain,
            arena,
            ivs,
            ..
        } = scratch;
        let mut slot_iter = slots.iter();
        for layer in network.layers().iter() {
            let Some(views) = layer.param_views() else {
                continue;
            };
            for view in views {
                let slot = slot_iter.next().expect("shape checked");
                f32s_to_bytes_into(
                    view.data,
                    &mut plain[slot.plain_off..slot.plain_off + slot.plain_len],
                );
            }
        }
        let threads = threads.max(1);
        if threads > 1 && slots.len() >= 2 * threads {
            // Many tensors: one worker per tensor, disjoint arena slices.
            let plain = &*plain;
            par_slot_slices(
                slots,
                arena,
                |s| s.sealed_len,
                threads,
                |idx, out| {
                    let slot = &slots[idx];
                    seal_into_with_threads(
                        gcm,
                        &plain[slot.plain_off..slot.plain_off + slot.plain_len],
                        &slot.aad,
                        &ivs[idx],
                        out,
                        1,
                    )
                },
            )?;
        } else {
            // Serial over tensors; intra-tensor CTR fan-out when threads are offered.
            for (idx, slot) in slots.iter().enumerate() {
                seal_into_with_threads(
                    gcm,
                    &plain[slot.plain_off..slot.plain_off + slot.plain_len],
                    &slot.aad,
                    &ivs[idx],
                    &mut arena[slot.sealed_off..slot.sealed_off + slot.sealed_len],
                    threads,
                )?;
            }
        }
        Ok(())
    }

    /// Mirror-in (Algorithm 3, `mirror_in`): reads the encrypted mirror from PM into the
    /// enclave, decrypts it and installs the parameters into the enclave model, restoring
    /// the iteration counter.
    ///
    /// # Errors
    ///
    /// Returns [`PliniusError::KeyNotProvisioned`] without a model key, authentication
    /// failures if the mirror was tampered with, or a mismatch error if the model shape
    /// differs.
    pub fn mirror_in(
        &self,
        ctx: &PliniusContext,
        network: &mut Network,
    ) -> Result<MirrorInReport, PliniusError> {
        let clock = ctx.clock();
        let rom = ctx.romulus();
        let mut guard = self.scratch.lock();
        let scratch = self.ensure_scratch(ctx, &mut guard)?;
        // Phase 1: read encrypted buffers from PM straight into the reusable arena —
        // no per-tensor vectors, no blob clones.
        let (read_out, read) = SimSpan::record(&clock, || -> Result<u64, PliniusError> {
            let iteration = rom.read_u64(self.header)?;
            let mut slot_iter = self.slots.iter();
            for (node_idx, node) in self.layer_nodes.iter().enumerate() {
                for j in 0..self.sealed_lens[node_idx].len() {
                    let slot = slot_iter.next().expect("one slot per tensor");
                    let ptr = PmPtr::from_offset(rom.read_u64(node.add(16 + (j as u64) * 16))?);
                    rom.read_bytes_into(
                        ptr,
                        &mut scratch.arena[slot.sealed_off..slot.sealed_off + slot.sealed_len],
                    )?;
                }
            }
            Ok(iteration)
        });
        let iteration = read_out?;
        // Phase 2: in-enclave decryption (across threads — each tensor is an
        // independent AES-GCM open on a borrowed [`SealedView`]) and serial
        // installation into the enclave model.
        let (decrypt_result, decrypt) =
            SimSpan::record(&clock, || -> Result<usize, PliniusError> {
                // Charge the modeled crypto cost serially in slot order so the
                // simulated-time total matches the serial path for every thread count.
                for slot in &self.slots {
                    ctx.enclave().charge_crypto(slot.sealed_len as u64);
                }
                let threads = plinius_parallel::max_threads();
                Self::open_arena(&self.slots, scratch, threads)?;
                // Install layer by layer in mirror order, surfacing errors exactly as
                // the serial loop would (layer 0's failures before layer 1's).
                let mut slot_iter = self.slots.iter();
                let mut model_bytes = 0usize;
                let mut node_idx = 0usize;
                for layer in network.layers_mut().iter_mut() {
                    if !layer.is_trainable() {
                        continue;
                    }
                    if node_idx >= self.layer_nodes.len() {
                        return Err(PliniusError::MirrorMismatch(
                            "enclave model has more trainable layers than the mirror".into(),
                        ));
                    }
                    let mut tensors = Vec::with_capacity(TENSORS_PER_LAYER);
                    for _ in 0..self.sealed_lens[node_idx].len() {
                        let slot = slot_iter.next().expect("one slot per tensor");
                        let tensor = bytes_to_f32s(
                            &scratch.plain[slot.plain_off..slot.plain_off + slot.plain_len],
                        )?;
                        model_bytes += tensor.len() * 4;
                        tensors.push(tensor);
                    }
                    let expected: Vec<usize> =
                        layer.params().iter().map(|p| p.data.len()).collect();
                    let got: Vec<usize> = tensors.iter().map(|t| t.len()).collect();
                    if expected != got {
                        return Err(PliniusError::MirrorMismatch(format!(
                        "layer {node_idx}: expected tensor sizes {expected:?}, mirror holds {got:?}"
                    )));
                    }
                    layer.set_params(&tensors);
                    node_idx += 1;
                }
                if node_idx != self.layer_nodes.len() {
                    return Err(PliniusError::MirrorMismatch(
                        "mirror holds more layers than the enclave model".into(),
                    ));
                }
                Ok(model_bytes)
            });
        let model_bytes = decrypt_result?;
        network.set_iteration(iteration);
        Ok(MirrorInReport {
            read,
            decrypt,
            iteration,
            model_bytes,
        })
    }

    /// Phase-2 worker of mirror-in: authenticates and decrypts every sealed tensor of
    /// the arena into the plaintext staging buffer, via borrowed [`SealedView`]s (no
    /// blob copies). Errors surface in slot order. Mirrors the thread strategy of
    /// [`MirrorModel::stage_and_seal`]; the plaintext is bit-identical for every
    /// thread count.
    fn open_arena(
        slots: &[TensorSlot],
        scratch: &mut MirrorScratch,
        threads: usize,
    ) -> Result<(), PliniusError> {
        let MirrorScratch {
            gcm, plain, arena, ..
        } = scratch;
        let threads = threads.max(1);
        if threads > 1 && slots.len() >= 2 * threads {
            let arena = &*arena;
            par_slot_slices(
                slots,
                plain,
                |s| s.plain_len,
                threads,
                |idx, out| {
                    let slot = &slots[idx];
                    SealedView::parse(&arena[slot.sealed_off..slot.sealed_off + slot.sealed_len])
                        .and_then(|view| view.open_into(gcm, &slot.aad, out))
                },
            )?;
        } else {
            for slot in slots.iter() {
                SealedView::parse(&arena[slot.sealed_off..slot.sealed_off + slot.sealed_len])?
                    .open_into_with_threads(
                        gcm,
                        &slot.aad,
                        &mut plain[slot.plain_off..slot.plain_off + slot.plain_len],
                        threads,
                    )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::f32s_to_bytes;
    use plinius_crypto::{Key, SealedBuffer};
    use plinius_darknet::config::{build_network, mnist_cnn_config};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn context_with_key(pm_bytes: usize) -> PliniusContext {
        let ctx = PliniusContext::small_test(pm_bytes);
        let mut rng = StdRng::seed_from_u64(99);
        ctx.provision_key_directly(Key::generate_128(&mut rng));
        ctx
    }

    fn small_network(seed: u64) -> Network {
        let mut rng = StdRng::seed_from_u64(seed);
        build_network(&mnist_cnn_config(2, 4, 4), &mut rng).unwrap()
    }

    fn snapshot(net: &Network) -> Vec<Vec<f32>> {
        net.layers()
            .iter()
            .filter(|l| l.is_trainable())
            .flat_map(|l| {
                l.params()
                    .iter()
                    .map(|p| p.data.to_vec())
                    .collect::<Vec<_>>()
            })
            .collect()
    }

    #[test]
    fn allocate_mirror_out_mirror_in_round_trip() {
        let ctx = context_with_key(8 * 1024 * 1024);
        let mut net = small_network(1);
        net.set_iteration(42);
        assert!(!MirrorModel::exists(&ctx));
        let mirror = MirrorModel::allocate(&ctx, &net).unwrap();
        assert!(MirrorModel::exists(&ctx));
        let out = mirror.mirror_out(&ctx, &net).unwrap();
        assert!(out.model_bytes > 0);
        assert!(out.total_ms() > 0.0);
        // The (possibly thread-parallel) sealing reports exactly the plaintext model
        // size and the fixed 28 B/tensor metadata overhead.
        assert_eq!(out.model_bytes, net.model_bytes());
        assert_eq!(out.metadata_bytes, mirror.metadata_bytes());
        // Restore into a differently initialised network: parameters must match exactly.
        let mut other = small_network(2);
        assert_ne!(snapshot(&net), snapshot(&other));
        let report = mirror.mirror_in(&ctx, &mut other).unwrap();
        assert_eq!(report.iteration, 42);
        assert_eq!(other.iteration(), 42);
        assert_eq!(snapshot(&net), snapshot(&other));
        assert_eq!(report.model_bytes, out.model_bytes);
    }

    /// Reads every sealed tensor blob back out of PM, in layer/tensor order.
    fn sealed_tensor_bytes(ctx: &PliniusContext, mirror: &MirrorModel) -> Vec<Vec<Vec<u8>>> {
        let rom = ctx.romulus();
        mirror
            .layer_nodes
            .iter()
            .enumerate()
            .map(|(li, node)| {
                mirror.sealed_lens[li]
                    .iter()
                    .enumerate()
                    .map(|(j, len)| {
                        let ptr = PmPtr::from_offset(
                            rom.read_u64(node.add(16 + (j as u64) * 16)).unwrap(),
                        );
                        rom.read_bytes(ptr, *len).unwrap()
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn parallel_sealing_is_bit_identical_across_thread_counts() {
        // Two identical deployments (same pool size, same enclave RNG seed, same key,
        // same model) sealed with different thread counts must leave byte-identical
        // ciphertext+IV+MAC on PM and report identical simulated-time spans — the
        // SimSpan accounting reduces per-tensor work to the serial path's totals.
        let run = |threads: usize| {
            let ctx = context_with_key(8 * 1024 * 1024);
            let mut net = small_network(12);
            net.set_iteration(5);
            let mirror = MirrorModel::allocate(&ctx, &net).unwrap();
            let report = mirror.mirror_out_with_threads(&ctx, &net, threads).unwrap();
            (sealed_tensor_bytes(&ctx, &mirror), report)
        };
        let (bytes_serial, report_serial) = run(1);
        let (bytes_par, report_par) = run(4);
        assert_eq!(bytes_serial, bytes_par);
        assert_eq!(report_serial, report_par);
        // And the parallel-sealed image restores exactly (round-trip through the
        // parallel decrypt path as well).
        let ctx = context_with_key(8 * 1024 * 1024);
        let mut net = small_network(12);
        net.set_iteration(5);
        let mirror = MirrorModel::allocate(&ctx, &net).unwrap();
        mirror.mirror_out_with_threads(&ctx, &net, 4).unwrap();
        let mut restored = small_network(13);
        let report = mirror.mirror_in(&ctx, &mut restored).unwrap();
        assert_eq!(report.iteration, 5);
        assert_eq!(snapshot(&restored), snapshot(&net));
    }

    /// Pins the on-PM bytes to the seed's per-tensor formula: every sealed tensor must
    /// equal `SealedBuffer::seal_with_aad_and_iv(key, le_bytes(tensor),
    /// "layer{i}-tensor{j}", IvSequence(batch_seed).iv(flat_index))` — i.e. the
    /// scratch/arena rewrite changed no ciphertext, IV or MAC byte.
    #[test]
    fn mirror_out_bytes_match_the_per_tensor_seal_formula() {
        let (ctx, mut net) = (context_with_key(8 * 1024 * 1024), small_network(21));
        net.set_iteration(3);
        let mirror = MirrorModel::allocate(&ctx, &net).unwrap();
        mirror.mirror_out(&ctx, &net).unwrap();
        let got = sealed_tensor_bytes(&ctx, &mirror);
        // Twin deployment: identical pool size, enclave RNG stream and key, so the IV
        // batch seed drawn below is the one the mirror-out above used.
        let (ctx2, net2) = (context_with_key(8 * 1024 * 1024), small_network(21));
        let _twin = MirrorModel::allocate(&ctx2, &net2).unwrap();
        let key = ctx2.key().unwrap();
        let ivs = IvSequence::from_rng(&mut ctx2.enclave_rng());
        let mut flat = 0u64;
        let mut expected: Vec<Vec<Vec<u8>>> = Vec::new();
        for (i, layer) in net2
            .layers()
            .iter()
            .filter(|l| l.is_trainable())
            .enumerate()
        {
            let mut blobs = Vec::new();
            for (j, param) in layer.params().iter().enumerate() {
                let aad = format!("layer{i}-tensor{j}");
                blobs.push(
                    SealedBuffer::seal_with_aad_and_iv(
                        &key,
                        &f32s_to_bytes(param.data),
                        aad.as_bytes(),
                        &ivs.iv(flat),
                    )
                    .unwrap()
                    .into_bytes(),
                );
                flat += 1;
            }
            expected.push(blobs);
        }
        assert_eq!(got, expected);
    }

    #[test]
    fn metadata_overhead_is_140_bytes_per_layer() {
        let ctx = context_with_key(8 * 1024 * 1024);
        let net = small_network(3);
        let mirror = MirrorModel::allocate(&ctx, &net).unwrap();
        assert_eq!(mirror.metadata_bytes(), mirror.num_layers() * 140);
    }

    #[test]
    fn mirror_survives_context_reopen() {
        let ctx = context_with_key(8 * 1024 * 1024);
        let mut net = small_network(4);
        net.set_iteration(7);
        let mirror = MirrorModel::allocate(&ctx, &net).unwrap();
        mirror.mirror_out(&ctx, &net).unwrap();
        let key = ctx.key().unwrap();
        let pool = ctx.pool().clone();
        drop((ctx, mirror));
        // "Restart": new enclave over the same pool, key re-provisioned via attestation
        // (provisioned directly here).
        let ctx2 = PliniusContext::open(pool, sim_clock::CostModel::sgx_eml_pm()).unwrap();
        ctx2.provision_key_directly(key);
        let mirror2 = MirrorModel::open(&ctx2).unwrap();
        let mut restored = small_network(5);
        let report = mirror2.mirror_in(&ctx2, &mut restored).unwrap();
        assert_eq!(report.iteration, 7);
        assert_eq!(snapshot(&restored), snapshot(&small_network(4)));
    }

    #[test]
    fn wrong_key_fails_authentication() {
        let ctx = context_with_key(8 * 1024 * 1024);
        let net = small_network(6);
        let mirror = MirrorModel::allocate(&ctx, &net).unwrap();
        mirror.mirror_out(&ctx, &net).unwrap();
        let mut rng = StdRng::seed_from_u64(1234);
        ctx.provision_key_directly(Key::generate_128(&mut rng));
        let mut other = small_network(7);
        assert!(matches!(
            mirror.mirror_in(&ctx, &mut other).unwrap_err(),
            PliniusError::Crypto(plinius_crypto::CryptoError::AuthenticationFailed)
        ));
    }

    #[test]
    fn mismatched_model_is_rejected() {
        let ctx = context_with_key(8 * 1024 * 1024);
        let net = small_network(8);
        let mirror = MirrorModel::allocate(&ctx, &net).unwrap();
        mirror.mirror_out(&ctx, &net).unwrap();
        // A deeper network does not fit the mirror.
        let mut rng = StdRng::seed_from_u64(9);
        let mut deeper = build_network(&mnist_cnn_config(3, 4, 4), &mut rng).unwrap();
        assert!(matches!(
            mirror.mirror_in(&ctx, &mut deeper).unwrap_err(),
            PliniusError::MirrorMismatch(_)
        ));
        assert!(matches!(
            mirror.mirror_out(&ctx, &deeper).unwrap_err(),
            PliniusError::MirrorMismatch(_)
        ));
    }

    #[test]
    fn open_without_mirror_errors() {
        let ctx = context_with_key(512 * 1024);
        assert!(matches!(
            MirrorModel::open(&ctx).unwrap_err(),
            PliniusError::NoMirrorModel
        ));
    }

    #[test]
    fn missing_key_is_reported() {
        let ctx = PliniusContext::small_test(8 * 1024 * 1024);
        let net = small_network(10);
        let mirror = MirrorModel::allocate(&ctx, &net).unwrap();
        assert!(matches!(
            mirror.mirror_out(&ctx, &net).unwrap_err(),
            PliniusError::KeyNotProvisioned
        ));
    }
}
