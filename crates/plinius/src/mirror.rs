//! The mirroring module (Fig. 4, Algorithm 3): encrypted mirror copies of the enclave
//! model in persistent memory.
//!
//! The mirror model is represented on PM as a linked list of persistent layer nodes (so
//! that layers can later be added or removed without relocating the whole model, as the
//! paper notes). Every trainable layer node carries pointers to the five encrypted
//! parameter buffers of that layer; every buffer is an AES-GCM sealed blob whose 12-byte
//! IV and 16-byte MAC account for the paper's 140 bytes of PM metadata per layer.
//!
//! A *mirror-out* (model save) encrypts the parameters inside the enclave and writes them
//! to the mirror within a single Romulus durable transaction, together with the iteration
//! counter; a crash therefore always leaves either the previous or the new model version.
//! A *mirror-in* (model restore) reads the encrypted buffers from PM into the enclave and
//! decrypts them into the enclave model.

use crate::{bytes_to_f32s, f32s_to_bytes, PliniusContext, PliniusError};
use plinius_crypto::{IvSequence, SealedBuffer, SEAL_OVERHEAD};
use plinius_darknet::Network;
use plinius_romulus::PmPtr;
use sim_clock::SimSpan;

/// Root-directory slot holding the mirror-model header.
pub const ROOT_MODEL: usize = 0;

/// Number of encrypted parameter buffers per mirrored layer.
const TENSORS_PER_LAYER: usize = plinius_darknet::PARAM_TENSORS_PER_LAYER;

/// The sealed model image: `[layer][tensor]` encrypted parameter blobs.
type SealedModel = Vec<Vec<Vec<u8>>>;

/// Byte size of the persistent model header: `[iteration][num_layers][first_layer_ptr]`.
const HEADER_BYTES: usize = 24;

/// Byte size of one persistent layer node:
/// `[next_ptr][num_tensors]` + `TENSORS_PER_LAYER x [tensor_ptr][sealed_len]`.
const NODE_BYTES: usize = 16 + TENSORS_PER_LAYER * 16;

/// Report of one mirror-out (model save): the Fig. 7 "Save" breakdown.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MirrorOutReport {
    /// Simulated time spent encrypting parameters inside the enclave.
    pub encrypt: SimSpan,
    /// Simulated time spent writing the encrypted buffers to PM (durable transaction).
    pub write: SimSpan,
    /// Plaintext model bytes mirrored.
    pub model_bytes: usize,
    /// Bytes of encryption metadata (IV + MAC trailers) added on PM.
    pub metadata_bytes: usize,
}

impl MirrorOutReport {
    /// Total simulated save latency in milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.encrypt.millis() + self.write.millis()
    }
}

/// Report of one mirror-in (model restore): the Fig. 7 "Restore" breakdown.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MirrorInReport {
    /// Simulated time spent reading encrypted buffers from PM into the enclave.
    pub read: SimSpan,
    /// Simulated time spent decrypting inside the enclave.
    pub decrypt: SimSpan,
    /// Training iteration recovered from the mirror.
    pub iteration: u64,
    /// Plaintext model bytes restored.
    pub model_bytes: usize,
}

impl MirrorInReport {
    /// Total simulated restore latency in milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.read.millis() + self.decrypt.millis()
    }
}

/// Handle to the persistent mirror of one enclave model.
#[derive(Debug, Clone)]
pub struct MirrorModel {
    header: PmPtr,
    layer_nodes: Vec<PmPtr>,
    /// Sealed length of every tensor of every layer, in layer order.
    sealed_lens: Vec<Vec<usize>>,
}

impl MirrorModel {
    /// Whether a mirror model already exists in the context's PM pool.
    pub fn exists(ctx: &PliniusContext) -> bool {
        matches!(ctx.romulus().root(ROOT_MODEL), Ok(p) if !p.is_null())
    }

    /// Allocates the persistent mirror for `network` (Algorithm 3, `alloc_mirror_model`):
    /// one header, one node per trainable layer, and space for every encrypted tensor.
    /// All allocations happen in a single durable transaction.
    ///
    /// # Errors
    ///
    /// Propagates Romulus errors (e.g. out of persistent memory).
    pub fn allocate(ctx: &PliniusContext, network: &Network) -> Result<Self, PliniusError> {
        let layer_tensor_lens: Vec<Vec<usize>> = network
            .layers()
            .iter()
            .filter(|l| l.is_trainable())
            .map(|l| {
                l.params()
                    .iter()
                    .map(|p| p.data.len() * 4 + SEAL_OVERHEAD)
                    .collect()
            })
            .collect();
        let num_layers = layer_tensor_lens.len() as u64;
        let mut header = PmPtr::NULL;
        let mut layer_nodes = Vec::new();
        ctx.romulus().transaction(|tx| {
            header = tx.alloc(HEADER_BYTES)?;
            tx.write_u64(header, 0)?; // iteration
            tx.write_u64(header.add(8), num_layers)?;
            // Allocate nodes front to back, linking as we go.
            let mut nodes: Vec<PmPtr> = Vec::with_capacity(layer_tensor_lens.len());
            for tensor_lens in &layer_tensor_lens {
                let node = tx.alloc(NODE_BYTES)?;
                tx.write_u64(node, 0)?; // next (patched below)
                tx.write_u64(node.add(8), tensor_lens.len() as u64)?;
                for (j, sealed_len) in tensor_lens.iter().enumerate() {
                    let tensor = tx.alloc(*sealed_len)?;
                    tx.write_u64(node.add(16 + (j as u64) * 16), tensor.offset())?;
                    tx.write_u64(node.add(16 + (j as u64) * 16 + 8), *sealed_len as u64)?;
                }
                if let Some(prev) = nodes.last() {
                    tx.write_u64(*prev, node.offset())?;
                }
                nodes.push(node);
            }
            let first = nodes.first().map(|p| p.offset()).unwrap_or(0);
            tx.write_u64(header.add(16), first)?;
            tx.set_root(ROOT_MODEL, header)?;
            layer_nodes = nodes;
            Ok(())
        })?;
        Ok(MirrorModel {
            header,
            layer_nodes,
            sealed_lens: layer_tensor_lens,
        })
    }

    /// Opens an existing mirror (after a restart), walking the persistent linked list.
    ///
    /// # Errors
    ///
    /// Returns [`PliniusError::NoMirrorModel`] if no mirror exists.
    pub fn open(ctx: &PliniusContext) -> Result<Self, PliniusError> {
        let header = ctx.romulus().root(ROOT_MODEL)?;
        if header.is_null() {
            return Err(PliniusError::NoMirrorModel);
        }
        let rom = ctx.romulus();
        let num_layers = rom.read_u64(header.add(8))? as usize;
        let mut layer_nodes = Vec::with_capacity(num_layers);
        let mut sealed_lens = Vec::with_capacity(num_layers);
        let mut cursor = PmPtr::from_offset(rom.read_u64(header.add(16))?);
        while !cursor.is_null() {
            let num_tensors = rom.read_u64(cursor.add(8))? as usize;
            let mut lens = Vec::with_capacity(num_tensors);
            for j in 0..num_tensors {
                lens.push(rom.read_u64(cursor.add(16 + (j as u64) * 16 + 8))? as usize);
            }
            layer_nodes.push(cursor);
            sealed_lens.push(lens);
            cursor = PmPtr::from_offset(rom.read_u64(cursor)?);
        }
        if layer_nodes.len() != num_layers {
            return Err(PliniusError::MirrorMismatch(format!(
                "header declares {num_layers} layers but the list holds {}",
                layer_nodes.len()
            )));
        }
        Ok(MirrorModel {
            header,
            layer_nodes,
            sealed_lens,
        })
    }

    /// Number of mirrored (trainable) layers.
    pub fn num_layers(&self) -> usize {
        self.layer_nodes.len()
    }

    /// Bytes of per-layer encryption metadata stored on PM (28 B per tensor, 140 B per
    /// layer with five tensors), as accounted in §VI of the paper.
    pub fn metadata_bytes(&self) -> usize {
        self.sealed_lens
            .iter()
            .map(|l| l.len() * SEAL_OVERHEAD)
            .sum()
    }

    /// The iteration counter currently stored in the mirror header.
    ///
    /// # Errors
    ///
    /// Propagates Romulus read errors.
    pub fn iteration(&self, ctx: &PliniusContext) -> Result<u64, PliniusError> {
        Ok(ctx.romulus().read_u64(self.header)?)
    }

    /// Mirror-out (Algorithm 3, `mirror_out`): encrypts the enclave model's parameters
    /// and synchronises the PM mirror within one durable transaction, recording the
    /// iteration counter.
    ///
    /// The per-tensor AES-GCM sealing of independent tensors runs across scoped threads
    /// (worker count from [`plinius_parallel::max_threads`], override with
    /// `PLINIUS_THREADS`); the sealed bytes and the [`MirrorOutReport`] — including its
    /// simulated-time spans — are identical for every thread count.
    ///
    /// # Errors
    ///
    /// Returns [`PliniusError::KeyNotProvisioned`] without a model key,
    /// [`PliniusError::MirrorMismatch`] if the model shape changed, or Romulus errors.
    pub fn mirror_out(
        &self,
        ctx: &PliniusContext,
        network: &Network,
    ) -> Result<MirrorOutReport, PliniusError> {
        self.mirror_out_with_threads(ctx, network, plinius_parallel::max_threads())
    }

    /// [`MirrorModel::mirror_out`] with an explicit sealing-thread count (1 forces the
    /// serial path). Exposed for benchmarks and the determinism tests; the result is
    /// bit-identical for every `threads` value.
    ///
    /// # Errors
    ///
    /// Same as [`MirrorModel::mirror_out`].
    pub fn mirror_out_with_threads(
        &self,
        ctx: &PliniusContext,
        network: &Network,
        threads: usize,
    ) -> Result<MirrorOutReport, PliniusError> {
        let key = ctx.key()?;
        let clock = ctx.clock();
        let trainable: Vec<_> = network
            .layers()
            .iter()
            .filter(|l| l.is_trainable())
            .collect();
        if trainable.len() != self.layer_nodes.len() {
            return Err(PliniusError::MirrorMismatch(format!(
                "enclave model has {} trainable layers, mirror has {}",
                trainable.len(),
                self.layer_nodes.len()
            )));
        }
        // Flatten the model into independent per-tensor seal tasks. The IV sequence is
        // seeded from one `sgx_read_rand` draw (exactly as many as the serial path
        // used) and hands every task its IV by *task index*, so the sealed bytes do not
        // depend on the thread schedule.
        let tasks: Vec<(usize, usize, Vec<u8>)> = trainable
            .iter()
            .enumerate()
            .flat_map(|(i, layer)| {
                layer
                    .params()
                    .iter()
                    .enumerate()
                    .map(|(j, param)| (i, j, f32s_to_bytes(param.data)))
                    .collect::<Vec<_>>()
            })
            .collect();
        let ivs = IvSequence::from_rng(&mut ctx.enclave_rng());
        let mut model_bytes = 0usize;
        // Phase 1: in-enclave encryption of every parameter tensor.
        let (sealed, encrypt) = SimSpan::record(&clock, || -> Result<SealedModel, PliniusError> {
            // SimSpan accounting stays deterministic: each tensor's modeled crypto cost
            // is charged serially in task order (same per-tensor charges, hence the
            // same simulated-time total as the serial path), then the real sealing work
            // fans out across threads.
            for (_, _, plaintext) in &tasks {
                model_bytes += plaintext.len();
                ctx.enclave().charge_crypto(plaintext.len() as u64);
            }
            let blobs = plinius_parallel::par_map(&tasks, threads, |idx, (i, j, plaintext)| {
                let aad = format!("layer{i}-tensor{j}");
                SealedBuffer::seal_with_aad_and_iv(
                    &key,
                    plaintext,
                    aad.as_bytes(),
                    &ivs.iv(idx as u64),
                )
                .map(SealedBuffer::into_bytes)
            });
            let mut all: SealedModel = vec![Vec::with_capacity(TENSORS_PER_LAYER); trainable.len()];
            for ((i, _, _), blob) in tasks.iter().zip(blobs) {
                all[*i].push(blob?);
            }
            Ok(all)
        });
        let sealed = sealed?;
        // Phase 2: durable write of the encrypted buffers + iteration counter to PM.
        let (write_result, write) = SimSpan::record(&clock, || {
            ctx.romulus().transaction(|tx| {
                tx.write_u64(self.header, network.iteration())?;
                for (node_idx, layer_blobs) in sealed.iter().enumerate() {
                    let node = self.layer_nodes[node_idx];
                    for (j, blob) in layer_blobs.iter().enumerate() {
                        let expected = self.sealed_lens[node_idx][j];
                        if blob.len() != expected {
                            return Err(plinius_romulus::RomulusError::Corrupted(format!(
                                "sealed tensor length {} does not match allocation {expected}",
                                blob.len()
                            )));
                        }
                        let tensor_ptr =
                            PmPtr::from_offset(tx.read_u64(node.add(16 + (j as u64) * 16))?);
                        tx.write_bytes(tensor_ptr, blob)?;
                    }
                }
                Ok(())
            })
        });
        write_result?;
        Ok(MirrorOutReport {
            encrypt,
            write,
            model_bytes,
            metadata_bytes: self.metadata_bytes(),
        })
    }

    /// Mirror-in (Algorithm 3, `mirror_in`): reads the encrypted mirror from PM into the
    /// enclave, decrypts it and installs the parameters into the enclave model, restoring
    /// the iteration counter.
    ///
    /// # Errors
    ///
    /// Returns [`PliniusError::KeyNotProvisioned`] without a model key, authentication
    /// failures if the mirror was tampered with, or a mismatch error if the model shape
    /// differs.
    pub fn mirror_in(
        &self,
        ctx: &PliniusContext,
        network: &mut Network,
    ) -> Result<MirrorInReport, PliniusError> {
        let key = ctx.key()?;
        let clock = ctx.clock();
        let rom = ctx.romulus();
        // Phase 1: read encrypted buffers from PM into enclave memory.
        let (read_out, read) =
            SimSpan::record(&clock, || -> Result<(u64, SealedModel), PliniusError> {
                let iteration = rom.read_u64(self.header)?;
                let mut all = Vec::with_capacity(self.layer_nodes.len());
                for (node_idx, node) in self.layer_nodes.iter().enumerate() {
                    let mut layer_blobs = Vec::with_capacity(TENSORS_PER_LAYER);
                    for (j, sealed_len) in self.sealed_lens[node_idx].iter().enumerate() {
                        let ptr = PmPtr::from_offset(rom.read_u64(node.add(16 + (j as u64) * 16))?);
                        layer_blobs.push(rom.read_bytes(ptr, *sealed_len)?);
                    }
                    all.push(layer_blobs);
                }
                Ok((iteration, all))
            });
        let (iteration, blobs) = read_out?;
        // Phase 2: in-enclave decryption (across threads — each tensor is an
        // independent AES-GCM open) and serial installation into the enclave model.
        let (decrypt_result, decrypt) =
            SimSpan::record(&clock, || -> Result<usize, PliniusError> {
                // Flatten to per-tensor decrypt tasks; charge the modeled crypto cost
                // serially in task order so the simulated-time total matches the serial
                // path for every thread count.
                let tasks: Vec<(usize, usize, &Vec<u8>)> = blobs
                    .iter()
                    .enumerate()
                    .flat_map(|(i, layer_blobs)| {
                        layer_blobs.iter().enumerate().map(move |(j, b)| (i, j, b))
                    })
                    .collect();
                for (_, _, blob) in &tasks {
                    ctx.enclave().charge_crypto(blob.len() as u64);
                }
                let threads = plinius_parallel::max_threads();
                let opened = plinius_parallel::par_map(&tasks, threads, |_, (i, j, blob)| {
                    let aad = format!("layer{i}-tensor{j}");
                    let sealed = SealedBuffer::from_bytes((*blob).clone())?;
                    let plaintext = sealed.open_with_aad(&key, aad.as_bytes())?;
                    bytes_to_f32s(&plaintext)
                });
                // Install layer by layer in mirror order, surfacing errors exactly as
                // the serial loop would (layer 0's failures before layer 1's).
                let mut opened = opened.into_iter();
                let mut model_bytes = 0usize;
                let mut node_idx = 0usize;
                for layer in network.layers_mut().iter_mut() {
                    if !layer.is_trainable() {
                        continue;
                    }
                    if node_idx >= blobs.len() {
                        return Err(PliniusError::MirrorMismatch(
                            "enclave model has more trainable layers than the mirror".into(),
                        ));
                    }
                    let mut tensors = Vec::with_capacity(TENSORS_PER_LAYER);
                    for _ in 0..blobs[node_idx].len() {
                        let tensor = opened.next().expect("one result per task")?;
                        model_bytes += tensor.len() * 4;
                        tensors.push(tensor);
                    }
                    let expected: Vec<usize> =
                        layer.params().iter().map(|p| p.data.len()).collect();
                    let got: Vec<usize> = tensors.iter().map(|t| t.len()).collect();
                    if expected != got {
                        return Err(PliniusError::MirrorMismatch(format!(
                        "layer {node_idx}: expected tensor sizes {expected:?}, mirror holds {got:?}"
                    )));
                    }
                    layer.set_params(&tensors);
                    node_idx += 1;
                }
                if node_idx != blobs.len() {
                    return Err(PliniusError::MirrorMismatch(
                        "mirror holds more layers than the enclave model".into(),
                    ));
                }
                Ok(model_bytes)
            });
        let model_bytes = decrypt_result?;
        network.set_iteration(iteration);
        Ok(MirrorInReport {
            read,
            decrypt,
            iteration,
            model_bytes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plinius_crypto::Key;
    use plinius_darknet::config::{build_network, mnist_cnn_config};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn context_with_key(pm_bytes: usize) -> PliniusContext {
        let ctx = PliniusContext::small_test(pm_bytes);
        let mut rng = StdRng::seed_from_u64(99);
        ctx.provision_key_directly(Key::generate_128(&mut rng));
        ctx
    }

    fn small_network(seed: u64) -> Network {
        let mut rng = StdRng::seed_from_u64(seed);
        build_network(&mnist_cnn_config(2, 4, 4), &mut rng).unwrap()
    }

    fn snapshot(net: &Network) -> Vec<Vec<f32>> {
        net.layers()
            .iter()
            .filter(|l| l.is_trainable())
            .flat_map(|l| {
                l.params()
                    .iter()
                    .map(|p| p.data.to_vec())
                    .collect::<Vec<_>>()
            })
            .collect()
    }

    #[test]
    fn allocate_mirror_out_mirror_in_round_trip() {
        let ctx = context_with_key(8 * 1024 * 1024);
        let mut net = small_network(1);
        net.set_iteration(42);
        assert!(!MirrorModel::exists(&ctx));
        let mirror = MirrorModel::allocate(&ctx, &net).unwrap();
        assert!(MirrorModel::exists(&ctx));
        let out = mirror.mirror_out(&ctx, &net).unwrap();
        assert!(out.model_bytes > 0);
        assert!(out.total_ms() > 0.0);
        // The (possibly thread-parallel) sealing reports exactly the plaintext model
        // size and the fixed 28 B/tensor metadata overhead.
        assert_eq!(out.model_bytes, net.model_bytes());
        assert_eq!(out.metadata_bytes, mirror.metadata_bytes());
        // Restore into a differently initialised network: parameters must match exactly.
        let mut other = small_network(2);
        assert_ne!(snapshot(&net), snapshot(&other));
        let report = mirror.mirror_in(&ctx, &mut other).unwrap();
        assert_eq!(report.iteration, 42);
        assert_eq!(other.iteration(), 42);
        assert_eq!(snapshot(&net), snapshot(&other));
        assert_eq!(report.model_bytes, out.model_bytes);
    }

    /// Reads every sealed tensor blob back out of PM, in layer/tensor order.
    fn sealed_tensor_bytes(ctx: &PliniusContext, mirror: &MirrorModel) -> Vec<Vec<Vec<u8>>> {
        let rom = ctx.romulus();
        mirror
            .layer_nodes
            .iter()
            .enumerate()
            .map(|(li, node)| {
                mirror.sealed_lens[li]
                    .iter()
                    .enumerate()
                    .map(|(j, len)| {
                        let ptr = PmPtr::from_offset(
                            rom.read_u64(node.add(16 + (j as u64) * 16)).unwrap(),
                        );
                        rom.read_bytes(ptr, *len).unwrap()
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn parallel_sealing_is_bit_identical_across_thread_counts() {
        // Two identical deployments (same pool size, same enclave RNG seed, same key,
        // same model) sealed with different thread counts must leave byte-identical
        // ciphertext+IV+MAC on PM and report identical simulated-time spans — the
        // SimSpan accounting reduces per-tensor work to the serial path's totals.
        let run = |threads: usize| {
            let ctx = context_with_key(8 * 1024 * 1024);
            let mut net = small_network(12);
            net.set_iteration(5);
            let mirror = MirrorModel::allocate(&ctx, &net).unwrap();
            let report = mirror.mirror_out_with_threads(&ctx, &net, threads).unwrap();
            (sealed_tensor_bytes(&ctx, &mirror), report)
        };
        let (bytes_serial, report_serial) = run(1);
        let (bytes_par, report_par) = run(4);
        assert_eq!(bytes_serial, bytes_par);
        assert_eq!(report_serial, report_par);
        // And the parallel-sealed image restores exactly (round-trip through the
        // parallel decrypt path as well).
        let ctx = context_with_key(8 * 1024 * 1024);
        let mut net = small_network(12);
        net.set_iteration(5);
        let mirror = MirrorModel::allocate(&ctx, &net).unwrap();
        mirror.mirror_out_with_threads(&ctx, &net, 4).unwrap();
        let mut restored = small_network(13);
        let report = mirror.mirror_in(&ctx, &mut restored).unwrap();
        assert_eq!(report.iteration, 5);
        assert_eq!(snapshot(&restored), snapshot(&net));
    }

    #[test]
    fn metadata_overhead_is_140_bytes_per_layer() {
        let ctx = context_with_key(8 * 1024 * 1024);
        let net = small_network(3);
        let mirror = MirrorModel::allocate(&ctx, &net).unwrap();
        assert_eq!(mirror.metadata_bytes(), mirror.num_layers() * 140);
    }

    #[test]
    fn mirror_survives_context_reopen() {
        let ctx = context_with_key(8 * 1024 * 1024);
        let mut net = small_network(4);
        net.set_iteration(7);
        let mirror = MirrorModel::allocate(&ctx, &net).unwrap();
        mirror.mirror_out(&ctx, &net).unwrap();
        let key = ctx.key().unwrap();
        let pool = ctx.pool().clone();
        drop((ctx, mirror));
        // "Restart": new enclave over the same pool, key re-provisioned via attestation
        // (provisioned directly here).
        let ctx2 = PliniusContext::open(pool, sim_clock::CostModel::sgx_eml_pm()).unwrap();
        ctx2.provision_key_directly(key);
        let mirror2 = MirrorModel::open(&ctx2).unwrap();
        let mut restored = small_network(5);
        let report = mirror2.mirror_in(&ctx2, &mut restored).unwrap();
        assert_eq!(report.iteration, 7);
        assert_eq!(snapshot(&restored), snapshot(&small_network(4)));
    }

    #[test]
    fn wrong_key_fails_authentication() {
        let ctx = context_with_key(8 * 1024 * 1024);
        let net = small_network(6);
        let mirror = MirrorModel::allocate(&ctx, &net).unwrap();
        mirror.mirror_out(&ctx, &net).unwrap();
        let mut rng = StdRng::seed_from_u64(1234);
        ctx.provision_key_directly(Key::generate_128(&mut rng));
        let mut other = small_network(7);
        assert!(matches!(
            mirror.mirror_in(&ctx, &mut other).unwrap_err(),
            PliniusError::Crypto(plinius_crypto::CryptoError::AuthenticationFailed)
        ));
    }

    #[test]
    fn mismatched_model_is_rejected() {
        let ctx = context_with_key(8 * 1024 * 1024);
        let net = small_network(8);
        let mirror = MirrorModel::allocate(&ctx, &net).unwrap();
        mirror.mirror_out(&ctx, &net).unwrap();
        // A deeper network does not fit the mirror.
        let mut rng = StdRng::seed_from_u64(9);
        let mut deeper = build_network(&mnist_cnn_config(3, 4, 4), &mut rng).unwrap();
        assert!(matches!(
            mirror.mirror_in(&ctx, &mut deeper).unwrap_err(),
            PliniusError::MirrorMismatch(_)
        ));
        assert!(matches!(
            mirror.mirror_out(&ctx, &deeper).unwrap_err(),
            PliniusError::MirrorMismatch(_)
        ));
    }

    #[test]
    fn open_without_mirror_errors() {
        let ctx = context_with_key(512 * 1024);
        assert!(matches!(
            MirrorModel::open(&ctx).unwrap_err(),
            PliniusError::NoMirrorModel
        ));
    }

    #[test]
    fn missing_key_is_reported() {
        let ctx = PliniusContext::small_test(8 * 1024 * 1024);
        let net = small_network(10);
        let mirror = MirrorModel::allocate(&ctx, &net).unwrap();
        assert!(matches!(
            mirror.mirror_out(&ctx, &net).unwrap_err(),
            PliniusError::KeyNotProvisioned
        ));
    }
}
