//! The mirroring module (Fig. 4, Algorithm 3): encrypted mirror copies of the enclave
//! model in persistent memory.
//!
//! The mirror model is represented on PM as a linked list of persistent layer nodes (so
//! that layers can later be added or removed without relocating the whole model, as the
//! paper notes). Every trainable layer node carries pointers to `R` encrypted ring
//! buffers for each of its five parameter tensors (`R = 2` — the classic A/B double
//! buffer — by default); every buffer is an AES-GCM sealed blob whose 12-byte IV and
//! 16-byte MAC account for the paper's 140 bytes of PM metadata per layer.
//!
//! # Epoch-committed ring buffering
//!
//! The mirror header carries an *epoch counter*, the index of the *active slot* and
//! the *ring depth* `R`; a small per-slot meta table records which committed epoch
//! each ring slot holds. Every mirror-out seals the model and bulk-publishes it into
//! the slot **after** the active one with unlogged direct twin writes
//! ([`plinius_romulus::Romulus::publish_region`]), then commits `[iteration, epoch+1,
//! advance-active-slot, slot-meta]` in one tiny Romulus durable transaction. A crash
//! at *any* point of the publish — including between tensor writes — therefore
//! recovers the newest **complete** epoch: the header still points at the untouched
//! slot until the advance commits atomically. Epoch `e` always lives in slot
//! `e % R`, so after `c` committed publishes the `min(R, c)` newest epochs remain
//! readable ([`MirrorModel::epochs`], [`MirrorModel::restore_epoch`]); the target
//! slot's meta entry is invalidated *before* its tensors are overwritten, so a
//! mid-publish crash never lists the half-overwritten evictee as readable.
//!
//! Ring depth is fixed at allocation time: [`MirrorModel::allocate`] reads it from
//! the `PLINIUS_RING` environment variable (default 2), and
//! [`MirrorModel::allocate_with_ring`] takes it explicitly. The sealed bytes placed
//! on PM are a pure function of `(key, IV, AAD, plaintext)` — identical for every
//! ring depth.
//!
//! # Pipelined mirror-out
//!
//! A mirror-out splits into two phases:
//!
//! * **snapshot** — cheap: copy the parameters (and draw the per-tensor IVs) into one
//!   of two pre-allocated staging slots;
//! * **publish** — expensive: AES-GCM-seal the staged plaintext and commit it to the
//!   inactive PM slot.
//!
//! [`MirrorModel::mirror_out`] runs both phases synchronously.
//! [`MirrorModel::snapshot_out`] runs only the snapshot and hands the publish to a
//! background worker ([`plinius_parallel::Pipeline`]); [`MirrorModel::drain`] joins it
//! at the next pipeline point, crediting the sealing time that was hidden behind the
//! compute charged in between ([`SimSpan::overlap`]), so the steady-state simulated
//! overhead approaches `max(compute, mirror)` instead of `compute + mirror`. Sealed
//! bytes, committed epochs and restored weights are bit-identical between the two
//! paths; only timing differs.
//!
//! A *mirror-in* (model restore) reads the active slot's encrypted buffers from PM
//! into the enclave and decrypts them into the enclave model.
//!
//! # Consistent snapshot reads
//!
//! A reader concurrent with a publish flip (an inference server hot-loading epochs
//! while the trainer keeps mirroring, or a recovering process racing a surviving
//! writer) must never mix tensors of one epoch with the iteration tag of another.
//! [`MirrorModel::mirror_in`] therefore performs a seqlock-style read: load the full
//! header `[iteration, epoch, active_slot]`, read the active slot's sealed buffers,
//! re-read the header, and retry if anything moved. The epoch counter is strictly
//! monotonic (every commit increments it by exactly one), so an unchanged header
//! brackets an untouched slot — publishes only ever write the *inactive* slot, and
//! reaching the active slot again requires at least one more epoch flip. Retries are
//! counted in the `mirror.torn_read_retries` statistic.

use crate::{bytes_to_f32s, f32s_to_bytes_into, PliniusContext, PliniusError};
use parking_lot::Mutex;
use plinius_crypto::{
    seal_into_with_threads, AesGcm, CryptoError, IvSequence, SealedView, IV_LEN, SEAL_OVERHEAD,
};
use plinius_darknet::Network;
use plinius_parallel::Pipeline;
use plinius_romulus::PmPtr;
use sim_clock::SimSpan;
use std::sync::Arc;

/// Root-directory slot holding tenant 0's mirror-model header. Other tenants use
/// their own root pair ([`crate::TenantId::model_root`]); the mirror always reads
/// the slot through [`PliniusContext::model_root`].
pub const ROOT_MODEL: usize = 0;

/// Number of encrypted parameter buffers per mirrored layer.
const TENSORS_PER_LAYER: usize = plinius_darknet::PARAM_TENSORS_PER_LAYER;

/// Byte size of the persistent model header:
/// `[iteration][num_layers][first_layer_ptr][epoch][active_slot][ring_depth][meta_ptr]`.
const HEADER_BYTES: usize = 56;

/// Header offset of the epoch counter.
const HDR_EPOCH: u64 = 24;

/// Header offset of the active ring-slot index (`0..ring_depth`).
const HDR_ACTIVE: u64 = 32;

/// Header offset of the ring depth `R`.
const HDR_RING: u64 = 40;

/// Header offset of the pointer to the per-slot ring-meta table.
const HDR_META: u64 = 48;

/// Byte size of one ring-meta entry: `[epoch][iteration]` of the slot's contents
/// (epoch 0 = slot holds no committed epoch).
const META_ENTRY_BYTES: u64 = 16;

/// An invalidated ring-meta entry, bulk-published over the target slot's entry
/// before its tensors are overwritten.
const META_INVALID: [u8; META_ENTRY_BYTES as usize] = [0u8; META_ENTRY_BYTES as usize];

/// Environment variable selecting the mirror's ring depth (`R >= 2`) for
/// [`MirrorModel::allocate`]; invalid or missing values fall back to
/// [`DEFAULT_RING_DEPTH`].
pub const RING_ENV: &str = "PLINIUS_RING";

/// Default number of ring slots per tensor: the classic A/B double buffer.
pub const DEFAULT_RING_DEPTH: usize = 2;

/// The ring depth selected by the `PLINIUS_RING` environment variable, or
/// [`DEFAULT_RING_DEPTH`] when unset or out of range (the ring needs at least two
/// slots to publish without touching the committed epoch).
pub fn ring_depth_from_env() -> usize {
    std::env::var(RING_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 2)
        .unwrap_or(DEFAULT_RING_DEPTH)
}

/// Byte size of one persistent layer node for ring depth `ring`:
/// `[next_ptr][num_tensors]` + `TENSORS_PER_LAYER x [R slot ptrs][sealed_len]`.
fn node_bytes(ring: usize) -> usize {
    16 + TENSORS_PER_LAYER * (ring * 8 + 8)
}

/// Report of one mirror-out (model save): the Fig. 7 "Save" breakdown.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MirrorOutReport {
    /// Simulated time spent encrypting parameters inside the enclave.
    pub encrypt: SimSpan,
    /// Simulated time spent writing the encrypted buffers to PM (durable transaction).
    pub write: SimSpan,
    /// Plaintext model bytes mirrored.
    pub model_bytes: usize,
    /// Bytes of encryption metadata (IV + MAC trailers) added on PM.
    pub metadata_bytes: usize,
}

impl MirrorOutReport {
    /// Total simulated save latency in milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.encrypt.millis() + self.write.millis()
    }
}

/// Report of one mirror-in (model restore): the Fig. 7 "Restore" breakdown.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MirrorInReport {
    /// Simulated time spent reading encrypted buffers from PM into the enclave.
    pub read: SimSpan,
    /// Simulated time spent decrypting inside the enclave.
    pub decrypt: SimSpan,
    /// Training iteration recovered from the mirror.
    pub iteration: u64,
    /// Committed epoch the restored tensors belong to (0 before the first
    /// mirror-out).
    pub epoch: u64,
    /// Plaintext model bytes restored.
    pub model_bytes: usize,
}

impl MirrorInReport {
    /// Total simulated restore latency in milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.read.millis() + self.decrypt.millis()
    }
}

/// Report of the snapshot phase of a pipelined mirror-out: the cheap in-enclave copy
/// that decouples the training loop from the expensive seal + PM publish.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SnapshotReport {
    /// Simulated time of the staging copy (parameters → staging slot).
    pub staged: SimSpan,
    /// Plaintext model bytes staged.
    pub model_bytes: usize,
}

/// Report of one committed publish (the expensive half of a pipelined mirror-out,
/// joined by [`MirrorModel::drain`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PublishReport {
    /// Training iteration recorded in the committed epoch.
    pub iteration: u64,
    /// The epoch number this publish committed.
    pub epoch: u64,
    /// Join of the background sealing lane: the span's length is the *residual*
    /// simulated sealing time that was **not** hidden behind the work charged to the
    /// clock since the snapshot (see [`SimSpan::overlap`]). Zero when compute fully
    /// covered the sealing.
    pub seal_join: SimSpan,
    /// Simulated time of the bulk slot publish + epoch-flip transaction.
    pub write: SimSpan,
    /// Plaintext model bytes published.
    pub model_bytes: usize,
}

impl PublishReport {
    /// Simulated mirroring overhead this publish added to the training timeline, in
    /// milliseconds: the non-overlapped sealing residual plus the durable write.
    pub fn overhead_ms(&self) -> f64 {
        self.seal_join.millis() + self.write.millis()
    }
}

/// Position of one parameter tensor inside the mirror's reusable staging buffers, plus
/// everything that is constant per tensor across iterations (the AAD in particular,
/// which the seed code re-`format!`ted for every tensor of every iteration).
#[derive(Debug, Clone)]
pub(crate) struct TensorSlot {
    /// Trainable-layer index this tensor belongs to.
    pub(crate) layer: usize,
    /// Tensor index within its layer.
    pub(crate) tensor: usize,
    /// Byte offset of the plaintext in the staging buffer.
    pub(crate) plain_off: usize,
    /// Plaintext length in bytes.
    pub(crate) plain_len: usize,
    /// Byte offset of the sealed blob (ciphertext ‖ IV ‖ MAC) in the arena.
    pub(crate) sealed_off: usize,
    /// Sealed length in bytes (`plain_len + SEAL_OVERHEAD`).
    pub(crate) sealed_len: usize,
    /// Precomputed additional authenticated data (`layer{i}-tensor{j}`).
    pub(crate) aad: Vec<u8>,
}

/// Reusable cryptographic scratch of one mirror: everything the steady-state
/// mirror-out/mirror-in loop needs so that the encryption phase performs **no heap
/// allocation after warm-up** (with serial sealing; thread fan-out adds only the
/// O(#tensors) dispatch buffers).
struct MirrorScratch {
    /// Raw bytes of the key the cached GCM context was built for, to detect
    /// re-provisioning.
    key_bytes: Vec<u8>,
    /// Cached AES-GCM context (key schedule + GHASH tables + selected engine), shared
    /// with the enclave's per-key cache (expensive to rebuild per tensor).
    gcm: Arc<AesGcm>,
    /// Plaintext staging buffer: all tensors contiguous in slot order.
    plain: Vec<u8>,
    /// Sealed-blob arena: all sealed tensors contiguous in slot order.
    arena: Vec<u8>,
    /// Per-tensor IVs of the current sealing batch.
    ivs: Vec<[u8; IV_LEN]>,
}

/// One set of pre-allocated staging buffers of the pipelined mirror-out: the snapshot
/// phase fills `plain` + `ivs`, the background worker seals into `arena`. Two sets
/// rotate (one possibly in flight, one spare), so the steady state allocates nothing.
struct SealBuffers {
    plain: Vec<u8>,
    arena: Vec<u8>,
    ivs: Vec<[u8; IV_LEN]>,
}

/// A staged snapshot travelling to the background sealing worker.
struct SealJob {
    bufs: SealBuffers,
}

/// A sealed snapshot travelling back: the buffers are always returned (even on error)
/// so they can be reused as the next spare set.
struct SealDone {
    bufs: SealBuffers,
    result: Result<(), CryptoError>,
}

/// Bookkeeping of one enqueued-but-not-yet-committed publish.
struct InflightPublish {
    /// Iteration counter the staged snapshot belongs to.
    iteration: u64,
    /// Simulated time at which the sealing lane forked off the training timeline.
    fork_ns: u64,
    /// Modeled simulated cost of the sealing lane (charged at the overlap join).
    seal_lane_ns: u64,
    /// Plaintext bytes staged.
    model_bytes: usize,
}

/// The lazily built background-publish machinery of one mirror handle.
struct MirrorPipeline {
    /// Single background worker sealing staged snapshots.
    worker: Pipeline<SealJob, SealDone>,
    /// Raw bytes of the key the worker's GCM context was built for.
    key_bytes: Vec<u8>,
    /// The staging-buffer set not currently in flight.
    spare: Option<SealBuffers>,
    /// The publish currently in flight, if any (the pipeline is depth-1).
    inflight: Option<InflightPublish>,
}

/// Fault-injection hook of the seqlock read: fired with the 0-based attempt index
/// between the header snapshot and the slot reads of [`MirrorModel::mirror_in`].
type TornReadHook = Box<dyn FnMut(u64) + Send>;

/// One atomic-enough view of the mirror header, compared before/after a slot read
/// in the seqlock protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct HeaderSnapshot {
    iteration: u64,
    epoch: u64,
    active: usize,
}

/// Give up after this many torn-read retries: the header moving this often during
/// one restore means the writer publishes faster than the reader can read, which
/// only fault injection can sustain.
const MAX_TORN_READ_RETRIES: u64 = 64;

/// Handle to the persistent mirror of one enclave model.
pub struct MirrorModel {
    header: PmPtr,
    /// The per-slot ring-meta table: `ring_depth x [epoch, iteration]`.
    meta: PmPtr,
    /// Number of ring slots per tensor (`>= 2`), fixed at allocation time.
    ring_depth: usize,
    layer_nodes: Vec<PmPtr>,
    /// Sealed length of every tensor of every layer, in layer order.
    sealed_lens: Vec<Vec<usize>>,
    /// Flat per-tensor layout (layer-major), fixed at allocate/open time.
    slots: Vec<TensorSlot>,
    /// The `ring_depth` PM buffers of every tensor, in `slots` order.
    tensor_ptrs: Vec<Vec<PmPtr>>,
    /// Lazily built reusable scratch; `Mutex` keeps `mirror_out(&self)` callable from
    /// the existing persistence backends while the buffers are reused in place.
    scratch: Mutex<Option<MirrorScratch>>,
    /// Lazily built background-publish pipeline (overlapped mode only).
    pipeline: Mutex<Option<MirrorPipeline>>,
    /// Torn-read fault injection (tests only); see
    /// [`MirrorModel::set_torn_read_hook`].
    torn_read_hook: Mutex<Option<TornReadHook>>,
}

impl std::fmt::Debug for MirrorModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MirrorModel")
            .field("header", &self.header)
            .field("layers", &self.layer_nodes.len())
            .field("tensors", &self.slots.len())
            .finish()
    }
}

impl Clone for MirrorModel {
    fn clone(&self) -> Self {
        // The scratch, pipeline and fault hook are per-handle working state: a clone
        // starts cold.
        MirrorModel {
            header: self.header,
            meta: self.meta,
            ring_depth: self.ring_depth,
            layer_nodes: self.layer_nodes.clone(),
            sealed_lens: self.sealed_lens.clone(),
            slots: self.slots.clone(),
            tensor_ptrs: self.tensor_ptrs.clone(),
            scratch: Mutex::new(None),
            pipeline: Mutex::new(None),
            torn_read_hook: Mutex::new(None),
        }
    }
}

/// Fans a fallible per-slot operation out across threads: `buf` is carved into one
/// disjoint `&mut` slice per slot (sequential, sized by `len_of`) and `f(slot_index,
/// slice)` runs on up to `threads` workers. The first error surfaces in slot order.
/// Shared scaffolding of the seal (arena) and open (staging) phases.
fn par_slot_slices(
    slots: &[TensorSlot],
    buf: &mut [u8],
    len_of: impl Fn(&TensorSlot) -> usize,
    threads: usize,
    f: impl Fn(usize, &mut [u8]) -> Result<(), CryptoError> + Sync,
) -> Result<(), PliniusError> {
    struct SlotTask<'a> {
        idx: usize,
        out: &'a mut [u8],
        result: Result<(), CryptoError>,
    }
    let mut tasks: Vec<SlotTask<'_>> = Vec::with_capacity(slots.len());
    let mut rest: &mut [u8] = buf;
    for (idx, slot) in slots.iter().enumerate() {
        let (head, tail) = rest.split_at_mut(len_of(slot));
        tasks.push(SlotTask {
            idx,
            out: head,
            result: Ok(()),
        });
        rest = tail;
    }
    plinius_parallel::par_for_each_mut(&mut tasks, threads, |_, task| {
        task.result = f(task.idx, task.out);
    });
    for task in tasks {
        task.result?;
    }
    Ok(())
}

/// Builds the flat tensor layout (and precomputes every AAD) from the per-layer sealed
/// lengths.
fn build_slots(sealed_lens: &[Vec<usize>]) -> Result<Vec<TensorSlot>, PliniusError> {
    let mut slots = Vec::new();
    let (mut plain_off, mut sealed_off) = (0usize, 0usize);
    for (i, layer) in sealed_lens.iter().enumerate() {
        for (j, &sealed_len) in layer.iter().enumerate() {
            let plain_len = sealed_len.checked_sub(SEAL_OVERHEAD).ok_or_else(|| {
                PliniusError::MirrorMismatch(format!(
                    "sealed tensor length {sealed_len} is shorter than the {SEAL_OVERHEAD}-byte trailer"
                ))
            })?;
            slots.push(TensorSlot {
                layer: i,
                tensor: j,
                plain_off,
                plain_len,
                sealed_off,
                sealed_len,
                aad: format!("layer{i}-tensor{j}").into_bytes(),
            });
            plain_off += plain_len;
            sealed_off += sealed_len;
        }
    }
    Ok(slots)
}

impl MirrorModel {
    /// Whether a mirror model already exists in the context's PM pool.
    pub fn exists(ctx: &PliniusContext) -> bool {
        matches!(ctx.romulus().root(ctx.model_root()), Ok(p) if !p.is_null())
    }

    /// Allocates the persistent mirror for `network` (Algorithm 3, `alloc_mirror_model`)
    /// with the ring depth selected by the `PLINIUS_RING` environment variable
    /// (default 2, the classic A/B double buffer). See
    /// [`MirrorModel::allocate_with_ring`].
    ///
    /// # Errors
    ///
    /// Propagates Romulus errors (e.g. out of persistent memory).
    pub fn allocate(ctx: &PliniusContext, network: &Network) -> Result<Self, PliniusError> {
        Self::allocate_with_ring(ctx, network, ring_depth_from_env())
    }

    /// Allocates the persistent mirror for `network` with an explicit ring depth
    /// `ring >= 2`: one header (with epoch counter, active-slot index and ring
    /// depth), one `ring`-entry meta table, one node per trainable layer, and
    /// `ring` buffers for every encrypted tensor. All allocations happen in a
    /// single durable transaction.
    ///
    /// # Errors
    ///
    /// Returns [`PliniusError::InvalidConfig`] for `ring < 2` (publishing must never
    /// touch the committed epoch's slot), or Romulus errors (e.g. out of persistent
    /// memory).
    pub fn allocate_with_ring(
        ctx: &PliniusContext,
        network: &Network,
        ring: usize,
    ) -> Result<Self, PliniusError> {
        if ring < 2 {
            return Err(PliniusError::InvalidConfig(format!(
                "mirror ring depth must be at least 2, got {ring}"
            )));
        }
        let layer_tensor_lens: Vec<Vec<usize>> = network
            .layers()
            .iter()
            .filter(|l| l.is_trainable())
            .map(|l| {
                l.params()
                    .iter()
                    .map(|p| p.data.len() * 4 + SEAL_OVERHEAD)
                    .collect()
            })
            .collect();
        let num_layers = layer_tensor_lens.len() as u64;
        let mut header = PmPtr::NULL;
        let mut meta = PmPtr::NULL;
        let mut layer_nodes = Vec::new();
        let mut tensor_ptrs: Vec<Vec<PmPtr>> = Vec::new();
        ctx.romulus().transaction(|tx| {
            header = tx.alloc(HEADER_BYTES)?;
            tx.write_u64(header, 0)?; // iteration
            tx.write_u64(header.add(8), num_layers)?;
            tx.write_u64(header.add(HDR_EPOCH), 0)?;
            tx.write_u64(header.add(HDR_ACTIVE), 0)?;
            tx.write_u64(header.add(HDR_RING), ring as u64)?;
            // The ring-meta table starts all-invalid (epoch 0 = no committed epoch).
            meta = tx.alloc(ring * META_ENTRY_BYTES as usize)?;
            for s in 0..ring as u64 {
                tx.write_u64(meta.add(s * META_ENTRY_BYTES), 0)?;
                tx.write_u64(meta.add(s * META_ENTRY_BYTES + 8), 0)?;
            }
            tx.write_u64(header.add(HDR_META), meta.offset())?;
            // Allocate nodes front to back, linking as we go.
            let stride = (ring * 8 + 8) as u64;
            let mut nodes: Vec<PmPtr> = Vec::with_capacity(layer_tensor_lens.len());
            let mut ptrs: Vec<Vec<PmPtr>> = Vec::new();
            for tensor_lens in &layer_tensor_lens {
                let node = tx.alloc(node_bytes(ring))?;
                tx.write_u64(node, 0)?; // next (patched below)
                tx.write_u64(node.add(8), tensor_lens.len() as u64)?;
                for (j, sealed_len) in tensor_lens.iter().enumerate() {
                    let field = node.add(16 + (j as u64) * stride);
                    let mut ring_ptrs = Vec::with_capacity(ring);
                    for s in 0..ring {
                        let slot = tx.alloc(*sealed_len)?;
                        tx.write_u64(field.add((s * 8) as u64), slot.offset())?;
                        ring_ptrs.push(slot);
                    }
                    tx.write_u64(field.add((ring * 8) as u64), *sealed_len as u64)?;
                    ptrs.push(ring_ptrs);
                }
                if let Some(prev) = nodes.last() {
                    tx.write_u64(*prev, node.offset())?;
                }
                nodes.push(node);
            }
            let first = nodes.first().map(|p| p.offset()).unwrap_or(0);
            tx.write_u64(header.add(16), first)?;
            tx.set_root(ctx.model_root(), header)?;
            layer_nodes = nodes;
            tensor_ptrs = ptrs;
            Ok(())
        })?;
        let slots = build_slots(&layer_tensor_lens)?;
        Ok(MirrorModel {
            header,
            meta,
            ring_depth: ring,
            layer_nodes,
            sealed_lens: layer_tensor_lens,
            slots,
            tensor_ptrs,
            scratch: Mutex::new(None),
            pipeline: Mutex::new(None),
            torn_read_hook: Mutex::new(None),
        })
    }

    /// Opens an existing mirror (after a restart), walking the persistent linked list.
    ///
    /// # Errors
    ///
    /// Returns [`PliniusError::NoMirrorModel`] if no mirror exists.
    pub fn open(ctx: &PliniusContext) -> Result<Self, PliniusError> {
        let header = ctx.romulus().root(ctx.model_root())?;
        if header.is_null() {
            return Err(PliniusError::NoMirrorModel);
        }
        let rom = ctx.romulus();
        let num_layers = rom.read_u64(header.add(8))? as usize;
        let ring = rom.read_u64(header.add(HDR_RING))? as usize;
        if !(2..=65_536).contains(&ring) {
            return Err(PliniusError::MirrorMismatch(format!(
                "implausible ring depth {ring} in the mirror header"
            )));
        }
        let meta = PmPtr::from_offset(rom.read_u64(header.add(HDR_META))?);
        if meta.is_null() {
            return Err(PliniusError::MirrorMismatch(
                "mirror header carries no ring-meta table".into(),
            ));
        }
        let stride = (ring * 8 + 8) as u64;
        let mut layer_nodes = Vec::with_capacity(num_layers);
        let mut sealed_lens = Vec::with_capacity(num_layers);
        let mut tensor_ptrs: Vec<Vec<PmPtr>> = Vec::new();
        let mut cursor = PmPtr::from_offset(rom.read_u64(header.add(16))?);
        while !cursor.is_null() {
            let num_tensors = rom.read_u64(cursor.add(8))? as usize;
            let mut lens = Vec::with_capacity(num_tensors);
            for j in 0..num_tensors {
                let field = cursor.add(16 + (j as u64) * stride);
                let mut ring_ptrs = Vec::with_capacity(ring);
                for s in 0..ring {
                    ring_ptrs.push(PmPtr::from_offset(rom.read_u64(field.add((s * 8) as u64))?));
                }
                lens.push(rom.read_u64(field.add((ring * 8) as u64))? as usize);
                tensor_ptrs.push(ring_ptrs);
            }
            layer_nodes.push(cursor);
            sealed_lens.push(lens);
            cursor = PmPtr::from_offset(rom.read_u64(cursor)?);
        }
        if layer_nodes.len() != num_layers {
            return Err(PliniusError::MirrorMismatch(format!(
                "header declares {num_layers} layers but the list holds {}",
                layer_nodes.len()
            )));
        }
        let slots = build_slots(&sealed_lens)?;
        Ok(MirrorModel {
            header,
            meta,
            ring_depth: ring,
            layer_nodes,
            sealed_lens,
            slots,
            tensor_ptrs,
            scratch: Mutex::new(None),
            pipeline: Mutex::new(None),
            torn_read_hook: Mutex::new(None),
        })
    }

    /// Returns the warm scratch, (re)building it if absent or if the enclave's model
    /// key changed since the cached GCM context was derived. The key comparison
    /// borrows the stored key ([`plinius_sgx::Enclave::with_key`]) so the steady-state
    /// path clones nothing.
    fn ensure_scratch<'a>(
        &self,
        ctx: &PliniusContext,
        guard: &'a mut Option<MirrorScratch>,
    ) -> Result<&'a mut MirrorScratch, PliniusError> {
        let stale = match guard.as_ref() {
            Some(s) => !ctx
                .enclave()
                .with_key(ctx.key_name(), |k| k.as_bytes() == s.key_bytes.as_slice())
                .ok_or(PliniusError::KeyNotProvisioned)?,
            None => true,
        };
        if stale {
            let key = ctx.key()?;
            let gcm = ctx.gcm()?;
            match guard.as_mut() {
                Some(s) => {
                    s.gcm = gcm;
                    s.key_bytes.clear();
                    s.key_bytes.extend_from_slice(key.as_bytes());
                }
                None => {
                    let plain_total = self.slots.iter().map(|s| s.plain_len).sum();
                    let sealed_total = self.slots.iter().map(|s| s.sealed_len).sum();
                    *guard = Some(MirrorScratch {
                        key_bytes: key.as_bytes().to_vec(),
                        gcm,
                        plain: vec![0u8; plain_total],
                        arena: vec![0u8; sealed_total],
                        ivs: vec![[0u8; IV_LEN]; self.slots.len()],
                    });
                }
            }
        }
        Ok(guard.as_mut().expect("scratch built above"))
    }

    /// Number of mirrored (trainable) layers.
    pub fn num_layers(&self) -> usize {
        self.layer_nodes.len()
    }

    /// Bytes of per-layer encryption metadata stored on PM (28 B per tensor, 140 B per
    /// layer with five tensors), as accounted in §VI of the paper.
    pub fn metadata_bytes(&self) -> usize {
        self.sealed_lens
            .iter()
            .map(|l| l.len() * SEAL_OVERHEAD)
            .sum()
    }

    /// The iteration counter currently stored in the mirror header.
    ///
    /// # Errors
    ///
    /// Propagates Romulus read errors.
    pub fn iteration(&self, ctx: &PliniusContext) -> Result<u64, PliniusError> {
        Ok(ctx.romulus().read_u64(self.header)?)
    }

    /// The epoch counter of the last committed publish (0 before the first
    /// mirror-out). Each committed mirror-out — synchronous or pipelined — increments
    /// it by exactly one.
    ///
    /// # Errors
    ///
    /// Propagates Romulus read errors.
    pub fn epoch(&self, ctx: &PliniusContext) -> Result<u64, PliniusError> {
        Ok(ctx.romulus().read_u64(self.header.add(HDR_EPOCH))?)
    }

    /// Index of the currently active ring slot (`0..ring_depth`).
    fn active_slot(&self, ctx: &PliniusContext) -> Result<usize, PliniusError> {
        let raw = ctx.romulus().read_u64(self.header.add(HDR_ACTIVE))?;
        if (raw as usize) < self.ring_depth {
            Ok(raw as usize)
        } else {
            Err(PliniusError::MirrorMismatch(format!(
                "invalid active-slot index {raw} in the mirror header (ring depth {})",
                self.ring_depth
            )))
        }
    }

    /// Number of ring slots per tensor (`>= 2`), fixed at allocation time.
    pub fn ring_depth(&self) -> usize {
        self.ring_depth
    }

    /// Pointer to ring slot `s`'s meta entry `[epoch, iteration]`.
    fn meta_entry_ptr(&self, s: usize) -> PmPtr {
        self.meta.add(s as u64 * META_ENTRY_BYTES)
    }

    /// One load of ring slot `s`'s meta entry: `(epoch, iteration)`; epoch 0 means
    /// the slot holds no committed epoch.
    fn meta_entry(&self, ctx: &PliniusContext, s: usize) -> Result<(u64, u64), PliniusError> {
        let ptr = self.meta_entry_ptr(s);
        Ok((
            ctx.romulus().read_u64(ptr)?,
            ctx.romulus().read_u64(ptr.add(8))?,
        ))
    }

    /// The committed epochs currently retained in the ring, oldest first: after `c`
    /// committed publishes these are the `min(ring_depth, c)` newest epoch numbers
    /// (one fewer while a publish is overwriting the oldest slot). Each listed
    /// epoch can be opened with [`MirrorModel::restore_epoch`].
    ///
    /// # Errors
    ///
    /// Propagates Romulus read errors.
    pub fn epochs(&self, ctx: &PliniusContext) -> Result<Vec<u64>, PliniusError> {
        let current = self.epoch(ctx)?;
        let r = self.ring_depth as u64;
        let mut out = Vec::with_capacity(self.ring_depth);
        for s in 0..self.ring_depth {
            let (e, _) = self.meta_entry(ctx, s)?;
            // Invariant: slot s holds epoch e iff e ≡ s (mod R) and e is one of the
            // R newest committed epochs. Anything else is stale or torn — skip it.
            if e != 0 && e <= current && current - e < r && e % r == s as u64 {
                out.push(e);
            }
        }
        out.sort_unstable();
        Ok(out)
    }

    /// The training-iteration counter recorded with retained epoch `epoch`.
    ///
    /// # Errors
    ///
    /// Returns [`PliniusError::EpochNotRetained`] if the epoch has been evicted
    /// from the ring (or never committed).
    pub fn epoch_iteration(&self, ctx: &PliniusContext, epoch: u64) -> Result<u64, PliniusError> {
        if epoch == 0 {
            return Err(PliniusError::EpochNotRetained(epoch));
        }
        let s = (epoch % self.ring_depth as u64) as usize;
        let (e, iteration) = self.meta_entry(ctx, s)?;
        if e != epoch {
            return Err(PliniusError::EpochNotRetained(epoch));
        }
        Ok(iteration)
    }

    /// One consistent load of the full mirror header, the unit of the seqlock
    /// protocol: two equal snapshots bracketing a slot read prove the slot was not
    /// republished in between (the epoch is strictly monotonic, so an unchanged
    /// header cannot be a different publish that wrapped around).
    fn header_snapshot(&self, ctx: &PliniusContext) -> Result<HeaderSnapshot, PliniusError> {
        Ok(HeaderSnapshot {
            iteration: ctx.romulus().read_u64(self.header)?,
            epoch: ctx.romulus().read_u64(self.header.add(HDR_EPOCH))?,
            active: self.active_slot(ctx)?,
        })
    }

    /// Installs (or clears) a fault-injection hook fired between the header snapshot
    /// and the slot reads of [`MirrorModel::mirror_in`] — the exact window in which
    /// a concurrent publish flip makes the read torn. The hook receives the 0-based
    /// retry attempt index.
    ///
    /// Test scaffolding (like [`plinius_romulus::Romulus::inject_failure`]): a hook
    /// that publishes must do so through a **separate cloned handle** — `mirror_in`
    /// holds this handle's scratch lock while the hook runs, so publishing through
    /// the same handle would deadlock.
    pub fn set_torn_read_hook(&self, hook: Option<Box<dyn FnMut(u64) + Send>>) {
        *self.torn_read_hook.lock() = hook;
    }

    /// Publishes the sealed arena into the ring slot after the active one with
    /// direct twin writes, then atomically commits `[iteration, epoch+1, advance,
    /// slot-meta]` in one small Romulus transaction. The target slot's meta entry
    /// is invalidated *before* its tensors are overwritten, so a crash anywhere in
    /// the publish recovers the newest complete epoch and never lists the
    /// half-overwritten evictee. Returns the committed epoch number.
    fn commit_arena(
        &self,
        ctx: &PliniusContext,
        arena: &[u8],
        iteration: u64,
    ) -> Result<u64, PliniusError> {
        let rom = ctx.romulus();
        let active = self.active_slot(ctx)?;
        let epoch = rom.read_u64(self.header.add(HDR_EPOCH))?;
        let target = (active + 1) % self.ring_depth;
        rom.publish_region(self.meta_entry_ptr(target), &META_INVALID)?;
        for (idx, slot) in self.slots.iter().enumerate() {
            rom.publish_region(
                self.tensor_ptrs[idx][target],
                &arena[slot.sealed_off..slot.sealed_off + slot.sealed_len],
            )?;
        }
        let meta_ptr = self.meta_entry_ptr(target);
        rom.transaction(|tx| {
            tx.write_u64(self.header, iteration)?;
            tx.write_u64(self.header.add(HDR_EPOCH), epoch + 1)?;
            tx.write_u64(self.header.add(HDR_ACTIVE), target as u64)?;
            tx.write_u64(meta_ptr, epoch + 1)?;
            tx.write_u64(meta_ptr.add(8), iteration)
        })?;
        Ok(epoch + 1)
    }

    /// Mirror-out (Algorithm 3, `mirror_out`): encrypts the enclave model's parameters
    /// and synchronises the PM mirror within one durable transaction, recording the
    /// iteration counter.
    ///
    /// The per-tensor AES-GCM sealing of independent tensors runs across scoped threads
    /// (worker count from [`plinius_parallel::max_threads`], override with
    /// `PLINIUS_THREADS`); the sealed bytes and the [`MirrorOutReport`] — including its
    /// simulated-time spans — are identical for every thread count.
    ///
    /// # Errors
    ///
    /// Returns [`PliniusError::KeyNotProvisioned`] without a model key,
    /// [`PliniusError::MirrorMismatch`] if the model shape changed, or Romulus errors.
    pub fn mirror_out(
        &self,
        ctx: &PliniusContext,
        network: &Network,
    ) -> Result<MirrorOutReport, PliniusError> {
        self.mirror_out_with_threads(ctx, network, plinius_parallel::max_threads())
    }

    /// [`MirrorModel::mirror_out`] with an explicit sealing-thread count (1 forces the
    /// serial path). Exposed for benchmarks and the determinism tests; the result is
    /// bit-identical for every `threads` value.
    ///
    /// # Errors
    ///
    /// Same as [`MirrorModel::mirror_out`].
    pub fn mirror_out_with_threads(
        &self,
        ctx: &PliniusContext,
        network: &Network,
        threads: usize,
    ) -> Result<MirrorOutReport, PliniusError> {
        let clock = ctx.clock();
        self.check_model_shape(network)?;
        let mut guard = self.scratch.lock();
        let scratch = self.ensure_scratch(ctx, &mut guard)?;
        // The IV sequence is seeded from one `sgx_read_rand` draw (exactly as many as
        // the serial path used) and hands every tensor its IV by *slot index*, so the
        // sealed bytes do not depend on the thread schedule.
        let ivs = IvSequence::from_rng(&mut ctx.enclave_rng());
        for (idx, iv) in scratch.ivs.iter_mut().enumerate() {
            *iv = ivs.iv(idx as u64);
        }
        let mut model_bytes = 0usize;
        // Phase 1: in-enclave encryption of every parameter tensor, staged through and
        // sealed into the reusable scratch — no heap allocation in the steady state.
        let (seal_result, encrypt) = SimSpan::record(&clock, || {
            // SimSpan accounting stays deterministic: each tensor's modeled crypto cost
            // is charged serially in slot order (same per-tensor charges, hence the
            // same simulated-time total as the serial path), then the real sealing work
            // fans out across threads.
            for slot in &self.slots {
                model_bytes += slot.plain_len;
                ctx.enclave().charge_crypto(slot.plain_len as u64);
            }
            Self::stage_and_seal(&self.slots, scratch, network, threads)
        });
        seal_result?;
        // Phase 2: bulk-publish the sealed arena into the inactive slot and commit
        // the epoch flip durably.
        let arena = &scratch.arena;
        let (write_result, write) = SimSpan::record(&clock, || {
            self.commit_arena(ctx, arena, network.iteration())
        });
        write_result?;
        Ok(MirrorOutReport {
            encrypt,
            write,
            model_bytes,
            metadata_bytes: self.metadata_bytes(),
        })
    }

    /// Verifies that `network`'s trainable layers and tensor sizes match this mirror's
    /// fixed layout (the staging buffers are sized at allocate/open time).
    fn check_model_shape(&self, network: &Network) -> Result<(), PliniusError> {
        let mut trainable = 0usize;
        let mut slot_iter = self.slots.iter();
        for layer in network.layers().iter() {
            let Some(views) = layer.param_views() else {
                continue;
            };
            trainable += 1;
            for view in views {
                match slot_iter.next() {
                    Some(slot) if slot.plain_len == view.data.len() * 4 => {}
                    Some(slot) => {
                        return Err(PliniusError::MirrorMismatch(format!(
                            "layer {}: tensor of {} bytes does not fit mirror slot of {} bytes",
                            slot.layer,
                            view.data.len() * 4,
                            slot.plain_len
                        )))
                    }
                    None => {
                        return Err(PliniusError::MirrorMismatch(format!(
                            "enclave model has {trainable} or more trainable layers, mirror has {}",
                            self.layer_nodes.len()
                        )))
                    }
                }
            }
        }
        if trainable != self.layer_nodes.len() {
            return Err(PliniusError::MirrorMismatch(format!(
                "enclave model has {trainable} trainable layers, mirror has {}",
                self.layer_nodes.len()
            )));
        }
        Ok(())
    }

    /// Copies every trainable tensor's parameters into the staging buffer, in slot
    /// order. The caller has already verified the model shape.
    fn stage_plaintext(slots: &[TensorSlot], plain: &mut [u8], network: &Network) {
        let mut slot_iter = slots.iter();
        for layer in network.layers().iter() {
            let Some(views) = layer.param_views() else {
                continue;
            };
            for view in views {
                let slot = slot_iter.next().expect("shape checked");
                f32s_to_bytes_into(
                    view.data,
                    &mut plain[slot.plain_off..slot.plain_off + slot.plain_len],
                );
            }
        }
    }

    /// Phase-1 worker: stages every tensor's plaintext into the scratch and seals it
    /// into the arena.
    ///
    /// * `threads <= 1`: fully serial, zero heap allocations after warm-up.
    /// * many tensors: fan out across tensors (each tensor sealed serially on one
    ///   worker) — the layout mirrors the seed's per-tensor parallelism.
    /// * few large tensors: seal serially in slot order but fan the CTR keystream of
    ///   each tensor out across threads (chunked at counter boundaries).
    ///
    /// All three produce bit-identical sealed bytes: the ciphertext of a tensor is a
    /// pure function of `(key, IV, AAD, plaintext)` regardless of chunking.
    fn stage_and_seal(
        slots: &[TensorSlot],
        scratch: &mut MirrorScratch,
        network: &Network,
        threads: usize,
    ) -> Result<(), PliniusError> {
        let MirrorScratch {
            gcm,
            plain,
            arena,
            ivs,
            ..
        } = scratch;
        Self::stage_plaintext(slots, plain, network);
        let threads = threads.max(1);
        if threads > 1 && slots.len() >= 2 * threads {
            // Many tensors: one worker per tensor, disjoint arena slices.
            let plain = &*plain;
            par_slot_slices(
                slots,
                arena,
                |s| s.sealed_len,
                threads,
                |idx, out| {
                    let slot = &slots[idx];
                    seal_into_with_threads(
                        gcm,
                        &plain[slot.plain_off..slot.plain_off + slot.plain_len],
                        &slot.aad,
                        &ivs[idx],
                        out,
                        1,
                    )
                },
            )?;
        } else {
            // Serial over tensors; intra-tensor CTR fan-out when threads are offered.
            for (idx, slot) in slots.iter().enumerate() {
                seal_into_with_threads(
                    gcm,
                    &plain[slot.plain_off..slot.plain_off + slot.plain_len],
                    &slot.aad,
                    &ivs[idx],
                    &mut arena[slot.sealed_off..slot.sealed_off + slot.sealed_len],
                    threads,
                )?;
            }
        }
        Ok(())
    }

    /// Mirror-in (Algorithm 3, `mirror_in`): reads the encrypted mirror from PM into the
    /// enclave, decrypts it and installs the parameters into the enclave model, restoring
    /// the iteration counter.
    ///
    /// The read is a consistent snapshot (see the module docs): the header
    /// `[iteration, epoch, active_slot]` is loaded before and after the slot's
    /// buffers, and the read retries whenever a concurrent publish moved the header
    /// in between — the restored tensors, iteration and [`MirrorInReport::epoch`]
    /// always belong to exactly one committed epoch.
    ///
    /// # Errors
    ///
    /// Returns [`PliniusError::KeyNotProvisioned`] without a model key, authentication
    /// failures if the mirror was tampered with, or a mismatch error if the model shape
    /// differs.
    pub fn mirror_in(
        &self,
        ctx: &PliniusContext,
        network: &mut Network,
    ) -> Result<MirrorInReport, PliniusError> {
        let clock = ctx.clock();
        let rom = ctx.romulus();
        let mut guard = self.scratch.lock();
        let scratch = self.ensure_scratch(ctx, &mut guard)?;
        // Phase 1: seqlock read of the active slot's encrypted buffers from PM
        // straight into the reusable arena — no per-tensor vectors, no blob clones.
        let (read_out, read) =
            SimSpan::record(&clock, || -> Result<HeaderSnapshot, PliniusError> {
                let mut attempt = 0u64;
                loop {
                    let before = self.header_snapshot(ctx)?;
                    if let Some(hook) = self.torn_read_hook.lock().as_mut() {
                        hook(attempt);
                    }
                    for (idx, slot) in self.slots.iter().enumerate() {
                        rom.read_bytes_into(
                            self.tensor_ptrs[idx][before.active],
                            &mut scratch.arena[slot.sealed_off..slot.sealed_off + slot.sealed_len],
                        )?;
                    }
                    if self.header_snapshot(ctx)? == before {
                        return Ok(before);
                    }
                    ctx.stats().counter("mirror.torn_read_retries").incr();
                    attempt += 1;
                    if attempt > MAX_TORN_READ_RETRIES {
                        return Err(PliniusError::MirrorMismatch(format!(
                            "mirror header kept moving during {MAX_TORN_READ_RETRIES} \
                             snapshot-read retries"
                        )));
                    }
                }
            });
        let header = read_out?;
        let iteration = header.iteration;
        // Phase 2: in-enclave decryption (across threads — each tensor is an
        // independent AES-GCM open on a borrowed [`SealedView`]) and serial
        // installation into the enclave model.
        let (decrypt_result, decrypt) = SimSpan::record(&clock, || {
            self.decrypt_arena_into_network(ctx, scratch, network)
        });
        let model_bytes = decrypt_result?;
        network.set_iteration(iteration);
        Ok(MirrorInReport {
            read,
            decrypt,
            iteration,
            epoch: header.epoch,
            model_bytes,
        })
    }

    /// Restores a specific retained epoch from the ring into `network` (the
    /// time-travel sibling of [`MirrorModel::mirror_in`], which always opens the
    /// newest committed epoch). The read revalidates the slot's ring-meta entry
    /// after the bulk tensor read — meta entries are invalidated *before* a publish
    /// overwrites a slot, so an unchanged entry brackets untorn bytes even while a
    /// concurrent publisher cycles the ring (AES-GCM authentication is the second
    /// net). The network's iteration counter is set to the one recorded with the
    /// epoch.
    ///
    /// # Errors
    ///
    /// Returns [`PliniusError::EpochNotRetained`] if the epoch has been evicted
    /// from the ring (or never committed), plus the error set of
    /// [`MirrorModel::mirror_in`].
    pub fn restore_epoch(
        &self,
        ctx: &PliniusContext,
        network: &mut Network,
        epoch: u64,
    ) -> Result<MirrorInReport, PliniusError> {
        if epoch == 0 {
            return Err(PliniusError::EpochNotRetained(epoch));
        }
        let clock = ctx.clock();
        let rom = ctx.romulus();
        let slot_idx = (epoch % self.ring_depth as u64) as usize;
        let mut guard = self.scratch.lock();
        let scratch = self.ensure_scratch(ctx, &mut guard)?;
        let (read_out, read) = SimSpan::record(&clock, || -> Result<u64, PliniusError> {
            let mut attempt = 0u64;
            loop {
                let before = self.meta_entry(ctx, slot_idx)?;
                if before.0 != epoch {
                    return Err(PliniusError::EpochNotRetained(epoch));
                }
                for (idx, slot) in self.slots.iter().enumerate() {
                    rom.read_bytes_into(
                        self.tensor_ptrs[idx][slot_idx],
                        &mut scratch.arena[slot.sealed_off..slot.sealed_off + slot.sealed_len],
                    )?;
                }
                if self.meta_entry(ctx, slot_idx)? == before {
                    return Ok(before.1);
                }
                ctx.stats().counter("mirror.torn_read_retries").incr();
                attempt += 1;
                if attempt > MAX_TORN_READ_RETRIES {
                    return Err(PliniusError::MirrorMismatch(format!(
                        "ring slot {slot_idx} kept moving during {MAX_TORN_READ_RETRIES} \
                         snapshot-read retries"
                    )));
                }
            }
        });
        let iteration = read_out?;
        let (decrypt_result, decrypt) = SimSpan::record(&clock, || {
            self.decrypt_arena_into_network(ctx, scratch, network)
        });
        let model_bytes = decrypt_result?;
        network.set_iteration(iteration);
        Ok(MirrorInReport {
            read,
            decrypt,
            iteration,
            epoch,
            model_bytes,
        })
    }

    /// Reads one retained epoch's sealed tensor blob (`flat` indexes the
    /// layer-major tensor layout) straight from PM into `out`, without decrypting
    /// and without heap allocation — the zero-copy read primitive underneath the
    /// VFS. The slot's ring-meta entry is revalidated after the read (see
    /// [`MirrorModel::restore_epoch`] for why that brackets untorn bytes). Returns
    /// the sealed length written.
    ///
    /// # Errors
    ///
    /// Returns [`PliniusError::EpochNotRetained`] if the epoch is not in the ring,
    /// or [`PliniusError::MirrorMismatch`] if `flat` is out of range or `out` is
    /// shorter than the sealed blob.
    pub fn read_sealed_into(
        &self,
        ctx: &PliniusContext,
        epoch: u64,
        flat: usize,
        out: &mut [u8],
    ) -> Result<usize, PliniusError> {
        if epoch == 0 {
            return Err(PliniusError::EpochNotRetained(epoch));
        }
        let slot = self.slots.get(flat).ok_or_else(|| {
            PliniusError::MirrorMismatch(format!("no tensor at flat index {flat}"))
        })?;
        if out.len() < slot.sealed_len {
            return Err(PliniusError::MirrorMismatch(format!(
                "output buffer of {} bytes cannot hold the {}-byte sealed tensor",
                out.len(),
                slot.sealed_len
            )));
        }
        let rom = ctx.romulus();
        let slot_idx = (epoch % self.ring_depth as u64) as usize;
        let mut attempt = 0u64;
        loop {
            let before = self.meta_entry(ctx, slot_idx)?;
            if before.0 != epoch {
                return Err(PliniusError::EpochNotRetained(epoch));
            }
            rom.read_bytes_into(
                self.tensor_ptrs[flat][slot_idx],
                &mut out[..slot.sealed_len],
            )?;
            if self.meta_entry(ctx, slot_idx)? == before {
                return Ok(slot.sealed_len);
            }
            ctx.stats().counter("mirror.torn_read_retries").incr();
            attempt += 1;
            if attempt > MAX_TORN_READ_RETRIES {
                return Err(PliniusError::MirrorMismatch(format!(
                    "ring slot {slot_idx} kept moving during {MAX_TORN_READ_RETRIES} \
                     snapshot-read retries"
                )));
            }
        }
    }

    /// The flat per-tensor layout (layer-major): the VFS's view of what is sealed.
    pub(crate) fn slot_layout(&self) -> &[TensorSlot] {
        &self.slots
    }

    /// Total sealed-arena size in bytes (the sum of every tensor's sealed length).
    pub(crate) fn arena_len(&self) -> usize {
        self.slots.iter().map(|s| s.sealed_len).sum()
    }

    /// Commits a pre-sealed arena (layer-major concatenation of sealed tensor
    /// blobs, exactly [`MirrorModel::arena_len`] bytes) as the next epoch — the
    /// import half of the VFS's sealed export/import path. The caller has already
    /// authenticated the blobs.
    pub(crate) fn commit_sealed_arena(
        &self,
        ctx: &PliniusContext,
        arena: &[u8],
        iteration: u64,
    ) -> Result<u64, PliniusError> {
        if arena.len() != self.arena_len() {
            return Err(PliniusError::MirrorMismatch(format!(
                "sealed arena of {} bytes does not match the mirror's {}-byte layout",
                arena.len(),
                self.arena_len()
            )));
        }
        self.commit_arena(ctx, arena, iteration)
    }

    /// Phase 2 of a restore: authenticates and decrypts the staged arena (across
    /// threads) and installs the parameters into the enclave model, charging the
    /// modeled crypto cost serially in slot order so the simulated-time total
    /// matches the serial path for every thread count. Returns the plaintext model
    /// bytes installed.
    fn decrypt_arena_into_network(
        &self,
        ctx: &PliniusContext,
        scratch: &mut MirrorScratch,
        network: &mut Network,
    ) -> Result<usize, PliniusError> {
        for slot in &self.slots {
            ctx.enclave().charge_crypto(slot.sealed_len as u64);
        }
        let threads = plinius_parallel::max_threads();
        Self::open_arena(&self.slots, scratch, threads)?;
        // Install layer by layer in mirror order, surfacing errors exactly as
        // the serial loop would (layer 0's failures before layer 1's).
        let mut slot_iter = self.slots.iter();
        let mut model_bytes = 0usize;
        let mut node_idx = 0usize;
        for layer in network.layers_mut().iter_mut() {
            if !layer.is_trainable() {
                continue;
            }
            if node_idx >= self.layer_nodes.len() {
                return Err(PliniusError::MirrorMismatch(
                    "enclave model has more trainable layers than the mirror".into(),
                ));
            }
            let mut tensors = Vec::with_capacity(TENSORS_PER_LAYER);
            for _ in 0..self.sealed_lens[node_idx].len() {
                let slot = slot_iter.next().expect("one slot per tensor");
                let tensor =
                    bytes_to_f32s(&scratch.plain[slot.plain_off..slot.plain_off + slot.plain_len])?;
                model_bytes += tensor.len() * 4;
                tensors.push(tensor);
            }
            let expected: Vec<usize> = layer.params().iter().map(|p| p.data.len()).collect();
            let got: Vec<usize> = tensors.iter().map(|t| t.len()).collect();
            if expected != got {
                return Err(PliniusError::MirrorMismatch(format!(
                    "layer {node_idx}: expected tensor sizes {expected:?}, mirror holds {got:?}"
                )));
            }
            layer.set_params(&tensors);
            node_idx += 1;
        }
        if node_idx != self.layer_nodes.len() {
            return Err(PliniusError::MirrorMismatch(
                "mirror holds more layers than the enclave model".into(),
            ));
        }
        Ok(model_bytes)
    }

    /// Phase-2 worker of mirror-in: authenticates and decrypts every sealed tensor of
    /// the arena into the plaintext staging buffer, via borrowed [`SealedView`]s (no
    /// blob copies). Errors surface in slot order. Mirrors the thread strategy of
    /// [`MirrorModel::stage_and_seal`]; the plaintext is bit-identical for every
    /// thread count.
    fn open_arena(
        slots: &[TensorSlot],
        scratch: &mut MirrorScratch,
        threads: usize,
    ) -> Result<(), PliniusError> {
        let MirrorScratch {
            gcm, plain, arena, ..
        } = scratch;
        let threads = threads.max(1);
        if threads > 1 && slots.len() >= 2 * threads {
            let arena = &*arena;
            par_slot_slices(
                slots,
                plain,
                |s| s.plain_len,
                threads,
                |idx, out| {
                    let slot = &slots[idx];
                    SealedView::parse(&arena[slot.sealed_off..slot.sealed_off + slot.sealed_len])
                        .and_then(|view| view.open_into(gcm, &slot.aad, out))
                },
            )?;
        } else {
            for slot in slots.iter() {
                SealedView::parse(&arena[slot.sealed_off..slot.sealed_off + slot.sealed_len])?
                    .open_into_with_threads(
                        gcm,
                        &slot.aad,
                        &mut plain[slot.plain_off..slot.plain_off + slot.plain_len],
                        threads,
                    )?;
            }
        }
        Ok(())
    }

    // --------------------------------------------------------- pipelined mirror-out

    /// Returns the warm publish pipeline, (re)building the background worker if
    /// absent, if the enclave's model key changed, or if the previous worker died
    /// (its staging buffers are gone with it — `spare == None` with nothing in
    /// flight is exactly that post-failure state, since every live idle pipeline
    /// holds its spare set). Must only be called with no publish in flight (the
    /// caller joins first), so a rebuild never drops work.
    fn ensure_pipeline<'a>(
        &self,
        ctx: &PliniusContext,
        guard: &'a mut Option<MirrorPipeline>,
    ) -> Result<&'a mut MirrorPipeline, PliniusError> {
        let stale = match guard.as_ref() {
            Some(p) => {
                p.spare.is_none()
                    || !ctx
                        .enclave()
                        .with_key(ctx.key_name(), |k| k.as_bytes() == p.key_bytes.as_slice())
                        .ok_or(PliniusError::KeyNotProvisioned)?
            }
            None => true,
        };
        if stale {
            let key = ctx.key()?;
            let gcm = ctx.gcm()?;
            let slots: Arc<[TensorSlot]> = self.slots.clone().into();
            let worker = Pipeline::spawn("plinius-mirror-seal", move |job: SealJob| {
                let SealJob { mut bufs } = job;
                let mut result = Ok(());
                // Serial in slot order: the worker thread *is* the parallel lane; the
                // sealed bytes are a pure function of (key, IV, AAD, plaintext), so
                // they match the synchronous path bit for bit.
                for (idx, slot) in slots.iter().enumerate() {
                    if let Err(e) = seal_into_with_threads(
                        &gcm,
                        &bufs.plain[slot.plain_off..slot.plain_off + slot.plain_len],
                        &slot.aad,
                        &bufs.ivs[idx],
                        &mut bufs.arena[slot.sealed_off..slot.sealed_off + slot.sealed_len],
                        1,
                    ) {
                        result = Err(e);
                        break;
                    }
                }
                SealDone { bufs, result }
            });
            // Reuse the previous staging buffers across a key rotation; allocate them
            // once on first use.
            let spare = match guard.take().and_then(|old| old.spare) {
                Some(bufs) => bufs,
                None => SealBuffers {
                    plain: vec![0u8; self.slots.iter().map(|s| s.plain_len).sum()],
                    arena: vec![0u8; self.slots.iter().map(|s| s.sealed_len).sum()],
                    ivs: vec![[0u8; IV_LEN]; self.slots.len()],
                },
            };
            *guard = Some(MirrorPipeline {
                worker,
                key_bytes: key.as_bytes().to_vec(),
                spare: Some(spare),
                inflight: None,
            });
        }
        Ok(guard.as_mut().expect("pipeline built above"))
    }

    /// Joins the in-flight publish, if any: waits for the background sealing to
    /// finish, credits the sealing time hidden behind the main lane
    /// ([`SimSpan::overlap`]), and durably commits the sealed snapshot as the next
    /// epoch.
    fn join_inflight(
        &self,
        ctx: &PliniusContext,
        guard: &mut Option<MirrorPipeline>,
    ) -> Result<Option<PublishReport>, PliniusError> {
        let Some(state) = guard.as_mut() else {
            return Ok(None);
        };
        let Some(meta) = state.inflight.take() else {
            return Ok(None);
        };
        let clock = ctx.clock();
        let done = state
            .worker
            .recv()
            .map_err(|e| PliniusError::Pipeline(format!("seal worker join failed: {e}")))?;
        let SealDone { bufs, result } = done;
        // Always hand the buffers back for reuse, even when the publish fails.
        state.spare = Some(bufs);
        // The sealing lane forked at snapshot time and ran in parallel with whatever
        // the training loop charged since; only its residual shows up here.
        let seal_join = SimSpan::overlap(&clock, meta.fork_ns, meta.seal_lane_ns);
        result.map_err(PliniusError::Crypto)?;
        let arena = &state.spare.as_ref().expect("buffers returned above").arena;
        let (commit_result, write) =
            SimSpan::record(&clock, || self.commit_arena(ctx, arena, meta.iteration));
        let epoch = commit_result?;
        Ok(Some(PublishReport {
            iteration: meta.iteration,
            epoch,
            seal_join,
            write,
            model_bytes: meta.model_bytes,
        }))
    }

    /// Snapshot phase of a pipelined mirror-out: joins any previous in-flight publish
    /// (the pipeline is depth-1), stages the model's parameters and per-tensor IVs
    /// into a pre-allocated staging slot, and hands the expensive seal + PM publish
    /// to the background worker. Returns the snapshot report together with the
    /// publish report of the *previous* snapshot, if one was still in flight.
    ///
    /// The IVs are drawn on the calling thread, at the same position of the enclave's
    /// `sgx_read_rand` stream as a synchronous [`MirrorModel::mirror_out`] would draw
    /// them — so a pipelined run leaves bit-identical sealed bytes on PM.
    ///
    /// # Errors
    ///
    /// Returns [`PliniusError::KeyNotProvisioned`] without a model key,
    /// [`PliniusError::MirrorMismatch`] if the model shape changed, or any error of
    /// the joined previous publish.
    pub fn snapshot_out(
        &self,
        ctx: &PliniusContext,
        network: &Network,
    ) -> Result<(SnapshotReport, Option<PublishReport>), PliniusError> {
        let clock = ctx.clock();
        self.check_model_shape(network)?;
        let mut guard = self.pipeline.lock();
        let prior = self.join_inflight(ctx, &mut guard)?;
        let state = self.ensure_pipeline(ctx, &mut guard)?;
        let mut bufs = state.spare.take().expect("spare buffers present when idle");
        let ivs = IvSequence::from_rng(&mut ctx.enclave_rng());
        for (idx, iv) in bufs.ivs.iter_mut().enumerate() {
            *iv = ivs.iv(idx as u64);
        }
        let model_bytes = bufs.plain.len();
        let ((), staged) = SimSpan::record(&clock, || {
            Self::stage_plaintext(&self.slots, &mut bufs.plain, network);
        });
        // The sealing lane's modeled cost is computed now (stats recorded) but
        // charged at the join, where the overlap with the interleaved compute is
        // known.
        let seal_lane_ns = ctx.enclave().charge_crypto_offline(model_bytes as u64);
        let fork_ns = clock.now_ns();
        let iteration = network.iteration();
        state
            .worker
            .send(SealJob { bufs })
            .map_err(|e| PliniusError::Pipeline(format!("seal worker dispatch failed: {e}")))?;
        state.inflight = Some(InflightPublish {
            iteration,
            fork_ns,
            seal_lane_ns,
            model_bytes,
        });
        Ok((
            SnapshotReport {
                staged,
                model_bytes,
            },
            prior,
        ))
    }

    /// Joins and commits the in-flight publish, if any — the pipeline's *drain*
    /// point. Called by the overlapped persistence backend before restores, at the
    /// end of a training run, and on shutdown; a no-op when nothing is in flight.
    ///
    /// # Errors
    ///
    /// Propagates sealing, PM-write and worker errors of the joined publish.
    pub fn drain(&self, ctx: &PliniusContext) -> Result<Option<PublishReport>, PliniusError> {
        let mut guard = self.pipeline.lock();
        self.join_inflight(ctx, &mut guard)
    }

    /// Whether a snapshot is currently sealing/publishing in the background.
    pub fn has_inflight(&self) -> bool {
        self.pipeline
            .lock()
            .as_ref()
            .is_some_and(|p| p.inflight.is_some())
    }

    /// Test hook: replaces the live seal worker with one that dies on its first job,
    /// so the worker-death recovery path (one surfaced error, then a rebuilt
    /// pipeline) can be exercised without a real sealing bug.
    #[cfg(test)]
    fn kill_seal_worker_for_test(&self) {
        if let Some(state) = self.pipeline.lock().as_mut() {
            state.worker = Pipeline::spawn("plinius-mirror-seal-dying", |_job: SealJob| {
                panic!("seal worker killed for test");
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::f32s_to_bytes;
    use plinius_crypto::{Key, SealedBuffer};
    use plinius_darknet::config::{build_network, mnist_cnn_config};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn context_with_key(pm_bytes: usize) -> PliniusContext {
        let ctx = PliniusContext::small_test(pm_bytes);
        let mut rng = StdRng::seed_from_u64(99);
        ctx.provision_key_directly(Key::generate_128(&mut rng));
        ctx
    }

    fn small_network(seed: u64) -> Network {
        let mut rng = StdRng::seed_from_u64(seed);
        build_network(&mnist_cnn_config(2, 4, 4), &mut rng).unwrap()
    }

    fn snapshot(net: &Network) -> Vec<Vec<f32>> {
        net.layers()
            .iter()
            .filter(|l| l.is_trainable())
            .flat_map(|l| {
                l.params()
                    .iter()
                    .map(|p| p.data.to_vec())
                    .collect::<Vec<_>>()
            })
            .collect()
    }

    #[test]
    fn allocate_mirror_out_mirror_in_round_trip() {
        let ctx = context_with_key(8 * 1024 * 1024);
        let mut net = small_network(1);
        net.set_iteration(42);
        assert!(!MirrorModel::exists(&ctx));
        let mirror = MirrorModel::allocate(&ctx, &net).unwrap();
        assert!(MirrorModel::exists(&ctx));
        let out = mirror.mirror_out(&ctx, &net).unwrap();
        assert!(out.model_bytes > 0);
        assert!(out.total_ms() > 0.0);
        // The (possibly thread-parallel) sealing reports exactly the plaintext model
        // size and the fixed 28 B/tensor metadata overhead.
        assert_eq!(out.model_bytes, net.model_bytes());
        assert_eq!(out.metadata_bytes, mirror.metadata_bytes());
        // Restore into a differently initialised network: parameters must match exactly.
        let mut other = small_network(2);
        assert_ne!(snapshot(&net), snapshot(&other));
        let report = mirror.mirror_in(&ctx, &mut other).unwrap();
        assert_eq!(report.iteration, 42);
        assert_eq!(other.iteration(), 42);
        assert_eq!(snapshot(&net), snapshot(&other));
        assert_eq!(report.model_bytes, out.model_bytes);
    }

    /// Reads every sealed tensor blob of the committed (active) slot back out of PM,
    /// in layer/tensor order.
    fn sealed_tensor_bytes(ctx: &PliniusContext, mirror: &MirrorModel) -> Vec<Vec<Vec<u8>>> {
        let rom = ctx.romulus();
        let active = mirror.active_slot(ctx).unwrap();
        let mut out = Vec::new();
        let mut flat = 0usize;
        for lens in &mirror.sealed_lens {
            let mut layer = Vec::new();
            for len in lens {
                layer.push(
                    rom.read_bytes(mirror.tensor_ptrs[flat][active], *len)
                        .unwrap(),
                );
                flat += 1;
            }
            out.push(layer);
        }
        out
    }

    #[test]
    fn parallel_sealing_is_bit_identical_across_thread_counts() {
        // Two identical deployments (same pool size, same enclave RNG seed, same key,
        // same model) sealed with different thread counts must leave byte-identical
        // ciphertext+IV+MAC on PM and report identical simulated-time spans — the
        // SimSpan accounting reduces per-tensor work to the serial path's totals.
        let run = |threads: usize| {
            let ctx = context_with_key(8 * 1024 * 1024);
            let mut net = small_network(12);
            net.set_iteration(5);
            let mirror = MirrorModel::allocate(&ctx, &net).unwrap();
            let report = mirror.mirror_out_with_threads(&ctx, &net, threads).unwrap();
            (sealed_tensor_bytes(&ctx, &mirror), report)
        };
        let (bytes_serial, report_serial) = run(1);
        let (bytes_par, report_par) = run(4);
        assert_eq!(bytes_serial, bytes_par);
        assert_eq!(report_serial, report_par);
        // And the parallel-sealed image restores exactly (round-trip through the
        // parallel decrypt path as well).
        let ctx = context_with_key(8 * 1024 * 1024);
        let mut net = small_network(12);
        net.set_iteration(5);
        let mirror = MirrorModel::allocate(&ctx, &net).unwrap();
        mirror.mirror_out_with_threads(&ctx, &net, 4).unwrap();
        let mut restored = small_network(13);
        let report = mirror.mirror_in(&ctx, &mut restored).unwrap();
        assert_eq!(report.iteration, 5);
        assert_eq!(snapshot(&restored), snapshot(&net));
    }

    /// Pins the on-PM bytes to the seed's per-tensor formula: every sealed tensor must
    /// equal `SealedBuffer::seal_with_aad_and_iv(key, le_bytes(tensor),
    /// "layer{i}-tensor{j}", IvSequence(batch_seed).iv(flat_index))` — i.e. the
    /// scratch/arena rewrite changed no ciphertext, IV or MAC byte.
    #[test]
    fn mirror_out_bytes_match_the_per_tensor_seal_formula() {
        let (ctx, mut net) = (context_with_key(8 * 1024 * 1024), small_network(21));
        net.set_iteration(3);
        let mirror = MirrorModel::allocate(&ctx, &net).unwrap();
        mirror.mirror_out(&ctx, &net).unwrap();
        let got = sealed_tensor_bytes(&ctx, &mirror);
        // Twin deployment: identical pool size, enclave RNG stream and key, so the IV
        // batch seed drawn below is the one the mirror-out above used.
        let (ctx2, net2) = (context_with_key(8 * 1024 * 1024), small_network(21));
        let _twin = MirrorModel::allocate(&ctx2, &net2).unwrap();
        let key = ctx2.key().unwrap();
        let ivs = IvSequence::from_rng(&mut ctx2.enclave_rng());
        let mut flat = 0u64;
        let mut expected: Vec<Vec<Vec<u8>>> = Vec::new();
        for (i, layer) in net2
            .layers()
            .iter()
            .filter(|l| l.is_trainable())
            .enumerate()
        {
            let mut blobs = Vec::new();
            for (j, param) in layer.params().iter().enumerate() {
                let aad = format!("layer{i}-tensor{j}");
                blobs.push(
                    SealedBuffer::seal_with_aad_and_iv(
                        &key,
                        &f32s_to_bytes(param.data),
                        aad.as_bytes(),
                        &ivs.iv(flat),
                    )
                    .unwrap()
                    .into_bytes(),
                );
                flat += 1;
            }
            expected.push(blobs);
        }
        assert_eq!(got, expected);
    }

    #[test]
    fn epochs_alternate_slots_and_count_up() {
        let ctx = context_with_key(8 * 1024 * 1024);
        let mut net = small_network(30);
        let mirror = MirrorModel::allocate(&ctx, &net).unwrap();
        let ring = mirror.ring_depth() as u64;
        assert_eq!(mirror.epoch(&ctx).unwrap(), 0);
        assert_eq!(mirror.active_slot(&ctx).unwrap(), 0);
        assert_eq!(mirror.epochs(&ctx).unwrap(), Vec::<u64>::new());
        for i in 1..=4u64 {
            net.set_iteration(i);
            mirror.mirror_out(&ctx, &net).unwrap();
            assert_eq!(mirror.epoch(&ctx).unwrap(), i);
            assert_eq!(mirror.active_slot(&ctx).unwrap(), (i % ring) as usize);
            assert_eq!(mirror.iteration(&ctx).unwrap(), i);
            let expected: Vec<u64> = (i.saturating_sub(ring - 1).max(1)..=i).collect();
            assert_eq!(mirror.epochs(&ctx).unwrap(), expected);
        }
    }

    #[test]
    fn ring_depth_below_two_is_rejected() {
        let ctx = context_with_key(1024 * 1024);
        let net = small_network(31);
        for ring in [0usize, 1] {
            assert!(matches!(
                MirrorModel::allocate_with_ring(&ctx, &net, ring).unwrap_err(),
                PliniusError::InvalidConfig(_)
            ));
        }
    }

    #[test]
    fn deeper_ring_retains_and_restores_old_epochs() {
        let ctx = context_with_key(16 * 1024 * 1024);
        let mut net = small_network(32);
        let mirror = MirrorModel::allocate_with_ring(&ctx, &net, 4).unwrap();
        assert_eq!(mirror.ring_depth(), 4);
        // Commit 6 epochs with distinguishable weights: mutate one parameter per
        // epoch so every epoch's plaintext is unique.
        let mut weight_tags = Vec::new();
        for i in 1..=6u64 {
            net.set_iteration(i);
            let tag = i as f32 * 0.5;
            let layer = net
                .layers_mut()
                .iter_mut()
                .find(|l| l.is_trainable())
                .unwrap();
            let mut tensors: Vec<Vec<f32>> =
                layer.params().iter().map(|p| p.data.to_vec()).collect();
            tensors[0][0] = tag;
            layer.set_params(&tensors);
            weight_tags.push(tag);
            mirror.mirror_out(&ctx, &net).unwrap();
        }
        // The 4 newest epochs are retained; 1 and 2 are evicted.
        assert_eq!(mirror.epochs(&ctx).unwrap(), vec![3, 4, 5, 6]);
        for old in [1u64, 2] {
            assert!(matches!(
                mirror.restore_epoch(&ctx, &mut net, old).unwrap_err(),
                PliniusError::EpochNotRetained(e) if e == old
            ));
            assert!(matches!(
                mirror.epoch_iteration(&ctx, old).unwrap_err(),
                PliniusError::EpochNotRetained(_)
            ));
        }
        // Every retained epoch restores its own weights and iteration.
        for e in 3..=6u64 {
            assert_eq!(mirror.epoch_iteration(&ctx, e).unwrap(), e);
            let mut restored = small_network(33);
            let report = mirror.restore_epoch(&ctx, &mut restored, e).unwrap();
            assert_eq!(report.epoch, e);
            assert_eq!(report.iteration, e);
            assert_eq!(restored.iteration(), e);
            let first = restored
                .layers()
                .iter()
                .find(|l| l.is_trainable())
                .unwrap()
                .params()[0]
                .data[0];
            assert_eq!(first, weight_tags[(e - 1) as usize]);
        }
        // mirror_in still opens the newest epoch.
        let mut newest = small_network(34);
        let report = mirror.mirror_in(&ctx, &mut newest).unwrap();
        assert_eq!(report.epoch, 6);
        assert_eq!(report.iteration, 6);
    }

    #[test]
    fn sealed_bytes_are_identical_for_every_ring_depth() {
        // Twin deployments, same enclave RNG stream, same key, same model — only
        // the ring depth differs. The sealed blobs of the committed epoch must be
        // byte-for-byte identical: ciphertext is a pure function of
        // (key, IV, AAD, plaintext), independent of the PM slot layout.
        let run = |ring: usize| {
            let ctx = context_with_key(16 * 1024 * 1024);
            let mut net = small_network(35);
            net.set_iteration(4);
            let mirror = MirrorModel::allocate_with_ring(&ctx, &net, ring).unwrap();
            mirror.mirror_out(&ctx, &net).unwrap();
            sealed_tensor_bytes(&ctx, &mirror)
        };
        let two = run(2);
        assert_eq!(two, run(4));
        assert_eq!(two, run(8));
    }

    #[test]
    fn pipelined_mirror_out_matches_the_sync_path_bit_for_bit() {
        // Twin deployments, same enclave RNG stream: one saves synchronously, the
        // other through snapshot_out + drain. Committed epoch contents, header state
        // and restored weights must be identical; only timing may differ.
        let run_sync = || {
            let ctx = context_with_key(8 * 1024 * 1024);
            let mut net = small_network(40);
            net.set_iteration(9);
            let mirror = MirrorModel::allocate(&ctx, &net).unwrap();
            mirror.mirror_out(&ctx, &net).unwrap();
            (sealed_tensor_bytes(&ctx, &mirror), ctx, mirror)
        };
        let run_pipelined = || {
            let ctx = context_with_key(8 * 1024 * 1024);
            let mut net = small_network(40);
            net.set_iteration(9);
            let mirror = MirrorModel::allocate(&ctx, &net).unwrap();
            let (snap, prior) = mirror.snapshot_out(&ctx, &net).unwrap();
            assert!(prior.is_none());
            assert_eq!(snap.model_bytes, net.model_bytes());
            assert!(mirror.has_inflight());
            let report = mirror.drain(&ctx).unwrap().expect("one publish in flight");
            assert!(!mirror.has_inflight());
            assert_eq!(report.iteration, 9);
            assert_eq!(report.epoch, 1);
            assert_eq!(report.model_bytes, net.model_bytes());
            // Nothing left: drain is idempotent.
            assert!(mirror.drain(&ctx).unwrap().is_none());
            (sealed_tensor_bytes(&ctx, &mirror), ctx, mirror)
        };
        let (sync_bytes, _ctx_a, _mirror_a) = run_sync();
        let (pipe_bytes, ctx_b, mirror_b) = run_pipelined();
        assert_eq!(sync_bytes, pipe_bytes);
        assert_eq!(mirror_b.epoch(&ctx_b).unwrap(), 1);
        // And the pipelined image restores exactly.
        let mut restored = small_network(41);
        let report = mirror_b.mirror_in(&ctx_b, &mut restored).unwrap();
        assert_eq!(report.iteration, 9);
        assert_eq!(snapshot(&restored), snapshot(&small_network(40)));
    }

    #[test]
    fn overlap_join_hides_seal_time_behind_interleaved_charges() {
        let ctx = context_with_key(8 * 1024 * 1024);
        let mut net = small_network(50);
        let mirror = MirrorModel::allocate(&ctx, &net).unwrap();
        // First cycle: nothing charged between snapshot and drain — the whole
        // modeled sealing cost surfaces at the join.
        net.set_iteration(1);
        mirror.snapshot_out(&ctx, &net).unwrap();
        let serial = mirror.drain(&ctx).unwrap().unwrap();
        let seal_ns = ctx
            .cost_model()
            .crypto_ns(net.model_bytes() as u64, ctx.enclave().working_set());
        assert_eq!(serial.seal_join.nanos(), seal_ns);
        // Second cycle: charge more than the sealing lane between snapshot and
        // drain — the join must be free (fully hidden), the write still paid.
        net.set_iteration(2);
        mirror.snapshot_out(&ctx, &net).unwrap();
        ctx.clock().advance_ns(seal_ns * 3);
        let overlapped = mirror.drain(&ctx).unwrap().unwrap();
        assert_eq!(overlapped.seal_join.nanos(), 0);
        assert!(overlapped.write.nanos() > 0);
        assert_eq!(overlapped.epoch, 2);
    }

    #[test]
    fn a_dead_seal_worker_surfaces_an_error_then_the_pipeline_recovers() {
        let ctx = context_with_key(8 * 1024 * 1024);
        let mut net = small_network(70);
        let mirror = MirrorModel::allocate(&ctx, &net).unwrap();
        net.set_iteration(1);
        mirror.snapshot_out(&ctx, &net).unwrap();
        mirror.drain(&ctx).unwrap();
        // Kill the worker while idle: the next snapshot's seal job dies with it
        // (taking the in-flight staging buffers along).
        mirror.kill_seal_worker_for_test();
        net.set_iteration(2);
        mirror.snapshot_out(&ctx, &net).unwrap();
        let err = mirror.drain(&ctx).unwrap_err();
        assert!(matches!(err, PliniusError::Pipeline(_)), "{err}");
        // The failure must be an error, not a poisoned handle: the next snapshot
        // rebuilds the worker and fresh buffers, and publishing resumes.
        net.set_iteration(3);
        mirror.snapshot_out(&ctx, &net).unwrap();
        let report = mirror.drain(&ctx).unwrap().expect("publish in flight");
        assert_eq!(report.iteration, 3);
        assert_eq!(report.epoch, 2, "the lost publish committed nothing");
        assert_eq!(mirror.iteration(&ctx).unwrap(), 3);
    }

    #[test]
    fn crash_mid_publish_recovers_the_previous_complete_epoch() {
        let ctx = context_with_key(8 * 1024 * 1024);
        let mut net = small_network(60);
        net.set_iteration(1);
        let mirror = MirrorModel::allocate(&ctx, &net).unwrap();
        mirror.mirror_out(&ctx, &net).unwrap();
        let epoch1_bytes = sealed_tensor_bytes(&ctx, &mirror);
        // Crash in the middle of the bulk slot publish of the *next* mirror-out
        // (after 3 of the tensor writes, before the epoch flip).
        net.set_iteration(2);
        let err = {
            ctx.romulus()
                .inject_failure(plinius_romulus::FailPoint::AfterDirectPublishes(3));
            mirror.mirror_out(&ctx, &net).unwrap_err()
        };
        assert!(matches!(
            err,
            PliniusError::Romulus(plinius_romulus::RomulusError::InjectedCrash)
        ));
        // Power failure + restart over the surviving pool.
        let key = ctx.key().unwrap();
        let pool = ctx.pool().clone();
        drop((ctx, mirror));
        let mut rng = StdRng::seed_from_u64(7);
        pool.crash(&mut rng, plinius_pmem::CrashMode::ArbitraryEviction);
        let ctx2 = PliniusContext::open(pool, sim_clock::CostModel::sgx_eml_pm()).unwrap();
        ctx2.provision_key_directly(key);
        let mirror2 = MirrorModel::open(&ctx2).unwrap();
        // The previous complete epoch is intact — header, iteration and bytes.
        assert_eq!(mirror2.epoch(&ctx2).unwrap(), 1);
        assert_eq!(mirror2.iteration(&ctx2).unwrap(), 1);
        assert_eq!(sealed_tensor_bytes(&ctx2, &mirror2), epoch1_bytes);
        let mut restored = small_network(61);
        let report = mirror2.mirror_in(&ctx2, &mut restored).unwrap();
        assert_eq!(report.iteration, 1);
        assert_eq!(snapshot(&restored), snapshot(&small_network(60)));
        // And mirroring continues cleanly after recovery.
        restored.set_iteration(2);
        mirror2.mirror_out(&ctx2, &restored).unwrap();
        assert_eq!(mirror2.epoch(&ctx2).unwrap(), 2);
    }

    #[test]
    fn crash_inside_the_epoch_flip_recovers_the_previous_epoch() {
        let ctx = context_with_key(8 * 1024 * 1024);
        let mut net = small_network(62);
        net.set_iteration(1);
        let mirror = MirrorModel::allocate(&ctx, &net).unwrap();
        mirror.mirror_out(&ctx, &net).unwrap();
        let epoch1_bytes = sealed_tensor_bytes(&ctx, &mirror);
        // Crash after the first store of the flip transaction (iteration written,
        // epoch/active not yet): Romulus recovery must roll the header back.
        net.set_iteration(2);
        ctx.romulus()
            .inject_failure(plinius_romulus::FailPoint::AfterStores(1));
        assert!(mirror.mirror_out(&ctx, &net).is_err());
        let key = ctx.key().unwrap();
        let pool = ctx.pool().clone();
        drop((ctx, mirror));
        let mut rng = StdRng::seed_from_u64(8);
        pool.crash(&mut rng, plinius_pmem::CrashMode::DropUnflushed);
        let ctx2 = PliniusContext::open(pool, sim_clock::CostModel::sgx_eml_pm()).unwrap();
        ctx2.provision_key_directly(key);
        let mirror2 = MirrorModel::open(&ctx2).unwrap();
        assert_eq!(mirror2.epoch(&ctx2).unwrap(), 1);
        assert_eq!(mirror2.iteration(&ctx2).unwrap(), 1);
        assert_eq!(sealed_tensor_bytes(&ctx2, &mirror2), epoch1_bytes);
    }

    #[test]
    fn metadata_overhead_is_140_bytes_per_layer() {
        let ctx = context_with_key(8 * 1024 * 1024);
        let net = small_network(3);
        let mirror = MirrorModel::allocate(&ctx, &net).unwrap();
        assert_eq!(mirror.metadata_bytes(), mirror.num_layers() * 140);
    }

    #[test]
    fn mirror_survives_context_reopen() {
        let ctx = context_with_key(8 * 1024 * 1024);
        let mut net = small_network(4);
        net.set_iteration(7);
        let mirror = MirrorModel::allocate(&ctx, &net).unwrap();
        mirror.mirror_out(&ctx, &net).unwrap();
        let key = ctx.key().unwrap();
        let pool = ctx.pool().clone();
        drop((ctx, mirror));
        // "Restart": new enclave over the same pool, key re-provisioned via attestation
        // (provisioned directly here).
        let ctx2 = PliniusContext::open(pool, sim_clock::CostModel::sgx_eml_pm()).unwrap();
        ctx2.provision_key_directly(key);
        let mirror2 = MirrorModel::open(&ctx2).unwrap();
        let mut restored = small_network(5);
        let report = mirror2.mirror_in(&ctx2, &mut restored).unwrap();
        assert_eq!(report.iteration, 7);
        assert_eq!(snapshot(&restored), snapshot(&small_network(4)));
    }

    #[test]
    fn wrong_key_fails_authentication() {
        let ctx = context_with_key(8 * 1024 * 1024);
        let net = small_network(6);
        let mirror = MirrorModel::allocate(&ctx, &net).unwrap();
        mirror.mirror_out(&ctx, &net).unwrap();
        let mut rng = StdRng::seed_from_u64(1234);
        ctx.provision_key_directly(Key::generate_128(&mut rng));
        let mut other = small_network(7);
        assert!(matches!(
            mirror.mirror_in(&ctx, &mut other).unwrap_err(),
            PliniusError::Crypto(plinius_crypto::CryptoError::AuthenticationFailed)
        ));
    }

    #[test]
    fn mismatched_model_is_rejected() {
        let ctx = context_with_key(8 * 1024 * 1024);
        let net = small_network(8);
        let mirror = MirrorModel::allocate(&ctx, &net).unwrap();
        mirror.mirror_out(&ctx, &net).unwrap();
        // A deeper network does not fit the mirror.
        let mut rng = StdRng::seed_from_u64(9);
        let mut deeper = build_network(&mnist_cnn_config(3, 4, 4), &mut rng).unwrap();
        assert!(matches!(
            mirror.mirror_in(&ctx, &mut deeper).unwrap_err(),
            PliniusError::MirrorMismatch(_)
        ));
        assert!(matches!(
            mirror.mirror_out(&ctx, &deeper).unwrap_err(),
            PliniusError::MirrorMismatch(_)
        ));
    }

    #[test]
    fn open_without_mirror_errors() {
        let ctx = context_with_key(512 * 1024);
        assert!(matches!(
            MirrorModel::open(&ctx).unwrap_err(),
            PliniusError::NoMirrorModel
        ));
    }

    #[test]
    fn missing_key_is_reported() {
        let ctx = PliniusContext::small_test(8 * 1024 * 1024);
        let net = small_network(10);
        let mirror = MirrorModel::allocate(&ctx, &net).unwrap();
        assert!(matches!(
            mirror.mirror_out(&ctx, &net).unwrap_err(),
            PliniusError::KeyNotProvisioned
        ));
    }
}
