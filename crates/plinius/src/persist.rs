//! The open persistence API: an object-safe [`ModelPersistence`] trait that the trainer
//! drives through a `Box<dyn ModelPersistence>`, plus the built-in backends.
//!
//! The paper's core comparison (Fig. 7–10, Table I) is *PM mirroring vs SSD
//! checkpointing vs no persistence*. Instead of hard-coding that three-way choice into
//! the trainer, every persistence medium is an implementation of [`ModelPersistence`]:
//!
//! * [`PmMirrorBackend`] — Plinius' mirroring mechanism (encrypted mirror copies on PM,
//!   Algorithm 3);
//! * [`SsdCheckpointBackend`] — the baseline: encrypted checkpoints on a (simulated)
//!   SSD, written through `fwrite`/`fsync` ocalls;
//! * [`HybridTieredBackend`] — a tiered scheme the paper motivates but never builds:
//!   mirror to PM on every persist, and *demote* an encrypted checkpoint to the SSD
//!   at least every k iterations so the model survives even the loss of the PM module;
//! * [`NoOpBackend`] — no persistence (the "non-crash-resilient system" of Fig. 9b /
//!   Fig. 10c);
//! * [`FaultInjectingBackend`] — a test wrapper that fails the Nth persist/restore of
//!   any inner backend, used to prove that trainer errors propagate cleanly.
//!
//! New backends (async batching, remote replication, …) are one `impl ModelPersistence`
//! plus a [`PliniusBuilder::backend`](crate::PliniusBuilder::backend) call — no trainer
//! changes required.

use crate::mirror::{MirrorModel, PublishReport};
use crate::ssd::SsdCheckpointer;
use crate::{PliniusContext, PliniusError};
use plinius_darknet::Network;
use plinius_storage::{SimFileSystem, StorageProfile};
use sim_clock::{SimClock, StatsRegistry};
use std::sync::{Arc, Mutex, OnceLock, Weak};

/// Cumulative activity counters of one [`ModelPersistence`] backend.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PersistStats {
    /// Number of committed persist operations (synchronous `persist` calls plus
    /// pipelined publishes committed at a drain point).
    pub persists: u64,
    /// Number of successful `restore` calls.
    pub restores: u64,
    /// Plaintext model bytes written out across all persists.
    pub persisted_bytes: u64,
    /// Plaintext model bytes read back across all restores.
    pub restored_bytes: u64,
    /// Number of snapshot phases staged by [`ModelPersistence::persist_async`]
    /// (zero for backends without a pipelined path).
    pub snapshots: u64,
    /// Number of publish phases committed (every synchronous persist publishes
    /// immediately; a pipelined snapshot publishes at the next join).
    pub publishes: u64,
    /// Simulated nanoseconds the training lane had to *wait* for background
    /// publishes at their join points — the part of the sealing work that was not
    /// hidden behind compute. Zero in synchronous mode and when compute fully
    /// covers the mirror cost.
    pub overlap_wait_ns: u64,
    /// Name of the AES-GCM engine the sealing ran on (`"aesni+pclmul"`, `"scalar"`,
    /// `"reference"`). Empty until the backend has touched the crypto path;
    /// `"mixed"` when a composite backend merged tiers on different engines.
    pub engine: &'static str,
}

impl PersistStats {
    /// Component-wise sum of two counters (used by composite backends). The engine
    /// label is kept when the operands agree (or one is still unset) and collapses
    /// to `"mixed"` otherwise.
    pub fn merged(self, other: PersistStats) -> PersistStats {
        PersistStats {
            persists: self.persists + other.persists,
            restores: self.restores + other.restores,
            persisted_bytes: self.persisted_bytes + other.persisted_bytes,
            restored_bytes: self.restored_bytes + other.restored_bytes,
            snapshots: self.snapshots + other.snapshots,
            publishes: self.publishes + other.publishes,
            overlap_wait_ns: self.overlap_wait_ns + other.overlap_wait_ns,
            engine: match (self.engine, other.engine) {
                (e, "") => e,
                ("", e) => e,
                (a, b) if a == b => a,
                _ => "mixed",
            },
        }
    }
}

/// Where (and how) the enclave model is persisted during training.
///
/// The trait is object-safe: the trainer holds a `Box<dyn ModelPersistence>` and never
/// needs to know which medium it is talking to. A backend's lifecycle under the trainer
/// is:
///
/// 1. at construction, [`exists`](ModelPersistence::exists) is consulted once;
/// 2. if a persisted model exists, [`restore`](ModelPersistence::restore) is called to
///    load it into the enclave model; otherwise [`prepare`](ModelPersistence::prepare)
///    is called so the backend can set up whatever it needs (e.g. allocate the PM
///    mirror);
/// 3. during training, [`persist`](ModelPersistence::persist) is called after every
///    `mirror_frequency`-th iteration.
///
/// # Example: a custom backend
///
/// ```
/// use plinius::persist::{ModelPersistence, PersistStats};
/// use plinius::{PliniusBuilder, PliniusContext, PliniusError, TrainingSetup};
/// use plinius_darknet::Network;
///
/// /// Counts persists but stores nothing (a fancier `NoOpBackend`).
/// #[derive(Debug, Default)]
/// struct Counting {
///     persists: u64,
/// }
///
/// impl ModelPersistence for Counting {
///     fn label(&self) -> &str {
///         "counting"
///     }
///     fn exists(&self, _ctx: &PliniusContext) -> bool {
///         false
///     }
///     fn restore(
///         &mut self,
///         _ctx: &PliniusContext,
///         _network: &mut Network,
///     ) -> Result<u64, PliniusError> {
///         Err(PliniusError::NoMirrorModel)
///     }
///     fn persist(
///         &mut self,
///         _ctx: &PliniusContext,
///         _network: &Network,
///         _iteration: u64,
///     ) -> Result<(), PliniusError> {
///         self.persists += 1;
///         Ok(())
///     }
///     fn persist_stats(&self) -> PersistStats {
///         PersistStats {
///             persists: self.persists,
///             ..PersistStats::default()
///         }
///     }
/// }
///
/// let mut trainer = PliniusBuilder::new(TrainingSetup::small_test())
///     .backend(Counting::default())
///     .max_iterations(3)
///     .build()?;
/// trainer.run()?;
/// assert_eq!(trainer.persist_stats().persists, 3);
/// # Ok::<(), PliniusError>(())
/// ```
pub trait ModelPersistence: std::fmt::Debug {
    /// Short human-readable name of the backend (used in reports and logs).
    fn label(&self) -> &str;

    /// Whether a persisted model this backend could restore already exists.
    fn exists(&self, ctx: &PliniusContext) -> bool;

    /// One-time setup when training starts from scratch (no persisted model found).
    /// The default does nothing.
    ///
    /// # Errors
    ///
    /// Propagates backend-specific allocation errors.
    fn prepare(&mut self, _ctx: &PliniusContext, _network: &Network) -> Result<(), PliniusError> {
        Ok(())
    }

    /// Restores the persisted model into `network` (including its iteration counter) and
    /// returns the restored iteration.
    ///
    /// # Errors
    ///
    /// Propagates decryption/authentication, shape-mismatch and media errors.
    fn restore(&mut self, ctx: &PliniusContext, network: &mut Network)
        -> Result<u64, PliniusError>;

    /// Persists the current state of `network` at `iteration`.
    ///
    /// # Errors
    ///
    /// Propagates encryption and media errors.
    fn persist(
        &mut self,
        ctx: &PliniusContext,
        network: &Network,
        iteration: u64,
    ) -> Result<(), PliniusError>;

    /// Pipelined persist: stage a cheap snapshot of `network` now and let the
    /// expensive publish run in the background, to be committed at the next
    /// `persist_async` or [`drain`](ModelPersistence::drain) call.
    ///
    /// The default implementation simply falls back to the synchronous
    /// [`persist`](ModelPersistence::persist), so backends without a pipelined path
    /// (SSD checkpoints, no-op, custom backends) keep working unchanged under
    /// [`PipelineMode::Overlapped`](crate::PipelineMode).
    ///
    /// # Errors
    ///
    /// Propagates staging errors, plus any error of a previously enqueued publish
    /// that is joined by this call.
    fn persist_async(
        &mut self,
        ctx: &PliniusContext,
        network: &Network,
        iteration: u64,
    ) -> Result<(), PliniusError> {
        self.persist(ctx, network, iteration)
    }

    /// Joins and commits any in-flight background publish. Called by the trainer at
    /// the end of a run (and before restores); a no-op for synchronous backends —
    /// which is also the default implementation.
    ///
    /// # Errors
    ///
    /// Propagates errors of the joined publish.
    fn drain(&mut self, _ctx: &PliniusContext) -> Result<(), PliniusError> {
        Ok(())
    }

    /// Cumulative activity counters since this backend was created.
    fn persist_stats(&self) -> PersistStats;

    /// The live PM mirror behind this backend, if it has one (bound by
    /// [`prepare`](ModelPersistence::prepare) or the first persist/restore).
    /// [`None`] for backends without a PM mirror — the default. The serving tier
    /// clones the returned handle to hot-load committed epochs while training
    /// continues.
    fn mirror_model(&self) -> Option<&MirrorModel> {
        None
    }
}

// `ModelPersistence` must stay object-safe: the trainer owns a `Box<dyn ModelPersistence>`.
const _OBJECT_SAFE: fn(&dyn ModelPersistence) = |_| {};

/// One durable-SSD registry entry: the owning deployment's clock (weak), the tenant
/// the disk belongs to, and the disk itself.
type SsdEntry = (Weak<SimClock>, u64, SimFileSystem);

/// The per-deployment durable SSD registry, keyed by (simulation-clock identity,
/// tenant id). Every deployment — PM pool + enclave + clock — has exactly one clock
/// `Arc`, which survives simulated process restarts because the pool holds it; within
/// one deployment each tenant gets its own disk, so two tenants' declarative
/// `SsdCheckpoint`/`HybridTiered` specs never collide on checkpoint file names.
/// Entries are weak so a finished deployment's disks are reclaimed once its clock is
/// gone.
static SSD_REGISTRY: OnceLock<Mutex<Vec<SsdEntry>>> = OnceLock::new();

/// The simulated SSD of the context's deployment and tenant, charging its device
/// costs to the context's clock and statistics — the device every checkpoint-on-disk
/// backend writes to unless given one explicitly.
///
/// Like a real disk, the device is *durable across simulated process restarts*:
/// re-opening a context over the same PM pool (same simulation clock) returns the same
/// file system, so checkpoints written before a crash are still there afterwards. Two
/// independent deployments (different pools/clocks) get independent disks, and so do
/// two tenants of one deployment. To model separate devices within one tenant,
/// construct `SimFileSystem`s directly and use the backends' `on_filesystem`
/// constructors.
pub fn shared_ssd(ctx: &PliniusContext) -> SimFileSystem {
    let clock = ctx.clock();
    let tenant = ctx.tenant().raw();
    let registry = SSD_REGISTRY.get_or_init(|| Mutex::new(Vec::new()));
    let mut entries = registry.lock().expect("ssd registry poisoned");
    entries.retain(|(weak, _, _)| weak.strong_count() > 0);
    for (weak, entry_tenant, fs) in entries.iter() {
        if *entry_tenant != tenant {
            continue;
        }
        if let Some(existing) = weak.upgrade() {
            if Arc::ptr_eq(&existing, &clock) {
                return fs.rebound(clock, ctx.stats());
            }
        }
    }
    let fs = SimFileSystem::with_settings(
        ctx.cost_model().clone(),
        StorageProfile::Ssd,
        clock.clone(),
        ctx.stats(),
    );
    // The registry keeps only a *detached* handle (rebound onto a private clock), so it
    // holds no strong reference to the deployment clock and the eviction above really
    // fires once the deployment drops its pool/context/backends.
    entries.push((
        Arc::downgrade(&clock),
        tenant,
        fs.rebound(SimClock::new(), StatsRegistry::new()),
    ));
    fs
}

/// Declarative persistence spec, kept as a thin shim over the [`ModelPersistence`]
/// trait for one release.
///
/// New code should pass a backend straight to
/// [`PliniusBuilder::backend`](crate::PliniusBuilder::backend); this enum remains so
/// that [`TrainingSetup`](crate::TrainingSetup) stays `Clone`-able and declarative, and
/// maps onto trait objects via [`PersistenceBackend::instantiate`].
///
/// SSD-backed variants lazily bind to the deployment's durable [`shared_ssd`], which —
/// like a real disk — survives simulated process restarts: a trainer rebuilt from the
/// same declarative spec over the re-opened context finds the earlier checkpoint and
/// resumes. Use [`PersistenceBackend::instantiate_on`] or the backends'
/// `on_filesystem` constructors to target an explicitly separate device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistenceBackend {
    /// Plinius' mirroring mechanism: encrypted mirror copies on PM
    /// ([`PmMirrorBackend`]).
    PmMirror,
    /// The baseline: encrypted checkpoints on the SSD at the given path
    /// ([`SsdCheckpointBackend`]).
    SsdCheckpoint(String),
    /// Mirror to PM every persist and demote an encrypted checkpoint to the SSD once
    /// at least `demote_every` iterations have passed since the last demotion
    /// ([`HybridTieredBackend`]).
    HybridTiered {
        /// Checkpoint path on the simulated SSD.
        ssd_path: String,
        /// Demote to SSD at most every this many iterations (0 disables demotion).
        demote_every: u64,
    },
    /// No persistence (the "non-crash-resilient system" of Fig. 9b / Fig. 10c,
    /// [`NoOpBackend`]).
    None,
}

impl PersistenceBackend {
    /// Maps the spec onto a fresh trait object. SSD-backed specs bind (lazily, on first
    /// use) to the deployment's durable [`shared_ssd`], so their checkpoints survive
    /// simulated process restarts; use [`PersistenceBackend::instantiate_on`] to target
    /// a specific device instead.
    pub fn instantiate(&self) -> Box<dyn ModelPersistence> {
        self.instantiate_on(None)
    }

    /// Like [`PersistenceBackend::instantiate`], but with an explicit epoch-ring depth
    /// for the mirror-backed variants (ignored by SSD-only and no-op specs).
    pub fn instantiate_with_ring(&self, ring: usize) -> Box<dyn ModelPersistence> {
        self.instantiate_on_with_ring(None, ring)
    }

    /// Maps the spec onto a trait object, placing SSD-backed checkpoints on `ssd` when
    /// one is given. The crash/spot drivers use this so checkpoints written before a
    /// simulated process kill are still on the device afterwards.
    pub fn instantiate_on(&self, ssd: Option<&SimFileSystem>) -> Box<dyn ModelPersistence> {
        self.instantiate_on_with_ring(ssd, crate::mirror::ring_depth_from_env())
    }

    /// [`PersistenceBackend::instantiate_on`] with an explicit epoch-ring depth for the
    /// mirror-backed variants.
    pub fn instantiate_on_with_ring(
        &self,
        ssd: Option<&SimFileSystem>,
        ring: usize,
    ) -> Box<dyn ModelPersistence> {
        match self {
            PersistenceBackend::PmMirror => Box::new(PmMirrorBackend::with_ring(ring)),
            PersistenceBackend::SsdCheckpoint(path) => Box::new(match ssd {
                Some(fs) => SsdCheckpointBackend::on_filesystem(fs.clone(), path.clone()),
                None => SsdCheckpointBackend::new(path.clone()),
            }),
            PersistenceBackend::HybridTiered {
                ssd_path,
                demote_every,
            } => Box::new(
                match ssd {
                    Some(fs) => HybridTieredBackend::on_filesystem(
                        fs.clone(),
                        ssd_path.clone(),
                        *demote_every,
                    ),
                    None => HybridTieredBackend::new(ssd_path.clone(), *demote_every),
                }
                .with_ring(ring),
            ),
            PersistenceBackend::None => Box::new(NoOpBackend),
        }
    }

    /// Whether this spec writes to secondary storage (and therefore needs a durable
    /// simulated SSD across restarts).
    pub fn uses_ssd(&self) -> bool {
        matches!(
            self,
            PersistenceBackend::SsdCheckpoint(_) | PersistenceBackend::HybridTiered { .. }
        )
    }
}

/// Plinius' mirroring mechanism as a [`ModelPersistence`] backend: encrypted mirror
/// copies on PM, synchronised within Romulus durable transactions (Algorithm 3).
#[derive(Debug)]
pub struct PmMirrorBackend {
    mirror: Option<MirrorModel>,
    stats: PersistStats,
    ring_depth: usize,
}

impl Default for PmMirrorBackend {
    fn default() -> Self {
        Self::new()
    }
}

impl PmMirrorBackend {
    /// Creates an unbound backend; the mirror is opened or allocated on first use, with
    /// the epoch-ring depth taken from `PLINIUS_RING` (default 2).
    pub fn new() -> Self {
        Self::with_ring(crate::mirror::ring_depth_from_env())
    }

    /// Creates an unbound backend whose freshly allocated mirrors retain the `ring`
    /// newest epochs. When the backend opens an existing mirror instead, the depth
    /// recorded in its PM header wins.
    pub fn with_ring(ring: usize) -> Self {
        PmMirrorBackend {
            mirror: None,
            stats: PersistStats::default(),
            ring_depth: ring,
        }
    }

    /// The mirror handle, opening the existing PM mirror or allocating a fresh one.
    fn mirror(
        &mut self,
        ctx: &PliniusContext,
        network: &Network,
    ) -> Result<&MirrorModel, PliniusError> {
        if self.mirror.is_none() {
            self.mirror = Some(if MirrorModel::exists(ctx) {
                MirrorModel::open(ctx)?
            } else {
                MirrorModel::allocate_with_ring(ctx, network, self.ring_depth)?
            });
        }
        Ok(self.mirror.as_ref().expect("mirror just set"))
    }

    /// Books one committed publish (synchronous or joined from the pipeline).
    fn record_publish(&mut self, report: &PublishReport) {
        self.stats.persists += 1;
        self.stats.publishes += 1;
        self.stats.persisted_bytes += report.model_bytes as u64;
        self.stats.overlap_wait_ns += report.seal_join.nanos();
    }
}

impl ModelPersistence for PmMirrorBackend {
    fn label(&self) -> &str {
        "pm-mirror"
    }

    fn exists(&self, ctx: &PliniusContext) -> bool {
        MirrorModel::exists(ctx)
    }

    fn prepare(&mut self, ctx: &PliniusContext, network: &Network) -> Result<(), PliniusError> {
        self.mirror(ctx, network)?;
        Ok(())
    }

    fn restore(
        &mut self,
        ctx: &PliniusContext,
        network: &mut Network,
    ) -> Result<u64, PliniusError> {
        // A pending background publish must reach PM before the mirror is read back.
        self.drain(ctx)?;
        if self.mirror.is_none() {
            self.mirror = Some(MirrorModel::open(ctx)?);
        }
        let mirror = self.mirror.as_ref().expect("mirror just set");
        let report = mirror.mirror_in(ctx, network)?;
        self.stats.restores += 1;
        self.stats.restored_bytes += report.model_bytes as u64;
        self.stats.engine = ctx.engine_name();
        Ok(report.iteration)
    }

    fn persist(
        &mut self,
        ctx: &PliniusContext,
        network: &Network,
        _iteration: u64,
    ) -> Result<(), PliniusError> {
        let report = self.mirror(ctx, network)?.mirror_out(ctx, network)?;
        self.stats.persists += 1;
        self.stats.publishes += 1;
        self.stats.persisted_bytes += report.model_bytes as u64;
        self.stats.engine = ctx.engine_name();
        Ok(())
    }

    fn persist_async(
        &mut self,
        ctx: &PliniusContext,
        network: &Network,
        _iteration: u64,
    ) -> Result<(), PliniusError> {
        let (_, prior) = self.mirror(ctx, network)?.snapshot_out(ctx, network)?;
        self.stats.snapshots += 1;
        self.stats.engine = ctx.engine_name();
        if let Some(report) = prior {
            self.record_publish(&report);
        }
        Ok(())
    }

    fn drain(&mut self, ctx: &PliniusContext) -> Result<(), PliniusError> {
        if let Some(mirror) = self.mirror.as_ref() {
            if let Some(report) = mirror.drain(ctx)? {
                self.record_publish(&report);
                self.stats.engine = ctx.engine_name();
            }
        }
        Ok(())
    }

    fn persist_stats(&self) -> PersistStats {
        self.stats
    }

    fn mirror_model(&self) -> Option<&MirrorModel> {
        self.mirror.as_ref()
    }
}

/// The baseline as a [`ModelPersistence`] backend: encrypted model checkpoints on a
/// (simulated) SSD, written through `fwrite`/`fsync` ocalls.
#[derive(Debug)]
pub struct SsdCheckpointBackend {
    path: String,
    fs: Option<SimFileSystem>,
    stats: PersistStats,
}

impl SsdCheckpointBackend {
    /// Creates a backend writing to `path` on the deployment's durable [`shared_ssd`]
    /// (bound lazily on first use; survives simulated process restarts).
    pub fn new(path: impl Into<String>) -> Self {
        SsdCheckpointBackend {
            path: path.into(),
            fs: None,
            stats: PersistStats::default(),
        }
    }

    /// Creates a backend writing to `path` on an existing simulated SSD. Use this when
    /// the device must outlive one trainer (e.g. crash/resume across processes).
    pub fn on_filesystem(fs: SimFileSystem, path: impl Into<String>) -> Self {
        SsdCheckpointBackend {
            path: path.into(),
            fs: Some(fs),
            stats: PersistStats::default(),
        }
    }

    /// The simulated SSD this backend writes to, if it has been bound yet.
    pub fn filesystem(&self) -> Option<&SimFileSystem> {
        self.fs.as_ref()
    }

    /// A checkpointer over this backend's file system, binding the deployment's
    /// durable shared SSD if none was supplied.
    fn checkpointer(&mut self, ctx: &PliniusContext) -> SsdCheckpointer {
        let fs = self.fs.get_or_insert_with(|| shared_ssd(ctx)).clone();
        SsdCheckpointer::new(fs, self.path.clone())
    }
}

impl ModelPersistence for SsdCheckpointBackend {
    fn label(&self) -> &str {
        "ssd-checkpoint"
    }

    fn exists(&self, ctx: &PliniusContext) -> bool {
        // An unbound backend sits on the deployment's durable shared SSD, which may
        // already hold a checkpoint from before a simulated restart.
        match &self.fs {
            Some(fs) => fs.exists(&self.path),
            None => shared_ssd(ctx).exists(&self.path),
        }
    }

    fn restore(
        &mut self,
        ctx: &PliniusContext,
        network: &mut Network,
    ) -> Result<u64, PliniusError> {
        let report = self.checkpointer(ctx).restore(ctx, network)?;
        self.stats.restores += 1;
        self.stats.restored_bytes += report.model_bytes as u64;
        self.stats.engine = ctx.engine_name();
        Ok(report.iteration)
    }

    fn persist(
        &mut self,
        ctx: &PliniusContext,
        network: &Network,
        _iteration: u64,
    ) -> Result<(), PliniusError> {
        let report = self.checkpointer(ctx).save(ctx, network)?;
        self.stats.persists += 1;
        self.stats.persisted_bytes += report.model_bytes as u64;
        self.stats.engine = ctx.engine_name();
        Ok(())
    }

    fn persist_stats(&self) -> PersistStats {
        self.stats
    }
}

/// Tiered persistence: mirror to PM on every persist, and additionally *demote* an
/// encrypted checkpoint to the SSD once at least `demote_every` iterations have passed
/// since the last demotion.
///
/// Demotion is evaluated on each `persist` call, so it composes with a sparse trainer
/// `mirror_frequency`: with `mirror_frequency: 10` and `demote_every: 5`, every persist
/// (iterations 10, 20, …) also demotes — the SSD recovery point is never more than one
/// persist older than the mirror, rather than silently requiring iterations divisible
/// by both intervals.
///
/// This covers a failure mode the pure mirror cannot: if the PM module itself is lost
/// (device replacement, pool corruption), the model is still recoverable from the last
/// demoted SSD checkpoint. Restores prefer the PM mirror (fast path); falling back to
/// the SSD checkpoint re-allocates and re-populates the mirror so training continues
/// with full PM protection.
#[derive(Debug)]
pub struct HybridTieredBackend {
    mirror: PmMirrorBackend,
    ssd: SsdCheckpointBackend,
    demote_every: u64,
    demotions: u64,
    last_demoted: u64,
}

impl HybridTieredBackend {
    /// Creates a hybrid backend demoting to `ssd_path` on the deployment's durable
    /// [`shared_ssd`] every `demote_every` iterations (`0` disables demotion, making
    /// this equivalent to [`PmMirrorBackend`]).
    pub fn new(ssd_path: impl Into<String>, demote_every: u64) -> Self {
        Self::with_ssd(SsdCheckpointBackend::new(ssd_path), demote_every)
    }

    /// Creates a hybrid backend demoting onto an existing simulated SSD (one that must
    /// survive process restarts).
    pub fn on_filesystem(
        fs: SimFileSystem,
        ssd_path: impl Into<String>,
        demote_every: u64,
    ) -> Self {
        Self::with_ssd(
            SsdCheckpointBackend::on_filesystem(fs, ssd_path),
            demote_every,
        )
    }

    fn with_ssd(ssd: SsdCheckpointBackend, demote_every: u64) -> Self {
        HybridTieredBackend {
            mirror: PmMirrorBackend::new(),
            ssd,
            demote_every,
            demotions: 0,
            last_demoted: 0,
        }
    }

    /// Sets the epoch-ring depth used when the PM tier allocates a fresh mirror.
    #[must_use]
    pub fn with_ring(mut self, ring: usize) -> Self {
        self.mirror = PmMirrorBackend::with_ring(ring);
        self
    }

    /// Number of checkpoints demoted to the SSD so far.
    pub fn demotions(&self) -> u64 {
        self.demotions
    }

    /// The simulated SSD the demoted checkpoints land on, if bound yet.
    pub fn filesystem(&self) -> Option<&SimFileSystem> {
        self.ssd.filesystem()
    }

    /// Demotes an encrypted checkpoint to the SSD if the demotion interval elapsed.
    fn demote_if_due(
        &mut self,
        ctx: &PliniusContext,
        network: &Network,
        iteration: u64,
    ) -> Result<(), PliniusError> {
        if self.demote_every > 0 && iteration.saturating_sub(self.last_demoted) >= self.demote_every
        {
            self.ssd.persist(ctx, network, iteration)?;
            self.demotions += 1;
            self.last_demoted = iteration;
        }
        Ok(())
    }
}

impl ModelPersistence for HybridTieredBackend {
    fn label(&self) -> &str {
        "hybrid-tiered"
    }

    fn exists(&self, ctx: &PliniusContext) -> bool {
        self.mirror.exists(ctx) || self.ssd.exists(ctx)
    }

    fn prepare(&mut self, ctx: &PliniusContext, network: &Network) -> Result<(), PliniusError> {
        self.mirror.prepare(ctx, network)
    }

    fn restore(
        &mut self,
        ctx: &PliniusContext,
        network: &mut Network,
    ) -> Result<u64, PliniusError> {
        if self.mirror.exists(ctx) {
            return self.mirror.restore(ctx, network);
        }
        // PM is gone but the demoted checkpoint survived on the SSD: recover from it,
        // then immediately re-establish the PM mirror so the fast tier is valid again
        // even if the very next crash hits before the first post-recovery persist.
        let iteration = self.ssd.restore(ctx, network)?;
        self.mirror.prepare(ctx, network)?;
        self.mirror.persist(ctx, network, iteration)?;
        // The SSD already holds exactly this iteration; start the next demotion
        // interval from here. (After a mirror restore `last_demoted` stays 0, so a
        // possibly-stale SSD copy is refreshed at the first eligible persist.)
        self.last_demoted = iteration;
        Ok(iteration)
    }

    fn persist(
        &mut self,
        ctx: &PliniusContext,
        network: &Network,
        iteration: u64,
    ) -> Result<(), PliniusError> {
        self.mirror.persist(ctx, network, iteration)?;
        self.demote_if_due(ctx, network, iteration)
    }

    fn persist_async(
        &mut self,
        ctx: &PliniusContext,
        network: &Network,
        iteration: u64,
    ) -> Result<(), PliniusError> {
        // The PM tier pipelines; the (much rarer) SSD demotion stays synchronous.
        self.mirror.persist_async(ctx, network, iteration)?;
        self.demote_if_due(ctx, network, iteration)
    }

    fn drain(&mut self, ctx: &PliniusContext) -> Result<(), PliniusError> {
        self.mirror.drain(ctx)
    }

    fn persist_stats(&self) -> PersistStats {
        self.mirror.persist_stats().merged(self.ssd.persist_stats())
    }

    fn mirror_model(&self) -> Option<&MirrorModel> {
        self.mirror.mirror_model()
    }
}

/// No persistence at all: every restart begins from freshly initialised weights (the
/// paper's non-crash-resilient comparison system).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoOpBackend;

impl ModelPersistence for NoOpBackend {
    fn label(&self) -> &str {
        "none"
    }

    fn exists(&self, _ctx: &PliniusContext) -> bool {
        false
    }

    fn restore(
        &mut self,
        _ctx: &PliniusContext,
        _network: &mut Network,
    ) -> Result<u64, PliniusError> {
        Err(PliniusError::NoMirrorModel)
    }

    fn persist(
        &mut self,
        _ctx: &PliniusContext,
        _network: &Network,
        _iteration: u64,
    ) -> Result<(), PliniusError> {
        Ok(())
    }

    fn persist_stats(&self) -> PersistStats {
        PersistStats::default()
    }
}

/// Test wrapper around any [`ModelPersistence`] backend that fails the Nth persist
/// and/or restore call with [`PliniusError::InjectedFault`], leaving the inner backend
/// untouched on the failing call.
///
/// Used to prove that mid-run persistence errors propagate cleanly out of the trainer
/// instead of corrupting the persisted model (see the `persist` module tests).
#[derive(Debug)]
pub struct FaultInjectingBackend {
    inner: Box<dyn ModelPersistence>,
    label: String,
    fail_persist_at: Option<u64>,
    fail_restore_at: Option<u64>,
    persist_calls: u64,
    restore_calls: u64,
}

impl FaultInjectingBackend {
    /// Wraps `inner`; without further configuration the wrapper is transparent.
    pub fn wrap(inner: impl ModelPersistence + 'static) -> Self {
        let label = format!("fault-injecting({})", inner.label());
        FaultInjectingBackend {
            inner: Box::new(inner),
            label,
            fail_persist_at: None,
            fail_restore_at: None,
            persist_calls: 0,
            restore_calls: 0,
        }
    }

    /// Fails the `n`-th (1-based) `persist` call.
    pub fn fail_nth_persist(mut self, n: u64) -> Self {
        self.fail_persist_at = Some(n);
        self
    }

    /// Fails the `n`-th (1-based) `restore` call.
    pub fn fail_nth_restore(mut self, n: u64) -> Self {
        self.fail_restore_at = Some(n);
        self
    }

    /// Books one persist attempt against the shared 1-based fail-nth schedule —
    /// `persist` and `persist_async` count on the same sequence, so a wrapper
    /// behaves identically in both pipeline modes.
    fn check_persist_fault(&mut self, iteration: u64) -> Result<(), PliniusError> {
        self.persist_calls += 1;
        if self.fail_persist_at == Some(self.persist_calls) {
            return Err(PliniusError::InjectedFault(format!(
                "injected persist fault (call {}, iteration {iteration})",
                self.persist_calls
            )));
        }
        Ok(())
    }
}

impl ModelPersistence for FaultInjectingBackend {
    fn label(&self) -> &str {
        &self.label
    }

    fn exists(&self, ctx: &PliniusContext) -> bool {
        self.inner.exists(ctx)
    }

    fn prepare(&mut self, ctx: &PliniusContext, network: &Network) -> Result<(), PliniusError> {
        self.inner.prepare(ctx, network)
    }

    fn restore(
        &mut self,
        ctx: &PliniusContext,
        network: &mut Network,
    ) -> Result<u64, PliniusError> {
        self.restore_calls += 1;
        if self.fail_restore_at == Some(self.restore_calls) {
            return Err(PliniusError::InjectedFault(format!(
                "injected restore fault (call {})",
                self.restore_calls
            )));
        }
        self.inner.restore(ctx, network)
    }

    fn persist(
        &mut self,
        ctx: &PliniusContext,
        network: &Network,
        iteration: u64,
    ) -> Result<(), PliniusError> {
        self.check_persist_fault(iteration)?;
        self.inner.persist(ctx, network, iteration)
    }

    fn persist_async(
        &mut self,
        ctx: &PliniusContext,
        network: &Network,
        iteration: u64,
    ) -> Result<(), PliniusError> {
        self.check_persist_fault(iteration)?;
        self.inner.persist_async(ctx, network, iteration)
    }

    fn drain(&mut self, ctx: &PliniusContext) -> Result<(), PliniusError> {
        self.inner.drain(ctx)
    }

    fn persist_stats(&self) -> PersistStats {
        self.inner.persist_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pmdata::PmDataset;
    use crate::trainer::{PliniusBuilder, TrainingSetup};
    use plinius_crypto::Key;
    use plinius_darknet::config::{build_network, mnist_cnn_config};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn context_with_key(key: &Key) -> PliniusContext {
        let ctx = PliniusContext::small_test(16 * 1024 * 1024);
        ctx.provision_key_directly(key.clone());
        ctx
    }

    fn test_key(seed: u64) -> Key {
        let mut rng = StdRng::seed_from_u64(seed);
        Key::generate_128(&mut rng)
    }

    fn small_network(seed: u64) -> Network {
        let mut rng = StdRng::seed_from_u64(seed);
        build_network(&mnist_cnn_config(2, 4, 4), &mut rng).unwrap()
    }

    fn weights(net: &Network) -> Vec<f32> {
        net.layers()
            .iter()
            .filter(|l| l.is_trainable())
            .flat_map(|l| l.params()[0].data.to_vec())
            .collect()
    }

    /// Deploys a small-test setup: pool created, key provisioned, dataset in PM.
    fn deploy(setup: &TrainingSetup, key: &Key) -> PliniusContext {
        let ctx = PliniusContext::create(setup.cost.clone(), setup.pm_bytes).unwrap();
        ctx.provision_key_directly(key.clone());
        PmDataset::load(&ctx, &setup.dataset).unwrap();
        ctx
    }

    #[test]
    fn enum_shim_maps_onto_trait_objects() {
        let specs: [(PersistenceBackend, &str); 4] = [
            (PersistenceBackend::PmMirror, "pm-mirror"),
            (
                PersistenceBackend::SsdCheckpoint("c.bin".into()),
                "ssd-checkpoint",
            ),
            (
                PersistenceBackend::HybridTiered {
                    ssd_path: "t.bin".into(),
                    demote_every: 4,
                },
                "hybrid-tiered",
            ),
            (PersistenceBackend::None, "none"),
        ];
        for (spec, label) in specs {
            assert_eq!(spec.instantiate().label(), label);
        }
        assert!(!PersistenceBackend::PmMirror.uses_ssd());
        assert!(PersistenceBackend::SsdCheckpoint("c".into()).uses_ssd());
    }

    #[test]
    fn hybrid_mirrors_every_persist_and_demotes_every_kth() {
        let key = test_key(1);
        let ctx = context_with_key(&key);
        let fs = shared_ssd(&ctx);
        let mut net = small_network(2);
        let mut backend = HybridTieredBackend::on_filesystem(fs.clone(), "tier.ckpt", 2);
        assert!(!backend.exists(&ctx));
        backend.prepare(&ctx, &net).unwrap();
        for i in 1..=5u64 {
            net.set_iteration(i);
            backend.persist(&ctx, &net, i).unwrap();
        }
        // Mirror written 5 times, SSD only at iterations 2 and 4.
        assert_eq!(backend.demotions(), 2);
        assert_eq!(backend.persist_stats().persists, 7);
        assert!(MirrorModel::exists(&ctx));
        assert!(fs.exists("tier.ckpt"));
    }

    #[test]
    fn hybrid_demotes_under_a_sparse_mirror_frequency() {
        // With mirror_frequency 10 the backend only sees persists at 10, 20, …; a
        // demote_every of 5 must not require iterations divisible by both (which
        // would double the PM-loss exposure window) — every persist demotes.
        let key = test_key(30);
        let ctx = context_with_key(&key);
        let fs = shared_ssd(&ctx);
        let mut net = small_network(31);
        let mut backend = HybridTieredBackend::on_filesystem(fs, "tier.ckpt", 5);
        backend.prepare(&ctx, &net).unwrap();
        for iteration in [10u64, 20, 30] {
            net.set_iteration(iteration);
            backend.persist(&ctx, &net, iteration).unwrap();
        }
        assert_eq!(backend.demotions(), 3);
    }

    #[test]
    fn hybrid_restore_prefers_the_pm_mirror() {
        let key = test_key(3);
        let ctx = context_with_key(&key);
        let fs = shared_ssd(&ctx);
        let mut net = small_network(4);
        let mut backend = HybridTieredBackend::on_filesystem(fs.clone(), "tier.ckpt", 3);
        backend.prepare(&ctx, &net).unwrap();
        // Mirror is at iteration 4; the last demoted checkpoint is at 3.
        for i in 1..=4u64 {
            net.set_iteration(i);
            backend.persist(&ctx, &net, i).unwrap();
        }
        let mut restored = small_network(5);
        let mut backend2 = HybridTieredBackend::on_filesystem(fs, "tier.ckpt", 3);
        assert!(backend2.exists(&ctx));
        let iteration = backend2.restore(&ctx, &mut restored).unwrap();
        assert_eq!(
            iteration, 4,
            "mirror (fast tier) must win over the SSD copy"
        );
        assert_eq!(weights(&restored), weights(&net));
    }

    #[test]
    fn hybrid_recovers_from_ssd_when_pm_is_lost() {
        let key = test_key(6);
        let ctx = context_with_key(&key);
        let fs = shared_ssd(&ctx);
        let mut net = small_network(7);
        let mut backend = HybridTieredBackend::on_filesystem(fs.clone(), "tier.ckpt", 2);
        backend.prepare(&ctx, &net).unwrap();
        for i in 1..=4u64 {
            net.set_iteration(i);
            backend.persist(&ctx, &net, i).unwrap();
        }
        // The PM module is replaced: a brand-new pool has no mirror, but the SSD —
        // a separate device — still holds the iteration-4 checkpoint.
        let ctx2 = context_with_key(&key);
        let mut backend2 = HybridTieredBackend::on_filesystem(fs, "tier.ckpt", 2);
        assert!(backend2.exists(&ctx2));
        let mut restored = small_network(8);
        let iteration = backend2.restore(&ctx2, &mut restored).unwrap();
        assert_eq!(iteration, 4);
        assert_eq!(weights(&restored), weights(&net));
        // Recovery re-established the PM mirror (promotion), so the fast tier is
        // immediately valid again on the new module.
        assert!(MirrorModel::exists(&ctx2));
        let mut from_mirror = small_network(9);
        let mirror = MirrorModel::open(&ctx2).unwrap();
        let report = mirror.mirror_in(&ctx2, &mut from_mirror).unwrap();
        assert_eq!(report.iteration, 4);
        assert_eq!(weights(&from_mirror), weights(&net));
    }

    #[test]
    fn declarative_ssd_specs_survive_restarts_through_the_shared_device() {
        // Regression for the documented fresh-simulated-SSD-per-instantiate caveat:
        // a trainer rebuilt from the same declarative spec after a simulated process
        // restart must find the earlier checkpoint on the deployment's durable SSD
        // and resume, exactly like a builder-constructed `on_filesystem` backend.
        for backend in [
            PersistenceBackend::SsdCheckpoint("declarative.ckpt".into()),
            PersistenceBackend::HybridTiered {
                ssd_path: "declarative-tier.ckpt".into(),
                demote_every: 1,
            },
        ] {
            let mut setup = TrainingSetup::small_test();
            setup.trainer.max_iterations = 8;
            setup.backend = backend.clone();
            let key = test_key(41);
            let ctx = deploy(&setup, &key);
            let pool = ctx.pool().clone();
            let mut trainer = PliniusBuilder::new(setup.clone())
                .context(ctx)
                .build()
                .unwrap();
            trainer.run_at_most(5).unwrap();
            let weights_before = weights(trainer.network());
            drop(trainer);
            // Simulated process restart over the surviving pool. The pure SSD spec has
            // no PM mirror at all, so resuming at iteration 5 proves the declarative
            // checkpoint genuinely survived on the shared device.
            let ctx2 = PliniusContext::open(pool, setup.cost.clone()).unwrap();
            ctx2.provision_key_directly(key);
            let resumed = PliniusBuilder::new(setup.clone())
                .context(ctx2)
                .build()
                .unwrap();
            assert_eq!(
                resumed.iteration(),
                5,
                "{backend:?} lost its checkpoint across the restart"
            );
            assert_eq!(weights(resumed.network()), weights_before, "{backend:?}");
        }
    }

    #[test]
    fn ssd_registry_holds_no_strong_reference_to_dead_deployments() {
        // Regression: the registry must keep only a detached handle, otherwise every
        // deployment's clock (and its entry, and its checkpoint bytes) would leak for
        // the process lifetime.
        let key = test_key(60);
        let ctx = context_with_key(&key);
        let fs = shared_ssd(&ctx);
        fs.write("leak-probe", b"1");
        // Same deployment -> same disk.
        assert!(shared_ssd(&ctx).exists("leak-probe"));
        let weak_clock = std::sync::Arc::downgrade(&ctx.clock());
        drop((fs, ctx));
        assert_eq!(
            weak_clock.strong_count(),
            0,
            "the SSD registry leaked a strong reference to the deployment clock"
        );
    }

    #[test]
    fn pipelined_persist_counts_snapshots_and_publishes() {
        let key = test_key(70);
        let ctx = context_with_key(&key);
        let mut net = small_network(71);
        let mut backend = PmMirrorBackend::new();
        backend.prepare(&ctx, &net).unwrap();
        for i in 1..=4u64 {
            net.set_iteration(i);
            backend.persist_async(&ctx, &net, i).unwrap();
        }
        // Three of the four snapshots have been joined by the next persist_async;
        // the fourth is still in flight.
        let mid = backend.persist_stats();
        assert_eq!(mid.snapshots, 4);
        assert_eq!(mid.publishes, 3);
        assert_eq!(mid.persists, 3);
        backend.drain(&ctx).unwrap();
        let done = backend.persist_stats();
        assert_eq!(done.snapshots, 4);
        assert_eq!(done.publishes, 4);
        assert_eq!(done.persists, 4);
        assert_eq!(done.persisted_bytes, 4 * net.model_bytes() as u64);
        // Draining twice is a no-op.
        backend.drain(&ctx).unwrap();
        assert_eq!(backend.persist_stats(), done);
        // The drained state restores the last iteration.
        let mut restored = small_network(72);
        let iteration = backend.restore(&ctx, &mut restored).unwrap();
        assert_eq!(iteration, 4);
        assert_eq!(weights(&restored), weights(&net));
    }

    #[test]
    fn restore_joins_a_pending_publish_first() {
        let key = test_key(73);
        let ctx = context_with_key(&key);
        let mut net = small_network(74);
        let mut backend = PmMirrorBackend::new();
        backend.prepare(&ctx, &net).unwrap();
        net.set_iteration(6);
        backend.persist_async(&ctx, &net, 6).unwrap();
        // No explicit drain: restore must see iteration 6, not the empty mirror.
        let mut restored = small_network(75);
        let iteration = backend.restore(&ctx, &mut restored).unwrap();
        assert_eq!(iteration, 6);
        assert_eq!(weights(&restored), weights(&net));
        assert_eq!(backend.persist_stats().publishes, 1);
    }

    #[test]
    fn synchronous_persists_count_as_publishes_without_snapshots() {
        let key = test_key(76);
        let ctx = context_with_key(&key);
        let mut net = small_network(77);
        let mut backend = PmMirrorBackend::new();
        backend.prepare(&ctx, &net).unwrap();
        net.set_iteration(1);
        backend.persist(&ctx, &net, 1).unwrap();
        let stats = backend.persist_stats();
        assert_eq!(stats.persists, 1);
        assert_eq!(stats.publishes, 1);
        assert_eq!(stats.snapshots, 0);
        assert_eq!(stats.overlap_wait_ns, 0);
    }

    #[test]
    fn persist_async_falls_back_to_sync_for_plain_backends() {
        // Backends that do not override the pipelined path keep working under
        // Overlapped mode via the default sync fallback.
        let key = test_key(78);
        let ctx = context_with_key(&key);
        let fs = shared_ssd(&ctx);
        let mut net = small_network(79);
        let mut backend = SsdCheckpointBackend::on_filesystem(fs.clone(), "fallback.ckpt");
        net.set_iteration(3);
        backend.persist_async(&ctx, &net, 3).unwrap();
        backend.drain(&ctx).unwrap();
        let stats = backend.persist_stats();
        assert_eq!(stats.persists, 1);
        assert_eq!(stats.snapshots, 0);
        assert_eq!(stats.publishes, 0);
        assert!(fs.exists("fallback.ckpt"));
    }

    #[test]
    fn merged_stats_cover_the_pipeline_counters() {
        let a = PersistStats {
            persists: 1,
            snapshots: 2,
            publishes: 3,
            overlap_wait_ns: 10,
            ..PersistStats::default()
        };
        let b = PersistStats {
            restores: 4,
            snapshots: 1,
            publishes: 1,
            overlap_wait_ns: 5,
            ..PersistStats::default()
        };
        let m = a.merged(b);
        assert_eq!(m.persists, 1);
        assert_eq!(m.restores, 4);
        assert_eq!(m.snapshots, 3);
        assert_eq!(m.publishes, 4);
        assert_eq!(m.overlap_wait_ns, 15);
    }

    #[test]
    fn merged_stats_engine_label_combines_sensibly() {
        let on = |engine| PersistStats {
            engine,
            ..PersistStats::default()
        };
        assert_eq!(on("scalar").merged(on("")).engine, "scalar");
        assert_eq!(on("").merged(on("aesni+pclmul")).engine, "aesni+pclmul");
        assert_eq!(on("scalar").merged(on("scalar")).engine, "scalar");
        assert_eq!(on("scalar").merged(on("reference")).engine, "mixed");
    }

    #[test]
    fn hybrid_pipelines_the_mirror_and_demotes_synchronously() {
        let key = test_key(80);
        let ctx = context_with_key(&key);
        let fs = shared_ssd(&ctx);
        let mut net = small_network(81);
        let mut backend = HybridTieredBackend::on_filesystem(fs.clone(), "tier-async.ckpt", 2);
        backend.prepare(&ctx, &net).unwrap();
        for i in 1..=4u64 {
            net.set_iteration(i);
            backend.persist_async(&ctx, &net, i).unwrap();
        }
        backend.drain(&ctx).unwrap();
        assert_eq!(backend.demotions(), 2);
        let stats = backend.persist_stats();
        assert_eq!(stats.snapshots, 4);
        // 4 pipelined mirror publishes + 2 synchronous SSD demotions.
        assert_eq!(stats.persists, 6);
        assert_eq!(stats.publishes, 4);
        assert!(fs.exists("tier-async.ckpt"));
        assert!(MirrorModel::exists(&ctx));
    }

    #[test]
    fn noop_backend_persists_nothing() {
        let key = test_key(10);
        let ctx = context_with_key(&key);
        let mut net = small_network(11);
        let mut backend = NoOpBackend;
        assert!(!backend.exists(&ctx));
        backend.prepare(&ctx, &net).unwrap();
        backend.persist(&ctx, &net, 1).unwrap();
        assert!(!MirrorModel::exists(&ctx));
        assert_eq!(backend.persist_stats(), PersistStats::default());
        assert!(matches!(
            backend.restore(&ctx, &mut net),
            Err(PliniusError::NoMirrorModel)
        ));
    }

    #[test]
    fn injected_persist_fault_propagates_cleanly_mid_run() {
        let setup = TrainingSetup::small_test();
        let key = test_key(20);
        let ctx = deploy(&setup, &key);
        let mut trainer = PliniusBuilder::new(setup.clone())
            .context(ctx)
            .backend(FaultInjectingBackend::wrap(PmMirrorBackend::new()).fail_nth_persist(3))
            .build()
            .unwrap();
        // Iterations 1 and 2 persist fine; the third persist fails and the error
        // surfaces out of `run` instead of being swallowed.
        let err = trainer.run().unwrap_err();
        assert!(matches!(err, PliniusError::InjectedFault(_)), "{err}");
        assert_eq!(trainer.iteration(), 3, "the failing step trained the model");
        assert_eq!(trainer.persist_stats().persists, 2);
        let pool = trainer.context().pool().clone();
        drop(trainer);
        // The persisted model is the last *successful* persist — not a torn or
        // half-written iteration-3 state: a restart resumes at 2 and completes.
        let ctx2 = PliniusContext::open(pool, setup.cost.clone()).unwrap();
        ctx2.provision_key_directly(key);
        let mirror = MirrorModel::open(&ctx2).unwrap();
        assert_eq!(mirror.iteration(&ctx2).unwrap(), 2);
        let mut resumed = PliniusBuilder::new(setup.clone())
            .context(ctx2)
            .build()
            .unwrap();
        assert_eq!(resumed.iteration(), 2);
        let report = resumed.run().unwrap();
        assert_eq!(report.final_iteration, setup.trainer.max_iterations);
    }

    #[test]
    fn injected_restore_fault_fails_the_build_not_the_model() {
        let setup = TrainingSetup::small_test();
        let key = test_key(21);
        let ctx = deploy(&setup, &key);
        let mut trainer = PliniusBuilder::new(setup.clone())
            .context(ctx)
            .build()
            .unwrap();
        trainer.run_at_most(4).unwrap();
        let pool = trainer.context().pool().clone();
        drop(trainer);
        let ctx2 = PliniusContext::open(pool.clone(), setup.cost.clone()).unwrap();
        ctx2.provision_key_directly(key.clone());
        let err = PliniusBuilder::new(setup.clone())
            .context(ctx2)
            .backend(FaultInjectingBackend::wrap(PmMirrorBackend::new()).fail_nth_restore(1))
            .build()
            .unwrap_err();
        assert!(matches!(err, PliniusError::InjectedFault(_)), "{err}");
        // The mirror itself is untouched: a healthy backend still restores.
        let ctx3 = PliniusContext::open(pool, setup.cost.clone()).unwrap();
        ctx3.provision_key_directly(key);
        let resumed = PliniusBuilder::new(setup).context(ctx3).build().unwrap();
        assert_eq!(resumed.iteration(), 4);
    }

    #[test]
    fn unconfigured_fault_wrapper_is_transparent() {
        let setup = TrainingSetup::small_test();
        let key = test_key(22);
        let ctx = deploy(&setup, &key);
        let mut trainer = PliniusBuilder::new(setup.clone())
            .context(ctx)
            .backend(FaultInjectingBackend::wrap(PmMirrorBackend::new()))
            .max_iterations(3)
            .build()
            .unwrap();
        assert_eq!(trainer.backend().label(), "fault-injecting(pm-mirror)");
        let report = trainer.run().unwrap();
        assert_eq!(report.final_iteration, 3);
        assert_eq!(trainer.persist_stats().persists, 3);
    }
}
