//! The PM-data module (Fig. 4/5, §V "Initial dataset loading to PM"): encrypted,
//! byte-addressable training data resident in persistent memory.
//!
//! Training data is loaded into PM *once*; afterwards it stays there across crashes and
//! restarts, so recovery never has to re-read the dataset from secondary storage. Every
//! sample (image + one-hot label) is stored as an individually sealed AES-GCM blob so the
//! training loop can decrypt exactly the batch it needs into enclave memory.

use crate::{PliniusContext, PliniusError};
use plinius_crypto::{SealedBuffer, SEAL_OVERHEAD};
use plinius_darknet::Dataset;
use plinius_romulus::PmPtr;
use rand::Rng;

/// Root-directory slot holding tenant 0's PM dataset header. Other tenants use
/// their own root pair ([`crate::TenantId::dataset_root`]); the dataset always
/// reads the slot through [`PliniusContext::dataset_root`].
pub const ROOT_DATASET: usize = 1;

/// Persistent header layout: `[samples][inputs][classes][sealed_len][block_ptr]`.
const HEADER_BYTES: usize = 40;

/// Handle to the encrypted training dataset resident in PM.
#[derive(Debug, Clone)]
pub struct PmDataset {
    header: PmPtr,
    block: PmPtr,
    samples: usize,
    inputs: usize,
    classes: usize,
    sealed_len: usize,
}

impl PmDataset {
    /// Whether a dataset has already been loaded into the context's PM pool.
    pub fn exists(ctx: &PliniusContext) -> bool {
        matches!(ctx.romulus().root(ctx.dataset_root()), Ok(p) if !p.is_null())
    }

    /// Loads (encrypts and copies) a dataset into PM — the `ocall_load_data_in_pm` +
    /// PM-data-module path of Algorithm 2, executed once per deployment.
    ///
    /// # Errors
    ///
    /// Returns [`PliniusError::KeyNotProvisioned`] without a model key, or Romulus errors
    /// (e.g. the PM pool is too small for the dataset).
    pub fn load(ctx: &PliniusContext, dataset: &Dataset) -> Result<Self, PliniusError> {
        let key = ctx.key()?;
        let mut rng = ctx.enclave_rng();
        let plain_len = (dataset.inputs() + dataset.classes()) * 4;
        let sealed_len = plain_len + SEAL_OVERHEAD;
        // The untrusted helper reads the (already encrypted at rest) data from storage
        // into DRAM and hands its address to the enclave via an ecall; here that step is
        // the ocall/ecall pair bracketing the PM copy.
        ctx.enclave().ocall("load_initial_data", || ())?;
        let samples = dataset.len();
        let mut header = PmPtr::NULL;
        let mut block = PmPtr::NULL;
        ctx.enclave().ecall("load_data_in_pm", || ())?;
        ctx.romulus().transaction(|tx| {
            header = tx.alloc(HEADER_BYTES)?;
            block = tx.alloc(samples * sealed_len)?;
            tx.write_u64(header, samples as u64)?;
            tx.write_u64(header.add(8), dataset.inputs() as u64)?;
            tx.write_u64(header.add(16), dataset.classes() as u64)?;
            tx.write_u64(header.add(24), sealed_len as u64)?;
            tx.write_u64(header.add(32), block.offset())?;
            Ok(())
        })?;
        // Encrypt and persist the samples in chunks of transactions so the volatile log
        // stays bounded (the data block itself was allocated above).
        const CHUNK: usize = 256;
        let mut index = 0usize;
        while index < samples {
            let end = (index + CHUNK).min(samples);
            let mut sealed_chunk = Vec::with_capacity(end - index);
            for i in index..end {
                let plaintext = dataset.sample_bytes(i);
                ctx.enclave().charge_crypto(plaintext.len() as u64);
                let aad = format!("sample{i}");
                let blob = SealedBuffer::seal_with_aad(&key, &plaintext, aad.as_bytes(), &mut rng)?;
                sealed_chunk.push(blob.into_bytes());
            }
            ctx.romulus().transaction(|tx| {
                for (offset_in_chunk, blob) in sealed_chunk.iter().enumerate() {
                    let i = index + offset_in_chunk;
                    tx.write_bytes(block.add((i * sealed_len) as u64), blob)?;
                }
                Ok(())
            })?;
            index = end;
        }
        // Publish the dataset root only after all samples are durable.
        ctx.romulus()
            .transaction(|tx| tx.set_root(ctx.dataset_root(), header))?;
        Ok(PmDataset {
            header,
            block,
            samples,
            inputs: dataset.inputs(),
            classes: dataset.classes(),
            sealed_len,
        })
    }

    /// Opens the dataset already resident in PM (after a restart).
    ///
    /// # Errors
    ///
    /// Returns [`PliniusError::NoPmDataset`] if no dataset was loaded.
    pub fn open(ctx: &PliniusContext) -> Result<Self, PliniusError> {
        let header = ctx.romulus().root(ctx.dataset_root())?;
        if header.is_null() {
            return Err(PliniusError::NoPmDataset);
        }
        let rom = ctx.romulus();
        Ok(PmDataset {
            header,
            block: PmPtr::from_offset(rom.read_u64(header.add(32))?),
            samples: rom.read_u64(header)? as usize,
            inputs: rom.read_u64(header.add(8))? as usize,
            classes: rom.read_u64(header.add(16))? as usize,
            sealed_len: rom.read_u64(header.add(24))? as usize,
        })
    }

    /// Persistent location of the dataset header in PM.
    pub fn header_ptr(&self) -> PmPtr {
        self.header
    }

    /// Number of samples resident in PM.
    pub fn len(&self) -> usize {
        self.samples
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.samples == 0
    }

    /// Inputs per sample.
    pub fn inputs(&self) -> usize {
        self.inputs
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Total encrypted bytes occupied in PM.
    pub fn pm_bytes(&self) -> usize {
        self.samples * self.sealed_len + HEADER_BYTES
    }

    /// Reads and decrypts one sample into enclave memory.
    ///
    /// # Errors
    ///
    /// Returns an authentication error if the PM copy was tampered with, or
    /// [`PliniusError::MirrorMismatch`] for an index out of range.
    pub fn sample(
        &self,
        ctx: &PliniusContext,
        index: usize,
    ) -> Result<(Vec<f32>, Vec<f32>), PliniusError> {
        if index >= self.samples {
            return Err(PliniusError::MirrorMismatch(format!(
                "sample index {index} out of range ({} samples)",
                self.samples
            )));
        }
        let key = ctx.key()?;
        let blob = ctx.romulus().read_bytes(
            self.block.add((index * self.sealed_len) as u64),
            self.sealed_len,
        )?;
        ctx.enclave().charge_crypto(blob.len() as u64);
        let aad = format!("sample{index}");
        let plaintext = SealedBuffer::from_bytes(blob)?.open_with_aad(&key, aad.as_bytes())?;
        ctx.enclave().charge_data_staging(plaintext.len() as u64);
        Dataset::sample_from_bytes(self.inputs, self.classes, &plaintext)
            .map_err(PliniusError::from)
    }

    /// Decrypts a batch of `batch` random samples into contiguous `(images, labels)`
    /// buffers — the `decrypt_pm_data(batch_size)` step of Algorithm 2.
    ///
    /// # Errors
    ///
    /// Same as [`PmDataset::sample`].
    pub fn decrypt_batch<R: Rng>(
        &self,
        ctx: &PliniusContext,
        batch: usize,
        rng: &mut R,
    ) -> Result<(Vec<f32>, Vec<f32>), PliniusError> {
        let mut images = Vec::with_capacity(batch * self.inputs);
        let mut labels = Vec::with_capacity(batch * self.classes);
        for _ in 0..batch {
            let index = rng.gen_range(0..self.samples);
            let (img, lbl) = self.sample(ctx, index)?;
            images.extend_from_slice(&img);
            labels.extend_from_slice(&lbl);
        }
        Ok((images, labels))
    }

    /// Reads a batch of *plaintext* samples directly (no decryption), used by the Fig. 8
    /// baseline that trains from unencrypted PM data.
    ///
    /// This still charges the PM-read and staging costs, only the AES-GCM work is
    /// skipped; the data stored in PM remains encrypted, so this path is only meaningful
    /// for the performance comparison (it re-reads from the plaintext dataset kept by the
    /// caller).
    pub fn staging_cost_only(&self, ctx: &PliniusContext, batch: usize) {
        let plain_len = (self.inputs + self.classes) * 4;
        ctx.enclave()
            .charge_data_staging((batch * plain_len) as u64);
        ctx.enclave().charge_pm_read((batch * plain_len) as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plinius_crypto::Key;
    use plinius_darknet::synthetic_images;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ctx_with_key() -> PliniusContext {
        let ctx = PliniusContext::small_test(16 * 1024 * 1024);
        let mut rng = StdRng::seed_from_u64(5);
        ctx.provision_key_directly(Key::generate_128(&mut rng));
        ctx
    }

    #[test]
    fn load_and_read_back_samples() {
        let ctx = ctx_with_key();
        let mut rng = StdRng::seed_from_u64(1);
        let data = synthetic_images(40, 8, 8, 3, 0.1, &mut rng);
        assert!(!PmDataset::exists(&ctx));
        let pm = PmDataset::load(&ctx, &data).unwrap();
        assert!(PmDataset::exists(&ctx));
        assert_eq!(pm.len(), 40);
        assert_eq!(pm.inputs(), 64);
        assert_eq!(pm.classes(), 3);
        assert!(pm.pm_bytes() > 40 * 64 * 4);
        for i in [0usize, 13, 39] {
            let (img, lbl) = pm.sample(&ctx, i).unwrap();
            assert_eq!(img, data.image(i));
            assert_eq!(lbl, data.label(i));
        }
        assert!(pm.sample(&ctx, 40).is_err());
    }

    #[test]
    fn batches_have_correct_shape() {
        let ctx = ctx_with_key();
        let mut rng = StdRng::seed_from_u64(2);
        let data = synthetic_images(20, 6, 6, 4, 0.1, &mut rng);
        let pm = PmDataset::load(&ctx, &data).unwrap();
        let (images, labels) = pm.decrypt_batch(&ctx, 8, &mut rng).unwrap();
        assert_eq!(images.len(), 8 * 36);
        assert_eq!(labels.len(), 8 * 4);
        // Every label row is one-hot.
        for row in labels.chunks(4) {
            assert!((row.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        }
        pm.staging_cost_only(&ctx, 8);
    }

    #[test]
    fn dataset_survives_reopen_and_requires_key() {
        let ctx = ctx_with_key();
        let key = ctx.key().unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let data = synthetic_images(10, 5, 5, 2, 0.1, &mut rng);
        PmDataset::load(&ctx, &data).unwrap();
        let pool = ctx.pool().clone();
        drop(ctx);
        let ctx2 = PliniusContext::open(pool, sim_clock::CostModel::sgx_eml_pm()).unwrap();
        // Without the key the data cannot be decrypted.
        let pm2 = PmDataset::open(&ctx2).unwrap();
        assert!(pm2.sample(&ctx2, 0).is_err());
        ctx2.provision_key_directly(key);
        let (img, _) = pm2.sample(&ctx2, 0).unwrap();
        assert_eq!(img, data.image(0));
    }

    #[test]
    fn open_without_dataset_errors() {
        let ctx = ctx_with_key();
        assert!(matches!(
            PmDataset::open(&ctx).unwrap_err(),
            PliniusError::NoPmDataset
        ));
    }
}
