//! The serving tier (§VI of the paper, ROADMAP item 3): batched secure inference
//! against the *committed* epoch of a live PM mirror.
//!
//! The paper's end goal is a usable trained model: Plinius trains inside the enclave
//! and then classifies held-out data. This module serves that model while training
//! may still be running:
//!
//! * [`InferenceServer`] owns a read-only clone of a [`MirrorModel`] handle plus two
//!   in-enclave network instances. Batches are always answered by the *active*
//!   instance; at batch boundaries the server compares the mirror's committed epoch
//!   against the one it serves and, when training published a newer epoch, restores
//!   it into the *spare* instance and swaps the two — a request is never blocked on
//!   an in-progress restore of its own network, and a half-restored model is never
//!   served.
//! * Consistency comes from the mirror itself: restores go through
//!   [`MirrorModel::mirror_in`]'s seqlock snapshot read (see the [`crate::mirror`]
//!   module docs), so every served batch uses tensors from exactly one committed
//!   epoch, even while the trainer keeps flipping slots.
//! * [`ServeSession`] drives a simulated *open-loop* request stream — exponential
//!   inter-arrival gaps at a configurable rate, request payloads drawn by simulated
//!   users from a reference dataset — batching pending requests and recording
//!   per-request latency (batch completion minus arrival, on the sim-clock) into a
//!   [`LatencyHistogram`]. The stream is a pure function of the [`ServeConfig`]
//!   seed, so twin runs are bit-identical.

use crate::mirror::MirrorModel;
use crate::{PliniusContext, PliniusError};
use plinius_darknet::{Dataset, Network};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sim_clock::{LatencyHistogram, LatencySummary};
use std::collections::VecDeque;

/// Forward-only inference is roughly a third of the forward+backward FLOPs that
/// [`Network::flops_per_sample`] models (one forward pass instead of forward +
/// backward, with backward ≈ 2× forward).
const BACKWARD_TO_FORWARD_RATIO: u64 = 3;

/// FNV-1a offset basis (the prediction-stream hash is order-sensitive on purpose).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds one `u64` into an FNV-1a running hash, byte by byte.
fn fnv_fold(mut hash: u64, value: u64) -> u64 {
    for byte in value.to_le_bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// A batched secure-inference server over one live PM mirror.
///
/// The server holds its own cold [`MirrorModel`] clone (own scratch buffers, same
/// persistent model), so restores never contend on the trainer's staging buffers,
/// and two network instances so an epoch hot-swap never blocks classification on a
/// half-restored model.
#[derive(Debug)]
pub struct InferenceServer {
    ctx: PliniusContext,
    mirror: MirrorModel,
    active: Network,
    spare: Network,
    epoch: u64,
    iteration: u64,
    swaps: u64,
}

impl InferenceServer {
    /// Attaches a server to `mirror`, restoring the committed epoch into a clone of
    /// `template` (which provides the network architecture and the batch sizing of
    /// the layer buffers — the maximum batch the server accepts).
    ///
    /// # Errors
    ///
    /// Returns [`PliniusError::NoCommittedEpoch`] when no mirror-out has committed
    /// yet (the active slot holds uninitialised bytes until the first epoch flip),
    /// [`PliniusError::KeyNotProvisioned`] without a model key, and restore errors.
    pub fn new(
        ctx: &PliniusContext,
        mirror: MirrorModel,
        template: &Network,
    ) -> Result<Self, PliniusError> {
        if mirror.epoch(ctx)? == 0 {
            return Err(PliniusError::NoCommittedEpoch);
        }
        let mut active = template.clone();
        let report = mirror.mirror_in(ctx, &mut active)?;
        Ok(InferenceServer {
            ctx: ctx.clone(),
            mirror,
            spare: template.clone(),
            active,
            epoch: report.epoch,
            iteration: report.iteration,
            swaps: 0,
        })
    }

    /// The committed epoch currently being served.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The training iteration of the served epoch.
    pub fn iteration(&self) -> u64 {
        self.iteration
    }

    /// Number of epoch hot-swaps performed since the server was created.
    pub fn swaps(&self) -> u64 {
        self.swaps
    }

    /// The GEMM engine the serving networks classify on (inherited from the
    /// template network at construction, hot-swaps included — both instances are
    /// clones of the template).
    pub fn gemm_engine(&self) -> plinius_darknet::GemmKind {
        self.active.gemm_engine()
    }

    /// Largest batch one [`InferenceServer::classify_batch`] call accepts (the layer
    /// buffers of the serving networks are sized for it).
    pub fn max_batch(&self) -> usize {
        self.active.config().batch
    }

    /// Checks the mirror for a newer committed epoch and hot-swaps it in: the epoch
    /// is restored into the spare network instance (through the seqlock snapshot
    /// read) and the instances are swapped. Returns whether a swap happened. Called
    /// automatically at every batch boundary; exposed for callers that want to
    /// pre-warm before a traffic burst.
    ///
    /// # Errors
    ///
    /// Propagates restore errors; the served model is unchanged on error.
    pub fn refresh(&mut self) -> Result<bool, PliniusError> {
        if self.mirror.epoch(&self.ctx)? == self.epoch {
            return Ok(false);
        }
        // The epoch moved. The restore re-runs the full snapshot protocol, so the
        // epoch it installs is whatever is committed by the time it completes.
        let report = self.mirror.mirror_in(&self.ctx, &mut self.spare)?;
        std::mem::swap(&mut self.active, &mut self.spare);
        self.epoch = report.epoch;
        self.iteration = report.iteration;
        self.swaps += 1;
        Ok(true)
    }

    /// Classifies a batch of `count = input.len() / inputs` samples against the
    /// served epoch, returning the predicted class index per sample. Refreshes the
    /// epoch at the batch boundary first, then answers the whole batch from one
    /// model — a batch never mixes epochs.
    ///
    /// Costs are charged to the sim-clock like training is: one ecall, the input
    /// staging copy, and the forward-pass FLOPs (≈ ⅓ of the modeled
    /// forward+backward cost per sample).
    ///
    /// # Errors
    ///
    /// Returns [`PliniusError::InvalidConfig`] for an empty or oversized batch (or
    /// an input length that is not a multiple of the model's input size), plus any
    /// refresh error.
    pub fn classify_batch(&mut self, input: &[f32]) -> Result<Vec<usize>, PliniusError> {
        let inputs = self.active.config().inputs();
        if input.is_empty() || !input.len().is_multiple_of(inputs) {
            return Err(PliniusError::InvalidConfig(format!(
                "batch input length {} is not a positive multiple of the model input size {inputs}",
                input.len()
            )));
        }
        let count = input.len() / inputs;
        if count > self.max_batch() {
            return Err(PliniusError::InvalidConfig(format!(
                "batch of {count} exceeds the server's layer-buffer batch {}",
                self.max_batch()
            )));
        }
        self.refresh()?;
        let classes = self.active.outputs();
        let flops = self.active.flops_per_sample() / BACKWARD_TO_FORWARD_RATIO;
        let active = &mut self.active;
        let enclave = self.ctx.enclave();
        let predictions = enclave
            .ecall("classify_batch", || {
                enclave.charge_data_staging((input.len() * 4) as u64);
                enclave.charge_compute(flops * count as u64);
                let out = active.forward(input, count);
                (0..count)
                    .map(|s| {
                        let row = &out[s * classes..(s + 1) * classes];
                        let mut best = 0;
                        for (j, v) in row.iter().enumerate() {
                            if *v > row[best] {
                                best = j;
                            }
                        }
                        best
                    })
                    .collect()
            })
            .map_err(PliniusError::from)?;
        Ok(predictions)
    }
}

/// Knobs of one simulated open-loop serving run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Requests the server batches together (capped by the model's layer-buffer
    /// batch). The session waits until a full batch has *arrived* before serving
    /// it, except for the final partial batch of the run.
    pub batch: usize,
    /// Mean inter-arrival gap between requests in simulated nanoseconds
    /// (exponentially distributed; the arrival rate is `1e9 / arrival_ns`
    /// requests/s). Zero means all requests arrive at once.
    pub arrival_ns: u64,
    /// Total number of simulated requests.
    pub requests: u64,
    /// Seed of the request stream (arrival gaps and payload choice).
    pub seed: u64,
}

impl ServeConfig {
    /// Arrival rate in requests per simulated second.
    pub fn rate_rps(&self) -> f64 {
        if self.arrival_ns == 0 {
            f64::INFINITY
        } else {
            1e9 / self.arrival_ns as f64
        }
    }
}

/// One pending simulated request: when it arrived and which sample its user sent.
#[derive(Debug, Clone, Copy)]
struct Request {
    arrival_ns: u64,
    sample: usize,
}

/// Result digest of a completed (or in-progress) serving run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeReport {
    /// Requests served.
    pub served: u64,
    /// Requests whose prediction matched the reference label.
    pub correct: u64,
    /// Batches executed.
    pub batches: u64,
    /// Epoch hot-swaps performed while serving.
    pub swaps: u64,
    /// The committed epoch served last.
    pub final_epoch: u64,
    /// Per-request latency digest (batch completion minus arrival, sim-clock).
    pub latency: LatencySummary,
    /// Simulated time between the first arrival and the last batch completion.
    pub wall_ns: u64,
    /// Order-sensitive FNV-1a hash over `(sample, prediction)` of every served
    /// request — two runs served identical results iff the hashes match.
    pub predictions_hash: u64,
}

impl ServeReport {
    /// Served throughput in requests per simulated second.
    pub fn throughput_rps(&self) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            self.served as f64 * 1e9 / self.wall_ns as f64
        }
    }

    /// Fraction of served requests classified correctly.
    pub fn accuracy(&self) -> f64 {
        if self.served == 0 {
            0.0
        } else {
            self.correct as f64 / self.served as f64
        }
    }
}

/// An incremental open-loop serving run: millions of simulated users send samples
/// drawn from a reference dataset at a configured arrival rate; the session batches
/// them, classifies through an [`InferenceServer`], and accounts per-request
/// latency on the sim-clock.
///
/// The session is *pump-driven* so callers can interleave it with other simulated
/// work — the serve-while-training scenario alternates training steps with
/// [`ServeSession::pump_one_batch`] calls against the same PM pool.
#[derive(Debug)]
pub struct ServeSession {
    server: InferenceServer,
    config: ServeConfig,
    dataset: Dataset,
    rng: StdRng,
    /// Sim-time at which the next generated request arrives.
    next_arrival_ns: u64,
    /// Arrivals generated so far (≤ `config.requests`).
    issued: u64,
    pending: VecDeque<Request>,
    /// Reusable batch staging buffer (`batch × inputs`).
    staging: Vec<f32>,
    hist: LatencyHistogram,
    served: u64,
    correct: u64,
    batches: u64,
    first_arrival_ns: Option<u64>,
    last_completion_ns: u64,
    predictions_hash: u64,
}

impl ServeSession {
    /// Creates a session over `server`, with request payloads drawn uniformly from
    /// `dataset` (its labels are the accuracy reference). Arrivals start at the
    /// sim-clock's *current* time.
    ///
    /// # Errors
    ///
    /// Returns [`PliniusError::InvalidConfig`] when the dataset is empty, the batch
    /// knob is zero or exceeds [`InferenceServer::max_batch`], or the request count
    /// is zero.
    pub fn new(
        server: InferenceServer,
        dataset: Dataset,
        config: ServeConfig,
    ) -> Result<Self, PliniusError> {
        if dataset.is_empty() {
            return Err(PliniusError::InvalidConfig(
                "serving needs a non-empty reference dataset".into(),
            ));
        }
        if config.batch == 0 || config.batch > server.max_batch() {
            return Err(PliniusError::InvalidConfig(format!(
                "serve batch {} must be in 1..={}",
                config.batch,
                server.max_batch()
            )));
        }
        if config.requests == 0 {
            return Err(PliniusError::InvalidConfig(
                "a serving run needs at least one request".into(),
            ));
        }
        let staging = vec![0.0; config.batch * dataset.inputs()];
        let next_arrival_ns = server.ctx.clock().now_ns();
        Ok(ServeSession {
            server,
            config,
            dataset,
            rng: StdRng::seed_from_u64(config.seed),
            next_arrival_ns,
            issued: 0,
            pending: VecDeque::new(),
            staging,
            hist: LatencyHistogram::new(),
            served: 0,
            correct: 0,
            batches: 0,
            first_arrival_ns: None,
            last_completion_ns: 0,
            predictions_hash: FNV_OFFSET,
        })
    }

    /// Whether every configured request has been served.
    pub fn is_done(&self) -> bool {
        self.served == self.config.requests
    }

    /// The server driven by this session.
    pub fn server(&self) -> &InferenceServer {
        &self.server
    }

    /// Generates the next arrival: an exponential gap after the previous one, with a
    /// uniformly drawn payload sample.
    fn generate_arrival(&mut self) -> Request {
        // Inverse-transform sampling over (0, 1]; the offset keeps ln finite.
        let u: f64 = 1.0 - self.rng.gen_range(0.0f64..1.0);
        let gap = (-u.ln() * self.config.arrival_ns as f64).round() as u64;
        self.next_arrival_ns += gap;
        self.issued += 1;
        Request {
            arrival_ns: self.next_arrival_ns,
            sample: self.rng.gen_range(0..self.dataset.len()),
        }
    }

    /// Serves the next batch: waits (in simulated time) until a full batch has
    /// arrived — or until the final partial batch of the run is complete — then
    /// classifies it and records one latency sample per request. Returns `false`
    /// when all requests were already served.
    ///
    /// # Errors
    ///
    /// Propagates refresh/classification errors; no request is recorded as served
    /// on error.
    pub fn pump_one_batch(&mut self) -> Result<bool, PliniusError> {
        if self.is_done() {
            return Ok(false);
        }
        while self.pending.len() < self.config.batch && self.issued < self.config.requests {
            let req = self.generate_arrival();
            self.first_arrival_ns.get_or_insert(req.arrival_ns);
            self.pending.push_back(req);
        }
        let take = self.pending.len().min(self.config.batch);
        let clock = self.server.ctx.clock();
        // Open loop: the batch can only start once its last request has arrived.
        let batch_ready_ns = self.pending[take - 1].arrival_ns;
        clock.advance_to(batch_ready_ns);
        let inputs = self.dataset.inputs();
        for (i, req) in self.pending.iter().take(take).enumerate() {
            self.staging[i * inputs..(i + 1) * inputs]
                .copy_from_slice(self.dataset.image(req.sample));
        }
        let predictions = self.server.classify_batch(&self.staging[..take * inputs])?;
        let completion_ns = clock.now_ns();
        for (req, prediction) in self.pending.drain(..take).zip(predictions) {
            self.hist
                .record(completion_ns.saturating_sub(req.arrival_ns));
            if prediction == self.dataset.label_index(req.sample) {
                self.correct += 1;
            }
            self.predictions_hash = fnv_fold(self.predictions_hash, req.sample as u64);
            self.predictions_hash = fnv_fold(self.predictions_hash, prediction as u64);
            self.served += 1;
        }
        self.batches += 1;
        self.last_completion_ns = completion_ns;
        Ok(true)
    }

    /// Pumps batches until every configured request has been served.
    ///
    /// # Errors
    ///
    /// Propagates the first [`ServeSession::pump_one_batch`] error.
    pub fn run(&mut self) -> Result<ServeReport, PliniusError> {
        while self.pump_one_batch()? {}
        Ok(self.report())
    }

    /// The digest of everything served so far.
    pub fn report(&self) -> ServeReport {
        ServeReport {
            served: self.served,
            correct: self.correct,
            batches: self.batches,
            swaps: self.server.swaps(),
            final_epoch: self.server.epoch(),
            latency: self.hist.summary(),
            wall_ns: self
                .last_completion_ns
                .saturating_sub(self.first_arrival_ns.unwrap_or(self.last_completion_ns)),
            predictions_hash: self.predictions_hash,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::persist::PersistenceBackend;
    use crate::trainer::{PliniusBuilder, TrainingSetup};

    /// A trained-for-a-few-iterations deployment plus a serving dataset.
    fn trained_deployment() -> (crate::PliniusContext, MirrorModel, Network, Dataset) {
        let mut setup = TrainingSetup::small_test();
        setup.backend = PersistenceBackend::PmMirror;
        setup.trainer.max_iterations = 4;
        setup.trainer.mirror_frequency = 2;
        let template = setup.build_network().expect("template network");
        let dataset = setup.dataset.clone();
        let mut trainer = PliniusBuilder::new(setup).build().expect("trainer");
        trainer.run().expect("training");
        let mirror = trainer.mirror_handle().expect("pm-mirror backend");
        (trainer.context().clone(), mirror, template, dataset)
    }

    #[test]
    fn server_refuses_a_mirror_with_no_committed_epoch() {
        let mut setup = TrainingSetup::small_test();
        setup.backend = PersistenceBackend::PmMirror;
        let template = setup.build_network().expect("template network");
        let trainer = PliniusBuilder::new(setup).build().expect("trainer");
        // build() prepared (allocated) the mirror, but nothing was published yet:
        // the mirror is still at epoch 0 and its active slot holds garbage.
        let mirror = trainer.mirror_handle().expect("mirror allocated");
        let err = InferenceServer::new(trainer.context(), mirror, &template).unwrap_err();
        assert_eq!(err, PliniusError::NoCommittedEpoch);
    }

    #[test]
    fn server_serves_the_committed_epoch_and_matches_trainer_accuracy() {
        let (ctx, mirror, template, dataset) = trained_deployment();
        let mut server = InferenceServer::new(&ctx, mirror, &template).expect("server");
        assert!(server.epoch() > 0);
        assert_eq!(server.iteration(), 4);
        // Classify the whole dataset through the server, batch by batch.
        let inputs = dataset.inputs();
        let batch = server.max_batch();
        let mut correct = 0usize;
        let mut staged = Vec::new();
        let mut members = Vec::new();
        for i in 0..dataset.len() {
            staged.extend_from_slice(dataset.image(i));
            members.push(i);
            if members.len() == batch || i + 1 == dataset.len() {
                let preds = server.classify_batch(&staged).expect("classification");
                assert_eq!(preds.len(), members.len());
                for (m, p) in members.iter().zip(&preds) {
                    if *p == dataset.label_index(*m) {
                        correct += 1;
                    }
                }
                staged.clear();
                members.clear();
            }
            let _ = inputs;
        }
        // The served weights are the committed epoch of the trained model, so the
        // server's accuracy over the training set is the model's own.
        let mut reference = template.clone();
        server
            .mirror
            .mirror_in(&ctx, &mut reference)
            .expect("reference restore");
        assert!(
            (reference.accuracy(&dataset) - correct as f32 / dataset.len() as f32).abs() < 1e-6
        );
        assert_eq!(server.swaps(), 0, "no new epochs were published");
    }

    #[test]
    fn classify_batch_rejects_bad_inputs() {
        let (ctx, mirror, template, dataset) = trained_deployment();
        let mut server = InferenceServer::new(&ctx, mirror, &template).expect("server");
        assert!(matches!(
            server.classify_batch(&[]),
            Err(PliniusError::InvalidConfig(_))
        ));
        let oversized = vec![0.0; (server.max_batch() + 1) * dataset.inputs()];
        assert!(matches!(
            server.classify_batch(&oversized),
            Err(PliniusError::InvalidConfig(_))
        ));
        let ragged = vec![0.0; dataset.inputs() + 1];
        assert!(matches!(
            server.classify_batch(&ragged),
            Err(PliniusError::InvalidConfig(_))
        ));
    }

    #[test]
    fn open_loop_session_reports_latency_and_throughput() {
        let (ctx, mirror, template, dataset) = trained_deployment();
        let server = InferenceServer::new(&ctx, mirror, &template).expect("server");
        let batch = server.max_batch().min(8);
        let mut session = ServeSession::new(
            server,
            dataset,
            ServeConfig {
                batch,
                arrival_ns: 50_000,
                requests: 100,
                seed: 9,
            },
        )
        .expect("session");
        let report = session.run().expect("serving run");
        assert_eq!(report.served, 100);
        assert_eq!(report.batches, 100_u64.div_ceil(batch as u64));
        assert!(report.latency.count == 100);
        assert!(report.latency.p99_ns >= report.latency.p50_ns);
        assert!(report.wall_ns > 0);
        assert!(report.throughput_rps() > 0.0);
        assert!(session.is_done());
        assert!(!session.pump_one_batch().expect("idempotent when done"));
    }

    #[test]
    fn identical_seeds_produce_identical_serving_runs() {
        let mut hashes = Vec::new();
        for _ in 0..2 {
            let (ctx, mirror, template, dataset) = trained_deployment();
            let server = InferenceServer::new(&ctx, mirror, &template).expect("server");
            let batch = server.max_batch().min(4);
            let mut session = ServeSession::new(
                server,
                dataset,
                ServeConfig {
                    batch,
                    arrival_ns: 20_000,
                    requests: 64,
                    seed: 41,
                },
            )
            .expect("session");
            let report = session.run().expect("serving run");
            hashes.push((report.predictions_hash, report.correct, report.final_epoch));
        }
        assert_eq!(hashes[0], hashes[1]);
    }

    #[test]
    fn session_rejects_invalid_configs() {
        let (ctx, mirror, template, dataset) = trained_deployment();
        let server = InferenceServer::new(&ctx, mirror.clone(), &template).expect("server");
        let max = server.max_batch();
        assert!(matches!(
            ServeSession::new(
                server,
                dataset.clone(),
                ServeConfig {
                    batch: max + 1,
                    arrival_ns: 1,
                    requests: 1,
                    seed: 0
                }
            ),
            Err(PliniusError::InvalidConfig(_))
        ));
        let server = InferenceServer::new(&ctx, mirror, &template).expect("server");
        assert!(matches!(
            ServeSession::new(
                server,
                dataset,
                ServeConfig {
                    batch: 1,
                    arrival_ns: 1,
                    requests: 0,
                    seed: 0
                }
            ),
            Err(PliniusError::InvalidConfig(_))
        ));
    }
}
