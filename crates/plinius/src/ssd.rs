//! The baseline Plinius is compared against in Fig. 7 / Table I: encrypted model
//! checkpoints on secondary storage (SSD), written through `fwrite`/`fsync` ocalls and
//! read back with `fread` ocalls — "the state-of-the-art method for fault tolerance".

use crate::{bytes_to_f32s, f32s_to_bytes, PliniusContext, PliniusError};
use plinius_crypto::SealedView;
use plinius_darknet::Network;
use plinius_storage::{CheckpointBlob, CheckpointCodec, SimFileSystem};
use rand::RngCore;
use sim_clock::SimSpan;

/// Report of one SSD checkpoint save (encrypt + write-to-SSD).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SsdSaveReport {
    /// Time spent encrypting inside the enclave.
    pub encrypt: SimSpan,
    /// Time spent writing to the SSD (ocalls + fwrite + fsync).
    pub write: SimSpan,
    /// Plaintext model bytes checkpointed.
    pub model_bytes: usize,
}

impl SsdSaveReport {
    /// Total simulated save latency in milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.encrypt.millis() + self.write.millis()
    }
}

/// Report of one SSD checkpoint restore (read-from-SSD + decrypt).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SsdRestoreReport {
    /// Time spent reading the checkpoint from the SSD into the enclave.
    pub read: SimSpan,
    /// Time spent decrypting inside the enclave.
    pub decrypt: SimSpan,
    /// Iteration recovered from the checkpoint.
    pub iteration: u64,
    /// Plaintext model bytes restored.
    pub model_bytes: usize,
}

impl SsdRestoreReport {
    /// Total simulated restore latency in milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.read.millis() + self.decrypt.millis()
    }
}

/// Encrypted model checkpointing on a (simulated) SSD.
#[derive(Debug, Clone)]
pub struct SsdCheckpointer {
    fs: SimFileSystem,
    path: String,
}

impl SsdCheckpointer {
    /// Creates a checkpointer writing to `path` on the given file system. The file system
    /// should share the context's clock (see [`SsdCheckpointer::on_shared_clock`]).
    pub fn new(fs: SimFileSystem, path: impl Into<String>) -> Self {
        SsdCheckpointer {
            fs,
            path: path.into(),
        }
    }

    /// Convenience: creates a checkpointer whose simulated SSD charges costs to the same
    /// clock as `ctx`, which is what the Fig. 7 comparison requires.
    pub fn on_shared_clock(ctx: &PliniusContext, path: impl Into<String>) -> Self {
        Self::new(crate::persist::shared_ssd(ctx), path)
    }

    /// The underlying simulated file system.
    pub fn filesystem(&self) -> &SimFileSystem {
        &self.fs
    }

    /// Whether a checkpoint file exists.
    pub fn exists(&self) -> bool {
        self.fs.exists(&self.path)
    }

    /// Saves an encrypted checkpoint of `network` to the SSD: encrypt every parameter
    /// tensor in the enclave, then `fwrite` the blob through ocalls, flush and `fsync`.
    ///
    /// # Errors
    ///
    /// Returns [`PliniusError::KeyNotProvisioned`] without a model key, or storage/SGX
    /// errors from the write path.
    pub fn save(
        &self,
        ctx: &PliniusContext,
        network: &Network,
    ) -> Result<SsdSaveReport, PliniusError> {
        // One warm GCM context (key schedule + GHASH tables + engine selection, from
        // the enclave's per-key cache) for the whole checkpoint instead of per tensor.
        let gcm = ctx.gcm()?;
        let clock = ctx.clock();
        let mut rng = ctx.enclave_rng();
        let mut model_bytes = 0usize;
        // Phase 1: in-enclave encryption (identical to the mirror-out encryption phase).
        let (blob, encrypt) =
            SimSpan::record(&clock, || -> Result<CheckpointBlob, PliniusError> {
                let mut layers = Vec::new();
                for (i, layer) in network
                    .layers()
                    .iter()
                    .filter(|l| l.is_trainable())
                    .enumerate()
                {
                    let mut tensors = Vec::new();
                    for (j, param) in layer.params().iter().enumerate() {
                        let plaintext = f32s_to_bytes(param.data);
                        model_bytes += plaintext.len();
                        ctx.enclave().charge_crypto(plaintext.len() as u64);
                        let aad = format!("layer{i}-tensor{j}");
                        // Fresh random IV per tensor, drawn exactly as
                        // `SealedBuffer::seal_with_aad` would.
                        let mut iv = [0u8; plinius_crypto::IV_LEN];
                        rng.fill_bytes(&mut iv);
                        let mut sealed = vec![0u8; plinius_crypto::sealed_len(plaintext.len())];
                        plinius_crypto::seal_into(
                            &gcm,
                            &plaintext,
                            aad.as_bytes(),
                            &iv,
                            &mut sealed,
                        )?;
                        tensors.push(sealed);
                    }
                    layers.push(tensors);
                }
                Ok(CheckpointBlob {
                    iteration: network.iteration(),
                    layers,
                })
            });
        let blob = blob?;
        // Phase 2: serialisation + fwrite ocalls + fsync.
        let ((), write) = SimSpan::record(&clock, || {
            let encoded = CheckpointCodec::encode(&blob);
            self.fs.create(&self.path);
            // The baseline writes layer by layer, each through an ocall, flushing libc
            // buffers and issuing an fsync after the writes (as described in §VI).
            let _ = ctx.enclave().ocall("fwrite_checkpoint", || {
                for chunk in encoded.chunks(1 << 20) {
                    self.fs.write(&self.path, chunk);
                }
            });
            let _ = ctx.enclave().ocall("fsync_checkpoint", || {
                let _ = self.fs.fsync(&self.path);
            });
        });
        Ok(SsdSaveReport {
            encrypt,
            write,
            model_bytes,
        })
    }

    /// Restores a checkpoint from the SSD into `network`: `fread` the blob through
    /// ocalls into the enclave, then decrypt and install the parameters.
    ///
    /// # Errors
    ///
    /// Returns [`PliniusError::NoMirrorModel`] if no checkpoint exists, authentication
    /// errors if it was tampered with, or a mismatch error if the model differs.
    pub fn restore(
        &self,
        ctx: &PliniusContext,
        network: &mut Network,
    ) -> Result<SsdRestoreReport, PliniusError> {
        if !self.exists() {
            return Err(PliniusError::NoMirrorModel);
        }
        // One warm GCM context (from the enclave's per-key cache) for the whole restore.
        let gcm = ctx.gcm()?;
        let clock = ctx.clock();
        // Phase 1: read the whole checkpoint from the SSD into enclave memory.
        let (encoded, read) = SimSpan::record(&clock, || -> Result<Vec<u8>, PliniusError> {
            let bytes = ctx
                .enclave()
                .ocall("fread_checkpoint", || self.fs.read_all(&self.path))??;
            // Copying the checkpoint into the enclave pays the EPC paging penalty when
            // the model does not fit in the EPC (same mechanism as PM reads).
            let penalty = ctx
                .cost_model()
                .epc_paging_penalty_ns(bytes.len() as u64, ctx.enclave().working_set());
            ctx.clock().advance_ns(penalty);
            Ok(bytes)
        });
        let encoded = encoded?;
        // Phase 2: decrypt and install.
        let (out, decrypt) = SimSpan::record(&clock, || -> Result<(u64, usize), PliniusError> {
            let blob = CheckpointCodec::decode(&encoded)?;
            let mut model_bytes = 0usize;
            let mut node_idx = 0usize;
            for layer in network.layers_mut().iter_mut() {
                if !layer.is_trainable() {
                    continue;
                }
                let Some(tensors_enc) = blob.layers.get(node_idx) else {
                    return Err(PliniusError::MirrorMismatch(
                        "checkpoint has fewer layers than the enclave model".into(),
                    ));
                };
                let mut tensors = Vec::with_capacity(tensors_enc.len());
                for (j, enc) in tensors_enc.iter().enumerate() {
                    ctx.enclave().charge_crypto(enc.len() as u64);
                    let aad = format!("layer{node_idx}-tensor{j}");
                    // Borrowed view: decrypt straight out of the checkpoint blob
                    // without cloning the sealed bytes, into a buffer of exactly the
                    // plaintext size.
                    let view = SealedView::parse(enc)?;
                    let mut plaintext = vec![0u8; view.plaintext_len()];
                    view.open_into(&gcm, aad.as_bytes(), &mut plaintext)?;
                    model_bytes += plaintext.len();
                    tensors.push(bytes_to_f32s(&plaintext)?);
                }
                layer.set_params(&tensors);
                node_idx += 1;
            }
            if node_idx != blob.num_layers() {
                return Err(PliniusError::MirrorMismatch(
                    "checkpoint has more layers than the enclave model".into(),
                ));
            }
            Ok((blob.iteration, model_bytes))
        });
        let (iteration, model_bytes) = out?;
        network.set_iteration(iteration);
        Ok(SsdRestoreReport {
            read,
            decrypt,
            iteration,
            model_bytes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mirror::MirrorModel;
    use plinius_crypto::Key;
    use plinius_darknet::config::{build_network, mnist_cnn_config};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ctx_with_key() -> PliniusContext {
        let ctx = PliniusContext::small_test(16 * 1024 * 1024);
        let mut rng = StdRng::seed_from_u64(17);
        ctx.provision_key_directly(Key::generate_128(&mut rng));
        ctx
    }

    fn network(seed: u64) -> Network {
        let mut rng = StdRng::seed_from_u64(seed);
        build_network(&mnist_cnn_config(2, 4, 4), &mut rng).unwrap()
    }

    fn weights(net: &Network) -> Vec<f32> {
        net.layers()
            .iter()
            .filter(|l| l.is_trainable())
            .flat_map(|l| l.params()[0].data.to_vec())
            .collect()
    }

    #[test]
    fn save_restore_round_trip() {
        let ctx = ctx_with_key();
        let ckpt = SsdCheckpointer::on_shared_clock(&ctx, "model.ckpt");
        let mut net = network(1);
        net.set_iteration(99);
        assert!(!ckpt.exists());
        let save = ckpt.save(&ctx, &net).unwrap();
        assert!(ckpt.exists());
        assert!(save.total_ms() > 0.0);
        let mut restored = network(2);
        let report = ckpt.restore(&ctx, &mut restored).unwrap();
        assert_eq!(report.iteration, 99);
        assert_eq!(weights(&restored), weights(&net));
        assert_eq!(report.model_bytes, save.model_bytes);
        // The baseline path really went through ocalls and an fsync.
        assert!(ctx.stats().value("sgx.ocall.fwrite_checkpoint") >= 1);
        assert_eq!(ctx.stats().value("fs.fsyncs"), 1);
    }

    #[test]
    fn restore_without_checkpoint_errors() {
        let ctx = ctx_with_key();
        let ckpt = SsdCheckpointer::on_shared_clock(&ctx, "missing.ckpt");
        let mut net = network(3);
        assert!(matches!(
            ckpt.restore(&ctx, &mut net).unwrap_err(),
            PliniusError::NoMirrorModel
        ));
    }

    #[test]
    fn ssd_save_is_slower_than_pm_mirror_for_the_same_model() {
        // The headline result: mirroring to PM beats SSD checkpointing.
        let ctx = ctx_with_key();
        let net = network(4);
        let mirror = MirrorModel::allocate(&ctx, &net).unwrap();
        let pm_save = mirror.mirror_out(&ctx, &net).unwrap();
        let ckpt = SsdCheckpointer::on_shared_clock(&ctx, "model.ckpt");
        let ssd_save = ckpt.save(&ctx, &net).unwrap();
        assert!(
            ssd_save.total_ms() > pm_save.total_ms(),
            "ssd {} ms vs pm {} ms",
            ssd_save.total_ms(),
            pm_save.total_ms()
        );
        // Restores too.
        let mut a = network(5);
        let mut b = network(6);
        let pm_restore = mirror.mirror_in(&ctx, &mut a).unwrap();
        let ssd_restore = ckpt.restore(&ctx, &mut b).unwrap();
        assert!(ssd_restore.total_ms() > pm_restore.total_ms());
    }

    #[test]
    fn tampered_checkpoint_is_rejected() {
        let ctx = ctx_with_key();
        let ckpt = SsdCheckpointer::on_shared_clock(&ctx, "model.ckpt");
        let net = network(7);
        ckpt.save(&ctx, &net).unwrap();
        // Corrupt a byte in the middle of the stored file (inside some tensor payload).
        let raw = ckpt.filesystem().read_all("model.ckpt").unwrap();
        let mut corrupted = raw.clone();
        let idx = raw.len() / 2;
        corrupted[idx] ^= 0x01;
        ckpt.filesystem().create("model.ckpt");
        ckpt.filesystem().write("model.ckpt", &corrupted);
        let mut restored = network(8);
        assert!(ckpt.restore(&ctx, &mut restored).is_err());
    }
}
