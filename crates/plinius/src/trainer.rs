//! The training driver (Algorithm 2): the train-and-mirror loop, crash/resume
//! orchestration (Fig. 9) and spot-instance-driven training (Fig. 10).
//!
//! Trainers are constructed through the fluent [`PliniusBuilder`]; the persistence
//! medium is any [`ModelPersistence`] implementation (see [`crate::persist`]).

use crate::mirror::{ring_depth_from_env, MirrorModel};
use crate::persist::{ModelPersistence, NoOpBackend, PersistStats, PersistenceBackend};
use crate::pmdata::PmDataset;
use crate::{PliniusContext, PliniusError, TenantId};
use plinius_crypto::{EnginePolicy, Key};
use plinius_darknet::config::build_network;
use plinius_darknet::{Dataset, GemmPolicy, Network};
use plinius_pmem::CrashMode;
use plinius_spot::SpotSimulator;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sim_clock::CostModel;

/// How the per-iteration persist is scheduled relative to the training compute.
///
/// Model weights, sealed PM epoch contents and loss curves are **bit-identical**
/// between the two modes (and for every `PLINIUS_THREADS` value); only timing —
/// simulated and wall-clock — differs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PipelineMode {
    /// The paper's Algorithm 2: every persist seals and writes the mirror inline, so
    /// an iteration costs `compute + mirror`.
    #[default]
    Sync,
    /// Two-phase pipelined persistence: a cheap snapshot is staged inline and the
    /// seal + PM publish runs on a background worker, overlapping the next
    /// iteration's compute. Steady-state cost approaches `max(compute, mirror)`;
    /// the committed PM state trails by at most one in-flight publish, which is
    /// joined at the end of the run (and before every restore).
    Overlapped,
}

impl PipelineMode {
    /// Environment variable that picks the default pipeline mode
    /// (`sync`/`overlapped`); unset or unrecognised values mean [`PipelineMode::Sync`].
    /// CI uses this to run the whole suite in both modes.
    pub const ENV: &'static str = "PLINIUS_PIPELINE";

    /// The mode selected by the [`PipelineMode::ENV`] environment variable.
    pub fn from_env() -> Self {
        match std::env::var(Self::ENV) {
            Ok(v) if v.trim().eq_ignore_ascii_case("overlapped") => PipelineMode::Overlapped,
            _ => PipelineMode::Sync,
        }
    }
}

impl std::fmt::Display for PipelineMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineMode::Sync => f.write_str("sync"),
            PipelineMode::Overlapped => f.write_str("overlapped"),
        }
    }
}

/// Numeric knobs of a training run. Persistence policy is *not* part of this struct:
/// the medium is a [`ModelPersistence`] backend chosen on the [`PliniusBuilder`] (or
/// declaratively via [`TrainingSetup::backend`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrainerConfig {
    /// Batch size per iteration.
    pub batch: usize,
    /// Train until the model's iteration counter reaches this value (`MAX_ITER`).
    pub max_iterations: u64,
    /// Persist after every `mirror_frequency` iterations (1 in the paper).
    pub mirror_frequency: u64,
    /// Whether training data is read encrypted from PM (true, the Plinius path) or used
    /// unencrypted (the Fig. 8 comparison baseline).
    pub encrypted_data: bool,
    /// RNG seed for batch sampling.
    pub seed: u64,
    /// Whether persists run inline ([`PipelineMode::Sync`]) or overlapped with the
    /// next iteration's compute ([`PipelineMode::Overlapped`]).
    pub pipeline: PipelineMode,
    /// How many committed epochs the PM mirror's ring retains (`>= 2`); only the
    /// mirror-backed persistence specs use it. Defaults to the `PLINIUS_RING`
    /// environment variable (2 when unset).
    pub ring_depth: usize,
    /// Which AES-GCM engine seals the model (hardware AES-NI + PCLMUL, scalar
    /// tables, or the reference kernels). Applies when the trainer deploys its own
    /// context; a context passed to [`PliniusBuilder::context`] keeps its enclave's
    /// policy. Defaults to the `PLINIUS_CRYPTO` environment variable (auto when
    /// unset). Sealed bytes are identical on every engine; only speed differs.
    pub crypto: EnginePolicy,
    /// Which GEMM engine the training hot path runs on (AVX-512/AVX2 vector
    /// kernels, the portable scalar kernel, the naive reference kernel, or the
    /// opt-in FMA variants; see [`GemmPolicy`]). Resolved against the host CPU and
    /// pinned on every layer when the trainer builds its network. Defaults to the
    /// `PLINIUS_GEMM` environment variable (auto when unset). Every engine except
    /// the opt-in `fma` one trains bit-identically.
    pub gemm: GemmPolicy,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        TrainerConfig {
            batch: 128,
            max_iterations: 500,
            mirror_frequency: 1,
            encrypted_data: true,
            seed: 0xBEEF,
            pipeline: PipelineMode::from_env(),
            ring_depth: ring_depth_from_env(),
            crypto: EnginePolicy::from_env(),
            gemm: GemmPolicy::from_env(),
        }
    }
}

/// Outcome of a (possibly resumed) training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingReport {
    /// `(iteration, loss)` for every iteration executed by this run.
    pub losses: Vec<(u64, f32)>,
    /// The model's iteration counter at the end of the run.
    pub final_iteration: u64,
    /// Simulated nanoseconds consumed by this run.
    pub simulated_ns: u64,
}

impl TrainingReport {
    /// Loss of the last executed iteration, if any.
    pub fn final_loss(&self) -> Option<f32> {
        self.losses.last().map(|(_, l)| *l)
    }
}

/// The Plinius training driver bound to one context, one enclave model, the PM-resident
/// training data and one persistence backend.
#[derive(Debug)]
pub struct PliniusTrainer {
    ctx: PliniusContext,
    network: Network,
    pm_data: PmDataset,
    plain_data: Option<Dataset>,
    backend: Box<dyn ModelPersistence>,
    config: TrainerConfig,
    last_persist_ns: u64,
}

impl PliniusTrainer {
    /// The enclave model being trained.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// The training context.
    pub fn context(&self) -> &PliniusContext {
        &self.ctx
    }

    /// The persistence backend driving model durability.
    pub fn backend(&self) -> &dyn ModelPersistence {
        self.backend.as_ref()
    }

    /// Activity counters of the persistence backend.
    pub fn persist_stats(&self) -> PersistStats {
        self.backend.persist_stats()
    }

    /// A cold clone of the backend's live PM mirror handle — same persistent model,
    /// own scratch buffers — or [`None`] when the backend has no mirror (or has not
    /// bound one yet). This is how an [`InferenceServer`](crate::InferenceServer)
    /// attaches to a trainer: the clone reads committed epochs through the seqlock
    /// snapshot protocol without ever contending on the trainer's staging buffers.
    pub fn mirror_handle(&self) -> Option<MirrorModel> {
        self.backend.mirror_model().cloned()
    }

    /// The model's current iteration counter.
    pub fn iteration(&self) -> u64 {
        self.network.iteration()
    }

    /// Whether the model has reached `max_iterations`.
    pub fn is_done(&self) -> bool {
        self.network.iteration() >= self.config.max_iterations
    }

    /// Executes one training iteration (lines 13–17 of Algorithm 2) and returns its loss.
    ///
    /// # Errors
    ///
    /// Propagates data-decryption, training and persistence errors.
    pub fn step(&mut self) -> Result<f32, PliniusError> {
        let batch = self.config.batch;
        // Batch sampling is a pure function of (seed, iteration counter), so a run
        // resumed from the PM mirror at iteration k draws exactly the batches an
        // uninterrupted run would have drawn from k onwards — crash/resume is
        // bit-for-bit deterministic. The avalanche mix keeps consecutive
        // iterations' seeds unrelated (a plain `seed + i * gamma` stride would
        // collide with SplitMix64's own increment and give overlapping states).
        let mut rng = StdRng::seed_from_u64(batch_seed(self.config.seed, self.network.iteration()));
        // Fetch a batch: decrypt it from PM (Plinius) or read plaintext (baseline).
        let (images, labels) = if self.config.encrypted_data {
            self.pm_data.decrypt_batch(&self.ctx, batch, &mut rng)?
        } else {
            self.pm_data.staging_cost_only(&self.ctx, batch);
            let data = self.plain_data.as_ref().ok_or(PliniusError::NoPmDataset)?;
            Ok::<_, PliniusError>(data.random_batch(batch, &mut rng))?
        };
        // Train for one iteration inside the enclave, charging the modeled compute cost.
        let flops = self.network.flops_per_sample() * batch as u64;
        self.ctx.enclave().charge_compute(flops);
        let loss = self.ctx.enclave().ecall("train_iteration", || {
            self.network.train_batch(&images, &labels, batch)
        })??;
        // Persist according to the configured frequency — the trainer does not know
        // (or care) which medium the backend writes to. In overlapped mode the
        // backend stages a cheap snapshot and publishes it in the background while
        // the next iteration computes; `drain` joins the tail publish.
        let iteration = self.network.iteration();
        if iteration.is_multiple_of(self.config.mirror_frequency) {
            let before = self.ctx.clock().now_ns();
            match self.config.pipeline {
                PipelineMode::Sync => self.backend.persist(&self.ctx, &self.network, iteration)?,
                PipelineMode::Overlapped => {
                    self.backend
                        .persist_async(&self.ctx, &self.network, iteration)?
                }
            }
            self.last_persist_ns = self.ctx.clock().now_ns().saturating_sub(before);
        } else {
            self.last_persist_ns = 0;
        }
        Ok(loss)
    }

    /// Simulated nanoseconds the most recent [`PliniusTrainer::step`] spent in its
    /// persistence call (0 when that step did not persist). The fleet scheduler uses
    /// this to serialize different tenants' publishes on the modeled PM write lane.
    pub fn last_persist_ns(&self) -> u64 {
        self.last_persist_ns
    }

    /// Joins and commits any in-flight background publish of the persistence backend.
    /// [`PliniusTrainer::run`]/[`PliniusTrainer::run_at_most`] call this on every
    /// exit path; it is needed explicitly only when driving [`PliniusTrainer::step`]
    /// by hand in overlapped mode.
    ///
    /// # Errors
    ///
    /// Propagates errors of the joined publish.
    pub fn drain(&mut self) -> Result<(), PliniusError> {
        self.backend.drain(&self.ctx)
    }

    /// Rolls the enclave model back to a retained `epoch` of the PM mirror's ring:
    /// drains any in-flight publish, then restores that epoch's weights and iteration
    /// counter into the live network. Training resumed afterwards re-executes from
    /// there, drawing bit-identical batches to a run that never advanced past it.
    ///
    /// # Errors
    ///
    /// Returns [`PliniusError::EpochNotRetained`] if the epoch has been evicted from
    /// (or never entered) the ring, or [`PliniusError::MirrorMismatch`] when the
    /// backend has no PM mirror to travel through.
    pub fn rollback_to(&mut self, epoch: u64) -> Result<(), PliniusError> {
        self.drain()?;
        let mirror = self.backend.mirror_model().cloned().ok_or_else(|| {
            PliniusError::MirrorMismatch(
                "the persistence backend has no PM mirror to roll back through".to_owned(),
            )
        })?;
        mirror.restore_epoch(&self.ctx, &mut self.network, epoch)?;
        Ok(())
    }

    /// How many torn snapshot reads the deployment's mirror readers have retried so
    /// far (the `mirror.torn_read_retries` statistic): concurrent serve-vs-train
    /// races that the seqlock protocol detected and resolved.
    pub fn torn_read_retries(&self) -> u64 {
        self.ctx.stats().value("mirror.torn_read_retries")
    }

    /// Runs until `max_iterations` is reached (the full Algorithm 2 loop).
    ///
    /// # Errors
    ///
    /// Propagates the first error of any iteration.
    pub fn run(&mut self) -> Result<TrainingReport, PliniusError> {
        self.run_at_most(u64::MAX)
    }

    /// Runs at most `limit` iterations (used by the crash and spot schedulers).
    ///
    /// # Errors
    ///
    /// Propagates the first error of any iteration.
    pub fn run_at_most(&mut self, limit: u64) -> Result<TrainingReport, PliniusError> {
        let start_ns = self.ctx.clock().now_ns();
        let mut losses = Vec::new();
        let mut executed = 0u64;
        let mut result = Ok(());
        while !self.is_done() && executed < limit {
            match self.step() {
                Ok(loss) => losses.push((self.network.iteration(), loss)),
                Err(e) => {
                    result = Err(e);
                    break;
                }
            }
            executed += 1;
        }
        // Join the tail publish on every exit path, so the committed PM state is
        // up to date when the run returns (successfully or not).
        let drained = self.backend.drain(&self.ctx);
        result?;
        drained?;
        Ok(TrainingReport {
            losses,
            final_iteration: self.network.iteration(),
            simulated_ns: self.ctx.clock().now_ns() - start_ns,
        })
    }

    /// Classification accuracy of the current enclave model over `dataset` (secure
    /// inference, §VI).
    pub fn accuracy(&mut self, dataset: &Dataset) -> f32 {
        self.network.accuracy(dataset)
    }
}

/// Shared description of a training deployment, used by the crash/spot drivers, the full
/// workflow and the benchmark harnesses.
#[derive(Debug, Clone)]
pub struct TrainingSetup {
    /// Hardware cost model (server profile).
    pub cost: CostModel,
    /// Size of the PM pool in bytes.
    pub pm_bytes: usize,
    /// Darknet configuration text of the model.
    pub model_config: String,
    /// The training dataset (loaded into PM once).
    pub dataset: Dataset,
    /// Trainer configuration (numeric knobs).
    pub trainer: TrainerConfig,
    /// Declarative persistence spec; [`PliniusBuilder::backend`] overrides it with an
    /// arbitrary [`ModelPersistence`] implementation.
    pub backend: PersistenceBackend,
    /// Model/weight initialisation seed.
    pub model_seed: u64,
}

impl TrainingSetup {
    /// A very small setup for tests and doc examples (tiny CNN, tiny synthetic dataset).
    pub fn small_test() -> Self {
        let mut rng = StdRng::seed_from_u64(7);
        TrainingSetup {
            cost: CostModel::sgx_eml_pm(),
            pm_bytes: 32 * 1024 * 1024,
            model_config: plinius_darknet::mnist_cnn_config(2, 4, 8),
            dataset: plinius_darknet::synthetic_mnist(96, &mut rng),
            trainer: TrainerConfig {
                batch: 8,
                max_iterations: 12,
                mirror_frequency: 1,
                encrypted_data: true,
                seed: 1,
                pipeline: PipelineMode::from_env(),
                ring_depth: ring_depth_from_env(),
                crypto: EnginePolicy::from_env(),
                gemm: GemmPolicy::from_env(),
            },
            backend: PersistenceBackend::PmMirror,
            model_seed: 3,
        }
    }

    /// Builds the enclave model described by this setup.
    ///
    /// # Errors
    ///
    /// Propagates configuration-parsing errors.
    pub fn build_network(&self) -> Result<Network, PliniusError> {
        let mut rng = StdRng::seed_from_u64(self.model_seed);
        build_network(&self.model_config, &mut rng).map_err(PliniusError::from)
    }
}

/// Salt mixed into the seed of the key generated by [`PliniusBuilder::build`] when no
/// context is supplied, so data-sampling and key randomness differ.
const LOCAL_KEY_SALT: u64 = 0x6c6f_6361_6c00;

/// Fluent constructor for [`PliniusTrainer`] (lines 2–12 of Algorithm 2).
///
/// The builder starts from a [`TrainingSetup`], lets individual knobs and the
/// persistence backend be overridden, and wires everything together in `build()`:
/// register the enclave model's memory, open the PM dataset, and either restore the
/// model from the backend (if a persisted copy exists) or let the backend prepare
/// fresh state.
///
/// ```
/// use plinius::{PliniusBuilder, TrainingSetup};
///
/// // Local deployment: fresh PM pool, seed-derived key, dataset loaded into PM.
/// let mut trainer = PliniusBuilder::new(TrainingSetup::small_test())
///     .mirror_frequency(2)
///     .max_iterations(4)
///     .seed(42)
///     .build()?;
/// let report = trainer.run()?;
/// assert_eq!(report.final_iteration, 4);
/// # Ok::<(), plinius::PliniusError>(())
/// ```
#[derive(Debug)]
pub struct PliniusBuilder {
    setup: TrainingSetup,
    ctx: Option<PliniusContext>,
    backend: Option<Box<dyn ModelPersistence>>,
    plain_data: Option<Dataset>,
    tenant: Option<TenantId>,
}

impl PliniusBuilder {
    /// Starts a builder from a deployment description.
    pub fn new(setup: TrainingSetup) -> Self {
        PliniusBuilder {
            setup,
            ctx: None,
            backend: None,
            plain_data: None,
            tenant: None,
        }
    }

    /// Scopes the trainer to `tenant`: its mirror, dataset and key live in the
    /// tenant's own Romulus root pair and enclave key-store slot. A context passed
    /// via [`PliniusBuilder::context`] is re-scoped with
    /// [`PliniusContext::for_tenant`]; a locally deployed one is scoped before the
    /// key is provisioned and the dataset loaded.
    pub fn tenant(mut self, tenant: TenantId) -> Self {
        self.tenant = Some(tenant);
        self
    }

    /// Uses an existing deployment context (pool, enclave, provisioned key) instead of
    /// creating a fresh local one. Crash/resume flows re-open a context over the
    /// surviving pool and pass it here.
    pub fn context(mut self, ctx: PliniusContext) -> Self {
        self.ctx = Some(ctx);
        self
    }

    /// Persists the model through `backend` instead of the declarative
    /// [`TrainingSetup::backend`] spec.
    pub fn backend(self, backend: impl ModelPersistence + 'static) -> Self {
        self.backend_boxed(Box::new(backend))
    }

    /// Like [`PliniusBuilder::backend`], for an already-boxed trait object.
    pub fn backend_boxed(mut self, backend: Box<dyn ModelPersistence>) -> Self {
        self.backend = Some(backend);
        self
    }

    /// Overrides the batch size.
    pub fn batch(mut self, batch: usize) -> Self {
        self.setup.trainer.batch = batch;
        self
    }

    /// Overrides the target iteration count (`MAX_ITER`).
    pub fn max_iterations(mut self, max_iterations: u64) -> Self {
        self.setup.trainer.max_iterations = max_iterations;
        self
    }

    /// Overrides how often the model is persisted (every `n` iterations).
    pub fn mirror_frequency(mut self, n: u64) -> Self {
        self.setup.trainer.mirror_frequency = n;
        self
    }

    /// Overrides the batch-sampling seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.setup.trainer.seed = seed;
        self
    }

    /// Selects encrypted PM training data (the Plinius path) or the plaintext baseline.
    pub fn encrypted_data(mut self, encrypted: bool) -> Self {
        self.setup.trainer.encrypted_data = encrypted;
        self
    }

    /// Selects how persists are scheduled: inline ([`PipelineMode::Sync`], the
    /// default) or overlapped with the next iteration's compute
    /// ([`PipelineMode::Overlapped`]). Results are bit-identical either way; only
    /// timing differs.
    pub fn pipeline_mode(mut self, mode: PipelineMode) -> Self {
        self.setup.trainer.pipeline = mode;
        self
    }

    /// Overrides how many committed epochs the PM mirror's ring retains (`>= 2`).
    /// Only applies when this builder instantiates a mirror-backed spec; an explicit
    /// [`PliniusBuilder::backend`] and an already-allocated mirror keep their own
    /// depth.
    pub fn ring_depth(mut self, ring: usize) -> Self {
        self.setup.trainer.ring_depth = ring;
        self
    }

    /// Pins the AES-GCM engine the deployment seals with (hardware, scalar or
    /// reference; see [`EnginePolicy`]). Applies when this builder deploys its own
    /// context; an explicit [`PliniusBuilder::context`] keeps its enclave's policy.
    /// Sealed bytes are engine-independent, so persisted models stay portable.
    pub fn crypto_engine(mut self, policy: EnginePolicy) -> Self {
        self.setup.trainer.crypto = policy;
        self
    }

    /// Pins the GEMM engine the training hot path runs on (vector, scalar,
    /// reference or FMA; see [`GemmPolicy`]). The policy is resolved against the
    /// host CPU in `build()` and pinned on every layer of the enclave model. Every
    /// policy except the opt-in `fma` one trains bit-identically, so persisted
    /// models stay portable across engines.
    pub fn gemm_engine(mut self, policy: GemmPolicy) -> Self {
        self.setup.trainer.gemm = policy;
        self
    }

    /// Plaintext dataset for the unencrypted baseline; defaults to the setup's dataset.
    pub fn plain_data(mut self, data: Dataset) -> Self {
        self.plain_data = Some(data);
        self
    }

    /// Builds the trainer: validates the configuration, deploys a local context if none
    /// was supplied, registers the enclave model's memory, opens the PM dataset, and
    /// restores from the persistence backend when a persisted model exists.
    ///
    /// # Errors
    ///
    /// Returns [`PliniusError::InvalidConfig`] if `mirror_frequency` is zero,
    /// [`PliniusError::NoPmDataset`] if no dataset was loaded into PM, or any
    /// restore/allocation error from the backend.
    pub fn build(self) -> Result<PliniusTrainer, PliniusError> {
        let PliniusBuilder {
            setup,
            ctx,
            backend,
            plain_data,
            tenant,
        } = self;
        let config = setup.trainer.clone();
        // A zero frequency would silently never persist (`is_multiple_of(0)` is
        // false for every iteration) — reject it loudly instead.
        if config.mirror_frequency == 0 {
            return Err(PliniusError::InvalidConfig(
                "mirror_frequency must be at least 1".to_owned(),
            ));
        }
        // A one-deep "ring" could not distinguish the committing epoch from the last
        // complete one, which is the whole crash-consistency story — refuse early.
        if config.ring_depth < 2 {
            return Err(PliniusError::InvalidConfig(format!(
                "ring_depth must be at least 2, got {}",
                config.ring_depth
            )));
        }
        let ctx = match ctx {
            Some(ctx) => match tenant {
                Some(t) if t != ctx.tenant() => ctx.for_tenant(t),
                _ => ctx,
            },
            None => {
                // Local deployment for tests and examples: fresh pool, seed-derived
                // key provisioned directly (production uses the attested Fig. 5
                // workflow), dataset loaded into PM.
                let ctx = PliniusContext::create_with_crypto(
                    setup.cost.clone(),
                    setup.pm_bytes,
                    config.crypto,
                )?;
                let ctx = match tenant {
                    Some(t) => ctx.for_tenant(t),
                    None => ctx,
                };
                let mut rng = StdRng::seed_from_u64(config.seed ^ LOCAL_KEY_SALT);
                ctx.provision_key_directly(Key::generate_128(&mut rng));
                PmDataset::load(&ctx, &setup.dataset)?;
                ctx
            }
        };
        let pm_data = PmDataset::open(&ctx)?;
        let mut network = setup.build_network()?;
        // Resolve the configured GEMM policy once and pin the engine across the layer
        // stack, so the hot path ignores later env changes.
        network.set_gemm_policy(config.gemm);
        // The enclave model and its training buffers occupy trusted memory; this is what
        // pushes large models past the EPC limit.
        ctx.enclave()
            .alloc_trusted((network.model_bytes() * 2) as u64)
            .map_err(PliniusError::from)?;
        let mut backend =
            backend.unwrap_or_else(|| setup.backend.instantiate_with_ring(config.ring_depth));
        if backend.exists(&ctx) {
            backend.restore(&ctx, &mut network)?;
        } else {
            backend.prepare(&ctx, &network)?;
        }
        let plain_data =
            plain_data.or_else(|| (!config.encrypted_data).then(|| setup.dataset.clone()));
        Ok(PliniusTrainer {
            ctx,
            network,
            pm_data,
            plain_data,
            backend,
            config,
            last_persist_ns: 0,
        })
    }
}

/// Mixes the run seed and the iteration counter into an iteration-local RNG
/// seed (SplitMix64-style finalizer for full avalanche).
fn batch_seed(seed: u64, iteration: u64) -> u64 {
    let mut z = seed ^ iteration.wrapping_mul(0xa076_1d64_78bd_642f);
    z = (z ^ (z >> 32)).wrapping_mul(0xe703_7ed1_a0b4_28db);
    z ^ (z >> 29)
}

/// Result of a crash-interrupted training run (Figs. 9 and 10).
#[derive(Debug, Clone, PartialEq)]
pub struct CrashRunReport {
    /// Loss of every executed iteration, in global execution order (including iterations
    /// wasted by a non-resilient system after restarts).
    pub losses: Vec<f32>,
    /// The model's final iteration counter.
    pub completed_iteration: u64,
    /// Total iterations executed across all restarts.
    pub total_iterations_executed: u64,
    /// Number of crashes injected.
    pub crashes: usize,
}

/// Runs a training job that is killed (crashed) after the given numbers of *executed*
/// iterations and restarted each time, as in the Fig. 9 experiment.
///
/// With `resilient = true` the setup's persistence backend (PM mirror, SSD checkpoint
/// or the hybrid tier) persists and restores the model, so training resumes where it
/// left off; with `resilient = false` nothing is persisted and every restart begins
/// from freshly initialised weights (the paper's non-crash-resilient comparison).
///
/// SSD-backed specs write to one durable simulated SSD that — like a real disk —
/// survives every simulated process kill.
///
/// # Errors
///
/// Propagates errors from any phase of any segment.
pub fn train_with_crash_schedule(
    setup: &TrainingSetup,
    crash_after: &[u64],
    resilient: bool,
) -> Result<CrashRunReport, PliniusError> {
    let mut rng = StdRng::seed_from_u64(setup.trainer.seed);
    let key = Key::generate_128(&mut rng);
    // Initial deployment: create the pool, provision the key, load the data once.
    let ctx = PliniusContext::create(setup.cost.clone(), setup.pm_bytes)?;
    ctx.provision_key_directly(key.clone());
    PmDataset::load(&ctx, &setup.dataset)?;
    let pool = ctx.pool().clone();
    drop(ctx);

    let mut losses = Vec::new();
    let mut executed = 0u64;
    let mut crashes = 0usize;
    let mut crash_points = crash_after.to_vec();
    crash_points.sort_unstable();
    let mut completed_iteration;
    loop {
        // (Re)open the deployment over the surviving PM pool.
        let ctx = PliniusContext::open(pool.clone(), setup.cost.clone())?;
        ctx.provision_key_directly(key.clone());
        // SSD-backed specs bind to the deployment's durable shared SSD, which — like a
        // real disk — outlives every simulated process kill (a crash wipes volatile
        // state and unflushed PM lines, not the disk).
        let backend: Box<dyn ModelPersistence> = if resilient {
            setup
                .backend
                .instantiate_with_ring(setup.trainer.ring_depth)
        } else {
            Box::new(NoOpBackend)
        };
        let mut trainer = PliniusBuilder::new(setup.clone())
            .context(ctx)
            .backend_boxed(backend)
            .build()?;
        // Run until the next crash point or completion.
        let next_crash = crash_points.iter().find(|&&p| p > executed).copied();
        let limit = match next_crash {
            Some(p) => p - executed,
            None => u64::MAX,
        };
        let report = trainer.run_at_most(limit)?;
        executed += report.losses.len() as u64;
        losses.extend(report.losses.iter().map(|(_, l)| *l));
        completed_iteration = report.final_iteration;
        if trainer.is_done() {
            break;
        }
        // Kill the process: volatile state (enclave model, caches) is lost; whatever was
        // not flushed to PM is dropped.
        crashes += 1;
        let mut crash_rng = StdRng::seed_from_u64(executed);
        pool.crash(&mut crash_rng, CrashMode::DropUnflushed);
        // Safety valve for the non-resilient run: it can in principle never finish if
        // crashes are too frequent; cap the total work at 20x the target.
        if executed > setup.trainer.max_iterations * 20 {
            break;
        }
    }
    Ok(CrashRunReport {
        losses,
        completed_iteration,
        total_iterations_executed: executed,
        crashes,
    })
}

/// Converts a spot-instance state curve into a crash schedule: training executes
/// `iterations_per_step` iterations during every 5-minute step in which the instance is
/// running, and is killed at every running-to-stopped transition (Fig. 10).
pub fn spot_crash_schedule(sim: &SpotSimulator, iterations_per_step: u64) -> Vec<u64> {
    let mut schedule = Vec::new();
    let mut executed = 0u64;
    let curve = sim.state_curve();
    for window in curve.windows(2) {
        if window[0].running {
            executed += iterations_per_step;
            if !window[1].running {
                schedule.push(executed);
            }
        }
    }
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mirror::MirrorModel;
    use plinius_spot::SpotTrace;

    fn setup() -> TrainingSetup {
        TrainingSetup::small_test()
    }

    fn deploy(setup: &TrainingSetup) -> (PliniusContext, Key) {
        let mut rng = StdRng::seed_from_u64(11);
        let key = Key::generate_128(&mut rng);
        let ctx = PliniusContext::create(setup.cost.clone(), setup.pm_bytes).unwrap();
        ctx.provision_key_directly(key.clone());
        PmDataset::load(&ctx, &setup.dataset).unwrap();
        (ctx, key)
    }

    #[test]
    fn training_loop_runs_and_mirrors_every_iteration() {
        let setup = setup();
        let (ctx, _key) = deploy(&setup);
        let mut trainer = PliniusBuilder::new(setup.clone())
            .context(ctx)
            .build()
            .unwrap();
        let report = trainer.run().unwrap();
        assert_eq!(report.final_iteration, setup.trainer.max_iterations);
        assert_eq!(report.losses.len(), setup.trainer.max_iterations as usize);
        assert!(report.final_loss().unwrap().is_finite());
        assert!(report.simulated_ns > 0);
        assert!(trainer.is_done());
        assert_eq!(trainer.backend().label(), "pm-mirror");
        assert_eq!(
            trainer.persist_stats().persists,
            setup.trainer.max_iterations
        );
        // The mirror in PM carries the final iteration counter.
        let mirror = MirrorModel::open(trainer.context()).unwrap();
        assert_eq!(
            mirror.iteration(trainer.context()).unwrap(),
            setup.trainer.max_iterations
        );
    }

    #[test]
    fn resumed_training_continues_from_mirror() {
        let setup = setup();
        let (ctx, key) = deploy(&setup);
        let mut trainer = PliniusBuilder::new(setup.clone())
            .context(ctx)
            .build()
            .unwrap();
        trainer.run_at_most(5).unwrap();
        assert_eq!(trainer.iteration(), 5);
        let pool = trainer.context().pool().clone();
        drop(trainer);
        // Restart: fresh enclave, fresh model object — training must resume at 5.
        let ctx2 = PliniusContext::open(pool, setup.cost.clone()).unwrap();
        ctx2.provision_key_directly(key);
        let mut resumed = PliniusBuilder::new(setup.clone())
            .context(ctx2)
            .build()
            .unwrap();
        assert_eq!(resumed.iteration(), 5);
        assert_eq!(resumed.persist_stats().restores, 1);
        let report = resumed.run().unwrap();
        assert_eq!(report.final_iteration, setup.trainer.max_iterations);
        assert_eq!(report.losses.len() as u64, setup.trainer.max_iterations - 5);
    }

    #[test]
    fn crash_schedule_resilient_does_not_repeat_iterations() {
        let mut setup = setup();
        setup.trainer.max_iterations = 10;
        let report = train_with_crash_schedule(&setup, &[3, 7], true).unwrap();
        assert_eq!(report.crashes, 2);
        assert_eq!(report.completed_iteration, 10);
        assert_eq!(report.total_iterations_executed, 10);
        assert_eq!(report.losses.len(), 10);
    }

    #[test]
    fn zero_mirror_frequency_is_rejected() {
        let setup = setup();
        let (ctx, _key) = deploy(&setup);
        match PliniusBuilder::new(setup)
            .context(ctx)
            .mirror_frequency(0)
            .build()
        {
            Err(PliniusError::InvalidConfig(msg)) => assert!(msg.contains("mirror_frequency")),
            other => panic!("expected InvalidConfig, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn crashed_resilient_run_matches_uninterrupted_run_exactly() {
        // With momentum 0 the entire training state lives in the five persisted
        // tensors per layer (the Darknet weight format carries no momentum
        // buffers), so resume from *any* backend must be bit-for-bit
        // deterministic — the loss curve of a crashed run equals the
        // uninterrupted one for the PM mirror, the SSD baseline and the hybrid
        // tier alike.
        for backend in [
            PersistenceBackend::PmMirror,
            PersistenceBackend::SsdCheckpoint("crash.ckpt".into()),
            PersistenceBackend::HybridTiered {
                ssd_path: "crash-demote.ckpt".into(),
                demote_every: 4,
            },
        ] {
            let mut setup = setup();
            setup.model_config = plinius_darknet::mnist_cnn_config_with_momentum(2, 4, 8, 0.0);
            setup.trainer.max_iterations = 12;
            setup.backend = backend.clone();
            let uninterrupted = train_with_crash_schedule(&setup, &[], true).unwrap();
            let crashed = train_with_crash_schedule(&setup, &[3, 8], true).unwrap();
            assert_eq!(uninterrupted.crashes, 0, "{backend:?}");
            assert_eq!(crashed.crashes, 2, "{backend:?}");
            // Resumes at the correct iteration: no iteration is redone or skipped.
            assert_eq!(crashed.completed_iteration, 12, "{backend:?}");
            assert_eq!(crashed.total_iterations_executed, 12, "{backend:?}");
            // The whole loss curve — including the final loss — is identical.
            assert_eq!(crashed.losses, uninterrupted.losses, "{backend:?}");
        }
    }

    #[test]
    fn crashed_resilient_run_converges_like_uninterrupted_run() {
        // With the default momentum the post-crash updates differ slightly (the
        // momentum buffers are volatile, exactly as in Darknet's weight files),
        // but the crashed run must still land at the uninterrupted final loss,
        // not anywhere near a from-scratch restart.
        let mut setup = setup();
        setup.trainer.max_iterations = 60;
        let uninterrupted = train_with_crash_schedule(&setup, &[], true).unwrap();
        let crashed = train_with_crash_schedule(&setup, &[20, 40], true).unwrap();
        assert_eq!(crashed.total_iterations_executed, 60);
        let initial = uninterrupted.losses[0];
        let final_a = *uninterrupted.losses.last().unwrap();
        let final_b = *crashed.losses.last().unwrap();
        let progress = initial - final_a;
        assert!(
            progress > 0.3,
            "run too short to measure convergence ({progress})"
        );
        // Same final loss within 20% of the achieved progress.
        assert!(
            (final_a - final_b).abs() < 0.2 * progress,
            "crashed run diverged: {final_b} vs {final_a} (initial {initial})"
        );
    }

    #[test]
    fn resume_restores_the_exact_mirror_iteration() {
        let setup = setup();
        let (ctx, key) = deploy(&setup);
        let mut trainer = PliniusBuilder::new(setup.clone())
            .context(ctx)
            .build()
            .unwrap();
        trainer.run_at_most(7).unwrap();
        let pool = trainer.context().pool().clone();
        drop(trainer);
        // Power failure with arbitrary cache eviction: only flushed state survives.
        let mut crash_rng = StdRng::seed_from_u64(99);
        pool.crash(&mut crash_rng, CrashMode::ArbitraryEviction);
        let ctx2 = PliniusContext::open(pool, setup.cost.clone()).unwrap();
        ctx2.provision_key_directly(key);
        let mirror = MirrorModel::open(&ctx2).unwrap();
        assert_eq!(mirror.iteration(&ctx2).unwrap(), 7);
        let resumed = PliniusBuilder::new(setup).context(ctx2).build().unwrap();
        assert_eq!(resumed.iteration(), 7);
    }

    #[test]
    fn crash_schedule_non_resilient_wastes_iterations() {
        let mut setup = setup();
        setup.trainer.max_iterations = 6;
        let resilient = train_with_crash_schedule(&setup, &[4], true).unwrap();
        let fragile = train_with_crash_schedule(&setup, &[4], false).unwrap();
        assert_eq!(resilient.total_iterations_executed, 6);
        // The non-resilient run restarts from scratch after the crash: 4 wasted + 6.
        assert_eq!(fragile.total_iterations_executed, 10);
        assert_eq!(fragile.completed_iteration, 6);
        assert_eq!(fragile.crashes, 1);
    }

    #[test]
    fn ssd_backend_also_resumes_across_restarts() {
        // Unlike the PM pool, the simulated SSD lives in the backend's file system:
        // carry it across the restart, exactly as a disk would survive a process kill.
        let mut setup = setup();
        setup.trainer.max_iterations = 8;
        let (ctx, key) = deploy(&setup);
        let fs = crate::persist::shared_ssd(&ctx);
        let mut trainer = PliniusBuilder::new(setup.clone())
            .context(ctx)
            .backend(crate::persist::SsdCheckpointBackend::on_filesystem(
                fs.clone(),
                "ckpt.bin",
            ))
            .build()
            .unwrap();
        trainer.run_at_most(5).unwrap();
        let pool = trainer.context().pool().clone();
        drop(trainer);
        let ctx2 = PliniusContext::open(pool, setup.cost.clone()).unwrap();
        ctx2.provision_key_directly(key);
        let mut resumed = PliniusBuilder::new(setup)
            .context(ctx2)
            .backend(crate::persist::SsdCheckpointBackend::on_filesystem(
                fs, "ckpt.bin",
            ))
            .build()
            .unwrap();
        assert_eq!(resumed.iteration(), 5);
        assert_eq!(resumed.backend().label(), "ssd-checkpoint");
        let report = resumed.run().unwrap();
        assert_eq!(report.final_iteration, 8);
    }

    #[test]
    fn spot_schedule_matches_interruptions() {
        let trace = SpotTrace::new(vec![0.09, 0.09, 0.2, 0.09, 0.09, 0.3, 0.09]).unwrap();
        let sim = SpotSimulator::new(trace, 0.0955);
        let schedule = spot_crash_schedule(&sim, 10);
        assert_eq!(schedule, vec![20, 40]);
    }

    #[test]
    fn plaintext_data_path_requires_dataset_copy() {
        let setup = setup();
        let (ctx, _key) = deploy(&setup);
        let mut trainer = PliniusBuilder::new(setup)
            .context(ctx)
            .encrypted_data(false)
            .max_iterations(2)
            .build()
            .unwrap();
        let report = trainer.run().unwrap();
        assert_eq!(report.final_iteration, 2);
    }
}
