//! A zero-copy virtual filesystem view of the PM mirror: epoch time-travel for
//! humans and tools.
//!
//! The mirror's epoch ring (see [`crate::mirror`]) retains the `R` newest committed
//! epochs of the sealed model. This module exposes that ring as a lazily
//! materialised directory tree — the idiom of FUSE layers that mount one big
//! indexed file as a virtual hierarchy — without ever copying the PM-resident
//! sealed bytes into intermediate buffers:
//!
//! ```text
//! /
//! ├── HEAD                        -> epoch/{newest}        (symlink-style entry)
//! └── epoch/
//!     ├── {n}/
//!     │   ├── meta                  committed epoch, iteration, layout summary
//!     │   ├── layer0-tensor0.sealed AES-GCM sealed blob, byte-exact from PM
//!     │   ├── layer0-tensor1.sealed
//!     │   └── ...
//!     └── {m}/ ...
//! ```
//!
//! Directory listings are computed on demand from the mirror's PM headers —
//! nothing is materialised up front. Reads of `*.sealed` files go straight from
//! PM into the caller's buffer through the mirror's seqlock-validated
//! [`MirrorModel::read_sealed_into`] primitive: **no heap allocation on the
//! sealed-bytes read path** (enforced by the counting-allocator test), and no
//! torn bytes even while a live trainer keeps cycling the ring.
//!
//! On top of the tree sit three epoch tools:
//!
//! * [`MirrorVfs::epoch_diff`] — per-tensor changed-byte and L2-delta summary
//!   between two retained epochs;
//! * [`MirrorVfs::export`] / [`MirrorVfs::import`] — move a sealed epoch between
//!   deployments as a [`SealedEpoch`] payload. The sealed bytes are
//!   deployment-portable by construction: each blob is authenticated by
//!   `(key, AAD = "layer{i}-tensor{j}")` alone, independent of PM offsets or ring
//!   depth, so any deployment holding the model key can verify and adopt them.

use crate::mirror::MirrorModel;
use crate::{PliniusContext, PliniusError};
use plinius_crypto::SealedView;

/// What kind of entry a VFS path names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VfsKind {
    /// A directory (listable).
    Directory,
    /// A regular file (readable with [`Vfs::read_into`]).
    File,
    /// A symlink-style entry (resolvable with [`Vfs::read_link`]).
    Symlink,
}

/// Metadata of one VFS entry, as returned by [`Vfs::list`] and [`Vfs::stat`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VfsEntry {
    /// Entry name (final path component; `/` for the root).
    pub name: String,
    /// Entry kind.
    pub kind: VfsKind,
    /// Byte length of a file's contents (or of a symlink's target); 0 for
    /// directories.
    pub len: usize,
}

/// A virtual filesystem over one deployment: list, stat and read entries of a
/// lazily materialised tree. Paths are `/`-separated; a leading slash is
/// optional.
pub trait Vfs {
    /// Lists the entries of the directory at `path`.
    ///
    /// # Errors
    ///
    /// Returns [`PliniusError::VfsPath`] if the path does not name a directory.
    fn list(&self, path: &str) -> Result<Vec<VfsEntry>, PliniusError>;

    /// Metadata of the entry at `path`.
    ///
    /// # Errors
    ///
    /// Returns [`PliniusError::VfsPath`] if the path names nothing.
    fn stat(&self, path: &str) -> Result<VfsEntry, PliniusError>;

    /// Reads the file at `path` into `out`, returning the bytes written.
    ///
    /// # Errors
    ///
    /// Returns [`PliniusError::VfsPath`] for non-files, or an error if `out` is
    /// too small.
    fn read_into(&self, path: &str, out: &mut [u8]) -> Result<usize, PliniusError>;

    /// Resolves the symlink-style entry at `path` to its target.
    ///
    /// # Errors
    ///
    /// Returns [`PliniusError::VfsPath`] if the path is not a symlink.
    fn read_link(&self, path: &str) -> Result<String, PliniusError>;
}

/// A parsed VFS path; carries no owned data so resolving allocates nothing.
enum Resolved {
    Root,
    Head,
    EpochDir,
    Epoch(u64),
    Meta(u64),
    Sealed {
        epoch: u64,
        flat: usize,
        sealed_len: usize,
    },
}

/// Per-tensor difference between two epochs of the same mirror.
#[derive(Debug, Clone, PartialEq)]
pub struct TensorDiff {
    /// Trainable-layer index.
    pub layer: usize,
    /// Tensor index within the layer.
    pub tensor: usize,
    /// Number of plaintext bytes that differ between the two epochs.
    pub changed_bytes: usize,
    /// Euclidean (L2) norm of the per-parameter deltas.
    pub l2_delta: f64,
}

/// Summary of [`MirrorVfs::epoch_diff`]: what changed between two retained
/// epochs.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochDiff {
    /// The older epoch compared.
    pub from: u64,
    /// The newer epoch compared.
    pub to: u64,
    /// Per-tensor breakdown, in layer-major order.
    pub tensors: Vec<TensorDiff>,
    /// Total plaintext bytes that differ.
    pub changed_bytes: usize,
    /// L2 norm of the full parameter-vector delta.
    pub l2_delta: f64,
}

/// A sealed epoch lifted out of the ring: the deployment-portable migration
/// payload. The arena is the layer-major concatenation of the epoch's AES-GCM
/// sealed tensor blobs, byte-exact as they sat on PM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SealedEpoch {
    /// Epoch number in the source deployment.
    pub epoch: u64,
    /// Training iteration recorded with the epoch.
    pub iteration: u64,
    /// Sealed length of every tensor (layer-major), pinning the model layout.
    pub sealed_lens: Vec<u64>,
    /// Concatenated sealed blobs (layer-major).
    pub arena: Vec<u8>,
}

/// Magic + version prefix of the [`SealedEpoch`] wire format.
const SEALED_EPOCH_MAGIC: &[u8; 8] = b"PLNSEAL1";

impl SealedEpoch {
    /// Serialises the payload:
    /// `magic ‖ epoch ‖ iteration ‖ num_tensors ‖ sealed_lens... ‖ arena`.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32 + self.sealed_lens.len() * 8 + self.arena.len());
        out.extend_from_slice(SEALED_EPOCH_MAGIC);
        out.extend_from_slice(&self.epoch.to_le_bytes());
        out.extend_from_slice(&self.iteration.to_le_bytes());
        out.extend_from_slice(&(self.sealed_lens.len() as u64).to_le_bytes());
        for len in &self.sealed_lens {
            out.extend_from_slice(&len.to_le_bytes());
        }
        out.extend_from_slice(&self.arena);
        out
    }

    /// Parses a payload serialised by [`SealedEpoch::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`PliniusError::MirrorMismatch`] on a malformed or truncated
    /// payload (authenticity is checked later, at import, against the model key).
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, PliniusError> {
        let mut off = 0usize;
        let mut take = |n: usize| -> Result<&[u8], PliniusError> {
            let end = off
                .checked_add(n)
                .filter(|&e| e <= bytes.len())
                .ok_or_else(|| {
                    PliniusError::MirrorMismatch("truncated sealed-epoch payload".into())
                })?;
            let chunk = &bytes[off..end];
            off = end;
            Ok(chunk)
        };
        let read_u64 = |chunk: &[u8]| u64::from_le_bytes(chunk.try_into().expect("8 bytes"));
        if take(8)? != SEALED_EPOCH_MAGIC {
            return Err(PliniusError::MirrorMismatch(
                "not a sealed-epoch payload (bad magic)".into(),
            ));
        }
        let epoch = read_u64(take(8)?);
        let iteration = read_u64(take(8)?);
        let num_tensors = read_u64(take(8)?) as usize;
        if num_tensors > 1 << 20 {
            return Err(PliniusError::MirrorMismatch(format!(
                "implausible tensor count {num_tensors} in sealed-epoch payload"
            )));
        }
        let mut sealed_lens = Vec::with_capacity(num_tensors);
        for _ in 0..num_tensors {
            sealed_lens.push(read_u64(take(8)?));
        }
        let arena_len: u64 = sealed_lens.iter().sum();
        let arena = take(arena_len as usize)?.to_vec();
        if off != bytes.len() {
            return Err(PliniusError::MirrorMismatch(
                "trailing bytes after sealed-epoch payload".into(),
            ));
        }
        Ok(SealedEpoch {
            epoch,
            iteration,
            sealed_lens,
            arena,
        })
    }
}

/// The [`Vfs`] implementation over one mirror deployment. Holds cheap clones of
/// the context and mirror handle, so it can attach to a live trainer
/// (`trainer.mirror_handle()`) or to a recovered pool ([`MirrorModel::open`])
/// without disturbing either.
#[derive(Debug, Clone)]
pub struct MirrorVfs {
    ctx: PliniusContext,
    mirror: MirrorModel,
}

fn no_such_path(path: &str) -> PliniusError {
    PliniusError::VfsPath(path.to_string())
}

impl MirrorVfs {
    /// Mounts the VFS over `mirror` in `ctx`.
    pub fn new(ctx: &PliniusContext, mirror: &MirrorModel) -> Self {
        MirrorVfs {
            ctx: ctx.clone(),
            mirror: mirror.clone(),
        }
    }

    /// The underlying mirror handle.
    pub fn mirror(&self) -> &MirrorModel {
        &self.mirror
    }

    /// The deployment context the VFS reads from.
    pub fn context(&self) -> &PliniusContext {
        &self.ctx
    }

    /// Resolves a path without allocating: every component is matched by
    /// borrowed-`&str` splitting, so the sealed-file read path stays
    /// allocation-free.
    fn resolve(&self, path: &str) -> Result<Resolved, PliniusError> {
        let p = path.strip_prefix('/').unwrap_or(path);
        let p = p.strip_suffix('/').unwrap_or(p);
        if p.is_empty() {
            return Ok(Resolved::Root);
        }
        if p == "HEAD" {
            return Ok(Resolved::Head);
        }
        if p == "epoch" {
            return Ok(Resolved::EpochDir);
        }
        let rest = p.strip_prefix("epoch/").ok_or_else(|| no_such_path(path))?;
        let (num, tail) = match rest.split_once('/') {
            Some((num, tail)) => (num, Some(tail)),
            None => (rest, None),
        };
        let epoch: u64 = num.parse().map_err(|_| no_such_path(path))?;
        let Some(tail) = tail else {
            return Ok(Resolved::Epoch(epoch));
        };
        if tail == "meta" {
            return Ok(Resolved::Meta(epoch));
        }
        let stem = tail
            .strip_suffix(".sealed")
            .ok_or_else(|| no_such_path(path))?;
        let layer_tensor = stem
            .strip_prefix("layer")
            .ok_or_else(|| no_such_path(path))?;
        let (layer, tensor) = layer_tensor
            .split_once("-tensor")
            .ok_or_else(|| no_such_path(path))?;
        let layer: usize = layer.parse().map_err(|_| no_such_path(path))?;
        let tensor: usize = tensor.parse().map_err(|_| no_such_path(path))?;
        for (flat, slot) in self.mirror.slot_layout().iter().enumerate() {
            if slot.layer == layer && slot.tensor == tensor {
                return Ok(Resolved::Sealed {
                    epoch,
                    flat,
                    sealed_len: slot.sealed_len,
                });
            }
        }
        Err(no_such_path(path))
    }

    /// The newest committed epoch (the `HEAD` target).
    fn head_epoch(&self) -> Result<u64, PliniusError> {
        self.mirror.epoch(&self.ctx)
    }

    /// Errors unless `epoch` is currently retained in the ring; maps eviction to
    /// a path error so directory traversal reads naturally.
    fn check_retained(&self, epoch: u64, path: &str) -> Result<(), PliniusError> {
        match self.mirror.epoch_iteration(&self.ctx, epoch) {
            Ok(_) => Ok(()),
            Err(PliniusError::EpochNotRetained(_)) => Err(no_such_path(path)),
            Err(e) => Err(e),
        }
    }

    /// The contents of an epoch's `meta` file.
    fn meta_text(&self, epoch: u64) -> Result<String, PliniusError> {
        let iteration = self.mirror.epoch_iteration(&self.ctx, epoch)?;
        let layout = self.mirror.slot_layout();
        let sealed_bytes: usize = layout.iter().map(|s| s.sealed_len).sum();
        Ok(format!(
            "epoch: {epoch}\niteration: {iteration}\nring_depth: {}\nlayers: {}\ntensors: {}\nsealed_bytes: {sealed_bytes}\n",
            self.mirror.ring_depth(),
            self.mirror.num_layers(),
            layout.len(),
        ))
    }

    /// Per-tensor changed-byte and L2-delta summary between two retained epochs
    /// (both are decrypted in-enclave; the sealed ring is never modified).
    ///
    /// # Errors
    ///
    /// Returns [`PliniusError::EpochNotRetained`] if either epoch left the ring,
    /// [`PliniusError::KeyNotProvisioned`] without the model key, or
    /// authentication failures on tampered blobs.
    pub fn epoch_diff(&self, from: u64, to: u64) -> Result<EpochDiff, PliniusError> {
        let gcm = self.ctx.gcm()?;
        let layout = self.mirror.slot_layout().to_vec();
        let max_sealed = layout.iter().map(|s| s.sealed_len).max().unwrap_or(0);
        let max_plain = layout.iter().map(|s| s.plain_len).max().unwrap_or(0);
        let mut sealed_a = vec![0u8; max_sealed];
        let mut sealed_b = vec![0u8; max_sealed];
        let mut plain_a = vec![0u8; max_plain];
        let mut plain_b = vec![0u8; max_plain];
        let mut tensors = Vec::with_capacity(layout.len());
        let mut total_changed = 0usize;
        let mut total_sq = 0f64;
        for (flat, slot) in layout.iter().enumerate() {
            let len_a = self
                .mirror
                .read_sealed_into(&self.ctx, from, flat, &mut sealed_a)?;
            let len_b = self
                .mirror
                .read_sealed_into(&self.ctx, to, flat, &mut sealed_b)?;
            let pa = &mut plain_a[..slot.plain_len];
            let pb = &mut plain_b[..slot.plain_len];
            SealedView::parse(&sealed_a[..len_a])?.open_into(&gcm, &slot.aad, pa)?;
            SealedView::parse(&sealed_b[..len_b])?.open_into(&gcm, &slot.aad, pb)?;
            let changed_bytes = pa.iter().zip(pb.iter()).filter(|(a, b)| a != b).count();
            let mut sq = 0f64;
            for (ca, cb) in pa.chunks_exact(4).zip(pb.chunks_exact(4)) {
                let fa = f32::from_le_bytes(ca.try_into().expect("4 bytes"));
                let fb = f32::from_le_bytes(cb.try_into().expect("4 bytes"));
                let d = (fb - fa) as f64;
                sq += d * d;
            }
            total_changed += changed_bytes;
            total_sq += sq;
            tensors.push(TensorDiff {
                layer: slot.layer,
                tensor: slot.tensor,
                changed_bytes,
                l2_delta: sq.sqrt(),
            });
        }
        Ok(EpochDiff {
            from,
            to,
            tensors,
            changed_bytes: total_changed,
            l2_delta: total_sq.sqrt(),
        })
    }

    /// Lifts a retained epoch out of the ring as a deployment-portable
    /// [`SealedEpoch`]: the sealed blobs are read byte-exact from PM (seqlock
    /// validated, never decrypted).
    ///
    /// # Errors
    ///
    /// Returns [`PliniusError::EpochNotRetained`] if the epoch left the ring
    /// (including mid-export, in which case no torn payload is ever returned).
    pub fn export(&self, epoch: u64) -> Result<SealedEpoch, PliniusError> {
        let iteration = self.mirror.epoch_iteration(&self.ctx, epoch)?;
        let layout = self.mirror.slot_layout();
        let mut arena = vec![0u8; self.mirror.arena_len()];
        let mut sealed_lens = Vec::with_capacity(layout.len());
        for (flat, slot) in layout.iter().enumerate() {
            let out = &mut arena[slot.sealed_off..slot.sealed_off + slot.sealed_len];
            self.mirror.read_sealed_into(&self.ctx, epoch, flat, out)?;
            sealed_lens.push(slot.sealed_len as u64);
        }
        Ok(SealedEpoch {
            epoch,
            iteration,
            sealed_lens,
            arena,
        })
    }

    /// Imports a [`SealedEpoch`] exported from another deployment, committing it
    /// as this mirror's **next** epoch (the source epoch number is not reused —
    /// this ring's counter stays strictly monotonic). Every blob is
    /// AES-GCM-authenticated against the local model key before anything touches
    /// PM, so a payload sealed under a different key (or tampered with in
    /// transit) is rejected wholesale. Returns the committed epoch number.
    ///
    /// With a pipelined trainer attached to the same mirror, drain it first: an
    /// import races an in-flight publish like any other writer would.
    ///
    /// # Errors
    ///
    /// Returns [`PliniusError::MirrorMismatch`] if the payload's layout differs
    /// from this mirror's, [`PliniusError::Crypto`] on authentication failure, or
    /// [`PliniusError::KeyNotProvisioned`] without the model key.
    pub fn import(&self, sealed: &SealedEpoch) -> Result<u64, PliniusError> {
        let layout = self.mirror.slot_layout();
        let expected: Vec<u64> = layout.iter().map(|s| s.sealed_len as u64).collect();
        if sealed.sealed_lens != expected {
            return Err(PliniusError::MirrorMismatch(format!(
                "sealed-epoch layout {:?} does not match this mirror's {:?}",
                sealed.sealed_lens, expected
            )));
        }
        let gcm = self.ctx.gcm()?;
        let mut plain = vec![0u8; layout.iter().map(|s| s.plain_len).max().unwrap_or(0)];
        for slot in layout {
            let blob = &sealed.arena[slot.sealed_off..slot.sealed_off + slot.sealed_len];
            SealedView::parse(blob)?.open_into(&gcm, &slot.aad, &mut plain[..slot.plain_len])?;
        }
        self.mirror
            .commit_sealed_arena(&self.ctx, &sealed.arena, sealed.iteration)
    }
}

impl Vfs for MirrorVfs {
    fn list(&self, path: &str) -> Result<Vec<VfsEntry>, PliniusError> {
        match self.resolve(path)? {
            Resolved::Root => {
                let head = self.head_epoch()?;
                Ok(vec![
                    VfsEntry {
                        name: "HEAD".into(),
                        kind: VfsKind::Symlink,
                        len: format!("epoch/{head}").len(),
                    },
                    VfsEntry {
                        name: "epoch".into(),
                        kind: VfsKind::Directory,
                        len: 0,
                    },
                ])
            }
            Resolved::EpochDir => Ok(self
                .mirror
                .epochs(&self.ctx)?
                .into_iter()
                .map(|e| VfsEntry {
                    name: e.to_string(),
                    kind: VfsKind::Directory,
                    len: 0,
                })
                .collect()),
            Resolved::Epoch(epoch) => {
                self.check_retained(epoch, path)?;
                let mut entries = vec![VfsEntry {
                    name: "meta".into(),
                    kind: VfsKind::File,
                    len: self.meta_text(epoch)?.len(),
                }];
                for slot in self.mirror.slot_layout() {
                    entries.push(VfsEntry {
                        name: format!("layer{}-tensor{}.sealed", slot.layer, slot.tensor),
                        kind: VfsKind::File,
                        len: slot.sealed_len,
                    });
                }
                Ok(entries)
            }
            _ => Err(no_such_path(path)),
        }
    }

    fn stat(&self, path: &str) -> Result<VfsEntry, PliniusError> {
        match self.resolve(path)? {
            Resolved::Root => Ok(VfsEntry {
                name: "/".into(),
                kind: VfsKind::Directory,
                len: 0,
            }),
            Resolved::Head => Ok(VfsEntry {
                name: "HEAD".into(),
                kind: VfsKind::Symlink,
                len: format!("epoch/{}", self.head_epoch()?).len(),
            }),
            Resolved::EpochDir => Ok(VfsEntry {
                name: "epoch".into(),
                kind: VfsKind::Directory,
                len: 0,
            }),
            Resolved::Epoch(epoch) => {
                self.check_retained(epoch, path)?;
                Ok(VfsEntry {
                    name: epoch.to_string(),
                    kind: VfsKind::Directory,
                    len: 0,
                })
            }
            Resolved::Meta(epoch) => {
                self.check_retained(epoch, path)?;
                Ok(VfsEntry {
                    name: "meta".into(),
                    kind: VfsKind::File,
                    len: self.meta_text(epoch)?.len(),
                })
            }
            Resolved::Sealed {
                epoch, sealed_len, ..
            } => {
                self.check_retained(epoch, path)?;
                let name = path.rsplit('/').next().unwrap_or(path).to_string();
                Ok(VfsEntry {
                    name,
                    kind: VfsKind::File,
                    len: sealed_len,
                })
            }
        }
    }

    fn read_into(&self, path: &str, out: &mut [u8]) -> Result<usize, PliniusError> {
        match self.resolve(path)? {
            Resolved::Sealed { epoch, flat, .. } => {
                // The zero-copy lane: PM -> caller buffer, no intermediate heap.
                match self.mirror.read_sealed_into(&self.ctx, epoch, flat, out) {
                    Err(PliniusError::EpochNotRetained(_)) => Err(no_such_path(path)),
                    other => other,
                }
            }
            Resolved::Meta(epoch) => {
                self.check_retained(epoch, path)?;
                let text = self.meta_text(epoch)?;
                let bytes = text.as_bytes();
                if out.len() < bytes.len() {
                    return Err(PliniusError::MirrorMismatch(format!(
                        "output buffer of {} bytes cannot hold the {}-byte meta file",
                        out.len(),
                        bytes.len()
                    )));
                }
                out[..bytes.len()].copy_from_slice(bytes);
                Ok(bytes.len())
            }
            _ => Err(no_such_path(path)),
        }
    }

    fn read_link(&self, path: &str) -> Result<String, PliniusError> {
        match self.resolve(path)? {
            Resolved::Head => Ok(format!("epoch/{}", self.head_epoch()?)),
            _ => Err(no_such_path(path)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plinius_crypto::Key;
    use plinius_darknet::config::{build_network, mnist_cnn_config};
    use plinius_darknet::Network;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn deployment(ring: usize, key_seed: u64) -> (PliniusContext, Network, MirrorModel) {
        let ctx = PliniusContext::small_test(16 * 1024 * 1024);
        let mut rng = StdRng::seed_from_u64(key_seed);
        ctx.provision_key_directly(Key::generate_128(&mut rng));
        let mut rng = StdRng::seed_from_u64(7);
        let net = build_network(&mnist_cnn_config(2, 4, 4), &mut rng).unwrap();
        let mirror = MirrorModel::allocate_with_ring(&ctx, &net, ring).unwrap();
        (ctx, net, mirror)
    }

    fn publish_epochs(ctx: &PliniusContext, net: &mut Network, mirror: &MirrorModel, count: u64) {
        for i in 1..=count {
            net.set_iteration(i);
            mirror.mirror_out(ctx, net).unwrap();
        }
    }

    #[test]
    fn tree_lists_head_epochs_and_sealed_tensors() {
        let (ctx, mut net, mirror) = deployment(3, 11);
        publish_epochs(&ctx, &mut net, &mirror, 4);
        let vfs = MirrorVfs::new(&ctx, &mirror);
        // Root: HEAD symlink + epoch directory.
        let root = vfs.list("/").unwrap();
        assert_eq!(root.len(), 2);
        assert_eq!(root[0].name, "HEAD");
        assert_eq!(root[0].kind, VfsKind::Symlink);
        assert_eq!(root[1].name, "epoch");
        assert_eq!(root[1].kind, VfsKind::Directory);
        assert_eq!(vfs.read_link("/HEAD").unwrap(), "epoch/4");
        // Ring depth 3, 4 commits: epochs 2..=4 retained.
        let epochs: Vec<String> = vfs
            .list("/epoch")
            .unwrap()
            .into_iter()
            .map(|e| e.name)
            .collect();
        assert_eq!(epochs, ["2", "3", "4"]);
        // An epoch directory: meta + one sealed file per tensor.
        let entries = vfs.list("/epoch/4").unwrap();
        assert_eq!(entries[0].name, "meta");
        assert_eq!(entries.len(), 1 + mirror.slot_layout().len());
        assert_eq!(entries[1].name, "layer0-tensor0.sealed");
        assert!(entries[1].len > 0);
        // Stat agrees with list; trailing slash and missing leading slash are fine.
        let stat = vfs.stat("epoch/4/layer0-tensor0.sealed").unwrap();
        assert_eq!(stat.len, entries[1].len);
        assert_eq!(vfs.stat("/epoch/4/").unwrap().kind, VfsKind::Directory);
        // Evicted and unknown entries are path errors.
        assert!(matches!(
            vfs.list("/epoch/1").unwrap_err(),
            PliniusError::VfsPath(_)
        ));
        assert!(matches!(
            vfs.stat("/epoch/4/layer9-tensor0.sealed").unwrap_err(),
            PliniusError::VfsPath(_)
        ));
        assert!(matches!(
            vfs.read_link("/epoch").unwrap_err(),
            PliniusError::VfsPath(_)
        ));
    }

    #[test]
    fn sealed_reads_are_byte_exact_and_meta_is_parseable() {
        let (ctx, mut net, mirror) = deployment(2, 12);
        publish_epochs(&ctx, &mut net, &mirror, 2);
        let vfs = MirrorVfs::new(&ctx, &mirror);
        let stat = vfs.stat("/epoch/2/layer0-tensor0.sealed").unwrap();
        let mut buf = vec![0u8; stat.len];
        let n = vfs
            .read_into("/epoch/2/layer0-tensor0.sealed", &mut buf)
            .unwrap();
        assert_eq!(n, stat.len);
        // Byte-exact against the mirror's own read primitive.
        let mut direct = vec![0u8; stat.len];
        mirror.read_sealed_into(&ctx, 2, 0, &mut direct).unwrap();
        assert_eq!(buf, direct);
        // The meta file carries the epoch and iteration.
        let meta_len = vfs.stat("/epoch/2/meta").unwrap().len;
        let mut meta = vec![0u8; meta_len];
        let n = vfs.read_into("/epoch/2/meta", &mut meta).unwrap();
        let text = std::str::from_utf8(&meta[..n]).unwrap();
        assert!(text.contains("epoch: 2"), "{text}");
        assert!(text.contains("iteration: 2"), "{text}");
        assert!(text.contains("ring_depth: 2"), "{text}");
    }

    #[test]
    fn epoch_diff_reports_changed_tensors() {
        let (ctx, mut net, mirror) = deployment(3, 13);
        net.set_iteration(1);
        mirror.mirror_out(&ctx, &net).unwrap();
        // Change exactly one parameter of the first trainable layer.
        let layer = net
            .layers_mut()
            .iter_mut()
            .find(|l| l.is_trainable())
            .unwrap();
        let mut tensors: Vec<Vec<f32>> = layer.params().iter().map(|p| p.data.to_vec()).collect();
        let old = tensors[0][0];
        tensors[0][0] = old + 2.0;
        layer.set_params(&tensors);
        net.set_iteration(2);
        mirror.mirror_out(&ctx, &net).unwrap();
        let vfs = MirrorVfs::new(&ctx, &mirror);
        let diff = vfs.epoch_diff(1, 2).unwrap();
        assert_eq!(diff.from, 1);
        assert_eq!(diff.to, 2);
        assert_eq!(diff.tensors.len(), mirror.slot_layout().len());
        // Only the first tensor changed, by exactly 2.0 in one parameter.
        assert!(diff.tensors[0].changed_bytes > 0);
        assert!((diff.tensors[0].l2_delta - 2.0).abs() < 1e-6);
        assert!(diff.tensors[1..].iter().all(|t| t.changed_bytes == 0));
        assert!((diff.l2_delta - 2.0).abs() < 1e-6);
        assert_eq!(diff.changed_bytes, diff.tensors[0].changed_bytes);
        // Identical epochs diff to zero.
        let same = vfs.epoch_diff(2, 2).unwrap();
        assert_eq!(same.changed_bytes, 0);
        assert_eq!(same.l2_delta, 0.0);
    }

    #[test]
    fn sealed_epoch_payload_round_trips() {
        let (ctx, mut net, mirror) = deployment(2, 14);
        publish_epochs(&ctx, &mut net, &mirror, 1);
        let vfs = MirrorVfs::new(&ctx, &mirror);
        let exported = vfs.export(1).unwrap();
        let bytes = exported.to_bytes();
        assert_eq!(SealedEpoch::from_bytes(&bytes).unwrap(), exported);
        // Corruption is caught structurally or cryptographically.
        assert!(SealedEpoch::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        let mut bad_magic = bytes.clone();
        bad_magic[0] ^= 0xff;
        assert!(SealedEpoch::from_bytes(&bad_magic).is_err());
    }
}
