//! The full Plinius workflow of Fig. 5: the model/dataset owner ships the application and
//! encrypted data to the untrusted server, attests the enclave, provisions the encryption
//! key over the secure channel, the PM-data module moves the data into byte-addressable
//! PM, and training proceeds with mirroring — followed by secure inference with the
//! trained model.

use crate::persist::PersistStats;
use crate::pmdata::PmDataset;
use crate::trainer::{PipelineMode, PliniusBuilder, TrainingSetup};
use crate::{PliniusContext, PliniusError, TenantId};
use plinius_crypto::Key;
use plinius_sgx::{AttestationService, DataOwner};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Outcome of one end-to-end workflow run.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkflowReport {
    /// The tenant the workflow ran as (tenant 0 for single-tenant deployments;
    /// fleet runs report one tenant per job, see [`crate::FleetReport`]).
    pub tenant: TenantId,
    /// Whether remote attestation succeeded before any key left the owner.
    pub attestation_ok: bool,
    /// Loss after the final training iteration.
    pub final_loss: f32,
    /// The model's final iteration counter.
    pub final_iteration: u64,
    /// Classification accuracy on the held-out test split (secure inference, §VI).
    pub test_accuracy: f32,
    /// Encrypted bytes of training data resident in PM.
    pub pm_dataset_bytes: usize,
    /// Simulated nanoseconds for the whole workflow.
    pub simulated_ns: u64,
    /// Label of the persistence backend that protected the model.
    pub backend: String,
    /// How persists were scheduled (inline or overlapped with compute).
    pub pipeline: PipelineMode,
    /// Activity counters of the persistence backend, including the pipeline's
    /// snapshot/publish counts and the simulated overlap wait.
    pub persist_stats: PersistStats,
    /// Torn snapshot reads retried by mirror readers during the run — the
    /// `mirror.torn_read_retries` statistic. Non-zero values mean concurrent
    /// serve-vs-train races were detected (and resolved) by the seqlock protocol.
    pub torn_read_retries: u64,
    /// Name of the AES-GCM engine the deployment sealed with (`"aesni+pclmul"`,
    /// `"scalar"` or `"reference"`), as resolved from the enclave's crypto policy.
    pub engine: &'static str,
    /// Name of the GEMM engine the training hot path ran on (`"avx512"`, `"avx2"`,
    /// `"avx512+fma"`, `"avx2+fma"`, `"scalar"` or `"reference"`), as resolved from
    /// the trainer's GEMM policy against the host CPU.
    pub gemm_engine: &'static str,
}

impl WorkflowReport {
    /// Simulated milliseconds the training lane spent waiting for background
    /// publishes (zero in [`PipelineMode::Sync`], or when compute fully hides the
    /// sealing).
    pub fn overlap_wait_ms(&self) -> f64 {
        self.persist_stats.overlap_wait_ns as f64 / 1e6
    }
}

/// Runs the complete Fig. 5 workflow for the given setup:
///
/// 1. the owner generates the model key and encrypts the dataset (owner side);
/// 2. remote attestation of the enclave and key provisioning over the secure channel;
/// 3. the PM-data module loads the encrypted training data into PM;
/// 4. training with per-iteration mirroring until `max_iterations`;
/// 5. secure inference: accuracy on a held-out split.
///
/// # Errors
///
/// Propagates any attestation, data-loading, training or inference error.
pub fn run_full_workflow(setup: &TrainingSetup) -> Result<WorkflowReport, PliniusError> {
    // ➊ The owner prepares the deployment: key + expected enclave measurement.
    let mut owner_rng = StdRng::seed_from_u64(setup.trainer.seed ^ OWNER_SEED_SALT);
    let model_key = Key::generate_128(&mut owner_rng);
    let ctx = PliniusContext::create(setup.cost.clone(), setup.pm_bytes)?;
    let owner = DataOwner::new(model_key, ctx.enclave().measurement());
    let service = AttestationService::new(b"plinius-platform".to_vec());

    // ➋/➌ Remote attestation and key provisioning over the secure channel.
    ctx.provision_key_via_attestation(&owner, &service)?;
    let attestation_ok = ctx.key().is_ok();

    // Hold out a test split for the inference step (as the paper does with MNIST's
    // 10'000 test images).
    let train_count = (setup.dataset.len() * 5) / 6;
    let (train_split, test_split) = setup.dataset.split(train_count.max(1));

    // ➍ The PM-data module turns the encrypted on-disk data into encrypted
    // byte-addressable data in PM.
    PmDataset::load(&ctx, &train_split)?;
    let pm = PmDataset::open(&ctx)?;
    let pm_dataset_bytes = pm.pm_bytes();

    // ➎–➐ Training with the configured persistence backend (mirroring by default).
    let clock = ctx.clock();
    let mut trainer = PliniusBuilder::new(setup.clone())
        .context(ctx)
        .plain_data(train_split)
        .build()?;
    let report = trainer.run()?;

    // Secure inference on the held-out split.
    let test_accuracy = trainer.accuracy(&test_split);

    Ok(WorkflowReport {
        tenant: trainer.context().tenant(),
        attestation_ok,
        final_loss: report.final_loss().unwrap_or(f32::NAN),
        final_iteration: report.final_iteration,
        test_accuracy,
        pm_dataset_bytes,
        simulated_ns: clock.now_ns(),
        backend: trainer.backend().label().to_owned(),
        pipeline: setup.trainer.pipeline,
        persist_stats: trainer.persist_stats(),
        torn_read_retries: trainer.torn_read_retries(),
        engine: trainer.context().engine_name(),
        gemm_engine: trainer.network().gemm_engine().name(),
    })
}

/// Salt mixed into the owner's RNG seed so owner-side and enclave-side randomness differ.
const OWNER_SEED_SALT: u64 = 0x6f77_6e65_7200;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_workflow_trains_and_infers() {
        let mut setup = TrainingSetup::small_test();
        setup.trainer.max_iterations = 15;
        let report = run_full_workflow(&setup).unwrap();
        assert_eq!(report.tenant, TenantId::DEFAULT);
        assert!(report.attestation_ok);
        assert_eq!(report.final_iteration, 15);
        assert!(report.final_loss.is_finite());
        assert!(report.test_accuracy >= 0.0 && report.test_accuracy <= 1.0);
        assert!(report.pm_dataset_bytes > 0);
        assert!(report.simulated_ns > 0);
        assert_eq!(report.backend, "pm-mirror");
        assert_eq!(report.pipeline, setup.trainer.pipeline);
        assert_eq!(report.persist_stats.persists, 15);
        assert!(report.persist_stats.persisted_bytes > 0);
        // In overlapped mode every persist goes through a snapshot; in sync mode
        // none does. Either way the committed publish count matches the persists.
        assert_eq!(report.persist_stats.publishes, 15);
        match report.pipeline {
            PipelineMode::Sync => assert_eq!(report.persist_stats.snapshots, 0),
            PipelineMode::Overlapped => assert_eq!(report.persist_stats.snapshots, 15),
        }
        assert!(report.overlap_wait_ms() >= 0.0);
        // No inference server races this single-lane run, so the seqlock never
        // observes a torn snapshot — the plumbed counter must read zero.
        assert_eq!(report.torn_read_retries, 0);
        // Engine labels come from the resolved policies — one of the known names each.
        assert!(["aesni+pclmul", "scalar", "reference"].contains(&report.engine));
        assert!([
            "avx512",
            "avx512+fma",
            "avx2",
            "avx2+fma",
            "scalar",
            "reference"
        ]
        .contains(&report.gemm_engine));
    }

    #[test]
    fn longer_training_improves_the_loss() {
        // Momentum 0 makes this tiny setup converge smoothly and monotonically
        // (with the default momentum=0.9 + lr=0.1 it sits on a stability edge
        // and can overshoot after converging, which made this assertion flaky
        // against any change in the batch stream). A couple of iterations stay
        // at the ~ln(10) random-guess plateau; 150 reach near-zero loss.
        let stable = |iters: u64| {
            let mut s = TrainingSetup::small_test();
            s.model_config = plinius_darknet::mnist_cnn_config_with_momentum(2, 4, 8, 0.0);
            s.trainer.max_iterations = iters;
            s
        };
        let short_report = run_full_workflow(&stable(2)).unwrap();
        let long_report = run_full_workflow(&stable(150)).unwrap();
        assert!(
            long_report.final_loss < short_report.final_loss - 1.0,
            "loss did not improve decisively: {} -> {}",
            short_report.final_loss,
            long_report.final_loss
        );
        assert!(long_report.test_accuracy > 0.9);
    }
}
