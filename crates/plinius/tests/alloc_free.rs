//! Enforces the allocation-free mirror path: after warm-up, a serial steady-state
//! `mirror_out` — plaintext staging, per-tensor sealing, and the durable PM write —
//! performs **zero heap allocations**. The plaintext staging buffer, sealed-blob
//! arena, per-tensor AADs and IV batch, and the cached AES-GCM context all live in
//! the mirror's reusable scratch; the Romulus redo log, its copy scratch, and the
//! pmem dirty-line map retain their capacity across iterations.
//!
//! Thread fan-out (`threads > 1`) additionally allocates only the O(#tensors)
//! fork/join dispatch buffers, which is asserted with a loose bound.
//!
//! The counting allocator is thread-local, so the serial assertions are exact even
//! though the test binary runs tests on multiple threads.

// A counting `GlobalAlloc` wrapper is impossible to write without `unsafe`. The
// production crates stay `forbid(unsafe_code)` except `plinius-crypto`, which is
// `deny(unsafe_code)` with exactly two exempt modules: the AES-NI and PCLMUL
// hardware kernels (`aesarch`/`clmul`), whose intrinsics require it. This test
// runs on whatever engine the dispatcher selects, so the zero-alloc guarantee
// below covers the hardware path on AES-NI hosts.
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use plinius::{MirrorModel, PliniusContext};
use plinius_crypto::Key;
use plinius_darknet::config::{build_network, mnist_cnn_config};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct CountingAlloc;

thread_local! {
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

fn thread_allocs() -> u64 {
    THREAD_ALLOCS.with(|c| c.get())
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        THREAD_ALLOCS.with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        THREAD_ALLOCS.with(|c| c.set(c.get() + 1));
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        THREAD_ALLOCS.with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn mirror_fixture() -> (PliniusContext, plinius_darknet::Network, MirrorModel) {
    let ctx = PliniusContext::small_test(8 * 1024 * 1024);
    let mut rng = StdRng::seed_from_u64(4242);
    ctx.provision_key_directly(Key::generate_128(&mut rng));
    let mut net = build_network(&mnist_cnn_config(2, 4, 4), &mut rng).unwrap();
    net.set_iteration(1);
    let mirror = MirrorModel::allocate(&ctx, &net).unwrap();
    (ctx, net, mirror)
}

#[test]
fn steady_state_serial_mirror_out_performs_zero_heap_allocations() {
    let (ctx, net, mirror) = mirror_fixture();
    // Warm-up: the first call builds the scratch (staging buffer, arena, GCM tables),
    // creates the stats counters, and grows the pmem dirty-line map and Romulus
    // scratch to their steady-state capacity; the second catches any one-off growth.
    mirror.mirror_out_with_threads(&ctx, &net, 1).unwrap();
    mirror.mirror_out_with_threads(&ctx, &net, 1).unwrap();
    let before = thread_allocs();
    mirror.mirror_out_with_threads(&ctx, &net, 1).unwrap();
    let allocs = thread_allocs() - before;
    assert_eq!(
        allocs, 0,
        "steady-state serial mirror_out must not touch the heap"
    );
}

#[test]
fn steady_state_mirror_out_stays_allocation_free_for_nonzero_tenants() {
    // The tenant-scoped publish path must be as quiet as tenant 0's: the tenant's
    // key-store name is precomputed as an `Arc<str>` when the context is scoped
    // (`for_tenant`), so steady-state `with_key` lookups never format a string.
    let ctx =
        PliniusContext::small_test(8 * 1024 * 1024).for_tenant(plinius::TenantId::new(5).unwrap());
    let mut rng = StdRng::seed_from_u64(4243);
    ctx.provision_key_directly(Key::generate_128(&mut rng));
    let mut net = build_network(&mnist_cnn_config(2, 4, 4), &mut rng).unwrap();
    net.set_iteration(1);
    let mirror = MirrorModel::allocate(&ctx, &net).unwrap();
    mirror.mirror_out_with_threads(&ctx, &net, 1).unwrap();
    mirror.mirror_out_with_threads(&ctx, &net, 1).unwrap();
    let before = thread_allocs();
    mirror.mirror_out_with_threads(&ctx, &net, 1).unwrap();
    let allocs = thread_allocs() - before;
    assert_eq!(
        allocs, 0,
        "steady-state tenant-scoped mirror_out must not touch the heap"
    );
}

#[test]
fn steady_state_threaded_mirror_out_allocates_only_dispatch_buffers() {
    let (ctx, net, mirror) = mirror_fixture();
    mirror.mirror_out_with_threads(&ctx, &net, 2).unwrap();
    mirror.mirror_out_with_threads(&ctx, &net, 2).unwrap();
    let before = thread_allocs();
    mirror.mirror_out_with_threads(&ctx, &net, 2).unwrap();
    let allocs = thread_allocs() - before;
    // Thread spawn + per-tensor task vectors; the point is that it stays O(tensors),
    // nowhere near the seed's per-tensor plaintext/AAD/blob churn (hundreds of
    // allocations even for this 10-tensor model). Only the calling thread's
    // allocations are counted, so the bound is deterministic.
    assert!(
        allocs < 50,
        "threaded mirror_out should only allocate fork/join dispatch state, got {allocs}"
    );
}

#[test]
fn steady_state_snapshot_phase_performs_zero_heap_allocations() {
    // The cheap half of an overlapped mirror-out: staging the parameters + IV batch
    // into a pre-allocated slot and dispatching the seal job must not touch the heap
    // once the pipeline (worker, two buffer sets, stats counters) is warm. The job
    // *moves* through the pipeline's single exchange slot, so even the dispatch is
    // allocation-free on the calling thread.
    let (ctx, net, mirror) = mirror_fixture();
    for _ in 0..3 {
        mirror.snapshot_out(&ctx, &net).unwrap();
        mirror.drain(&ctx).unwrap();
    }
    let before = thread_allocs();
    mirror.snapshot_out(&ctx, &net).unwrap();
    let allocs = thread_allocs() - before;
    mirror.drain(&ctx).unwrap();
    assert_eq!(
        allocs, 0,
        "steady-state snapshot phase must not touch the heap"
    );
}

#[test]
fn steady_state_overlapped_cycle_performs_zero_heap_allocations_on_the_training_thread() {
    // A full overlapped persist cycle — snapshot, background seal, join, bulk slot
    // publish, epoch flip — seen from the training thread. The background worker's
    // own allocations (if any) land on its thread and are bounded by the sealing
    // scratch, exactly as in the threaded sync variant; the training thread itself
    // must stay off the heap.
    let (ctx, net, mirror) = mirror_fixture();
    // Warm-up: three cycles cover both A/B slots' pmem cache lines, the Romulus
    // copy scratch and every stats counter.
    for _ in 0..3 {
        mirror.snapshot_out(&ctx, &net).unwrap();
        mirror.drain(&ctx).unwrap();
    }
    let before = thread_allocs();
    mirror.snapshot_out(&ctx, &net).unwrap();
    mirror.drain(&ctx).unwrap();
    let allocs = thread_allocs() - before;
    assert_eq!(
        allocs, 0,
        "steady-state overlapped mirror_out path must not touch the heap on the training thread"
    );
}

#[test]
fn steady_state_vfs_sealed_reads_perform_zero_heap_allocations() {
    // The VFS's raw-sealed-read lane (`read_into` on a `.sealed` path) is the
    // zero-copy export surface: path resolution works on borrowed slices and the
    // ciphertext is copied straight from PM into the caller's buffer. After the
    // listing warm-up, a steady-state read must not touch the heap.
    let (ctx, net, mirror) = mirror_fixture();
    mirror.mirror_out_with_threads(&ctx, &net, 1).unwrap();
    let vfs = plinius::MirrorVfs::new(&ctx, &mirror);
    let entry = plinius::Vfs::stat(&vfs, "/epoch/1/layer0-tensor0.sealed").unwrap();
    let mut buf = vec![0u8; entry.len];
    // Warm-up: stats counters and any lazily-built lookup state.
    plinius::Vfs::read_into(&vfs, "/epoch/1/layer0-tensor0.sealed", &mut buf).unwrap();
    plinius::Vfs::read_into(&vfs, "/epoch/1/layer0-tensor0.sealed", &mut buf).unwrap();
    let before = thread_allocs();
    let n = plinius::Vfs::read_into(&vfs, "/epoch/1/layer0-tensor0.sealed", &mut buf).unwrap();
    let allocs = thread_allocs() - before;
    assert_eq!(n, entry.len);
    assert_eq!(
        allocs, 0,
        "steady-state VFS sealed reads must not touch the heap"
    );
}

#[test]
fn mirror_out_still_round_trips_under_the_counting_allocator() {
    // Sanity: the instrumented binary still produces a restorable mirror.
    let (ctx, net, mirror) = mirror_fixture();
    mirror.mirror_out_with_threads(&ctx, &net, 1).unwrap();
    let mut rng = StdRng::seed_from_u64(1);
    let mut other = build_network(&mnist_cnn_config(2, 4, 4), &mut rng).unwrap();
    let report = mirror.mirror_in(&ctx, &mut other).unwrap();
    assert_eq!(report.iteration, 1);
    assert!(report.model_bytes > 0);
}
