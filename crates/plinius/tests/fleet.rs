//! Multi-tenant isolation guarantees, end to end: sealed epochs are rejected
//! wholesale across tenant key boundaries, a mid-publish crash of one tenant
//! leaves every bystander tenant's epoch listing and restored weights bit-exact
//! (fail-point sweep over the whole publish), and per-tenant SSD disks within one
//! deployment never collide on checkpoint file names.

use plinius::{shared_ssd, MirrorModel, MirrorVfs, PliniusContext, PliniusError, TenantId};
use plinius_crypto::Key;
use plinius_darknet::config::{build_network, mnist_cnn_config};
use plinius_darknet::Network;
use plinius_pmem::CrashMode;
use plinius_romulus::FailPoint;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A small fixed-shape network; weights are a pure function of `seed`.
fn seeded_network(seed: u64) -> Network {
    let mut rng = StdRng::seed_from_u64(seed);
    build_network(&mnist_cnn_config(2, 4, 4), &mut rng).unwrap()
}

/// Stamps a recognisable per-epoch tag into the first parameter of the first
/// trainable layer.
fn tag_weights(net: &mut Network, tag: f32) {
    let layer = net
        .layers_mut()
        .iter_mut()
        .find(|l| l.is_trainable())
        .unwrap();
    let mut tensors: Vec<Vec<f32>> = layer.params().iter().map(|p| p.data.to_vec()).collect();
    tensors[0][0] = tag;
    layer.set_params(&tensors);
}

fn weights(net: &Network) -> Vec<Vec<f32>> {
    net.layers()
        .iter()
        .filter(|l| l.is_trainable())
        .flat_map(|l| {
            l.params()
                .iter()
                .map(|p| p.data.to_vec())
                .collect::<Vec<_>>()
        })
        .collect()
}

/// A two-tenant deployment on one pool: each tenant gets its scoped context, its
/// derived sealing key provisioned under its own key-store slot, and a mirror
/// with `committed` tagged epochs on a depth-`ring` ring.
fn two_tenant_deployment(
    ring: usize,
    committed: u64,
) -> (PliniusContext, Vec<(PliniusContext, MirrorModel, Key)>) {
    let ctx = PliniusContext::small_test(48 * 1024 * 1024);
    let mut tenants = Vec::new();
    for raw in 0..2u64 {
        let tctx = ctx.for_tenant(TenantId::new(raw).unwrap());
        let key = tctx.enclave().tenant_sealing_key(raw);
        tctx.provision_key_directly(key.clone());
        // Distinct weight streams per tenant so cross-tenant corruption cannot
        // hide behind identical bytes.
        let mut net = seeded_network(100 + raw);
        let mirror = MirrorModel::allocate_with_ring(&tctx, &net, ring).unwrap();
        for e in 1..=committed {
            tag_weights(&mut net, (raw * 1000 + e) as f32);
            net.set_iteration(e);
            mirror.mirror_out(&tctx, &net).unwrap();
        }
        tenants.push((tctx, mirror, key));
    }
    (ctx, tenants)
}

/// Sealed epochs are cryptographically tenant-scoped: tenant A's export fails
/// AES-GCM authentication wholesale under tenant B's derived key, committing
/// nothing — while re-importing under A's own key in a fresh deployment works.
#[test]
fn sealed_epochs_are_rejected_across_tenant_key_boundaries() {
    let (_ctx, tenants) = two_tenant_deployment(3, 2);
    let (ctx_a, mirror_a, key_a) = &tenants[0];
    let (ctx_b, mirror_b, _) = &tenants[1];

    let payload = MirrorVfs::new(ctx_a, mirror_a).export(2).unwrap();
    assert_eq!(payload.epoch, 2);

    // Tenant B holds a different derived key: the import is rejected outright
    // and B's ring is untouched.
    let before = mirror_b.epochs(ctx_b).unwrap();
    let vfs_b = MirrorVfs::new(ctx_b, mirror_b);
    assert!(matches!(
        vfs_b.import(&payload),
        Err(PliniusError::Crypto(_))
    ));
    assert_eq!(mirror_b.epochs(ctx_b).unwrap(), before);

    // Sanity: the payload itself is fine — a deployment holding tenant A's key
    // accepts it bit-exactly.
    let ctx_c = PliniusContext::small_test(24 * 1024 * 1024);
    ctx_c.provision_key_directly(key_a.clone());
    let mirror_c = MirrorModel::allocate(&ctx_c, &seeded_network(100)).unwrap();
    let committed = MirrorVfs::new(&ctx_c, &mirror_c).import(&payload).unwrap();
    let mut restored = seeded_network(7);
    mirror_c
        .restore_epoch(&ctx_c, &mut restored, committed)
        .unwrap();
    let mut expected = seeded_network(100);
    tag_weights(&mut expected, 2.0);
    assert_eq!(weights(&restored), weights(&expected));
}

/// The structural crash-isolation contract: for *every* direct-publish fail point
/// of tenant A's interrupted publish (plus the flip-transaction points), a power
/// failure and recovery leave tenant B's epoch listing and every restored epoch's
/// weights bit-for-bit identical to their pre-crash state.
#[test]
fn mid_publish_crash_of_one_tenant_leaves_bystanders_bit_exact() {
    // One meta invalidation plus one twin write per tensor (see the ring tests).
    let probe = seeded_network(100);
    let num_tensors: usize = probe
        .layers()
        .iter()
        .filter(|l| l.is_trainable())
        .map(|l| l.params().len())
        .sum();
    let publish_calls = 1 + num_tensors;

    let mut plans: Vec<FailPoint> = (0..publish_calls)
        .map(FailPoint::AfterDirectPublishes)
        .collect();
    plans.push(FailPoint::AfterMutatingState);
    plans.push(FailPoint::AfterStores(2));
    plans.push(FailPoint::AfterCopyingState);

    for (i, fp) in plans.into_iter().enumerate() {
        let ring = 3;
        let committed = 2u64;
        let (ctx, tenants) = two_tenant_deployment(ring, committed);
        let (ctx_a, mirror_a, key_a) = &tenants[0];
        let (ctx_b, mirror_b, key_b) = &tenants[1];

        // Pre-crash ground truth for the bystander (tenant B).
        let b_epochs = mirror_b.epochs(ctx_b).unwrap();
        let b_weights: Vec<_> = b_epochs
            .iter()
            .map(|&e| {
                let mut net = seeded_network(9);
                mirror_b.restore_epoch(ctx_b, &mut net, e).unwrap();
                weights(&net)
            })
            .collect();

        // Tenant A's next publish is interrupted at the armed point.
        let mut net_a = seeded_network(100);
        tag_weights(&mut net_a, (committed + 1) as f32);
        net_a.set_iteration(committed + 1);
        ctx_a.romulus().inject_failure(fp);
        let result = mirror_a.mirror_out(ctx_a, &net_a);
        assert!(result.is_err(), "fail point {fp:?} must fire");

        // Power failure + restart over the surviving pool.
        let pool = ctx.pool().clone();
        let (key_a, key_b) = (key_a.clone(), key_b.clone());
        drop((ctx, tenants));
        let mut rng = StdRng::seed_from_u64(0xb5 ^ i as u64);
        pool.crash(&mut rng, CrashMode::DropUnflushed);
        let ctx2 = PliniusContext::open(pool, sim_clock::CostModel::sgx_eml_pm()).unwrap();

        // Tenant B after recovery: listing and weights bit-exact.
        let ctx_b2 = ctx2.for_tenant(TenantId::new(1).unwrap());
        ctx_b2.provision_key_directly(key_b);
        let mirror_b2 = MirrorModel::open(&ctx_b2).unwrap();
        assert_eq!(
            mirror_b2.epochs(&ctx_b2).unwrap(),
            b_epochs,
            "bystander listing changed under {fp:?}"
        );
        for (&e, expected) in b_epochs.iter().zip(&b_weights) {
            let mut net = seeded_network(10);
            mirror_b2.restore_epoch(&ctx_b2, &mut net, e).unwrap();
            assert_eq!(
                &weights(&net),
                expected,
                "bystander epoch {e} corrupted under {fp:?}"
            );
        }

        // Tenant A itself recovers to a consistent state: the interrupted epoch
        // either rolled back entirely or committed, never half-landed.
        let ctx_a2 = ctx2.for_tenant(TenantId::new(0).unwrap());
        ctx_a2.provision_key_directly(key_a);
        let mirror_a2 = MirrorModel::open(&ctx_a2).unwrap();
        let newest = mirror_a2.epoch(&ctx_a2).unwrap();
        assert!(
            newest == committed || newest == committed + 1,
            "tenant A recovered to epoch {newest} under {fp:?}"
        );
        let mut net = seeded_network(11);
        let report = mirror_a2.mirror_in(&ctx_a2, &mut net).unwrap();
        assert_eq!(report.epoch, newest);
    }
}

/// The durable-SSD registry is keyed by (deployment clock, tenant): two tenants
/// of one deployment writing the same checkpoint path get independent disks,
/// while re-requesting a tenant's disk returns the same durable files.
#[test]
fn tenant_ssd_disks_are_independent_within_one_deployment() {
    let ctx = PliniusContext::small_test(16 * 1024 * 1024);
    let ctx_a = ctx.for_tenant(TenantId::new(0).unwrap());
    let ctx_b = ctx.for_tenant(TenantId::new(1).unwrap());

    let disk_a = shared_ssd(&ctx_a);
    disk_a.write("model.ckpt", b"tenant-a-bytes");

    // Same path, same deployment, different tenant: a different disk.
    let disk_b = shared_ssd(&ctx_b);
    assert!(
        !disk_b.exists("model.ckpt"),
        "tenant B must not see tenant A's checkpoint"
    );
    disk_b.write("model.ckpt", b"tenant-b-bytes");

    // Re-requesting each tenant's disk is durable and still isolated.
    assert_eq!(
        shared_ssd(&ctx_a).read_all("model.ckpt").unwrap(),
        b"tenant-a-bytes"
    );
    assert_eq!(
        shared_ssd(&ctx_b).read_all("model.ckpt").unwrap(),
        b"tenant-b-bytes"
    );

    // A different deployment's tenant 0 is yet another disk.
    let other = PliniusContext::small_test(16 * 1024 * 1024);
    assert!(!shared_ssd(&other).exists("model.ckpt"));
}
