//! End-to-end guarantees of the pipelined (overlapped) training engine:
//!
//! * a full Overlapped run produces **bit-identical** model weights, loss curves and
//!   committed mirror epochs to the Sync run — only timing differs (and the
//!   Overlapped simulated total is strictly smaller);
//! * crash/resume twin runs with crashes injected **mid-publish** (between the bulk
//!   slot writes, and inside the epoch-flip transaction) resume bit-exactly from the
//!   last *committed* epoch.

use plinius::{
    MirrorModel, PipelineMode, PliniusBuilder, PliniusContext, PliniusError, PmDataset,
    TrainingSetup,
};
use plinius_crypto::Key;
use plinius_pmem::CrashMode;
use plinius_romulus::{FailPoint, RomulusError};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A small momentum-free setup: with momentum 0 the entire training state lives in
/// the persisted tensors, so resume from the mirror is bit-for-bit deterministic.
fn stable_setup(max_iterations: u64) -> TrainingSetup {
    let mut setup = TrainingSetup::small_test();
    setup.model_config = plinius_darknet::mnist_cnn_config_with_momentum(2, 4, 8, 0.0);
    setup.trainer.max_iterations = max_iterations;
    setup
}

/// Deploys a fresh context for `setup` with the given key: pool created, key
/// provisioned, dataset loaded into PM.
fn deploy(setup: &TrainingSetup, key: &Key) -> PliniusContext {
    let ctx = PliniusContext::create(setup.cost.clone(), setup.pm_bytes).unwrap();
    ctx.provision_key_directly(key.clone());
    PmDataset::load(&ctx, &setup.dataset).unwrap();
    ctx
}

fn test_key(seed: u64) -> Key {
    let mut rng = StdRng::seed_from_u64(seed);
    Key::generate_128(&mut rng)
}

fn weights(net: &plinius_darknet::Network) -> Vec<Vec<f32>> {
    net.layers()
        .iter()
        .filter(|l| l.is_trainable())
        .flat_map(|l| {
            l.params()
                .iter()
                .map(|p| p.data.to_vec())
                .collect::<Vec<_>>()
        })
        .collect()
}

#[test]
fn overlapped_run_is_bit_identical_to_sync_and_strictly_faster_simulated() {
    let setup = stable_setup(12);
    let key = test_key(100);
    let run = |mode: PipelineMode| {
        let ctx = deploy(&setup, &key);
        let mut trainer = PliniusBuilder::new(setup.clone())
            .context(ctx)
            .pipeline_mode(mode)
            .build()
            .unwrap();
        let report = trainer.run().unwrap();
        let final_weights = weights(trainer.network());
        let ctx = trainer.context().clone();
        let stats = trainer.persist_stats();
        drop(trainer);
        // Read back what actually got committed to PM.
        let mirror = MirrorModel::open(&ctx).unwrap();
        let epoch = mirror.epoch(&ctx).unwrap();
        let mirror_iteration = mirror.iteration(&ctx).unwrap();
        let mut restored = setup.build_network().unwrap();
        mirror.mirror_in(&ctx, &mut restored).unwrap();
        (
            report,
            final_weights,
            weights(&restored),
            epoch,
            mirror_iteration,
            stats,
        )
    };
    let (sync_report, sync_w, sync_mirror_w, sync_epoch, sync_iter, sync_stats) =
        run(PipelineMode::Sync);
    let (over_report, over_w, over_mirror_w, over_epoch, over_iter, over_stats) =
        run(PipelineMode::Overlapped);
    // Functionally bit-identical: weights, loss curve, committed epoch state.
    assert_eq!(sync_w, over_w);
    assert_eq!(sync_report.losses, over_report.losses);
    assert_eq!(sync_mirror_w, over_mirror_w);
    assert_eq!(sync_mirror_w, sync_w, "mirror must hold the final weights");
    assert_eq!((sync_epoch, sync_iter), (over_epoch, over_iter));
    assert_eq!(sync_epoch, 12, "one committed epoch per iteration");
    assert_eq!(sync_stats.persists, over_stats.persists);
    assert_eq!(over_stats.snapshots, 12);
    assert_eq!(over_stats.publishes, 12);
    assert_eq!(sync_stats.snapshots, 0);
    // Only timing differs — and the pipeline must win (here compute covers most of
    // the sealing, so the hidden crypto time is pure profit).
    assert!(
        over_report.simulated_ns < sync_report.simulated_ns,
        "overlapped {} ns should beat sync {} ns",
        over_report.simulated_ns,
        sync_report.simulated_ns
    );
}

/// Drives an Overlapped run that crashes at the armed Romulus failpoint while
/// publishing (after `crash_after_steps` clean steps), then resumes over the
/// surviving pool and finishes. Returns the final weights and the iteration the
/// resumed trainer started from.
fn crash_resume_overlapped(
    setup: &TrainingSetup,
    key: &Key,
    crash_after_steps: u64,
    failpoint: FailPoint,
) -> (Vec<Vec<f32>>, u64) {
    let ctx = deploy(setup, key);
    let pool = ctx.pool().clone();
    let mut trainer = PliniusBuilder::new(setup.clone())
        .context(ctx)
        .pipeline_mode(PipelineMode::Overlapped)
        .build()
        .unwrap();
    // Clean steps first (driven by hand so no drain happens in between), then arm
    // the crash point: the next step's publish join dies mid-publish.
    for _ in 0..crash_after_steps {
        trainer.step().unwrap();
    }
    trainer.context().romulus().inject_failure(failpoint);
    let err = trainer.step().unwrap_err();
    assert!(
        matches!(
            err,
            PliniusError::Romulus(RomulusError::InjectedCrash) | PliniusError::Pipeline(_)
        ),
        "unexpected error: {err}"
    );
    drop(trainer);
    // Power failure: volatile state (including the in-flight snapshot) is lost.
    let mut crash_rng = StdRng::seed_from_u64(4242);
    pool.crash(&mut crash_rng, CrashMode::ArbitraryEviction);
    // Restart over the surviving pool and finish the run.
    let ctx2 = PliniusContext::open(pool, setup.cost.clone()).unwrap();
    ctx2.provision_key_directly(key.clone());
    let mut resumed = PliniusBuilder::new(setup.clone())
        .context(ctx2)
        .pipeline_mode(PipelineMode::Overlapped)
        .build()
        .unwrap();
    let resumed_from = resumed.iteration();
    resumed.run().unwrap();
    (weights(resumed.network()), resumed_from)
}

#[test]
fn crash_between_slot_publishes_resumes_bit_exactly_from_the_committed_epoch() {
    let setup = stable_setup(10);
    let key = test_key(200);
    // Reference: one uninterrupted overlapped run.
    let ctx = deploy(&setup, &key);
    let mut reference = PliniusBuilder::new(setup.clone())
        .context(ctx)
        .pipeline_mode(PipelineMode::Overlapped)
        .build()
        .unwrap();
    reference.run().unwrap();
    let reference_weights = weights(reference.network());
    drop(reference);
    // Crash after 3 tensor slot writes of a bulk publish (before the epoch flip):
    // the committed epoch must be the previous complete one.
    let (final_weights, resumed_from) =
        crash_resume_overlapped(&setup, &key, 4, FailPoint::AfterDirectPublishes(3));
    // Snapshots were staged at iterations 1..=4; the joins during steps 2..=4
    // committed epochs for iterations 1..=3, and the crashed join (inside step 5)
    // died publishing iteration 4 — so the last *committed* epoch is iteration 3,
    // and the finished run must still match the uninterrupted one bit-exactly.
    assert_eq!(resumed_from, 3, "resume point is the last committed epoch");
    assert_eq!(final_weights, reference_weights);
}

#[test]
fn crash_inside_the_epoch_flip_resumes_bit_exactly() {
    let setup = stable_setup(10);
    let key = test_key(300);
    let ctx = deploy(&setup, &key);
    let mut reference = PliniusBuilder::new(setup.clone())
        .context(ctx)
        .pipeline_mode(PipelineMode::Overlapped)
        .build()
        .unwrap();
    reference.run().unwrap();
    let reference_weights = weights(reference.network());
    drop(reference);
    // Crash after the first store of the flip transaction: iteration already
    // written to main, epoch/active not — recovery must roll the header back.
    // After 3 clean steps the joins committed iterations 1..=2; the crashed join
    // (inside step 4) died flipping iteration 3's epoch.
    let (final_weights, resumed_from) =
        crash_resume_overlapped(&setup, &key, 3, FailPoint::AfterStores(1));
    assert_eq!(resumed_from, 2, "resume point is the last committed epoch");
    assert_eq!(final_weights, reference_weights);
}

#[test]
fn sync_and_overlapped_crash_resume_land_on_the_same_weights() {
    // The same mid-publish crash schedule driven through the *sync* path (where the
    // publish happens inline) must land on the same final weights as the overlapped
    // runs above — mode never leaks into the model.
    let setup = stable_setup(10);
    let key = test_key(200);
    let ctx = deploy(&setup, &key);
    let pool = ctx.pool().clone();
    let mut trainer = PliniusBuilder::new(setup.clone())
        .context(ctx)
        .pipeline_mode(PipelineMode::Sync)
        .build()
        .unwrap();
    for _ in 0..4 {
        trainer.step().unwrap();
    }
    trainer
        .context()
        .romulus()
        .inject_failure(FailPoint::AfterDirectPublishes(3));
    assert!(trainer.step().is_err());
    drop(trainer);
    let mut crash_rng = StdRng::seed_from_u64(4242);
    pool.crash(&mut crash_rng, CrashMode::ArbitraryEviction);
    let ctx2 = PliniusContext::open(pool, setup.cost.clone()).unwrap();
    ctx2.provision_key_directly(key.clone());
    let mut resumed = PliniusBuilder::new(setup.clone())
        .context(ctx2)
        .pipeline_mode(PipelineMode::Sync)
        .build()
        .unwrap();
    // Sync: iterations 1..=4 committed inline; the crashed 5th step died publishing.
    assert_eq!(resumed.iteration(), 4);
    resumed.run().unwrap();
    let sync_weights = weights(resumed.network());
    let (overlapped_weights, _) =
        crash_resume_overlapped(&setup, &key, 4, FailPoint::AfterDirectPublishes(3));
    assert_eq!(sync_weights, overlapped_weights);
}
